package bist

import (
	"math/rand"
	"testing"

	"steac/internal/march"
	"steac/internal/memory"
)

// analyticGroupCycles recomputes the March test-time formula from first
// principles — complexity summed per element times the pacing word count,
// scaled by data backgrounds, plus retention pauses and the port-B pass —
// independently of Group.Cycles, so the two implementations check each
// other.
func analyticGroupCycles(g Group) int {
	maxWords, maxTwoPort := 0, 0
	for _, m := range g.Mems {
		cfg := m.RAM.Config()
		if cfg.Words > maxWords {
			maxWords = cfg.Words
		}
		if cfg.Kind == memory.TwoPort && cfg.Words > maxTwoPort {
			maxTwoPort = cfg.Words
		}
	}
	marchOps := 0
	for _, e := range g.Alg.Elements {
		marchOps += len(e.Ops)
	}
	total := marchOps*maxWords + len(g.PauseBefore)*g.PauseCycles
	if n := len(g.Backgrounds); n > 1 {
		total *= n
	}
	if g.TestPortB {
		total += 4 * maxTwoPort
	}
	return total
}

func mustRAM(t *testing.T, cfg memory.Config) memory.RAM {
	t.Helper()
	m, err := memory.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEngineCyclesMatchAnalyticFormulas sweeps every catalog algorithm over
// both port kinds and randomized (non-power-of-two included) geometries and
// asserts the behavioural engine consumes exactly the analytic cycle count
// — the cycle-accuracy contract every schedule and report relies on.
func TestEngineCyclesMatchAnalyticFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for _, alg := range march.Catalog() {
		if err := alg.Validate(); err != nil {
			t.Fatalf("%s: %v", alg.Name, err)
		}
		for _, kind := range []memory.Kind{memory.SinglePort, memory.TwoPort} {
			for trial := 0; trial < 6; trial++ {
				words := 2 + rng.Intn(600)
				bits := 1 + rng.Intn(33)
				cfg := memory.Config{Name: "m", Words: words, Bits: bits, Kind: kind}
				g := Group{Name: "g", Alg: alg,
					Mems: []MemoryUnderTest{{RAM: mustRAM(t, cfg)}}}
				// Randomly layer on the optional passes.
				if rng.Intn(2) == 1 {
					g.Backgrounds = []uint64{0, 0x5555555555555555 & cfg.Mask()}
				}
				if rng.Intn(2) == 1 {
					g.PauseBefore = []int{1 + rng.Intn(len(alg.Elements)-1+1)}
					if g.PauseBefore[0] >= len(alg.Elements) {
						g.PauseBefore[0] = len(alg.Elements) - 1
					}
					g.PauseCycles = 1 + rng.Intn(500)
				}
				if kind == memory.TwoPort && rng.Intn(2) == 1 {
					g.TestPortB = true
				}
				want := analyticGroupCycles(g)
				if got := g.Cycles(); got != want {
					t.Fatalf("%s %s %dx%d: Group.Cycles=%d, analytic=%d",
						alg.Name, kind, words, bits, got, want)
				}
				e, err := NewEngine([]Group{g}, Serial)
				if err != nil {
					t.Fatal(err)
				}
				res := e.Run()
				if !res.Pass {
					t.Fatalf("%s %s %dx%d: fault-free run failed", alg.Name, kind, words, bits)
				}
				if res.Cycles != want {
					t.Fatalf("%s %s %dx%d: engine ran %d cycles, analytic %d",
						alg.Name, kind, words, bits, res.Cycles, want)
				}
				if p := e.PredictedCycles(); p != want {
					t.Fatalf("%s %s %dx%d: PredictedCycles=%d, analytic=%d",
						alg.Name, kind, words, bits, p, want)
				}
			}
		}
	}
}

// TestEngineCyclesMixedGroupAndSchedules checks the pacing rule (the
// largest memory paces a lockstep group) and both schedule reductions.
func TestEngineCyclesMixedGroupAndSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		alg := march.Catalog()[rng.Intn(len(march.Catalog()))]
		nGroups := 1 + rng.Intn(3)
		groups := make([]Group, nGroups)
		for gi := range groups {
			nMems := 1 + rng.Intn(4)
			mems := make([]MemoryUnderTest, nMems)
			for mi := range mems {
				cfg := memory.Config{
					Name:  "m",
					Words: 2 + rng.Intn(300),
					Bits:  1 + rng.Intn(16),
				}
				mems[mi] = MemoryUnderTest{RAM: mustRAM(t, cfg)}
			}
			groups[gi] = Group{Name: "g", Alg: alg, Mems: mems}
		}
		serialWant, parallelWant := 0, 0
		for _, g := range groups {
			c := analyticGroupCycles(g)
			serialWant += c
			if c > parallelWant {
				parallelWant = c
			}
		}
		for _, sched := range []Schedule{Serial, Parallel} {
			want := serialWant
			if sched == Parallel {
				want = parallelWant
			}
			e, err := NewEngine(groups, sched)
			if err != nil {
				t.Fatal(err)
			}
			res := e.Run()
			if res.Cycles != want || e.PredictedCycles() != want {
				t.Fatalf("trial %d %s: engine=%d predicted=%d analytic=%d",
					trial, sched, res.Cycles, e.PredictedCycles(), want)
			}
		}
	}
}
