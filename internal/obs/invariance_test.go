package obs_test

// Worker-count invariance: the obs metric totals an engine publishes must
// not depend on how many goroutines it fanned the work across.  These tests
// run the real engines (memfault.Coverage, sched.SessionBased) at worker
// counts {1, 2, NumCPU, 2·NumCPU} with span timing enabled, so the -race
// build doubles as the concurrency stress test for the instrumentation
// inside the engines' worker pools.
//
// Search-effort counters (sched.sessions_designed, sched.partitions_
// evaluated) are deliberately NOT asserted: branch-and-bound pruning
// depends on how fast the shared bound tightens, so the work done — unlike
// the result — legitimately varies with worker count.

import (
	"context"
	"runtime"
	"testing"

	"steac/internal/march"
	"steac/internal/memfault"
	"steac/internal/memory"
	"steac/internal/obs"
	"steac/internal/sched"
	"steac/internal/wrapper"
)

// workerCounts returns {1, 2, NumCPU, 2·NumCPU} deduplicated in order.
func workerCounts() []int {
	n := runtime.NumCPU()
	seen := map[int]bool{}
	var out []int
	for _, w := range []int{1, 2, n, 2 * n} {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// delta captures the change of a counter set across one engine run.
func deltas(names []string, run func()) map[string]int64 {
	before := make(map[string]int64, len(names))
	for _, n := range names {
		before[n] = obs.CounterValue(n)
	}
	run()
	out := make(map[string]int64, len(names))
	for _, n := range names {
		out[n] = obs.CounterValue(n) - before[n]
	}
	return out
}

func TestMemfaultTotalsWorkerInvariant(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	cfg := memory.Config{Name: "inv", Words: 16, Bits: 4}
	faults := memfault.AllFaults(cfg)
	alg := march.MarchCMinus()
	names := []string{"memfault.campaigns", "memfault.faults_simulated", "memfault.faults_detected"}

	var ref map[string]int64
	for _, w := range workerCounts() {
		var camp memfault.Campaign
		d := deltas(names, func() {
			c, err := memfault.CoverageContext(context.Background(), alg, cfg, faults, memfault.Options{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			camp = c
		})
		if d["memfault.campaigns"] != 1 {
			t.Fatalf("workers=%d: campaigns delta %d, want 1", w, d["memfault.campaigns"])
		}
		if d["memfault.faults_simulated"] != int64(camp.Total) ||
			d["memfault.faults_detected"] != int64(camp.Detected) {
			t.Fatalf("workers=%d: counter deltas %v disagree with campaign %d/%d",
				w, d, camp.Detected, camp.Total)
		}
		if ref == nil {
			ref = d
			continue
		}
		for _, n := range names {
			if d[n] != ref[n] {
				t.Fatalf("workers=%d: %s delta %d, workers=1 saw %d", w, n, d[n], ref[n])
			}
		}
	}
}

func TestSchedTotalsWorkerInvariant(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	cores := sched.SyntheticSOC(42, 7)
	tests, err := sched.BuildTests(cores, sched.SyntheticBIST(42, 3))
	if err != nil {
		t.Fatal(err)
	}
	res := sched.SyntheticResources(cores)
	res.Partitioner = wrapper.LPT
	names := []string{"sched.schedules_built", "sched.jobs_scheduled"}

	var ref map[string]int64
	var refBest, refCycles int64
	for _, w := range workerCounts() {
		res.Workers = w
		var s *sched.Schedule
		d := deltas(names, func() {
			sc, err := sched.SessionBasedContext(context.Background(), tests, res)
			if err != nil {
				t.Fatal(err)
			}
			s = sc
		})
		best := obs.GetGauge("sched.best_total_cycles").Value()
		if best != int64(s.TotalCycles) {
			t.Fatalf("workers=%d: best gauge %d, schedule says %d", w, best, s.TotalCycles)
		}
		if d["sched.schedules_built"] != 1 {
			t.Fatalf("workers=%d: schedules_built delta %d, want 1", w, d["sched.schedules_built"])
		}
		if ref == nil {
			ref, refBest, refCycles = d, best, int64(s.TotalCycles)
			continue
		}
		if best != refBest || int64(s.TotalCycles) != refCycles {
			t.Fatalf("workers=%d: schedule %d cycles (gauge %d), workers=1 found %d (gauge %d)",
				w, s.TotalCycles, best, refCycles, refBest)
		}
		for _, n := range names {
			if d[n] != ref[n] {
				t.Fatalf("workers=%d: %s delta %d, workers=1 saw %d", w, n, d[n], ref[n])
			}
		}
	}
}
