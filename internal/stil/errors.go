package stil

import (
	"errors"
	"fmt"
)

// ErrSyntax is the sentinel every STIL lexing and parsing failure wraps:
// match the class with errors.Is(err, stil.ErrSyntax), and recover the
// position with errors.As into a *SyntaxError.
var ErrSyntax = errors.New("stil: syntax error")

// SyntaxError pinpoints a STIL syntax failure.  Line and Col are 1-based;
// Col 0 means the failure is attributed to a whole statement rather than
// one character.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("stil: line %d col %d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("stil: line %d: %s", e.Line, e.Msg)
}

// Unwrap makes every SyntaxError match the ErrSyntax sentinel.
func (e *SyntaxError) Unwrap() error { return ErrSyntax }

// syntaxErrf builds a *SyntaxError at the given position.
func syntaxErrf(line, col int, format string, args ...interface{}) error {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
