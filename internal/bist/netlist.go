package bist

import (
	"fmt"

	"steac/internal/march"
	"steac/internal/memory"
	"steac/internal/netlist"
)

// Structural generation of the Fig. 2 BIST blocks.  The generated hardware
// assumes power-of-two word counts (the memory compiler pads macros up);
// descending address orders are produced by reflecting the up-counter
// through XOR gates, the classical BIST trick.  The behavioural Engine in
// this package handles arbitrary word counts and is the functional
// reference; the netlists exist to be inserted into the SOC design and to
// account hardware cost in NAND2 equivalents.

func bitsFor(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

func busBits(name string, w int) []string {
	return netlist.Port{Name: name, Width: w}.Bits()
}

// addUpCounter builds an n-bit synchronous up counter with enable and
// synchronous reset: on each ck edge, q <= rst ? 0 : (en ? q+1 : q).
func addUpCounter(m *netlist.Module, name, ck, rst, en string, q []string) error {
	n := len(q)
	carry := en
	for i := 0; i < n; i++ {
		sum := fmt.Sprintf("%s_sum%d", name, i)
		if _, err := m.AddInstance(fmt.Sprintf("%s_x%d", name, i), netlist.CellXor2,
			map[string]string{"A": q[i], "B": carry, "Z": sum}); err != nil {
			return err
		}
		// Synchronous reset: d = sum AND NOT rst.
		nrst := name + "_nrst"
		if i == 0 {
			m.AddNet(nrst)
			if _, err := m.AddInstance(name+"_rstinv", netlist.CellInv,
				map[string]string{"A": rst, "Z": nrst}); err != nil {
				return err
			}
		}
		d := fmt.Sprintf("%s_d%d", name, i)
		if _, err := m.AddInstance(fmt.Sprintf("%s_a%d", name, i), netlist.CellAnd2,
			map[string]string{"A": sum, "B": nrst, "Z": d}); err != nil {
			return err
		}
		if _, err := m.AddInstance(fmt.Sprintf("%s_ff%d", name, i), netlist.CellDFF,
			map[string]string{"D": d, "CK": ck, "Q": q[i]}); err != nil {
			return err
		}
		if i < n-1 {
			nextCarry := fmt.Sprintf("%s_c%d", name, i+1)
			if _, err := m.AddInstance(fmt.Sprintf("%s_cg%d", name, i), netlist.CellAnd2,
				map[string]string{"A": carry, "B": q[i], "Z": nextCarry}); err != nil {
				return err
			}
			carry = nextCarry
		}
	}
	return nil
}

// addEqualsConst builds out = (q == value) for a register q.
func addEqualsConst(m *netlist.Module, name string, q []string, value int, out string) error {
	terms := make([]string, len(q))
	for i := range q {
		if value&(1<<i) != 0 {
			terms[i] = q[i]
			continue
		}
		inv := fmt.Sprintf("%s_qi%d", name, i)
		if _, err := m.AddInstance(fmt.Sprintf("%s_inv%d", name, i), netlist.CellInv,
			map[string]string{"A": q[i], "Z": inv}); err != nil {
			return err
		}
		terms[i] = inv
	}
	_, err := netlist.AddAndTree(m, name+"_eq", terms, out)
	return err
}

// GenerateTPG builds the per-memory Test Pattern Generator: an address
// up-counter with descending-order reflection, data-background expansion,
// a read comparator and a sticky fail flag.
//
// Ports: CK, RST, EN (group active: qualifies WE and the comparator), ADV
// (word-advance pulse from the sequencer: steps the address counter), CMDR
// (command is a read), CMDD (March data value), DIR (1 = descending),
// Q[bits] from the RAM; outputs ADDR[addrBits], D[bits], WE, ELEMDONE
// (address sweep finished) and FAIL.
func GenerateTPG(d *netlist.Design, name string, cfg memory.Config) (*netlist.Module, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ab := cfg.AddrBits()
	m := netlist.NewModule(name)
	for _, p := range []string{"CK", "RST", "EN", "ADV", "CMDR", "CMDD", "DIR", "BGSEL"} {
		m.MustPort(p, netlist.In, 1)
	}
	m.MustPort("Q", netlist.In, cfg.Bits)
	if cfg.Kind == memory.TwoPort {
		// Port-B verification: QB is compared instead of Q when PBSEL=1.
		m.MustPort("QB", netlist.In, cfg.Bits)
		m.MustPort("PBSEL", netlist.In, 1)
	}
	m.MustPort("ADDR", netlist.Out, ab)
	m.MustPort("D", netlist.Out, cfg.Bits)
	m.MustPort("WE", netlist.Out, 1)
	m.MustPort("ELEMDONE", netlist.Out, 1)
	m.MustPort("FAIL", netlist.Out, 1)

	// Address counter steps on ADV (last op of each word) and wraps
	// naturally at the power-of-two boundary for the next element.
	cnt := busBits("cnt", ab)
	for _, c := range cnt {
		m.AddNet(c)
	}
	if err := addUpCounter(m, "ac", "CK", "RST", "ADV", cnt); err != nil {
		return nil, err
	}
	// Descending reflection: ADDR = cnt XOR DIR.
	for i := 0; i < ab; i++ {
		if _, err := m.AddInstance(fmt.Sprintf("ar%d", i), netlist.CellXor2,
			map[string]string{"A": cnt[i], "B": "DIR", "Z": netlist.BitName("ADDR", i, ab)}); err != nil {
			return nil, err
		}
	}
	// Terminal count -> ELEMDONE.
	if err := addEqualsConst(m, "tc", cnt, cfg.Words-1, "ELEMDONE"); err != nil {
		return nil, err
	}
	// Data expansion: BGSEL=0 gives the solid background (D[i] = CMDD),
	// BGSEL=1 the checkerboard (odd bits inverted).  The comparator below
	// compares against the same expanded data, so both passes self-check.
	for i := 0; i < cfg.Bits; i++ {
		out := netlist.BitName("D", i, cfg.Bits)
		if i%2 == 1 {
			if _, err := m.AddInstance(fmt.Sprintf("dx%d", i), netlist.CellXor2,
				map[string]string{"A": "CMDD", "B": "BGSEL", "Z": out}); err != nil {
				return nil, err
			}
			continue
		}
		if _, err := m.AddInstance(fmt.Sprintf("dx%d", i), netlist.CellBuf,
			map[string]string{"A": "CMDD", "Z": out}); err != nil {
			return nil, err
		}
	}
	// WE = EN-qualified write command.
	m.MustInstance("winv", netlist.CellInv, map[string]string{"A": "CMDR", "Z": "nread"})
	m.MustInstance("wand", netlist.CellAnd2, map[string]string{"A": "nread", "B": "EN", "Z": "WE"})
	// Comparator: mismatch on any bit during a read (two-port macros
	// compare the PBSEL-selected port).
	xors := make([]string, cfg.Bits)
	for i := 0; i < cfg.Bits; i++ {
		src := netlist.BitName("Q", i, cfg.Bits)
		if cfg.Kind == memory.TwoPort {
			sel := fmt.Sprintf("qsel%d", i)
			m.AddNet(sel)
			if _, err := m.AddInstance(fmt.Sprintf("qm%d", i), netlist.CellMux2,
				map[string]string{"A": src, "B": netlist.BitName("QB", i, cfg.Bits),
					"S": "PBSEL", "Z": sel}); err != nil {
				return nil, err
			}
			src = sel
		}
		xors[i] = fmt.Sprintf("cmp%d", i)
		m.AddNet(xors[i])
		if _, err := m.AddInstance(fmt.Sprintf("cx%d", i), netlist.CellXor2,
			map[string]string{"A": src, "B": netlist.BitName("D", i, cfg.Bits), "Z": xors[i]}); err != nil {
			return nil, err
		}
	}
	if _, err := netlist.AddOrTree(m, "mis", xors, "mismatch"); err != nil {
		return nil, err
	}
	m.MustInstance("misr", netlist.CellAnd2, map[string]string{"A": "mismatch", "B": "CMDR", "Z": "rdmis"})
	m.MustInstance("misq", netlist.CellAnd2, map[string]string{"A": "rdmis", "B": "EN", "Z": "qmis"})
	// Sticky fail flag.
	m.MustInstance("for", netlist.CellOr2, map[string]string{"A": "qmis", "B": "FAIL", "Z": "fnext"})
	m.MustInstance("fclr", netlist.CellInv, map[string]string{"A": "RST", "Z": "nrstf"})
	m.MustInstance("fand", netlist.CellAnd2, map[string]string{"A": "fnext", "B": "nrstf", "Z": "fd"})
	m.MustInstance("fff", netlist.CellDFF, map[string]string{"D": "fd", "CK": "CK", "Q": "FAIL"})
	if err := d.AddModule(m); err != nil {
		return nil, err
	}
	return m, nil
}

// GenerateSequencer builds the March sequencer: an op counter and an
// element counter plus the algorithm ROM decoded to the command lines.
//
// Ports: CK, RST, EN, ELEMDONE (all TPGs finished the element sweep);
// outputs CMDR, CMDD, DIR, ADV (word advance, pulses on the last op), DONE
// (algorithm finished) and RUN (its complement, used to gate the TPG
// enables so no spurious write fires after the last element).
func GenerateSequencer(d *netlist.Design, name string, alg march.Algorithm) (*netlist.Module, error) {
	if err := alg.Validate(); err != nil {
		return nil, err
	}
	nElem := len(alg.Elements)
	maxOps := 0
	for _, e := range alg.Elements {
		if len(e.Ops) > maxOps {
			maxOps = len(e.Ops)
		}
	}
	eb, ob := bitsFor(nElem+1), bitsFor(maxOps)
	m := netlist.NewModule(name)
	for _, p := range []string{"CK", "RST", "EN", "ELEMDONE"} {
		m.MustPort(p, netlist.In, 1)
	}
	for _, p := range []string{"CMDR", "CMDD", "DIR", "ADV", "DONE", "RUN"} {
		m.MustPort(p, netlist.Out, 1)
	}
	ecnt, ocnt := busBits("ecnt", eb), busBits("ocnt", ob)
	for _, n := range append(append([]string{}, ecnt...), ocnt...) {
		m.AddNet(n)
	}
	// One-hot decodes of the element and op counters.
	eHot := make([]string, nElem+1)
	for i := range eHot {
		eHot[i] = fmt.Sprintf("eh%d", i)
		m.AddNet(eHot[i])
	}
	if _, err := netlist.AddDecoder(m, "edec", ecnt, "", eHot); err != nil {
		return nil, err
	}
	oHot := make([]string, maxOps)
	for i := range oHot {
		oHot[i] = fmt.Sprintf("oh%d", i)
		m.AddNet(oHot[i])
	}
	if _, err := netlist.AddDecoder(m, "odec", ocnt, "", oHot); err != nil {
		return nil, err
	}
	// ROM: minterms for read commands, data=1 commands, last-op flags and
	// descending elements.
	var readT, dataT, lastT, dirT []string
	mt := 0
	minterm := func(e, o int) (string, error) {
		n := fmt.Sprintf("mt%d", mt)
		mt++
		m.AddNet(n)
		_, err := m.AddInstance("mi"+n, netlist.CellAnd2,
			map[string]string{"A": eHot[e], "B": oHot[o], "Z": n})
		return n, err
	}
	for ei, e := range alg.Elements {
		if e.Order == march.Down {
			dirT = append(dirT, eHot[ei])
		}
		for oi, op := range e.Ops {
			if op.Read {
				t, err := minterm(ei, oi)
				if err != nil {
					return nil, err
				}
				readT = append(readT, t)
			}
			if op.Value == 1 {
				t, err := minterm(ei, oi)
				if err != nil {
					return nil, err
				}
				dataT = append(dataT, t)
			}
		}
		t, err := minterm(ei, len(e.Ops)-1)
		if err != nil {
			return nil, err
		}
		lastT = append(lastT, t)
	}
	emitOr := func(terms []string, out string) error {
		if len(terms) == 0 {
			_, err := m.AddInstance(out+"_tie", netlist.CellTie0, map[string]string{"Z": out})
			return err
		}
		_, err := netlist.AddOrTree(m, out+"_or", terms, out)
		return err
	}
	if err := emitOr(readT, "CMDR"); err != nil {
		return nil, err
	}
	if err := emitOr(dataT, "CMDD"); err != nil {
		return nil, err
	}
	if err := emitOr(dirT, "DIR"); err != nil {
		return nil, err
	}
	if err := emitOr(lastT, "lastop"); err != nil {
		return nil, err
	}
	// ADV pulses on the last op of each word while enabled and running.
	m.MustInstance("ninv", netlist.CellInv, map[string]string{"A": "DONE", "Z": "RUN"})
	m.MustInstance("adv1", netlist.CellAnd2, map[string]string{"A": "lastop", "B": "EN", "Z": "adv_en"})
	m.MustInstance("adv2", netlist.CellAnd2, map[string]string{"A": "adv_en", "B": "RUN", "Z": "ADV"})
	// Op counter: increments while enabled, resets on last op or RST.
	m.MustInstance("orst", netlist.CellOr2, map[string]string{"A": "RST", "B": "ADV", "Z": "oprst"})
	if err := addUpCounter(m, "oc", "CK", "oprst", "EN", ocnt); err != nil {
		return nil, err
	}
	// Element counter: increments when the element sweep completes.
	m.MustInstance("eadv", netlist.CellAnd2, map[string]string{"A": "ADV", "B": "ELEMDONE", "Z": "elemadv"})
	if err := addUpCounter(m, "ec", "CK", "RST", "elemadv", ecnt); err != nil {
		return nil, err
	}
	if err := addEqualsConst(m, "dn", ecnt, nElem, "DONE"); err != nil {
		return nil, err
	}
	if err := d.AddModule(m); err != nil {
		return nil, err
	}
	return m, nil
}

// GenerateController builds the shared BIST controller for nGroups
// sequencer groups and the tester interface pins of Fig. 2.
//
// Ports: the tester pins (MBS, MBR, MBC, MSI, MSO, MBO, MRD) plus, per
// group, GDONE[i]/GFAIL[i] inputs and GO[i] outputs.
func GenerateController(d *netlist.Design, name string, nGroups int) (*netlist.Module, error) {
	if nGroups < 1 {
		return nil, fmt.Errorf("bist: controller needs at least one group")
	}
	m := netlist.NewModule(name)
	for _, p := range []string{PinMBS, PinMBR, PinMBC, PinMSI} {
		m.MustPort(p, netlist.In, 1)
	}
	for _, p := range []string{PinMSO, PinMBO, PinMRD} {
		m.MustPort(p, netlist.Out, 1)
	}
	m.MustPort("GDONE", netlist.In, nGroups)
	m.MustPort("GFAIL", netlist.In, nGroups)
	m.MustPort("GO", netlist.Out, nGroups)

	gb := bitsFor(nGroups + 1)
	gcnt := busBits("gcnt", gb)
	for _, n := range gcnt {
		m.AddNet(n)
	}
	// Running flag: set by MBS, cleared by MBR or MBO.
	m.MustInstance("rset", netlist.CellOr2, map[string]string{"A": PinMBS, "B": "run", "Z": "rs"})
	m.MustInstance("rov", netlist.CellInv, map[string]string{"A": PinMBO, "Z": "nover"})
	m.MustInstance("rrst", netlist.CellInv, map[string]string{"A": PinMBR, "Z": "nrst"})
	m.MustInstance("ra1", netlist.CellAnd2, map[string]string{"A": "rs", "B": "nover", "Z": "ra"})
	m.MustInstance("ra2", netlist.CellAnd2, map[string]string{"A": "ra", "B": "nrst", "Z": "rd"})
	m.MustInstance("rff", netlist.CellDFF, map[string]string{"D": "rd", "CK": PinMBC, "Q": "run"})

	// Active-group one-hot; GO[i] = hot[i] AND run.
	hot := make([]string, nGroups+1)
	for i := range hot {
		hot[i] = fmt.Sprintf("hot%d", i)
		m.AddNet(hot[i])
	}
	if _, err := netlist.AddDecoder(m, "gdec", gcnt, "", hot); err != nil {
		return nil, err
	}
	for i := 0; i < nGroups; i++ {
		m.MustInstance(fmt.Sprintf("go%d", i), netlist.CellAnd2,
			map[string]string{"A": hot[i], "B": "run", "Z": netlist.BitName("GO", i, nGroups)})
	}
	// Advance when the active group reports done.
	adv := make([]string, nGroups)
	for i := 0; i < nGroups; i++ {
		adv[i] = fmt.Sprintf("adv%d", i)
		m.AddNet(adv[i])
		m.MustInstance(fmt.Sprintf("ad%d", i), netlist.CellAnd2,
			map[string]string{"A": netlist.BitName("GO", i, nGroups), "B": netlist.BitName("GDONE", i, nGroups), "Z": adv[i]})
	}
	if _, err := netlist.AddOrTree(m, "advor", adv, "gadv"); err != nil {
		return nil, err
	}
	if err := addUpCounter(m, "gc", PinMBC, PinMBR, "gadv", gcnt); err != nil {
		return nil, err
	}
	if err := addEqualsConst(m, "ov", gcnt, nGroups, "over"); err != nil {
		return nil, err
	}
	m.MustInstance("ovb", netlist.CellBuf, map[string]string{"A": "over", "Z": PinMBO})
	// Sticky per-group fail flags feed MRD (go/no-go, active high = pass)
	// and MSO (serial diagnosis, selected by the group counter).
	fails := make([]string, nGroups)
	for i := 0; i < nGroups; i++ {
		fl := fmt.Sprintf("fl%d", i)
		fails[i] = fl
		m.AddNet(fl)
		cap := fmt.Sprintf("fc%d", i)
		m.AddNet(cap)
		m.MustInstance(fmt.Sprintf("fa%d", i), netlist.CellAnd2,
			map[string]string{"A": netlist.BitName("GFAIL", i, nGroups), "B": netlist.BitName("GO", i, nGroups), "Z": cap})
		m.MustInstance(fmt.Sprintf("fo%d", i), netlist.CellOr2,
			map[string]string{"A": cap, "B": fl, "Z": fmt.Sprintf("fn%d", i)})
		m.MustInstance(fmt.Sprintf("fr%d", i), netlist.CellAnd2,
			map[string]string{"A": fmt.Sprintf("fn%d", i), "B": "nrst", "Z": fmt.Sprintf("fd%d", i)})
		m.MustInstance(fmt.Sprintf("ff%d", i), netlist.CellDFF,
			map[string]string{"D": fmt.Sprintf("fd%d", i), "CK": PinMBC, "Q": fl})
	}
	if _, err := netlist.AddOrTree(m, "anyfail", fails, "failany"); err != nil {
		return nil, err
	}
	m.MustInstance("mrd", netlist.CellInv, map[string]string{"A": "failany", "Z": PinMRD})
	// Serial diagnosis output: group fail flag selected by the counter,
	// qualified by the serial command input (MSI acts as output enable).
	if _, err := netlist.AddMuxTree(m, "somux", fails, gcnt[:bitsFor(nGroups)], "sosel"); err != nil {
		return nil, err
	}
	m.MustInstance("soq", netlist.CellAnd2, map[string]string{"A": "sosel", "B": PinMSI, "Z": PinMSO})
	if err := d.AddModule(m); err != nil {
		return nil, err
	}
	return m, nil
}
