package serve

import (
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestNewTenantSetValidation(t *testing.T) {
	ok := Tenant{ID: "team-a", Key: "ka"}
	cases := []struct {
		name    string
		tenants []Tenant
	}{
		{"empty set", nil},
		{"empty id", []Tenant{{ID: "", Key: "k"}}},
		{"id with space", []Tenant{{ID: "team a", Key: "k"}}},
		{"id with slash", []Tenant{{ID: "team/a", Key: "k"}}},
		{"reserved anon id", []Tenant{{ID: AnonTenant, Key: "k"}}},
		{"missing key", []Tenant{{ID: "team-b"}}},
		{"duplicate id", []Tenant{ok, {ID: "team-a", Key: "kb"}}},
		{"duplicate key", []Tenant{ok, {ID: "team-b", Key: "ka"}}},
	}
	for _, tc := range cases {
		if _, err := NewTenantSet(tc.tenants); err == nil {
			t.Errorf("NewTenantSet(%s): no error", tc.name)
		}
	}
	if _, err := NewTenantSet([]Tenant{ok, {ID: "team-b", Key: "kb"}}); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
}

func TestLoadTenants(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	body := `[
		{"id": "alpha", "key": "ka", "rate_per_sec": 10, "burst": 20, "max_jobs": 2, "weight": 3},
		{"id": "beta", "key": "kb"}
	]`
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	ts, err := LoadTenants(path)
	if err != nil {
		t.Fatalf("LoadTenants: %v", err)
	}
	a := ts.lookup("alpha")
	if a == nil || a.RatePerSec != 10 || a.Burst != 20 || a.Tenant.MaxJobs != 2 || a.Weight != 3 {
		t.Fatalf("alpha row mangled: %+v", a)
	}
	b := ts.lookup("beta")
	if b == nil || b.Weight != 1 || b.Burst != 1 {
		t.Fatalf("beta defaults not applied: %+v", b)
	}

	if _, err := LoadTenants(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file: no error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTenants(bad); err == nil {
		t.Error("unparsable file: no error")
	}
	dup := filepath.Join(dir, "dup.json")
	if err := os.WriteFile(dup, []byte(`[{"id":"x","key":"k"},{"id":"x","key":"k2"}]`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTenants(dup); err == nil {
		t.Error("duplicate ids: no error")
	}
}

func TestAuthenticate(t *testing.T) {
	ts, err := NewTenantSet([]Tenant{{ID: "alpha", Key: "ka"}, {ID: "beta", Key: "kb"}})
	if err != nil {
		t.Fatal(err)
	}
	req := func(header, value string) *tenantState {
		r := httptest.NewRequest("POST", "/v1/sched", nil)
		if header != "" {
			r.Header.Set(header, value)
		}
		tn, err := ts.authenticate(r)
		if err != nil {
			t.Fatalf("authenticate %s=%q: %v", header, value, err)
		}
		return tn
	}
	if tn := req("Authorization", "Bearer ka"); tn.ID != "alpha" {
		t.Fatalf("bearer ka resolved to %q", tn.ID)
	}
	if tn := req("X-API-Key", "kb"); tn.ID != "beta" {
		t.Fatalf("X-API-Key kb resolved to %q", tn.ID)
	}

	for _, tc := range []struct{ header, value string }{
		{"", ""},                         // no key at all
		{"Authorization", "Bearer nope"}, // unknown key
		{"X-API-Key", "nope"},
		{"Authorization", "ka"}, // not a Bearer header, no fallback
	} {
		r := httptest.NewRequest("POST", "/v1/sched", nil)
		if tc.header != "" {
			r.Header.Set(tc.header, tc.value)
		}
		if _, err := ts.authenticate(r); !errors.Is(err, ErrUnauthorized) {
			t.Errorf("authenticate %s=%q = %v, want ErrUnauthorized", tc.header, tc.value, err)
		}
	}

	// Anonymous mode accepts everything, key or not.
	anon := anonymousTenants()
	r := httptest.NewRequest("POST", "/v1/sched", nil)
	tn, err := anon.authenticate(r)
	if err != nil || tn.ID != AnonTenant {
		t.Fatalf("anonymous authenticate = %v, %v", tn, err)
	}
}

func TestTokenBucket(t *testing.T) {
	// A near-zero rate cannot refill within the test, so the burst is all
	// the tenant gets: deterministic regardless of scheduling.
	tn := newTenantState(Tenant{ID: "bucket", Key: "k", RatePerSec: 1e-9, Burst: 3})
	for i := 0; i < 3; i++ {
		if !tn.allow() {
			t.Fatalf("burst token %d denied", i)
		}
	}
	if tn.allow() {
		t.Fatal("4th token granted past burst")
	}

	// Zero rate means unlimited.
	free := newTenantState(Tenant{ID: "free", Key: "k"})
	for i := 0; i < 100; i++ {
		if !free.allow() {
			t.Fatal("unlimited tenant denied")
		}
	}

	// A fast rate refills after a short wait.
	quick := newTenantState(Tenant{ID: "quick", Key: "k", RatePerSec: 1000, Burst: 1})
	if !quick.allow() {
		t.Fatal("first token denied")
	}
	time.Sleep(20 * time.Millisecond)
	if !quick.allow() {
		t.Fatal("bucket did not refill at 1000/s after 20ms")
	}

	// Default burst derives from the rate: ceil(rate), min 1.
	if d := newTenantState(Tenant{ID: "d", Key: "k", RatePerSec: 2.5}); d.Burst != 3 {
		t.Fatalf("derived burst = %d, want 3", d.Burst)
	}
	if d := newTenantState(Tenant{ID: "d2", Key: "k", RatePerSec: 0.5}); d.Burst != 1 {
		t.Fatalf("derived burst = %d, want 1", d.Burst)
	}
}
