package brains_test

import (
	"context"
	"fmt"

	"steac/internal/brains"
	"steac/internal/memory"
)

func ExampleCompileContext() {
	res, err := brains.CompileContext(context.Background(), []memory.Config{
		{Name: "buf", Words: 4096, Bits: 16},
		{Name: "fifo", Words: 512, Bits: 32, Kind: memory.TwoPort},
	}, brains.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d sequencer groups, %d sessions\n", len(res.Groups), len(res.Sessions))
	fmt.Printf("BIST time: %d cycles (%s at %v MHz: %.2f ms)\n",
		res.Cycles, res.Opts.Algorithm.Name, res.Opts.ClockMHz, res.TestTimeMS())
	// Output:
	// 2 sequencer groups, 1 sessions
	// BIST time: 40960 cycles (March C- at 100 MHz: 0.41 ms)
}
