package xcheck

import (
	"context"
	"math/bits"

	"steac/internal/bist"
	"steac/internal/memory"
	"steac/internal/netlist"
	"steac/internal/pattern"
	"steac/internal/testinfo"
)

// PackedBatch is the number of faults one packed pass simulates: lanes
// 0..62 carry fault copies, lane 63 is reserved for the fault-free machine
// (the golden-bit convention — detection is (word ^ golden) != 0).
const PackedBatch = netlist.Lanes - 1

// bcast broadcasts one golden-trace bit to every lane.
func bcast(v bool) uint64 {
	if v {
		return ^uint64(0)
	}
	return 0
}

// busWords reads a bus's lane-words into dst.
func busWords(ps *netlist.PackedSim, ids []int, dst []uint64) {
	for i, id := range ids {
		dst[i] = ps.GetWordID(id)
	}
}

// laneDiffMask returns the lanes whose bus value differs from lane 63's
// (the golden machine's).  With one fault per lane this is the set of
// lanes whose address stream has been corrupted — typically empty, and a
// handful at worst — so RAM access below is a whole-word operation at the
// golden address patched per diverged lane, never a 64-lane gather.
func laneDiffMask(ws []uint64) uint64 {
	var d uint64
	for _, w := range ws {
		d |= w ^ uint64(int64(w)>>63)
	}
	return d
}

// laneBusVal assembles one lane's integer value from bus lane-words.
func laneBusVal(ws []uint64, lane int) int {
	v := 0
	for i, w := range ws {
		if w>>uint(lane)&1 == 1 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// markDiff records newly-divergent lanes at cycle and prunes them from
// pending; it returns the updated pending mask.
func markDiff(det []int, diff, pending uint64, cycle int) uint64 {
	hits := diff & pending
	for h := hits; h != 0; h &= h - 1 {
		det[bits.TrailingZeros64(h)] = cycle
	}
	return pending &^ hits
}

// pbench is the packed twin of the scalar gmem emulation: one bit-plane
// lane-word per (address, data bit), so 64 fault copies of the bench RAM
// are read and written as one whole-word operation at the golden lane's
// address, patched per lane only where a fault has corrupted that lane's
// address stream.
type pbench struct {
	nb    int      // data bits
	plane []uint64 // [addr*nb + b] lane-words
	addrW []uint64 // scratch: address bus lane-words
	addrs []int    // scratch: per-lane decoded addresses
}

// runBISTPacked is runBISTTraced in compare mode across 64 lanes: one
// solid-background March session with emulated RAMs answering each lane's
// own pins, comparing every lane's DONE/FAIL against the recorded golden
// trace.  det[lane] is the first divergent cycle or -1; only lanes in
// pending are tracked.  The run ends at the end of the golden trace or when
// every pending lane has diverged, whichever is first (a detected lane's
// result can no longer change, and lanes are independent).
func runBISTPacked(ctx context.Context, ps *netlist.PackedSim, pins benchPins,
	mems []memory.Config, golden []bistTrace, pending uint64) []int {
	det := make([]int, netlist.Lanes)
	for i := range det {
		det[i] = -1
	}
	pm := make([]pbench, len(mems))
	for i, cfg := range mems {
		pm[i] = pbench{
			nb:    cfg.Bits,
			plane: make([]uint64, cfg.Words*cfg.Bits),
			addrW: make([]uint64, cfg.AddrBits()),
			addrs: make([]int, netlist.Lanes),
		}
	}
	ps.Reset()
	ps.Set("bgsel", false)
	ps.Set("pbsel", false)
	ps.Set("rst", true)
	ps.Set("en", false)
	ps.Tick("ck")
	ps.Set("rst", false)
	ps.Set("en", true)
	// One settle propagates the enable; inside the loop the state is
	// already settled at the top (Tick ends with a Settle), so each cycle
	// needs only the post-RAM-read settle.
	ps.Settle()

	pollIn := equivPollCycles
	for cycle := 0; ; cycle++ {
		if pollIn--; pollIn <= 0 {
			pollIn = equivPollCycles
			if ctx.Err() != nil {
				return det // caller discards results once ctx has fired
			}
		}
		for i := range mems {
			m := &pm[i]
			busWords(ps, pins.addr[i], m.addrW)
			a := laneBusVal(m.addrW, netlist.Lanes-1)
			diff := laneDiffMask(m.addrW)
			if diff == 0 {
				for b, id := range pins.q[i] {
					ps.SetWordID(id, m.plane[a*m.nb+b])
				}
				for b, id := range pins.qb[i] {
					ps.SetWordID(id, m.plane[a*m.nb+b])
				}
			} else {
				for d := diff; d != 0; d &= d - 1 {
					l := bits.TrailingZeros64(d)
					m.addrs[l] = laneBusVal(m.addrW, l)
				}
				for b := 0; b < m.nb; b++ {
					w := m.plane[a*m.nb+b]
					for d := diff; d != 0; d &= d - 1 {
						l := bits.TrailingZeros64(d)
						bit := uint64(1) << uint(l)
						w = (w &^ bit) | (m.plane[m.addrs[l]*m.nb+b] & bit)
					}
					ps.SetWordID(pins.q[i][b], w)
					if pins.qb[i] != nil {
						ps.SetWordID(pins.qb[i][b], w)
					}
				}
			}
		}
		ps.Settle()
		gb := golden[cycle]
		diff := (ps.GetWordID(pins.done) ^ bcast(gb.done)) | (ps.GetWordID(pins.fail) ^ bcast(gb.fail))
		pending = markDiff(det, diff, pending, cycle)
		if cycle == len(golden)-1 || pending == 0 {
			return det
		}
		for i := range mems {
			m := &pm[i]
			weW := ps.GetWordID(pins.we[i])
			if weW == 0 {
				continue
			}
			busWords(ps, pins.addr[i], m.addrW)
			a := laneBusVal(m.addrW, netlist.Lanes-1)
			diff := laneDiffMask(m.addrW)
			if diff == 0 {
				for b, id := range pins.d[i] {
					p := &m.plane[a*m.nb+b]
					*p = (*p &^ weW) | (ps.GetWordID(id) & weW)
				}
			} else {
				// Lanes still on the golden address write as one word; each
				// diverged lane writes its own bit at its own address (bit
				// positions are disjoint, so the order is irrelevant).
				for d := diff & weW; d != 0; d &= d - 1 {
					l := bits.TrailingZeros64(d)
					m.addrs[l] = laneBusVal(m.addrW, l)
				}
				base := weW &^ diff
				for b, id := range pins.d[i] {
					dW := ps.GetWordID(id)
					if base != 0 {
						p := &m.plane[a*m.nb+b]
						*p = (*p &^ base) | (dW & base)
					}
					for d := diff & weW; d != 0; d &= d - 1 {
						l := bits.TrailingZeros64(d)
						bit := uint64(1) << uint(l)
						p := &m.plane[m.addrs[l]*m.nb+b]
						*p = (*p &^ bit) | (dW & bit)
					}
				}
			}
		}
		ps.Tick("ck")
	}
}

// runControllerPacked is runControllerTraced in compare mode across 64
// lanes: the scripted two-scenario session with per-lane behavioural groups
// answering each lane's own GO outputs.
func runControllerPacked(_ context.Context, ps *netlist.PackedSim, nGroups int,
	goIDs, gdoneIDs, gfailIDs, outIDs []int, golden []ctlTrace, pending uint64) []int {
	det := make([]int, netlist.Lanes)
	for i := range det {
		det[i] = -1
	}
	age := make([][]int, nGroups)
	for i := range age {
		age[i] = make([]int, netlist.Lanes)
	}
	cycle := 0
	ps.Reset()
	for scenario := 0; scenario < 2; scenario++ {
		failing := -1
		if scenario == 1 {
			failing = nGroups / 2
		}
		for _, step := range []struct{ mbs, mbr bool }{{false, true}, {true, false}} {
			ps.Set(bist.PinMBS, step.mbs)
			ps.Set(bist.PinMBR, step.mbr)
			ps.Set(bist.PinMSI, true)
			for i := 0; i < nGroups; i++ {
				ps.SetID(gdoneIDs[i], false)
				ps.SetID(gfailIDs[i], false)
			}
			ps.Tick(bist.PinMBC)
		}
		ps.Set(bist.PinMBS, false)
		for i := range age {
			for l := range age[i] {
				age[i][l] = 0
			}
		}
		for local := 0; local < 12*nGroups+12; local++ {
			ps.Settle()
			gb := golden[cycle]
			diff := (ps.GetWordID(outIDs[0]) ^ bcast(gb.mbo)) |
				(ps.GetWordID(outIDs[1]) ^ bcast(gb.mrd)) |
				(ps.GetWordID(outIDs[2]) ^ bcast(gb.mso))
			pending = markDiff(det, diff, pending, cycle)
			if cycle == len(golden)-1 || pending == 0 {
				return det
			}
			for i := 0; i < nGroups; i++ {
				var gdoneW, gfailW uint64
				if goW := ps.GetWordID(goIDs[i]); goW != 0 {
					for w := goW; w != 0; w &= w - 1 {
						l := bits.TrailingZeros64(w)
						age[i][l]++
						if age[i][l] >= 3+i%4 {
							gdoneW |= 1 << uint(l)
						}
						if i == failing && age[i][l] == 2 {
							gfailW |= 1 << uint(l)
						}
					}
				}
				ps.SetWordID(gdoneIDs[i], gdoneW)
				ps.SetWordID(gfailIDs[i], gfailW)
			}
			ps.Tick(bist.PinMBC)
			cycle++
		}
	}
	return det
}

// wrapDefaultsPacked broadcasts the INTEST posture to every lane.
func wrapDefaultsPacked(ps *netlist.PackedSim, core *testinfo.Core) {
	ps.Set("mode", true)
	ps.Set("safe", false)
	ps.Set("shift", false)
	ps.Set("update", false)
	ps.Set("shiftwir", false)
	ps.Set("updatewir", false)
	for i := 0; i < core.PIs; i++ {
		ps.Set(netlist.BitName("pi", i, core.PIs), false)
	}
	for _, pins := range [][]string{core.Resets, core.ScanEnables, core.TestEnables} {
		for _, p := range pins {
			ps.Set(p, false)
		}
	}
}

// packedScanObserver sees every comparison as a lane-word against the
// script-known expected bit; returning false aborts the stream (all
// pending lanes diverged).
type packedScanObserver func(cycle int, got uint64, want bool) bool

// wirBypassScriptPacked is wirBypassScript across 64 lanes; expected values
// are script constants, so they are broadcast for comparison.
func wirBypassScriptPacked(ps *netlist.PackedSim, pins wrapPins, obs packedScanObserver) int {
	cycle := 0
	shiftWIR := func(bitsIn []bool, echo []int) {
		ps.Set("shiftwir", true)
		for k, b := range bitsIn {
			ps.SetID(pins.wsi[0], b)
			ps.Settle()
			if echo != nil && echo[k] >= 0 {
				obs(cycle, ps.GetWordID(pins.wirso), echo[k] == 1)
			}
			ps.Tick("tck")
			cycle++
		}
		ps.Set("shiftwir", false)
		ps.Tick("updatewir")
	}
	shiftWIR([]bool{false, true, true}, nil)
	for _, b := range []bool{true, false, true, true, false} {
		ps.SetID(pins.wsi[0], b)
		ps.Tick("tck")
		cycle++
		obs(cycle, ps.GetWordID(pins.wso[0]), b)
	}
	shiftWIR([]bool{false, false, false}, []int{0, 1, 1})
	return cycle
}

// streamScanPacked is streamScan across 64 lanes: identical drive protocol,
// with every non-X wso expectation compared as a lane-word.
func streamScanPacked(ctx context.Context, ps *netlist.PackedSim, prog *pattern.Program,
	layout pattern.SessionLayout, core *testinfo.Core, pins wrapPins, obs packedScanObserver) error {
	setSE := func(v bool) {
		ps.Set("shift", v)
		for _, se := range core.ScanEnables {
			ps.Set(se, v)
		}
	}
	pollIn := equivPollCycles
	return prog.Stream(layout, func(c int, cyc *pattern.Cycle) bool {
		if pollIn--; pollIn <= 0 {
			pollIn = equivPollCycles
			if ctx.Err() != nil {
				return false
			}
		}
		switch cyc.Actions[core.Name] {
		case pattern.ActShift:
			setSE(true)
			for i, id := range pins.wsi {
				ps.SetID(id, cyc.TamIn[i] == pattern.B1)
			}
			ps.Settle()
			for i, id := range pins.wso {
				want := cyc.TamExpect[i]
				if want == pattern.BX {
					continue
				}
				if !obs(c, ps.GetWordID(id), want == pattern.B1) {
					return false
				}
			}
			ps.Tick("tck")
		case pattern.ActCapture:
			setSE(false)
			ps.Tick("update")
			ps.Tick("tck")
		default:
			ps.Tick("tck")
		}
		return true
	})
}

// runWrapperPacked mirrors the wrapper campaign's scalar run closure: WIR
// excursion first, then the translated scan program, detection cycles
// offset by the WIR script length.
func runWrapperPacked(ctx context.Context, ps *netlist.PackedSim, core *testinfo.Core,
	pins wrapPins, prog *pattern.Program, layout pattern.SessionLayout, pending uint64) []int {
	det := make([]int, netlist.Lanes)
	for i := range det {
		det[i] = -1
	}
	ps.Reset()
	wrapDefaultsPacked(ps, core)
	wirCycles := wirBypassScriptPacked(ps, pins, func(cycle int, got uint64, want bool) bool {
		pending = markDiff(det, got^bcast(want), pending, cycle)
		return pending != 0
	})
	if pending == 0 {
		return det
	}
	_ = streamScanPacked(ctx, ps, prog, layout, core, pins, func(cycle int, got uint64, want bool) bool {
		pending = markDiff(det, got^bcast(want), pending, wirCycles+cycle)
		return pending != 0
	})
	return det
}
