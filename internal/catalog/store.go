package catalog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// The store follows the same durability discipline as the campaign
// journal and the job database, with one deliberate difference in repair
// policy.  Every Put appends one CRC-framed line and fsyncs before
// returning, so an acknowledged record is on disk.  On open the file is
// replayed; a damaged *final* line is the torn tail of a crash mid-append
// — the record was never acknowledged — so it is dropped, counted
// (Dropped), and compacted away.  A damaged line anywhere *before* the
// tail cannot be a torn append: it means the medium corrupted history,
// and unlike a campaign journal the catalog cannot recompute what it
// lost.  That case is a typed ErrCatalogCorrupt refusing the whole open —
// never a silent hole in the population the recommender ranks over.

// ErrCatalogCorrupt reports interior damage: a record before the final
// line fails its CRC or does not parse.  The file needs operator
// attention (restore, or truncate past the damage); the store refuses to
// open rather than serve a silently incomplete catalog.
var ErrCatalogCorrupt = errors.New("catalog: store corrupt")

// ErrCatalogSchema reports a well-formed record written by a schema this
// binary does not speak.
var ErrCatalogSchema = errors.New("catalog: unsupported schema version")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crcOf(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// envelope frames one stored line: the record bytes plus their CRC-32C,
// so any single-bit flip inside the record is detected even when the
// result is still valid JSON.
type envelope struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

const storeFile = "catalog.jsonl"

// Store is the durable record set: an append-only fsync'd JSONL file plus
// an in-memory index keyed by (tenant, fingerprint), last write wins.
type Store struct {
	mu      sync.Mutex
	dir     string
	path    string
	f       *os.File
	recs    map[string]Record
	dropped int
}

func storeKey(tenant, fingerprint string) string { return tenant + "\x00" + fingerprint }

// Open loads (or creates) the catalog under dir, replaying and compacting
// the store file.  Torn tails are dropped and counted; interior damage is
// ErrCatalogCorrupt; foreign schemas are ErrCatalogSchema.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("catalog: open: %w", err)
	}
	s := &Store{dir: dir, path: filepath.Join(dir, storeFile), recs: map[string]Record{}}
	raw, err := os.ReadFile(s.path)
	switch {
	case os.IsNotExist(err):
	case err != nil:
		return nil, fmt.Errorf("catalog: open: %w", err)
	default:
		if err := s.replay(raw); err != nil {
			return nil, err
		}
	}
	if s.dropped > 0 {
		if err := s.compactLocked(); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("catalog: open: %w", err)
	}
	s.f = f
	return s, nil
}

// replay parses the store file into the index.  lines are 1-based in
// error messages because operators will look at the file with sed.
func (s *Store) replay(raw []byte) error {
	lines := bytes.Split(raw, []byte("\n"))
	// A file ending in '\n' splits into a trailing empty element; only
	// that final empty slot is benign.
	last := len(lines) - 1
	for last >= 0 && len(lines[last]) == 0 {
		last--
	}
	for i := 0; i <= last; i++ {
		line := lines[i]
		rec, err := decodeLine(line)
		if err != nil {
			if errors.Is(err, ErrCatalogSchema) {
				return fmt.Errorf("%w (line %d)", err, i+1)
			}
			if i == last {
				// Torn tail: the crash happened mid-append, before the
				// writer acknowledged.  Drop and repair.
				s.dropped++
				continue
			}
			return fmt.Errorf("%w: line %d of %s: %v", ErrCatalogCorrupt, i+1, s.path, err)
		}
		s.recs[storeKey(rec.Tenant, rec.Fingerprint)] = rec
	}
	return nil
}

// decodeLine validates one stored line end to end: envelope JSON, CRC,
// record JSON, schema, key fields.
func decodeLine(line []byte) (Record, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return Record{}, fmt.Errorf("bad envelope: %v", err)
	}
	if len(env.Rec) == 0 {
		return Record{}, errors.New("empty record")
	}
	if got := crcOf(env.Rec); got != env.CRC {
		return Record{}, fmt.Errorf("crc mismatch (stored %08x, computed %08x)", env.CRC, got)
	}
	var rec Record
	if err := json.Unmarshal(env.Rec, &rec); err != nil {
		return Record{}, fmt.Errorf("bad record: %v", err)
	}
	if rec.Schema != SchemaVersion {
		return Record{}, fmt.Errorf("%w: record declares %q, this binary speaks %q",
			ErrCatalogSchema, rec.Schema, SchemaVersion)
	}
	if rec.Fingerprint == "" {
		return Record{}, errors.New("record without fingerprint")
	}
	return rec, nil
}

// Put ingests one record: stamp the schema, append one CRC-framed line,
// fsync, remember.  The write is acknowledged only after the fsync — the
// same contract as the job database.
func (s *Store) Put(rec Record) error {
	if s == nil {
		return nil
	}
	if rec.Fingerprint == "" {
		return errors.New("catalog: record without fingerprint")
	}
	rec.Schema = SchemaVersion
	recBlob, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("catalog: put: %w", err)
	}
	line, err := json.Marshal(envelope{CRC: crcOf(recBlob), Rec: recBlob})
	if err != nil {
		return fmt.Errorf("catalog: put: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("catalog: store closed")
	}
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("catalog: put: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("catalog: put: %w", err)
	}
	s.recs[storeKey(rec.Tenant, rec.Fingerprint)] = rec
	return nil
}

// Get returns one record by its (tenant, fingerprint) key.
func (s *Store) Get(tenant, fingerprint string) (Record, bool) {
	if s == nil {
		return Record{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[storeKey(tenant, fingerprint)]
	return rec, ok
}

// Query filters List.  Zero values mean "no filter" (MaxCoverage 0 sets
// no ceiling; use MinCoverage for floors).
type Query struct {
	// Tenant restricts to one tenant's records ("" = all — local CLI use;
	// the daemon always sets it).
	Tenant string
	// Scenario/Kind match the record fields exactly.
	Scenario string
	Kind     string
	// MinCoverage/MaxCoverage bound Metrics.Coverage in percent.
	MinCoverage float64
	MaxCoverage float64
	// Limit caps the result count after sorting (0 = all).
	Limit int
}

func (q Query) match(rec Record) bool {
	if q.Tenant != "" && rec.Tenant != q.Tenant {
		return false
	}
	if q.Scenario != "" && rec.Scenario != q.Scenario {
		return false
	}
	if q.Kind != "" && rec.Kind != q.Kind {
		return false
	}
	if q.MinCoverage > 0 && rec.Metrics.Coverage < q.MinCoverage {
		return false
	}
	if q.MaxCoverage > 0 && rec.Metrics.Coverage > q.MaxCoverage {
		return false
	}
	return true
}

// List returns matching records in presentation order: scenario, seed,
// kind, TAM width, fingerprint — a total order independent of insertion
// and wall clock, so listings are byte-stable across restarts.
func (s *Store) List(q Query) []Record {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]Record, 0, len(s.recs))
	for _, rec := range s.recs {
		if q.match(rec) {
			out = append(out, rec)
		}
	}
	s.mu.Unlock()
	SortRecords(out)
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

// SortRecords orders records in the catalog's canonical presentation
// order (scenario, seed, kind, TAM width, fingerprint).
func SortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Config.TamWidth != b.Config.TamWidth {
			return a.Config.TamWidth < b.Config.TamWidth
		}
		return a.Fingerprint < b.Fingerprint
	})
}

// Len returns the record count.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Dropped reports how many torn-tail lines were repaired away on open —
// zero on every clean shutdown, and the audit trail when it is not.
func (s *Store) Dropped() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Compact rewrites the store to one line per record in canonical order
// via tmp + fsync + atomic rename, then reopens the append handle.
func (s *Store) Compact() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		if err := s.f.Close(); err != nil {
			return fmt.Errorf("catalog: compact: %w", err)
		}
		s.f = nil
	}
	if err := s.compactLocked(); err != nil {
		return err
	}
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("catalog: compact: %w", err)
	}
	s.f = f
	return nil
}

func (s *Store) compactLocked() error {
	recs := make([]Record, 0, len(s.recs))
	for _, rec := range s.recs {
		recs = append(recs, rec)
	}
	SortRecords(recs)
	tmp := s.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("catalog: compact: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, rec := range recs {
		recBlob, err := json.Marshal(rec)
		if err != nil {
			f.Close()
			return fmt.Errorf("catalog: compact: %w", err)
		}
		line, err := json.Marshal(envelope{CRC: crcOf(recBlob), Rec: recBlob})
		if err != nil {
			f.Close()
			return fmt.Errorf("catalog: compact: %w", err)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("catalog: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("catalog: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("catalog: compact: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("catalog: compact: %w", err)
	}
	// Make the rename durable before claiming the compaction happened.
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Close releases the append handle.  The index stays readable; further
// Puts fail.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
