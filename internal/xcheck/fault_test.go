package xcheck

import (
	"context"
	"testing"

	"steac/internal/memory"
)

func campaignsEqual(a, b CampaignResult) bool {
	if a.Sites != b.Sites || a.Total != b.Total || a.Detected != b.Detected ||
		len(a.Undetected) != len(b.Undetected) || len(a.Detections) != len(b.Detections) {
		return false
	}
	for i := range a.Undetected {
		if a.Undetected[i] != b.Undetected[i] {
			return false
		}
	}
	for i := range a.Detections {
		if a.Detections[i] != b.Detections[i] {
			return false
		}
	}
	return true
}

func TestTPGCampaignDetectsFaults(t *testing.T) {
	alg := mustAlg(t, "March X")
	mems := []memory.Config{{Name: "m0", Words: 8, Bits: 2, Kind: memory.SinglePort}}
	res, err := TPGCampaignContext(context.Background(), "tpg", alg, mems, Options{Workers: 2, MaxUndetected: -1})
	if err != nil {
		t.Fatalf("TPGCampaign: %v", err)
	}
	if res.Total == 0 || res.Total != res.Sites {
		t.Fatalf("want exhaustive campaign, got %d/%d", res.Total, res.Sites)
	}
	if res.Detected+len(res.Undetected) != res.Total {
		t.Fatalf("detected %d + undetected %d != total %d", res.Detected, len(res.Undetected), res.Total)
	}
	if res.UndetectedCount() != len(res.Undetected) {
		t.Fatalf("UndetectedCount %d != uncapped list length %d", res.UndetectedCount(), len(res.Undetected))
	}

	// The default report cap keeps counts exact while bounding the list.
	capped, err := TPGCampaignContext(context.Background(), "tpg", alg, mems, Options{Workers: 2})
	if err != nil {
		t.Fatalf("TPGCampaign (capped): %v", err)
	}
	if capped.Detected != res.Detected || capped.Total != res.Total ||
		capped.UndetectedCount() != res.UndetectedCount() {
		t.Fatalf("MaxUndetected cap changed the counts: %s vs %s", capped.String(), res.String())
	}
	if capped.UndetectedCount() > 32 && len(capped.Undetected) != 32 {
		t.Fatalf("default cap kept %d of %d survivors, want 32", len(capped.Undetected), capped.UndetectedCount())
	}
	// The BIST must observe a solid majority of its own logic through
	// DONE/FAIL alone.
	if res.Coverage() < 50 {
		t.Errorf("coverage %.1f%% suspiciously low: %s", res.Coverage(), res.String())
	}
	if res.Detected == 0 {
		t.Fatal("campaign detected nothing")
	}
	for _, det := range res.Detections {
		if det.Cycle < 0 || det.Cycle >= res.GoldenCycles {
			t.Errorf("detection cycle %d outside golden trace (%d)", det.Cycle, res.GoldenCycles)
		}
	}
}

func TestTPGCampaignDeterministicAcrossWorkers(t *testing.T) {
	alg := mustAlg(t, "MATS+")
	mems := []memory.Config{{Name: "m0", Words: 8, Bits: 2, Kind: memory.SinglePort}}
	var prev CampaignResult
	for i, w := range []int{1, 3, 7} {
		res, err := TPGCampaignContext(context.Background(), "tpg", alg, mems, Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if i > 0 && !campaignsEqual(prev, res) {
			t.Fatalf("workers=%d changed the result:\n%s\nvs\n%s", w, prev.String(), res.String())
		}
		prev = res
	}
}

func TestControllerCampaign(t *testing.T) {
	res, err := ControllerCampaignContext(context.Background(), "ctl", 3, Options{Workers: 2})
	if err != nil {
		t.Fatalf("ControllerCampaign: %v", err)
	}
	if res.Detected == 0 || res.Total == 0 {
		t.Fatalf("empty campaign: %s", res.String())
	}
	if res.Coverage() < 50 {
		t.Errorf("coverage %.1f%% suspiciously low", res.Coverage())
	}
}

func TestWrapperCampaign(t *testing.T) {
	core := xcheckCore("wflt", 4, 5, []int{7, 5}, 4, 77)
	res, err := WrapperCampaignContext(context.Background(), "wrap", core, 2, Options{Workers: 2})
	if err != nil {
		t.Fatalf("WrapperCampaign: %v", err)
	}
	if res.Total == 0 || res.Detected == 0 {
		t.Fatalf("empty campaign: %s", res.String())
	}
	if res.Coverage() < 50 {
		t.Errorf("coverage %.1f%% suspiciously low: %s", res.Coverage(), res.String())
	}
	// Core-internal faults are excluded by construction.
	for _, f := range res.Undetected {
		if f.Gate == "" {
			t.Errorf("empty fault site")
		}
	}
}

func TestWrapperCampaignSampling(t *testing.T) {
	core := xcheckCore("wsmp", 4, 5, []int{7, 5}, 3, 88)
	res, err := WrapperCampaignContext(context.Background(), "wrap", core, 2, Options{Workers: 2, MaxFaults: 20})
	if err != nil {
		t.Fatalf("WrapperCampaign: %v", err)
	}
	if res.Total != 20 || !res.Sampled() {
		t.Fatalf("want sampled 20 of %d, got %d sampled=%v", res.Sites, res.Total, res.Sampled())
	}
}
