package fabric

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"steac/internal/campaign"
	"steac/internal/scenario"
)

// TestFabricChaosMatrix is the headline harness: scenario-generated
// campaigns run on a multi-node fabric under seeded fault injection —
// node SIGKILL mid-lease (a real subprocess, killed without ceremony),
// heartbeat stalls past the TTL, duplicate/adversarial lease claims with
// a forged completion, and a coordinator restart that rebuilds the lease
// table from disk.  Every trial must converge and produce a merged report
// byte-identical to the single-process golden run, and every failure
// observed along the way must be a typed sentinel (awaitReport fails the
// trial on any non-ErrNotDone error).
//
// The matrix is 2 builtin scenarios x 10 seeds = 20 trials; the chaos
// kind cycles with the seed, so each kind appears four times.

// Env handshake for the subprocess victim node (see TestFabricNodeHelper).
const (
	fabricEnvURL   = "STEAC_FABRIC_NODE_URL"
	fabricEnvDir   = "STEAC_FABRIC_NODE_DIR"
	fabricEnvID    = "STEAC_FABRIC_NODE_ID"
	fabricEnvFP    = "STEAC_FABRIC_NODE_FP"
	fabricEnvDelay = "STEAC_FABRIC_NODE_DELAY_MS"
)

// TestFabricNodeHelper is not a test: it is the victim process body for
// the SIGKILL chaos trials, entered only when the env handshake is set.
// It joins the cluster as a slow node and works until the parent kills it.
func TestFabricNodeHelper(t *testing.T) {
	base := os.Getenv(fabricEnvURL)
	if base == "" {
		t.Skip("subprocess helper; driven by TestFabricChaosMatrix")
	}
	delayMS, _ := strconv.Atoi(os.Getenv(fabricEnvDelay))
	node := &Node{
		ID:         os.Getenv(fabricEnvID),
		Client:     &Client{Base: base},
		Dir:        os.Getenv(fabricEnvDir),
		Workers:    2,
		Poll:       5 * time.Millisecond,
		ShardDelay: time.Duration(delayMS) * time.Millisecond,
	}
	// The parent SIGKILLs us mid-lease; completing is not an error
	// either, just a slow parent.
	_ = node.RunCampaign(context.Background(), os.Getenv(fabricEnvFP))
}

var chaosKinds = []string{"none", "sigkill", "heartbeat-stall", "dup-claim", "coordinator-restart"}

// chaosScenario fixes one scenario's campaign: the smallest memory of the
// seed-1 chip, full generated fault universe, and a shard size that yields
// a few dozen shards for the lease table to deal out.
type chaosScenario struct {
	name      string
	shardSize int
}

func (cs chaosScenario) spec(t *testing.T) *campaign.CoverageSpec {
	t.Helper()
	chip, err := scenario.GenerateByName(cs.name, 1)
	if err != nil {
		t.Fatalf("generate %s: %v", cs.name, err)
	}
	return &campaign.CoverageSpec{
		Scenario: cs.name, ChipSeed: 1,
		Memory:    chip.SmallestMemories(1)[0].Name,
		AllFaults: true,
	}
}

func TestFabricChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix skipped in -short")
	}
	for _, cs := range []chaosScenario{
		{name: "manycore", shardSize: 1024},
		{name: "memory-heavy", shardSize: 512},
	} {
		cs := cs
		t.Run(cs.name, func(t *testing.T) {
			t.Parallel()
			spec := cs.spec(t)
			golden := goldenReport(t, spec)
			for seed := int64(0); seed < 10; seed++ {
				seed := seed
				kind := chaosKinds[int(seed)%len(chaosKinds)]
				t.Run(fmt.Sprintf("seed%d_%s", seed, kind), func(t *testing.T) {
					t.Parallel()
					runChaosTrial(t, cs, spec, golden, seed, kind)
				})
			}
		})
	}
}

func runChaosTrial(t *testing.T, cs chaosScenario, spec campaign.Spec, golden []byte, seed int64, kind string) {
	if kind == "sigkill" && runtime.GOOS != "linux" {
		t.Skip("SIGKILL subprocess trial is linux-only")
	}
	rng := rand.New(rand.NewSource(seed*7919 + int64(len(cs.name))))
	ttl := 300 * time.Millisecond
	c := newCluster(t, Config{TTL: ttl, LeaseMax: 2})
	info := c.submit(t, spec, cs.shardSize)
	fp := info.Fingerprint

	switch kind {
	case "none":
		runNodes(t, c, fp, 3, 5*time.Millisecond, nil)

	case "sigkill":
		victimDies(t, c, fp, rng, seed)
		runNodes(t, c, fp, 2, 5*time.Millisecond, nil)

	case "heartbeat-stall":
		// Node A stalls its heartbeat loop well past the TTL while each
		// of its shards takes longer than the TTL to simulate: its
		// leases expire mid-shard and node B steals them; A still
		// finishes and completes idempotently.
		var stallOnce sync.Once
		hb := 0
		stall := func() {
			hb++
			if hb >= 2 {
				stallOnce.Do(func() { time.Sleep(ttl*2 + time.Duration(rng.Intn(200))*time.Millisecond) })
			}
		}
		var wg sync.WaitGroup
		wg.Add(2)
		errs := make(chan error, 2)
		go func() {
			defer wg.Done()
			a := c.node("stall-a", 2)
			a.ShardDelay = ttl + 100*time.Millisecond
			a.StallHeartbeat = stall
			errs <- a.RunCampaign(context.Background(), fp)
		}()
		go func() {
			defer wg.Done()
			b := c.node("swift-b", 2)
			b.ShardDelay = 10 * time.Millisecond
			errs <- b.RunCampaign(context.Background(), fp)
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatalf("node error: %v", err)
			}
		}
		requireSteals(t, c, fp)

	case "dup-claim":
		// An impostor claims aggressively, never heartbeats or journals,
		// and forges one completion for a shard it never ran.  The
		// forged shard is absent from the journals, so the merge must
		// catch it, re-lease it, and still end byte-identical.
		impCtx, stopImp := context.WithCancel(context.Background())
		defer stopImp()
		forged := info.Shards - 1 - rng.Intn(info.Shards/4+1)
		cl := c.client()
		_, err := cl.Complete(impCtx, CompleteRequest{Node: "imp", Campaign: fp, Shard: forged})
		if err != nil {
			t.Fatalf("forged complete: %v", err)
		}
		go func() {
			for impCtx.Err() == nil {
				_, _ = cl.Lease(impCtx, LeaseRequest{Node: "imp", Campaign: fp, Max: 4})
				select {
				case <-impCtx.Done():
				case <-time.After(20 * time.Millisecond):
				}
			}
		}()
		runNodes(t, c, fp, 2, 15*time.Millisecond, nil)
		stopImp()

	case "coordinator-restart":
		// Restart the coordinator mid-campaign: the replacement rebuilds
		// its lease table from the manifests and journals on disk, the
		// nodes' in-flight leases silently vanish, and everything still
		// converges to the golden report.
		threshold := 2 + rng.Intn(4)
		restartAt := make(chan struct{})
		var once sync.Once
		onShard := func(string, int) {
			p, err := c.client().Progress(context.Background(), fp)
			if err == nil && p.ShardsComplete >= threshold {
				once.Do(func() { close(restartAt) })
			}
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			runNodes(t, c, fp, 2, 20*time.Millisecond, onShard)
		}()
		select {
		case <-restartAt:
			c.restart(t)
			<-done
		case <-done:
			select {
			case <-restartAt:
				// The nodes raced to the finish; restarting now still
				// proves recovery of a complete campaign from disk.
				c.restart(t)
			default:
				t.Fatal("campaign finished before the restart threshold")
			}
		}
	}

	got := c.awaitReport(t, fp)
	if !bytes.Equal(got, golden) {
		t.Fatalf("chaos %s/seed%d: merged report differs from single-process golden\n got  %s\n want %s",
			kind, seed, clip(got), clip(golden))
	}
	p, err := c.client().Progress(context.Background(), fp)
	if err != nil {
		t.Fatal(err)
	}
	if p.State != "done" || p.ShardsComplete != p.ShardsTotal || p.UnitsDone != p.UnitsTotal {
		t.Fatalf("done campaign progress inconsistent: %+v", p)
	}
}

// runNodes drives n in-process nodes to campaign completion and fails on
// any node error.
func runNodes(t *testing.T, c *cluster, fp string, n int, delay time.Duration, onShard func(string, int)) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		node := c.node(fmt.Sprintf("n%d", i), 2)
		node.ShardDelay = delay
		node.OnShard = onShard
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- node.RunCampaign(context.Background(), fp)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("node error: %v", err)
		}
	}
}

// victimDies launches a subprocess node against the cluster, waits until
// the coordinator shows it holding live leases (and, for the second
// sigkill seed, at least one journaled completion), then SIGKILLs it
// mid-lease.
func victimDies(t *testing.T, c *cluster, fp string, rng *rand.Rand, seed int64) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestFabricNodeHelper$")
	cmd.Env = append(os.Environ(),
		fabricEnvURL+"="+c.srv.URL,
		fabricEnvDir+"="+c.cfg.Dir,
		fabricEnvID+"=victim",
		fabricEnvFP+"="+fp,
		fabricEnvDelay+"=2000",
	)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start victim: %v", err)
	}
	needComplete := seed >= 5 // the later sigkill seed also proves journaled shards survive
	// A jittered beat before watching, so the kill lands at a
	// seed-dependent point of the victim's 2s-per-shard window.
	time.Sleep(time.Duration(rng.Intn(100)) * time.Millisecond)
	deadline := time.Now().Add(45 * time.Second)
	for {
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("victim never reached a killable state")
		}
		p, err := c.client().Progress(context.Background(), fp)
		if err == nil {
			var v *NodeProgress
			for i := range p.Nodes {
				if p.Nodes[i].Node == "victim" {
					v = &p.Nodes[i]
				}
			}
			// Kill only while the victim demonstrably holds live
			// leases; each shard occupies it for ~2s, so the kill below
			// lands mid-lease.
			if v != nil && v.Leased > 0 && (!needComplete || v.Completed >= 1) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill victim: %v", err)
	}
	cmd.Wait() // reap; the exit status is the kill
	t.Cleanup(func() { requireSteals(t, c, fp) })
}

// requireSteals asserts that at least one shard was stolen from an expired
// lease — the property the chaos kind was injected to provoke.
func requireSteals(t *testing.T, c *cluster, fp string) {
	t.Helper()
	p, err := c.client().Progress(context.Background(), fp)
	if err != nil {
		t.Fatal(err)
	}
	stolen := 0
	for _, np := range p.Nodes {
		stolen += np.Stolen
	}
	if stolen == 0 {
		t.Fatalf("no shard was stolen; chaos did not bite (%+v)", p.Nodes)
	}
}

// clip keeps failure output readable for large reports.
func clip(b []byte) string {
	if len(b) > 400 {
		return string(b[:400]) + "…"
	}
	return string(b)
}
