package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Typed checkpoint errors.  Repairable damage (a torn or bit-flipped
// journal entry) never surfaces as an error — the shard is re-run — but
// structural problems that could hide wrong results fail loudly with one
// of these, so callers can distinguish "stale format" from "wrong
// campaign" from "unreadable".
var (
	// ErrSchemaVersion marks a checkpoint (manifest or journal entry)
	// written by an incompatible format version.  Resuming would require
	// guessing at semantics, so it is refused rather than repaired.
	ErrSchemaVersion = errors.New("campaign: checkpoint schema version mismatch")
	// ErrCheckpointMismatch marks a checkpoint whose manifest fingerprint
	// does not match the spec being run: the directory belongs to a
	// different campaign.
	ErrCheckpointMismatch = errors.New("campaign: checkpoint belongs to a different campaign")
	// ErrCheckpointCorrupt marks a manifest that cannot be parsed or
	// fails its own integrity checks.  The journal can self-heal entry by
	// entry; the manifest is the root of trust and cannot.
	ErrCheckpointCorrupt = errors.New("campaign: checkpoint manifest corrupt")
)

const (
	manifestName = "MANIFEST.json"
	journalName  = "journal.jsonl"
)

// castagnoli is the CRC-32C table used for journal entry checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// manifest is the checkpoint root of trust, written once (atomically, via
// temp file + rename + fsync) when the checkpoint directory is created.
type manifest struct {
	Schema      string          `json:"schema"`
	Kind        string          `json:"kind"`
	Spec        json.RawMessage `json:"spec"`
	Fingerprint string          `json:"fingerprint"`
	Units       int             `json:"units"`
	ShardSize   int             `json:"shard_size"`
	Shards      int             `json:"shards"`
}

// entry is one journal line: a completed shard's outcome vector, keyed by
// the shard's content address and checksummed with CRC-32C over the
// outcomes.  Entries are self-validating; any field that fails to check
// out drops the whole entry and the shard re-runs.
type entry struct {
	Schema string  `json:"schema"`
	Shard  int     `json:"shard"`
	Key    string  `json:"key"`
	Out    []int64 `json:"out"`
	CRC    uint32  `json:"crc"`
}

// entryCRC checksums an outcome vector for the journal.
func entryCRC(shard int, key string, out []int64) uint32 {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%d:%s", shard, key)
	for _, v := range out {
		fmt.Fprintf(&buf, ":%d", v)
	}
	return crc32.Checksum(buf.Bytes(), castagnoli)
}

// marshalEntry renders one journal line (newline-terminated).
func marshalEntry(man manifest, shard int, out []int64) ([]byte, error) {
	lo, hi := shardBounds(man.Units, man.ShardSize, shard)
	key := shardKey(man.Fingerprint, shard, lo, hi)
	line, err := json.Marshal(entry{
		Schema: SchemaVersion, Shard: shard, Key: key, Out: out,
		CRC: entryCRC(shard, key, out),
	})
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// scanJournal reads a journal file and validates every entry against the
// manifest, returning the surviving shard outcomes and the count of
// dropped (repairable) entries.  Entries are judged one by one:
//
//   - wrong schema version on an otherwise well-formed entry → loud
//     ErrSchemaVersion (a format change can silently re-interpret data;
//     never guess);
//   - undecodable line, CRC mismatch, wrong key, wrong length, shard
//     index out of range, duplicate shard → drop and count as repaired
//     (the shard just re-runs, cheap and always safe);
//   - a torn final line (no trailing newline, from a crash mid-append) →
//     same repair path.
//
// A missing journal is an empty one.
func scanJournal(path string, man manifest) (loaded map[int][]int64, repaired int, err error) {
	loaded = map[int][]int64{}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return loaded, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("campaign: open journal: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e entry
		if err := json.Unmarshal(line, &e); err != nil {
			repaired++
			continue
		}
		if e.Schema != SchemaVersion {
			return nil, 0, fmt.Errorf("%w: journal entry for shard %d has %q, this binary speaks %q",
				ErrSchemaVersion, e.Shard, e.Schema, SchemaVersion)
		}
		if e.Shard < 0 || e.Shard >= man.Shards {
			repaired++
			continue
		}
		lo, hi := shardBounds(man.Units, man.ShardSize, e.Shard)
		if len(e.Out) != hi-lo ||
			e.Key != shardKey(man.Fingerprint, e.Shard, lo, hi) ||
			e.CRC != entryCRC(e.Shard, e.Key, e.Out) {
			repaired++
			continue
		}
		if _, dup := loaded[e.Shard]; dup {
			repaired++
			continue
		}
		loaded[e.Shard] = e.Out
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("campaign: scan journal: %w", err)
	}
	return loaded, repaired, nil
}

// sideJournals lists the per-writer journal files of a multi-writer
// checkpoint directory (journal-<writer>.jsonl), sorted by name so scans
// are deterministic.
func sideJournals(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "journal-*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("campaign: list journals: %w", err)
	}
	sort.Strings(matches)
	return matches, nil
}

// scanJournals merges every journal of a checkpoint directory — the
// primary journal.jsonl plus any per-writer side journals left by
// distributed fabric nodes — under the per-entry validation of
// scanJournal.  Within one file a duplicate shard is damage (a writer
// never journals a shard twice) and counts as repaired; across files a
// duplicate is the expected trace of a stolen-and-still-completed shard,
// so the first valid entry wins and the rest are ignored silently.  The
// campaign outcome is deterministic, so any two valid entries for the same
// shard carry identical vectors.
func scanJournals(dir string, man manifest) (loaded map[int][]int64, repaired int, err error) {
	files, err := sideJournals(dir)
	if err != nil {
		return nil, 0, err
	}
	files = append([]string{filepath.Join(dir, journalName)}, files...)
	loaded = map[int][]int64{}
	for _, path := range files {
		one, rep, err := scanJournal(path, man)
		if err != nil {
			return nil, 0, err
		}
		repaired += rep
		for shard, out := range one {
			if _, dup := loaded[shard]; !dup {
				loaded[shard] = out
			}
		}
	}
	return loaded, repaired, nil
}

// validateManifest checks a decoded manifest's own integrity (not its
// match against any particular campaign).
func validateManifest(man manifest) error {
	if man.Schema != SchemaVersion {
		return fmt.Errorf("%w: checkpoint has %q, this binary speaks %q",
			ErrSchemaVersion, man.Schema, SchemaVersion)
	}
	if man.Fingerprint == "" || man.Units <= 0 || man.ShardSize <= 0 ||
		man.Shards != shardCount(man.Units, man.ShardSize) {
		return fmt.Errorf("%w: inconsistent geometry", ErrCheckpointCorrupt)
	}
	return nil
}

// checkpoint is an open checkpoint directory: the validated manifest, the
// shards already completed by earlier runs, and an append handle on the
// journal.
type checkpoint struct {
	dir      string
	man      manifest
	loaded   map[int][]int64 // shard index -> outcome vector
	repaired int             // journal entries dropped as damaged
	journal  *os.File
}

// openCheckpoint opens dir as a checkpoint for the campaign described by
// want, creating it if absent.  An existing checkpoint must carry the
// current schema version (ErrSchemaVersion), a parseable manifest
// (ErrCheckpointCorrupt), and the same fingerprint (ErrCheckpointMismatch).
// The journal is then loaded via scanJournal, and compacted to only the
// surviving entries if anything was dropped, so damage does not accumulate
// across resumes.
func openCheckpoint(dir string, want manifest) (*checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: create checkpoint dir: %w", err)
	}
	ck := &checkpoint{dir: dir, man: want}

	manPath := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(manPath)
	switch {
	case errors.Is(err, os.ErrNotExist):
		if err := writeFileAtomic(manPath, mustMarshalManifest(want)); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, fmt.Errorf("campaign: read manifest: %w", err)
	default:
		var have manifest
		if err := json.Unmarshal(raw, &have); err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrCheckpointCorrupt, manPath, err)
		}
		if err := validateManifest(have); err != nil {
			return nil, err
		}
		if have.Fingerprint != want.Fingerprint {
			return nil, fmt.Errorf("%w: checkpoint %s.. vs campaign %s..",
				ErrCheckpointMismatch, have.Fingerprint[:12], want.Fingerprint[:12])
		}
		if have.Units != want.Units {
			// Same fingerprint implies the same spec, which implies the
			// same unit count; a divergence means the manifest is damaged.
			return nil, fmt.Errorf("%w: %s: units %d vs campaign %d",
				ErrCheckpointCorrupt, manPath, have.Units, want.Units)
		}
		// The manifest's shard geometry wins over the requested one.
		ck.man = have
	}

	journalPath := filepath.Join(dir, journalName)
	ck.loaded, ck.repaired, err = scanJournals(dir, ck.man)
	if err != nil {
		return nil, err
	}
	// Compact when damage was dropped, and also when side journals from a
	// multi-writer (fabric) run exist: a single-process resume owns the
	// directory exclusively, so it may fold everything into the primary
	// journal and delete the side files.  (Live fabric directories are only
	// read via LoadOutcomes, which never compacts.)
	sides, err := sideJournals(dir)
	if err != nil {
		return nil, err
	}
	if ck.repaired > 0 || len(sides) > 0 {
		if err := ck.compactJournal(journalPath); err != nil {
			return nil, err
		}
		// The primary journal now holds every surviving entry; the side
		// journals are redundant.  A crash part-way through the removals
		// just leaves benign cross-file duplicates for the next scan.
		for _, side := range sides {
			if err := os.Remove(side); err != nil {
				return nil, fmt.Errorf("campaign: compact journal: %w", err)
			}
		}
	}

	journal, err := os.OpenFile(journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open journal: %w", err)
	}
	ck.journal = journal
	return ck, nil
}

// compactJournal atomically rewrites the journal with only the surviving
// entries, in shard order.
func (ck *checkpoint) compactJournal(path string) error {
	var buf bytes.Buffer
	for shard := 0; shard < ck.man.Shards; shard++ {
		out, ok := ck.loaded[shard]
		if !ok {
			continue
		}
		line, err := marshalEntry(ck.man, shard, out)
		if err != nil {
			return fmt.Errorf("campaign: compact journal: %w", err)
		}
		buf.Write(line)
	}
	return writeFileAtomic(path, buf.Bytes())
}

// append journals one completed shard: marshal, write one line, fsync.
// The shard is only acknowledged to the caller (and the progress observer)
// after the sync returns, so a completed shard survives any later crash.
func (ck *checkpoint) append(shard int, out []int64) error {
	line, err := marshalEntry(ck.man, shard, out)
	if err != nil {
		return fmt.Errorf("campaign: journal shard %d: %w", shard, err)
	}
	if _, err := ck.journal.Write(line); err != nil {
		return fmt.Errorf("campaign: journal shard %d: %w", shard, err)
	}
	if err := ck.journal.Sync(); err != nil {
		return fmt.Errorf("campaign: sync journal: %w", err)
	}
	return nil
}

func (ck *checkpoint) close() {
	if ck.journal != nil {
		ck.journal.Close()
	}
}

func mustMarshalManifest(m manifest) []byte {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		panic(err) // manifest fields are all marshalable
	}
	return append(b, '\n')
}

// writeFileAtomic writes data to path via a temp file in the same
// directory, fsyncs the file, renames it over path, and fsyncs the
// directory — the standard crash-safe publish.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: write %s: %w", filepath.Base(path), err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: write %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: sync %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaign: close %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("campaign: publish %s: %w", filepath.Base(path), err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// CheckpointInfo is the durable state of a checkpoint directory, as
// reported by Inspect.
type CheckpointInfo struct {
	Kind        string          `json:"kind"`
	Fingerprint string          `json:"fingerprint"`
	Spec        json.RawMessage `json:"spec"`
	Units       int             `json:"units"`
	ShardSize   int             `json:"shard_size"`
	Shards      int             `json:"shards"`
	// ShardsDone counts valid journaled shards; Repaired counts damaged
	// entries that a resume would drop and re-run.
	ShardsDone int `json:"shards_done"`
	Repaired   int `json:"repaired"`
}

// Inspect reads a checkpoint directory without running anything: manifest
// plus a validation pass over the journal.  It shares the loud-error
// taxonomy of resume (ErrSchemaVersion / ErrCheckpointCorrupt /
// ErrCheckpointMismatch is not applicable — there is no spec to compare)
// but does not compact or otherwise modify the directory.
func Inspect(dir string) (*CheckpointInfo, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("campaign: read manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	if err := validateManifest(man); err != nil {
		return nil, err
	}
	loaded, repaired, err := scanJournals(dir, man)
	if err != nil {
		return nil, err
	}
	return &CheckpointInfo{
		Kind: man.Kind, Fingerprint: man.Fingerprint, Spec: man.Spec,
		Units: man.Units, ShardSize: man.ShardSize, Shards: man.Shards,
		ShardsDone: len(loaded), Repaired: repaired,
	}, nil
}
