package serve

import "errors"

// ErrQueueFull is the admission-control sentinel: the request was
// well-formed but the bounded FIFO queue has no room.  The HTTP layer maps
// it to 429 Too Many Requests with a Retry-After hint; programmatic
// callers match it with errors.Is.
var ErrQueueFull = errors.New("serve: queue full")

// ErrDraining is returned for new work submitted after Drain began; the
// HTTP layer maps it to 503 Service Unavailable so load balancers move on
// while in-flight requests finish.
var ErrDraining = errors.New("serve: draining")
