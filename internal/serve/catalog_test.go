package serve

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"steac/internal/catalog"
)

// The results-catalog contract tests: records are scoped to the tenant
// that computed them, daemons without -catalog-dir answer a typed 400,
// and a catalog-enabled daemon backfills finished jobs from the durable
// job database it finds on startup.  The full seeded battery (goldens,
// SIGKILL durability, cross-validated recommendations) lives in
// catalog_e2e_test.go.

// schedReq is a cheap catalogable request: one scheduling sweep yields
// one record per pin budget.
func schedReq(chip string, seed int64, pins ...int) SchedRequest {
	return SchedRequest{Chip: chip, Seed: seed, TestPins: pins}
}

func TestCatalogTenantScoping(t *testing.T) {
	_, _, base := newTenantServer(t, Config{Workers: 2, CatalogDir: t.TempDir()}, []Tenant{
		{ID: "alpha", Key: "ka"}, {ID: "beta", Key: "kb"},
	})
	ctx := context.Background()
	alpha := &Client{Base: base, APIKey: "ka"}
	beta := &Client{Base: base, APIKey: "kb"}

	if _, _, err := alpha.Sched(ctx, schedReq("memory-heavy", 1, 16, 22)); err != nil {
		t.Fatal(err)
	}

	// The owner lists both sweep points, all attributed to alpha.
	al, err := alpha.Catalog(ctx, catalog.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if al.Total != 2 || len(al.Records) != 2 {
		t.Fatalf("alpha catalog = %d/%d records, want 2/2", len(al.Records), al.Total)
	}
	for _, rec := range al.Records {
		if rec.Tenant != "alpha" {
			t.Fatalf("record %s owned by %q, want alpha", rec.Fingerprint, rec.Tenant)
		}
	}

	// The other tenant sees an empty catalog, and fetching alpha's record
	// by fingerprint is the same typed 404 as a nonexistent one — the
	// fingerprint's existence is not disclosed across tenants.
	bl, err := beta.Catalog(ctx, catalog.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if bl.Total != 0 || len(bl.Records) != 0 {
		t.Fatalf("beta catalog = %d/%d records, want empty", len(bl.Records), bl.Total)
	}
	fp := al.Records[0].Fingerprint
	if _, err := beta.CatalogRecord(ctx, fp); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cross-tenant fetch err = %v, want ErrNotFound", err)
	}
	if got, err := alpha.CatalogRecord(ctx, fp); err != nil || got.Fingerprint != fp {
		t.Fatalf("owner fetch = %+v, %v", got, err)
	}

	// Recommendations draw only on the caller's records: beta has none.
	if _, err := beta.Recommend(ctx, RecommendRequest{Scenario: "memory-heavy", Seed: 2}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("beta recommend err = %v, want ErrNotFound", err)
	}
	if _, err := alpha.Recommend(ctx, RecommendRequest{Scenario: "memory-heavy", Seed: 2}); err != nil {
		t.Fatalf("alpha recommend: %v", err)
	}
}

func TestCatalogDisabled(t *testing.T) {
	// No CatalogDir: every catalog surface is a typed 400, not a 404 —
	// the route exists, the deployment just runs without the feature.
	_, ts := newTestServer(t, Config{Workers: 1})
	c := &Client{Base: ts.URL}
	ctx := context.Background()
	if _, err := c.Catalog(ctx, catalog.Query{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("catalog err = %v, want ErrBadRequest", err)
	}
	if _, err := c.Recommend(ctx, RecommendRequest{Scenario: "dsc"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("recommend err = %v, want ErrBadRequest", err)
	}
	if _, err := c.CatalogCompare(ctx, "csv", catalog.Query{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("compare err = %v, want ErrBadRequest", err)
	}
}

func TestCatalogBackfill(t *testing.T) {
	// A daemon that ran jobs without a catalog leaves them in the job
	// database; enabling -catalog-dir later must ingest those finished
	// jobs on startup.
	jobDir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	s1, ts1 := newTestServer(t, Config{Workers: 2, JobDir: jobDir})
	c1 := &Client{Base: ts1.URL}
	spec := json.RawMessage(`{"algorithm":"March C-","config":{"Name":"bf","Words":64,"Bits":4},"all_faults":true}`)
	st, err := c1.SubmitJob(ctx, JobRequest{Kind: "memfault", Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c1.WaitJob(ctx, st.ID, 0, nil); err != nil || st.State != jobDone {
		t.Fatalf("job = %+v, %v, want done", st, err)
	}
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// Same job dir, catalog now enabled: the finished campaign appears
	// without re-running anything.
	_, ts2 := newTestServer(t, Config{Workers: 2, JobDir: jobDir, CatalogDir: t.TempDir()})
	c2 := &Client{Base: ts2.URL}
	cl, err := c2.Catalog(ctx, catalog.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Total != 1 || len(cl.Records) != 1 {
		t.Fatalf("backfilled catalog = %d/%d records, want 1/1", len(cl.Records), cl.Total)
	}
	rec := cl.Records[0]
	if rec.Kind != catalog.KindMemfault || rec.Fingerprint != st.Fingerprint {
		t.Fatalf("backfilled record = kind %q fp %q, want %q %q",
			rec.Kind, rec.Fingerprint, catalog.KindMemfault, st.Fingerprint)
	}
	if rec.Metrics.Coverage <= 0 || rec.Metrics.Faults == 0 {
		t.Fatalf("backfilled metrics = %+v, want decoded coverage", rec.Metrics)
	}
}
