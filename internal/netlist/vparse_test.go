package netlist

import (
	"strings"
	"testing"
)

// roundTrip asserts emit -> parse -> emit is a fixed point and that the
// parsed design matches structurally.
func roundTrip(t *testing.T, d *Design) *Design {
	t.Helper()
	v1, err := d.EmitVerilogString()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseVerilog(v1, d.Lib)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, v1)
	}
	back.Top = d.Top
	v2, err := back.EmitVerilogString()
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("round trip not a fixed point:\n--- emitted ---\n%s\n--- re-emitted ---\n%s", v1, v2)
	}
	return back
}

func TestVerilogRoundTripStructural(t *testing.T) {
	d := NewDesign("rt", nil)
	leaf := NewModule("leaf")
	leaf.MustPort("a", In, 2)
	leaf.MustPort("z", Out, 1)
	leaf.MustInstance("g0", CellAnd2, map[string]string{"A": "a[0]", "B": "a[1]", "Z": "mid"})
	leaf.MustInstance("g1", CellInv, map[string]string{"A": "mid", "Z": "z"})
	d.MustAddModule(leaf)
	top := NewModule("top")
	top.MustPort("x", In, 2)
	top.MustPort("y", Out, 1)
	// Bus-bit formals exercise escaped identifiers.
	top.MustInstance("u0", "leaf", map[string]string{"a[0]": "x[0]", "a[1]": "x[1]", "z": "y"})
	d.MustAddModule(top)
	d.Top = "top"

	back := roundTrip(t, d)
	if back.Module("top").Instance("u0").Conns["a[0]"] != "x[0]" {
		t.Fatal("escaped bus-bit formal lost")
	}
	a1, err := d.Area("top")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := back.Area("top")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("area changed through round trip: %v vs %v", a1, a2)
	}
	if issues := back.Lint(); len(issues) != 0 {
		t.Fatalf("parsed design lint: %v", issues)
	}
}

func TestVerilogRoundTripBehavioral(t *testing.T) {
	d := NewDesign("rt", nil)
	ip := NewModule("ip")
	ip.Behavioral = true
	ip.AreaOverride = 4242
	ip.MustPort("clk", In, 1)
	d.MustAddModule(ip)
	plain := NewModule("plain")
	plain.MustPort("clk", In, 1)
	d.MustAddModule(plain)
	top := NewModule("top")
	top.MustPort("clk", In, 1)
	top.MustInstance("u_ip", "ip", map[string]string{"clk": "clk"})
	top.MustInstance("u_plain", "plain", map[string]string{"clk": "clk"})
	d.MustAddModule(top)
	d.Top = "top"

	back := roundTrip(t, d)
	bip := back.Module("ip")
	if !bip.Behavioral || bip.AreaOverride != 4242 {
		t.Fatalf("behavioral banner lost: %+v", bip)
	}
	if back.Module("plain").Behavioral {
		t.Fatal("plain module marked behavioral")
	}
}

// The flagship round trip: the whole DFT-inserted wrapper netlist survives
// emit -> parse -> emit, and the parsed copy still simulates.
func TestVerilogRoundTripGeneratedWrapperSim(t *testing.T) {
	d := NewDesign("d", nil)
	if _, err := (func() (*Module, error) { return GenerateWBRCellForTest(d) })(); err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, d)
	sim, err := NewSimulator(back, back.Top)
	if err != nil {
		t.Fatal(err)
	}
	// Shift a bit through the parsed WBR cell.
	sim.Set("SHIFT", true)
	sim.Set("CTI", true)
	if err := sim.Tick("WRCK"); err != nil {
		t.Fatal(err)
	}
	if !sim.Get("CTO") {
		t.Fatal("parsed WBR cell does not shift")
	}
}

// GenerateWBRCellForTest builds the same 26-gate WBR cell the wrapper
// package generates, locally (this package cannot import wrapper).
func GenerateWBRCellForTest(d *Design) (*Module, error) {
	m := NewModule("wbr_cell")
	for _, p := range []string{"CFI", "CTI", "WRCK", "SHIFT", "UPDATE", "MODE", "SAFE"} {
		m.MustPort(p, In, 1)
	}
	m.MustPort("CFO", Out, 1)
	m.MustPort("CTO", Out, 1)
	m.MustInstance("capmux", CellMux2, map[string]string{"A": "CFI", "B": "CTI", "S": "SHIFT", "Z": "shd"})
	m.MustInstance("shft", CellDFF, map[string]string{"D": "shd", "CK": "WRCK", "Q": "CTO"})
	m.MustInstance("updl", CellLatchL, map[string]string{"D": "CTO", "EN": "UPDATE", "Q": "updq"})
	m.MustInstance("safe0", CellTie0, map[string]string{"Z": "sv"})
	m.MustInstance("safemux", CellMux2, map[string]string{"A": "updq", "B": "sv", "S": "SAFE", "Z": "sq"})
	m.MustInstance("modemux", CellMux2, map[string]string{"A": "CFI", "B": "sq", "S": "MODE", "Z": "CFO"})
	if err := d.AddModule(m); err != nil {
		return nil, err
	}
	return m, nil
}

func TestParseVerilogErrors(t *testing.T) {
	for name, src := range map[string]string{
		"empty":        "",
		"garbage":      "hello world",
		"no semicolon": "module m(a) input a; endmodule",
		"bad range":    "module m(a); input [3:1] a; endmodule",
		"no direction": "module m(a); endmodule",
		"bad char":     "module m(); €",
		"empty escape": "module m(); wire \\ ;",
		"dup module":   "module m(); endmodule module m(); endmodule",
		"unterminated": "module m(a); input a;",
	} {
		if _, err := ParseVerilog(src, nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseVerilogHandwritten(t *testing.T) {
	src := `
// a hand-written netlist
module half_adder(a, b, s, c);
  input a, b;
  output s, c;
  XOR2 x (.A(a), .B(b), .Z(s));
  AND2 g (.A(a), .B(b), .Z(c));
endmodule
`
	d, err := ParseVerilog(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(d, "half_adder")
	if err != nil {
		t.Fatal(err)
	}
	sim.Set("a", true)
	sim.Set("b", true)
	if err := sim.Settle(); err != nil {
		t.Fatal(err)
	}
	if sim.Get("s") || !sim.Get("c") {
		t.Fatalf("1+1: s=%v c=%v", sim.Get("s"), sim.Get("c"))
	}
	if !strings.Contains(d.Top, "half_adder") {
		t.Fatalf("top = %s", d.Top)
	}
}
