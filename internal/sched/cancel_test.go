package sched

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"steac/internal/wrapper"
)

// cancelBudget is the promptness contract from DESIGN.md: once ctx fires,
// the partition search must unwind within a quarter second.
const cancelBudget = 250 * time.Millisecond

// TestSessionBasedContextCancel cancels the session-partition search
// mid-flight.  The branch-and-bound prunes a 10-core search quickly, so
// the worker loops searches back-to-back until the cancel lands — whichever
// search is in flight (or starts next) must surface the wrapped
// context.Canceled promptly and return no schedule.
func TestSessionBasedContextCancel(t *testing.T) {
	cores := SyntheticSOC(42, 10) // 10 jobs: the exhaustive-search path
	tests, err := BuildTests(cores, SyntheticBIST(42, 5))
	if err != nil {
		t.Fatal(err)
	}
	res := SyntheticResources(cores)
	res.Partitioner = wrapper.LPT
	res.Workers = 4

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type result struct {
		s   *Schedule
		err error
	}
	done := make(chan result, 1)
	go func() {
		for {
			s, err := SessionBasedContext(ctx, tests, res)
			if err != nil {
				done <- result{s, err}
				return
			}
		}
	}()

	time.Sleep(20 * time.Millisecond)
	cancel()
	deadline := time.Now().Add(cancelBudget)

	select {
	case res := <-done:
		if time.Now().After(deadline) {
			t.Errorf("search returned later than %v after cancel", cancelBudget)
		}
		if !errors.Is(res.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled in the chain", res.err)
		}
		if !strings.Contains(res.err.Error(), "sched: session search") {
			t.Errorf("err %q does not name the search stage", res.err)
		}
		if res.s != nil {
			t.Errorf("canceled search returned a partial schedule: %+v", res.s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("search did not return after cancel")
	}
}

// TestSessionBasedContextDeadline checks that an expired deadline surfaces
// as context.DeadlineExceeded through the same wrapping.
func TestSessionBasedContextDeadline(t *testing.T) {
	cores := SyntheticSOC(7, 8)
	tests, err := BuildTests(cores, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := SyntheticResources(cores)
	res.Partitioner = wrapper.LPT

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := SessionBasedContext(ctx, tests, res); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in the chain", err)
	}
}
