package sched

import (
	"context"
	"reflect"
	"testing"

	"steac/internal/wrapper"
)

// referenceBest re-derives the exhaustive-search optimum with a plain,
// unpruned enumeration: every partition fully designed, first strict
// minimum in enumeration order wins.  The branch-and-bound search (any
// worker count) must reproduce it exactly.
func referenceBest(t *testing.T, tests []Test, res Resources) searchResult {
	t.Helper()
	jobs, bist := buildJobs(tests)
	tc := newTimeCache(res.Partitioner)
	var best searchResult
	forEachPartition(jobs, func(part [][]coreJob) {
		r := evalPartition(part, bist, res, tc)
		if r.ok && (!best.ok || r.total < best.total) {
			best = r
		}
	})
	if !best.ok {
		t.Fatal("reference enumeration found no feasible partition")
	}
	return best
}

// TestSessionBasedParallelDeterminism is the scheduler-side determinism
// guarantee: the parallel branch-and-bound finds the same schedule as a
// serial run and as the unpruned reference enumeration.
func TestSessionBasedParallelDeterminism(t *testing.T) {
	fixtures := []struct {
		name  string
		tests func(t *testing.T) []Test
		res   Resources
	}{
		{
			name: "dsc",
			tests: func(t *testing.T) []Test {
				tests, err := BuildTests(dscCores(), dscBist())
				if err != nil {
					t.Fatal(err)
				}
				return tests
			},
			res: dscResources(),
		},
		{
			name: "synthetic8",
			tests: func(t *testing.T) []Test {
				cores := SyntheticSOC(42, 8)
				tests, err := BuildTests(cores, SyntheticBIST(42, 5))
				if err != nil {
					t.Fatal(err)
				}
				return tests
			},
			res: func() Resources {
				r := SyntheticResources(SyntheticSOC(42, 8))
				r.Partitioner = wrapper.LPT
				return r
			}(),
		},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			tests := fx.tests(t)
			ref := referenceBest(t, tests, fx.res)

			serialRes, parallelRes := fx.res, fx.res
			serialRes.Workers = 1
			parallelRes.Workers = 8
			serial, err := SessionBasedContext(context.Background(), tests, serialRes)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := SessionBasedContext(context.Background(), tests, parallelRes)
			if err != nil {
				t.Fatal(err)
			}
			if serial.TotalCycles != ref.total {
				t.Errorf("serial search total %d != reference optimum %d",
					serial.TotalCycles, ref.total)
			}
			if parallel.TotalCycles != serial.TotalCycles {
				t.Errorf("parallel total %d != serial total %d",
					parallel.TotalCycles, serial.TotalCycles)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("parallel schedule differs from serial:\nserial:   %+v\nparallel: %+v",
					serial, parallel)
			}
		})
	}
}

// TestGreedyDurationsPropagatesErrors locks in the satellite fix: a core
// whose scan time cannot be estimated must fail the greedy packing loudly
// instead of being silently weighted at zero cycles.
func TestGreedyDurationsPropagatesErrors(t *testing.T) {
	cores := SyntheticSOC(7, 12) // >exhaustiveJobLimit: greedy path
	tests, err := BuildTests(cores, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := SyntheticResources(cores)
	res.Partitioner = wrapper.LPT
	// An unknown partitioner makes wrapper.DesignChains fail for every
	// scanned hard core, so duration estimation cannot succeed.
	res.Partitioner = wrapper.Partitioner(99)
	if _, err := SessionBasedContext(context.Background(), tests, res); err == nil {
		t.Fatal("expected scan-time estimation error to propagate")
	}
}
