package xcheck

import (
	"steac/internal/march"
	"steac/internal/memory"
)

// bitsFor mirrors the generators' counter-width rule: enough bits to hold
// n-1, at least one.
func bitsFor(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// refTPG is the behavioural reference of one generated TPG plus its RAM: an
// address counter that wraps at the power-of-two boundary (exactly like the
// generated up-counter — this is where the reference deliberately differs
// from bist.Engine, whose TPGs idle instead), a sticky fail flag and the
// word array the harness-emulated RAM holds.
type refTPG struct {
	cfg  memory.Config
	cnt  int
	fail bool
	mem  []uint64
}

// refPins is one cycle's worth of reference pin values for a verify bench.
type refPins struct {
	cmdr, cmdd, dir, adv bool
	elemdone, done, fail bool
	addr                 []int
	d                    []uint64
	we                   []bool
	failI                []bool
}

// refBench emulates the complete BuildVerifyBench stack — sequencer, per
// memory TPG, enable gating and the RAM macros — against the March
// definition.  All state updates follow rising-edge semantics: comb() reads
// the pre-edge state, tick() commits the next state.
type refBench struct {
	alg    march.Algorithm
	ob, eb int
	ocnt   int
	ecnt   int
	tpgs   []*refTPG
}

func newRefBench(alg march.Algorithm, mems []memory.Config) *refBench {
	maxOps := 0
	for _, e := range alg.Elements {
		if len(e.Ops) > maxOps {
			maxOps = len(e.Ops)
		}
	}
	r := &refBench{alg: alg, ob: bitsFor(maxOps), eb: bitsFor(len(alg.Elements) + 1)}
	for _, cfg := range mems {
		r.tpgs = append(r.tpgs, &refTPG{cfg: cfg, mem: make([]uint64, cfg.Words)})
	}
	return r
}

// expand applies the TPG data expansion: solid background repeats the March
// value, the checkerboard background inverts the odd bits.
func expand(cmdd, bgsel bool, bits int) uint64 {
	var w uint64
	for b := 0; b < bits; b++ {
		v := cmdd
		if bgsel && b%2 == 1 {
			v = !v
		}
		if v {
			w |= 1 << uint(b)
		}
	}
	return w
}

func (r *refBench) comb(en, bgsel bool) refPins {
	var p refPins
	nElem := len(r.alg.Elements)
	p.done = r.ecnt == nElem
	run := !p.done
	lastop := false
	if !p.done {
		e := r.alg.Elements[r.ecnt]
		if r.ocnt < len(e.Ops) {
			op := e.Ops[r.ocnt]
			p.cmdr = op.Read
			p.cmdd = op.Value == 1
			lastop = r.ocnt == len(e.Ops)-1
		}
		p.dir = e.Order == march.Down
	}
	p.adv = lastop && en && run
	tpen := en && run
	p.elemdone = true
	p.fail = false
	for _, t := range r.tpgs {
		addr := t.cnt
		if p.dir {
			addr = t.cfg.Words - 1 - t.cnt
		}
		p.addr = append(p.addr, addr)
		p.d = append(p.d, expand(p.cmdd, bgsel, t.cfg.Bits))
		p.we = append(p.we, !p.cmdr && tpen)
		p.failI = append(p.failI, t.fail)
		if t.cnt != t.cfg.Words-1 {
			p.elemdone = false
		}
		if t.fail {
			p.fail = true
		}
	}
	return p
}

// tick advances the reference one clock edge (RAM write-back included).
func (r *refBench) tick(en, rst, bgsel bool) {
	p := r.comb(en, bgsel)
	tpen := en && !p.done
	for i, t := range r.tpgs {
		q := t.mem[p.addr[i]]
		qmis := q != p.d[i] && p.cmdr && tpen
		if p.we[i] {
			t.mem[p.addr[i]] = p.d[i]
		}
		t.fail = (qmis || t.fail) && !rst
		switch {
		case rst:
			t.cnt = 0
		case p.adv:
			t.cnt = (t.cnt + 1) % t.cfg.Words
		}
	}
	elemadv := p.adv && p.elemdone
	switch {
	case rst || p.adv:
		r.ocnt = 0
	case en:
		r.ocnt = (r.ocnt + 1) % (1 << uint(r.ob))
	}
	switch {
	case rst:
		r.ecnt = 0
	case elemadv:
		r.ecnt = (r.ecnt + 1) % (1 << uint(r.eb))
	}
}

// refController emulates the Fig. 2 shared BIST controller: the run flag,
// the group counter stepping through GO, the sticky per-group fail flags,
// and the MBO/MRD/MSO tester pins.
type refController struct {
	n     int
	gb    int
	run   bool
	gcnt  int
	fails []bool
}

func newRefController(nGroups int) *refController {
	return &refController{n: nGroups, gb: bitsFor(nGroups + 1), fails: make([]bool, nGroups)}
}

// refCtlPins is one cycle of reference controller outputs.
type refCtlPins struct {
	gos           []bool
	mbo, mrd, mso bool
}

func (r *refController) comb(msi bool) refCtlPins {
	var p refCtlPins
	p.gos = make([]bool, r.n)
	for i := range p.gos {
		p.gos[i] = r.gcnt == i && r.run
	}
	p.mbo = r.gcnt == r.n
	p.mrd = true
	for _, f := range r.fails {
		if f {
			p.mrd = false
		}
	}
	// MSO: the fail-flag mux tree selects on the low bitsFor(n) counter
	// bits and pads missing leaves with the last flag.
	sel := r.gcnt % (1 << uint(bitsFor(r.n)))
	if sel >= r.n {
		sel = r.n - 1
	}
	p.mso = r.fails[sel] && msi
	return p
}

func (r *refController) tick(mbs, mbr, msi bool, gdone, gfail []bool) {
	p := r.comb(msi)
	gadv := false
	for i := 0; i < r.n; i++ {
		if p.gos[i] && gdone[i] {
			gadv = true
		}
		capture := gfail[i] && p.gos[i]
		r.fails[i] = (capture || r.fails[i]) && !mbr
	}
	r.run = (mbs || r.run) && !p.mbo && !mbr
	switch {
	case mbr:
		r.gcnt = 0
	case gadv:
		r.gcnt = (r.gcnt + 1) % (1 << uint(r.gb))
	}
}
