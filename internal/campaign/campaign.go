// Package campaign is the checkpointable fault-campaign job runner: it
// splits a deterministic campaign (memfault March coverage, xcheck
// stuck-at injection) into content-addressed shards, executes them on a
// work-stealing worker pool, and journals every completed shard to an
// on-disk, fsync'd, schema-versioned checkpoint directory — a killed
// process resumes exactly where it left off and produces a bit-identical
// final report to an uninterrupted run.
//
// The determinism contract, which everything else leans on:
//
//   - A shard's outcome vector depends only on the campaign spec and the
//     shard's unit range — never on worker identity, execution order, or
//     wall-clock time.  Shards are keyed by the SHA-256 of the schema
//     version, the canonical spec JSON, and the unit range, so a journal
//     entry is valid if and only if its key matches what the spec demands.
//   - The final report is assembled from the full outcome vector in unit
//     order through the engine's own Assemble path (memfault.Assemble,
//     xcheck CampaignSim.Assemble), the same code an in-process run uses.
//     Sharded == unsharded == resumed, byte for byte.
//   - Resume trusts nothing: the manifest fingerprint must match the spec,
//     every journal entry must decode, carry the current schema version,
//     the right key, the right length, and a valid CRC.  A damaged entry
//     is dropped and its shard re-run (repair); a stale schema or foreign
//     manifest fails loudly with a typed error.  There is no path to a
//     silently wrong coverage number.
//
// Execution uses a work-stealing pool (see pool.go): shards are dealt to
// per-worker deques in contiguous blocks, owners pop LIFO, idle workers
// steal FIFO from victims — skewed designs no longer leave workers idle
// the way static chunking did.
package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"

	"steac/internal/obs"
)

// SchemaVersion names the checkpoint directory format.  Any incompatible
// change to the manifest, the journal entry layout, the shard keying, or
// the outcome encoding must bump it; resume refuses other versions with
// ErrSchemaVersion.
const SchemaVersion = "steac-campaign/v1"

// Observability.  Shard totals accumulate on the journaling side (single
// goroutine), so they are worker-count-invariant; steals are inherently
// scheduling-dependent and documented as such.
var (
	obsShardsDone    = obs.GetCounter("campaign.shards_completed")
	obsShardsResumed = obs.GetCounter("campaign.shards_resumed")
	obsUnitsDone     = obs.GetCounter("campaign.units_simulated")
	obsRepaired      = obs.GetCounter("campaign.journal_repaired")
	obsSteals        = obs.GetCounter("campaign.steals")
	obsActive        = obs.GetGauge("campaign.active")
)

// Spec describes one deterministic campaign: a kind tag, a canonical JSON
// payload (the content address), and a way to prepare an Executor.
type Spec interface {
	// Kind is the short stable identifier the registry dispatches on
	// ("memfault", "xcheck").
	Kind() string
	// Marshal returns the canonical JSON payload of the spec.  Two specs
	// with equal Kind and equal payload must describe byte-identical
	// campaigns; the payload is hashed into the fingerprint and every
	// shard key, and stored verbatim in the checkpoint manifest.
	Marshal() (json.RawMessage, error)
	// Prepare performs the expensive one-time setup (golden traces,
	// compiled netlists) and returns the executor.
	Prepare(ctx context.Context) (Executor, error)
}

// Executor is a prepared campaign: a fixed number of independent work
// units plus per-goroutine workers that simulate contiguous unit ranges.
type Executor interface {
	// Units is the total number of independent work units (faults).
	Units() int
	// NewWorker returns a per-goroutine simulation context (scratch
	// buffers); Worker instances must not be shared between goroutines.
	NewWorker() (Worker, error)
	// Assemble builds the engine-native report from the full outcome
	// vector in unit order.  It must be a pure function of out.
	Assemble(out []int64) (interface{}, error)
}

// BatchSizer is optionally implemented by Executors whose workers simulate
// units in word-parallel batches (the packed fault-simulation kernels).
// Run rounds the requested shard size down to a multiple of BatchSize (but
// never below one batch) before the manifest is written, so shard interiors
// split into full words and only the final shard carries a sub-word
// remainder.  Purely a performance alignment: batch geometry is not
// semantic, and resume still honors whatever shard size an existing
// manifest recorded.
type BatchSizer interface {
	// BatchSize returns the worker's natural unit-batch width (> 1), e.g.
	// the packed-simulation lane count.
	BatchSize() int
}

// Worker simulates unit ranges for one goroutine.
type Worker interface {
	// Run simulates units [lo, hi) into out[0 : hi-lo].  The outcomes
	// must be a pure function of the spec and the unit indices.  Run must
	// poll ctx and return its error promptly once it fires; a shard whose
	// Run returned an error is never journaled.
	Run(ctx context.Context, lo, hi int, out []int64) error
}

// Options tunes a campaign run.
type Options struct {
	// Workers is the pool size (0 = GOMAXPROCS).  Non-semantic: the
	// report is identical for every worker count.
	Workers int
	// ShardSize is the number of units per shard (0 = 256).  Non-semantic
	// for the report, but part of the checkpoint identity: on resume the
	// manifest's shard size wins, so a checkpoint written with one size
	// resumes correctly under any requested size.
	ShardSize int
	// Dir is the checkpoint directory.  Empty runs the campaign fully in
	// memory: still sharded and work-stealing, but nothing survives the
	// process.
	Dir string
	// OnShard, when non-nil, observes every shard after it is durably
	// journaled (or accounted, for in-memory runs), from the single
	// journaling goroutine.  Canceling the run's context from inside the
	// callback is the supported way to stop at a shard boundary.
	OnShard func(ShardEvent)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultShardSize is the unit count per shard when Options.ShardSize is 0.
const DefaultShardSize = 256

func (o Options) shardSize() int {
	if o.ShardSize > 0 {
		return o.ShardSize
	}
	return DefaultShardSize
}

// ShardEvent describes one completed shard.
type ShardEvent struct {
	// Index is the shard number, Units its unit count.
	Index, Units int
	// Done and Total count shards including this one.
	Done, Total int
	// UnitsDone and UnitsTotal count work units.
	UnitsDone, UnitsTotal int
	// Resumed marks shards loaded from the checkpoint journal rather than
	// simulated in this process.
	Resumed bool
}

// Result is a finished campaign.
type Result struct {
	// Report is the engine-native report (memfault.Campaign,
	// xcheck.CampaignResult) assembled from the full outcome vector.
	Report interface{}
	// Fingerprint is the campaign content address (hex SHA-256).
	Fingerprint string
	// Shards is the shard count; Resumed of them were loaded from the
	// checkpoint and Repaired were dropped as damaged and re-run.
	Shards, Resumed, Repaired int
}

// Fingerprint returns the campaign content address of a spec: the hex
// SHA-256 over the schema version, the kind, and the canonical spec JSON.
// It names the checkpoint a campaign may resume from, and prefixes every
// shard key.
func Fingerprint(spec Spec) (string, error) {
	payload, err := spec.Marshal()
	if err != nil {
		return "", fmt.Errorf("campaign: marshal %s spec: %w", spec.Kind(), err)
	}
	h := sha256.New()
	h.Write([]byte(SchemaVersion))
	h.Write([]byte{0})
	h.Write([]byte(spec.Kind()))
	h.Write([]byte{0})
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// shardKey is the content address of one shard: the hex SHA-256 (first 16
// bytes) over the campaign fingerprint and the unit range.  A journal
// entry replays into a run only when its key matches.
func shardKey(fingerprint string, index, lo, hi int) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s:%d:%d:%d", fingerprint, index, lo, hi)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// alignShardSize rounds a shard size down to the executor's batch width
// (but never below one batch) when the executor advertises one — shard
// interiors then split into full packed words and only the final shard
// carries a sub-word remainder.
func alignShardSize(exec Executor, size int) int {
	if bs, ok := exec.(BatchSizer); ok {
		if b := bs.BatchSize(); b > 1 {
			size -= size % b
			if size < b {
				size = b
			}
		}
	}
	return size
}

// shardCount returns how many shards units split into at the given size.
func shardCount(units, size int) int {
	if units == 0 {
		return 0
	}
	return (units + size - 1) / size
}

// shardBounds returns the unit range [lo, hi) of shard index.
func shardBounds(units, size, index int) (lo, hi int) {
	lo = index * size
	hi = lo + size
	if hi > units {
		hi = units
	}
	return lo, hi
}

// Run executes (or resumes) the campaign described by spec.  With
// Options.Dir set it opens the checkpoint directory, replays every valid
// journaled shard, simulates the rest on the work-stealing pool, and
// journals each completion with an fsync before acknowledging it; without
// a directory it runs fully in memory on the same pool.  A canceled ctx
// stops the pool at shard boundaries, flushes completed shards to the
// journal, and returns the ctx error wrapped with the campaign kind — the
// checkpoint then holds exactly the completed shards, and a later Run with
// the same spec and directory finishes the remainder and returns a report
// byte-identical to an uninterrupted run.
func Run(ctx context.Context, spec Spec, opt Options) (*Result, error) {
	plan, exec, err := PlanCampaign(ctx, spec, opt.ShardSize)
	if err != nil {
		return nil, err
	}
	units := plan.Units
	size := plan.ShardSize

	obsActive.Set(obsActive.Value() + 1)
	defer func() { obsActive.Set(obsActive.Value() - 1) }()

	// Open (or create) the checkpoint.  On resume the manifest's shard
	// size replaces the requested one: shard keying is part of the
	// checkpoint identity.
	var ck *checkpoint
	if opt.Dir != "" {
		ck, err = openCheckpoint(opt.Dir, plan.manifest())
		if err != nil {
			return nil, err
		}
		defer ck.close()
		size = ck.man.ShardSize
	}
	shards := shardCount(units, size)

	res := &Result{Fingerprint: plan.Fingerprint, Shards: shards}
	outcomes := make([]int64, units)
	done := make([]bool, shards)
	unitsDone := 0
	if ck != nil {
		res.Repaired = ck.repaired
		obsRepaired.Add(int64(ck.repaired))
		for idx, out := range ck.loaded {
			lo, hi := shardBounds(units, size, idx)
			copy(outcomes[lo:hi], out)
			done[idx] = true
			unitsDone += hi - lo
			res.Resumed++
		}
		obsShardsResumed.Add(int64(res.Resumed))
	}
	if opt.OnShard != nil {
		// Replay resumed shards through the observer in shard order, so
		// progress accounting starts from the checkpoint state.
		seen := 0
		for idx := range done {
			if !done[idx] {
				continue
			}
			seen++
			lo, hi := shardBounds(units, size, idx)
			opt.OnShard(ShardEvent{
				Index: idx, Units: hi - lo, Done: seen, Total: shards,
				UnitsDone: 0, UnitsTotal: units, Resumed: true,
			})
		}
	}

	var pending []int
	for idx := range done {
		if !done[idx] {
			pending = append(pending, idx)
		}
	}

	if len(pending) > 0 {
		completed := res.Resumed
		err = runPool(ctx, exec, opt.workers(), pending, size, units,
			func(sr shardResult) error {
				lo, hi := shardBounds(units, size, sr.index)
				if ck != nil {
					if err := ck.append(sr.index, sr.out); err != nil {
						return err
					}
				}
				copy(outcomes[lo:hi], sr.out)
				done[sr.index] = true
				completed++
				unitsDone += hi - lo
				obsShardsDone.Add(1)
				obsUnitsDone.Add(int64(hi - lo))
				if opt.OnShard != nil {
					opt.OnShard(ShardEvent{
						Index: sr.index, Units: hi - lo, Done: completed, Total: shards,
						UnitsDone: unitsDone, UnitsTotal: units,
					})
				}
				return nil
			})
		if err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", spec.Kind(), err)
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", spec.Kind(), err)
		}
	}

	report, err := exec.Assemble(outcomes)
	if err != nil {
		return nil, fmt.Errorf("campaign: assemble %s: %w", spec.Kind(), err)
	}
	res.Report = report
	return res, nil
}
