package wrapper

import (
	"testing"
	"testing/quick"

	"steac/internal/testinfo"
)

func usbCore() *testinfo.Core {
	return &testinfo.Core{
		Name:        "USB",
		Clocks:      []string{"ck0", "ck1", "ck2", "ck3"},
		Resets:      []string{"rst0", "rst1", "rst2"},
		ScanEnables: []string{"se"},
		TestEnables: []string{"t0", "t1", "t2", "t3", "t4", "t5"},
		PIs:         221, POs: 104,
		ScanChains: []testinfo.ScanChain{
			{Name: "c0", Length: 1629, In: "si0", Out: "so0", Clock: "ck0"},
			{Name: "c1", Length: 78, In: "si1", Out: "so1", Clock: "ck1"},
			{Name: "c2", Length: 293, In: "si2", Out: "so2", Clock: "ck2"},
			{Name: "c3", Length: 45, In: "si3", Out: "so3", Clock: "ck3"},
		},
		Patterns: []testinfo.PatternSet{{Name: "scan", Type: testinfo.Scan, Count: 716, Seed: 1}},
	}
}

func TestDesignChainsUSBWidth4(t *testing.T) {
	plan, err := DesignChains(usbCore(), 4, LPT)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Chains) != 4 {
		t.Fatalf("chains = %d", len(plan.Chains))
	}
	// The 1629 chain dominates; boundary cells must land on shorter
	// chains, keeping the maximum at 1629.
	if plan.MaxLength() != 1629 {
		t.Fatalf("max length = %d, want 1629", plan.MaxLength())
	}
	// Every core chain is placed exactly once.
	placed := make(map[int]int)
	inCells, outCells := 0, 0
	for _, c := range plan.Chains {
		for _, ci := range c.CoreChains {
			placed[ci]++
		}
		inCells += c.InCells
		outCells += c.OutCells
	}
	for ci := 0; ci < 4; ci++ {
		if placed[ci] != 1 {
			t.Fatalf("core chain %d placed %d times", ci, placed[ci])
		}
	}
	if inCells != 221 || outCells != 104 {
		t.Fatalf("boundary cells = %d in, %d out", inCells, outCells)
	}
	// Scan test time at 716 patterns: (1+1629)*716 + 1629 = 1,168,709.
	if got := plan.ScanTestCycles(716); got != 1168709 {
		t.Fatalf("scan cycles = %d, want 1168709", got)
	}
}

func TestDesignChainsNarrowTAMConcatenates(t *testing.T) {
	// Width 2 forces chains to share TAM wires, lengthening the test:
	// the scheduler's width/time trade-off depends on this.
	p4, err := DesignChains(usbCore(), 4, LPT)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := DesignChains(usbCore(), 2, LPT)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := DesignChains(usbCore(), 1, LPT)
	if err != nil {
		t.Fatal(err)
	}
	// A hard core cannot split its longest chain, so the width-2 and
	// width-4 designs both saturate at 1629; width 1 concatenates
	// everything.
	if p1.MaxLength() <= p2.MaxLength() || p2.MaxLength() < p4.MaxLength() {
		t.Fatalf("lengths not monotone: %d, %d, %d", p1.MaxLength(), p2.MaxLength(), p4.MaxLength())
	}
	if p2.MaxLength() != 1629 || p4.MaxLength() != 1629 {
		t.Fatalf("hard-core saturation broken: %d, %d", p2.MaxLength(), p4.MaxLength())
	}
	// Width 1 carries everything: all scan bits + all boundary cells.
	if want := 1629 + 293 + 78 + 45 + 221 + 104; p1.MaxLength() != want {
		t.Fatalf("width-1 length = %d, want %d", p1.MaxLength(), want)
	}
}

func TestDesignChainsSoftRebalances(t *testing.T) {
	c := usbCore()
	c.Soft = true
	soft, err := DesignChains(c, 4, LPT)
	if err != nil {
		t.Fatal(err)
	}
	if !soft.Soft {
		t.Fatal("plan not marked soft")
	}
	// Perfect rebalancing: ceil((2045+325)/4) = 593.
	if soft.MaxLength() != 593 {
		t.Fatalf("soft max length = %d, want 593", soft.MaxLength())
	}
	hard, err := DesignChains(usbCore(), 4, LPT)
	if err != nil {
		t.Fatal(err)
	}
	if soft.MaxLength() >= hard.MaxLength() {
		t.Fatal("soft rebalancing did not shorten the wrapper chains")
	}
	// Total scan bits preserved.
	total := 0
	for _, ch := range soft.Chains {
		total += ch.ScanBits()
	}
	if total != 2045 {
		t.Fatalf("soft plan lost scan bits: %d", total)
	}
}

func TestOptimalBeatsOrMatchesHeuristics(t *testing.T) {
	core := &testinfo.Core{
		Name: "HARD", Clocks: []string{"ck"}, ScanEnables: []string{"se"},
		ScanChains: []testinfo.ScanChain{
			{Name: "a", Length: 3, Clock: "ck"}, {Name: "b", Length: 3, Clock: "ck"},
			{Name: "c", Length: 2, Clock: "ck"}, {Name: "d", Length: 2, Clock: "ck"},
			{Name: "e", Length: 2, Clock: "ck"},
		},
	}
	lpt, err := DesignChains(core, 2, LPT)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := DesignChains(core, 2, Optimal)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := DesignChains(core, 2, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if opt.MaxLength() != 6 {
		t.Fatalf("optimal = %d, want 6 (3+3 / 2+2+2)", opt.MaxLength())
	}
	if lpt.MaxLength() < opt.MaxLength() || ff.MaxLength() < opt.MaxLength() {
		t.Fatalf("heuristic beat optimal: lpt=%d ff=%d opt=%d",
			lpt.MaxLength(), ff.MaxLength(), opt.MaxLength())
	}
	// The classic LPT counterexample: LPT lands at 7.
	if lpt.MaxLength() != 7 {
		t.Fatalf("LPT = %d, expected the classical 7", lpt.MaxLength())
	}
}

func TestDesignChainsFunctionalOnlyCore(t *testing.T) {
	jpeg := &testinfo.Core{Name: "JPEG", Clocks: []string{"ck"}, PIs: 165, POs: 104}
	plan, err := DesignChains(jpeg, 3, LPT)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range plan.Chains {
		total += c.Length()
		if len(c.CoreChains) != 0 {
			t.Fatal("functional core got scan segments")
		}
	}
	if total != 269 {
		t.Fatalf("boundary bits = %d, want 269", total)
	}
	// Balanced within one cell.
	if plan.MaxLength() > (269+2)/3+1 {
		t.Fatalf("unbalanced boundary chains: max %d", plan.MaxLength())
	}
}

func TestDesignChainsErrors(t *testing.T) {
	if _, err := DesignChains(usbCore(), 0, LPT); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := DesignChains(&testinfo.Core{Name: "bad"}, 1, LPT); err == nil {
		t.Fatal("invalid core accepted")
	}
	if _, err := DesignChains(usbCore(), 2, Partitioner(9)); err == nil {
		t.Fatal("unknown partitioner accepted")
	}
	big := &testinfo.Core{Name: "BIG", Clocks: []string{"ck"}, ScanEnables: []string{"se"}}
	for i := 0; i < 20; i++ {
		big.ScanChains = append(big.ScanChains, testinfo.ScanChain{
			Name: nameN("c", i), Length: i + 1, Clock: "ck"})
	}
	if _, err := DesignChains(big, 3, Optimal); err == nil {
		t.Fatal("optimal accepted 20 chains")
	}
}

func nameN(p string, i int) string { return p + string(rune('a'+i)) }

func TestScanTestCyclesZeroPatterns(t *testing.T) {
	plan, err := DesignChains(usbCore(), 4, LPT)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ScanTestCycles(0) != 0 {
		t.Fatal("zero patterns should cost zero cycles")
	}
}

// Property: for any chain set and width, (1) every partitioner places each
// chain exactly once, (2) LPT's maximum never beats Optimal's, and (3) the
// maximum never increases when width grows.
func TestPartitionProperties(t *testing.T) {
	f := func(rawLens []uint16, width uint8) bool {
		if len(rawLens) == 0 {
			return true
		}
		if len(rawLens) > 8 {
			rawLens = rawLens[:8]
		}
		w := int(width%4) + 1
		core := &testinfo.Core{Name: "P", Clocks: []string{"ck"}, ScanEnables: []string{"se"}}
		for i, l := range rawLens {
			core.ScanChains = append(core.ScanChains, testinfo.ScanChain{
				Name: nameN("c", i), Length: int(l%500) + 1, Clock: "ck"})
		}
		lpt, err1 := DesignChains(core, w, LPT)
		opt, err2 := DesignChains(core, w, Optimal)
		ff, err3 := DesignChains(core, w, FirstFit)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for _, plan := range []Plan{lpt, opt, ff} {
			placed := make(map[int]int)
			for _, c := range plan.Chains {
				for _, ci := range c.CoreChains {
					placed[ci]++
				}
			}
			if len(placed) != len(core.ScanChains) {
				return false
			}
			for _, n := range placed {
				if n != 1 {
					return false
				}
			}
		}
		if opt.MaxLength() > lpt.MaxLength() || opt.MaxLength() > ff.MaxLength() {
			return false
		}
		wider, err := DesignChains(core, w+1, LPT)
		if err != nil {
			return false
		}
		return wider.MaxLength() <= lpt.MaxLength()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
