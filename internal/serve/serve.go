// Package serve is the STEAC flow daemon: an HTTP/JSON front end that
// accepts flow requests (the full DSC integration flow, scheduling sweeps,
// memory-fault coverage evaluation, gate-level xcheck campaigns) and runs
// them on a bounded worker pool behind a multi-tenant admission pipeline.
//
// The daemon's contract, in priority order:
//
//   - Identity first.  Every request is attributed to a tenant before any
//     resource decision (API keys from a tenants file, constant-time
//     compared; an anonymous single-tenant mode for dev).  With a tenant
//     set configured, an unknown key is 401 and never touches the queue.
//   - Bounded resources, fairly shared.  At most Config.Workers requests
//     compute at once.  Admission is deficit-round-robin fair queueing
//     across tenants: each tenant has its own bounded lane
//     (Config.QueueDepth deep) and a token-bucket rate limit plus a
//     concurrent-job quota from its tenant row.  A tenant that floods the
//     daemon fills only its own lane (429 ErrQueueFull) or its own bucket
//     (429 ErrQuotaExceeded); other tenants keep their round-robin share
//     of the pool.
//   - Deterministic memoization.  Every engine in the repository is
//     worker-count-invariant, so responses are content-addressed by the
//     canonical request hash (tuning fields zeroed; see requestKey) and
//     replayed from a bounded LRU.  A cache hit returns the exact bytes
//     the first computation produced.
//   - Prompt cancellation.  Each request runs under a deadline (TimeoutMS,
//     clamped to Config.MaxTimeout) and under the client's connection
//     context, both threaded into the engines, which poll at batch
//     boundaries — a disconnected client or expired deadline stops paying
//     for simulation within milliseconds.
//   - Typed errors.  Every non-2xx response carries the v1 wire envelope
//     {"error","code"}; serve.Client reconstructs the package sentinels
//     (ErrUnauthorized, ErrQuotaExceeded, ErrQueueFull, ErrDraining, ...)
//     so programmatic callers branch with errors.Is, not string matching.
//   - Graceful drain.  Drain stops admissions (503), lets queued and
//     in-flight work finish, then releases the workers; cmd/steacd wires
//     it to SIGTERM behind http.Server.Shutdown.
//
// Observability rides the existing obs registry: the global serve.*
// counters and gauges plus per-tenant serve.tenant.<id>.requests /
// .rejects / .queue_depth, exported as text via GET /metrics alongside
// every engine counter.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"steac/internal/catalog"
	"steac/internal/fabric"
	"steac/internal/obs"
	"steac/internal/sched"
)

// Config tunes the daemon.  The zero value serves with sensible bounds.
type Config struct {
	// Workers is the compute pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds each tenant's admission lane (0 = 16).  The
	// global queue bound is QueueDepth × active tenants.
	QueueDepth int
	// CacheEntries bounds the response memo (0 = 128).
	CacheEntries int
	// DefaultTimeout is the per-request deadline when the request names
	// none (0 = 120s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (0 = 10m).
	MaxTimeout time.Duration
	// Tenants is the identity registry (steacd -tenants).  Nil serves in
	// anonymous mode: every caller is the unlimited "anon" tenant.
	Tenants *TenantSet
	// JobDir is the checkpoint root for async campaign jobs (POST
	// /v1/jobs); each job journals under JobDir/<id> and the durable job
	// database lives at JobDir/jobs.jsonl.  Empty keeps job state in
	// memory only — jobs still run, but nothing survives a restart.
	JobDir string
	// MaxJobs bounds concurrently running campaign jobs across all
	// tenants (0 = 2).  Jobs run on their own pool — a long campaign
	// never starves the synchronous request workers.  Per-tenant job
	// quotas come from the tenant rows.
	MaxJobs int
	// CatalogDir is the durable results-catalog root (steacd -catalog-dir).
	// When set, every completed flow run, scheduling sweep point, and
	// campaign job is ingested as a content-addressed catalog.Record, the
	// /v1/catalog and /v1/recommend endpoints come live, and completed jobs
	// already in the job database are backfilled on startup.  Empty
	// disables the catalog (the endpoints answer 400).
	CatalogDir string
	// Fabric, when non-nil, makes this daemon a fabric coordinator: the
	// /v1/fabric/* protocol is mounted on the same mux, and jobs
	// submitted with "fabric": true are distributed to leased nodes
	// instead of the local pool.  The caller constructs the coordinator
	// (cmd/steacd's -coordinator flag) so its checkpoint dir and TTL are
	// configured in one place.
	Fabric *fabric.Coordinator
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 120 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.Tenants == nil {
		c.Tenants = anonymousTenants()
	}
	return c
}

// Observability handles (always-live counters; see package obs).
var (
	obsRequests   = obs.GetCounter("serve.requests")
	obsAuthFails  = obs.GetCounter("serve.auth_failures")
	obsQuotaRejs  = obs.GetCounter("serve.quota_rejects")
	obsCacheHits  = obs.GetCounter("serve.cache_hits")
	obsCacheMiss  = obs.GetCounter("serve.cache_misses")
	obsRejects    = obs.GetCounter("serve.queue_rejects")
	obsQueueDepth = obs.GetGauge("serve.queue_depth")
	obsInflight   = obs.GetGauge("serve.inflight")
)

// job is one admitted request travelling from the HTTP handler to a pool
// worker and back.
type job struct {
	ctx  context.Context
	run  func(ctx context.Context) (interface{}, error)
	done chan jobResult
}

type jobResult struct {
	val interface{}
	err error
}

// Server is the daemon core, independent of the actual listener so tests
// drive it through httptest.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	cache    *lruCache
	queue    *fairQueue
	jobMgr   *jobManager
	catalog  *catalog.Store // nil without CatalogDir
	catErr   error          // deferred catalog.Open failure, surfaced per request
	workers  sync.WaitGroup
	pending  sync.WaitGroup // admitted jobs not yet answered
	inflight atomic.Int64
	draining atomic.Bool
	drained  sync.Once
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		cache: newLRU(cfg.CacheEntries),
		queue: newFairQueue(cfg.QueueDepth),
	}
	s.jobMgr = newJobManager(s.cfg.JobDir, s.cfg.MaxJobs, s.cfg.Workers)
	s.jobMgr.fabric = s.cfg.Fabric
	if s.cfg.CatalogDir != "" {
		s.catalog, s.catErr = catalog.Open(s.cfg.CatalogDir)
		if s.catErr == nil {
			s.jobMgr.ingest = s.ingestJobRecord
			s.backfillCatalog()
		}
	}
	if s.cfg.Fabric != nil {
		s.cfg.Fabric.Register(s.mux)
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	s.mux.HandleFunc("POST /v1/flow", handle(s, "flow", func() *FlowRequest { return &FlowRequest{} }))
	s.mux.HandleFunc("POST /v1/sched", handle(s, "sched", func() *SchedRequest { return &SchedRequest{} }))
	s.mux.HandleFunc("POST /v1/memfault", handle(s, "memfault", func() *MemfaultRequest { return &MemfaultRequest{} }))
	s.mux.HandleFunc("POST /v1/xcheck", handle(s, "xcheck", func() *XCheckRequest { return &XCheckRequest{} }))
	s.mux.HandleFunc("GET /v1/catalog", s.handleCatalogList)
	s.mux.HandleFunc("GET /v1/catalog/compare", s.handleCatalogCompare)
	s.mux.HandleFunc("GET /v1/catalog/{fingerprint}", s.handleCatalogGet)
	s.mux.HandleFunc("POST /v1/recommend", s.handleRecommend)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	return s
}

// Handler exposes the daemon as an http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admitting work, checkpoints and cancels async campaign jobs
// (their in-flight shards are journaled before the job unwinds, so a
// restarted daemon resumes them), waits for every queued and in-flight
// synchronous job to finish (or ctx to expire), then stops the worker
// pool.  It is the SIGTERM path: call http.Server.Shutdown first so no new
// connections race the drain, then Drain.  Safe to call once; later calls
// return immediately.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	if err := s.jobMgr.drain(ctx); err != nil {
		return err
	}
	finished := make(chan struct{})
	go func() {
		s.pending.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
	s.drained.Do(func() { s.queue.close() })
	s.workers.Wait()
	// Every producer is gone; release the catalog's append handle so the
	// last ingest is on disk before the process exits.
	if err := s.catalog.Close(); err != nil {
		return fmt.Errorf("serve: drain: close catalog: %w", err)
	}
	return nil
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) worker() {
	defer s.workers.Done()
	for {
		j, ok := s.queue.pop()
		if !ok {
			return
		}
		obsQueueDepth.Set(int64(s.queue.len()))
		obsInflight.Set(s.inflight.Add(1))
		val, err := j.run(j.ctx)
		obsInflight.Set(s.inflight.Add(-1))
		j.done <- jobResult{val: val, err: err}
		s.pending.Done()
	}
}

// submit enqueues work on the tenant's fair-queue lane without blocking: a
// full lane is an immediate ErrQueueFull (admission control), a draining
// server an ErrDraining.
func (s *Server) submit(ctx context.Context, tn *tenantState, run func(context.Context) (interface{}, error)) (*job, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	if tn == nil {
		tn = s.cfg.Tenants.anon
		if tn == nil {
			tn = s.cfg.Tenants.tenants[0]
		}
	}
	j := &job{ctx: ctx, run: run, done: make(chan jobResult, 1)}
	s.pending.Add(1)
	if err := s.queue.push(tn, j); err != nil {
		s.pending.Done()
		if errors.Is(err, ErrQueueFull) {
			obsRejects.Add(1)
			tn.rejects.Add(1)
		}
		return nil, err
	}
	obsQueueDepth.Set(int64(s.queue.len()))
	return j, nil
}

// runner is the common shape of every request type in requests.go.
type runner interface {
	canonical() interface{}
	run(ctx context.Context) (interface{}, error)
}

// timeoutMS is implemented by every request carrying the shared TimeoutMS
// tuning field.
type timeoutMS interface{ timeout() time.Duration }

func (r FlowRequest) timeout() time.Duration  { return time.Duration(r.TimeoutMS) * time.Millisecond }
func (r SchedRequest) timeout() time.Duration { return time.Duration(r.TimeoutMS) * time.Millisecond }
func (r MemfaultRequest) timeout() time.Duration {
	return time.Duration(r.TimeoutMS) * time.Millisecond
}
func (r XCheckRequest) timeout() time.Duration { return time.Duration(r.TimeoutMS) * time.Millisecond }

// response is the wire envelope: the memoized result plus whether it came
// from the cache.
type response struct {
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
}

// handle builds the POST handler for one endpoint — the admission
// pipeline, in order: authenticate, rate-limit, decode, cache lookup,
// fair-queue admission, deadline, compute, memoize.
func handle[R runner](s *Server, endpoint string, fresh func() R) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		obsRequests.Add(1)
		tn, err := s.cfg.Tenants.authenticate(r)
		if err != nil {
			obsAuthFails.Add(1)
			writeError(w, err)
			return
		}
		tn.reqs.Add(1)
		if !tn.allow() {
			obsQuotaRejs.Add(1)
			tn.rejects.Add(1)
			writeError(w, fmt.Errorf("%w: tenant %q rate limit (%g/s, burst %d)",
				ErrQuotaExceeded, tn.ID, tn.RatePerSec, tn.Burst))
			return
		}
		req := fresh()
		body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
		if err != nil {
			writeError(w, badRequestf("serve: read request body: %v", err))
			return
		}
		if len(body) > 0 {
			dec := json.NewDecoder(bytes.NewReader(body))
			dec.DisallowUnknownFields()
			if err := dec.Decode(req); err != nil {
				writeError(w, badRequestf("serve: bad request body: %v", err))
				return
			}
		}
		key, err := requestKey(endpoint, req.canonical())
		if err != nil {
			writeError(w, badRequestf("serve: canonicalize request: %v", err))
			return
		}
		if blob, ok := s.cache.get(key); ok {
			obsCacheHits.Add(1)
			writeResult(w, blob, true)
			return
		}
		obsCacheMiss.Add(1)

		timeout := s.cfg.DefaultTimeout
		if t, ok := any(req).(timeoutMS); ok && t.timeout() > 0 {
			timeout = t.timeout()
		}
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()

		j, err := s.submit(ctx, tn, req.run)
		if err != nil {
			writeError(w, err)
			return
		}
		res := <-j.done
		if res.err != nil {
			writeError(w, res.err)
			return
		}
		blob, err := json.Marshal(res.val)
		if err != nil {
			writeError(w, err)
			return
		}
		s.cache.put(key, blob)
		// First computation of this content address: catalog it.  Cache
		// hits above never re-ingest — the record already exists.
		if src, ok := any(req).(catalogSource); ok {
			s.catalogIngest(src.catalogRecords(key, tn.ID, res.val))
		}
		writeResult(w, blob, false)
	}
}

func isInfeasible(err error) bool { return errors.Is(err, sched.ErrInfeasible) }

func writeResult(w http.ResponseWriter, blob []byte, cached bool) {
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	_ = json.NewEncoder(w).Encode(response{Cached: cached, Result: blob})
}

// writeError answers one request with the v1 typed error envelope.
func writeError(w http.ResponseWriter, err error) {
	status, code := wireFor(err)
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(wireError{Error: err.Error(), Code: code})
}

// healthz answers 200 while serving and 503 once draining, so load
// balancers stop routing during shutdown.
func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// metrics exports every obs counter and gauge as "name value" text lines —
// the daemon's own serve.* metrics (including the per-tenant
// serve.tenant.<id>.* series) next to all engine counters — plus the
// cache size.
func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, m := range obs.Counters() {
		fmt.Fprintf(w, "%s %d\n", m.Name, m.Value)
	}
	for _, m := range obs.Gauges() {
		fmt.Fprintf(w, "%s %d\n", m.Name, m.Value)
	}
	fmt.Fprintf(w, "serve.cache_entries %d\n", s.cache.len())
	fmt.Fprintf(w, "serve.catalog_records %d\n", s.catalog.Len())
	fmt.Fprintf(w, "serve.draining %d\n", b2i(s.draining.Load()))
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}
