package march

// Standard March algorithms as shipped with the BRAINS BIST compiler.
// Complexities (ops per word) are the classic figures: MSCAN 4N, MATS+ 5N,
// March X 6N, March Y 8N, March C- 10N, March A 15N, March B 17N,
// March LR 14N.

// MSCAN is the 4N "zero-one" algorithm; it detects only a subset of
// stuck-at faults.
func MSCAN() Algorithm {
	return Algorithm{
		Name: "MSCAN",
		Elements: []Element{
			{Either, []Op{W0}},
			{Either, []Op{R0}},
			{Either, []Op{W1}},
			{Either, []Op{R1}},
		},
	}
}

// MATSPlus is the 5N MATS+ algorithm; it detects all stuck-at and address
// decoder faults.
func MATSPlus() Algorithm {
	return Algorithm{
		Name: "MATS+",
		Elements: []Element{
			{Either, []Op{W0}},
			{Up, []Op{R0, W1}},
			{Down, []Op{R1, W0}},
		},
	}
}

// MarchX is the 6N March X algorithm; adds coupling (inversion) coverage.
func MarchX() Algorithm {
	return Algorithm{
		Name: "March X",
		Elements: []Element{
			{Either, []Op{W0}},
			{Up, []Op{R0, W1}},
			{Down, []Op{R1, W0}},
			{Either, []Op{R0}},
		},
	}
}

// MarchY is the 8N March Y algorithm; adds transition-fault linkage
// coverage over March X.
func MarchY() Algorithm {
	return Algorithm{
		Name: "March Y",
		Elements: []Element{
			{Either, []Op{W0}},
			{Up, []Op{R0, W1, R1}},
			{Down, []Op{R1, W0, R0}},
			{Either, []Op{R0}},
		},
	}
}

// MarchCMinus is the 10N March C- algorithm, the default algorithm of the
// BRAINS compiler: it detects all stuck-at, transition, address-decoder and
// unlinked idempotent/inversion/state coupling faults.
func MarchCMinus() Algorithm {
	return Algorithm{
		Name: "March C-",
		Elements: []Element{
			{Either, []Op{W0}},
			{Up, []Op{R0, W1}},
			{Up, []Op{R1, W0}},
			{Down, []Op{R0, W1}},
			{Down, []Op{R1, W0}},
			{Either, []Op{R0}},
		},
	}
}

// MarchA is the 15N March A algorithm (linked coupling faults).
func MarchA() Algorithm {
	return Algorithm{
		Name: "March A",
		Elements: []Element{
			{Either, []Op{W0}},
			{Up, []Op{R0, W1, W0, W1}},
			{Up, []Op{R1, W0, W1}},
			{Down, []Op{R1, W0, W1, W0}},
			{Down, []Op{R0, W1, W0}},
		},
	}
}

// MarchB is the 17N March B algorithm (linked transition + coupling faults).
func MarchB() Algorithm {
	return Algorithm{
		Name: "March B",
		Elements: []Element{
			{Either, []Op{W0}},
			{Up, []Op{R0, W1, R1, W0, R0, W1}},
			{Up, []Op{R1, W0, W1}},
			{Down, []Op{R1, W0, W1, W0}},
			{Down, []Op{R0, W1, W0}},
		},
	}
}

// MarchLR is the 14N March LR algorithm (realistic linked faults, used for
// word-oriented memories with background rotation).
func MarchLR() Algorithm {
	return Algorithm{
		Name: "March LR",
		Elements: []Element{
			{Either, []Op{W0}},
			{Down, []Op{R0, W1}},
			{Up, []Op{R1, W0, R0, W1}},
			{Up, []Op{R1, W0}},
			{Up, []Op{R0, W1, R1, W0}},
			{Up, []Op{R0}},
		},
	}
}

// Catalog returns every built-in algorithm keyed by name, in a fixed
// cheap-to-thorough order.
func Catalog() []Algorithm {
	return []Algorithm{
		MSCAN(), MATSPlus(), MarchX(), MarchY(), MarchLR(), MarchCMinus(), MarchA(), MarchB(),
	}
}

// ByName looks up a built-in algorithm by its Name (case-sensitive).
func ByName(name string) (Algorithm, bool) {
	for _, a := range Catalog() {
		if a.Name == name {
			return a, true
		}
	}
	return Algorithm{}, false
}
