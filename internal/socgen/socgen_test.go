package socgen

import (
	"testing"

	"steac/internal/sched"
	"steac/internal/testinfo"
)

func TestBuildSyntheticSOC(t *testing.T) {
	cores := sched.SyntheticSOC(3, 5)
	d, err := Build(cores, Options{Name: "synth", Blocks: map[string]float64{
		"glue": 9000, "cpu": 40000,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Top != "soc" {
		t.Fatalf("top = %s", d.Top)
	}
	top := d.TopModule()
	for _, c := range cores {
		if top.Instance("u_"+c.Name) == nil {
			t.Fatalf("core %s not instantiated", c.Name)
		}
	}
	if top.Instance("u_cpu") == nil || top.Instance("u_glue") == nil || top.Instance("u_pll") == nil {
		t.Fatal("blocks missing")
	}
	if issues := d.Lint(); len(issues) != 0 {
		t.Fatalf("lint: %v", issues)
	}
	// Every clock pin got a distinct PLL output.
	nClocks := 0
	for _, c := range cores {
		nClocks += len(c.Clocks)
	}
	pll := d.Module("pll")
	if pll.Port("ck").Width != nClocks {
		t.Fatalf("pll outputs = %d, want %d", pll.Port("ck").Width, nClocks)
	}
}

func TestBuildRejects(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("empty core set accepted")
	}
	bad := []*testinfo.Core{{Name: "x"}} // no clock
	if _, err := Build(bad, Options{}); err == nil {
		t.Fatal("invalid core accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	cores := sched.SyntheticSOC(5, 3)
	opts := Options{Blocks: map[string]float64{"a": 1, "b": 2, "c": 3}}
	d1, err := Build(cores, opts)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Build(cores, opts)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := d1.EmitVerilogString()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := d2.EmitVerilogString()
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("generated SOC is not deterministic")
	}
}
