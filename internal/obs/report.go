package obs

import (
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteReport renders the human observability report: the span tree (wall
// time and call counts) followed by every non-zero counter and gauge.
// Ordering is purely name-based, so for a fixed workload at one worker the
// report is deterministic up to the duration column (golden tests scrub
// it; see cmd/dscflow).
func WriteReport(w io.Writer) {
	fmt.Fprintln(w, "Observability report")
	WriteSpans(w)
	WriteCounters(w)
}

// WriteSpans renders the span tree.  Nodes that never ran (and have no
// descendant that ran) are omitted: a registered-but-idle stage is not an
// observation.
func WriteSpans(w io.Writer) {
	fmt.Fprintln(w, "spans (wall · calls):")
	n := 0
	for _, c := range root.sortedChildren() {
		n += writeSpan(w, c, 1)
	}
	if n == 0 {
		fmt.Fprintln(w, "  (none recorded — run with observability enabled)")
	}
}

// ran reports whether the subtree recorded any completed or in-flight call.
func ran(s *Span) bool {
	if s.calls.Load() > 0 || s.active.Load() > 0 {
		return true
	}
	for _, c := range s.sortedChildren() {
		if ran(c) {
			return true
		}
	}
	return false
}

func writeSpan(w io.Writer, s *Span, depth int) int {
	if !ran(s) {
		return 0
	}
	indent := ""
	for i := 1; i < depth; i++ {
		indent += "  "
	}
	name := indent + s.name
	note := ""
	if a := s.active.Load(); a > 0 {
		note = fmt.Sprintf("  (+%d running)", a)
	}
	fmt.Fprintf(w, "  %-34s %12s %8d%s\n",
		name, time.Duration(s.ns.Load()).Round(time.Microsecond), s.calls.Load(), note)
	n := 1
	for _, c := range s.sortedChildren() {
		n += writeSpan(w, c, depth+1)
	}
	return n
}

// WriteCounters renders every non-zero counter and gauge, sorted by name.
func WriteCounters(w io.Writer) {
	wrote := false
	for _, m := range Counters() {
		if m.Value == 0 {
			continue
		}
		if !wrote {
			fmt.Fprintln(w, "counters:")
			wrote = true
		}
		fmt.Fprintf(w, "  %-34s %18s\n", m.Name, comma(m.Value))
	}
	wroteG := false
	for _, m := range Gauges() {
		if m.Value == 0 {
			continue
		}
		if !wroteG {
			fmt.Fprintln(w, "gauges:")
			wroteG = true
		}
		fmt.Fprintf(w, "  %-34s %18s\n", m.Name, comma(m.Value))
	}
	if !wrote && !wroteG {
		fmt.Fprintln(w, "counters: (all zero)")
	}
}

// comma formats n with thousands separators (local copy: obs stays
// dependency-free so every engine package can import it).
func comma(n int64) string {
	s := strconv.FormatInt(n, 10)
	neg := false
	if len(s) > 0 && s[0] == '-' {
		neg = true
		s = s[1:]
	}
	var out []byte
	for i, d := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, d)
	}
	if neg {
		return "-" + string(out)
	}
	return string(out)
}
