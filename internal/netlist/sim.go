package netlist

import (
	"fmt"
	"sort"
)

// flatGate is one primitive cell instance after hierarchy flattening.
type flatGate struct {
	name  string
	cell  *Cell
	conns map[string]string // formal port bit -> global net name
	state bool              // current stored bit for sequential cells
	next  bool
	// Stuck-at forces injected by Inject (nil when fault-free).
	forceIn  map[string]bool
	forceOut map[string]bool
}

// Flatten elaborates the hierarchy under top into a list of primitive
// gates with globally unique net names ("inst/subinst/net").  Behavioral
// modules cannot be flattened and cause an error.
func flatten(d *Design, top string) ([]*flatGate, error) {
	var gates []*flatGate
	var walk func(modName, prefix string, bind map[string]string) error
	walk = func(modName, prefix string, bind map[string]string) error {
		m, ok := d.Modules[modName]
		if !ok {
			return fmt.Errorf("netlist: unknown module %s", modName)
		}
		if m.Behavioral {
			return fmt.Errorf("netlist: cannot simulate behavioral module %s", modName)
		}
		// Resolve a local net to a global name: port bits use the parent
		// binding, internal nets get the hierarchical prefix.
		resolve := func(local string) string {
			if g, ok := bind[local]; ok {
				return g
			}
			return prefix + local
		}
		for _, inst := range m.Instances {
			if cell, ok := d.Lib.Cell(inst.Of); ok {
				conns := make(map[string]string, len(inst.Conns))
				for f, a := range inst.Conns {
					conns[f] = resolve(a)
				}
				gates = append(gates, &flatGate{
					name:  prefix + inst.Name,
					cell:  cell,
					conns: conns,
				})
				continue
			}
			sub, ok := d.Modules[inst.Of]
			if !ok {
				return fmt.Errorf("netlist: %s instantiates unknown %s", modName, inst.Of)
			}
			childBind := make(map[string]string)
			for _, p := range sub.Ports {
				for _, b := range p.Bits() {
					if a, ok := inst.Conns[b]; ok {
						childBind[b] = resolve(a)
					} else {
						// Unconnected port: give it a private net.
						childBind[b] = prefix + inst.Name + "/" + b + ".nc"
					}
				}
			}
			if err := walk(inst.Of, prefix+inst.Name+"/", childBind); err != nil {
				return err
			}
		}
		return nil
	}
	topBind := make(map[string]string)
	m, ok := d.Modules[top]
	if !ok {
		return nil, fmt.Errorf("netlist: unknown top module %s", top)
	}
	for _, p := range m.Ports {
		for _, b := range p.Bits() {
			topBind[b] = b
		}
	}
	if err := walk(top, "", topBind); err != nil {
		return nil, err
	}
	return gates, nil
}

// Simulator is a two-valued, zero-delay gate-level simulator over a
// flattened module.  Combinational logic settles by repeated sweeps;
// sequential cells update on Tick.  Level-sensitive latches are treated as
// edge-triggered on the rising edge of their enable, which matches how the
// generated wrapper update strobes are pulsed.
type Simulator struct {
	gates  []*flatGate
	values map[string]bool
	// driverOf maps net -> gate output driving it (for settle ordering).
	maxSweeps int
}

// NewSimulator flattens top inside d and returns a simulator with all nets
// initialized to 0.
func NewSimulator(d *Design, top string) (*Simulator, error) {
	gates, err := flatten(d, top)
	if err != nil {
		return nil, err
	}
	s := &Simulator{gates: gates, values: make(map[string]bool)}
	s.maxSweeps = len(gates) + 2
	if err := s.Settle(); err != nil {
		return nil, err
	}
	return s, nil
}

// GateCount reports the number of flattened primitive gates.
func (s *Simulator) GateCount() int { return len(s.gates) }

// Set drives a top-level net (normally an input port bit).
func (s *Simulator) Set(net string, v bool) { s.values[net] = v }

// SetBus drives port bits name[0..len(v)-1] from v (v[0] is bit 0; width-1
// buses use the bare net name, per the BitName convention).
func (s *Simulator) SetBus(name string, v []bool) {
	for i, b := range v {
		s.Set(BitName(name, i, len(v)), b)
	}
}

// Get reads the current value of a net.
func (s *Simulator) Get(net string) bool { return s.values[net] }

// GetBus reads port bits name[0..width-1].
func (s *Simulator) GetBus(name string, width int) []bool {
	v := make([]bool, width)
	for i := range v {
		v[i] = s.Get(BitName(name, i, width))
	}
	return v
}

// Settle propagates combinational logic to a fixpoint.  Sequential cell
// outputs are held at their stored state.  An error is returned if the
// network oscillates (combinational loop).
func (s *Simulator) Settle() error {
	// Expose sequential state on Q/QN first.
	for _, g := range s.gates {
		if g.cell.Seq {
			s.exposeState(g)
		}
	}
	for sweep := 0; sweep < s.maxSweeps; sweep++ {
		changed := false
		for _, g := range s.gates {
			if g.cell.Seq {
				continue
			}
			in := s.gatherInputs(g)
			out := g.cell.Eval(in)
			for formal, v := range out {
				net, ok := g.conns[formal]
				if !ok {
					continue
				}
				if fv, forced := g.forceOut[formal]; forced {
					v = fv
				}
				if s.values[net] != v {
					s.values[net] = v
					changed = true
				}
			}
		}
		if !changed {
			return nil
		}
	}
	return fmt.Errorf("netlist: combinational loop did not settle after %d sweeps", s.maxSweeps)
}

func (s *Simulator) gatherInputs(g *flatGate) map[string]bool {
	in := make(map[string]bool, len(g.cell.Inputs)+1)
	for _, f := range g.cell.Inputs {
		if net, ok := g.conns[f]; ok {
			in[f] = s.values[net]
		}
	}
	for f, v := range g.forceIn {
		in[f] = v
	}
	if g.cell.Seq {
		in["Q"] = g.state
	}
	return in
}

func (s *Simulator) exposeState(g *flatGate) {
	if net, ok := g.conns["Q"]; ok {
		v := g.state
		if fv, forced := g.forceOut["Q"]; forced {
			v = fv
		}
		s.values[net] = v
	}
	if net, ok := g.conns["QN"]; ok {
		v := !g.state
		if fv, forced := g.forceOut["QN"]; forced {
			v = fv
		}
		s.values[net] = v
	}
}

// clockPin reads the clock input of a sequential gate, honouring any
// injected stuck-at force on that pin (a stuck clock never produces an
// edge).
func (s *Simulator) clockPin(g *flatGate) bool {
	if v, forced := g.forceIn[g.cell.Clock]; forced {
		return v
	}
	return s.values[g.conns[g.cell.Clock]]
}

// Tick pulses the named top-level clock net: it settles with the clock low,
// raises the clock, captures every sequential cell whose clock pin sees a
// rising edge (through any gating logic), commits the new states, settles,
// and returns the clock to 0.
func (s *Simulator) Tick(clock string) error {
	s.Set(clock, false)
	if err := s.Settle(); err != nil {
		return err
	}
	// Record pre-edge clock-pin values.
	pre := make([]bool, len(s.gates))
	for i, g := range s.gates {
		if g.cell.Seq {
			pre[i] = s.clockPin(g)
		}
	}
	s.Set(clock, true)
	// Propagate the clock edge through combinational logic without letting
	// any flop output move yet.
	if err := s.Settle(); err != nil {
		return err
	}
	for i, g := range s.gates {
		if !g.cell.Seq {
			continue
		}
		post := s.clockPin(g)
		if !pre[i] && post {
			out := g.cell.Eval(s.gatherInputs(g))
			g.next = out["Q"]
		} else {
			g.next = g.state
		}
	}
	for _, g := range s.gates {
		if g.cell.Seq {
			g.state = g.next
		}
	}
	if err := s.Settle(); err != nil {
		return err
	}
	s.Set(clock, false)
	return s.Settle()
}

// Nets returns all net names known to the simulator, sorted.
func (s *Simulator) Nets() []string {
	seen := make(map[string]bool)
	for _, g := range s.gates {
		for _, n := range g.conns {
			seen[n] = true
		}
	}
	for n := range s.values {
		seen[n] = true
	}
	nets := make([]string, 0, len(seen))
	for n := range seen {
		nets = append(nets, n)
	}
	sort.Strings(nets)
	return nets
}

// LoadState forces the stored bit of the sequential cell instance with the
// given flattened name.  It is used by tests to preset registers.
func (s *Simulator) LoadState(flatName string, v bool) error {
	for _, g := range s.gates {
		if g.name == flatName && g.cell.Seq {
			g.state = v
			s.exposeState(g)
			return nil
		}
	}
	return fmt.Errorf("netlist: no sequential cell named %s", flatName)
}
