package march

import (
	"fmt"
	"strings"
)

// Parse reads an algorithm from ASCII March notation, the same form String
// produces:
//
//	{ b(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); b(r0) }
//
// Order letters: "u"/"^" ascending, "d"/"v" descending, "b" either.  The
// outer braces are optional.  Parse is how user-supplied algorithms enter
// the BRAINS command shell.
func Parse(name, s string) (Algorithm, error) {
	body := strings.TrimSpace(s)
	body = strings.TrimPrefix(body, "{")
	body = strings.TrimSuffix(body, "}")
	a := Algorithm{Name: name}
	for _, part := range strings.Split(body, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		e, err := parseElement(part)
		if err != nil {
			return Algorithm{}, fmt.Errorf("march: parsing %q: %w", part, err)
		}
		a.Elements = append(a.Elements, e)
	}
	if err := a.Validate(); err != nil {
		return Algorithm{}, err
	}
	return a, nil
}

func parseElement(s string) (Element, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return Element{}, fmt.Errorf("element must look like u(r0,w1)")
	}
	var order Order
	switch strings.TrimSpace(s[:open]) {
	case "u", "^":
		order = Up
	case "d", "v":
		order = Down
	case "b", "":
		order = Either
	default:
		return Element{}, fmt.Errorf("unknown address order %q", s[:open])
	}
	e := Element{Order: order}
	for _, tok := range strings.Split(s[open+1:len(s)-1], ",") {
		tok = strings.TrimSpace(strings.ToLower(tok))
		var op Op
		switch tok {
		case "r0":
			op = R0
		case "r1":
			op = R1
		case "w0":
			op = W0
		case "w1":
			op = W1
		default:
			return Element{}, fmt.Errorf("unknown op %q", tok)
		}
		e.Ops = append(e.Ops, op)
	}
	if len(e.Ops) == 0 {
		return Element{}, fmt.Errorf("element has no ops")
	}
	return e, nil
}
