package bist

import (
	"strings"
	"testing"

	"steac/internal/march"
	"steac/internal/memfault"
	"steac/internal/memory"
)

func diagEngine(t *testing.T, cfg memory.Config, faults []memfault.Fault) *Engine {
	t.Helper()
	ram, err := memfault.NewFaulty(cfg, faults)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine([]Group{{Name: "g", Alg: march.MarchCMinus(),
		Mems: []MemoryUnderTest{{RAM: ram}}}}, Serial)
	if err != nil {
		t.Fatal(err)
	}
	e.EnableDiagnosis(0)
	return e
}

func TestDiagnosisSingleCell(t *testing.T) {
	cfg := memory.Config{Name: "d", Words: 64, Bits: 8}
	e := diagEngine(t, cfg, []memfault.Fault{
		{Kind: memfault.SA1, Victim: memfault.Cell{Addr: 17, Bit: 3}},
	})
	if e.Run().Pass {
		t.Fatal("fault undetected")
	}
	diags := e.Diagnoses()
	if len(diags) != 1 {
		t.Fatalf("diagnoses = %d", len(diags))
	}
	d := diags[0]
	if d.Signature() != "single-cell" {
		t.Fatalf("signature = %s (%d fails)", d.Signature(), len(d.Fails))
	}
	if d.Fails[0] != (FailBit{Addr: 17, Bit: 3}) {
		t.Fatalf("located %+v, want 17.3", d.Fails[0])
	}
	if !strings.Contains(d.String(), "single-cell") {
		t.Fatalf("string = %q", d.String())
	}
}

func TestDiagnosisColumn(t *testing.T) {
	// A column defect: bit 5 stuck at every address.
	cfg := memory.Config{Name: "d", Words: 32, Bits: 8}
	var faults []memfault.Fault
	for a := 0; a < cfg.Words; a++ {
		faults = append(faults, memfault.Fault{Kind: memfault.SA0,
			Victim: memfault.Cell{Addr: a, Bit: 5}})
	}
	e := diagEngine(t, cfg, faults)
	if e.Run().Pass {
		t.Fatal("column defect undetected")
	}
	d := e.Diagnoses()[0]
	if d.Signature() != "column" {
		t.Fatalf("signature = %s", d.Signature())
	}
	if len(d.Fails) != cfg.Words {
		t.Fatalf("bitmap has %d fails, want %d", len(d.Fails), cfg.Words)
	}
}

func TestDiagnosisRow(t *testing.T) {
	// A row defect: every bit of address 9 stuck.
	cfg := memory.Config{Name: "d", Words: 32, Bits: 8}
	var faults []memfault.Fault
	for b := 0; b < cfg.Bits; b++ {
		faults = append(faults, memfault.Fault{Kind: memfault.SA1,
			Victim: memfault.Cell{Addr: 9, Bit: b}})
	}
	e := diagEngine(t, cfg, faults)
	if e.Run().Pass {
		t.Fatal("row defect undetected")
	}
	d := e.Diagnoses()[0]
	if d.Signature() != "row" {
		t.Fatalf("signature = %s", d.Signature())
	}
}

func TestDiagnosisScatteredAndTruncation(t *testing.T) {
	cfg := memory.Config{Name: "d", Words: 32, Bits: 8}
	faults := []memfault.Fault{
		{Kind: memfault.SA1, Victim: memfault.Cell{Addr: 1, Bit: 1}},
		{Kind: memfault.SA0, Victim: memfault.Cell{Addr: 20, Bit: 6}},
	}
	e := diagEngine(t, cfg, faults)
	e.EnableDiagnosis(1) // force truncation
	if e.Run().Pass {
		t.Fatal("faults undetected")
	}
	d := e.Diagnoses()[0]
	if !d.Truncated || len(d.Fails) != 1 {
		t.Fatalf("truncation broken: %+v", d)
	}
	// Without the cap the signature is scattered.
	e2 := diagEngine(t, cfg, faults)
	e2.Run()
	if sig := e2.Diagnoses()[0].Signature(); sig != "scattered" {
		t.Fatalf("signature = %s", sig)
	}
}

func TestDiagnosisOffByDefault(t *testing.T) {
	cfg := memory.Config{Name: "d", Words: 16, Bits: 4}
	ram, err := memfault.NewFaulty(cfg, []memfault.Fault{
		{Kind: memfault.SA1, Victim: memfault.Cell{Addr: 0, Bit: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine([]Group{{Name: "g", Alg: march.MarchCMinus(),
		Mems: []MemoryUnderTest{{RAM: ram}}}}, Serial)
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if e.Diagnoses() != nil {
		t.Fatal("diagnosis data collected without opt-in")
	}
	if (Diagnosis{}).Signature() != "none" {
		t.Fatal("empty signature")
	}
}
