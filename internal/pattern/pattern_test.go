package pattern

import (
	"testing"
	"testing/quick"

	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

func miniScanCore() *testinfo.Core {
	return &testinfo.Core{
		Name:        "MUSB",
		Clocks:      []string{"ck"},
		ScanEnables: []string{"se"},
		PIs:         6, POs: 4,
		ScanChains: []testinfo.ScanChain{
			{Name: "c0", Length: 13, In: "si0", Out: "so0", Clock: "ck"},
			{Name: "c1", Length: 7, In: "si1", Out: "so1", Clock: "ck"},
		},
		Patterns: []testinfo.PatternSet{{Name: "scan", Type: testinfo.Scan, Count: 5, Seed: 21}},
	}
}

func miniFuncCore() *testinfo.Core {
	return &testinfo.Core{
		Name:   "MJPEG",
		Clocks: []string{"ck"},
		PIs:    9, POs: 5,
		Patterns: []testinfo.PatternSet{{Name: "func", Type: testinfo.Functional, Count: 40, Seed: 22}},
	}
}

func TestBitSemantics(t *testing.T) {
	if !BX.Matches(true) || !BX.Matches(false) {
		t.Fatal("X must match anything")
	}
	if !B1.Matches(true) || B1.Matches(false) || !B0.Matches(false) {
		t.Fatal("bit matching broken")
	}
	if FromBool(true) != B1 || FromBool(false) != B0 {
		t.Fatal("FromBool")
	}
	if B1.Bool() != true || BX.Bool() != false {
		t.Fatal("Bool")
	}
}

func TestCoreModelDeterministic(t *testing.T) {
	core := miniScanCore()
	m1, m2 := NewCoreModel(core), NewCoreModel(core)
	state := prandBits(1, m1.StateBits())
	pi := prandBits(2, core.PIs)
	n1, p1 := m1.Capture(state, pi)
	n2, p2 := m2.Capture(state, pi)
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatal("capture nondeterministic")
		}
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("po nondeterministic")
		}
	}
	if len(p1) != core.POs || len(n1) != m1.StateBits() {
		t.Fatal("capture dimensions")
	}
}

func TestCoreModelSensitivity(t *testing.T) {
	// A perturbed seed must change behaviour (this is how defects are
	// injected); and different PI vectors must change outputs somewhere.
	core := miniScanCore()
	m := NewCoreModel(core)
	bad := *m
	bad.Seed ^= 0xDEADBEEF
	state := prandBits(3, m.StateBits())
	pi := prandBits(4, core.PIs)
	n1, _ := m.Capture(state, pi)
	n2, _ := bad.Capture(state, pi)
	same := true
	for i := range n1 {
		if n1[i] != n2[i] {
			same = false
		}
	}
	if same {
		t.Fatal("defective model behaves identically")
	}
}

func TestATPGScanPatterns(t *testing.T) {
	a, err := NewATPG(miniScanCore())
	if err != nil {
		t.Fatal(err)
	}
	if a.ScanCount() != 5 || a.FuncCount() != 0 {
		t.Fatalf("counts = %d/%d", a.ScanCount(), a.FuncCount())
	}
	p0, err := a.ScanPattern(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p0.Load) != 2 || len(p0.Load[0]) != 13 || len(p0.Load[1]) != 7 {
		t.Fatalf("load shape: %d chains", len(p0.Load))
	}
	if len(p0.PI) != 6 || len(p0.ExpectPO) != 4 {
		t.Fatal("pi/po shape")
	}
	// Expected unload must equal the model's capture of the load.
	m := a.Model
	state := append(append([]bool{}, p0.Load[0]...), p0.Load[1]...)
	next, po := m.Capture(state, p0.PI)
	for i := 0; i < 13; i++ {
		if p0.ExpectUnload[0][i] != next[i] {
			t.Fatal("unload mismatch chain 0")
		}
	}
	for i := 0; i < 7; i++ {
		if p0.ExpectUnload[1][i] != next[13+i] {
			t.Fatal("unload mismatch chain 1")
		}
	}
	for i := range po {
		if p0.ExpectPO[i] != po[i] {
			t.Fatal("po mismatch")
		}
	}
	// Deterministic regeneration.
	q0, err := a.ScanPattern(0)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range p0.Load {
		for k := range p0.Load[ci] {
			if p0.Load[ci][k] != q0.Load[ci][k] {
				t.Fatal("regeneration differs")
			}
		}
	}
	if _, err := a.ScanPattern(5); err == nil {
		t.Fatal("out-of-range pattern accepted")
	}
}

func TestATPGFunctionalSequence(t *testing.T) {
	a, err := NewATPG(miniFuncCore())
	if err != nil {
		t.Fatal(err)
	}
	var walked []FuncPattern
	a.FuncWalk(func(i int, p FuncPattern) bool {
		walked = append(walked, p)
		return true
	})
	if len(walked) != 40 {
		t.Fatalf("walked %d", len(walked))
	}
	// Random access agrees with the walk.
	for _, i := range []int{0, 7, 39} {
		p, err := a.FuncPattern(i)
		if err != nil {
			t.Fatal(err)
		}
		for k := range p.PI {
			if p.PI[k] != walked[i].PI[k] {
				t.Fatalf("pattern %d PI differs", i)
			}
		}
		for k := range p.ExpectPO {
			if p.ExpectPO[k] != walked[i].ExpectPO[k] {
				t.Fatalf("pattern %d PO differs", i)
			}
		}
	}
	if _, err := a.FuncPattern(40); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

// Property: every scan pattern's chain images are structurally consistent:
// image lengths equal chain lengths and the segment region reproduces the
// load data.
func TestChainImagesProperty(t *testing.T) {
	core := miniScanCore()
	a, err := NewATPG(core)
	if err != nil {
		t.Fatal(err)
	}
	f := func(widthSeed uint8) bool {
		width := int(widthSeed%3) + 1
		plan, err := designPlan(core, width)
		if err != nil {
			return false
		}
		lane := ScanLane{Core: core, Source: a, Plan: plan}
		for i := 0; i < a.ScanCount(); i++ {
			p, err := a.ScanPattern(i)
			if err != nil {
				return false
			}
			load, expect := chainImages(lane, p)
			for ci, ch := range plan.Chains {
				if len(load[ci]) != ch.Length() || len(expect[ci]) != ch.Length() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func designPlan(core *testinfo.Core, width int) (wrapper.Plan, error) {
	return wrapper.DesignChains(core, width, wrapper.LPT)
}
