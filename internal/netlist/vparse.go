package netlist

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseVerilog reads the structural Verilog subset this package emits — the
// paper's Fig. 1 input is an "HDL Design with DFT Information", so the
// platform must be able to consume netlist files, not just produce them.
//
// Supported constructs: module/endmodule with a port list, input/output/
// inout declarations (scalar or [msb:0] buses), wire declarations, and
// named-port instantiations of library cells or other modules.  Escaped
// identifiers ("\name ") carry the flattened bus-bit formals the emitter
// writes.  The "// behavioral IP block, N NAND2-equivalent gates" banner
// the emitter prints restores Behavioral/AreaOverride.
//
// ParseVerilog(EmitVerilogString(d)) reproduces d up to net-declaration
// order (emission is canonical, so emit→parse→emit is a fixed point).
func ParseVerilog(src string, lib *Library) (*Design, error) {
	if lib == nil {
		lib = DefaultLibrary()
	}
	p := &vparser{lib: lib}
	if err := p.tokenize(src); err != nil {
		return nil, err
	}
	d := NewDesign("parsed", lib)
	d.Top = ""
	for !p.eof() {
		m, behavioralArea, isBehavioral, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		if isBehavioral {
			m.Behavioral = true
			m.AreaOverride = behavioralArea
		}
		if err := d.AddModule(m); err != nil {
			return nil, err
		}
		// The emitter writes the top module last.
		d.Top = m.Name
	}
	if len(d.Modules) == 0 {
		return nil, fmt.Errorf("netlist: no modules in Verilog source")
	}
	return d, nil
}

type vtoken struct {
	text string
	line int
	// ident marks identifiers (including escaped ones).
	ident bool
}

type vparser struct {
	lib  *Library
	toks []vtoken
	pos  int
}

func (p *vparser) tokenize(src string) error {
	line := 1
	i := 0
	push := func(text string, ident bool) {
		p.toks = append(p.toks, vtoken{text: text, line: line, ident: ident})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			j := strings.IndexByte(src[i:], '\n')
			comment := src[i:]
			if j >= 0 {
				comment = src[i : i+j]
				i += j
			} else {
				i = len(src)
			}
			// Behavioral banner: "// behavioral IP block, N NAND2-...".
			// Encoded as a positional pseudo-token so it binds to the
			// module that immediately follows it.
			if strings.Contains(comment, "behavioral IP block,") {
				fields := strings.Fields(comment)
				for k, f := range fields {
					if f == "block," && k+1 < len(fields) {
						if _, err := strconv.ParseFloat(fields[k+1], 64); err == nil {
							push("@behavioral", false)
							push(fields[k+1], false)
						}
					}
				}
			}
		case c == '\\':
			// Escaped identifier: up to the next whitespace.
			j := i + 1
			for j < len(src) && src[j] != ' ' && src[j] != '\t' && src[j] != '\n' && src[j] != '\r' {
				j++
			}
			if j == i+1 {
				return fmt.Errorf("netlist: line %d: empty escaped identifier", line)
			}
			push(src[i+1:j], true)
			i = j
		case isVIdentStart(c):
			j := i
			for j < len(src) && isVIdentPart(src[j]) {
				j++
			}
			push(src[i:j], true)
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			push(src[i:j], false)
			i = j
		case strings.IndexByte("()[]{};,.:", c) >= 0:
			push(string(c), false)
			i++
		default:
			return fmt.Errorf("netlist: line %d: unexpected character %q", line, string(c))
		}
	}
	return nil
}

func isVIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isVIdentPart(c byte) bool {
	return isVIdentStart(c) || (c >= '0' && c <= '9')
}

func (p *vparser) eof() bool { return p.pos >= len(p.toks) }

func (p *vparser) peek() vtoken {
	if p.eof() {
		return vtoken{}
	}
	return p.toks[p.pos]
}

func (p *vparser) next() vtoken {
	t := p.peek()
	p.pos++
	return t
}

func (p *vparser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return fmt.Errorf("netlist: line %d: expected %q, got %q", t.line, text, t.text)
	}
	return nil
}

func (p *vparser) expectIdent() (string, error) {
	t := p.next()
	if !t.ident {
		return "", fmt.Errorf("netlist: line %d: expected identifier, got %q", t.line, t.text)
	}
	return t.text, nil
}

func (p *vparser) expectInt() (int, error) {
	t := p.next()
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("netlist: line %d: expected number, got %q", t.line, t.text)
	}
	return n, nil
}

// netRef parses an actual/wire reference: ident, or ident[index].
func (p *vparser) netRef() (string, error) {
	name, err := p.expectIdent()
	if err != nil {
		return "", err
	}
	if p.peek().text == "[" {
		p.next()
		idx, err := p.expectInt()
		if err != nil {
			return "", err
		}
		if err := p.expect("]"); err != nil {
			return "", err
		}
		name = fmt.Sprintf("%s[%d]", name, idx)
	}
	return name, nil
}

func (p *vparser) parseModule() (*Module, float64, bool, error) {
	banner := 0.0
	isBehavioral := false
	if p.peek().text == "@behavioral" {
		p.next()
		t := p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, 0, false, fmt.Errorf("netlist: line %d: bad behavioral area %q", t.line, t.text)
		}
		banner = v
		isBehavioral = true
	}
	if err := p.expect("module"); err != nil {
		return nil, 0, false, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, 0, false, err
	}
	m := NewModule(name)
	if err := p.expect("("); err != nil {
		return nil, 0, false, err
	}
	var portOrder []string
	for p.peek().text != ")" {
		pn, err := p.expectIdent()
		if err != nil {
			return nil, 0, false, err
		}
		portOrder = append(portOrder, pn)
		if p.peek().text == "," {
			p.next()
		}
	}
	p.next() // ")"
	if err := p.expect(";"); err != nil {
		return nil, 0, false, err
	}

	dirOf := make(map[string]PortDir)
	widthOf := make(map[string]int)
	for {
		t := p.peek()
		switch t.text {
		case "input", "output", "inout":
			p.next()
			dir := map[string]PortDir{"input": In, "output": Out, "inout": InOut}[t.text]
			width := 1
			if p.peek().text == "[" {
				p.next()
				msb, err := p.expectInt()
				if err != nil {
					return nil, 0, false, err
				}
				if err := p.expect(":"); err != nil {
					return nil, 0, false, err
				}
				lsb, err := p.expectInt()
				if err != nil {
					return nil, 0, false, err
				}
				if lsb != 0 || msb < 0 {
					return nil, 0, false, fmt.Errorf("netlist: line %d: only [msb:0] ranges supported", t.line)
				}
				if err := p.expect("]"); err != nil {
					return nil, 0, false, err
				}
				width = msb + 1
			}
			for {
				pn, err := p.expectIdent()
				if err != nil {
					return nil, 0, false, err
				}
				dirOf[pn] = dir
				widthOf[pn] = width
				if p.peek().text != "," {
					break
				}
				p.next()
			}
			if err := p.expect(";"); err != nil {
				return nil, 0, false, err
			}
		case "wire":
			p.next()
			for {
				wn, err := p.netRef()
				if err != nil {
					return nil, 0, false, err
				}
				m.AddNet(wn)
				if p.peek().text != "," {
					break
				}
				p.next()
			}
			if err := p.expect(";"); err != nil {
				return nil, 0, false, err
			}
		case "endmodule":
			p.next()
			// Declare ports in header order now that directions are known.
			for _, pn := range portOrder {
				dir, ok := dirOf[pn]
				if !ok {
					return nil, 0, false, fmt.Errorf("netlist: module %s: port %s has no direction", name, pn)
				}
				if err := m.AddPort(pn, dir, widthOf[pn]); err != nil {
					return nil, 0, false, err
				}
			}
			return m, banner, isBehavioral, nil
		default:
			if !t.ident {
				return nil, 0, false, fmt.Errorf("netlist: line %d: unexpected %q", t.line, t.text)
			}
			if err := p.parseInstance(m); err != nil {
				return nil, 0, false, err
			}
		}
	}
}

func (p *vparser) parseInstance(m *Module) error {
	of, err := p.expectIdent()
	if err != nil {
		return err
	}
	inst, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expect("("); err != nil {
		return err
	}
	conns := make(map[string]string)
	for p.peek().text != ")" {
		if err := p.expect("."); err != nil {
			return err
		}
		formal, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expect("("); err != nil {
			return err
		}
		actual, err := p.netRef()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		conns[formal] = actual
		if p.peek().text == "," {
			p.next()
		}
	}
	p.next() // ")"
	if err := p.expect(";"); err != nil {
		return err
	}
	_, err2 := m.AddInstance(inst, of, conns)
	return err2
}
