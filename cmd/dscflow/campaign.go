package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"steac/internal/campaign"
	"steac/internal/memfault"
	"steac/internal/xcheck"
)

// The checkpointable campaign mode:
//
//	dscflow -campaign spec.json -checkpoint DIR   start (or resume) a campaign
//	dscflow -resume DIR                           resume from the manifest alone
//
// A spec file names a campaign kind plus its canonical spec payload:
//
//	{"kind": "memfault",
//	 "spec": {"algorithm": "March C-",
//	          "config": {"Name": "fb0", "Words": 65536, "Bits": 16, "Kind": 0},
//	          "all_faults": true}}
//
// SIGINT/SIGTERM checkpoint gracefully: in-flight shards finish and are
// journaled, then the process exits non-zero; rerunning either command
// picks up exactly where it stopped and prints a report bit-identical to
// an uninterrupted run.

// specFile is the on-disk shape of a -campaign argument.
type specFile struct {
	Kind string          `json:"kind"`
	Spec json.RawMessage `json:"spec"`
}

// runCampaignCLI dispatches the -campaign / -resume modes.
func runCampaignCLI(specPath, resumeDir, checkpointDir string, shardSize, workers int) error {
	var (
		spec campaign.Spec
		dir  = checkpointDir
		err  error
	)
	switch {
	case specPath != "" && resumeDir != "":
		return fmt.Errorf("-campaign and -resume are mutually exclusive")
	case specPath != "":
		raw, rerr := os.ReadFile(specPath)
		if rerr != nil {
			return rerr
		}
		var sf specFile
		if err := json.Unmarshal(raw, &sf); err != nil {
			return fmt.Errorf("parse %s: %w", specPath, err)
		}
		spec, err = campaign.Decode(sf.Kind, sf.Spec)
	case resumeDir != "":
		// The checkpoint directory is self-describing: kind and spec come
		// from the manifest.
		dir = resumeDir
		spec, err = campaign.LoadSpec(resumeDir)
	}
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	res, err := campaign.Run(ctx, spec, campaign.Options{
		Workers:   workers,
		ShardSize: shardSize,
		Dir:       dir,
		OnShard: func(ev campaign.ShardEvent) {
			if ev.Resumed {
				return
			}
			fmt.Fprintf(os.Stderr, "campaign: shard %d/%d (%d/%d units)\n",
				ev.Done, ev.Total, ev.UnitsDone, ev.UnitsTotal)
		},
	})
	if err != nil {
		if dir != "" && errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "campaign: interrupted; checkpoint saved under %s\n", dir)
		}
		return err
	}

	fmt.Printf("campaign %s: %d shards (%d resumed, %d repaired)\n",
		res.Fingerprint[:12], res.Shards, res.Resumed, res.Repaired)
	printCampaignReport(res.Report)
	return nil
}

// printCampaignReport renders the engine-native report of a finished
// campaign.
func printCampaignReport(report interface{}) {
	switch rep := report.(type) {
	case memfault.Campaign:
		fmt.Printf("%s: %d/%d faults detected (%.2f%%)\n",
			rep.Algorithm, rep.Detected, rep.Total, rep.Percent())
		for _, cc := range rep.ByClass {
			fmt.Printf("  %-5s %4d/%-4d %6.2f%%\n", cc.Class, cc.Detected, cc.Total, cc.Percent())
		}
		if len(rep.Undetected) > 0 {
			fmt.Printf("  undetected (first %d):", len(rep.Undetected))
			for i, f := range rep.Undetected {
				if i == 4 {
					fmt.Print(" ...")
					break
				}
				fmt.Printf(" %s", f)
			}
			fmt.Println()
		}
	case xcheck.CampaignResult:
		fmt.Println(rep.String())
	default:
		blob, _ := json.Marshal(rep)
		fmt.Println(string(blob))
	}
}
