package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"steac/internal/campaign"
)

// Property tests for the content-addressed cache key.  The canonicalization
// contract (see requestKey and the request types' canonical methods):
//
//  1. The key is a function of the decoded request, so JSON field order,
//     whitespace, and encoding details of the wire body never split it.
//  2. The non-semantic tuning fields (workers, timeout_ms) are zeroed out
//     of the key: varying them joins the same cache line.
//  3. Requests with different semantics never share a key, and the same
//     payload on different endpoints never shares a key.
//
// The same contract covers the job API's campaign fingerprint, which is
// what content-addresses checkpoint directories on disk.

// endpointCases pairs each cached endpoint with a fully-populated exemplar
// body exercising every decodable field.
var endpointCases = []struct {
	endpoint string
	fresh    func() runner
	body     string
}{
	{"flow", func() runner { return &FlowRequest{} },
		`{"chip":"dsc","stil":["STIL 1.0;"],"memories":[{"Name":"m0","Words":16,"Bits":2,"Kind":0}],
		  "test_pins":24,"func_pins":128,"max_power":900.5,"partition":"lpt",
		  "algorithm":"March C-","verify":true,"extest":true,"workers":3,"timeout_ms":1500}`},
	{"sched", func() runner { return &SchedRequest{} },
		`{"chip":"dsc","test_pins":[18,22,26],"func_pins":100,"max_power":800,
		  "partition":"firstfit","workers":2,"timeout_ms":99}`},
	{"memfault", func() runner { return &MemfaultRequest{} },
		`{"algorithms":["March C-","MATS+"],"words":64,"bits":4,"two_port":true,
		  "seed":7,"max_undetected":-1,"workers":8,"timeout_ms":123}`},
	{"xcheck", func() runner { return &XCheckRequest{} },
		`{"kind":"wrapper","algorithm":"March C-","words":32,"bits":2,"two_port":false,
		  "n_groups":3,"core":"TV","tam_width":2,"max_faults":100,"seed":9,
		  "max_undetected":4,"max_patterns":8,"workers":2,"timeout_ms":5}`},
}

// keyForBody mirrors the handler path exactly: strict-decode the wire body
// into a fresh request, then key its canonical form.
func keyForBody(t *testing.T, endpoint string, fresh func() runner, body []byte) string {
	t.Helper()
	req := fresh()
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		t.Fatalf("%s: decode %s: %v", endpoint, body, err)
	}
	key, err := requestKey(endpoint, req.canonical())
	if err != nil {
		t.Fatalf("%s: requestKey: %v", endpoint, err)
	}
	return key
}

// permuteJSON re-encodes a JSON value with every object's fields in a
// random order and random interstitial whitespace, recursively.  Array
// element order is semantic and preserved.
func permuteJSON(t *testing.T, rng *rand.Rand, raw []byte) []byte {
	t.Helper()
	ws := func() string {
		return []string{"", " ", "\n", "\t"}[rng.Intn(4)]
	}
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 {
		return trimmed
	}
	var b strings.Builder
	switch trimmed[0] {
	case '{':
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(trimmed, &fields); err != nil {
			t.Fatalf("permute object %s: %v", trimmed, err)
		}
		keys := make([]string, 0, len(fields))
		for k := range fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		b.WriteString("{")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "%s%q%s:%s%s", ws(), k, ws(), ws(), permuteJSON(t, rng, fields[k]))
		}
		b.WriteString(ws())
		b.WriteString("}")
	case '[':
		var elems []json.RawMessage
		if err := json.Unmarshal(trimmed, &elems); err != nil {
			t.Fatalf("permute array %s: %v", trimmed, err)
		}
		b.WriteString("[")
		for i, e := range elems {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(ws())
			b.Write(permuteJSON(t, rng, e))
		}
		b.WriteString(ws())
		b.WriteString("]")
	default:
		return trimmed
	}
	return []byte(b.String())
}

// TestCanonicalKeyEncodingInvariance: any re-encoding of the same request —
// permuted field order, arbitrary whitespace — lands on the same cache key.
func TestCanonicalKeyEncodingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, tc := range endpointCases {
		base := keyForBody(t, tc.endpoint, tc.fresh, []byte(tc.body))
		for trial := 0; trial < 64; trial++ {
			variant := permuteJSON(t, rng, []byte(tc.body))
			if got := keyForBody(t, tc.endpoint, tc.fresh, variant); got != base {
				t.Fatalf("%s: key split by re-encoding:\n%s\n-> %s, want %s", tc.endpoint, variant, got, base)
			}
		}
	}
}

// TestCanonicalKeyTuningInvariance: workers and timeout_ms — absent, zero,
// or any value — never change the key.
func TestCanonicalKeyTuningInvariance(t *testing.T) {
	for _, tc := range endpointCases {
		var fields map[string]json.RawMessage
		if err := json.Unmarshal([]byte(tc.body), &fields); err != nil {
			t.Fatal(err)
		}
		variants := make([][]byte, 0, 4)
		for _, tune := range []string{`0`, `1`, `4096`, ""} {
			f := map[string]json.RawMessage{}
			for k, v := range fields {
				f[k] = v
			}
			if tune == "" {
				delete(f, "workers")
				delete(f, "timeout_ms")
			} else {
				f["workers"] = json.RawMessage(tune)
				f["timeout_ms"] = json.RawMessage(tune)
			}
			blob, err := json.Marshal(f)
			if err != nil {
				t.Fatal(err)
			}
			variants = append(variants, blob)
		}
		base := keyForBody(t, tc.endpoint, tc.fresh, variants[0])
		for _, v := range variants[1:] {
			if got := keyForBody(t, tc.endpoint, tc.fresh, v); got != base {
				t.Fatalf("%s: tuning fields split the key:\n%s\n-> %s, want %s", tc.endpoint, v, got, base)
			}
		}
	}
}

// TestCanonicalKeyEndpointSeparation: the same canonical payload on two
// different endpoints must never collide (the endpoint name is part of the
// hash preimage).
func TestCanonicalKeyEndpointSeparation(t *testing.T) {
	payload := map[string]int{"words": 64, "bits": 4}
	seen := map[string]string{}
	for _, endpoint := range []string{"flow", "sched", "memfault", "xcheck"} {
		key, err := requestKey(endpoint, payload)
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := seen[key]; ok {
			t.Fatalf("endpoints %s and %s share key %s", prev, endpoint, key)
		}
		seen[key] = endpoint
	}
}

// randomMemfault draws a MemfaultRequest from small semantic domains.
// Slices are nil or non-empty — never empty-but-allocated, which omitempty
// deliberately identifies with nil.
func randomMemfault(rng *rand.Rand) MemfaultRequest {
	algSets := [][]string{nil, {"March C-"}, {"MATS+"}, {"March C-", "MATS+"}}
	return MemfaultRequest{
		Algorithms:    algSets[rng.Intn(len(algSets))],
		Words:         []int{4, 16, 64, 256}[rng.Intn(4)],
		Bits:          1 + rng.Intn(8),
		TwoPort:       rng.Intn(2) == 1,
		Seed:          int64(rng.Intn(3)),
		MaxUndetected: []int{-1, 0, 5}[rng.Intn(3)],
		Workers:       rng.Intn(16),
		TimeoutMS:     rng.Intn(10000),
	}
}

func randomXCheck(rng *rand.Rand) XCheckRequest {
	return XCheckRequest{
		Kind:          []string{"tpg", "controller", "wrapper"}[rng.Intn(3)],
		Algorithm:     []string{"", "March C-", "MATS+"}[rng.Intn(3)],
		Words:         []int{0, 16, 64}[rng.Intn(3)],
		Bits:          rng.Intn(5),
		TwoPort:       rng.Intn(2) == 1,
		NGroups:       rng.Intn(4),
		Core:          []string{"", "USB", "TV", "JPEG"}[rng.Intn(4)],
		TamWidth:      rng.Intn(3),
		MaxFaults:     []int{0, 100}[rng.Intn(2)],
		Seed:          int64(rng.Intn(3)),
		MaxUndetected: rng.Intn(3),
		MaxPatterns:   rng.Intn(3),
		Workers:       rng.Intn(16),
		TimeoutMS:     rng.Intn(10000),
	}
}

// TestCanonicalKeyCollisionFreedom: over seeded random request populations,
// two requests share a key if and only if their canonical forms are
// identical — distinct semantics never collide, and tuning-only differences
// always coincide.
func TestCanonicalKeyCollisionFreedom(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	seenKeys := map[string]string{}
	seenReprs := map[string]string{}
	check := func(endpoint string, canonical interface{}) {
		t.Helper()
		key, err := requestKey(endpoint, canonical)
		if err != nil {
			t.Fatal(err)
		}
		repr := fmt.Sprintf("%#v", canonical)
		if prev, ok := seenKeys[key]; ok {
			if prev != repr {
				t.Fatalf("%s: distinct requests collide on %s:\n%s\n%s", endpoint, key, prev, repr)
			}
		} else {
			seenKeys[key] = repr
		}
		if prevKey, ok := seenReprs[repr]; ok {
			if prevKey != key {
				t.Fatalf("%s: identical canonical form got two keys: %s, %s", endpoint, prevKey, key)
			}
		} else {
			seenReprs[repr] = key
		}
	}
	for i := 0; i < 400; i++ {
		check("memfault", randomMemfault(rng).canonical())
		check("xcheck", randomXCheck(rng).canonical())
	}
}

// TestJobFingerprintCanonicalization extends the contract to the job API:
// the campaign fingerprint (which names the on-disk checkpoint) is
// invariant to spec re-encoding and sensitive to every semantic field.
func TestJobFingerprintCanonicalization(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	base := []byte(`{"algorithm":"March C-","config":{"Name":"fp","Words":64,"Bits":4},"all_faults":true}`)
	want := fingerprintOf(t, base)
	for trial := 0; trial < 32; trial++ {
		variant := permuteJSON(t, rng, base)
		if got := fingerprintOf(t, variant); got != want {
			t.Fatalf("fingerprint split by re-encoding %s: %s vs %s", variant, got, want)
		}
	}
	changed := []byte(`{"algorithm":"March C-","config":{"Name":"fp","Words":128,"Bits":4},"all_faults":true}`)
	if fingerprintOf(t, changed) == want {
		t.Fatal("semantically different specs share a fingerprint")
	}
}

func fingerprintOf(t *testing.T, payload []byte) string {
	t.Helper()
	spec, err := campaign.Decode(campaign.KindMemfault, json.RawMessage(payload))
	if err != nil {
		t.Fatalf("decode %s: %v", payload, err)
	}
	fp, err := campaign.Fingerprint(spec)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}
