package netlist

import "testing"

// FuzzParseVerilog feeds arbitrary bytes to the structural-Verilog reader.
// Malformed input must return an error — never panic — and any design the
// parser accepts must survive an emit→parse round trip (emission is
// canonical, so emit∘parse is a fixed point on the emitted form).
func FuzzParseVerilog(f *testing.F) {
	d := NewDesign("seed", DefaultLibrary())
	m := NewModule("seed")
	m.MustPort("a", In, 1)
	m.MustPort("b", In, 1)
	m.MustPort("y", Out, 1)
	m.MustInstance("u1", CellAnd2, map[string]string{"A": "a", "B": "b", "Z": "y"})
	d.MustAddModule(m)
	if src, err := d.EmitVerilogString(); err == nil {
		f.Add(src)
	}
	f.Add("module m(a, y);\ninput a;\noutput y;\nBUF u0 (.A(a), .Z(y));\nendmodule\n")
	f.Add("module m(d, ck, q);\ninput d, ck;\noutput q;\nwire w;\nDFF r (.D(d), .CK(ck), .Q(q));\nendmodule\n")
	f.Add("module b(x);\ninout [3:0] x;\nendmodule\n")
	f.Add("// behavioral IP block, 42 NAND2-equivalent gates\nmodule ip(a);\ninput a;\nendmodule\n")
	f.Add("module m(\\q[0] );\ninput \\q[0] ;\nendmodule\n")
	f.Add("module m(a); input a; endmodule garbage")
	f.Add("module")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseVerilog(src, nil)
		if err != nil {
			return
		}
		if d == nil {
			t.Fatalf("ParseVerilog returned nil design without error")
		}
		out, err := d.EmitVerilogString()
		if err != nil {
			// Accepted designs may still be un-emittable (e.g. a module
			// with no top); an error return is the correct behaviour.
			return
		}
		if _, err := ParseVerilog(out, d.Lib); err != nil {
			t.Fatalf("re-parse of emitted design failed: %v\n%s", err, out)
		}
	})
}
