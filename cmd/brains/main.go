// Command brains is the BRAINS memory-BIST compiler shell: describe the
// embedded memories, pick a March algorithm and a grouping, then compile
// and inspect the generated BIST design, its hardware cost and test time,
// or fault-simulate the March catalog's efficiency.
//
// Usage:
//
//	brains                 interactive shell on stdin
//	brains -c 'cmd; cmd'   run a semicolon-separated script
//	echo script | brains   pipe a script
//
// Try: brains -c 'mem fb 65536 16; mem fifo 512 16 2; compile; report'
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"steac/internal/brains"
)

func main() {
	script := flag.String("c", "", "semicolon-separated command script")
	workers := flag.Int("workers", 0, "fault-simulation worker goroutines (0 = all CPUs)")
	flag.Parse()

	sh := brains.NewShell(os.Stdout)
	if *workers > 0 {
		if err := sh.Exec(fmt.Sprintf("workers %d", *workers)); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	run := func(line string) {
		if err := sh.Exec(line); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	if *script != "" {
		for _, line := range strings.Split(*script, ";") {
			run(line)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	interactive := isatty()
	if interactive {
		fmt.Print("brains> ")
	}
	for sc.Scan() {
		run(sc.Text())
		if interactive {
			fmt.Print("brains> ")
		}
	}
}

func isatty() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
