package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// completedCheckpoint runs the standard spec to completion into a fresh
// checkpoint directory and returns the directory and the golden report.
func completedCheckpoint(t *testing.T) (string, []byte) {
	t.Helper()
	spec := testSpec()
	dir := t.TempDir()
	res, err := Run(context.Background(), spec, Options{ShardSize: 64, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return dir, reportJSON(t, res)
}

// resume re-runs the standard spec against dir and returns the report and
// the Result (for repair/resume accounting), failing the test on error.
func resume(t *testing.T, dir string) (*Result, []byte) {
	t.Helper()
	res, err := Run(context.Background(), testSpec(), Options{ShardSize: 64, Dir: dir})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	return res, reportJSON(t, res)
}

// TestJournalCorruptionProperty is the integrity property test: under
// random single-bit flips, truncations, and garbage appends to the
// journal, a resume must either repair (drop the damaged entries, re-run
// those shards, report byte-identical to golden) or fail loudly with a
// typed error — it must never return a different report.  Twenty trials
// per corruption family, seeded for reproducibility.
func TestJournalCorruptionProperty(t *testing.T) {
	dir, golden := completedCheckpoint(t)
	pristine, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	manifestRaw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}

	corruptions := []struct {
		name string
		mut  func(rng *rand.Rand, raw []byte) []byte
	}{
		{"bitflip", func(rng *rand.Rand, raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[rng.Intn(len(out))] ^= 1 << uint(rng.Intn(8))
			return out
		}},
		{"truncate", func(rng *rand.Rand, raw []byte) []byte {
			return append([]byte(nil), raw[:rng.Intn(len(raw))]...)
		}},
		{"partial-append", func(rng *rand.Rand, raw []byte) []byte {
			// A torn write: the prefix of a valid-looking entry with no
			// terminating newline, as a crash mid-append leaves behind.
			torn := `{"schema":"` + SchemaVersion + `","shard":2,"key":"dead`
			return append(append([]byte(nil), raw...), torn[:1+rng.Intn(len(torn)-1)]...)
		}},
		{"shuffle-lines", func(rng *rand.Rand, raw []byte) []byte {
			lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
			rng.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
			return append(bytes.Join(lines, []byte("\n")), '\n')
		}},
		{"duplicate-lines", func(rng *rand.Rand, raw []byte) []byte {
			lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
			dup := lines[rng.Intn(len(lines))]
			return append(append(append([]byte(nil), raw...), dup...), '\n')
		}},
	}

	for _, c := range corruptions {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			for trial := 0; trial < 20; trial++ {
				fresh := t.TempDir()
				if err := os.WriteFile(filepath.Join(fresh, manifestName), manifestRaw, 0o644); err != nil {
					t.Fatal(err)
				}
				mutated := c.mut(rng, pristine)
				if err := os.WriteFile(filepath.Join(fresh, journalName), mutated, 0o644); err != nil {
					t.Fatal(err)
				}

				res, err := Run(context.Background(), testSpec(), Options{ShardSize: 64, Dir: fresh})
				if err != nil {
					// The only loud outcome a journal mutation may
					// produce is a schema-version refusal (a bit flip
					// landing inside the version string is
					// indistinguishable from a stale format).
					if errors.Is(err, ErrSchemaVersion) {
						continue
					}
					t.Fatalf("trial %d: resume failed with untyped error: %v", trial, err)
				}
				if got := reportJSON(t, res); !bytes.Equal(got, golden) {
					t.Fatalf("trial %d: corrupted journal produced a DIFFERENT report:\n got  %s\n want %s",
						trial, got, golden)
				}
			}
		})
	}
}

// TestJournalRepairIsCounted checks the repair accounting and compaction:
// a damaged entry shows up in Result.Repaired, and the journal is
// compacted so the damage does not survive into the next resume.
func TestJournalRepairIsCounted(t *testing.T) {
	dir, golden := completedCheckpoint(t)
	path := filepath.Join(dir, journalName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitN(raw, []byte("\n"), 2)
	damaged := append([]byte("{\"schema\":\""+SchemaVersion+"\",garbage\n"), lines[1]...)
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}

	res, got := resume(t, dir)
	if res.Repaired == 0 {
		t.Fatal("damaged entry was not counted as repaired")
	}
	if !bytes.Equal(got, golden) {
		t.Fatal("repaired run changed the report")
	}

	res2, _ := resume(t, dir)
	if res2.Repaired != 0 {
		t.Fatalf("journal was not compacted: second resume repaired %d", res2.Repaired)
	}
	if res2.Resumed != res2.Shards {
		t.Fatalf("second resume re-simulated shards: %d/%d resumed", res2.Resumed, res2.Shards)
	}
}

// TestJournalStaleEntrySchema checks the loud path: an otherwise valid
// entry carrying a foreign schema version must refuse with
// ErrSchemaVersion, never guess.
func TestJournalStaleEntrySchema(t *testing.T) {
	dir, _ := completedCheckpoint(t)
	path := filepath.Join(dir, journalName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := bytes.Replace(raw, []byte(SchemaVersion), []byte("steac-campaign/v0"), 1)
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), testSpec(), Options{ShardSize: 64, Dir: dir})
	if !errors.Is(err, ErrSchemaVersion) {
		t.Fatalf("stale entry schema: got %v, want ErrSchemaVersion", err)
	}
	if _, err := Inspect(dir); !errors.Is(err, ErrSchemaVersion) {
		t.Fatalf("Inspect on stale entry schema: got %v, want ErrSchemaVersion", err)
	}
}

// TestManifestStaleSchema checks that a checkpoint written by a different
// format version refuses loudly on both the run and inspect paths.
func TestManifestStaleSchema(t *testing.T) {
	dir, _ := completedCheckpoint(t)
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := bytes.Replace(raw, []byte(SchemaVersion), []byte("steac-campaign/v999"), 1)
	if err := os.WriteFile(path, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), testSpec(), Options{ShardSize: 64, Dir: dir})
	if !errors.Is(err, ErrSchemaVersion) {
		t.Fatalf("stale manifest schema: got %v, want ErrSchemaVersion", err)
	}
	if _, err := Inspect(dir); !errors.Is(err, ErrSchemaVersion) {
		t.Fatalf("Inspect on stale manifest: got %v, want ErrSchemaVersion", err)
	}
}

// TestManifestCorrupt checks that an unparseable or internally
// inconsistent manifest refuses with ErrCheckpointCorrupt.
func TestManifestCorrupt(t *testing.T) {
	for name, content := range map[string]string{
		"garbage":  "not json at all{{{",
		"geometry": fmt.Sprintf(`{"schema":%q,"kind":"memfault","fingerprint":"ab","units":100,"shard_size":10,"shards":3}`, SchemaVersion),
	} {
		name, content := name, content
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Run(context.Background(), testSpec(), Options{ShardSize: 64, Dir: dir})
			if !errors.Is(err, ErrCheckpointCorrupt) {
				t.Fatalf("corrupt manifest: got %v, want ErrCheckpointCorrupt", err)
			}
			if _, err := Inspect(dir); !errors.Is(err, ErrCheckpointCorrupt) {
				t.Fatalf("Inspect on corrupt manifest: got %v, want ErrCheckpointCorrupt", err)
			}
		})
	}
}

// TestCheckpointMismatch checks that pointing a different campaign at an
// existing checkpoint directory refuses with ErrCheckpointMismatch rather
// than mixing results.
func TestCheckpointMismatch(t *testing.T) {
	dir, _ := completedCheckpoint(t)
	other := testSpec()
	other.Config.Words = 32
	_, err := Run(context.Background(), other, Options{ShardSize: 64, Dir: dir})
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("foreign checkpoint: got %v, want ErrCheckpointMismatch", err)
	}
}

// TestInspect checks the read-only checkpoint report on a partial run.
func TestInspect(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	_, err := Run(ctx, spec, Options{ShardSize: 64, Dir: dir, OnShard: func(ev ShardEvent) {
		if ev.Done >= 2 {
			cancel(errors.New("cut"))
		}
	}})
	if err == nil {
		t.Fatal("interrupted run returned no error")
	}

	info, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if info.Kind != KindMemfault {
		t.Fatalf("Inspect kind = %q, want %q", info.Kind, KindMemfault)
	}
	want, _ := Fingerprint(spec)
	if info.Fingerprint != want {
		t.Fatal("Inspect fingerprint does not match the spec")
	}
	if info.ShardsDone < 2 || info.ShardsDone >= info.Shards {
		t.Fatalf("Inspect shards done = %d of %d, want partial >= 2", info.ShardsDone, info.Shards)
	}
	if info.ShardSize != 64 {
		t.Fatalf("Inspect shard size = %d, want 64", info.ShardSize)
	}
	if !strings.Contains(string(info.Spec), `"algorithm"`) {
		t.Fatal("Inspect spec payload missing")
	}
}

// TestDecodeUnknownKind pins the registry's failure mode for manifests
// written by a newer binary with kinds this one does not know.
func TestDecodeUnknownKind(t *testing.T) {
	if _, err := Decode("no-such-kind", json.RawMessage(`{}`)); err == nil {
		t.Fatal("Decode accepted an unknown kind")
	}
	kinds := Kinds()
	var haveMem, haveX bool
	for _, k := range kinds {
		haveMem = haveMem || k == KindMemfault
		haveX = haveX || k == KindXCheck
	}
	if !haveMem || !haveX {
		t.Fatalf("registered kinds = %v, want both %q and %q", kinds, KindMemfault, KindXCheck)
	}
}
