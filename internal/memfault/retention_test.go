package memfault

import (
	"context"
	"testing"

	"steac/internal/march"
	"steac/internal/memory"
)

func TestRetentionFaultBehaviour(t *testing.T) {
	cfg := memory.Config{Name: "r", Words: 8, Bits: 4}
	m := mustFaulty(t, cfg,
		Fault{Kind: DRF, Victim: Cell{Addr: 2, Bit: 1}, Forced: 0})
	m.Write(2, 0xF)
	if m.Read(2) != 0xF {
		t.Fatal("DRF cell should hold before a pause")
	}
	m.Pause()
	if m.Read(2) != 0xD {
		t.Fatalf("DRF cell did not decay: %x", m.Read(2))
	}
	if _, err := NewFaulty(cfg, []Fault{{Kind: DRF, Victim: Cell{Addr: 0}, Forced: 7}}); err == nil {
		t.Fatal("bad decay value accepted")
	}
}

// Without pauses a retention fault is invisible; with the canonical pause
// points every DRF is caught by March C-.
func TestRetentionNeedsPauses(t *testing.T) {
	cfg := memory.Config{Name: "r", Words: 16, Bits: 4}
	faults := RetentionFaults(cfg)
	if len(faults) != 2*cfg.BitCount() {
		t.Fatalf("fault count = %d", len(faults))
	}
	noPause, err := CoverageContext(context.Background(), march.MarchCMinus(), cfg, faults, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if noPause.Percent() != 0 {
		t.Fatalf("DRF coverage without pauses = %.1f%%, want 0", noPause.Percent())
	}
	withPause, err := CoverageContext(context.Background(), march.MarchCMinus(), cfg, faults,
		Options{PauseBefore: RetentionPauses()})
	if err != nil {
		t.Fatal(err)
	}
	if withPause.Percent() != 100 {
		t.Fatalf("DRF coverage with pauses = %.1f%% (undetected: %v)",
			withPause.Percent(), withPause.Undetected)
	}
	// A single pause catches only one decay direction.
	onePause, err := CoverageContext(context.Background(), march.MarchCMinus(), cfg, faults,
		Options{PauseBefore: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if onePause.Percent() != 50 {
		t.Fatalf("single-pause DRF coverage = %.1f%%, want 50", onePause.Percent())
	}
}

// Retention pauses do not disturb coverage of the ordinary fault list.
func TestPausesAreNeutralForOtherFaults(t *testing.T) {
	cfg := memory.Config{Name: "r", Words: 16, Bits: 4}
	faults := StuckAtFaults(cfg)
	camp, err := CoverageContext(context.Background(), march.MarchCMinus(), cfg, faults,
		Options{PauseBefore: RetentionPauses()})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Percent() != 100 {
		t.Fatalf("SAF coverage with pauses = %.1f%%", camp.Percent())
	}
}
