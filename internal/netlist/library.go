package netlist

import "fmt"

// Cell is a primitive standard cell: a combinational gate, a flip-flop or a
// latch.  Area is in NAND2 equivalents.
type Cell struct {
	Name    string
	Inputs  []string
	Outputs []string
	Area    float64

	// Seq marks sequential cells.  Sequential cells expose their stored
	// bit on output "Q" (and optionally "QN"); Clock names the edge input.
	Seq   bool
	Clock string
	// Eval computes the outputs of a combinational cell from its inputs.
	// For sequential cells Eval computes the *next state* from the inputs
	// and the current state (passed under key "Q").
	Eval func(in map[string]bool) map[string]bool
}

// Library is a set of primitive cells indexed by name.
type Library struct {
	cells map[string]*Cell
}

// NewLibrary returns an empty library.
func NewLibrary() *Library { return &Library{cells: make(map[string]*Cell)} }

// Add registers a cell definition.
func (l *Library) Add(c *Cell) error {
	if _, ok := l.cells[c.Name]; ok {
		return fmt.Errorf("netlist: duplicate cell %s", c.Name)
	}
	l.cells[c.Name] = c
	return nil
}

// Cell looks up a cell by name.
func (l *Library) Cell(name string) (*Cell, bool) {
	c, ok := l.cells[name]
	return c, ok
}

// Names of cells commonly used by the generators.
const (
	CellInv    = "INV"
	CellBuf    = "BUF"
	CellNand2  = "NAND2"
	CellNor2   = "NOR2"
	CellAnd2   = "AND2"
	CellOr2    = "OR2"
	CellXor2   = "XOR2"
	CellXnor2  = "XNOR2"
	CellMux2   = "MUX2"  // Z = S ? B : A
	CellDFF    = "DFF"   // posedge CK
	CellSDFF   = "SDFF"  // scan DFF: SE ? SI : D
	CellDFFR   = "DFFR"  // async active-high reset R
	CellLatchL = "LATEN" // level-sensitive latch, enable EN
	CellTie0   = "TIE0"
	CellTie1   = "TIE1"
)

var defaultLib *Library

// DefaultLibrary returns the shared primitive library.  Areas follow the
// paper's NAND2-equivalent accounting: the generated WBR cell built from
// these primitives totals 26 gates, matching the published figure.
func DefaultLibrary() *Library {
	if defaultLib != nil {
		return defaultLib
	}
	l := NewLibrary()
	comb := func(name string, area float64, ins []string, eval func(map[string]bool) bool) {
		c := &Cell{Name: name, Inputs: ins, Outputs: []string{"Z"}, Area: area,
			Eval: func(in map[string]bool) map[string]bool {
				return map[string]bool{"Z": eval(in)}
			}}
		if err := l.Add(c); err != nil {
			panic(err)
		}
	}
	comb(CellInv, 1, []string{"A"}, func(in map[string]bool) bool { return !in["A"] })
	comb(CellBuf, 1, []string{"A"}, func(in map[string]bool) bool { return in["A"] })
	comb(CellNand2, 1, []string{"A", "B"}, func(in map[string]bool) bool { return !(in["A"] && in["B"]) })
	comb(CellNor2, 1, []string{"A", "B"}, func(in map[string]bool) bool { return !(in["A"] || in["B"]) })
	comb(CellAnd2, 2, []string{"A", "B"}, func(in map[string]bool) bool { return in["A"] && in["B"] })
	comb(CellOr2, 2, []string{"A", "B"}, func(in map[string]bool) bool { return in["A"] || in["B"] })
	comb(CellXor2, 3, []string{"A", "B"}, func(in map[string]bool) bool { return in["A"] != in["B"] })
	comb(CellXnor2, 3, []string{"A", "B"}, func(in map[string]bool) bool { return in["A"] == in["B"] })
	comb(CellMux2, 4, []string{"A", "B", "S"}, func(in map[string]bool) bool {
		if in["S"] {
			return in["B"]
		}
		return in["A"]
	})
	comb(CellTie0, 0, nil, func(map[string]bool) bool { return false })
	comb(CellTie1, 0, nil, func(map[string]bool) bool { return true })

	// Sequential cells.  Eval computes next state from inputs + current
	// state ("Q"); the simulator exposes Q (and QN) as outputs.
	must := func(c *Cell) {
		if err := l.Add(c); err != nil {
			panic(err)
		}
	}
	must(&Cell{
		Name: CellDFF, Inputs: []string{"D", "CK"}, Outputs: []string{"Q", "QN"},
		Area: 8, Seq: true, Clock: "CK",
		Eval: func(in map[string]bool) map[string]bool {
			return map[string]bool{"Q": in["D"]}
		},
	})
	must(&Cell{
		Name: CellSDFF, Inputs: []string{"D", "SI", "SE", "CK"}, Outputs: []string{"Q", "QN"},
		Area: 10, Seq: true, Clock: "CK",
		Eval: func(in map[string]bool) map[string]bool {
			d := in["D"]
			if in["SE"] {
				d = in["SI"]
			}
			return map[string]bool{"Q": d}
		},
	})
	must(&Cell{
		Name: CellDFFR, Inputs: []string{"D", "CK", "R"}, Outputs: []string{"Q", "QN"},
		Area: 9, Seq: true, Clock: "CK",
		Eval: func(in map[string]bool) map[string]bool {
			if in["R"] {
				return map[string]bool{"Q": false}
			}
			return map[string]bool{"Q": in["D"]}
		},
	})
	must(&Cell{
		Name: CellLatchL, Inputs: []string{"D", "EN"}, Outputs: []string{"Q"},
		Area: 6, Seq: true, Clock: "EN",
		Eval: func(in map[string]bool) map[string]bool {
			if in["EN"] {
				return map[string]bool{"Q": in["D"]}
			}
			return map[string]bool{"Q": in["Q"]}
		},
	})
	defaultLib = l
	return l
}
