// Package march implements March memory-test algorithms: the notation, a
// parser, the standard algorithms used by the BRAINS memory-BIST compiler
// (MSCAN, MATS+, March X, March Y, March C-, March A, March B, March LR),
// complexity accounting, and op-stream generation for fault simulation and
// for the BIST sequencer/TPG pipeline.
//
// A March test is a sequence of March elements.  Each element has an address
// order (ascending ⇑, descending ⇓, or either ⇕) and a sequence of read and
// write operations applied to every address before moving to the next.  In
// ASCII form this package writes ⇑ as "u", ⇓ as "d" and ⇕ as "b":
//
//	March C-:  { b(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); b(r0) }
package march

import (
	"fmt"
	"strings"
)

// Order is the address order of a March element.
type Order int

// Address orders.
const (
	Either Order = iota // ⇕: any order is allowed (we use ascending)
	Up                  // ⇑: ascending
	Down                // ⇓: descending
)

// String returns the ASCII notation of the order.
func (o Order) String() string {
	switch o {
	case Either:
		return "b"
	case Up:
		return "u"
	case Down:
		return "d"
	}
	return fmt.Sprintf("Order(%d)", int(o))
}

// Op is a single read or write within a March element.  Value is the data
// relative to the background (0 or 1); when a BIST TPG applies the op to a
// w-bit word it expands Value against the data background.
type Op struct {
	Read  bool
	Value int // 0 or 1
}

// String returns "r0", "r1", "w0" or "w1".
func (op Op) String() string {
	k := "w"
	if op.Read {
		k = "r"
	}
	return fmt.Sprintf("%s%d", k, op.Value)
}

// R0, R1, W0, W1 are the four March operations.
var (
	R0 = Op{Read: true, Value: 0}
	R1 = Op{Read: true, Value: 1}
	W0 = Op{Read: false, Value: 0}
	W1 = Op{Read: false, Value: 1}
)

// Element is one March element: an address order plus the ops applied at
// every address.
type Element struct {
	Order Order
	Ops   []Op
}

// String renders the element in ASCII March notation, e.g. "u(r0,w1)".
func (e Element) String() string {
	ops := make([]string, len(e.Ops))
	for i, op := range e.Ops {
		ops[i] = op.String()
	}
	return fmt.Sprintf("%s(%s)", e.Order, strings.Join(ops, ","))
}

// Algorithm is a complete March test.
type Algorithm struct {
	Name     string
	Elements []Element
}

// String renders the algorithm in ASCII March notation.
func (a Algorithm) String() string {
	elems := make([]string, len(a.Elements))
	for i, e := range a.Elements {
		elems[i] = e.String()
	}
	return fmt.Sprintf("{ %s }", strings.Join(elems, "; "))
}

// Complexity returns the number of operations applied per memory word; a
// complexity of 10 means the algorithm is "10N" (March C-).
func (a Algorithm) Complexity() int {
	n := 0
	for _, e := range a.Elements {
		n += len(e.Ops)
	}
	return n
}

// Length returns the total number of memory operations for a memory with
// words addresses.
func (a Algorithm) Length(words int) int {
	return a.Complexity() * words
}

// Validate checks structural sanity: at least one element, every element has
// at least one op, op values are 0/1, and the first operation of each
// element's read (if any) is preceded by an initializing write somewhere
// before it in the test (i.e. the test never reads a cell it has not
// initialized).  It returns nil for all the standard algorithms.
func (a Algorithm) Validate() error {
	if len(a.Elements) == 0 {
		return fmt.Errorf("march: %s has no elements", a.Name)
	}
	initialized := false
	for i, e := range a.Elements {
		if len(e.Ops) == 0 {
			return fmt.Errorf("march: %s element %d is empty", a.Name, i)
		}
		for _, op := range e.Ops {
			if op.Value != 0 && op.Value != 1 {
				return fmt.Errorf("march: %s element %d has op value %d", a.Name, i, op.Value)
			}
			if op.Read && !initialized {
				return fmt.Errorf("march: %s element %d reads before any initializing write", a.Name, i)
			}
			if !op.Read {
				initialized = true
			}
		}
	}
	return nil
}

// Access is one concrete memory access produced by expanding an algorithm
// over an address space.
type Access struct {
	Addr int
	Op   Op
	// Elem is the index of the March element that produced this access
	// (useful for diagnosis).
	Elem int
}

// Expand generates the full access stream for a memory with words
// addresses.  ⇕ elements use ascending order.  The stream length equals
// Length(words).
func (a Algorithm) Expand(words int) []Access {
	accesses := make([]Access, 0, a.Length(words))
	a.Walk(words, func(acc Access) bool {
		accesses = append(accesses, acc)
		return true
	})
	return accesses
}

// Walk streams the access sequence to fn without materializing it; fn
// returning false stops the walk early.  This is what the fault simulator
// and the behavioural BIST engine use for large memories.
func (a Algorithm) Walk(words int, fn func(Access) bool) {
	for ei, e := range a.Elements {
		if e.Order == Down {
			for addr := words - 1; addr >= 0; addr-- {
				for _, op := range e.Ops {
					if !fn(Access{Addr: addr, Op: op, Elem: ei}) {
						return
					}
				}
			}
			continue
		}
		for addr := 0; addr < words; addr++ {
			for _, op := range e.Ops {
				if !fn(Access{Addr: addr, Op: op, Elem: ei}) {
					return
				}
			}
		}
	}
}
