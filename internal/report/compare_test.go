package report

import (
	"errors"
	"strings"
	"testing"
)

func sampleCompare() *Compare {
	c := NewCompare("tradeoffs", "scenario", "tam", "cycles", "coverage%")
	c.AddRow("dsc", "26", "688061", "100")
	c.AddRow("manycore", "32", "12345", "98.44")
	return c
}

func TestCompareJSONRoundTrip(t *testing.T) {
	c := sampleCompare()
	blob, err := c.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCompare(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion {
		t.Fatalf("schema = %q, want %q", got.Schema, SchemaVersion)
	}
	if got.Title != c.Title || len(got.Rows) != len(c.Rows) || len(got.Columns) != len(c.Columns) {
		t.Fatalf("round trip mangled the table: %+v", got)
	}
	if got.Rows[1][3] != "98.44" {
		t.Fatalf("cell = %q, want 98.44", got.Rows[1][3])
	}
}

// TestDecodeCompareRejectsUnknownSchema pins the forward-compatibility
// contract: a document from a future (or corrupted) writer is a typed
// refusal, never a silently misread table.
func TestDecodeCompareRejectsUnknownSchema(t *testing.T) {
	cases := []string{
		`{"schema":"steac-report/v2","columns":["a"],"rows":[]}`,
		`{"schema":"","columns":["a"],"rows":[]}`,
		`{"columns":["a"],"rows":[]}`,
	}
	for _, raw := range cases {
		if _, err := DecodeCompare([]byte(raw)); !errors.Is(err, ErrSchemaVersion) {
			t.Errorf("DecodeCompare(%s) = %v, want ErrSchemaVersion", raw, err)
		}
	}
	if _, err := DecodeCompare([]byte("not json")); err == nil || errors.Is(err, ErrSchemaVersion) {
		t.Errorf("malformed JSON should fail decode, not schema check: %v", err)
	}
}

func TestCompareCSV(t *testing.T) {
	got := sampleCompare().CSV()
	want := "# schema: " + SchemaVersion + "\n" +
		"scenario,tam,cycles,coverage%\n" +
		"dsc,26,688061,100\n" +
		"manycore,32,12345,98.44\n"
	if got != want {
		t.Fatalf("CSV:\n%s\nwant:\n%s", got, want)
	}
}

func TestCompareHTML(t *testing.T) {
	c := sampleCompare()
	c.AddRow(`<script>alert("x")</script>`, "1", "2", "3")
	got := c.HTML()
	if strings.Contains(got, "<script>") {
		t.Fatal("HTML rendering must escape cell content")
	}
	for _, want := range []string{
		"steac-report-schema", SchemaVersion,
		"<th>scenario</th>", `<td class="num">688061</td>`, "&lt;script&gt;",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}

func TestCompareAddRowPads(t *testing.T) {
	c := NewCompare("", "a", "b", "c")
	c.AddRow("only")
	if len(c.Rows[0]) != 3 {
		t.Fatalf("short row not padded: %v", c.Rows[0])
	}
}

func TestCompareTable(t *testing.T) {
	txt := sampleCompare().Table().String()
	if !strings.Contains(txt, "manycore") || !strings.Contains(txt, "coverage%") {
		t.Fatalf("text table rendering lost content:\n%s", txt)
	}
}
