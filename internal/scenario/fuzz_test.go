package scenario

import (
	"errors"
	"reflect"
	"testing"
)

// typedSpecError reports whether err maps onto one of the package's typed
// sentinels — the contract ParseSpec/LoadSpec/Generate promise for every
// malformed input.
func typedSpecError(err error) bool {
	for _, sentinel := range []error{
		ErrBadSpec, ErrBadDistribution, ErrDuplicateName,
		ErrUnknownScenario, ErrBaseCycle,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// FuzzSpec throws arbitrary bytes at the user-spec entry point: parse,
// resolve against the registry (merge semantics included), and generate a
// chip.  The invariants are (a) no input panics, (b) every rejection is one
// of the typed sentinels, and (c) an accepted spec generates
// deterministically.
func FuzzSpec(f *testing.F) {
	seeds := []string{
		`{"name":"fz","cores":[{"name":"cpu"}]}`,
		`{"name":"fz","base":"hybrid-power","logic_bist":{"fraction":0.5,"patterns":{"min":64,"max":128}}}`,
		`{"name":"fz","base":"dsc","cores":[{"name":"USB","remove":true}],"blocks":{"glue":0}}`,
		`{"name":"fz","cores":[{"name":"cpu","count":{"min":1,"max":3},"chains":{"min":1,"max":4},"chain_length":{"choices":[8,16]},"scan_patterns":{"min":4,"max":9}}],"memories":[{"name":"ram","count":{"min":2,"max":4},"words":{"min":64,"max":128},"bits":{"choices":[4,8]},"two_port_frac":0.5}],"blocks":{"glue":1000},"resources":{"test_pins":30,"power_budget":12,"partitioner":"firstfit"},"bist":{"grouping":"by-kind","algorithm":"March C-"}}`,
		`{"name":"fz","cores":[{"name":"cpu","count":{"min":2,"max":2}},{"name":"cpu0"}]}`,
		`{"name":"fz"}`,
		`{"name":"fz","base":"no-such-scenario"}`,
		`{"name":"fz","cores":[{"name":"cpu","chains":{"min":9,"max":3}}]}`,
		`{"name":"bad name!","cores":[{"name":"cpu"}]}`,
		`{"unknown_field":1}`,
		`{"name":"fz","cores":[{"name":"cpu"}]} trailing`,
		`not json at all`,
		`[]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := LoadSpec(data)
		if err != nil {
			if !typedSpecError(err) {
				t.Fatalf("untyped spec error: %v", err)
			}
			return
		}
		a, err := Generate(spec, 7)
		if err != nil {
			if !typedSpecError(err) {
				t.Fatalf("untyped generate error: %v", err)
			}
			return
		}
		b, err := Generate(spec, 7)
		if err != nil {
			t.Fatalf("second generation failed after first succeeded: %v", err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatal("accepted spec generates nondeterministically")
		}
	})
}
