package sched

import (
	"context"
	"testing"

	"steac/internal/wrapper"
)

// Across random SOCs the structural invariants must hold: every test is
// placed exactly once, session totals add up, resource budgets are
// respected, and the session-based scheduler never loses to the serial
// baseline.
func TestSyntheticSOCProperty(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		nCores := 2 + int(seed)%6
		cores := SyntheticSOC(seed, nCores)
		for _, c := range cores {
			if err := c.Validate(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		bist := SyntheticBIST(seed, 3+int(seed)%8)
		tests, err := BuildTests(cores, bist)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := SyntheticResources(cores)
		res.Partitioner = wrapper.LPT

		sb, err := SessionBasedContext(context.Background(), tests, res)
		if err != nil {
			t.Fatalf("seed %d: session: %v", seed, err)
		}
		ser, err := Serial(tests, res)
		if err != nil {
			t.Fatalf("seed %d: serial: %v", seed, err)
		}
		nsb, err := NonSessionBased(tests, res)
		if err != nil {
			t.Fatalf("seed %d: non-session: %v", seed, err)
		}
		if sb.TotalCycles > ser.TotalCycles {
			t.Fatalf("seed %d: session-based %d worse than serial %d",
				seed, sb.TotalCycles, ser.TotalCycles)
		}
		// Longest single test is a lower bound on any makespan.
		lb := 0
		for _, x := range tests {
			d := x.FixedCycles
			if x.Kind == ScanKind {
				if c, err := ScanCycles(x.Core, len(x.Core.ScanChains)+2, res.Partitioner); err == nil {
					d = c
				}
			}
			if x.Kind == FuncKind {
				if c, err := FuncCycles(x.Patterns, x.NeedFuncPins, res.FuncPins); err == nil {
					d = c
				}
			}
			if d > lb {
				lb = d
			}
		}
		for name, s := range map[string]*Schedule{"session": sb, "serial": ser, "non-session": nsb} {
			if s.TotalCycles < lb {
				t.Fatalf("seed %d: %s total %d below lower bound %d", seed, name, s.TotalCycles, lb)
			}
			placed := make(map[string]int)
			for _, sess := range s.Sessions {
				for _, p := range sess.Placements {
					placed[p.Test.ID]++
				}
			}
			if len(placed) != len(tests) {
				t.Fatalf("seed %d: %s placed %d of %d tests", seed, name, len(placed), len(tests))
			}
			for id, n := range placed {
				if n != 1 {
					t.Fatalf("seed %d: %s placed %s %d times", seed, name, id, n)
				}
			}
		}
		// Session pin budgets.
		for _, sess := range sb.Sessions {
			wires := 0
			for _, p := range sess.Placements {
				wires += p.Width
			}
			if sess.ControlPins+2*wires > res.TestPins {
				t.Fatalf("seed %d: session exceeds pin budget", seed)
			}
			if res.MaxPower > 0 && !almostLE(sess.PeakPower, res.MaxPower) {
				t.Fatalf("seed %d: session power %.1f over budget", seed, sess.PeakPower)
			}
		}
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a := SyntheticSOC(7, 5)
	b := SyntheticSOC(7, 5)
	if len(a) != len(b) {
		t.Fatal("length differs")
	}
	for i := range a {
		if a[i].TotalScanBits() != b[i].TotalScanBits() ||
			a[i].PIs != b[i].PIs ||
			a[i].ScanPatternCount() != b[i].ScanPatternCount() {
			t.Fatalf("core %d differs between identical seeds", i)
		}
	}
	g1, g2 := SyntheticBIST(7, 4), SyntheticBIST(7, 4)
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatal("BIST groups differ between identical seeds")
		}
	}
}
