package controller

import (
	"testing"

	"steac/internal/netlist"
)

func dscSpec() Spec {
	return Spec{
		Sessions: 3,
		Cores: []CoreCtl{
			{Name: "USB", TestEnables: 6, ScanEnables: 1, ActiveSessions: []int{0}},
			{Name: "TV", TestEnables: 1, ScanEnables: 1, ActiveSessions: []int{1}},
			{Name: "JPEG", ActiveSessions: []int{1}},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := dscSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Spec{Sessions: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("0 sessions accepted")
	}
	dup := Spec{Sessions: 1, Cores: []CoreCtl{{Name: "a"}, {Name: "a"}}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate core accepted")
	}
	oob := Spec{Sessions: 2, Cores: []CoreCtl{{Name: "a", ActiveSessions: []int{2}}}}
	if err := oob.Validate(); err == nil {
		t.Fatal("out-of-range session accepted")
	}
}

func TestGenerateLintAndArea(t *testing.T) {
	d := netlist.NewDesign("d", nil)
	m, err := Generate(d, "tacs", dscSpec())
	if err != nil {
		t.Fatal(err)
	}
	if issues := d.Lint(); len(issues) != 0 {
		t.Fatalf("lint: %v", issues)
	}
	a, err := d.Area(m.Name)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports ~371 gates for the DSC's controller; ours must be
	// in the same small-block regime.
	if a < 80 || a > 800 {
		t.Fatalf("controller area = %v gates, outside the plausible regime", a)
	}
}

func TestGateLevelSequencing(t *testing.T) {
	d := netlist.NewDesign("d", nil)
	if _, err := Generate(d, "tacs", dscSpec()); err != nil {
		t.Fatal(err)
	}
	sim, err := netlist.NewSimulator(d, "tacs")
	if err != nil {
		t.Fatal(err)
	}
	tick := func() {
		t.Helper()
		if err := sim.Tick("TCK"); err != nil {
			t.Fatal(err)
		}
	}
	sim.Set("TRST", true)
	tick()
	sim.Set("TRST", false)
	tick() // registers the session-0 active flags

	// Session 0: USB active, TV/JPEG quiet.
	if !sim.Get("USB_MODE") || sim.Get("TV_MODE") || sim.Get("JPEG_MODE") {
		t.Fatalf("session 0 modes: usb=%v tv=%v jpeg=%v",
			sim.Get("USB_MODE"), sim.Get("TV_MODE"), sim.Get("JPEG_MODE"))
	}
	for i := 0; i < 6; i++ {
		if !sim.GetBus("USB_TE", 6)[i] {
			t.Fatalf("USB_TE[%d] low while active", i)
		}
	}
	// SE fans out only to the active core.
	sim.Set("SE", true)
	if err := sim.Settle(); err != nil {
		t.Fatal(err)
	}
	if !sim.Get("USB_SE") || sim.Get("TV_SE") {
		t.Fatal("SE gating wrong in session 0")
	}
	// Advance to session 1.
	sim.Set("TNEXT", true)
	tick()
	sim.Set("TNEXT", false)
	tick() // register new active flags
	if sim.Get("USB_MODE") || !sim.Get("TV_MODE") || !sim.Get("JPEG_MODE") {
		t.Fatal("session 1 modes wrong")
	}
	if sim.Get("USB_SE") || !sim.Get("TV_SE") {
		t.Fatal("SE gating wrong in session 1")
	}
	// Session select feeds the TAM mux.
	if !sim.Get("SESS[0]") || sim.Get("SESS[1]") {
		t.Fatalf("SESS = %v%v", sim.Get("SESS[0]"), sim.Get("SESS[1]"))
	}
	// Advance to session 2: everyone quiet.
	sim.Set("TNEXT", true)
	tick()
	sim.Set("TNEXT", false)
	tick()
	if sim.Get("USB_MODE") || sim.Get("TV_MODE") || sim.Get("JPEG_MODE") {
		t.Fatal("session 2 should idle all cores")
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	d := netlist.NewDesign("d", nil)
	if _, err := Generate(d, "bad", Spec{Sessions: 0}); err == nil {
		t.Fatal("bad spec accepted")
	}
}

// The WIR-load sequencer: a session advance (TNEXT) raises SHIFTWIR for
// four TCKs and closes with an UPDATEWIR pulse; the boundary UPDATE strobe
// pulses right after SE falls.
func TestGateLevelStrobes(t *testing.T) {
	d := netlist.NewDesign("d", nil)
	if _, err := Generate(d, "tacs", dscSpec()); err != nil {
		t.Fatal(err)
	}
	sim, err := netlist.NewSimulator(d, "tacs")
	if err != nil {
		t.Fatal(err)
	}
	tick := func() {
		t.Helper()
		if err := sim.Tick("TCK"); err != nil {
			t.Fatal(err)
		}
	}
	settle := func() {
		t.Helper()
		if err := sim.Settle(); err != nil {
			t.Fatal(err)
		}
	}
	sim.Set("TRST", true)
	tick()
	sim.Set("TRST", false)
	tick()
	if sim.Get("SHIFTWIR") {
		t.Fatal("SHIFTWIR active at rest")
	}
	// Session advance starts the WIR load.
	sim.Set("TNEXT", true)
	tick()
	sim.Set("TNEXT", false)
	tick() // tn_q registered -> busy rises
	shiftCycles, sawUpdate := 0, false
	for i := 0; i < 10; i++ {
		settle()
		if sim.Get("SHIFTWIR") {
			shiftCycles++
			if sim.Get("UPDATEWIR") {
				sawUpdate = true
			}
		}
		tick()
	}
	if shiftCycles != 4 {
		t.Fatalf("SHIFTWIR high for %d cycles, want 4", shiftCycles)
	}
	if !sawUpdate {
		t.Fatal("UPDATEWIR never pulsed")
	}
	settle()
	if sim.Get("SHIFTWIR") || sim.Get("UPDATEWIR") {
		t.Fatal("WIR strobes did not quiesce")
	}
	// Boundary UPDATE pulses on the falling edge of SE.
	sim.Set("SE", true)
	tick()
	sim.Set("SE", false)
	settle()
	if !sim.Get("UPDATE") {
		t.Fatal("UPDATE did not pulse after SE fell")
	}
	tick()
	settle()
	if sim.Get("UPDATE") {
		t.Fatal("UPDATE stuck high")
	}
}
