package tam

import (
	"fmt"
	"testing"

	"steac/internal/netlist"
)

func dscSpec() Spec {
	return Spec{
		Width:    4,
		Sessions: 3,
		Routes: []Route{
			{Session: 0, Core: "USB", Width: 4, PinLo: 0},
			{Session: 1, Core: "TV", Width: 2, PinLo: 0},
		},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := dscSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]Spec{
		"zero width":  {Width: 0, Sessions: 1},
		"no sessions": {Width: 2, Sessions: 0},
		"bad session": {Width: 2, Sessions: 1, Routes: []Route{{Session: 1, Core: "x", Width: 1}}},
		"overflow":    {Width: 2, Sessions: 1, Routes: []Route{{Core: "x", Width: 3}}},
		"overlap": {Width: 2, Sessions: 1, Routes: []Route{
			{Core: "x", Width: 2}, {Core: "y", Width: 1, PinLo: 1},
		}},
	} {
		if err := s.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSpecQueries(t *testing.T) {
	s := dscSpec()
	cores := s.CoresOf()
	if len(cores) != 2 || cores[0] != "TV" || cores[1] != "USB" {
		t.Fatalf("cores = %v", cores)
	}
	r, ok := s.RouteFor(0, "USB")
	if !ok || r.Width != 4 {
		t.Fatalf("route = %+v, %v", r, ok)
	}
	if _, ok := s.RouteFor(2, "USB"); ok {
		t.Fatal("phantom route")
	}
}

func TestGenerateLintAndArea(t *testing.T) {
	d := netlist.NewDesign("d", nil)
	m, err := Generate(d, "tammux", dscSpec())
	if err != nil {
		t.Fatal(err)
	}
	if issues := d.Lint(); len(issues) != 0 {
		t.Fatalf("lint: %v", issues)
	}
	a, err := d.Area(m.Name)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports ~132 gates for the DSC TAM mux; ours must land in
	// the same small-glue regime.
	if a < 40 || a > 400 {
		t.Fatalf("TAM mux area = %v gates, outside the plausible range", a)
	}
}

// Gate-level routing check: in session 0 the USB sees TIN and drives TOUT;
// in session 1 the TV does; inactive cores see 0.
func TestGenerateRouting(t *testing.T) {
	d := netlist.NewDesign("d", nil)
	if _, err := Generate(d, "tammux", dscSpec()); err != nil {
		t.Fatal(err)
	}
	sim, err := netlist.NewSimulator(d, "tammux")
	if err != nil {
		t.Fatal(err)
	}
	settle := func() {
		t.Helper()
		if err := sim.Settle(); err != nil {
			t.Fatal(err)
		}
	}
	// Session 0: USB active.
	sim.SetBus("SESS", []bool{false, false})
	sim.SetBus("TIN", []bool{true, false, true, true})
	sim.SetBus("USB_WSO", []bool{true, true, false, true})
	sim.SetBus("TV_WSO", []bool{true, true})
	settle()
	for i, want := range []bool{true, false, true, true} {
		if got := sim.Get(fmt.Sprintf("USB_WSI[%d]", i)); got != want {
			t.Fatalf("session 0: USB_WSI[%d] = %v", i, got)
		}
	}
	for i := 0; i < 2; i++ {
		if sim.Get(fmt.Sprintf("TV_WSI[%d]", i)) {
			t.Fatal("session 0: TV sees TAM data")
		}
	}
	for i, want := range []bool{true, true, false, true} {
		if got := sim.Get(fmt.Sprintf("TOUT[%d]", i)); got != want {
			t.Fatalf("session 0: TOUT[%d] = %v", i, got)
		}
	}
	// Session 1: TV active on wires 0..1; wires 2..3 unowned -> 0.
	sim.SetBus("SESS", []bool{true, false})
	settle()
	for i, want := range []bool{true, false} {
		if got := sim.Get(fmt.Sprintf("TV_WSI[%d]", i)); got != want {
			t.Fatalf("session 1: TV_WSI[%d] = %v, want %v", i, got, want)
		}
	}
	for i, want := range []bool{true, true, false, false} {
		if got := sim.Get(fmt.Sprintf("TOUT[%d]", i)); got != want {
			t.Fatalf("session 1: TOUT[%d] = %v, want %v", i, got, want)
		}
	}
	for i := 0; i < 4; i++ {
		if sim.Get(fmt.Sprintf("USB_WSI[%d]", i)) {
			t.Fatal("session 1: USB sees TAM data")
		}
	}
	// Session 2: nobody routed; all quiet.
	sim.SetBus("SESS", []bool{false, true})
	settle()
	for i := 0; i < 4; i++ {
		if sim.Get(fmt.Sprintf("TOUT[%d]", i)) {
			t.Fatal("session 2: TOUT active with no routes")
		}
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	d := netlist.NewDesign("d", nil)
	if _, err := Generate(d, "bad", Spec{Width: 0, Sessions: 1}); err == nil {
		t.Fatal("bad spec accepted")
	}
}
