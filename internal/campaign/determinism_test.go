package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"steac/internal/march"
	"steac/internal/memfault"
	"steac/internal/xcheck"
)

// TestDeterminismMatrixMemfault is the cross-configuration invariance
// matrix for the March coverage engine: the campaign report must be
// byte-identical across every worker count and shard size, and identical
// to the in-process engine (memfault.CoverageContext) — the sharded runner
// must be unobservable in the result.
func TestDeterminismMatrixMemfault(t *testing.T) {
	spec := testSpec()

	alg, ok := march.ByName(spec.Algorithm)
	if !ok {
		t.Fatalf("unknown algorithm %q", spec.Algorithm)
	}
	faults := memfault.AllFaults(spec.Config)
	engine, err := memfault.CoverageContext(context.Background(), alg, spec.Config, faults, memfault.Options{})
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	golden, err := json.Marshal(engine)
	if err != nil {
		t.Fatal(err)
	}

	ncpu := runtime.NumCPU()
	workerCounts := []int{1, 2, ncpu, 2 * ncpu}
	shardSizes := []int{16, 64, 256, 4096}
	for _, workers := range workerCounts {
		for _, size := range shardSizes {
			workers, size := workers, size
			t.Run(fmt.Sprintf("workers=%d/shard=%d", workers, size), func(t *testing.T) {
				res, err := Run(context.Background(), spec, Options{Workers: workers, ShardSize: size})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if got := reportJSON(t, res); !bytes.Equal(got, golden) {
					t.Fatalf("campaign report diverges from engine:\n got  %s\n want %s", got, golden)
				}
			})
		}
	}
}

// TestDeterminismMatrixXCheck is the same invariance matrix for the
// gate-level engine, on the small shared-controller design (compile once
// per run, per-fault netlist clones).  The reference is the in-process
// xcheck campaign with identical options.
func TestDeterminismMatrixXCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("gate-level matrix skipped in -short")
	}
	spec := &XCheckSpec{
		Campaign:  XCheckController,
		Name:      "det-ctl",
		NGroups:   3,
		MaxFaults: 160,
	}

	engine, err := xcheck.ControllerCampaignContext(context.Background(),
		spec.Name, spec.NGroups, spec.options())
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	golden, err := json.Marshal(engine)
	if err != nil {
		t.Fatal(err)
	}

	ncpu := runtime.NumCPU()
	for _, workers := range []int{1, 2, ncpu, 2 * ncpu} {
		for _, size := range []int{8, 64} {
			workers, size := workers, size
			t.Run(fmt.Sprintf("workers=%d/shard=%d", workers, size), func(t *testing.T) {
				res, err := Run(context.Background(), spec, Options{Workers: workers, ShardSize: size})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if got := reportJSON(t, res); !bytes.Equal(got, golden) {
					t.Fatalf("campaign report diverges from engine:\n got  %s\n want %s", got, golden)
				}
			})
		}
	}
}

// TestDeterminismCheckpointedMatchesInMemory closes the loop between the
// two execution modes: a checkpointed run (journal round-trip included)
// must equal the in-memory run byte for byte.
func TestDeterminismCheckpointedMatchesInMemory(t *testing.T) {
	spec := testSpec()
	golden := goldenRun(t, spec)
	res, err := Run(context.Background(), spec, Options{ShardSize: 64, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, res); !bytes.Equal(got, golden) {
		t.Fatal("checkpointed report differs from in-memory report")
	}
}
