package ate

import (
	"testing"

	"steac/internal/pattern"
	"steac/internal/sched"
	"steac/internal/wrapper"
)

func miniInterconnects() []pattern.Interconnect {
	// USB outputs feed TV inputs; TV outputs feed JPEG inputs.
	return []pattern.Interconnect{
		{FromCore: "USB", FromPO: 0, ToCore: "TV", ToPI: 1},
		{FromCore: "USB", FromPO: 3, ToCore: "TV", ToPI: 4},
		{FromCore: "TV", FromPO: 2, ToCore: "JPEG", ToPI: 0},
		{FromCore: "TV", FromPO: 5, ToCore: "JPEG", ToPI: 7},
		{FromCore: "JPEG", FromPO: 1, ToCore: "USB", ToPI: 9},
	}
}

func extestProgram(t *testing.T) (*pattern.Program, *pattern.ExtestLane, *sched.Schedule) {
	t.Helper()
	prog, s, _ := buildProgram(t, miniRes(), sessionBased)
	lane, err := pattern.BuildExtest(miniCores(), miniInterconnects(), nil, wrapper.LPT)
	if err != nil {
		t.Fatal(err)
	}
	s.Sessions = append(s.Sessions, sched.Session{
		Index:  len(s.Sessions),
		Cycles: lane.Cycles,
		Placements: []sched.Placement{{
			Test:   sched.Test{ID: "chip.extest", Kind: sched.ExtestKind},
			Cycles: lane.Cycles,
		}},
	})
	s.TotalCycles += lane.Cycles
	prog.Sessions = append(prog.Sessions, pattern.SessionLayout{
		Index: len(prog.Sessions), Cycles: lane.Cycles,
	})
	if err := prog.AttachExtest(len(prog.Sessions)-1, lane); err != nil {
		t.Fatal(err)
	}
	return prog, lane, s
}

func TestExtestHealthyInterconnect(t *testing.T) {
	prog, lane, s := extestProgram(t)
	// Counting sequence + complement: 2*ceil(log2(5+1)) = 6 vectors.
	if lane.Vectors != 6 {
		t.Fatalf("vectors = %d, want 6", lane.Vectors)
	}
	chip := NewChip(prog, miniCores())
	r, err := Run(prog, chip)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("healthy interconnect failed: %d mismatches, first %+v", r.Mismatches, r.First)
	}
	if r.Cycles != s.TotalCycles {
		t.Fatalf("cycles %d != %d", r.Cycles, s.TotalCycles)
	}
}

func TestExtestDetectsOpens(t *testing.T) {
	prog, lane, _ := extestProgram(t)
	for wi := range lane.Wires {
		chip := NewChip(prog, miniCores(), WithOpenInterconnect(wi))
		r, err := Run(prog, chip)
		if err != nil {
			t.Fatal(err)
		}
		if r.Pass {
			t.Fatalf("open on wire %d undetected", wi)
		}
	}
}

func TestExtestDetectsBridges(t *testing.T) {
	prog, lane, _ := extestProgram(t)
	for i := 0; i < len(lane.Wires); i++ {
		for j := i + 1; j < len(lane.Wires); j++ {
			chip := NewChip(prog, miniCores(), WithBridgedInterconnects(i, j))
			r, err := Run(prog, chip)
			if err != nil {
				t.Fatal(err)
			}
			if r.Pass {
				t.Fatalf("bridge %d-%d undetected", i, j)
			}
		}
	}
}

func TestExtestDrivesUniqueCodes(t *testing.T) {
	lane, err := pattern.BuildExtest(miniCores(), miniInterconnects(), nil, wrapper.LPT)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for i := range lane.Wires {
		code := ""
		for v := 0; v < lane.Vectors; v++ {
			if lane.ExtestDrive(i, v) {
				code += "1"
			} else {
				code += "0"
			}
		}
		if prev, dup := seen[code]; dup {
			t.Fatalf("wires %d and %d share code %s", prev, i, code)
		}
		seen[code] = i
	}
}

func TestBuildExtestErrors(t *testing.T) {
	cores := miniCores()
	if _, err := pattern.BuildExtest(cores, nil, nil, wrapper.LPT); err == nil {
		t.Fatal("empty wire list accepted")
	}
	for _, bad := range []pattern.Interconnect{
		{FromCore: "GHOST", FromPO: 0, ToCore: "TV", ToPI: 0},
		{FromCore: "USB", FromPO: 0, ToCore: "GHOST", ToPI: 0},
		{FromCore: "USB", FromPO: 999, ToCore: "TV", ToPI: 0},
		{FromCore: "USB", FromPO: 0, ToCore: "TV", ToPI: 999},
	} {
		if _, err := pattern.BuildExtest(cores, []pattern.Interconnect{bad}, nil, wrapper.LPT); err == nil {
			t.Fatalf("bad interconnect %+v accepted", bad)
		}
	}
}
