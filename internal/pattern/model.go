// Package pattern implements the test-pattern side of STEAC (Fig. 1): core
// models standing in for the cores' logic, a synthetic ATPG that generates
// cycle-based core-level patterns exactly as a commercial tool hands them to
// STEAC, and the pattern translators that lift core-level patterns to the
// wrapper level and then to the chip level, where an external ATE (package
// ate) can apply them.
//
// The substitution at work (paper used real cores + commercial ATPG): every
// property the translation flow depends on — chain structure, pattern
// counts, load/unload ordering, capture semantics — is preserved; only the
// logic function inside each core is synthetic (a seeded mixing function).
// Because the ATPG substitute and the chip model share the same core model,
// a correct translator yields zero mismatches on the tester, and any
// injected defect or translation bug yields nonzero mismatches.
package pattern

import (
	"steac/internal/testinfo"
)

// Bit is a three-valued test bit: 0, 1, or X (don't care / don't compare).
type Bit byte

// Bit values.
const (
	B0 Bit = 0
	B1 Bit = 1
	BX Bit = 2
)

// FromBool converts a logic level to a Bit.
func FromBool(v bool) Bit {
	if v {
		return B1
	}
	return B0
}

// Bool returns the logic level of a non-X bit (X reads as 0).
func (b Bit) Bool() bool { return b == B1 }

// Matches reports whether an observed level satisfies the expectation
// (X matches anything).
func (b Bit) Matches(observed bool) bool {
	if b == BX {
		return true
	}
	return b.Bool() == observed
}

// splitmix64 is the keyed mixing primitive behind every synthetic model:
// deterministic, seedable, well distributed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// CoreModel is the synthetic logic function of one core.  For scan cores it
// defines the capture behaviour (next scan state and PO values from the
// current scan state and PI values); for functional cores it defines a
// seeded Mealy machine stepped once per functional pattern.
type CoreModel struct {
	Core *testinfo.Core
	Seed uint64

	stateBits int
}

// NewCoreModel builds the model; the seed comes from the core's pattern-set
// seeds so the ATPG substitute and the chip model always agree.
func NewCoreModel(core *testinfo.Core) *CoreModel {
	var seed uint64 = 0x5eed
	for _, p := range core.Patterns {
		seed = splitmix64(seed ^ uint64(p.Seed))
	}
	return &CoreModel{Core: core, Seed: seed, stateBits: core.TotalScanBits()}
}

// StateBits returns the scan state width (concatenation of the core's scan
// chains in declaration order).
func (m *CoreModel) StateBits() int { return m.stateBits }

// TapSpec pins down the exact gate structure of one synthetic capture bit:
// which state bit and which PI feed it, and the two keyed constants.  A
// next-state bit computes
//
//	next[i] = Invert ⊕ state[StateTap] ⊕ pi[PITap]
//
// and a PO bit computes
//
//	po[j] = Invert ⊕ state[StateTap] ⊕ (PIXor ∧ pi[PITap]) ⊕ (state[StateTap] ∧ pi[PITap])
//
// with absent taps (index -1, when the core has no state or no PIs) reading
// as constant 0.  Capture and BuildStructuralCore both derive from these
// specs, so the behavioural model and the generated netlist share one
// definition of the core's logic.
type TapSpec struct {
	StateTap int
	PITap    int
	Invert   bool
	PIXor    bool
}

func (m *CoreModel) nextSpec(i, nState, nPI int) TapSpec {
	sp := TapSpec{StateTap: -1, PITap: -1, PIXor: true}
	if nState > 0 {
		sp.StateTap = int(splitmix64((m.Seed^0xA0000)+uint64(i)) % uint64(nState))
	}
	if nPI > 0 {
		sp.PITap = int(splitmix64((m.Seed^0xA1000)+uint64(i)) % uint64(nPI))
	}
	h := splitmix64(m.Seed ^ 1<<48 ^ uint64(i))
	sp.Invert = (h&1 == 1) != (h&2 == 2)
	return sp
}

func (m *CoreModel) poSpec(j, nState, nPI int) TapSpec {
	sp := TapSpec{StateTap: -1, PITap: -1}
	if nState > 0 {
		sp.StateTap = int(splitmix64((m.Seed^0xA2000)+uint64(j)) % uint64(nState))
	}
	if nPI > 0 {
		sp.PITap = int(splitmix64((m.Seed^0xA3000)+uint64(j)) % uint64(nPI))
	}
	h := splitmix64(m.Seed ^ 2<<48 ^ uint64(j))
	sp.Invert = h&1 == 1
	sp.PIXor = h&2 == 2
	return sp
}

// NextSpec returns the tap structure of next-state bit i at the core's full
// state and PI widths.
func (m *CoreModel) NextSpec(i int) TapSpec { return m.nextSpec(i, m.stateBits, m.Core.PIs) }

// POSpec returns the tap structure of primary-output bit j at the core's
// full state and PI widths.
func (m *CoreModel) POSpec(j int) TapSpec { return m.poSpec(j, m.stateBits, m.Core.PIs) }

// Capture computes one scan capture: given the scan state (concatenated
// chains) and the PI values, it returns the next state and the PO values.
// Each next-state bit mixes one state tap, one PI tap and a keyed constant;
// each PO bit likewise, so every load bit influences observable outputs.
func (m *CoreModel) Capture(state, pi []bool) (next, po []bool) {
	n := len(state)
	next = make([]bool, n)
	for i := 0; i < n; i++ {
		sp := m.nextSpec(i, n, len(pi))
		v := sp.Invert
		if sp.StateTap >= 0 && state[sp.StateTap] {
			v = !v
		}
		if sp.PITap >= 0 && pi[sp.PITap] {
			v = !v
		}
		next[i] = v
	}
	po = make([]bool, m.Core.POs)
	for j := range po {
		sp := m.poSpec(j, n, len(pi))
		var sTap, pTap bool
		if sp.StateTap >= 0 {
			sTap = state[sp.StateTap]
		}
		if sp.PITap >= 0 {
			pTap = pi[sp.PITap]
		}
		v := sp.Invert != sTap
		if sp.PIXor && pTap {
			v = !v
		}
		po[j] = v != (sTap && pTap)
	}
	return next, po
}

// FuncReset returns the functional machine's initial internal state.
func (m *CoreModel) FuncReset() uint64 { return splitmix64(m.Seed ^ 0xF0F0) }

// FuncStep advances the functional Mealy machine one pattern: it mixes the
// PI vector into the internal state and produces the PO vector.
func (m *CoreModel) FuncStep(state uint64, pi []bool) (uint64, []bool) {
	h := state
	for i, v := range pi {
		if v {
			h ^= splitmix64(m.Seed ^ 0xB0000 ^ uint64(i))
		}
	}
	h = splitmix64(h)
	po := make([]bool, m.Core.POs)
	for j := range po {
		po[j] = (h>>(uint(j)%64))&1 == 1
		if j >= 64 {
			po[j] = po[j] != (splitmix64(h^uint64(j))&1 == 1)
		}
	}
	return h, po
}
