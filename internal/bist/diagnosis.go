package bist

import (
	"fmt"
	"sort"
)

// FailBit is one failing storage cell observed during BIST.
type FailBit struct {
	Addr int
	Bit  int
}

// Diagnosis is the failure bitmap of one memory, read out through the
// controller's serial port (MSO) in diagnosis mode.  Signature returns the
// classical bitmap classification repair/analysis flows use.
type Diagnosis struct {
	Name      string
	Fails     []FailBit
	Truncated bool

	seen map[FailBit]bool
}

// Signature classifies the failure bitmap: "none", "single-cell",
// "column" (one bit position across multiple addresses), "row" (one
// address across multiple bit positions), or "scattered".
func (d Diagnosis) Signature() string {
	switch {
	case len(d.Fails) == 0:
		return "none"
	case len(d.Fails) == 1:
		return "single-cell"
	}
	sameBit, sameAddr := true, true
	for _, f := range d.Fails[1:] {
		if f.Bit != d.Fails[0].Bit {
			sameBit = false
		}
		if f.Addr != d.Fails[0].Addr {
			sameAddr = false
		}
	}
	switch {
	case sameBit:
		return "column"
	case sameAddr:
		return "row"
	}
	return "scattered"
}

// String renders a compact summary.
func (d Diagnosis) String() string {
	s := fmt.Sprintf("%s: %d failing bits (%s)", d.Name, len(d.Fails), d.Signature())
	if d.Truncated {
		s += " [truncated]"
	}
	return s
}

// EnableDiagnosis switches the engine from go/no-go to bitmap collection:
// every failing (address, bit) is recorded, up to maxFails per memory
// (0 selects a default of 4096).  Call before Run.
func (e *Engine) EnableDiagnosis(maxFails int) {
	if maxFails <= 0 {
		maxFails = 4096
	}
	e.diagMax = maxFails
}

// Diagnoses returns the bitmaps collected by the last Run (nil unless
// EnableDiagnosis was called), sorted by memory name.
func (e *Engine) Diagnoses() []Diagnosis {
	if e.diag == nil {
		return nil
	}
	names := make([]string, 0, len(e.diag))
	for n := range e.diag {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Diagnosis, 0, len(names))
	for _, n := range names {
		out = append(out, *e.diag[n])
	}
	return out
}

// recordFail adds a failing word's mismatching bits to the bitmap.
func (e *Engine) recordFail(name string, addr int, got, want uint64, bits int) {
	if e.diagMax == 0 {
		return
	}
	if e.diag == nil {
		e.diag = make(map[string]*Diagnosis)
	}
	d := e.diag[name]
	if d == nil {
		d = &Diagnosis{Name: name, seen: make(map[FailBit]bool)}
		e.diag[name] = d
	}
	diff := got ^ want
	for b := 0; b < bits && diff != 0; b++ {
		if diff&(1<<b) == 0 {
			continue
		}
		fb := FailBit{Addr: addr, Bit: b}
		if d.seen[fb] {
			continue
		}
		if len(d.Fails) >= e.diagMax {
			d.Truncated = true
			return
		}
		d.seen[fb] = true
		d.Fails = append(d.Fails, fb)
	}
}
