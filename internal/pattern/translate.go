package pattern

import (
	"fmt"

	"steac/internal/obs"
	"steac/internal/sched"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

// Observability.  Stream's per-cycle loop counts locally and publishes one
// total per call — the translator streams millions of cycles and must not
// touch a shared cache line per cycle.
var (
	obsSpanTranslate   = obs.GetSpan("pattern.translate")
	obsSpanStream      = obs.GetSpan("pattern.stream")
	obsTranslations    = obs.GetCounter("pattern.translations")
	obsLanesTranslated = obs.GetCounter("pattern.lanes_translated")
	obsCyclesStreamed  = obs.GetCounter("pattern.cycles_streamed")
)

// CoreAction is the per-core scan control state in one chip cycle (the
// decoded form of the controller's gated SE/capture signals).
type CoreAction byte

// Actions.
const (
	ActIdle CoreAction = iota
	ActShift
	ActCapture
)

// Cycle is one chip-level tester cycle: drive values and expectations.
type Cycle struct {
	TamIn      []Bit
	TamExpect  []Bit
	Actions    map[string]CoreAction
	Func       []Bit
	FuncExpect []Bit
}

// ScanLane is one wrapped scan core's share of a session: its wrapper-chain
// plan and its TAM wire range.
type ScanLane struct {
	Core   *testinfo.Core
	Source Source
	Plan   wrapper.Plan
	WireLo int
	// Start is the lane's offset from the session origin (nonzero in
	// packed non-session schedules).
	Start int
	// Cycles is (L+1)·p + L for this lane.
	Cycles int
}

// FuncLane is one functional test's share of a session: its slot range on
// the functional pin bus and its start offset (after the same core's scan).
type FuncLane struct {
	Core   *testinfo.Core
	Source Source
	SlotLo int
	Slots  int
	Start  int
	CPP    int
	// Cycles is patterns·CPP.
	Cycles int
}

// SessionLayout is the physical configuration of one test session: it is
// shared verbatim between the pattern translator and the chip model (it is
// what the inserted DFT hardware implements).
type SessionLayout struct {
	Index  int
	Cycles int
	Scan   []ScanLane
	Func   []FuncLane
	// BISTCycles is the serial BIST occupancy padded into this session.
	BISTCycles int
	// Extest, when set, makes this an interconnect-test session (no scan
	// or functional lanes).
	Extest *ExtestLane
}

// Program is the chip-level test program for a whole schedule.
type Program struct {
	TamWidth int
	FuncBus  int
	Sessions []SessionLayout
}

// TotalCycles sums the session lengths.
func (p *Program) TotalCycles() int {
	total := 0
	for _, s := range p.Sessions {
		total += s.Cycles
	}
	return total
}

// Translate lifts a schedule to the chip level: it assigns TAM wires and
// functional-bus slots to every placement and returns the program, whose
// cycle stream the ATE applies.  This is Fig. 1's "Wrapper Pattern
// Translation" + "System Pattern Translation" combined: core patterns are
// re-expressed as wrapper-chain load/unload streams and mapped onto chip
// pins.
func Translate(s *sched.Schedule, sources map[string]Source, res sched.Resources) (*Program, error) {
	tm := obsSpanTranslate.Start()
	defer tm.Stop()
	prog := &Program{FuncBus: res.FuncPins}
	for _, sess := range s.Sessions {
		layout := SessionLayout{Index: sess.Index, Cycles: sess.Cycles}
		// Pins are reused over time: placements that do not overlap may
		// share TAM wires and functional slots (the non-session packer
		// relies on this; within a session placements mostly overlap).
		wires := newAllocator((res.TestPins) / 2)
		slots := newAllocator(res.FuncPins)
		maxWire := 0
		for _, pl := range sess.Placements {
			switch pl.Test.Kind {
			case sched.ScanKind:
				src, ok := sources[pl.Test.Core.Name]
				if !ok {
					return nil, fmt.Errorf("pattern: no ATPG source for %s", pl.Test.Core.Name)
				}
				plan, err := wrapper.DesignChains(pl.Test.Core, pl.Width, res.Partitioner)
				if err != nil {
					return nil, err
				}
				if got := plan.ScanTestCycles(src.ScanCount()); got != pl.Cycles {
					return nil, fmt.Errorf("pattern: %s scan plan %d cycles vs scheduled %d",
						pl.Test.ID, got, pl.Cycles)
				}
				lo, err := wires.alloc(pl.Width, pl.Start, pl.Cycles)
				if err != nil {
					return nil, fmt.Errorf("pattern: %s: %w", pl.Test.ID, err)
				}
				layout.Scan = append(layout.Scan, ScanLane{
					Core: pl.Test.Core, Source: src, Plan: plan,
					WireLo: lo, Start: pl.Start, Cycles: pl.Cycles,
				})
				if lo+pl.Width > maxWire {
					maxWire = lo + pl.Width
				}
			case sched.FuncKind:
				src, ok := sources[pl.Test.Core.Name]
				if !ok {
					return nil, fmt.Errorf("pattern: no ATPG source for %s", pl.Test.Core.Name)
				}
				if pl.FuncPins <= 0 {
					return nil, fmt.Errorf("pattern: %s granted no functional pins", pl.Test.ID)
				}
				need := pl.Test.NeedFuncPins
				cpp := (need + pl.FuncPins - 1) / pl.FuncPins
				if got := src.FuncCount() * cpp; got != pl.Cycles {
					return nil, fmt.Errorf("pattern: %s functional %d cycles vs scheduled %d",
						pl.Test.ID, got, pl.Cycles)
				}
				lo, err := slots.alloc(pl.FuncPins, pl.Start, pl.Cycles)
				if err != nil {
					return nil, fmt.Errorf("pattern: %s: %w", pl.Test.ID, err)
				}
				layout.Func = append(layout.Func, FuncLane{
					Core: pl.Test.Core, Source: src,
					SlotLo: lo, Slots: pl.FuncPins, Start: pl.Start,
					CPP: cpp, Cycles: pl.Cycles,
				})
			case sched.BISTKind:
				if end := pl.End(); end > layout.BISTCycles {
					layout.BISTCycles = end
				}
			case sched.ExtestKind:
				// Attached after translation via AttachExtest.
			}
		}
		if maxWire > prog.TamWidth {
			prog.TamWidth = maxWire
		}
		prog.Sessions = append(prog.Sessions, layout)
		obsLanesTranslated.Add(int64(len(layout.Scan) + len(layout.Func)))
	}
	obsTranslations.Add(1)
	return prog, nil
}

// allocator hands out contiguous pin/slot ranges with time-based reuse.
type allocator struct {
	size int
	busy []struct{ lo, n, start, end int }
}

func newAllocator(size int) *allocator { return &allocator{size: size} }

// alloc reserves n contiguous units for [start, start+dur): two
// reservations may share units only when their time windows are disjoint.
// Requests arrive in placement order, which is NOT start order (a schedule
// lists a core's late functional test before another core's early one), so
// expired-looking reservations must stay on the books — dropping them when
// a later-starting request arrives would hand their units to an
// earlier-starting request that does overlap them.
func (a *allocator) alloc(n, start, dur int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("pattern: allocation of %d units", n)
	}
	end := start + dur
	for lo := 0; lo+n <= a.size; lo++ {
		free := true
		for _, b := range a.busy {
			if lo < b.lo+b.n && b.lo < lo+n && start < b.end && b.start < end {
				free = false
				lo = b.lo + b.n - 1 // skip past this reservation
				break
			}
		}
		if free {
			a.busy = append(a.busy, struct{ lo, n, start, end int }{lo, n, start, end})
			return lo, nil
		}
	}
	return 0, fmt.Errorf("pattern: no %d contiguous units free of %d", n, a.size)
}

// laneState is the translator's per-scan-lane streaming state.
type laneState struct {
	lane ScanLane
	// chain contents expected on the chip after the previous capture
	// (what unloads while the next pattern loads); nil before pattern 0.
	prev [][]Bit
	// current load images per chain (what we are shifting in).
	cur [][]Bit
	pat int
}

// chainImages renders a scan pattern as per-wrapper-chain content vectors
// (index 0 = cell nearest the chip's TAM-in pin).
//
// loadImage: in-cells carry the PI stimulus (allocated sequentially across
// chains, matching wrapper.Generate), segments carry the chain load data,
// out-cells are don't-care.  expectImage: the post-capture content — the
// in-cells captured the quiescent chip-side pins (0), segments hold the
// expected next state, out-cells hold the expected POs.
func chainImages(lane ScanLane, p ScanPattern) (load, expect [][]Bit) {
	piIdx, poIdx := 0, 0
	for _, ch := range lane.Plan.Chains {
		li := make([]Bit, 0, ch.Length())
		ei := make([]Bit, 0, ch.Length())
		for k := 0; k < ch.InCells; k++ {
			li = append(li, FromBool(p.PI[piIdx]))
			ei = append(ei, B0) // captured chip-side quiescent level
			piIdx++
		}
		for _, ci := range ch.CoreChains {
			for k := 0; k < len(p.Load[ci]); k++ {
				li = append(li, FromBool(p.Load[ci][k]))
				ei = append(ei, FromBool(p.ExpectUnload[ci][k]))
			}
		}
		for k := 0; k < ch.OutCells; k++ {
			li = append(li, BX)
			ei = append(ei, FromBool(p.ExpectPO[poIdx]))
			poIdx++
		}
		load = append(load, li)
		expect = append(expect, ei)
	}
	return load, expect
}

// ChainImages renders a scan pattern as per-wrapper-chain load and expect
// vectors (index 0 = cell nearest the chip's TAM-in pin), exactly as the
// translator streams them.  Gate-level cross-checkers use it to drive a
// flattened wrapper with the same images the ATE applies.
func ChainImages(lane ScanLane, p ScanPattern) (load, expect [][]Bit) {
	return chainImages(lane, p)
}

// funcState streams a functional lane pattern by pattern (pull-based, no
// materialization: the source's own iterator supplies the sequence).
type funcState struct {
	lane    FuncLane
	next    func() (FuncPattern, bool)
	cur     FuncPattern
	curIdx  int
	haveCur bool
}

func newFuncState(lane FuncLane) *funcState {
	return &funcState{
		lane:   lane,
		next:   lane.Source.FuncStream(),
		curIdx: -1,
	}
}

// advance pulls the next functional pattern in sequence.
func (fs *funcState) advance() bool {
	p, ok := fs.next()
	if !ok {
		fs.haveCur = false
		return false
	}
	fs.cur = p
	fs.haveCur = true
	return true
}

// Stream generates the chip-level cycle sequence of one session, calling fn
// for every cycle; fn returning false aborts.  The emitted cycle count
// always equals layout.Cycles: lanes that finish early idle, and BIST-only
// padding idles everything (the on-chip BIST keeps running during those
// cycles).
func (prog *Program) Stream(layout SessionLayout, fn func(c int, cyc *Cycle) bool) error {
	tm := obsSpanStream.Start()
	defer tm.Stop()
	emitted := 0
	defer func() { obsCyclesStreamed.Add(int64(emitted)) }()
	if layout.Extest != nil {
		return prog.streamExtest(layout.Extest, fn)
	}
	lanes := make([]*laneState, len(layout.Scan))
	for i, l := range layout.Scan {
		lanes[i] = &laneState{lane: l}
	}
	funcs := make([]*funcState, len(layout.Func))
	for i, l := range layout.Func {
		funcs[i] = newFuncState(l)
	}

	cyc := &Cycle{
		TamIn:      make([]Bit, prog.TamWidth),
		TamExpect:  make([]Bit, prog.TamWidth),
		Func:       make([]Bit, prog.FuncBus),
		FuncExpect: make([]Bit, prog.FuncBus),
		Actions:    make(map[string]CoreAction),
	}
	for c := 0; c < layout.Cycles; c++ {
		for i := range cyc.TamIn {
			cyc.TamIn[i] = BX
			cyc.TamExpect[i] = BX
		}
		for i := range cyc.Func {
			cyc.Func[i] = BX
			cyc.FuncExpect[i] = BX
		}
		for k := range cyc.Actions {
			delete(cyc.Actions, k)
		}

		for _, ls := range lanes {
			if err := ls.emit(c, cyc); err != nil {
				return err
			}
		}
		for _, fs := range funcs {
			fs.emit(c, cyc)
		}
		emitted++
		if !fn(c, cyc) {
			return nil
		}
	}
	return nil
}

func (ls *laneState) emit(cycleIdx int, cyc *Cycle) error {
	lane := ls.lane
	L := lane.Plan.MaxLength()
	p := lane.Source.ScanCount()
	c := cycleIdx - lane.Start
	if c < 0 || c >= lane.Cycles || p == 0 {
		return nil
	}
	name := lane.Core.Name
	period := L + 1
	if c < period*p {
		t, k := c/period, c%period
		if k == 0 {
			// Entering pattern t: pull its images.
			sp, err := lane.Source.ScanPattern(t)
			if err != nil {
				return err
			}
			ls.cur, _ = chainImages(lane, sp)
			if t > 0 {
				spPrev, err := lane.Source.ScanPattern(t - 1)
				if err != nil {
					return err
				}
				_, ls.prev = chainImages(lane, spPrev)
			} else {
				ls.prev = nil
			}
		}
		if k < L {
			cyc.Actions[name] = ActShift
			for ci, img := range ls.cur {
				wire := lane.WireLo + ci
				// Shift-in order: after L shifts, cell j holds the input
				// from cycle L-1-j, so drive img[L-1-k]; cycles addressing
				// beyond a shorter chain's length are padding.
				if idx := L - 1 - k; idx < len(img) {
					cyc.TamIn[wire] = img[idx]
				} else {
					cyc.TamIn[wire] = B0
				}
				// Unload of the previous pattern drains head-first... the
				// cell nearest TAM-out leaves first.
				if ls.prev != nil {
					pimg := ls.prev[ci]
					if idx := len(pimg) - 1 - k; idx >= 0 {
						cyc.TamExpect[wire] = pimg[idx]
					}
				}
			}
		} else {
			cyc.Actions[name] = ActCapture
		}
		return nil
	}
	// Final unload.
	k := c - period*p
	if k < L {
		cyc.Actions[name] = ActShift
		sp, err := lane.Source.ScanPattern(p - 1)
		if err != nil {
			return err
		}
		_, expect := chainImages(lane, sp)
		for ci, pimg := range expect {
			wire := lane.WireLo + ci
			cyc.TamIn[wire] = B0
			if idx := len(pimg) - 1 - k; idx >= 0 {
				cyc.TamExpect[wire] = pimg[idx]
			}
		}
	}
	return nil
}

func (fs *funcState) emit(c int, cyc *Cycle) {
	lane := fs.lane
	local := c - lane.Start
	if local < 0 || local >= lane.Cycles {
		return
	}
	t, j := local/lane.CPP, local%lane.CPP
	if t != fs.curIdx {
		if !fs.advance() {
			return
		}
		fs.curIdx = t
	}
	if !fs.haveCur {
		return
	}
	nPI := len(fs.cur.PI)
	for s := 0; s < lane.Slots; s++ {
		slotIdx := j*lane.Slots + s
		if slotIdx < nPI {
			cyc.Func[lane.SlotLo+s] = FromBool(fs.cur.PI[slotIdx])
		} else if slotIdx < nPI+len(fs.cur.ExpectPO) {
			cyc.FuncExpect[lane.SlotLo+s] = FromBool(fs.cur.ExpectPO[slotIdx-nPI])
		}
	}
}
