package stil

import (
	"fmt"
	"strconv"
	"strings"

	"steac/internal/testinfo"
)

// Stmt is one parsed statement: a flat "words ;" statement or a block with
// a body.  The AST is generic so the interpreter below stays separate from
// the grammar.
type Stmt struct {
	// Words are the tokens before the ';' or '{' (identifiers, strings,
	// numbers, quoted expressions, '=' and '+' rendered literally).
	Words []string
	// Ann is set for annotation statements {* ... *}.
	Ann string
	// Body is non-nil for block statements.
	Body []*Stmt
	// Line is the 1-based source line the statement starts on, so
	// interpretation errors can point back into the file.
	Line int
}

// parser builds the generic AST.
type parser struct {
	lx   *lexer
	tok  token
	prev int
}

func newParser(src string) (*parser, error) {
	p := &parser{lx: newLexer(src)}
	return p, p.advance()
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) parseStmts(topLevel bool) ([]*Stmt, error) {
	var stmts []*Stmt
	for {
		switch p.tok.kind {
		case tokEOF:
			if !topLevel {
				return nil, syntaxErrf(p.tok.line, p.tok.col, "unexpected end of file inside block")
			}
			return stmts, nil
		case tokRBrace:
			if topLevel {
				return nil, syntaxErrf(p.tok.line, p.tok.col, "unmatched '}'")
			}
			return stmts, nil
		case tokAnn:
			stmts = append(stmts, &Stmt{Ann: p.tok.text, Line: p.tok.line})
			if err := p.advance(); err != nil {
				return nil, err
			}
		default:
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, s)
		}
	}
}

func (p *parser) parseStmt() (*Stmt, error) {
	s := &Stmt{Line: p.tok.line}
	for {
		switch p.tok.kind {
		case tokIdent, tokNumber, tokString:
			s.Words = append(s.Words, p.tok.text)
		case tokQuote:
			s.Words = append(s.Words, "'"+p.tok.text+"'")
		case tokEquals:
			s.Words = append(s.Words, "=")
		case tokPlus:
			s.Words = append(s.Words, "+")
		case tokSemi:
			if err := p.advance(); err != nil {
				return nil, err
			}
			return s, nil
		case tokLBrace:
			if err := p.advance(); err != nil {
				return nil, err
			}
			body, err := p.parseStmts(false)
			if err != nil {
				return nil, err
			}
			if p.tok.kind != tokRBrace {
				return nil, syntaxErrf(p.tok.line, p.tok.col, "expected '}', got %s", p.tok)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			s.Body = body
			return s, nil
		case tokEOF:
			return nil, syntaxErrf(p.tok.line, p.tok.col, "unexpected end of file in statement")
		case tokRBrace:
			return nil, syntaxErrf(p.tok.line, p.tok.col, "unexpected '}' in statement")
		case tokAnn:
			return nil, syntaxErrf(p.tok.line, p.tok.col, "annotation inside statement")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

// ParseAST parses STIL source into the generic statement tree.
func ParseAST(src string) ([]*Stmt, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	return p.parseStmts(true)
}

// Parse reads a STIL file and reconstructs the core test information.
func Parse(src string) (*testinfo.Core, error) {
	stmts, err := ParseAST(src)
	if err != nil {
		return nil, err
	}
	core := &testinfo.Core{}
	sawHeader := false
	for _, s := range stmts {
		if s.Ann != "" {
			applyCoreAnn(core, s.Ann)
			continue
		}
		if len(s.Words) == 0 {
			continue
		}
		switch s.Words[0] {
		case "STIL":
			sawHeader = true
		case "Signals":
			if err := parseSignals(core, s); err != nil {
				return nil, err
			}
		case "ScanStructures":
			if err := parseScanStructures(core, s); err != nil {
				return nil, err
			}
		case "Pattern":
			if err := parsePattern(core, s); err != nil {
				return nil, err
			}
		case "SignalGroups", "Timing", "PatternBurst", "PatternExec":
			// Parsed for well-formedness; carries no core test info we
			// need beyond what Signals/ScanStructures provide.
		default:
			return nil, syntaxErrf(s.Line, 0, "unknown top-level block %q", s.Words[0])
		}
	}
	if !sawHeader {
		return nil, syntaxErrf(1, 0, "missing STIL version header")
	}
	if err := core.Validate(); err != nil {
		return nil, fmt.Errorf("stil: parsed core invalid: %w", err)
	}
	return core, nil
}

// applyCoreAnn interprets top-level annotations: "core name=USB soft=true".
func applyCoreAnn(core *testinfo.Core, ann string) {
	fields := strings.Fields(ann)
	if len(fields) == 0 || fields[0] != "core" {
		return
	}
	for _, kv := range fields[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		switch k {
		case "name":
			core.Name = v
		case "soft":
			core.Soft = v == "true"
		}
	}
}

// parseSignals reads the Signals block.  Signal roles are carried in
// per-signal annotations emitted by Emit ("clock", "reset", "se", "te",
// "si", "so", "so-shared"); plain In/Out signals count as functional PIs
// and POs.  Bus signals "pi[0..220]" count as their width.
func parseSignals(core *testinfo.Core, s *Stmt) error {
	role := ""
	for _, st := range s.Body {
		if st.Ann != "" {
			role = strings.TrimSpace(st.Ann)
			continue
		}
		if len(st.Words) < 2 {
			return syntaxErrf(st.Line, 0, "malformed signal statement %v", st.Words)
		}
		name, dir := st.Words[0], st.Words[1]
		width, err := signalWidth(name)
		if err != nil {
			return err
		}
		switch role {
		case "clock":
			core.Clocks = append(core.Clocks, name)
		case "reset":
			core.Resets = append(core.Resets, name)
		case "se":
			core.ScanEnables = append(core.ScanEnables, name)
		case "te":
			core.TestEnables = append(core.TestEnables, name)
		case "si", "so", "so-shared":
			// Scan IOs are attached to chains by ScanStructures.
		case "":
			switch dir {
			case "In":
				core.PIs += width
			case "Out":
				core.POs += width
			case "InOut":
				core.PIs += width
				core.POs += width
			default:
				return syntaxErrf(st.Line, 0, "signal %s has unknown direction %q", name, dir)
			}
		default:
			return syntaxErrf(st.Line, 0, "unknown signal role annotation %q", role)
		}
		role = ""
	}
	return nil
}

func signalWidth(name string) (int, error) {
	open := strings.IndexByte(name, '[')
	if open < 0 {
		return 1, nil
	}
	if !strings.HasSuffix(name, "]") {
		return 0, fmt.Errorf("stil: malformed bus name %q", name)
	}
	lo, hi, ok := strings.Cut(name[open+1:len(name)-1], "..")
	if !ok {
		return 1, nil
	}
	l, err1 := strconv.Atoi(lo)
	h, err2 := strconv.Atoi(hi)
	if err1 != nil || err2 != nil || h < l {
		return 0, fmt.Errorf("stil: malformed bus range in %q", name)
	}
	return h - l + 1, nil
}

func parseScanStructures(core *testinfo.Core, s *Stmt) error {
	for _, st := range s.Body {
		if len(st.Words) < 2 || st.Words[0] != "ScanChain" {
			return syntaxErrf(st.Line, 0, "unexpected statement in ScanStructures: %v", st.Words)
		}
		ch := testinfo.ScanChain{Name: st.Words[1]}
		for _, f := range st.Body {
			if f.Ann != "" {
				if strings.TrimSpace(f.Ann) == "shared-out" {
					ch.SharedOut = true
				}
				continue
			}
			if len(f.Words) < 2 {
				return syntaxErrf(f.Line, 0, "malformed ScanChain field %v", f.Words)
			}
			switch f.Words[0] {
			case "ScanLength":
				n, err := strconv.Atoi(f.Words[1])
				if err != nil {
					return syntaxErrf(f.Line, 0, "bad ScanLength %q", f.Words[1])
				}
				ch.Length = n
			case "ScanIn":
				ch.In = f.Words[1]
			case "ScanOut":
				ch.Out = f.Words[1]
			case "ScanMasterClock":
				ch.Clock = f.Words[1]
			default:
				return syntaxErrf(f.Line, 0, "unknown ScanChain field %q", f.Words[0])
			}
		}
		core.ScanChains = append(core.ScanChains, ch)
	}
	return nil
}

// parsePattern reads a Pattern block whose annotation describes the set:
// "patterns type=Scan count=716 seed=1".
func parsePattern(core *testinfo.Core, s *Stmt) error {
	if len(s.Words) < 2 {
		return syntaxErrf(s.Line, 0, "Pattern block without a name")
	}
	ps := testinfo.PatternSet{Name: s.Words[1]}
	for _, st := range s.Body {
		if st.Ann == "" {
			continue
		}
		fields := strings.Fields(st.Ann)
		if len(fields) == 0 || fields[0] != "patterns" {
			continue
		}
		for _, kv := range fields[1:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return syntaxErrf(st.Line, 0, "malformed pattern annotation %q", st.Ann)
			}
			switch k {
			case "type":
				switch v {
				case "Scan":
					ps.Type = testinfo.Scan
				case "Functional":
					ps.Type = testinfo.Functional
				default:
					return syntaxErrf(st.Line, 0, "unknown pattern type %q", v)
				}
			case "count":
				n, err := strconv.Atoi(v)
				if err != nil {
					return syntaxErrf(st.Line, 0, "bad pattern count %q", v)
				}
				ps.Count = n
			case "seed":
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return syntaxErrf(st.Line, 0, "bad pattern seed %q", v)
				}
				ps.Seed = n
			}
		}
	}
	core.Patterns = append(core.Patterns, ps)
	return nil
}
