package ate

import (
	"context"
	"fmt"
	"testing"
	"testing/quick"

	"steac/internal/pattern"
	"steac/internal/sched"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

// Property: for ANY well-formed SOC (random cores, chains, pattern counts)
// and any feasible resource budget, the full pipeline — schedule → wrapper
// design → translation → ATE application — passes with zero mismatches and
// an exact cycle-count match.  This is the strongest invariant in the
// repository: it means the scheduler's arithmetic, the wrapper chain
// design, the translator's bit ordering and the chip model's capture
// semantics all agree for arbitrary inputs, not just the DSC chip.
func TestEndToEndProperty(t *testing.T) {
	type coreSeed struct {
		Chains    []uint8
		PIs, POs  uint8
		ScanPats  uint8
		FuncPats  uint8
		TwoCores  bool
		PinBudget uint8
	}
	run := func(seed coreSeed) bool {
		var cores []*testinfo.Core
		n := 1
		if seed.TwoCores {
			n = 2
		}
		for ci := 0; ci < n; ci++ {
			c := &testinfo.Core{
				Name:   fmt.Sprintf("C%d", ci),
				Clocks: []string{"ck"},
				PIs:    int(seed.PIs%10) + 1,
				POs:    int(seed.POs%10) + 1,
			}
			chains := seed.Chains
			if len(chains) > 3 {
				chains = chains[:3]
			}
			for k, l := range chains {
				c.ScanChains = append(c.ScanChains, testinfo.ScanChain{
					Name: fmt.Sprintf("c%d", k), Length: int(l%20) + 1,
					In: fmt.Sprintf("si%d", k), Out: fmt.Sprintf("so%d", k), Clock: "ck",
				})
			}
			if len(c.ScanChains) > 0 {
				c.ScanEnables = []string{"se"}
				c.Patterns = append(c.Patterns, testinfo.PatternSet{
					Name: "scan", Type: testinfo.Scan,
					Count: int(seed.ScanPats%6) + 1, Seed: int64(ci)*7 + 13,
				})
			}
			if fp := int(seed.FuncPats % 20); fp > 0 || len(c.ScanChains) == 0 {
				c.Patterns = append(c.Patterns, testinfo.PatternSet{
					Name: "func", Type: testinfo.Functional,
					Count: fp + 1, Seed: int64(ci)*11 + 5,
				})
			}
			cores = append(cores, c)
		}
		res := sched.Resources{
			TestPins:    int(seed.PinBudget%16) + 14,
			FuncPins:    24,
			Partitioner: wrapper.LPT,
		}
		tests, err := sched.BuildTests(cores, nil)
		if err != nil {
			return false
		}
		s, err := sched.SessionBasedContext(context.Background(), tests, res)
		if err != nil {
			// Infeasible budgets are allowed; the property is vacuous.
			return true
		}
		sources := make(map[string]pattern.Source)
		for _, c := range cores {
			a, err := pattern.NewATPG(c)
			if err != nil {
				return false
			}
			sources[c.Name] = a
		}
		prog, err := pattern.Translate(s, sources, res)
		if err != nil {
			return false
		}
		chip := NewChip(prog, cores)
		r, err := Run(prog, chip)
		if err != nil {
			return false
		}
		return r.Pass && r.Cycles == s.TotalCycles
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: any single scan-cell defect (one wrapper chain bit stuck) is
// caught by the translated scan test.
func TestEndToEndDefectProperty(t *testing.T) {
	prog, _, _ := buildProgram(t, miniRes(), sessionBased)
	for wire := 0; wire < prog.TamWidth; wire++ {
		chip := NewChip(prog, miniCores(), WithStuckTamWire(wire))
		r, err := Run(prog, chip)
		if err != nil {
			t.Fatal(err)
		}
		if r.Pass {
			t.Fatalf("stuck TAM wire %d undetected", wire)
		}
	}
}
