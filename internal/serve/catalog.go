package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"steac/internal/brains"
	"steac/internal/campaign"
	"steac/internal/catalog"
	"steac/internal/dsc"
	"steac/internal/memfault"
	"steac/internal/memory"
	"steac/internal/obs"
	"steac/internal/recommend"
	"steac/internal/testinfo"
	"steac/internal/xcheck"
)

// The results catalog API: every completed result the daemon computes —
// synchronous flow runs and scheduling sweeps, asynchronous fault-campaign
// jobs — is ingested into the durable catalog under -catalog-dir, keyed by
// the same content address the rest of the system already uses (the memo
// cache key for synchronous results, the campaign fingerprint for jobs).
//
//	GET  /v1/catalog                 list records (scenario/kind/coverage filters)
//	GET  /v1/catalog/{fingerprint}   fetch one record
//	GET  /v1/catalog/compare         tradeoff table as json, csv or html
//	POST /v1/recommend               kNN DFT suggestion from prior results
//
// Catalog visibility is tenant-scoped exactly like jobs: a tenant only
// ever lists, fetches, compares, and gets recommendations over its own
// records, and a cross-tenant fingerprint probe answers the same 404 as a
// fingerprint that never existed.

var (
	obsCatalogIngested  = obs.GetCounter("serve.catalog_ingested")
	obsCatalogIngestErr = obs.GetCounter("serve.catalog_ingest_failures")
)

// catalogSource is implemented by synchronous request types whose results
// belong in the catalog.  fingerprint is the request's memo-cache key;
// result is the computed response value.
type catalogSource interface {
	catalogRecords(fingerprint, tenant string, result interface{}) []catalog.Record
}

// chipProfile regenerates the chip a request named and profiles it for the
// catalog: size features plus the chip's own DFT defaults.  ok is false
// for explicit-STIL submissions (no regenerable provenance) and unknown
// scenario names.
func chipProfile(name string, seed int64) (feat catalog.Features, cfg catalog.Config, ok bool) {
	switch name {
	case "":
		return catalog.Features{}, catalog.Config{}, false
	case "dsc":
		res := dsc.Resources()
		feat = catalog.CoreFeatures(dsc.Cores(), dsc.Memories())
		cfg = catalog.Config{
			TamWidth:    res.TestPins,
			Partitioner: "lpt",
			Algorithm:   "March C-",
			Grouping:    brains.GroupPerMemory.String(),
			PowerBudget: res.PowerBudget,
		}
		return feat, cfg, true
	}
	chip, err := chipByName(name, seed)
	if err != nil {
		return catalog.Features{}, catalog.Config{}, false
	}
	feat = catalog.CoreFeatures(chip.Cores, chip.Memories)
	alg := chip.BIST.Algorithm.Name
	if alg == "" {
		alg = "March C-"
	}
	cfg = catalog.Config{
		TamWidth:    chip.Resources.TestPins,
		Partitioner: "lpt",
		Algorithm:   alg,
		Grouping:    chip.BIST.Grouping.String(),
		LogicBIST:   len(chip.ExtraBIST) > 0,
		PowerBudget: chip.Resources.PowerBudget,
	}
	return feat, cfg, true
}

// catalogStore resolves the server's catalog, surfacing a deferred open
// failure (the jobMgr.dbErr pattern) or the unconfigured case as typed
// errors.
func (s *Server) catalogStore() (*catalog.Store, error) {
	if s.catErr != nil {
		return nil, fmt.Errorf("serve: catalog unavailable: %w", s.catErr)
	}
	if s.catalog == nil {
		return nil, badRequestf("serve: this daemon runs without a catalog (-catalog-dir)")
	}
	return s.catalog, nil
}

// catalogIngest stamps and stores freshly produced records.  Ingest is
// deliberately best-effort: a failing Put must show up loudly in metrics
// without failing the request whose computation already succeeded.
func (s *Server) catalogIngest(recs []catalog.Record) {
	if s.catalog == nil || len(recs) == 0 {
		return
	}
	now := time.Now().UnixMilli()
	for _, rec := range recs {
		if rec.CreatedUnixMS == 0 {
			rec.CreatedUnixMS = now
		}
		if err := s.catalog.Put(rec); err != nil {
			obsCatalogIngestErr.Add(1)
			continue
		}
		obsCatalogIngested.Add(1)
	}
}

// ingestJobRecord converts one completed durable job row into its catalog
// record.  It is the jobManager's ingest hook and the backfill worker.
func (s *Server) ingestJobRecord(rec jobRecord) {
	crec, ok := campaignCatalogRecord(rec)
	if !ok {
		obsCatalogIngestErr.Add(1)
		return
	}
	s.catalogIngest([]catalog.Record{crec})
}

// backfillCatalog ingests every completed job already in the durable job
// database that the catalog does not know yet — the path that populates a
// fresh -catalog-dir on a daemon with an existing job history, and that
// reconciles jobs finishing between the last catalog write and a crash.
func (s *Server) backfillCatalog() {
	if s.catalog == nil || s.jobMgr.db == nil {
		return
	}
	for _, rec := range s.jobMgr.db.all() {
		if rec.State != jobDone || len(rec.Result) == 0 {
			continue
		}
		if _, ok := s.catalog.Get(rec.Tenant, rec.Fingerprint); ok {
			continue
		}
		s.ingestJobRecord(rec)
	}
}

// campaignCatalogRecord summarizes a terminal job row as a catalog record:
// the spec supplies provenance and configuration, the engine report
// supplies the metrics.  The verbatim report rides along in Result.
func campaignCatalogRecord(rec jobRecord) (catalog.Record, bool) {
	if rec.State != jobDone || len(rec.Result) == 0 {
		return catalog.Record{}, false
	}
	spec, err := campaign.Decode(rec.Kind, rec.Spec)
	if err != nil {
		return catalog.Record{}, false
	}
	out := catalog.Record{
		Fingerprint:   rec.Fingerprint,
		Tenant:        rec.Tenant,
		CreatedUnixMS: rec.Finished,
		Result:        rec.Result,
	}
	switch sp := spec.(type) {
	case *campaign.CoverageSpec:
		var camp memfault.Campaign
		if err := json.Unmarshal(rec.Result, &camp); err != nil {
			return catalog.Record{}, false
		}
		out.Kind = catalog.KindMemfault
		out.Scenario, out.Seed = sp.Scenario, sp.ChipSeed
		out.Config = catalog.Config{Algorithm: camp.Algorithm}
		if feat, _, ok := chipProfile(sp.Scenario, sp.ChipSeed); ok {
			out.Features = feat
		} else {
			out.Features = catalog.Features{Memories: 1, MemoryBits: sp.Config.Words * sp.Config.Bits}
		}
		out.Metrics = catalog.Metrics{Coverage: camp.Percent(), Faults: camp.Total, Detected: camp.Detected}
	case *campaign.XCheckSpec:
		var res xcheck.CampaignResult
		if err := json.Unmarshal(rec.Result, &res); err != nil {
			return catalog.Record{}, false
		}
		out.Kind = catalog.KindXCheck
		out.Scenario, out.Seed = sp.Scenario, sp.ChipSeed
		out.Config = catalog.Config{Algorithm: sp.Algorithm, TamWidth: sp.TamWidth}
		if feat, _, ok := chipProfile(sp.Scenario, sp.ChipSeed); ok {
			out.Features = feat
		} else {
			f := catalog.Features{Memories: len(sp.Memories)}
			for _, m := range sp.Memories {
				f.MemoryBits += m.Words * m.Bits
			}
			out.Features = f
		}
		out.Metrics = catalog.Metrics{Coverage: res.Coverage(), Faults: res.Total, Detected: res.Detected}
	default:
		return catalog.Record{}, false
	}
	return out, true
}

// catalogQuery parses the shared listing filters (scenario, kind,
// min_coverage, max_coverage, limit) into a tenant-scoped query.
func catalogQuery(r *http.Request, tenant string) (catalog.Query, error) {
	q := catalog.Query{Tenant: tenant}
	v := r.URL.Query()
	q.Scenario = v.Get("scenario")
	q.Kind = v.Get("kind")
	var err error
	if raw := v.Get("min_coverage"); raw != "" {
		if q.MinCoverage, err = strconv.ParseFloat(raw, 64); err != nil {
			return q, badRequestf("serve: bad min_coverage %q", raw)
		}
	}
	if raw := v.Get("max_coverage"); raw != "" {
		if q.MaxCoverage, err = strconv.ParseFloat(raw, 64); err != nil {
			return q, badRequestf("serve: bad max_coverage %q", raw)
		}
	}
	if raw := v.Get("limit"); raw != "" {
		if q.Limit, err = strconv.Atoi(raw); err != nil || q.Limit < 0 {
			return q, badRequestf("serve: bad limit %q", raw)
		}
	}
	return q, nil
}

// CatalogResponse is the GET /v1/catalog wire form.  Total counts every
// match; Records honors the limit.
type CatalogResponse struct {
	Records []catalog.Record `json:"records"`
	Total   int              `json:"total"`
}

// handleCatalogList is GET /v1/catalog.
func (s *Server) handleCatalogList(w http.ResponseWriter, r *http.Request) {
	obsRequests.Add(1)
	tn, err := s.cfg.Tenants.authenticate(r)
	if err != nil {
		obsAuthFails.Add(1)
		writeError(w, err)
		return
	}
	tn.reqs.Add(1)
	st, err := s.catalogStore()
	if err != nil {
		writeError(w, err)
		return
	}
	q, err := catalogQuery(r, tn.ID)
	if err != nil {
		writeError(w, err)
		return
	}
	limit := q.Limit
	q.Limit = 0
	recs := st.List(q)
	total := len(recs)
	if limit > 0 && len(recs) > limit {
		recs = recs[:limit]
	}
	writeJSON(w, http.StatusOK, CatalogResponse{Records: recs, Total: total})
}

// handleCatalogGet is GET /v1/catalog/{fingerprint}.  Ownership-scoped
// like jobs: another tenant's fingerprint — even a correctly guessed one —
// answers the same 404 as one that never existed.
func (s *Server) handleCatalogGet(w http.ResponseWriter, r *http.Request) {
	obsRequests.Add(1)
	tn, err := s.cfg.Tenants.authenticate(r)
	if err != nil {
		obsAuthFails.Add(1)
		writeError(w, err)
		return
	}
	tn.reqs.Add(1)
	st, err := s.catalogStore()
	if err != nil {
		writeError(w, err)
		return
	}
	fp := r.PathValue("fingerprint")
	rec, ok := st.Get(tn.ID, fp)
	if !ok {
		writeError(w, fmt.Errorf("%w: no catalog record %q", ErrNotFound, fp))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleCatalogCompare is GET /v1/catalog/compare: the filtered record set
// rendered as a tradeoff table — ?format=json (default), csv, or html.
func (s *Server) handleCatalogCompare(w http.ResponseWriter, r *http.Request) {
	obsRequests.Add(1)
	tn, err := s.cfg.Tenants.authenticate(r)
	if err != nil {
		obsAuthFails.Add(1)
		writeError(w, err)
		return
	}
	tn.reqs.Add(1)
	st, err := s.catalogStore()
	if err != nil {
		writeError(w, err)
		return
	}
	q, err := catalogQuery(r, tn.ID)
	if err != nil {
		writeError(w, err)
		return
	}
	cmp := catalog.CompareRecords(st.List(q))
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		blob, err := cmp.JSON()
		if err != nil {
			writeError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(blob)
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		_, _ = io.WriteString(w, cmp.CSV())
	case "html":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = io.WriteString(w, cmp.HTML())
	default:
		writeError(w, badRequestf("serve: unknown compare format %q (json, csv or html)", format))
	}
}

// RecommendRequest is the POST /v1/recommend body.  Scenario/Seed
// regenerate a registry chip as the query description — the convenient
// form; alternatively supply explicit Cores and Memories (a chip that has
// never run anywhere).
type RecommendRequest struct {
	Scenario    string           `json:"scenario,omitempty"`
	Seed        int64            `json:"seed,omitempty"`
	Cores       []*testinfo.Core `json:"cores,omitempty"`
	Memories    []memory.Config  `json:"memories,omitempty"`
	K           int              `json:"k,omitempty"`
	MaxTamWidth int              `json:"max_tam_width,omitempty"`
}

// handleRecommend is POST /v1/recommend: rank the tenant's catalog against
// the described chip and answer with a recommend.Suggestion.  An empty or
// unusable catalog is a typed 404 (there is nothing to recommend from),
// not an empty suggestion.
func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	obsRequests.Add(1)
	tn, err := s.cfg.Tenants.authenticate(r)
	if err != nil {
		obsAuthFails.Add(1)
		writeError(w, err)
		return
	}
	tn.reqs.Add(1)
	if !tn.allow() {
		obsQuotaRejs.Add(1)
		tn.rejects.Add(1)
		writeError(w, fmt.Errorf("%w: tenant %q rate limit (%g/s, burst %d)",
			ErrQuotaExceeded, tn.ID, tn.RatePerSec, tn.Burst))
		return
	}
	st, err := s.catalogStore()
	if err != nil {
		writeError(w, err)
		return
	}
	var req RecommendRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, badRequestf("serve: bad recommend request: %v", err))
		return
	}
	cores, mems := req.Cores, req.Memories
	if req.Scenario != "" {
		if len(cores) > 0 {
			writeError(w, badRequestf("serve: recommend request names both a scenario and explicit cores"))
			return
		}
		chip, err := chipByName(req.Scenario, req.Seed)
		if err != nil {
			writeError(w, err)
			return
		}
		cores, mems = chip.Cores, chip.Memories
	}
	sug, err := recommend.Recommend(st.List(catalog.Query{Tenant: tn.ID}), recommend.Request{
		Cores: cores, Memories: mems, K: req.K, MaxTamWidth: req.MaxTamWidth,
	})
	switch {
	case errors.Is(err, recommend.ErrNoData):
		writeError(w, fmt.Errorf("%w: %v", ErrNotFound, err))
		return
	case err != nil:
		writeError(w, errBadRequest{err})
		return
	}
	writeJSON(w, http.StatusOK, sug)
}
