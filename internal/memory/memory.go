// Package memory provides behavioural models of the embedded synchronous
// SRAM cores of the DSC test chip: single-port RAMs and two-port RAMs (one
// read/write port A, one read-only port B), with arbitrary word count and
// word width up to 64 bits.
//
// These models stand in for the fabricated 0.25 µm SRAM macros of the paper:
// every property the test flow depends on — word count, word width, port
// structure, per-cycle access protocol — is preserved, and the memfault
// package injects the classical RAM fault models into them so that March
// test efficiency can be measured exactly as the BRAINS compiler reports it.
package memory

import "fmt"

// Kind distinguishes the two SRAM port structures used on the DSC chip.
type Kind int

// Supported SRAM kinds.
const (
	// SinglePort is a one-port synchronous SRAM (one read/write port).
	SinglePort Kind = iota
	// TwoPort is a two-port synchronous SRAM: port A reads and writes,
	// port B only reads.
	TwoPort
)

// String names the kind the way the paper does.
func (k Kind) String() string {
	switch k {
	case SinglePort:
		return "1-port"
	case TwoPort:
		return "2-port"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Config describes one SRAM macro.
type Config struct {
	Name  string
	Words int
	Bits  int
	Kind  Kind
}

// Validate reports whether the configuration is buildable.
func (c Config) Validate() error {
	if c.Words <= 0 {
		return fmt.Errorf("memory: %s: words %d <= 0", c.Name, c.Words)
	}
	if c.Bits <= 0 || c.Bits > 64 {
		return fmt.Errorf("memory: %s: bits %d outside 1..64", c.Name, c.Bits)
	}
	if c.Kind != SinglePort && c.Kind != TwoPort {
		return fmt.Errorf("memory: %s: unknown kind %d", c.Name, int(c.Kind))
	}
	return nil
}

// BitCount returns the total number of storage cells.
func (c Config) BitCount() int { return c.Words * c.Bits }

// AddrBits returns the number of address lines.
func (c Config) AddrBits() int {
	n := 0
	for w := c.Words - 1; w > 0; w >>= 1 {
		n++
	}
	if n == 0 {
		n = 1
	}
	return n
}

// Mask returns the word-width bit mask.
func (c Config) Mask() uint64 {
	if c.Bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << c.Bits) - 1
}

// String renders e.g. "dsc_ram3 (2048x16, 1-port)".
func (c Config) String() string {
	return fmt.Sprintf("%s (%dx%d, %s)", c.Name, c.Words, c.Bits, c.Kind)
}

// RAM is the access interface shared by the fault-free SRAM and the
// fault-injected model in package memfault.
type RAM interface {
	Config() Config
	// Read returns the word at addr through the read/write port.
	Read(addr int) uint64
	// Write stores data (masked to the word width) at addr.
	Write(addr int, data uint64)
}

// SRAM is the fault-free behavioural model.
type SRAM struct {
	cfg  Config
	data []uint64

	// Reads and Writes count accesses, for test-time cross-checks.
	Reads, Writes int
}

// New builds a zero-initialized SRAM.
func New(cfg Config) (*SRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SRAM{cfg: cfg, data: make([]uint64, cfg.Words)}, nil
}

// MustNew is New that panics on error; for tests and generators with
// program-constructed configs.
func MustNew(cfg Config) *SRAM {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the macro configuration.
func (m *SRAM) Config() Config { return m.cfg }

// Read returns the word at addr.  Out-of-range addresses wrap modulo the
// word count, matching how a physical decoder ignores upper address bits.
func (m *SRAM) Read(addr int) uint64 {
	m.Reads++
	return m.data[m.index(addr)]
}

// Write stores data at addr, masked to the word width.
func (m *SRAM) Write(addr int, data uint64) {
	m.Writes++
	m.data[m.index(addr)] = data & m.cfg.Mask()
}

// ReadB reads through port B of a two-port SRAM.  Port B sees the current
// array content (write-through with respect to port A in the same cycle).
// Calling ReadB on a single-port SRAM is a modelling error and panics.
func (m *SRAM) ReadB(addr int) uint64 {
	if m.cfg.Kind != TwoPort {
		panic(fmt.Sprintf("memory: ReadB on single-port SRAM %s", m.cfg.Name))
	}
	m.Reads++
	return m.data[m.index(addr)]
}

// Reset returns the SRAM to its power-on state: all-zero content and
// cleared access counters.  Simulation engines use it to reuse one SRAM
// across runs instead of allocating a fresh macro per run.
func (m *SRAM) Reset() {
	for i := range m.data {
		m.data[i] = 0
	}
	m.Reads, m.Writes = 0, 0
}

// Fill writes the same word to every address (used to set data backgrounds).
func (m *SRAM) Fill(word uint64) {
	word &= m.cfg.Mask()
	for i := range m.data {
		m.data[i] = word
	}
	m.Writes += m.cfg.Words
}

func (m *SRAM) index(addr int) int {
	idx := addr % m.cfg.Words
	if idx < 0 {
		idx += m.cfg.Words
	}
	return idx
}
