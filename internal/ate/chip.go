// Package ate models the external tester and the device under test at the
// cycle level.  The Chip type is a behavioural model of the DFT-inserted
// SOC: wrapped cores (wrapper chains, capture logic), the TAM routing of
// the active session, the functional-test pin multiplexing, and the
// on-chip BIST occupancy.  Run applies a translated chip-level program
// (package pattern) to the chip, compares every expected value, and counts
// tester cycles — the quantity the paper reports as test time.
//
// Because the chip model and the ATPG substitute share the same core
// models, a correct scheduler + wrapper + translator pipeline produces zero
// mismatches; any injected defect (perturbed core logic, stuck TAM wire) or
// any translation bug produces nonzero mismatches.  That is the end-to-end
// verification of the Fig. 1 flow.
package ate

import (
	"fmt"

	"steac/internal/pattern"
	"steac/internal/testinfo"
)

// Option configures defect injection on the chip model.
type Option func(*Chip)

// WithCoreDefect perturbs the named core's logic (a manufacturing defect in
// the core): captures and functional responses diverge from the ATPG's
// expectations.
func WithCoreDefect(core string) Option {
	return func(c *Chip) { c.defectCore[core] = true }
}

// WithStuckTamWire forces chip TAM output wire w to 0.
func WithStuckTamWire(w int) Option {
	return func(c *Chip) { c.stuckWire = w }
}

// WithOpenInterconnect breaks glue wire i (the sink input floats low).
func WithOpenInterconnect(i int) Option {
	return func(c *Chip) { c.openWires[i] = true }
}

// WithBridgedInterconnects shorts glue wires i and j (wired-AND bridge:
// both sinks see the AND of the two drivers).
func WithBridgedInterconnects(i, j int) Option {
	return func(c *Chip) { c.bridges = append(c.bridges, [2]int{i, j}) }
}

// Chip is the behavioural DFT-inserted SOC.
type Chip struct {
	prog   *pattern.Program
	models map[string]*pattern.CoreModel

	defectCore map[string]bool
	stuckWire  int
	openWires  map[int]bool
	bridges    [][2]int

	session     int
	layout      pattern.SessionLayout
	chains      map[string][][]bool
	funcLanes   []*chipFuncLane
	cycleInSess int
}

type chipFuncLane struct {
	lane    pattern.FuncLane
	machine uint64
	inBuf   []bool
	poLatch []bool
	window  int
}

// NewChip builds the chip for a translated program.  Core models are
// derived from the cores' test information, exactly like the ATPG's.
func NewChip(prog *pattern.Program, cores []*testinfo.Core, opts ...Option) *Chip {
	c := &Chip{
		prog:       prog,
		models:     make(map[string]*pattern.CoreModel),
		defectCore: make(map[string]bool),
		stuckWire:  -1,
		openWires:  make(map[int]bool),
		session:    -1,
	}
	for _, core := range cores {
		c.models[core.Name] = pattern.NewCoreModel(core)
	}
	for _, o := range opts {
		o(c)
	}
	// A defective core's logic differs: rebuild its model with a
	// perturbed seed.
	for name := range c.defectCore {
		if m, ok := c.models[name]; ok {
			bad := *m
			bad.Seed ^= 0xDEADBEEF
			c.models[name] = &bad
		}
	}
	return c
}

// StartSession configures the chip for session i (the controller decodes
// the session select and re-routes the TAM; wrapper chains reset to 0).
func (c *Chip) StartSession(i int) error {
	if i < 0 || i >= len(c.prog.Sessions) {
		return fmt.Errorf("ate: session %d of %d", i, len(c.prog.Sessions))
	}
	c.session = i
	c.layout = c.prog.Sessions[i]
	c.cycleInSess = 0
	c.chains = make(map[string][][]bool)
	for _, lane := range c.layout.Scan {
		chs := make([][]bool, len(lane.Plan.Chains))
		for ci, ch := range lane.Plan.Chains {
			chs[ci] = make([]bool, ch.Length())
		}
		c.chains[lane.Core.Name] = chs
	}
	if ex := c.layout.Extest; ex != nil {
		for _, cl := range ex.Cores {
			chs := make([][]bool, len(cl.Plan.Chains))
			for ci, ch := range cl.Plan.Chains {
				chs[ci] = make([]bool, ch.Length())
			}
			c.chains[cl.Core.Name] = chs
		}
	}
	c.funcLanes = nil
	for _, lane := range c.layout.Func {
		model := c.models[lane.Core.Name]
		c.funcLanes = append(c.funcLanes, &chipFuncLane{
			lane:    lane,
			machine: model.FuncReset(),
			inBuf:   make([]bool, lane.Core.PIs),
			window:  -1,
		})
	}
	return nil
}

// Step applies one tester cycle and returns the chip's observed outputs.
func (c *Chip) Step(cyc *pattern.Cycle) (tamOut, funcOut []bool) {
	tamOut = make([]bool, c.prog.TamWidth)
	funcOut = make([]bool, c.prog.FuncBus)

	for _, lane := range c.layout.Scan {
		chs := c.chains[lane.Core.Name]
		action := cyc.Actions[lane.Core.Name]
		switch action {
		case pattern.ActShift:
			for ci := range chs {
				wire := lane.WireLo + ci
				chain := chs[ci]
				if len(chain) == 0 {
					continue
				}
				tamOut[wire] = chain[len(chain)-1]
				in := cyc.TamIn[wire].Bool()
				copy(chain[1:], chain[:len(chain)-1])
				chain[0] = in
			}
		case pattern.ActCapture:
			c.capture(lane, chs)
		}
	}
	if ex := c.layout.Extest; ex != nil {
		c.extestStep(ex, cyc, tamOut)
	}

	for _, fl := range c.funcLanes {
		c.funcCycle(fl, cyc, funcOut)
	}

	if c.stuckWire >= 0 && c.stuckWire < len(tamOut) {
		tamOut[c.stuckWire] = false
	}
	c.cycleInSess++
	return tamOut, funcOut
}

// capture performs the update+capture cycle of one wrapped core: in-cells
// drive the core PIs, the core logic computes, segments take the next scan
// state, out-cells take the POs, in-cells capture the quiescent chip pins.
func (c *Chip) capture(lane pattern.ScanLane, chs [][]bool) {
	core := lane.Core
	model := c.models[core.Name]
	pi := make([]bool, core.PIs)
	state := make([]bool, model.StateBits())
	chainOff := coreChainOffsets(core)

	piIdx := 0
	for ci, ch := range lane.Plan.Chains {
		pos := 0
		for k := 0; k < ch.InCells; k++ {
			pi[piIdx] = chs[ci][pos]
			piIdx++
			pos++
		}
		for _, cci := range ch.CoreChains {
			l := core.ScanChains[cci].Length
			copy(state[chainOff[cci]:chainOff[cci]+l], chs[ci][pos:pos+l])
			pos += l
		}
	}

	next, po := model.Capture(state, pi)

	poIdx := 0
	for ci, ch := range lane.Plan.Chains {
		pos := 0
		for k := 0; k < ch.InCells; k++ {
			chs[ci][pos] = false // chip-side functional pins held quiet
			pos++
		}
		for _, cci := range ch.CoreChains {
			l := core.ScanChains[cci].Length
			copy(chs[ci][pos:pos+l], next[chainOff[cci]:chainOff[cci]+l])
			pos += l
		}
		for k := 0; k < ch.OutCells; k++ {
			chs[ci][pos] = po[poIdx]
			poIdx++
			pos++
		}
	}
}

func coreChainOffsets(core *testinfo.Core) []int {
	offs := make([]int, len(core.ScanChains))
	off := 0
	for i, ch := range core.ScanChains {
		offs[i] = off
		off += ch.Length
	}
	return offs
}

// funcCycle implements the functional-test pin multiplexing: ingest this
// cycle's input slots, step the core machine when the last PI slot of the
// window arrives, and present output slots from the PO latch.
func (c *Chip) funcCycle(fl *chipFuncLane, cyc *pattern.Cycle, funcOut []bool) {
	lane := fl.lane
	local := c.cycleInSess - lane.Start
	if local < 0 || local >= lane.Cycles {
		return
	}
	t, j := local/lane.CPP, local%lane.CPP
	if t != fl.window {
		fl.window = t
	}
	nPI := lane.Core.PIs
	model := c.models[lane.Core.Name]
	lastPISlot := nPI - 1
	computes := false
	for s := 0; s < lane.Slots; s++ {
		slotIdx := j*lane.Slots + s
		if slotIdx < nPI {
			fl.inBuf[slotIdx] = cyc.Func[lane.SlotLo+s].Bool()
			if slotIdx == lastPISlot {
				computes = true
			}
		}
	}
	if nPI == 0 && j == 0 {
		computes = true
	}
	if computes {
		fl.machine, fl.poLatch = model.FuncStep(fl.machine, fl.inBuf)
	}
	for s := 0; s < lane.Slots; s++ {
		slotIdx := j*lane.Slots + s
		if slotIdx >= nPI && slotIdx < nPI+lane.Core.POs && fl.poLatch != nil {
			funcOut[lane.SlotLo+s] = fl.poLatch[slotIdx-nPI]
		}
	}
}

// extestStep handles an interconnect-test cycle: all wrapped cores shift
// their single wrapper chain together; on capture, each sink input
// boundary cell takes the value its glue wire carries (through any
// injected open or bridge defect), core-internal segments hold, and output
// cells capture the quiescent core side.
func (c *Chip) extestStep(ex *pattern.ExtestLane, cyc *pattern.Cycle, tamOut []bool) {
	capture := false
	for _, cl := range ex.Cores {
		switch cyc.Actions[cl.Core.Name] {
		case pattern.ActShift:
			for ci, chain := range c.chains[cl.Core.Name] {
				if len(chain) == 0 {
					continue
				}
				wire := cl.WireLo + ci
				tamOut[wire] = chain[len(chain)-1]
				in := cyc.TamIn[wire].Bool()
				copy(chain[1:], chain[:len(chain)-1])
				chain[0] = in
			}
		case pattern.ActCapture:
			capture = true
		}
	}
	if !capture {
		return
	}
	// Gather driven values from the source out-cells (the update latches
	// hold the loaded bits after the controller's UPDATE pulse).
	driven := make([]bool, len(ex.Wires))
	for wi, w := range ex.Wires {
		driven[wi] = c.extestCellValue(ex, w.FromCore, false, w.FromPO)
	}
	// Defects.
	for wi := range driven {
		if c.openWires[wi] {
			driven[wi] = false
		}
	}
	for _, b := range c.bridges {
		v := driven[b[0]] && driven[b[1]]
		driven[b[0]], driven[b[1]] = v, v
	}
	// Sink capture: in-cells take their wire's value (default quiet 0),
	// out-cells capture the idle core side (0); segments hold.
	sink := make(map[string]map[int]bool)
	for wi, w := range ex.Wires {
		if sink[w.ToCore] == nil {
			sink[w.ToCore] = make(map[int]bool)
		}
		sink[w.ToCore][w.ToPI] = driven[wi]
	}
	for _, cl := range ex.Cores {
		piIdx, poIdx := 0, 0
		for ci, ch := range cl.Plan.Chains {
			chain := c.chains[cl.Core.Name][ci]
			pos := 0
			for k := 0; k < ch.InCells; k++ {
				chain[pos] = sink[cl.Core.Name][piIdx]
				piIdx++
				pos++
			}
			pos += ch.ScanBits() // core segments hold
			for k := 0; k < ch.OutCells; k++ {
				chain[pos] = false
				poIdx++
				pos++
			}
		}
		_ = poIdx
	}
}

// extestCellValue reads a boundary cell's current content: inCell selects
// the input-cell region (PI index k), otherwise the output-cell region (PO
// index k), walking the sequential cell allocation across the core's
// wrapper chains.
func (c *Chip) extestCellValue(ex *pattern.ExtestLane, core string, inCell bool, k int) bool {
	for _, cl := range ex.Cores {
		if cl.Core.Name != core {
			continue
		}
		idx := 0
		for ci, ch := range cl.Plan.Chains {
			chain := c.chains[core][ci]
			n := ch.OutCells
			base := ch.InCells + ch.ScanBits()
			if inCell {
				n = ch.InCells
				base = 0
			}
			if k < idx+n {
				return chain[base+(k-idx)]
			}
			idx += n
		}
	}
	return false
}

// BISTSatisfied reports whether the current session ran long enough to
// cover its BIST occupancy (the on-chip controller raises MBO once its
// groups finish; the session length must reach that point).
func (c *Chip) BISTSatisfied() bool {
	return c.cycleInSess >= c.layout.BISTCycles
}
