package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The multi-writer checkpoint store: the exported slice of the checkpoint
// format that the distributed fabric (internal/fabric) builds on.  A
// coordinator publishes the manifest once with CreateStore; every node then
// opens the same directory with its own writer name and appends completed
// shards to a private journal file (journal-<writer>.jsonl), so concurrent
// writers never interleave bytes within one file.  Readers — the
// coordinator's merge, Inspect, and a plain single-process Run resuming the
// directory — scan the primary journal plus every side journal and merge
// them shard by shard under the same validation rules as always: a shard
// entry counts if and only if its key and CRC match what the manifest's
// campaign demands.  The same deterministic outcome recorded twice (two
// nodes both completed a stolen shard) is benign; the first valid entry
// wins and the duplicate is ignored.
//
// Single-process Run compacts multi-writer directories on resume (side
// journals fold into the primary and are removed).  Live fabric
// directories are never compacted: compaction would unlink journal files
// other processes hold open for append.

// Plan is the shard geometry of one campaign: everything a scheduler —
// local or distributed — needs to deal out and validate work without
// holding a prepared Executor.  A Plan round-trips through the checkpoint
// manifest, so two processes that agree on a fingerprint agree on every
// shard key.
type Plan struct {
	// Kind and Spec identify the campaign in registry terms (the
	// manifest's own fields).
	Kind string          `json:"kind"`
	Spec json.RawMessage `json:"spec"`
	// Fingerprint is the campaign content address (hex SHA-256).
	Fingerprint string `json:"fingerprint"`
	// Units, ShardSize and Shards fix the shard geometry.
	Units     int `json:"units"`
	ShardSize int `json:"shard_size"`
	Shards    int `json:"shards"`
}

// Bounds returns the unit range [lo, hi) of shard index.
func (p Plan) Bounds(index int) (lo, hi int) {
	return shardBounds(p.Units, p.ShardSize, index)
}

// Key returns the content address of shard index — the value a journal
// entry must carry to count for this campaign.
func (p Plan) Key(index int) string {
	lo, hi := p.Bounds(index)
	return shardKey(p.Fingerprint, index, lo, hi)
}

func (p Plan) manifest() manifest {
	return manifest{
		Schema: SchemaVersion, Kind: p.Kind, Spec: p.Spec,
		Fingerprint: p.Fingerprint, Units: p.Units,
		ShardSize: p.ShardSize, Shards: p.Shards,
	}
}

func planFromManifest(man manifest) Plan {
	return Plan{
		Kind: man.Kind, Spec: man.Spec, Fingerprint: man.Fingerprint,
		Units: man.Units, ShardSize: man.ShardSize, Shards: man.Shards,
	}
}

// PlanCampaign prepares a spec and fixes its shard geometry: the requested
// shard size (0 = DefaultShardSize) is aligned to the executor's batch
// width exactly as Run would align it.  The returned Executor is the
// prepared campaign; callers that only need the geometry may drop it.
func PlanCampaign(ctx context.Context, spec Spec, shardSize int) (Plan, Executor, error) {
	payload, err := spec.Marshal()
	if err != nil {
		return Plan{}, nil, fmt.Errorf("campaign: marshal %s spec: %w", spec.Kind(), err)
	}
	fingerprint, err := Fingerprint(spec)
	if err != nil {
		return Plan{}, nil, err
	}
	exec, err := spec.Prepare(ctx)
	if err != nil {
		return Plan{}, nil, fmt.Errorf("campaign: prepare %s: %w", spec.Kind(), err)
	}
	size := Options{ShardSize: shardSize}.shardSize()
	size = alignShardSize(exec, size)
	units := exec.Units()
	plan := Plan{
		Kind: spec.Kind(), Spec: payload, Fingerprint: fingerprint,
		Units: units, ShardSize: size, Shards: shardCount(units, size),
	}
	return plan, exec, nil
}

// validWriter reports whether name is usable as a journal writer id: it is
// embedded in the side-journal filename, so it must be a plain single-path
// component.
func validWriter(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return name != "." && name != ".."
}

// CreateStore publishes the checkpoint manifest for plan under dir,
// creating the directory as needed.  It is idempotent: an existing
// manifest is validated exactly like resume (ErrSchemaVersion /
// ErrCheckpointCorrupt / ErrCheckpointMismatch), and its geometry wins —
// the returned Plan is the authoritative one every writer must use.
func CreateStore(dir string, plan Plan) (Plan, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Plan{}, fmt.Errorf("campaign: create checkpoint dir: %w", err)
	}
	manPath := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(manPath)
	switch {
	case errors.Is(err, os.ErrNotExist):
		if err := writeFileAtomic(manPath, mustMarshalManifest(plan.manifest())); err != nil {
			return Plan{}, err
		}
		return plan, nil
	case err != nil:
		return Plan{}, fmt.Errorf("campaign: read manifest: %w", err)
	}
	var have manifest
	if err := json.Unmarshal(raw, &have); err != nil {
		return Plan{}, fmt.Errorf("%w: %s: %v", ErrCheckpointCorrupt, manPath, err)
	}
	if err := validateManifest(have); err != nil {
		return Plan{}, err
	}
	if have.Fingerprint != plan.Fingerprint {
		return Plan{}, fmt.Errorf("%w: checkpoint %s.. vs campaign %s..",
			ErrCheckpointMismatch, have.Fingerprint[:12], plan.Fingerprint[:12])
	}
	if have.Units != plan.Units {
		return Plan{}, fmt.Errorf("%w: %s: units %d vs campaign %d",
			ErrCheckpointCorrupt, manPath, have.Units, plan.Units)
	}
	return planFromManifest(have), nil
}

// Store is one writer's append handle on a shared checkpoint directory.
// Appends go to the writer's private journal file and are fsync'd before
// Append returns, so an acknowledged shard survives any crash.  A Store
// must not be shared between goroutines without external ordering; fabric
// nodes serialize appends through one journaling path per store just like
// Run does.
type Store struct {
	dir    string
	writer string
	man    manifest
	file   *os.File
}

// OpenStore opens an existing checkpoint directory for appending as
// writer.  The manifest must already exist (the coordinator publishes it
// with CreateStore) and must belong to plan's campaign; the manifest's
// shard geometry is authoritative and is reflected by Store.Plan.
func OpenStore(dir string, plan Plan, writer string) (*Store, error) {
	if !validWriter(writer) {
		return nil, fmt.Errorf("campaign: invalid journal writer name %q", writer)
	}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("campaign: read manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	if err := validateManifest(man); err != nil {
		return nil, err
	}
	if man.Fingerprint != plan.Fingerprint {
		return nil, fmt.Errorf("%w: checkpoint %s.. vs campaign %s..",
			ErrCheckpointMismatch, man.Fingerprint[:12], plan.Fingerprint[:12])
	}
	path := filepath.Join(dir, "journal-"+writer+".jsonl")
	file, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open journal: %w", err)
	}
	return &Store{dir: dir, writer: writer, man: man, file: file}, nil
}

// Plan returns the authoritative (manifest) geometry of the store.
func (s *Store) Plan() Plan { return planFromManifest(s.man) }

// Append journals one completed shard: marshal, write one line to the
// writer's journal, fsync.  The outcome vector length must match the
// shard's unit range.
func (s *Store) Append(shard int, out []int64) error {
	if shard < 0 || shard >= s.man.Shards {
		return fmt.Errorf("campaign: journal shard %d: out of range [0,%d)", shard, s.man.Shards)
	}
	lo, hi := shardBounds(s.man.Units, s.man.ShardSize, shard)
	if len(out) != hi-lo {
		return fmt.Errorf("campaign: journal shard %d: %d outcomes, want %d", shard, len(out), hi-lo)
	}
	line, err := marshalEntry(s.man, shard, out)
	if err != nil {
		return fmt.Errorf("campaign: journal shard %d: %w", shard, err)
	}
	if _, err := s.file.Write(line); err != nil {
		return fmt.Errorf("campaign: journal shard %d: %w", shard, err)
	}
	if err := s.file.Sync(); err != nil {
		return fmt.Errorf("campaign: sync journal: %w", err)
	}
	return nil
}

// Close releases the journal handle.
func (s *Store) Close() error { return s.file.Close() }

// LoadOutcomes scans a checkpoint directory read-only: the validated
// manifest as a Plan, the merged valid shard outcomes from every journal
// (primary plus side journals), and the count of damaged entries a resume
// would drop.  Unlike Run it never compacts or otherwise modifies the
// directory, so it is safe to call while writers are live; a half-written
// trailing line simply does not count yet.
func LoadOutcomes(dir string) (Plan, map[int][]int64, int, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return Plan{}, nil, 0, fmt.Errorf("campaign: read manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return Plan{}, nil, 0, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	if err := validateManifest(man); err != nil {
		return Plan{}, nil, 0, err
	}
	loaded, repaired, err := scanJournals(dir, man)
	if err != nil {
		return Plan{}, nil, 0, err
	}
	return planFromManifest(man), loaded, repaired, nil
}

// MissingShards lists the shard indices of plan that loaded does not
// cover, in order.
func MissingShards(plan Plan, loaded map[int][]int64) []int {
	var missing []int
	for i := 0; i < plan.Shards; i++ {
		if _, ok := loaded[i]; !ok {
			missing = append(missing, i)
		}
	}
	return missing
}

// AssembleReport builds the engine-native report from a complete outcome
// map through the executor's own Assemble path — the distributed merge is
// the same code a single-process run ends with, so fabric == local, byte
// for byte.  Every shard of the plan must be present.
func AssembleReport(exec Executor, plan Plan, loaded map[int][]int64) (interface{}, error) {
	if missing := MissingShards(plan, loaded); len(missing) > 0 {
		return nil, fmt.Errorf("campaign: assemble %s: %d of %d shards missing (first %d)",
			plan.Kind, len(missing), plan.Shards, missing[0])
	}
	outcomes := make([]int64, plan.Units)
	indices := make([]int, 0, len(loaded))
	for idx := range loaded {
		indices = append(indices, idx)
	}
	sort.Ints(indices)
	for _, idx := range indices {
		lo, hi := plan.Bounds(idx)
		if idx >= plan.Shards || len(loaded[idx]) != hi-lo {
			return nil, fmt.Errorf("campaign: assemble %s: shard %d outcome length %d, want %d",
				plan.Kind, idx, len(loaded[idx]), hi-lo)
		}
		copy(outcomes[lo:hi], loaded[idx])
	}
	report, err := exec.Assemble(outcomes)
	if err != nil {
		return nil, fmt.Errorf("campaign: assemble %s: %w", plan.Kind, err)
	}
	return report, nil
}
