// Cross-engine conformance suite: every chip a scenario can generate must
// survive the same gauntlet the paper's DSC chip does.  For each (scenario,
// seed) cell of a matrix spanning every builtin, the suite runs the full
// STEAC flow (STIL → BRAINS → schedule → insertion → translation → ATE
// apply), cross-checks generated DFT netlists against their behavioural
// models, replays sampled stuck-at campaigns through the word-packed kernel
// and the scalar reference demanding bit-identical detection cycles, and
// proves that a checkpointed campaign killed mid-run resumes to a report
// byte-identical to an uninterrupted one.  The suite is the executable form
// of the scenario contract: "generatable" means "testable by every engine
// in the repo", not merely "valid JSON".
package scenario_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"testing"

	"steac/internal/campaign"
	"steac/internal/core"
	"steac/internal/memory"
	"steac/internal/scenario"
	"steac/internal/xcheck"
)

// chipCase is one cell of the conformance matrix.
type chipCase struct {
	scenario string
	seed     int64
}

// conformanceMatrix enumerates the chips under test: the pinned dsc chip
// plus seed sweeps over every randomized builtin — 21 chips across all 5
// scenarios.  Short mode keeps one seed per scenario.
func conformanceMatrix(short bool) []chipCase {
	counts := []struct {
		name  string
		seeds int
	}{
		{"dsc", 1},
		{"hybrid-power", 6},
		{"p1500-lbist", 6},
		{"memory-heavy", 4},
		{"manycore", 4},
	}
	var matrix []chipCase
	for _, c := range counts {
		n := c.seeds
		if short && n > 1 {
			n = 1
		}
		for s := 0; s < n; s++ {
			matrix = append(matrix, chipCase{c.name, int64(s)})
		}
	}
	return matrix
}

// TestConformanceMatrix drives every matrix cell through the full gauntlet
// in parallel and then checks two matrix-wide properties: the full matrix
// meets the coverage floor (≥ 20 chips, ≥ 3 scenarios), and at least one
// p1500-lbist chip actually carried hybrid logic-BIST sessions through the
// flow (the LBIST core draw is probabilistic per seed).
func TestConformanceMatrix(t *testing.T) {
	matrix := conformanceMatrix(testing.Short())
	if !testing.Short() {
		scenarios := map[string]bool{}
		for _, c := range matrix {
			scenarios[c.scenario] = true
		}
		if len(matrix) < 20 || len(scenarios) < 3 {
			t.Fatalf("matrix too small: %d chips over %d scenarios (want ≥ 20 over ≥ 3)",
				len(matrix), len(scenarios))
		}
	}

	var lbistChips atomic.Int32
	t.Run("chips", func(t *testing.T) {
		for _, c := range matrix {
			c := c
			t.Run(fmt.Sprintf("%s/seed=%d", c.scenario, c.seed), func(t *testing.T) {
				t.Parallel()
				chip, err := scenario.GenerateByName(c.scenario, c.seed)
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				if c.scenario == "p1500-lbist" && len(chip.ExtraBIST) > 0 {
					lbistChips.Add(1)
				}
				conformChip(t, chip)
			})
		}
	})
	if !testing.Short() && lbistChips.Load() == 0 {
		t.Error("no p1500-lbist chip in the matrix drew any logic-BIST core")
	}
}

// conformChip runs one generated chip through every engine.
func conformChip(t *testing.T, chip *scenario.Chip) {
	t.Helper()

	// 1. Full flow, ATE apply included: the translated program must pass
	//    on the tester model with zero mismatches.  dsc skips the apply
	//    (4.4M cycles; its verified flow is pinned by cmd/dscflow goldens).
	verify := chip.Scenario != "dsc"
	in, err := chip.FlowInput(verify)
	if err != nil {
		t.Fatalf("flow input: %v", err)
	}
	in.BISTOptions.Workers = 1
	in.Resources.Workers = 1
	res, err := core.RunFlowContext(context.Background(), in)
	if err != nil {
		t.Fatalf("flow: %v", err)
	}
	if res.Schedule == nil || res.Schedule.TotalCycles <= 0 {
		t.Fatal("flow produced no schedule")
	}
	if verify {
		if res.Verify == nil || !res.Verify.Pass || res.Verify.Mismatches != 0 {
			t.Fatalf("ATE verification failed: %+v", res.Verify)
		}
	}
	// Power-budgeted scenarios: no session may exceed the envelope.
	if budget := chip.Resources.PowerBudget; budget > 0 {
		for _, s := range res.Schedule.Sessions {
			if s.PeakPower > budget+1e-9 {
				t.Fatalf("session %d peak power %.3f exceeds budget %.3f",
					s.Index, s.PeakPower, budget)
			}
		}
	}

	// 2. Behavioural-vs-compiled differential: the smallest macros, the
	//    lockstep pair, the shared controller, and the cheapest wrapper.
	opts := xcheck.Options{Workers: 1}
	alg := res.Brains.Opts.Algorithm
	var cases []xcheck.GroupCase
	for _, m := range chip.SmallestMemories(2) {
		cases = append(cases, xcheck.GroupCase{Name: m.Name, Alg: alg, Mems: []memory.Config{m}})
	}
	if pair, ok := chip.PairMemories(); ok {
		cases = append(cases, xcheck.GroupCase{
			Name: fmt.Sprintf("pair-%s+%s", pair[0].Name, pair[1].Name),
			Alg:  alg, Mems: pair[:],
		})
	}
	eqs, err := xcheck.VerifyGroupsContext(context.Background(), cases, opts)
	if err != nil {
		t.Fatalf("verify groups: %v", err)
	}
	ctl, err := xcheck.VerifyControllerContext(context.Background(), "controller", len(res.Brains.Groups), opts)
	if err != nil {
		t.Fatalf("verify controller: %v", err)
	}
	eqs = append(eqs, ctl)
	wcore := chip.WrapperCore()
	if wcore != nil {
		w, _, err := xcheck.VerifyWrapperContext(context.Background(), fmt.Sprintf("wrap_%s w=2", wcore.Name), wcore, 2, opts)
		if err != nil {
			t.Fatalf("verify wrapper: %v", err)
		}
		eqs = append(eqs, w)
	}
	for _, eq := range eqs {
		if !eq.Pass {
			t.Errorf("equivalence check failed: %s", eq.String())
		}
	}

	// 3. Packed-vs-scalar bit identity on sampled stuck-at campaigns: the
	//    smallest macro's TPG bench and the wrapper stack.
	ctx := context.Background()
	small := chip.SmallestMemories(1)
	tpgSim, err := xcheck.NewTPGCampaignSim(small[0].Name, alg, small, xcheck.Options{MaxFaults: 48})
	if err != nil {
		t.Fatalf("tpg sim: %v", err)
	}
	if _, err := tpgSim.VerifyPackedScalar(ctx); err != nil {
		t.Errorf("packed vs scalar (tpg %s): %v", small[0].Name, err)
	}
	if wcore != nil {
		wSim, err := xcheck.NewWrapperCampaignSim(
			fmt.Sprintf("wrap_%s w=2", wcore.Name), wcore, 2,
			xcheck.Options{MaxFaults: 24, MaxPatterns: 4})
		if err != nil {
			t.Fatalf("wrapper sim: %v", err)
		}
		if _, err := wSim.VerifyPackedScalar(ctx); err != nil {
			t.Errorf("packed vs scalar (wrapper %s): %v", wcore.Name, err)
		}
	}

	// 4. Checkpoint/resume determinism on a scenario-threaded campaign:
	//    kill a checkpointed run at its first shard boundary, resume it,
	//    and demand a report byte-identical to an uninterrupted in-memory
	//    run of the same spec.
	spec := &campaign.CoverageSpec{
		Scenario:  chip.Scenario,
		ChipSeed:  chip.Seed,
		Memory:    small[0].Name,
		AllFaults: true,
	}
	golden, err := campaign.Run(ctx, spec, campaign.Options{Workers: 2})
	if err != nil {
		t.Fatalf("uninterrupted campaign: %v", err)
	}
	goldenJSON, err := json.Marshal(golden.Report)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	runCtx, cancel := context.WithCancel(ctx)
	opt := campaign.Options{Workers: 2, ShardSize: 64, Dir: dir,
		OnShard: func(ev campaign.ShardEvent) {
			if !ev.Resumed {
				cancel() // stop at the first freshly simulated shard
			}
		}}
	if _, err := campaign.Run(runCtx, spec, opt); err == nil {
		// The campaign was small enough to finish before the cancellation
		// landed — the checkpoint is complete and resume is a pure replay.
		t.Logf("campaign finished before cancellation; resume replays fully")
	}
	cancel()
	resumed, err := campaign.Run(ctx, spec, campaign.Options{Workers: 2, Dir: dir})
	if err != nil {
		t.Fatalf("resumed campaign: %v", err)
	}
	resumedJSON, err := json.Marshal(resumed.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(goldenJSON, resumedJSON) {
		t.Fatalf("resumed report diverges from uninterrupted run:\n got  %s\n want %s",
			resumedJSON, goldenJSON)
	}
}
