package pattern

import (
	"fmt"

	"steac/internal/testinfo"
)

// Source supplies core-level test patterns to the translator.  The
// synthetic ATPG implements it; ExplicitSource wraps literal vector data
// carried in a STIL file (the paper: "the test information includes the IO
// ports, scan structure, and test vectors").
type Source interface {
	Core() *testinfo.Core
	ScanCount() int
	ScanPattern(i int) (ScanPattern, error)
	FuncCount() int
	// FuncStream returns a fresh sequential iterator over the functional
	// patterns; each call restarts from pattern 0.
	FuncStream() func() (FuncPattern, bool)
}

var _ Source = (*ATPG)(nil)

// FuncStream implements Source for the synthetic ATPG by replaying the
// Mealy machine.
func (a *ATPG) FuncStream() func() (FuncPattern, bool) {
	state := a.Model.FuncReset()
	i := 0
	return func() (FuncPattern, bool) {
		if i >= a.funcCount {
			return FuncPattern{}, false
		}
		pi := prandBits(splitmix64(a.funcSeed^0x60000^uint64(i)), a.Core().PIs)
		var po []bool
		state, po = a.Model.FuncStep(state, pi)
		i++
		return FuncPattern{PI: pi, ExpectPO: po}, true
	}
}

// ExplicitSource serves literal pattern data (typically parsed from a STIL
// file's vector statements).
type ExplicitSource struct {
	core *testinfo.Core
	scan []ScanPattern
	fn   []FuncPattern
}

// NewExplicitSource validates the vector shapes against the core's test
// information and wraps them as a Source.
func NewExplicitSource(core *testinfo.Core, scan []ScanPattern, fn []FuncPattern) (*ExplicitSource, error) {
	if err := core.Validate(); err != nil {
		return nil, err
	}
	for i, p := range scan {
		if len(p.Load) != len(core.ScanChains) || len(p.ExpectUnload) != len(core.ScanChains) {
			return nil, fmt.Errorf("pattern: scan vector %d has %d chains, core has %d",
				i, len(p.Load), len(core.ScanChains))
		}
		for ci, ch := range core.ScanChains {
			if len(p.Load[ci]) != ch.Length || len(p.ExpectUnload[ci]) != ch.Length {
				return nil, fmt.Errorf("pattern: scan vector %d chain %s: %d/%d bits, want %d",
					i, ch.Name, len(p.Load[ci]), len(p.ExpectUnload[ci]), ch.Length)
			}
		}
		if len(p.PI) != core.PIs || len(p.ExpectPO) != core.POs {
			return nil, fmt.Errorf("pattern: scan vector %d PI/PO = %d/%d, want %d/%d",
				i, len(p.PI), len(p.ExpectPO), core.PIs, core.POs)
		}
	}
	for i, p := range fn {
		if len(p.PI) != core.PIs || len(p.ExpectPO) != core.POs {
			return nil, fmt.Errorf("pattern: functional vector %d PI/PO = %d/%d, want %d/%d",
				i, len(p.PI), len(p.ExpectPO), core.PIs, core.POs)
		}
	}
	return &ExplicitSource{core: core, scan: scan, fn: fn}, nil
}

// Core returns the core under test.
func (s *ExplicitSource) Core() *testinfo.Core { return s.core }

// ScanCount returns the number of explicit scan vectors.
func (s *ExplicitSource) ScanCount() int { return len(s.scan) }

// ScanPattern returns scan vector i.
func (s *ExplicitSource) ScanPattern(i int) (ScanPattern, error) {
	if i < 0 || i >= len(s.scan) {
		return ScanPattern{}, fmt.Errorf("pattern: scan vector %d of %d", i, len(s.scan))
	}
	return s.scan[i], nil
}

// FuncCount returns the number of explicit functional vectors.
func (s *ExplicitSource) FuncCount() int { return len(s.fn) }

// FuncStream iterates the explicit functional vectors.
func (s *ExplicitSource) FuncStream() func() (FuncPattern, bool) {
	i := 0
	return func() (FuncPattern, bool) {
		if i >= len(s.fn) {
			return FuncPattern{}, false
		}
		p := s.fn[i]
		i++
		return p, true
	}
}

// Export materializes up to maxScan scan and maxFunc functional patterns
// from any source (used to write explicit vectors into STIL files).
func Export(src Source, maxScan, maxFunc int) ([]ScanPattern, []FuncPattern, error) {
	nScan := src.ScanCount()
	if maxScan >= 0 && nScan > maxScan {
		nScan = maxScan
	}
	scan := make([]ScanPattern, 0, nScan)
	for i := 0; i < nScan; i++ {
		p, err := src.ScanPattern(i)
		if err != nil {
			return nil, nil, err
		}
		scan = append(scan, p)
	}
	nFunc := src.FuncCount()
	if maxFunc >= 0 && nFunc > maxFunc {
		nFunc = maxFunc
	}
	var fn []FuncPattern
	next := src.FuncStream()
	for i := 0; i < nFunc; i++ {
		p, ok := next()
		if !ok {
			return nil, nil, fmt.Errorf("pattern: functional stream ended at %d of %d", i, nFunc)
		}
		fn = append(fn, p)
	}
	return scan, fn, nil
}
