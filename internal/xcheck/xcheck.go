// Package xcheck is the gate-level differential verification subsystem: it
// cross-checks every netlist the DFT generators emit (BIST sequencer/TPG
// benches, the shared BIST controller, wrapper + structural core stacks)
// against independent behavioural references, cycle by cycle and pin by
// pin, over complete March sessions and full translated scan programs.  On
// top of the equivalence checks it runs gate-level stuck-at fault-injection
// campaigns (netlist.CompiledSim's Inject hook) that measure how much of
// the DFT hardware itself the tester-visible responses actually cover —
// the generated BIST must catch faults in its own controller and TPGs, and
// the translated ATE patterns must catch faults in the wrapper cells.
//
// The references are deliberately written against the *semantics* (March
// definitions, the Fig. 2 controller handshake, the IEEE-1500-style scan
// protocol), not against the generator code, so a bug in either side shows
// up as a pin mismatch.  One intentional semantic difference is modeled
// explicitly: generated TPG address counters wrap at the power-of-two
// boundary, so benches run on padded geometries (Words = 2^AddrBits),
// matching what the memory compiler fabricates.
package xcheck

import (
	"fmt"
	"runtime"

	"steac/internal/netlist"
	"steac/internal/obs"
)

// Observability.  Pin-check and cycle totals are added once per finished
// equivalence result and once per campaign (aggregation side, not worker
// side), so they are worker-count-invariant.  The spans separate the two
// expensive modes: full-session equivalence runs vs fault campaigns.
var (
	obsSpanVerify   = obs.GetSpan("xcheck.verify")
	obsSpanCampaign = obs.GetSpan("xcheck.campaign")
	obsEquivChecks  = obs.GetCounter("xcheck.equiv_checks")
	obsEquivCycles  = obs.GetCounter("xcheck.cycles")
	obsPinChecks    = obs.GetCounter("xcheck.pin_checks")
	obsCampFaults   = obs.GetCounter("xcheck.faults_simulated")
	obsCampDetected = obs.GetCounter("xcheck.faults_detected")
)

// Options configures the subsystem.  The Workers/Seed/MaxUndetected
// fields follow the repository-wide engine-options convention documented
// in DESIGN.md: 0 means the canonical deterministic default everywhere.
type Options struct {
	// Workers bounds the fault-campaign parallelism; <=0 means GOMAXPROCS.
	Workers int
	// Seed rotates the MaxFaults stride sampling through the fault universe
	// (deterministic for a fixed seed; 0 = the canonical stride starting at
	// site 0).  Exhaustive campaigns ignore it.
	Seed int64
	// MaxUndetected caps CampaignResult.Undetected, the list of surviving
	// faults kept for reports.  0 means the default cap of 32; a negative
	// value keeps every survivor.  Detected/Total counts are exact either
	// way.
	MaxUndetected int
	// MaxFaults caps a campaign's fault list by uniform stride sampling
	// (0 = exhaustive).  Results report the sampled count explicitly, never
	// silently.
	MaxFaults int
	// MaxMismatches caps how many pin mismatches an equivalence check
	// records before giving up (0 = default 10).
	MaxMismatches int
	// MaxPatterns caps the scan patterns a wrapper fault campaign streams
	// per fault (0 = the core's full pattern set).  Wrapper-cell faults are
	// caught within the first few loads, so a small cap keeps per-fault
	// simulation affordable on real cores; equivalence checks always run
	// the full program.
	MaxPatterns int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// undetectedCap resolves Options.MaxUndetected (0 = 32, negative = no cap),
// mirroring memfault.Options.
func (o Options) undetectedCap() int {
	if o.MaxUndetected == 0 {
		return 32
	}
	return o.MaxUndetected
}

func (o Options) maxMismatches() int {
	if o.MaxMismatches > 0 {
		return o.MaxMismatches
	}
	return 10
}

// PinMismatch is one cycle/pin disagreement between the gate-level netlist
// and its behavioural reference.
type PinMismatch struct {
	Cycle int
	Pin   string
	Got   bool // gate-level value
	Want  bool // reference value
}

func (m PinMismatch) String() string {
	return fmt.Sprintf("cycle %d pin %s: gate=%v ref=%v", m.Cycle, m.Pin, m.Got, m.Want)
}

// EquivResult is the outcome of one equivalence check.
type EquivResult struct {
	Name string
	// Sessions is the number of independent sessions driven (data
	// backgrounds × port selections for BIST benches).
	Sessions int
	// Cycles is the total tester cycles simulated across all sessions.
	Cycles int
	// Checks counts individual pin comparisons performed.
	Checks int64
	// Gates is the flattened gate count of the design under check.
	Gates int
	// Mismatches holds the first disagreements found (capped).
	Mismatches []PinMismatch
	// Notes records structural cross-check failures (cycle-count formula
	// disagreements and the like); any note fails the check.
	Notes []string
	Pass  bool
}

func (r *EquivResult) mismatch(cycle int, pin string, got, want bool, cap int) {
	if len(r.Mismatches) < cap {
		r.Mismatches = append(r.Mismatches, PinMismatch{Cycle: cycle, Pin: pin, Got: got, Want: want})
	}
}

func (r *EquivResult) check(cycle int, pin string, got, want bool, cap int) {
	r.Checks++
	if got != want {
		r.mismatch(cycle, pin, got, want, cap)
	}
}

func (r *EquivResult) finish() {
	r.Pass = len(r.Mismatches) == 0 && len(r.Notes) == 0
	obsEquivChecks.Add(1)
	obsEquivCycles.Add(int64(r.Cycles))
	obsPinChecks.Add(r.Checks)
}

// String summarizes the result on one line.
func (r EquivResult) String() string {
	status := "EQUIVALENT"
	if !r.Pass {
		status = "MISMATCH"
	}
	return fmt.Sprintf("%-24s %-10s %3d sessions %9d cycles %10d checks",
		r.Name, status, r.Sessions, r.Cycles, r.Checks)
}

// FaultDetection records where a stuck-at fault became tester-visible.
type FaultDetection struct {
	Fault netlist.SAFault
	Cycle int
}

// CampaignResult is the outcome of one stuck-at fault campaign.
type CampaignResult struct {
	Name string
	// Sites is the full fault universe of the design; Total is how many
	// were simulated (less than Sites only under MaxFaults sampling).
	Sites    int
	Total    int
	Detected int
	// Undetected lists surviving faults for reports, capped at
	// Options.MaxUndetected (default 32; negative keeps all).  The exact
	// survivor count is UndetectedCount, which never depends on the cap.
	Undetected []netlist.SAFault
	// Detections holds the detection cycle per detected fault, in fault
	// order.
	Detections []FaultDetection
	// GoldenCycles is the fault-free trace length the campaign compared
	// against.
	GoldenCycles int
}

// Coverage returns detected/total in percent.
func (c CampaignResult) Coverage() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Detected) / float64(c.Total)
}

// Sampled reports whether the campaign simulated a strict subset of the
// fault universe.
func (c CampaignResult) Sampled() bool { return c.Total < c.Sites }

// UndetectedCount is the exact number of simulated faults that stayed
// silent, independent of the Undetected report cap.
func (c CampaignResult) UndetectedCount() int { return c.Total - c.Detected }

// String summarizes the campaign on one line.
func (c CampaignResult) String() string {
	sampled := ""
	if c.Sampled() {
		sampled = fmt.Sprintf(" (sampled from %d sites)", c.Sites)
	}
	return fmt.Sprintf("%-24s %5d faults%s %5d detected %5d undetected  %6.2f%% coverage",
		c.Name, c.Total, sampled, c.Detected, c.UndetectedCount(), c.Coverage())
}

// Report aggregates a full cross-check run.
type Report struct {
	Equiv     []EquivResult
	Campaigns []CampaignResult
}

// Pass reports whether every equivalence check passed.
func (r Report) Pass() bool {
	for _, e := range r.Equiv {
		if !e.Pass {
			return false
		}
	}
	return true
}
