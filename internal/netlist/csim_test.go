package netlist

import (
	"math/rand"
	"testing"
)

// buildSimTestbed returns a design exercising every library cell, a gated
// clock (which forces the generic Tick path), a latch enable and a two-deep
// hierarchy, so the compiled simulator can be checked against the reference
// Simulator net for net.
func buildSimTestbed(t *testing.T) *Design {
	t.Helper()
	d := NewDesign("tb", DefaultLibrary())

	tff := NewModule("tff")
	tff.MustPort("ck", In, 1)
	tff.MustPort("t", In, 1)
	tff.MustPort("q", Out, 1)
	tff.MustInstance("u_x", CellXor2, map[string]string{"A": "q", "B": "t", "Z": "nd"})
	tff.MustInstance("u_f", CellDFF, map[string]string{"D": "nd", "CK": "ck", "Q": "q"})
	d.MustAddModule(tff)

	m := NewModule("dut")
	for _, p := range []string{"ck", "ck2", "rst", "en", "a", "b", "s"} {
		m.MustPort(p, In, 1)
	}
	for _, p := range []string{"y0", "y1", "cq", "sq", "rq", "lq", "gq", "t0q", "t1q"} {
		m.MustPort(p, Out, 1)
	}
	m.MustInstance("u_inv", CellInv, map[string]string{"A": "a", "Z": "y0"})
	m.MustInstance("u_nand", CellNand2, map[string]string{"A": "a", "B": "b", "Z": "n1"})
	m.MustInstance("u_nor", CellNor2, map[string]string{"A": "a", "B": "s", "Z": "n2"})
	m.MustInstance("u_and", CellAnd2, map[string]string{"A": "n1", "B": "b", "Z": "n3"})
	m.MustInstance("u_or", CellOr2, map[string]string{"A": "n2", "B": "s", "Z": "n4"})
	m.MustInstance("u_xor", CellXor2, map[string]string{"A": "n3", "B": "n4", "Z": "n5"})
	m.MustInstance("u_xnor", CellXnor2, map[string]string{"A": "n5", "B": "a", "Z": "n6"})
	m.MustInstance("u_mux", CellMux2, map[string]string{"A": "n5", "B": "n6", "S": "s", "Z": "m1"})
	m.MustInstance("u_buf", CellBuf, map[string]string{"A": "m1", "Z": "y1"})
	m.MustInstance("u_t0", CellTie0, map[string]string{"Z": "tz"})
	m.MustInstance("u_t1", CellTie1, map[string]string{"Z": "to"})
	m.MustInstance("u_dff", CellDFF, map[string]string{"D": "n5", "CK": "ck", "Q": "cq"})
	m.MustInstance("u_sdff", CellSDFF,
		map[string]string{"D": "a", "SI": "cq", "SE": "s", "CK": "ck", "Q": "sq", "QN": "sqn"})
	m.MustInstance("u_dffr", CellDFFR, map[string]string{"D": "b", "CK": "ck", "R": "rst", "Q": "rq"})
	m.MustInstance("u_lat", CellLatchL, map[string]string{"D": "a", "EN": "en", "Q": "lq"})
	// Gated clock: ck2 drives an AND, so ck2 is not "clock pure".
	m.MustInstance("u_gate", CellAnd2, map[string]string{"A": "ck2", "B": "en", "Z": "gck"})
	m.MustInstance("u_gdff", CellDFF, map[string]string{"D": "sqn", "CK": "gck", "Q": "gq"})
	m.MustInstance("u_tff0", "tff", map[string]string{"ck": "ck", "t": "to", "q": "t0q"})
	m.MustInstance("u_tff1", "tff", map[string]string{"ck": "ck", "t": "tz", "q": "t1q"})
	d.MustAddModule(m)
	d.Top = "dut"
	return d
}

var tbOutputs = []string{"y0", "y1", "cq", "sq", "rq", "lq", "gq", "t0q", "t1q"}

// driveBoth applies one random stimulus step to both simulators and
// compares every observable output, returning on the first mismatch.
func compareOutputs(t *testing.T, step string, ref *Simulator, cs *CompiledSim) {
	t.Helper()
	for _, o := range tbOutputs {
		if ref.Get(o) != cs.Get(o) {
			t.Fatalf("%s: output %s: Simulator=%v CompiledSim=%v", step, o, ref.Get(o), cs.Get(o))
		}
	}
}

func TestCompiledSimMatchesSimulator(t *testing.T) {
	d := buildSimTestbed(t)
	ref, err := NewSimulator(d, "dut")
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewCompiledSim(d, "dut")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for cyc := 0; cyc < 300; cyc++ {
		for _, in := range []string{"rst", "en", "a", "b", "s"} {
			v := rng.Intn(2) == 1
			ref.Set(in, v)
			cs.Set(in, v)
		}
		if err := ref.Settle(); err != nil {
			t.Fatal(err)
		}
		cs.Settle()
		compareOutputs(t, "settle", ref, cs)
		clk := []string{"ck", "ck2", "en"}[rng.Intn(3)]
		if err := ref.Tick(clk); err != nil {
			t.Fatal(err)
		}
		cs.Tick(clk)
		compareOutputs(t, "tick "+clk, ref, cs)
	}
}

// TestCompiledSimFaultsMatchSimulator injects the same stuck-at fault into
// both simulators and checks the faulty machines stay bit-identical too.
func TestCompiledSimFaultsMatchSimulator(t *testing.T) {
	d := buildSimTestbed(t)
	probe, err := NewCompiledSim(d, "dut")
	if err != nil {
		t.Fatal(err)
	}
	sites := probe.Faults()
	if len(sites) < 50 {
		t.Fatalf("expected a rich fault list, got %d sites", len(sites))
	}
	for fi := 0; fi < len(sites); fi += 7 {
		f := sites[fi]
		ref, err := NewSimulator(d, "dut")
		if err != nil {
			t.Fatal(err)
		}
		cs, err := NewCompiledSim(d, "dut")
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Inject(f.Gate, f.Port, f.Value); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if err := cs.Inject(f.Gate, f.Port, f.Value); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		rng := rand.New(rand.NewSource(int64(fi)))
		for cyc := 0; cyc < 40; cyc++ {
			for _, in := range []string{"rst", "en", "a", "b", "s"} {
				v := rng.Intn(2) == 1
				ref.Set(in, v)
				cs.Set(in, v)
			}
			if err := ref.Settle(); err != nil {
				t.Fatal(err)
			}
			cs.Settle()
			compareOutputs(t, f.String()+" settle", ref, cs)
			clk := []string{"ck", "ck2", "en"}[rng.Intn(3)]
			if err := ref.Tick(clk); err != nil {
				t.Fatal(err)
			}
			cs.Tick(clk)
			compareOutputs(t, f.String()+" tick", ref, cs)
		}
	}
}

func TestCompiledSimCloneAndClearFaults(t *testing.T) {
	d := buildSimTestbed(t)
	cs, err := NewCompiledSim(d, "dut")
	if err != nil {
		t.Fatal(err)
	}
	pristine := func(sim *CompiledSim) []bool {
		sim.Reset()
		sim.Set("a", true)
		sim.Set("b", true)
		sim.Tick("ck")
		out := make([]bool, len(tbOutputs))
		for i, o := range tbOutputs {
			out[i] = sim.Get(o)
		}
		return out
	}
	base := pristine(cs)

	if err := cs.Inject("u_nand", "Z", true); err != nil {
		t.Fatal(err)
	}
	clone := cs.Clone()
	faulty := pristine(cs)
	cloneOut := pristine(clone)
	for i := range base {
		if faulty[i] != cloneOut[i] {
			t.Fatalf("clone diverges from faulty original at %s", tbOutputs[i])
		}
	}
	differs := false
	for i := range base {
		if base[i] != faulty[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("u_nand/Z SA1 should be visible on some output")
	}
	cs.ClearFaults()
	restored := pristine(cs)
	for i := range base {
		if base[i] != restored[i] {
			t.Fatalf("ClearFaults did not restore fault-free behaviour at %s", tbOutputs[i])
		}
	}
}

func TestCompiledSimRejectsCombLoop(t *testing.T) {
	d := NewDesign("loop", DefaultLibrary())
	m := NewModule("latchpair")
	m.MustPort("sn", In, 1)
	m.MustPort("rn", In, 1)
	m.MustPort("q", Out, 1)
	m.MustInstance("u_a", CellNand2, map[string]string{"A": "sn", "B": "qb", "Z": "q"})
	m.MustInstance("u_b", CellNand2, map[string]string{"A": "q", "B": "rn", "Z": "qb"})
	d.MustAddModule(m)
	if _, err := NewCompiledSim(d, "latchpair"); err == nil {
		t.Fatal("expected a combinational-loop error")
	}
}

func TestSimulatorInjectErrors(t *testing.T) {
	d := buildSimTestbed(t)
	ref, err := NewSimulator(d, "dut")
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Inject("no_such_gate", "A", true); err == nil {
		t.Fatal("expected unknown-gate error")
	}
	if err := ref.Inject("u_inv", "XYZ", true); err == nil {
		t.Fatal("expected unknown-port error")
	}
	cs, err := NewCompiledSim(d, "dut")
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Inject("no_such_gate", "A", true); err == nil {
		t.Fatal("expected unknown-gate error")
	}
	if err := cs.Inject("u_inv", "XYZ", true); err == nil {
		t.Fatal("expected unknown-port error")
	}
}
