package pattern

import (
	"fmt"

	"steac/internal/testinfo"
)

// ScanPattern is one core-level scan pattern as an ATPG emits it: per-chain
// load data, PI stimulus for the capture cycle, and the expected responses
// (per-chain unload data and PO values at capture).
type ScanPattern struct {
	// Load holds the chain load vectors, indexed like Core.ScanChains.
	Load [][]bool
	// PI is the primary-input stimulus applied during capture.
	PI []bool
	// ExpectUnload is the expected chain content after capture.
	ExpectUnload [][]bool
	// ExpectPO is the expected primary-output response at capture.
	ExpectPO []bool
}

// FuncPattern is one cycle-based functional pattern.
type FuncPattern struct {
	PI       []bool
	ExpectPO []bool
}

// ATPG is the synthetic pattern source for one core.  Patterns are
// generated deterministically and on demand, so the multi-hundred-thousand
// functional sets of the DSC chip stream through the translator without
// ever being materialized.
type ATPG struct {
	Model *CoreModel

	scanSeed  uint64
	funcSeed  uint64
	scanCount int
	funcCount int
}

// NewATPG builds the pattern source from a core's test information.
func NewATPG(core *testinfo.Core) (*ATPG, error) {
	if err := core.Validate(); err != nil {
		return nil, err
	}
	a := &ATPG{Model: NewCoreModel(core)}
	for _, p := range core.Patterns {
		switch p.Type {
		case testinfo.Scan:
			a.scanCount += p.Count
			a.scanSeed = splitmix64(a.scanSeed ^ uint64(p.Seed))
		case testinfo.Functional:
			a.funcCount += p.Count
			a.funcSeed = splitmix64(a.funcSeed ^ uint64(p.Seed))
		}
	}
	return a, nil
}

// Core returns the core this source tests.
func (a *ATPG) Core() *testinfo.Core { return a.Model.Core }

// ScanCount returns the number of scan patterns.
func (a *ATPG) ScanCount() int { return a.scanCount }

// FuncCount returns the number of functional patterns.
func (a *ATPG) FuncCount() int { return a.funcCount }

func prandBits(seed uint64, n int) []bool {
	bits := make([]bool, n)
	var word uint64
	for i := 0; i < n; i++ {
		if i%64 == 0 {
			word = splitmix64(seed + uint64(i/64))
		}
		bits[i] = word&1 == 1
		word >>= 1
	}
	return bits
}

// ScanPattern generates scan pattern i (0-based).
func (a *ATPG) ScanPattern(i int) (ScanPattern, error) {
	if i < 0 || i >= a.scanCount {
		return ScanPattern{}, fmt.Errorf("pattern: scan pattern %d of %d", i, a.scanCount)
	}
	core := a.Core()
	state := prandBits(splitmix64(a.scanSeed^uint64(i)), a.Model.StateBits())
	pi := prandBits(splitmix64(a.scanSeed^0x50000^uint64(i)), core.PIs)
	next, po := a.Model.Capture(state, pi)
	p := ScanPattern{PI: pi, ExpectPO: po}
	off := 0
	for _, ch := range core.ScanChains {
		p.Load = append(p.Load, state[off:off+ch.Length])
		p.ExpectUnload = append(p.ExpectUnload, next[off:off+ch.Length])
		off += ch.Length
	}
	return p, nil
}

// FuncPattern generates functional pattern i.  Functional patterns are
// sequential: pattern i's expected PO depends on the machine state after
// patterns 0..i-1, so random access costs O(i); use FuncWalk to stream.
func (a *ATPG) FuncPattern(i int) (FuncPattern, error) {
	if i < 0 || i >= a.funcCount {
		return FuncPattern{}, fmt.Errorf("pattern: functional pattern %d of %d", i, a.funcCount)
	}
	var out FuncPattern
	n := 0
	a.FuncWalk(func(j int, p FuncPattern) bool {
		if j == i {
			out = p
			n++
			return false
		}
		return true
	})
	if n == 0 {
		return FuncPattern{}, fmt.Errorf("pattern: functional walk missed %d", i)
	}
	return out, nil
}

// FuncWalk streams the functional pattern sequence from reset; fn returning
// false stops early.
func (a *ATPG) FuncWalk(fn func(i int, p FuncPattern) bool) {
	state := a.Model.FuncReset()
	for i := 0; i < a.funcCount; i++ {
		pi := prandBits(splitmix64(a.funcSeed^0x60000^uint64(i)), a.Core().PIs)
		var po []bool
		state, po = a.Model.FuncStep(state, pi)
		if !fn(i, FuncPattern{PI: pi, ExpectPO: po}) {
			return
		}
	}
}
