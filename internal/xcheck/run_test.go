package xcheck

import (
	"context"
	"strings"
	"testing"

	"steac/internal/memory"
	"steac/internal/netlist"
)

func TestVerifyGroupsParallelAndOrdered(t *testing.T) {
	cases := []GroupCase{
		{"g0", mustAlg(t, "MATS+"), []memory.Config{{Name: "a", Words: 8, Bits: 2, Kind: memory.SinglePort}}},
		{"g1", mustAlg(t, "March X"), []memory.Config{{Name: "b", Words: 16, Bits: 3, Kind: memory.SinglePort}}},
		{"g2", mustAlg(t, "March Y"), []memory.Config{{Name: "c", Words: 8, Bits: 4, Kind: memory.TwoPort}}},
	}
	res, err := VerifyGroupsContext(context.Background(), cases, Options{Workers: 3})
	if err != nil {
		t.Fatalf("VerifyGroups: %v", err)
	}
	for i, r := range res {
		if r.Name != cases[i].Name {
			t.Errorf("result %d named %q, want %q", i, r.Name, cases[i].Name)
		}
		if !r.Pass {
			t.Errorf("%s: %s", r.Name, r.String())
		}
	}
}

func TestWriteReport(t *testing.T) {
	rep := &Report{
		Equiv: []EquivResult{{Name: "g0", Pass: true, Sessions: 2, Cycles: 100, Checks: 500}},
		Campaigns: []CampaignResult{{
			Name: "c0", Sites: 10, Total: 10, Detected: 9,
			Undetected: []netlist.SAFault{{Gate: "g", Port: "A", Value: true}},
		}},
	}
	var sb strings.Builder
	WriteReport(&sb, rep)
	out := sb.String()
	for _, want := range []string{"EQUIVALENT", "all equivalent", "90.00% coverage", "undetected: g/A stuck-at-1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
