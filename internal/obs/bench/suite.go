package bench

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"steac/internal/bist"
	"steac/internal/brains"
	"steac/internal/core"
	"steac/internal/dsc"
	"steac/internal/march"
	"steac/internal/memfault"
	"steac/internal/memory"
	"steac/internal/pattern"
	"steac/internal/sched"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
	"steac/internal/xcheck"
)

// The suite measures the platform's expensive paths through their public
// entry points, one op per paper table/figure family (the same workloads as
// the root-package Benchmark* functions, sized so the full suite finishes
// in seconds).  Every op returns a `check` fingerprint of its functional
// result; RunSuite fails if iterations of one run disagree, and benchdiff
// flags disagreement between runs.

// opResult is what one measured iteration reports.
type opResult struct {
	work  int64
	unit  string
	check string
}

// spec is one suite operation: setup builds the workload once (untimed),
// the returned closure is the measured iteration.
type spec struct {
	name    string
	workers int
	setup   func() (func() (opResult, error), error)
}

func dscTests() ([]sched.Test, sched.Resources, error) {
	br, err := brains.CompileContext(context.Background(), dsc.Memories(), brains.Options{Grouping: brains.GroupPerMemory})
	if err != nil {
		return nil, sched.Resources{}, err
	}
	tests, err := sched.BuildTests(dsc.Cores(), core.BISTGroups(br))
	if err != nil {
		return nil, sched.Resources{}, err
	}
	return tests, dsc.Resources(), nil
}

func memoryConfig(name string) (memory.Config, error) {
	for _, cfg := range dsc.Memories() {
		if cfg.Name == name {
			return cfg, nil
		}
	}
	return memory.Config{}, fmt.Errorf("bench: no DSC memory %q", name)
}

func specs() []spec {
	return []spec{
		{name: "sched.session_search", workers: 1, setup: func() (func() (opResult, error), error) {
			tests, res, err := dscTests()
			if err != nil {
				return nil, err
			}
			res.Workers = 1
			return func() (opResult, error) {
				s, err := sched.SessionBasedContext(context.Background(), tests, res)
				if err != nil {
					return opResult{}, err
				}
				return opResult{work: int64(s.TotalCycles), unit: "cycles",
					check: fmt.Sprintf("total_cycles=%d sessions=%d", s.TotalCycles, len(s.Sessions))}, nil
			}, nil
		}},
		{name: "sched.search_parallel", workers: 2, setup: func() (func() (opResult, error), error) {
			// Exact branch-and-bound over the Bell(9) = 21,147 partitions
			// of a 9-core synthetic SOC; the result is identical for every
			// worker count.
			cores := sched.SyntheticSOC(42, 9)
			tests, err := sched.BuildTests(cores, sched.SyntheticBIST(42, 5))
			if err != nil {
				return nil, err
			}
			res := sched.SyntheticResources(cores)
			res.Partitioner = wrapper.LPT
			res.Workers = 2
			return func() (opResult, error) {
				s, err := sched.SessionBasedContext(context.Background(), tests, res)
				if err != nil {
					return opResult{}, err
				}
				return opResult{work: int64(s.TotalCycles), unit: "cycles",
					check: fmt.Sprintf("total_cycles=%d sessions=%d", s.TotalCycles, len(s.Sessions))}, nil
			}, nil
		}},
		{name: "march.coverage", workers: 1, setup: func() (func() (opResult, error), error) {
			cfg := memory.Config{Name: "proxy", Words: 16, Bits: 4}
			faults := memfault.AllFaults(cfg)
			alg := march.MarchCMinus()
			return func() (opResult, error) {
				camp, err := memfault.CoverageContext(context.Background(), alg, cfg, faults, memfault.Options{Workers: 1})
				if err != nil {
					return opResult{}, err
				}
				return opResult{work: int64(camp.Total), unit: "faults",
					check: fmt.Sprintf("detected=%d/%d", camp.Detected, camp.Total)}, nil
			}, nil
		}},
		{name: "march.coverage_parallel", workers: 2, setup: func() (func() (opResult, error), error) {
			// Identical workload to march.coverage (same geometry, fault
			// list and algorithm) so the two rows differ only in worker
			// count and their faults/s are directly comparable — the row
			// used to run a 32x8 geometry whose per-fault cost is ~4x the
			// serial row's 16x4, which made its throughput look like a
			// parallel slowdown (see EXPERIMENTS.md).  The campaign is
			// aggregated in fault-list order and is bit-identical for
			// every worker count.
			cfg := memory.Config{Name: "proxy", Words: 16, Bits: 4}
			faults := memfault.AllFaults(cfg)
			alg := march.MarchCMinus()
			return func() (opResult, error) {
				camp, err := memfault.CoverageContext(context.Background(), alg, cfg, faults, memfault.Options{Workers: 2})
				if err != nil {
					return opResult{}, err
				}
				return opResult{work: int64(camp.Total), unit: "faults",
					check: fmt.Sprintf("detected=%d/%d", camp.Detected, camp.Total)}, nil
			}, nil
		}},
		{name: "bist.engine", workers: 1, setup: func() (func() (opResult, error), error) {
			cfgs := dsc.Memories()
			return func() (opResult, error) {
				var sp, tp []bist.MemoryUnderTest
				for _, cfg := range cfgs {
					m, err := memory.New(cfg)
					if err != nil {
						return opResult{}, err
					}
					if cfg.Kind == memory.TwoPort {
						tp = append(tp, bist.MemoryUnderTest{RAM: m})
					} else {
						sp = append(sp, bist.MemoryUnderTest{RAM: m})
					}
				}
				eng, err := bist.NewEngine([]bist.Group{
					{Name: "sp", Alg: march.MarchCMinus(), Mems: sp},
					{Name: "tp", Alg: march.MarchCMinus(), Mems: tp},
				}, bist.Serial)
				if err != nil {
					return opResult{}, err
				}
				r := eng.Run()
				return opResult{work: int64(r.Cycles), unit: "cycles",
					check: fmt.Sprintf("pass=%v cycles=%d mems=%d", r.Pass, r.Cycles, len(r.Mems))}, nil
			}, nil
		}},
		{name: "pattern.translate", workers: 1, setup: func() (func() (opResult, error), error) {
			tv := dsc.TV()
			tv.Patterns = tv.Patterns[:1] // scan set only
			src, err := pattern.NewATPG(tv)
			if err != nil {
				return nil, err
			}
			res := sched.Resources{TestPins: 12, FuncPins: 4, Partitioner: wrapper.LPT}
			tests, err := sched.BuildTests([]*testinfo.Core{tv}, nil)
			if err != nil {
				return nil, err
			}
			s, err := sched.SessionBasedContext(context.Background(), tests, res)
			if err != nil {
				return nil, err
			}
			sources := map[string]pattern.Source{"TV": src}
			return func() (opResult, error) {
				prog, err := pattern.Translate(s, sources, res)
				if err != nil {
					return opResult{}, err
				}
				n := 0
				if err := prog.Stream(prog.Sessions[0], func(c int, cyc *pattern.Cycle) bool {
					n++
					return true
				}); err != nil {
					return opResult{}, err
				}
				return opResult{work: int64(n), unit: "cycles",
					check: fmt.Sprintf("cycles=%d tam=%d", n, prog.TamWidth)}, nil
			}, nil
		}},
		{name: "xcheck.equiv", workers: 1, setup: func() (func() (opResult, error), error) {
			cfg, err := memoryConfig("extfifo")
			if err != nil {
				return nil, err
			}
			alg := march.MarchCMinus()
			return func() (opResult, error) {
				r, err := xcheck.VerifyBISTContext(context.Background(), "extfifo", alg, []memory.Config{cfg}, xcheck.Options{Workers: 1})
				if err != nil {
					return opResult{}, err
				}
				return opResult{work: int64(r.Cycles), unit: "cycles",
					check: fmt.Sprintf("pass=%v cycles=%d checks=%d gates=%d", r.Pass, r.Cycles, r.Checks, r.Gates)}, nil
			}, nil
		}},
		{name: "xcheck.campaign", workers: 2, setup: func() (func() (opResult, error), error) {
			cfg, err := memoryConfig("extfifo")
			if err != nil {
				return nil, err
			}
			alg := march.MarchCMinus()
			opts := xcheck.Options{Workers: 2, MaxFaults: 64}
			return func() (opResult, error) {
				camp, err := xcheck.TPGCampaignContext(context.Background(), "extfifo", alg, []memory.Config{cfg}, opts)
				if err != nil {
					return opResult{}, err
				}
				return opResult{work: int64(camp.Total), unit: "faults",
					check: fmt.Sprintf("detected=%d/%d sites=%d", camp.Detected, camp.Total, camp.Sites)}, nil
			}, nil
		}},
		{name: "flow.insert", workers: 1, setup: func() (func() (opResult, error), error) {
			soc, err := dsc.BuildSOC()
			if err != nil {
				return nil, err
			}
			stils, err := core.EmitSTIL(dsc.Cores())
			if err != nil {
				return nil, err
			}
			in := core.FlowInput{
				STIL: stils, SOC: soc, Resources: dsc.Resources(),
				Memories:    dsc.Memories(),
				BISTOptions: brains.Options{Grouping: brains.GroupPerMemory},
			}
			in.Resources.Workers = 1
			return func() (opResult, error) {
				r, err := core.RunFlowContext(context.Background(), in)
				if err != nil {
					return opResult{}, err
				}
				return opResult{work: int64(r.Schedule.TotalCycles), unit: "cycles",
					check: fmt.Sprintf("total_cycles=%d ctl_gates=%.0f tam_gates=%.0f overhead=%.4f%%",
						r.Schedule.TotalCycles, r.Insertion.ControllerGates,
						r.Insertion.TAMGates, r.Insertion.OverheadPct)}, nil
			}, nil
		}},
	}
}

// RunSuite executes every suite op and returns the run.  Full mode runs
// three measured iterations per op and keeps the fastest; short mode (CI
// smoke) runs one.  Workloads are identical in both modes, so a short run
// is comparable against a committed full baseline.  logf, when non-nil,
// receives one progress line per op.
func RunSuite(short bool, logf func(format string, a ...any)) (*File, error) {
	iters := 3
	if short {
		iters = 1
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f := NewFile(short)
	for _, sp := range specs() {
		run, err := sp.setup()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: setup: %w", sp.name, err)
		}
		// One untimed warmup settles lazy initialisation and cache state.
		if _, err := run(); err != nil {
			return nil, fmt.Errorf("bench: %s: warmup: %w", sp.name, err)
		}
		op := Op{Op: sp.name, Iters: iters, Workers: sp.workers}
		best := int64(math.MaxInt64)
		for i := 0; i < iters; i++ {
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			r, err := run()
			ns := time.Since(t0).Nanoseconds()
			runtime.ReadMemStats(&m1)
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", sp.name, err)
			}
			if op.Check != "" && op.Check != r.check {
				return nil, fmt.Errorf("bench: %s: nondeterministic result: %q vs %q", sp.name, op.Check, r.check)
			}
			op.Check, op.Work, op.WorkUnit = r.check, r.work, r.unit
			if ns < best {
				best = ns
				op.WallNs = ns
				op.AllocsPerOp = int64(m1.Mallocs - m0.Mallocs)
				op.BytesPerOp = int64(m1.TotalAlloc - m0.TotalAlloc)
			}
		}
		if op.WallNs > 0 {
			op.WorkPerSec = float64(op.Work) / (float64(op.WallNs) / 1e9)
		}
		f.Ops = append(f.Ops, op)
		logf("bench: %-26s %12s  %s", op.Op,
			time.Duration(op.WallNs).Round(time.Microsecond), op.Check)
	}
	return f, nil
}
