package pattern

import (
	"fmt"

	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

// EXTEST interconnect testing (the classical IEEE 1500 use of the wrapper
// boundary): the source cores' output boundary cells drive the core-to-core
// glue wiring and the sink cores' input boundary cells capture it, so opens
// and bridges in the SOC-level interconnect are tested without involving
// any core logic.  STEAC schedules it as one extra session in which every
// wrapped core holds a width-1 TAM lane.

// Interconnect is one glue wire from a source core output to a sink core
// input.
type Interconnect struct {
	FromCore string
	FromPO   int
	ToCore   string
	ToPI     int
}

// ExtestCoreLane is one core's share of the EXTEST session.
type ExtestCoreLane struct {
	Core   *testinfo.Core
	Plan   wrapper.Plan
	WireLo int
}

// ExtestLane is the whole EXTEST session configuration.
type ExtestLane struct {
	Cores []ExtestCoreLane
	Wires []Interconnect
	// Wires2 is the total TAM wires the session occupies (sum of the
	// cores' chain counts).
	Wires2  int
	Vectors int
	// MaxLen is the longest wrapper chain across the cores; it paces the
	// common shift phase.
	MaxLen int
	Cycles int
}

// extestVectorBits returns the number of test vectors for n interconnects:
// the modified counting sequence (each wire gets the code i+1, so no wire
// is all-0s or all-1s) plus its complement, which together detect all
// opens (stuck wires) and all pairwise AND/OR bridges.
func extestVectorBits(n int) int {
	bits := 0
	for v := n + 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

// ExtestDrive returns the value wire i drives in vector v.
func (l *ExtestLane) ExtestDrive(i, v int) bool {
	half := l.Vectors / 2
	code := i + 1
	if v < half {
		return code&(1<<v) != 0
	}
	return code&(1<<(v-half)) == 0
}

// BuildExtest plans the EXTEST session over the given cores and
// interconnect list.  Each core keeps the wrapper-chain structure of its
// scheduled TAM width (widths, default 1), so the EXTEST patterns shift
// through exactly the chains the inserted wrapper implements; wire ranges
// are assigned in core order.
func BuildExtest(cores []*testinfo.Core, wires []Interconnect, widths map[string]int, part wrapper.Partitioner) (*ExtestLane, error) {
	if len(wires) == 0 {
		return nil, fmt.Errorf("pattern: no interconnects to test")
	}
	byName := make(map[string]*testinfo.Core, len(cores))
	for _, c := range cores {
		byName[c.Name] = c
	}
	lane := &ExtestLane{Wires: wires}
	for wi, w := range wires {
		src, ok := byName[w.FromCore]
		if !ok {
			return nil, fmt.Errorf("pattern: interconnect %d: unknown source core %s", wi, w.FromCore)
		}
		dst, ok := byName[w.ToCore]
		if !ok {
			return nil, fmt.Errorf("pattern: interconnect %d: unknown sink core %s", wi, w.ToCore)
		}
		if w.FromPO < 0 || w.FromPO >= src.POs {
			return nil, fmt.Errorf("pattern: interconnect %d: PO %d out of range for %s", wi, w.FromPO, w.FromCore)
		}
		if w.ToPI < 0 || w.ToPI >= dst.PIs {
			return nil, fmt.Errorf("pattern: interconnect %d: PI %d out of range for %s", wi, w.ToPI, w.ToCore)
		}
	}
	wireLo := 0
	for _, c := range cores {
		w := widths[c.Name]
		if w < 1 {
			w = 1
		}
		plan, err := wrapper.DesignChains(c, w, part)
		if err != nil {
			return nil, err
		}
		if plan.Soft {
			hard := *c
			hard.Soft = false
			if plan, err = wrapper.DesignChains(&hard, w, part); err != nil {
				return nil, err
			}
		}
		lane.Cores = append(lane.Cores, ExtestCoreLane{
			Core: c, Plan: plan, WireLo: wireLo,
		})
		wireLo += len(plan.Chains)
		if l := plan.MaxLength(); l > lane.MaxLen {
			lane.MaxLen = l
		}
	}
	lane.Wires2 = wireLo
	lane.Vectors = 2 * extestVectorBits(len(wires))
	lane.Cycles = (lane.MaxLen+1)*lane.Vectors + lane.MaxLen
	return lane, nil
}

// AttachExtest binds the EXTEST lane to the program session with the given
// index (the session the flow appended to the schedule) and widens the
// program's TAM to carry one wire per core.
func (prog *Program) AttachExtest(sessionIdx int, lane *ExtestLane) error {
	if sessionIdx < 0 || sessionIdx >= len(prog.Sessions) {
		return fmt.Errorf("pattern: extest session %d of %d", sessionIdx, len(prog.Sessions))
	}
	l := &prog.Sessions[sessionIdx]
	if len(l.Scan) > 0 || len(l.Func) > 0 {
		return fmt.Errorf("pattern: extest session %d already carries core tests", sessionIdx)
	}
	if l.Cycles != lane.Cycles {
		return fmt.Errorf("pattern: extest session %d is %d cycles, lane needs %d",
			sessionIdx, l.Cycles, lane.Cycles)
	}
	l.Extest = lane
	if lane.Wires2 > prog.TamWidth {
		prog.TamWidth = lane.Wires2
	}
	return nil
}

// extestImages renders vector v as per-core, per-chain load and expect
// images.  Load: source out-cells drive their wire's bit, everything else
// is don't-care (padded 0).  Expect: sink in-cells must capture the driven
// bit; everything else is X.
func (l *ExtestLane) extestImages(v int) (load, expect map[string][][]Bit) {
	load = make(map[string][][]Bit, len(l.Cores))
	expect = make(map[string][][]Bit, len(l.Cores))
	// Per core: map PO index -> drive bit, PI index -> expected bit.
	poDrive := make(map[string]map[int]Bit)
	piExpect := make(map[string]map[int]Bit)
	for wi, w := range l.Wires {
		b := FromBool(l.ExtestDrive(wi, v))
		if poDrive[w.FromCore] == nil {
			poDrive[w.FromCore] = make(map[int]Bit)
		}
		poDrive[w.FromCore][w.FromPO] = b
		if piExpect[w.ToCore] == nil {
			piExpect[w.ToCore] = make(map[int]Bit)
		}
		piExpect[w.ToCore][w.ToPI] = b
	}
	for _, cl := range l.Cores {
		piIdx, poIdx := 0, 0
		var li, ei [][]Bit
		for _, ch := range cl.Plan.Chains {
			lc := make([]Bit, 0, ch.Length())
			ec := make([]Bit, 0, ch.Length())
			for k := 0; k < ch.InCells; k++ {
				lc = append(lc, BX)
				if b, ok := piExpect[cl.Core.Name][piIdx]; ok {
					ec = append(ec, b)
				} else {
					ec = append(ec, BX)
				}
				piIdx++
			}
			for _, seg := range ch.SegmentBits {
				for k := 0; k < seg; k++ {
					lc = append(lc, BX)
					ec = append(ec, BX)
				}
			}
			for k := 0; k < ch.OutCells; k++ {
				if b, ok := poDrive[cl.Core.Name][poIdx]; ok {
					lc = append(lc, b)
				} else {
					lc = append(lc, BX)
				}
				ec = append(ec, BX)
				poIdx++
			}
			li = append(li, lc)
			ei = append(ei, ec)
		}
		load[cl.Core.Name] = li
		expect[cl.Core.Name] = ei
	}
	return load, expect
}

// streamExtest emits the EXTEST session cycles: all cores shift together
// for MaxLen cycles per vector (update+capture on the MaxLen+1-th), then a
// final unload.
func (prog *Program) streamExtest(lane *ExtestLane, fn func(c int, cyc *Cycle) bool) error {
	cyc := &Cycle{
		TamIn:      make([]Bit, prog.TamWidth),
		TamExpect:  make([]Bit, prog.TamWidth),
		Func:       make([]Bit, prog.FuncBus),
		FuncExpect: make([]Bit, prog.FuncBus),
		Actions:    make(map[string]CoreAction),
	}
	L := lane.MaxLen
	period := L + 1
	var curLoad, prevExpect map[string][][]Bit
	c := 0
	emit := func() bool {
		obsCyclesStreamed.Add(1)
		ok := fn(c, cyc)
		c++
		return ok
	}
	clear := func() {
		for i := range cyc.TamIn {
			cyc.TamIn[i] = BX
			cyc.TamExpect[i] = BX
		}
		for i := range cyc.Func {
			cyc.Func[i] = BX
			cyc.FuncExpect[i] = BX
		}
		for k := range cyc.Actions {
			delete(cyc.Actions, k)
		}
	}
	for v := 0; v < lane.Vectors; v++ {
		load, expect := lane.extestImages(v)
		curLoad = load
		for k := 0; k < period; k++ {
			clear()
			if k < L {
				for _, cl := range lane.Cores {
					cyc.Actions[cl.Core.Name] = ActShift
					for ci, img := range curLoad[cl.Core.Name] {
						wire := cl.WireLo + ci
						if idx := L - 1 - k; idx < len(img) {
							cyc.TamIn[wire] = img[idx]
						} else {
							cyc.TamIn[wire] = B0
						}
						if prevExpect != nil {
							pimg := prevExpect[cl.Core.Name][ci]
							if idx := len(pimg) - 1 - k; idx >= 0 {
								cyc.TamExpect[wire] = pimg[idx]
							}
						}
					}
				}
			} else {
				for _, cl := range lane.Cores {
					cyc.Actions[cl.Core.Name] = ActCapture
				}
			}
			if !emit() {
				return nil
			}
		}
		prevExpect = expect
	}
	// Final unload.
	for k := 0; k < L; k++ {
		clear()
		for _, cl := range lane.Cores {
			cyc.Actions[cl.Core.Name] = ActShift
			for ci, pimg := range prevExpect[cl.Core.Name] {
				wire := cl.WireLo + ci
				cyc.TamIn[wire] = B0
				if idx := len(pimg) - 1 - k; idx >= 0 {
					cyc.TamExpect[wire] = pimg[idx]
				}
			}
		}
		if !emit() {
			return nil
		}
	}
	return nil
}
