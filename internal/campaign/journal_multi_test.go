package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// Multi-writer journal battery: two fabric nodes interleave completions
// into their own side journals (journal-<writer>.jsonl) of one shared
// checkpoint directory.  The merge rules under test: side journals are
// scanned alongside the primary, the same deterministic outcome recorded
// by two writers is benign (first valid entry wins), and a single-process
// resume folds everything into the primary journal and removes the side
// files.  The corruption property from the single-journal battery must
// hold file-by-file: damage to either (or both) writers' journals repairs
// to a byte-identical report or fails with a typed error — never a
// silently different report.

// multiWriterCheckpoint completes the standard campaign through two Store
// writers: even shards to node-a, odd to node-b, and every seventh shard
// journaled by BOTH (the stolen-and-still-completed duplicate a fabric
// steal produces).
func multiWriterCheckpoint(t *testing.T) (string, Plan) {
	t.Helper()
	ctx := context.Background()
	dir := t.TempDir()
	plan, exec, err := PlanCampaign(ctx, testSpec(), 64)
	if err != nil {
		t.Fatal(err)
	}
	plan, err = CreateStore(dir, plan)
	if err != nil {
		t.Fatal(err)
	}
	a, err := OpenStore(dir, plan, "node-a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenStore(dir, plan, "node-b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	worker, err := exec.NewWorker()
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < plan.Shards; idx++ {
		lo, hi := plan.Bounds(idx)
		out := make([]int64, hi-lo)
		if err := worker.Run(ctx, lo, hi, out); err != nil {
			t.Fatalf("shard %d: %v", idx, err)
		}
		mine, other := a, b
		if idx%2 == 1 {
			mine, other = b, a
		}
		if err := mine.Append(idx, out); err != nil {
			t.Fatalf("append shard %d: %v", idx, err)
		}
		if idx%7 == 0 {
			if err := other.Append(idx, out); err != nil {
				t.Fatalf("duplicate append shard %d: %v", idx, err)
			}
		}
	}
	return dir, plan
}

// TestMultiWriterMergeMatchesGolden checks the read-only merge: outcomes
// interleaved across two writers (with cross-file duplicates) assemble to
// the golden report, with zero entries counted as damaged.
func TestMultiWriterMergeMatchesGolden(t *testing.T) {
	golden := goldenRun(t, testSpec())
	dir, plan := multiWriterCheckpoint(t)

	loadedPlan, loaded, repaired, err := LoadOutcomes(dir)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 0 {
		t.Fatalf("benign cross-writer duplicates counted as damage: repaired=%d", repaired)
	}
	if loadedPlan.Fingerprint != plan.Fingerprint {
		t.Fatal("LoadOutcomes returned a different campaign")
	}
	if missing := MissingShards(loadedPlan, loaded); len(missing) != 0 {
		t.Fatalf("complete two-writer checkpoint missing shards %v", missing)
	}
	spec := testSpec()
	_, exec, err := PlanCampaign(context.Background(), spec, plan.ShardSize)
	if err != nil {
		t.Fatal(err)
	}
	report, err := AssembleReport(exec, loadedPlan, loaded)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, golden) {
		t.Fatalf("two-writer merged report differs from golden:\n got  %s\n want %s", raw, golden)
	}
}

// TestMultiWriterResumeCompacts checks the exclusive-resume path: a plain
// single-process Run over a two-writer directory resumes every shard from
// the side journals, produces the golden report, and compacts — the side
// journals fold into the primary and are removed.
func TestMultiWriterResumeCompacts(t *testing.T) {
	golden := goldenRun(t, testSpec())
	dir, plan := multiWriterCheckpoint(t)

	res, err := Run(context.Background(), testSpec(), Options{ShardSize: 64, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resumed != plan.Shards {
		t.Fatalf("resumed %d of %d shards from the side journals", res.Resumed, plan.Shards)
	}
	if got := reportJSON(t, res); !bytes.Equal(got, golden) {
		t.Fatal("two-writer resume report differs from golden")
	}
	for _, name := range []string{"journal-node-a.jsonl", "journal-node-b.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("side journal %s survived compaction (err=%v)", name, err)
		}
	}
	// The compacted directory must resume again purely from the primary.
	res2, err := Run(context.Background(), testSpec(), Options{ShardSize: 64, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Resumed != plan.Shards {
		t.Fatalf("post-compaction resume re-ran shards: resumed %d/%d", res2.Resumed, plan.Shards)
	}
	if got := reportJSON(t, res2); !bytes.Equal(got, golden) {
		t.Fatal("post-compaction report differs from golden")
	}
}

// TestMultiWriterJournalCorruptionProperty extends the corruption property
// to interleaved journals: each trial mutates node-a's journal, node-b's,
// or both, and a resume must repair to the byte-identical golden report or
// refuse with a typed error.  Silence — a different report — fails.
func TestMultiWriterJournalCorruptionProperty(t *testing.T) {
	golden := goldenRun(t, testSpec())
	dir, _ := multiWriterCheckpoint(t)
	manifestRaw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	sides := []string{"journal-node-a.jsonl", "journal-node-b.jsonl"}
	pristine := map[string][]byte{}
	for _, name := range sides {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		pristine[name] = raw
	}

	corruptions := []struct {
		name string
		mut  func(rng *rand.Rand, raw []byte) []byte
	}{
		{"bitflip", func(rng *rand.Rand, raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[rng.Intn(len(out))] ^= 1 << uint(rng.Intn(8))
			return out
		}},
		{"truncate", func(rng *rand.Rand, raw []byte) []byte {
			return append([]byte(nil), raw[:rng.Intn(len(raw))]...)
		}},
		{"torn-append", func(rng *rand.Rand, raw []byte) []byte {
			torn := `{"schema":"` + SchemaVersion + `","shard":1,"key":"bee`
			return append(append([]byte(nil), raw...), torn[:1+rng.Intn(len(torn)-1)]...)
		}},
		{"shuffle-lines", func(rng *rand.Rand, raw []byte) []byte {
			lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
			rng.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
			return append(bytes.Join(lines, []byte("\n")), '\n')
		}},
		{"cross-writer-swap", func(rng *rand.Rand, raw []byte) []byte {
			// Simulated misdirected write: a random line duplicated at a
			// random position — across writers this is exactly the
			// stolen-shard case and must stay benign.
			lines := bytes.Split(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
			dup := lines[rng.Intn(len(lines))]
			at := rng.Intn(len(lines) + 1)
			lines = append(lines[:at], append([][]byte{dup}, lines[at:]...)...)
			return append(bytes.Join(lines, []byte("\n")), '\n')
		}},
	}

	for _, c := range corruptions {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(29))
			for trial := 0; trial < 20; trial++ {
				fresh := t.TempDir()
				if err := os.WriteFile(filepath.Join(fresh, manifestName), manifestRaw, 0o644); err != nil {
					t.Fatal(err)
				}
				// Mutate a, b, or both this trial.
				target := rng.Intn(3)
				for i, name := range sides {
					raw := pristine[name]
					if target == 2 || target == i {
						raw = c.mut(rng, raw)
					}
					if err := os.WriteFile(filepath.Join(fresh, name), raw, 0o644); err != nil {
						t.Fatal(err)
					}
				}

				res, err := Run(context.Background(), testSpec(), Options{ShardSize: 64, Dir: fresh})
				if err != nil {
					if errors.Is(err, ErrSchemaVersion) || errors.Is(err, ErrCheckpointCorrupt) {
						continue // loud and typed is an allowed outcome
					}
					t.Fatalf("trial %d (target %d): resume failed with untyped error: %v", trial, target, err)
				}
				if got := reportJSON(t, res); !bytes.Equal(got, golden) {
					t.Fatalf("trial %d (target %d): corrupted two-writer checkpoint produced a DIFFERENT report",
						trial, target)
				}
			}
		})
	}
}
