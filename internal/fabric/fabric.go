// Package fabric scales the checkpointable campaign runner
// (internal/campaign) from one process to many: steacd nodes lease
// content-addressed shards over HTTP from a coordinator, simulate them on
// their local worker pools, journal completions to the shared checkpoint
// store, and the coordinator merges the journals through the engine's own
// Assemble path — so a fabric run is byte-identical to a single-process
// run of the same spec.
//
// The protocol is deliberately small, and every piece of crash safety
// falls out of the PR-5 checkpoint contract rather than new machinery:
//
//   - Leases, not assignments.  A node claims a batch of shards and must
//     heartbeat them before the TTL runs out; a SIGKILLed or partitioned
//     node simply stops heartbeating, its leases expire, and the next
//     claim steals them (steal-on-expiry — the distributed mirror of the
//     in-process pool's thief-FIFO: expired work is re-claimed oldest
//     first, while a live node keeps working the contiguous block it
//     claimed, the owner-LIFO side).
//   - Journal before ack.  A node fsyncs the shard outcome into its own
//     side journal (journal-<node>.jsonl) before reporting completion, so
//     every acknowledged shard is durable, and a crash between journal and
//     ack merely re-runs one shard.  Two nodes completing the same stolen
//     shard write byte-identical entries; the merge takes the first valid
//     one.
//   - Trust the store, not the table.  The lease table is an in-memory
//     scheduling hint.  Before assembling, the coordinator re-scans every
//     journal; shards claimed complete but absent from disk go back to
//     pending and are re-leased.  A coordinator restart rebuilds the whole
//     table from the manifests and journals on disk.
//
// Every observable failure is one of the typed sentinels below, carried
// over the wire as a machine-readable code and mapped back by the client.
package fabric

import (
	"errors"

	"steac/internal/obs"
)

// Typed protocol errors.  The HTTP layer maps each to a status plus a wire
// code; Client maps the code back so errors.Is works across the wire.
var (
	// ErrUnknownCampaign marks a fingerprint the coordinator is not
	// tracking — wrong coordinator, or a campaign that was never
	// submitted.
	ErrUnknownCampaign = errors.New("fabric: unknown campaign")
	// ErrUnknownShard marks a shard index outside the campaign's plan.
	ErrUnknownShard = errors.New("fabric: shard index out of range")
	// ErrNotDone marks a report request for a campaign that still has
	// incomplete shards (including shards claimed complete but missing
	// from the journals at merge time — those are re-leased).
	ErrNotDone = errors.New("fabric: campaign not complete")
	// ErrSpecMismatch marks a node whose locally-computed campaign
	// fingerprint disagrees with the coordinator's — a version or spec
	// skew that must stop the node before it simulates anything.
	ErrSpecMismatch = errors.New("fabric: spec does not match campaign fingerprint")
	// ErrBadRequest marks a structurally invalid protocol request (missing
	// node name, malformed body, invalid writer id).
	ErrBadRequest = errors.New("fabric: bad request")
)

// Observability.  Counters accumulate on the coordinator; the node agent
// has its own small set.
var (
	obsCampaigns   = obs.GetCounter("fabric.campaigns_submitted")
	obsCampaignsOK = obs.GetCounter("fabric.campaigns_done")
	obsLeases      = obs.GetCounter("fabric.leases_granted")
	obsExpired     = obs.GetCounter("fabric.leases_expired")
	obsStolen      = obs.GetCounter("fabric.leases_stolen")
	obsCompleted   = obs.GetCounter("fabric.shards_completed")
	obsHeartbeats  = obs.GetCounter("fabric.heartbeats")
	obsMergeMiss   = obs.GetCounter("fabric.merge_missing_shards")
	obsActive      = obs.GetGauge("fabric.campaigns_active")

	obsNodeShards = obs.GetCounter("fabric.node_shards_run")
	obsNodeLost   = obs.GetCounter("fabric.node_leases_lost")
)
