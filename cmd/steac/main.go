// Command steac runs the SOC Test Aid Console on user-supplied STIL files:
// it parses each core's test information, schedules the core tests into
// sessions under the given pin and power budgets, and prints the schedule,
// the baselines, and the test-IO analysis.  This is the generic entry point
// of the platform; cmd/dscflow drives the same flow on the paper's chip.
//
// Usage:
//
//	steac -pins 26 -funcpins 300 -power 34 core1.stil core2.stil ...
//	steac -emit USB                   # print a Table-1 core's STIL to stdout
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"steac/internal/core"
	"steac/internal/dsc"
	"steac/internal/netlist"
	"steac/internal/sched"
	"steac/internal/wrapper"
)

func main() {
	var (
		pins     = flag.Int("pins", 26, "dedicated test pin budget (TAM data + control)")
		funcpins = flag.Int("funcpins", 300, "pads reachable by functional-test muxing")
		power    = flag.Float64("power", 0, "test power budget (0 = unbounded)")
		part     = flag.String("partition", "lpt", "wrapper chain partitioner: lpt|firstfit|optimal")
		emit     = flag.String("emit", "", "emit a Table-1 core's STIL (USB, TV or JPEG) and exit")
		socPath  = flag.String("soc", "", "structural Verilog netlist of the SOC (instance convention: u_<core> of core_<core>); enables test insertion")
		outPath  = flag.String("out", "", "write the DFT-inserted netlist (Verilog) to this path (requires -soc)")
	)
	flag.Parse()

	if *emit != "" {
		cores := map[string]int{"USB": 0, "TV": 1, "JPEG": 2}
		idx, ok := cores[*emit]
		if !ok {
			fail(fmt.Errorf("unknown core %q (USB, TV or JPEG)", *emit))
		}
		stils, err := core.EmitSTIL(dsc.Cores())
		fail(err)
		fmt.Print(stils[idx])
		return
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "steac: no STIL files given (try -emit USB > usb.stil)")
		os.Exit(2)
	}
	var stils []string
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		fail(err)
		stils = append(stils, string(src))
	}

	p := wrapper.LPT
	switch *part {
	case "lpt":
	case "firstfit":
		p = wrapper.FirstFit
	case "optimal":
		p = wrapper.Optimal
	default:
		fail(fmt.Errorf("unknown partitioner %q", *part))
	}

	in := core.FlowInput{
		STIL: stils,
		Resources: sched.Resources{
			TestPins: *pins, FuncPins: *funcpins, MaxPower: *power, Partitioner: p,
		},
	}
	if *socPath != "" {
		src, err := os.ReadFile(*socPath)
		fail(err)
		soc, err := netlist.ParseVerilog(string(src), nil)
		fail(err)
		in.SOC = soc
	}
	res, err := core.RunFlowContext(context.Background(), in)
	fail(err)
	if *outPath != "" {
		if res.Insertion == nil {
			fail(fmt.Errorf("-out requires -soc"))
		}
		f, err := os.Create(*outPath)
		fail(err)
		fail(res.Insertion.Design.EmitVerilog(f))
		fail(f.Close())
		fmt.Printf("DFT netlist written to %s\n", *outPath)
	}

	fmt.Print(core.Table1(res.Cores))
	fmt.Println()
	fmt.Print(core.ComparisonReport(res))
	fmt.Println()
	fmt.Print(core.ScheduleReport(res.Schedule))
	fmt.Println()
	fmt.Print(core.IOReport(res.Cores))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "steac:", err)
		os.Exit(1)
	}
}
