package memfault

import (
	"testing"

	"steac/internal/memory"
)

var cfg16x4 = memory.Config{Name: "t", Words: 16, Bits: 4}

func mustFaulty(t *testing.T, cfg memory.Config, faults ...Fault) *FaultyRAM {
	t.Helper()
	m, err := NewFaulty(cfg, faults)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStuckAtBehaviour(t *testing.T) {
	m := mustFaulty(t, cfg16x4,
		Fault{Kind: SA0, Victim: Cell{Addr: 3, Bit: 1}},
		Fault{Kind: SA1, Victim: Cell{Addr: 5, Bit: 0}})
	// SA1 cell reads 1 before any write.
	if got := m.Read(5) & 1; got != 1 {
		t.Fatalf("SA1 initial read = %d", got)
	}
	m.Write(3, 0xF)
	if got := m.Read(3); got != 0xD { // bit 1 stuck at 0
		t.Fatalf("SA0 word = %x, want d", got)
	}
	m.Write(5, 0x0)
	if got := m.Read(5) & 1; got != 1 {
		t.Fatalf("SA1 after w0 = %d", got)
	}
}

func TestTransitionBehaviour(t *testing.T) {
	m := mustFaulty(t, cfg16x4,
		Fault{Kind: TFUp, Victim: Cell{Addr: 0, Bit: 0}},
		Fault{Kind: TFDown, Victim: Cell{Addr: 1, Bit: 0}})
	m.Write(0, 1)
	if m.Read(0)&1 != 0 {
		t.Fatal("TFUp cell made 0->1 transition")
	}
	m.Write(1, 1)
	if m.Read(1)&1 != 1 {
		t.Fatal("TFDown cell could not be set")
	}
	m.Write(1, 0)
	if m.Read(1)&1 != 1 {
		t.Fatal("TFDown cell made 1->0 transition")
	}
}

func TestStuckOpenBehaviour(t *testing.T) {
	m := mustFaulty(t, cfg16x4, Fault{Kind: SOF, Victim: Cell{Addr: 2, Bit: 0}})
	m.Write(2, 1)
	// Sense amp last saw nothing (0); SOF read returns the latch, not the cell.
	if m.Read(2)&1 != 0 {
		t.Fatal("SOF read did not return sense latch")
	}
	// Read a healthy 1 elsewhere to charge the latch, then the SOF cell
	// returns 1 even though its array content is 0.
	m.Write(3, 1)
	if m.Read(3)&1 != 1 {
		t.Fatal("healthy read failed")
	}
	if m.Read(2)&1 != 1 {
		t.Fatal("SOF read did not track sense latch")
	}
	if raw, _ := m.RawCell(Cell{Addr: 2, Bit: 0}); raw != 0 {
		t.Fatal("SOF write reached the array")
	}
}

func TestCouplingInversionBehaviour(t *testing.T) {
	m := mustFaulty(t, cfg16x4,
		Fault{Kind: CFin, Victim: Cell{Addr: 4, Bit: 2}, Aggr: Cell{Addr: 5, Bit: 2}, AggrRise: true})
	m.Write(4, 0x4) // victim bit 2 = 1
	m.Write(5, 0x4) // aggressor rises -> victim inverted
	if m.Read(4)&0x4 != 0 {
		t.Fatal("CFin rise did not invert victim")
	}
	m.Write(5, 0x0) // fall: no trigger
	if m.Read(4)&0x4 != 0 {
		t.Fatal("CFin fall should not trigger a rise-sensitized fault")
	}
}

func TestCouplingIdempotentBehaviour(t *testing.T) {
	m := mustFaulty(t, cfg16x4,
		Fault{Kind: CFid, Victim: Cell{Addr: 7, Bit: 0}, Aggr: Cell{Addr: 8, Bit: 0}, AggrRise: false, Forced: 1})
	m.Write(8, 1)
	m.Write(8, 0) // fall -> victim forced to 1
	if m.Read(7)&1 != 1 {
		t.Fatal("CFid fall did not force victim")
	}
}

func TestCouplingStateBehaviour(t *testing.T) {
	m := mustFaulty(t, cfg16x4,
		Fault{Kind: CFst, Victim: Cell{Addr: 1, Bit: 3}, Aggr: Cell{Addr: 2, Bit: 3}, AggrState: 1, Forced: 0})
	m.Write(1, 0x8)
	if m.Read(1)&0x8 == 0 {
		t.Fatal("victim readable while aggressor inactive")
	}
	m.Write(2, 0x8) // aggressor now in state 1
	if m.Read(1)&0x8 != 0 {
		t.Fatal("CFst did not force victim while aggressor active")
	}
	m.Write(2, 0)
	if m.Read(1)&0x8 == 0 {
		t.Fatal("victim did not recover when aggressor deactivated")
	}
}

func TestAddressFaultBehaviour(t *testing.T) {
	m := mustFaulty(t, cfg16x4, Fault{Kind: AF, Victim: Cell{Addr: 6}, MapAddr: 7})
	m.Write(6, 0xA) // lands in cell 7
	if m.Read(7) != 0xA {
		t.Fatal("AF write did not land at mapped address")
	}
	if m.Read(6) != 0xA { // read also remapped
		t.Fatal("AF read not remapped")
	}
	if raw, _ := m.RawCell(Cell{Addr: 6, Bit: 1}); raw != 0 {
		t.Fatal("AF victim cell was written")
	}
}

func TestReadDisturbBehaviour(t *testing.T) {
	m := mustFaulty(t, cfg16x4, Fault{Kind: RDF, Victim: Cell{Addr: 9, Bit: 0}})
	m.Write(9, 0)
	if m.Read(9)&1 != 1 {
		t.Fatal("RDF read did not return inverted value")
	}
	if raw, _ := m.RawCell(Cell{Addr: 9, Bit: 0}); raw != 1 {
		t.Fatal("RDF did not flip the cell")
	}
}

func TestFaultValidation(t *testing.T) {
	bad := []Fault{
		{Kind: SA0, Victim: Cell{Addr: 99, Bit: 0}},
		{Kind: CFin, Victim: Cell{Addr: 1}, Aggr: Cell{Addr: 1}},
		{Kind: CFst, Victim: Cell{Addr: 1}, Aggr: Cell{Addr: 2}, AggrState: 5},
		{Kind: AF, Victim: Cell{Addr: 3}, MapAddr: 3},
		{Kind: AF, Victim: Cell{Addr: 3}, MapAddr: 99},
		{Kind: Kind(42), Victim: Cell{Addr: 0}},
	}
	for _, f := range bad {
		if _, err := NewFaulty(cfg16x4, []Fault{f}); err == nil {
			t.Errorf("fault %v accepted", f)
		}
	}
}

func TestFaultStrings(t *testing.T) {
	for _, f := range []Fault{
		{Kind: SA0, Victim: Cell{Addr: 1, Bit: 2}},
		{Kind: CFin, Victim: Cell{Addr: 1}, Aggr: Cell{Addr: 2}, AggrRise: true},
		{Kind: CFid, Victim: Cell{Addr: 1}, Aggr: Cell{Addr: 2}, Forced: 1},
		{Kind: CFst, Victim: Cell{Addr: 1}, Aggr: Cell{Addr: 2}, AggrState: 1},
		{Kind: AF, Victim: Cell{Addr: 1}, MapAddr: 2},
	} {
		if f.String() == "" {
			t.Errorf("empty string for %v", f.Kind)
		}
	}
	kinds := []Kind{SA0, SA1, TFUp, TFDown, CFin, CFid, CFst, SOF, AF, RDF}
	for _, k := range kinds {
		if k.String() == "" || k.Class() == "?" {
			t.Errorf("kind %d missing name/class", int(k))
		}
	}
}

func TestPortBFaultBehaviour(t *testing.T) {
	cfg := memory.Config{Name: "tp", Words: 8, Bits: 4, Kind: memory.TwoPort}
	m, err := NewFaulty(cfg, []Fault{
		{Kind: SAB1, Victim: Cell{Addr: 2, Bit: 0}},
		{Kind: SAB0, Victim: Cell{Addr: 2, Bit: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Write(2, 0x2) // bit1=1, bit0=0
	if got := m.Read(2); got != 0x2 {
		t.Fatalf("port A read = %x", got)
	}
	if got := m.ReadB(2); got != 0x1 { // bit0 forced 1, bit1 forced 0
		t.Fatalf("port B read = %x, want 1", got)
	}
	// Port-B faults are rejected on single-port macros.
	spCfg := memory.Config{Name: "sp", Words: 8, Bits: 4}
	if _, err := NewFaulty(spCfg, []Fault{{Kind: SAB0, Victim: Cell{Addr: 0}}}); err == nil {
		t.Fatal("SAB on single-port accepted")
	}
	sp := mustFaulty(t, spCfg)
	defer func() {
		if recover() == nil {
			t.Fatal("ReadB on single-port did not panic")
		}
	}()
	sp.ReadB(0)
}
