package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"steac/internal/campaign"
	"steac/internal/fabric"
	"steac/internal/obs"
)

// The async job API: fault campaigns are minutes-to-hours of work, far
// past any sane HTTP deadline, so they run as jobs instead of requests.
//
//	POST   /v1/jobs       submit a campaign spec  -> 202 + job status
//	GET    /v1/jobs/{id}  poll progress/result    -> 200
//	DELETE /v1/jobs/{id}  cancel (graceful drain) -> 202
//
// Jobs are content-addressed: the id is a prefix of the campaign
// fingerprint, so submitting the same spec twice converges on the same
// job (and, with a checkpoint directory configured, the same on-disk
// checkpoint).  That makes crash recovery a client no-op — after a daemon
// restart, re-POSTing the spec resumes from whatever the journal holds.

var (
	obsJobsSubmitted = obs.GetCounter("serve.jobs_submitted")
	obsJobsDone      = obs.GetCounter("serve.jobs_completed")
	obsJobsFailed    = obs.GetCounter("serve.jobs_failed")
	obsJobsCanceled  = obs.GetCounter("serve.jobs_canceled")
	obsJobsActive    = obs.GetGauge("serve.jobs_active")
)

// JobRequest is the POST /v1/jobs body.  Kind and Spec are the semantic
// payload (they form the job id); Workers and ShardSize are execution
// tuning and change nothing about the result.
type JobRequest struct {
	Kind string          `json:"kind"`
	Spec json.RawMessage `json:"spec"`
	// Workers is the campaign pool size (0 = server default).
	Workers int `json:"workers,omitempty"`
	// ShardSize is the checkpoint shard granularity (0 = campaign
	// default; an existing checkpoint's manifest wins regardless).
	ShardSize int `json:"shard_size,omitempty"`
	// Fabric routes the campaign to the fabric coordinator (leased out to
	// joined nodes) instead of the local pool.  Requires the daemon to
	// run as a coordinator; otherwise the submission is a 400.
	Fabric bool `json:"fabric,omitempty"`
}

// JobStatus is the wire form of one job, returned by every job endpoint.
type JobStatus struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	Fingerprint string `json:"fingerprint"`
	// State is queued | running | done | failed | canceled, or
	// checkpointed for a directory known only from disk (no live job in
	// this process, e.g. after a daemon restart).
	State       string `json:"state"`
	ShardsDone  int    `json:"shards_done"`
	ShardsTotal int    `json:"shards_total,omitempty"`
	UnitsDone   int    `json:"units_done,omitempty"`
	UnitsTotal  int    `json:"units_total,omitempty"`
	// Resumed and Repaired are checkpoint accounting: shards replayed
	// from the journal and damaged entries dropped on load.
	Resumed  int `json:"resumed,omitempty"`
	Repaired int `json:"repaired,omitempty"`
	// ElapsedMS covers queued+running time so far (or to completion);
	// EtaMS extrapolates the remaining units from the rate observed so
	// far (absent until the first shard completes).
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
	EtaMS     int64 `json:"eta_ms,omitempty"`
	// Counters is the campaign.* obs counter snapshot at status time
	// (fabric.* for fabric jobs).
	Counters []obs.MetricValue `json:"counters,omitempty"`
	// Fabric is the fabric-wide progress view for distributed jobs:
	// leased/complete/stolen shard ledgers per node.  Local-pool jobs
	// omit it.
	Fabric *fabric.Progress `json:"fabric,omitempty"`
	// Result is the engine report once State is done.
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// Job states.
const (
	jobQueued       = "queued"
	jobRunning      = "running"
	jobDone         = "done"
	jobFailed       = "failed"
	jobCanceled     = "canceled"
	jobCheckpointed = "checkpointed"
)

// campaignJob is one live job in this process.
type campaignJob struct {
	id          string
	kind        string
	fingerprint string
	spec        campaign.Spec
	dir         string
	cancel      context.CancelCauseFunc

	mu          sync.Mutex
	state       string
	shardsDone  int
	shardsTotal int
	unitsDone   int
	unitsTotal  int
	resumed     int
	repaired    int
	started     time.Time // submission
	firstShard  time.Time // first shard completed in this process
	finished    time.Time
	result      json.RawMessage
	errMsg      string
	fabricProg  *fabric.Progress // latest coordinator snapshot; nil for local jobs
}

// status snapshots the job as a JobStatus.
func (j *campaignJob) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, Kind: j.kind, Fingerprint: j.fingerprint, State: j.state,
		ShardsDone: j.shardsDone, ShardsTotal: j.shardsTotal,
		UnitsDone: j.unitsDone, UnitsTotal: j.unitsTotal,
		Resumed: j.resumed, Repaired: j.repaired,
		Result: j.result, Error: j.errMsg,
	}
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	st.ElapsedMS = end.Sub(j.started).Milliseconds()
	if j.fabricProg != nil {
		// Fabric jobs report the coordinator's fabric-wide view: shard
		// and unit totals across every node, per-node lease/steal
		// ledgers, and the coordinator's own rate-based ETA — the local
		// single-pool extrapolation below would undercount a cluster.
		prog := *j.fabricProg
		st.Fabric = &prog
		st.EtaMS = prog.EtaMS
		st.Counters = obs.CountersPrefix("fabric.")
		return st
	}
	if j.state == jobRunning && !j.firstShard.IsZero() && j.unitsDone > 0 && j.unitsDone < j.unitsTotal {
		rate := float64(j.unitsDone) / float64(time.Since(j.firstShard))
		if rate > 0 {
			st.EtaMS = int64(float64(j.unitsTotal-j.unitsDone) / rate / float64(time.Millisecond))
		}
	}
	st.Counters = obs.CountersPrefix("campaign.")
	return st
}

// jobManager owns the live jobs of one Server.
type jobManager struct {
	dir     string
	workers int
	sem     chan struct{}
	wg      sync.WaitGroup
	fabric  *fabric.Coordinator // non-nil when this daemon coordinates a fabric

	mu   sync.Mutex
	jobs map[string]*campaignJob
}

func newJobManager(dir string, maxJobs, workers int) *jobManager {
	if maxJobs <= 0 {
		maxJobs = 2
	}
	return &jobManager{
		dir:     dir,
		workers: workers,
		sem:     make(chan struct{}, maxJobs),
		jobs:    map[string]*campaignJob{},
	}
}

// jobID derives the job identifier from a campaign fingerprint.
func jobID(fingerprint string) string { return fingerprint[:16] }

// validJobID reports whether id has the exact shape jobID produces — 16
// lowercase-hex characters.  Anything else cannot name a job and must
// never be joined into a checkpoint path (a client-supplied id reaches
// the filesystem in handleJobGet's disk fallback).
func validJobID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// submit starts (or joins) the job for a spec.  Resubmitting a spec while
// its job is queued, running, or done returns the existing job untouched;
// resubmitting after a failure or cancellation starts a fresh attempt,
// which — with a checkpoint directory — resumes from the journal.
func (jm *jobManager) submit(spec campaign.Spec, req JobRequest) (*campaignJob, error) {
	fingerprint, err := campaign.Fingerprint(spec)
	if err != nil {
		return nil, err
	}
	id := jobID(fingerprint)

	jm.mu.Lock()
	defer jm.mu.Unlock()
	if j, ok := jm.jobs[id]; ok {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		if state != jobFailed && state != jobCanceled {
			return j, nil
		}
	}

	j := &campaignJob{
		id: id, kind: spec.Kind(), fingerprint: fingerprint, spec: spec,
		state: jobQueued, started: time.Now(),
	}
	if jm.dir != "" {
		j.dir = filepath.Join(jm.dir, id)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	j.cancel = cancel
	jm.jobs[id] = j

	obsJobsSubmitted.Add(1)
	jm.wg.Add(1)
	go jm.run(ctx, j, req.Workers, req.ShardSize)
	return j, nil
}

// submitFabric starts (or joins) a distributed job: the campaign is
// registered with the fabric coordinator and executed by whatever nodes
// lease its shards; the local job merely tracks coordinator progress, so
// it does not consume a MaxJobs slot.  Job identity is the same campaign
// fingerprint as local jobs — the same spec submitted locally or to the
// fabric converges on the same id and checkpoint.
func (jm *jobManager) submitFabric(ctx context.Context, spec campaign.Spec, req JobRequest) (*campaignJob, error) {
	payload, err := spec.Marshal()
	if err != nil {
		return nil, err
	}
	info, err := jm.fabric.Submit(ctx, fabric.SubmitRequest{
		Kind: spec.Kind(), Spec: payload, ShardSize: req.ShardSize,
	})
	if err != nil {
		return nil, err
	}
	id := jobID(info.Fingerprint)

	jm.mu.Lock()
	defer jm.mu.Unlock()
	if j, ok := jm.jobs[id]; ok {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		if state != jobFailed && state != jobCanceled {
			return j, nil
		}
	}
	j := &campaignJob{
		id: id, kind: spec.Kind(), fingerprint: info.Fingerprint, spec: spec,
		state: jobRunning, started: time.Now(),
		fabricProg: &fabric.Progress{Fingerprint: info.Fingerprint, Kind: info.Kind, State: "running"},
	}
	watchCtx, cancel := context.WithCancelCause(context.Background())
	j.cancel = cancel
	jm.jobs[id] = j
	obsJobsSubmitted.Add(1)
	jm.wg.Add(1)
	go jm.watchFabric(watchCtx, j)
	return j, nil
}

// watchFabric tracks one distributed job: poll the coordinator until the
// campaign merges, then record its report.  Canceling the job stops the
// watch only — the fabric campaign itself belongs to the coordinator and
// keeps running on its nodes.
func (jm *jobManager) watchFabric(ctx context.Context, j *campaignJob) {
	defer jm.wg.Done()
	obsJobsActive.Set(obsJobsActive.Value() + 1)
	defer func() { obsJobsActive.Set(obsJobsActive.Value() - 1) }()
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	for {
		prog, err := jm.fabric.Progress(j.fingerprint)
		if err != nil {
			jm.finish(j, nil, err)
			return
		}
		j.mu.Lock()
		j.fabricProg = &prog
		j.shardsDone = prog.ShardsComplete
		j.shardsTotal = prog.ShardsTotal
		j.unitsDone = prog.UnitsDone
		j.unitsTotal = prog.UnitsTotal
		j.mu.Unlock()
		if prog.State == "done" {
			raw, err := jm.fabric.Report(j.fingerprint)
			if err != nil {
				jm.finish(j, nil, err)
				return
			}
			j.mu.Lock()
			j.finished = time.Now()
			j.state = jobDone
			j.result = raw
			j.mu.Unlock()
			obsJobsDone.Add(1)
			return
		}
		select {
		case <-ctx.Done():
			jm.finish(j, nil, fmt.Errorf("fabric watch stopped (%v): %w", context.Cause(ctx), ctx.Err()))
			return
		case <-ticker.C:
		}
	}
}

// run executes one job: wait for a slot, run the checkpointed campaign,
// record the outcome.  Cancellation while queued or running flows through
// ctx; the campaign layer drains in-flight shards to the journal before
// returning.
func (jm *jobManager) run(ctx context.Context, j *campaignJob, workers, shardSize int) {
	defer jm.wg.Done()
	select {
	case jm.sem <- struct{}{}:
		defer func() { <-jm.sem }()
	case <-ctx.Done():
		jm.finish(j, nil, fmt.Errorf("job canceled while queued (%v): %w", context.Cause(ctx), ctx.Err()))
		return
	}

	j.mu.Lock()
	j.state = jobRunning
	j.mu.Unlock()
	obsJobsActive.Set(obsJobsActive.Value() + 1)
	defer func() { obsJobsActive.Set(obsJobsActive.Value() - 1) }()

	if workers <= 0 {
		workers = jm.workers
	}
	res, err := campaign.Run(ctx, j.spec, campaign.Options{
		Workers:   workers,
		ShardSize: shardSize,
		Dir:       j.dir,
		OnShard: func(ev campaign.ShardEvent) {
			j.mu.Lock()
			j.shardsDone = ev.Done
			j.shardsTotal = ev.Total
			j.unitsTotal = ev.UnitsTotal
			if ev.Resumed {
				j.resumed++
			} else {
				j.unitsDone = ev.UnitsDone
				if j.firstShard.IsZero() {
					j.firstShard = time.Now()
				}
			}
			j.mu.Unlock()
		},
	})
	jm.finish(j, res, err)
}

// finish records a job's terminal state.
func (jm *jobManager) finish(j *campaignJob, res *campaign.Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	switch {
	case err == nil:
		blob, merr := json.Marshal(res.Report)
		if merr != nil {
			j.state = jobFailed
			j.errMsg = merr.Error()
			obsJobsFailed.Add(1)
			return
		}
		j.state = jobDone
		j.result = blob
		j.resumed = res.Resumed
		j.repaired = res.Repaired
		j.shardsDone = res.Shards
		j.shardsTotal = res.Shards
		j.unitsDone = j.unitsTotal
		obsJobsDone.Add(1)
	case errors.Is(err, context.Canceled):
		j.state = jobCanceled
		j.errMsg = err.Error()
		obsJobsCanceled.Add(1)
	default:
		j.state = jobFailed
		j.errMsg = err.Error()
		obsJobsFailed.Add(1)
	}
}

// get returns the live job, or nil.
func (jm *jobManager) get(id string) *campaignJob {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	return jm.jobs[id]
}

// drain cancels every live job (the campaign layer journals in-flight
// shards before unwinding — graceful-drain checkpointing) and waits for
// them to settle or ctx to expire.
func (jm *jobManager) drain(ctx context.Context) error {
	jm.mu.Lock()
	for _, j := range jm.jobs {
		j.cancel(errors.New("server draining"))
	}
	jm.mu.Unlock()
	settled := make(chan struct{})
	go func() {
		jm.wg.Wait()
		close(settled)
	}()
	select {
	case <-settled:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain jobs: %w", ctx.Err())
	}
}

// handleJobSubmit is POST /v1/jobs.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	obsRequests.Add(1)
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad job request: %w", err))
		return
	}
	if req.Kind == "" || len(req.Spec) == 0 {
		httpError(w, http.StatusBadRequest, badRequestf("serve: job needs kind and spec"))
		return
	}
	spec, err := campaign.Decode(req.Kind, req.Spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var j *campaignJob
	if req.Fabric {
		if s.jobMgr.fabric == nil {
			httpError(w, http.StatusBadRequest, badRequestf("serve: fabric job submitted but this daemon is not a coordinator"))
			return
		}
		j, err = s.jobMgr.submitFabric(r.Context(), spec, req)
	} else {
		j, err = s.jobMgr.submit(spec, req)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleJobGet is GET /v1/jobs/{id}.  A job unknown to this process but
// present under the checkpoint root (a pre-restart submission) is reported
// from disk as "checkpointed".
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	obsRequests.Add(1)
	id := r.PathValue("id")
	if j := s.jobMgr.get(id); j != nil {
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	if s.jobMgr.dir != "" && validJobID(id) {
		dir := filepath.Join(s.jobMgr.dir, id)
		if info, err := campaign.Inspect(dir); err == nil {
			writeJSON(w, http.StatusOK, JobStatus{
				ID: id, Kind: info.Kind, Fingerprint: info.Fingerprint,
				State:      jobCheckpointed,
				ShardsDone: info.ShardsDone, ShardsTotal: info.Shards,
				UnitsTotal: info.Units, Repaired: info.Repaired,
			})
			return
		} else if !errors.Is(err, os.ErrNotExist) {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
	}
	httpError(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", id))
}

// handleJobCancel is DELETE /v1/jobs/{id}: cancel the job's context and
// return its (soon to be canceled) status.  The campaign layer finishes
// and journals in-flight shards, so a canceled job's checkpoint is exactly
// resumable.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	obsRequests.Add(1)
	id := r.PathValue("id")
	j := s.jobMgr.get(id)
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", id))
		return
	}
	j.cancel(errors.New("canceled by client"))
	writeJSON(w, http.StatusAccepted, j.status())
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
