package dsc

import (
	"testing"

	"steac/internal/memory"
	"steac/internal/stil"
)

func TestTable1Fidelity(t *testing.T) {
	usb, tv, jpeg := USB(), TV(), JPEG()
	for _, tc := range []struct {
		name           string
		ti, to, pi, po int
	}{
		{"USB", 18, 4, 221, 104},
		{"TV", 6, 1, 25, 40},
		{"JPEG", 1, 0, 165, 104},
	} {
		var c = map[string]interface{}{"USB": usb, "TV": tv, "JPEG": jpeg}[tc.name]
		core := c.(interface {
			TestInputs() int
			TestOutputs() int
		})
		if got := core.TestInputs(); got != tc.ti {
			t.Errorf("%s TI = %d, want %d", tc.name, got, tc.ti)
		}
		if got := core.TestOutputs(); got != tc.to {
			t.Errorf("%s TO = %d, want %d", tc.name, got, tc.to)
		}
	}
	if usb.PIs != 221 || usb.POs != 104 || tv.PIs != 25 || tv.POs != 40 ||
		jpeg.PIs != 165 || jpeg.POs != 104 {
		t.Error("PI/PO counts diverge from Table 1")
	}
	lens := usb.ChainLengths()
	want := []int{1629, 293, 78, 45}
	for i := range want {
		if lens[i] != want[i] {
			t.Fatalf("USB chain lengths = %v", lens)
		}
	}
	if usb.ScanPatternCount() != 716 || tv.ScanPatternCount() != 229 {
		t.Error("scan pattern counts diverge from Table 1")
	}
	if tv.FunctionalPatternCount() != 202673 || jpeg.FunctionalPatternCount() != 235696 {
		t.Error("functional pattern counts diverge from Table 1")
	}
	if !tv.ScanChains[1].SharedOut {
		t.Error("TV's second chain must share its scan-out with a functional output")
	}
}

func TestCoresSurviveSTILRoundTrip(t *testing.T) {
	for _, c := range Cores() {
		src, err := stil.Emit(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		back, err := stil.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if back.TestInputs() != c.TestInputs() || back.TestOutputs() != c.TestOutputs() {
			t.Fatalf("%s: TI/TO changed through STIL", c.Name)
		}
		if back.ScanPatternCount() != c.ScanPatternCount() ||
			back.FunctionalPatternCount() != c.FunctionalPatternCount() {
			t.Fatalf("%s: pattern counts changed through STIL", c.Name)
		}
	}
}

func TestMemoryInventory(t *testing.T) {
	mems := Memories()
	if len(mems) < 20 {
		t.Fatalf("only %d memories; the paper says tens", len(mems))
	}
	words, sp, tp := 0, 0, 0
	seen := make(map[string]bool)
	for _, m := range mems {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if seen[m.Name] {
			t.Fatalf("duplicate macro %s", m.Name)
		}
		seen[m.Name] = true
		words += m.Words
		if m.Kind == memory.TwoPort {
			tp++
		} else {
			sp++
		}
	}
	if sp == 0 || tp == 0 {
		t.Fatal("inventory must mix single-port and two-port macros")
	}
	// 10N March C- over the inventory defines the BIST spine; it must sit
	// in the paper's total-test-time regime (~4.37M cycles).
	if cycles := 10 * words; cycles < 4200000 || cycles > 4500000 {
		t.Fatalf("BIST spine = %d cycles, outside the calibrated regime", cycles)
	}
}

func TestBuildSOC(t *testing.T) {
	d, err := BuildSOC()
	if err != nil {
		t.Fatal(err)
	}
	if d.TopModule() == nil || d.Top != "soc" {
		t.Fatal("missing top")
	}
	for _, m := range []string{"core_USB", "core_TV", "core_JPEG", "pll", "processor", "extmem", "glue"} {
		if d.Module(m) == nil {
			t.Fatalf("module %s missing", m)
		}
	}
	if issues := d.Lint(); len(issues) != 0 {
		t.Fatalf("lint: %v", issues)
	}
	// Chip logic (behavioural blocks) near 170K gates, the paper's 0.3%
	// overhead base.
	logic := 0.0
	for _, name := range d.ModuleNames() {
		m := d.Modules[name]
		if m.Behavioral && m.Attrs["macro"] != "sram" {
			logic += m.AreaOverride
		}
	}
	if logic < 140000 || logic > 220000 {
		t.Fatalf("chip logic = %.0f gates, outside the calibrated regime", logic)
	}
}

func TestResources(t *testing.T) {
	r := Resources()
	if r.TestPins <= 0 || r.FuncPins <= 0 || r.MaxPower <= 0 {
		t.Fatalf("resources = %+v", r)
	}
}

func TestInterconnectsWellFormed(t *testing.T) {
	wires := Interconnects()
	if len(wires) != 24 {
		t.Fatalf("interconnects = %d, want 24", len(wires))
	}
	byName := map[string]int{"USB": 0, "TV": 0, "JPEG": 0}
	po := map[string]int{"USB": 104, "TV": 40, "JPEG": 104}
	pi := map[string]int{"USB": 221, "TV": 25, "JPEG": 165}
	for _, w := range wires {
		if _, ok := byName[w.FromCore]; !ok {
			t.Fatalf("unknown source %s", w.FromCore)
		}
		if _, ok := byName[w.ToCore]; !ok {
			t.Fatalf("unknown sink %s", w.ToCore)
		}
		if w.FromPO < 0 || w.FromPO >= po[w.FromCore] {
			t.Fatalf("PO %d out of range for %s", w.FromPO, w.FromCore)
		}
		if w.ToPI < 0 || w.ToPI >= pi[w.ToCore] {
			t.Fatalf("PI %d out of range for %s", w.ToPI, w.ToCore)
		}
	}
	// No two wires share a sink input.
	sinks := make(map[[2]interface{}]bool)
	for _, w := range wires {
		k := [2]interface{}{w.ToCore, w.ToPI}
		if sinks[k] {
			t.Fatalf("sink %s.pi[%d] driven twice", w.ToCore, w.ToPI)
		}
		sinks[k] = true
	}
}
