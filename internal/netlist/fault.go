package netlist

import (
	"fmt"
	"sort"
)

// SAFault is one single stuck-at fault site on a flattened gate port.  The
// classic structural test model pins one input or output pin of one
// primitive cell to a constant and asks whether any applied pattern makes
// the difference visible at an observable output.
type SAFault struct {
	Gate  string // flattened instance name, e.g. "u_seq/u_op0"
	Port  string // formal port on the cell, e.g. "A", "Z", "D", "Q"
	Value bool   // stuck-at value: false = SA0, true = SA1
}

func (f SAFault) String() string {
	sa := "SA0"
	if f.Value {
		sa = "SA1"
	}
	return fmt.Sprintf("%s/%s %s", f.Gate, f.Port, sa)
}

// enumerateFaults lists both stuck-at polarities of every connected input
// and output port of every flattened gate, sorted by gate name, port name
// and polarity so campaigns are deterministic regardless of worker count.
func enumerateFaults(gates []*flatGate) []SAFault {
	var sites []SAFault
	for _, g := range gates {
		ports := make([]string, 0, len(g.cell.Inputs)+len(g.cell.Outputs))
		ports = append(ports, g.cell.Inputs...)
		ports = append(ports, g.cell.Outputs...)
		for _, p := range ports {
			if _, ok := g.conns[p]; !ok {
				continue // unconnected pin: nothing to observe
			}
			sites = append(sites,
				SAFault{Gate: g.name, Port: p, Value: false},
				SAFault{Gate: g.name, Port: p, Value: true})
		}
	}
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.Gate != b.Gate {
			return a.Gate < b.Gate
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return !a.Value && b.Value
	})
	return sites
}

// Faults enumerates every injectable stuck-at site of the flattened design
// (two polarities per connected gate pin), in deterministic order.
func (s *Simulator) Faults() []SAFault { return enumerateFaults(s.gates) }

// Inject forces a stuck-at fault on one port of one flattened gate.  An
// input-port fault is seen only by that gate; an output-port fault drives
// the attached net (and hence all fanout).  Multiple faults may be active
// at once; ClearFaults removes them all.
func (s *Simulator) Inject(gate, port string, value bool) error {
	for _, g := range s.gates {
		if g.name != gate {
			continue
		}
		for _, f := range g.cell.Inputs {
			if f == port {
				if g.forceIn == nil {
					g.forceIn = make(map[string]bool, 1)
				}
				g.forceIn[port] = value
				return nil
			}
		}
		for _, f := range g.cell.Outputs {
			if f == port {
				if g.forceOut == nil {
					g.forceOut = make(map[string]bool, 1)
				}
				g.forceOut[port] = value
				return nil
			}
		}
		return fmt.Errorf("netlist: gate %s (%s) has no port %s", gate, g.cell.Name, port)
	}
	return fmt.Errorf("netlist: no gate named %s", gate)
}

// ClearFaults removes every injected fault.  Net values downstream of a
// removed fault are stale until the next Settle.
func (s *Simulator) ClearFaults() {
	for _, g := range s.gates {
		g.forceIn, g.forceOut = nil, nil
	}
}

// Reset returns every net and every sequential state bit to 0 and settles.
// Injected faults stay active across a Reset.
func (s *Simulator) Reset() error {
	for n := range s.values {
		s.values[n] = false
	}
	for _, g := range s.gates {
		g.state, g.next = false, false
	}
	return s.Settle()
}
