package march

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestComplexities(t *testing.T) {
	want := map[string]int{
		"MSCAN": 4, "MATS+": 5, "March X": 6, "March Y": 8,
		"March C-": 10, "March A": 15, "March B": 17, "March LR": 14,
	}
	for _, a := range Catalog() {
		if got := a.Complexity(); got != want[a.Name] {
			t.Errorf("%s complexity = %d, want %d", a.Name, got, want[a.Name])
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s failed validation: %v", a.Name, err)
		}
	}
}

func TestLength(t *testing.T) {
	if got := MarchCMinus().Length(1024); got != 10240 {
		t.Fatalf("March C- length(1024) = %d, want 10240", got)
	}
	if got := MSCAN().Length(0); got != 0 {
		t.Fatalf("length(0) = %d", got)
	}
}

func TestByName(t *testing.T) {
	a, ok := ByName("March C-")
	if !ok || a.Complexity() != 10 {
		t.Fatalf("ByName(March C-) = %v, %v", a, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted unknown algorithm")
	}
}

func TestStringAndParseRoundTrip(t *testing.T) {
	for _, a := range Catalog() {
		s := a.String()
		back, err := Parse(a.Name, s)
		if err != nil {
			t.Fatalf("%s: parse(%q): %v", a.Name, s, err)
		}
		if back.String() != s {
			t.Fatalf("%s round trip: %q != %q", a.Name, back.String(), s)
		}
	}
}

func TestParseVariants(t *testing.T) {
	a, err := Parse("mats+", "b(w0); ^(R0, W1); v(r1,w0)")
	if err != nil {
		t.Fatal(err)
	}
	if a.Complexity() != 5 {
		t.Fatalf("complexity = %d", a.Complexity())
	}
	if a.Elements[1].Order != Up || a.Elements[2].Order != Down {
		t.Fatalf("orders = %v", a.Elements)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"u r0",         // missing parens
		"x(r0)",        // unknown order
		"u(q0)",        // unknown op
		"u()",          // empty element
		"{ u(r0,w1) }", // reads before init write
		"",             // no elements
	} {
		if _, err := Parse("bad", bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := Algorithm{Name: "bad", Elements: []Element{{Up, []Op{{Read: false, Value: 7}}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("bad op value accepted")
	}
	empty := Algorithm{Name: "empty", Elements: []Element{{Up, nil}}}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty element accepted")
	}
}

func TestExpandOrderAndCount(t *testing.T) {
	a := MATSPlus()
	accs := a.Expand(4)
	if len(accs) != a.Length(4) {
		t.Fatalf("expand length = %d, want %d", len(accs), a.Length(4))
	}
	// Element 0: b(w0) ascending addresses 0..3.
	for i := 0; i < 4; i++ {
		if accs[i].Addr != i || accs[i].Op != W0 || accs[i].Elem != 0 {
			t.Fatalf("acc[%d] = %+v", i, accs[i])
		}
	}
	// Element 2: d(r1,w0) descending 3..0.
	tail := accs[len(accs)-8:]
	wantAddrs := []int{3, 3, 2, 2, 1, 1, 0, 0}
	for i, acc := range tail {
		if acc.Addr != wantAddrs[i] || acc.Elem != 2 {
			t.Fatalf("tail[%d] = %+v, want addr %d", i, acc, wantAddrs[i])
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	count := 0
	MarchCMinus().Walk(100, func(Access) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("walk visited %d, want 7", count)
	}
}

// Property: for any (small) algorithm built from valid ops and any memory
// size, Expand emits exactly Complexity()*words accesses, each with a valid
// address, and per element the addresses are monotone in the declared order.
func TestExpandProperties(t *testing.T) {
	f := func(orderSeed []uint8, words uint8) bool {
		w := int(words%64) + 1
		a := Algorithm{Name: "prop", Elements: []Element{{Either, []Op{W0}}}}
		for _, s := range orderSeed {
			if len(a.Elements) >= 6 {
				break
			}
			e := Element{Order: Order(s % 3), Ops: []Op{R0, W1, R1, W0}[:s%4+1]}
			a.Elements = append(a.Elements, e)
		}
		accs := a.Expand(w)
		if len(accs) != a.Complexity()*w {
			return false
		}
		for _, acc := range accs {
			if acc.Addr < 0 || acc.Addr >= w {
				return false
			}
		}
		// Check per-element address monotonicity.
		for ei, e := range a.Elements {
			var addrs []int
			for _, acc := range accs {
				if acc.Elem == ei {
					addrs = append(addrs, acc.Addr)
				}
			}
			for i := 1; i < len(addrs); i++ {
				if e.Order == Down {
					if addrs[i] > addrs[i-1] {
						return false
					}
				} else if addrs[i] < addrs[i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringNotation(t *testing.T) {
	s := MarchCMinus().String()
	want := "{ b(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); b(r0) }"
	if s != want {
		t.Fatalf("March C- notation = %q, want %q", s, want)
	}
	if !strings.Contains(MarchB().String(), "u(r0,w1,r1,w0,r0,w1)") {
		t.Fatalf("March B notation = %q", MarchB().String())
	}
}
