// The paper's case study end to end: rebuild the DSC controller chip,
// run STEAC + BRAINS on it, print the evaluation tables, and verify the
// translated patterns (all ~4.4 million tester cycles) on the chip model.
package main

import (
	"context"
	"fmt"
	"log"

	"steac/internal/brains"
	"steac/internal/core"
	"steac/internal/dsc"
	"steac/internal/report"
)

func main() {
	soc, err := dsc.BuildSOC()
	if err != nil {
		log.Fatal(err)
	}
	stils, err := core.EmitSTIL(dsc.Cores())
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.RunFlowContext(context.Background(), core.FlowInput{
		STIL:        stils,
		SOC:         soc,
		Resources:   dsc.Resources(),
		Memories:    dsc.Memories(),
		BISTOptions: brains.Options{Grouping: brains.GroupPerMemory},
		Verify:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(core.Table1(res.Cores))
	fmt.Println()
	fmt.Print(core.ComparisonReport(res))
	fmt.Println()
	fmt.Print(core.IOReport(res.Cores))
	fmt.Println()
	fmt.Print(core.AreaReport(res))
	fmt.Println()
	fmt.Printf("ATE verification: PASS — %s tester cycles applied, 0 mismatches\n",
		report.Comma(res.Verify.Cycles))
	fmt.Printf("flow wall time: %s (STIL parse → BRAINS → schedule → insert → translate → verify)\n",
		res.Elapsed)
}
