package memfault

import (
	"context"
	"reflect"
	"testing"

	"steac/internal/march"
	"steac/internal/memory"
)

// TestCoverageParallelDeterminism checks the tentpole guarantee: a parallel
// campaign is bit-identical to a serial one for every algorithm, geometry
// and option set, because aggregation happens in fault-list order.
func TestCoverageParallelDeterminism(t *testing.T) {
	configs := []memory.Config{
		cfg16x4,
		{Name: "w32x8", Words: 32, Bits: 8},
		{Name: "tp", Words: 16, Bits: 4, Kind: memory.TwoPort},
	}
	algs := []march.Algorithm{
		march.MSCAN(), march.MATSPlus(), march.MarchCMinus(), march.MarchLR(),
	}
	opts := []Options{
		{},
		{Backgrounds: []uint64{0x0, 0x5}},
		{PauseBefore: []int{1}, MaxUndetected: -1},
	}
	for _, cfg := range configs {
		faults := AllFaults(cfg)
		for _, alg := range algs {
			for oi, base := range opts {
				serial, parallel := base, base
				serial.Workers = 1
				parallel.Workers = 8
				want, err := CoverageContext(context.Background(), alg, cfg, faults, serial)
				if err != nil {
					t.Fatalf("%s/%s opts[%d] serial: %v", cfg.Name, alg.Name, oi, err)
				}
				got, err := CoverageContext(context.Background(), alg, cfg, faults, parallel)
				if err != nil {
					t.Fatalf("%s/%s opts[%d] parallel: %v", cfg.Name, alg.Name, oi, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("%s/%s opts[%d]: parallel campaign differs from serial\nserial:   %+v\nparallel: %+v",
						cfg.Name, alg.Name, oi, want, got)
				}
			}
		}
	}
}

// TestSimulateMatchesTraceReplay cross-checks the shared-golden-trace engine
// against hand-verified detections: Simulate must behave exactly as before
// the trace rework for a few canonical fault/algorithm pairs.
func TestSimulateMatchesTraceReplay(t *testing.T) {
	sa0 := Fault{Kind: SA0, Victim: Cell{Addr: 3, Bit: 1}}
	det, err := Simulate(march.MSCAN(), cfg16x4, []Fault{sa0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !det.Detected {
		t.Fatal("MSCAN must detect SA0")
	}
	sof := Fault{Kind: SOF, Victim: Cell{Addr: 5, Bit: 0}}
	det, err = Simulate(march.MSCAN(), cfg16x4, []Fault{sof}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if det.Detected {
		t.Fatal("MSCAN must miss SOF (needs r-after-w of same value)")
	}
}

func TestMaxUndetected(t *testing.T) {
	cfg := memory.Config{Name: "u", Words: 64, Bits: 8}
	faults := AllFaults(cfg)
	// MSCAN misses far more than 40 faults on this geometry.
	camp, err := CoverageContext(context.Background(), march.MSCAN(), cfg, faults, Options{})
	if err != nil {
		t.Fatal(err)
	}
	missed := camp.Total - camp.Detected
	if missed <= 40 {
		t.Fatalf("fixture too easy: only %d misses", missed)
	}
	if len(camp.Undetected) != 32 {
		t.Errorf("default cap: got %d undetected, want 32", len(camp.Undetected))
	}

	camp, err = CoverageContext(context.Background(), march.MSCAN(), cfg, faults, Options{MaxUndetected: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Undetected) != 5 {
		t.Errorf("cap 5: got %d undetected", len(camp.Undetected))
	}

	camp, err = CoverageContext(context.Background(), march.MSCAN(), cfg, faults, Options{MaxUndetected: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Undetected) != missed {
		t.Errorf("uncapped: got %d undetected, want every surviving fault (%d)",
			len(camp.Undetected), missed)
	}
}

// TestFaultyResetEquivalence verifies the scratch-reuse primitive: Reset must
// leave the machine in the exact state NewFaulty produces.
func TestFaultyResetEquivalence(t *testing.T) {
	faultSets := [][]Fault{
		nil,
		{{Kind: SA1, Victim: Cell{Addr: 2, Bit: 3}}},
		{{Kind: AF, Victim: Cell{Addr: 6}, MapAddr: 7}},
		{{Kind: CFin, Aggr: Cell{Addr: 1, Bit: 0}, AggrRise: true, Victim: Cell{Addr: 2, Bit: 0}}},
	}
	scratch, err := NewFaulty(cfg16x4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, fs := range faultSets {
		// Dirty the scratch machine first.
		scratch.Write(0, 0xF)
		scratch.Read(0)
		if err := scratch.Reset(fs); err != nil {
			t.Fatalf("set %d: Reset: %v", i, err)
		}
		fresh, err := NewFaulty(cfg16x4, fs)
		if err != nil {
			t.Fatalf("set %d: NewFaulty: %v", i, err)
		}
		if !reflect.DeepEqual(scratch.cells, fresh.cells) ||
			!reflect.DeepEqual(scratch.sense, fresh.sense) {
			t.Errorf("set %d: Reset state differs from NewFaulty", i)
		}
		// Behaviour must match too.
		scratch.Write(3, 0xA)
		fresh.Write(3, 0xA)
		if g, w := scratch.Read(3), fresh.Read(3); g != w {
			t.Errorf("set %d: read after reset: got %x want %x", i, g, w)
		}
		scratch.Reset(nil)
	}
	// Reset must reject invalid faults like NewFaulty does.
	bad := []Fault{{Kind: SA0, Victim: Cell{Addr: 999, Bit: 0}}}
	if err := scratch.Reset(bad); err == nil {
		t.Error("Reset accepted out-of-range fault")
	}
}
