package scenario

import (
	"errors"
	"reflect"
	"runtime"
	"testing"

	"steac/internal/dsc"
)

// TestDSCReproducesTable1 is the anchor of the whole registry: the fully
// pinned dsc builtin must regenerate the hand-written dsc package's chip
// exactly — cores, memories, blocks and resource budget — for any seed,
// because a point-mass spec draws nothing from the sample stream.
func TestDSCReproducesTable1(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		chip, err := GenerateByName("dsc", seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(chip.Cores, dsc.Cores()) {
			t.Fatalf("seed %d: cores diverge from dsc.Cores()", seed)
		}
		if !reflect.DeepEqual(chip.Memories, dsc.Memories()) {
			t.Fatalf("seed %d: memories diverge from dsc.Memories()", seed)
		}
		if !reflect.DeepEqual(chip.Resources, dsc.Resources()) {
			t.Fatalf("seed %d: resources diverge from dsc.Resources(): %+v", seed, chip.Resources)
		}
		if !reflect.DeepEqual(chip.Blocks, dsc.ChipAreas()) {
			t.Fatalf("seed %d: blocks diverge from dsc.ChipAreas()", seed)
		}
		if len(chip.ExtraBIST) != 0 {
			t.Fatalf("seed %d: dsc chip has unexpected logic BIST", seed)
		}
	}
}

// TestDSCNetlistMatchesHandWritten: the generated dsc chip's SOC netlist
// must be byte-identical to dsc.BuildSOC()'s, so `-scenario dsc` runs the
// exact flow the golden files and the steacd smoke test pin down.
func TestDSCNetlistMatchesHandWritten(t *testing.T) {
	chip, err := GenerateByName("dsc", 99)
	if err != nil {
		t.Fatal(err)
	}
	got, err := chip.BuildSOC()
	if err != nil {
		t.Fatal(err)
	}
	want, err := dsc.BuildSOC()
	if err != nil {
		t.Fatal(err)
	}
	gotV, err := got.EmitVerilogString()
	if err != nil {
		t.Fatal(err)
	}
	wantV, err := want.EmitVerilogString()
	if err != nil {
		t.Fatal(err)
	}
	if gotV != wantV {
		t.Fatalf("generated dsc netlist differs from dsc.BuildSOC()")
	}
}

// TestDSCSelectorsMatchFlowChoices: the generic chip selectors must pick
// exactly what cmd/dscflow hard-codes for the DSC, so generalizing the
// xcheck driver does not change its dsc output.
func TestDSCSelectorsMatchFlowChoices(t *testing.T) {
	chip, err := GenerateByName("dsc", 0)
	if err != nil {
		t.Fatal(err)
	}
	pair, ok := chip.PairMemories()
	if !ok || pair[0].Name != "scr1" || pair[1].Name != "scr2" {
		t.Fatalf("PairMemories = %v, %v (want scr1, scr2)", pair, ok)
	}
	if wc := chip.WrapperCore(); wc == nil || wc.Name != "TV" {
		t.Fatalf("WrapperCore = %v (want TV)", wc)
	}
	small := chip.SmallestMemories(2)
	if len(small) != 2 || small[0].Name != "extfifo" || small[1].Name != "scr2" {
		t.Fatalf("SmallestMemories(2) = %v (want extfifo, scr2)", small)
	}
}

// TestGenerateDeterministic: same (spec, seed) must yield a DeepEqual chip
// on repeated runs and regardless of GOMAXPROCS; different seeds on a
// randomized scenario must differ somewhere.
func TestGenerateDeterministic(t *testing.T) {
	for _, name := range Names() {
		chips := make([]*Chip, 3)
		for i := range chips {
			old := runtime.GOMAXPROCS([]int{1, runtime.NumCPU(), 2}[i%3])
			c, err := GenerateByName(name, 1234)
			runtime.GOMAXPROCS(old)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			chips[i] = c
		}
		if !reflect.DeepEqual(chips[0], chips[1]) || !reflect.DeepEqual(chips[1], chips[2]) {
			t.Fatalf("%s: repeated generation diverges", name)
		}
		// The emitted SOC netlist must be byte-identical too — the chip
		// inventory could DeepEqual while emission ordering drifted.
		ref := ""
		for i, c := range chips {
			d, err := c.BuildSOC()
			if err != nil {
				t.Fatalf("%s: BuildSOC: %v", name, err)
			}
			v, err := d.EmitVerilogString()
			if err != nil {
				t.Fatalf("%s: emit: %v", name, err)
			}
			if i == 0 {
				ref = v
			} else if v != ref {
				t.Fatalf("%s: netlist bytes differ between identical generations", name)
			}
		}
	}
	// A randomized scenario must actually vary with the seed.
	a, err := GenerateByName("hybrid-power", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateByName("hybrid-power", 2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Cores, b.Cores) && reflect.DeepEqual(a.Memories, b.Memories) {
		t.Fatal("hybrid-power: seeds 1 and 2 sample identical chips")
	}
}

// TestP1500LBISTMerge: the p1500-lbist builtin inherits hybrid-power's
// structure through the merge path and gains LBIST sessions on most seeds.
func TestP1500LBISTMerge(t *testing.T) {
	spec, err := Resolve("p1500-lbist")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Resolve("hybrid-power")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec.Cores, base.Cores) || !reflect.DeepEqual(spec.Memories, base.Memories) {
		t.Fatal("derived spec does not inherit base cores/memories")
	}
	if spec.Resources.PowerBudget != base.Resources.PowerBudget {
		t.Fatal("derived spec does not inherit the power budget")
	}
	if spec.LogicBIST == nil || spec.LogicBIST.Fraction != 0.75 {
		t.Fatalf("LogicBIST not overlaid: %+v", spec.LogicBIST)
	}
	withLBIST := 0
	for seed := int64(0); seed < 8; seed++ {
		chip, err := GenerateByName("p1500-lbist", seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(chip.ExtraBIST) > 0 {
			withLBIST++
			for _, g := range chip.ExtraBIST {
				if g.Cycles <= 0 || g.Power <= 0 {
					t.Fatalf("seed %d: degenerate LBIST group %+v", seed, g)
				}
			}
		}
	}
	if withLBIST == 0 {
		t.Fatal("no seed in 0..7 produced an LBIST session at fraction 0.75")
	}
}

// TestMergeSemantics exercises replace / remove / append / block deletion /
// field-wise resource overlay on a synthetic pair.
func TestMergeSemantics(t *testing.T) {
	base := &Spec{
		Name: "m-base",
		Cores: []CoreSpec{
			{Name: "a", PIs: fixed(10)},
			{Name: "b", PIs: fixed(20)},
		},
		Memories: []MemorySpec{
			{Name: "m1", Words: fixed(64)},
			{Name: "m2", Words: fixed(128)},
		},
		Blocks:    map[string]float64{"glue": 100, "io": 200},
		Resources: &ResourceSpec{TestPins: 30, FuncPins: 111, MaxPower: 9},
		BIST:      &BISTSpec{Grouping: "per-memory", Backgrounds: 2},
	}
	child := &Spec{
		Name: "m-child",
		Cores: []CoreSpec{
			{Name: "b", PIs: fixed(21)}, // replace
			{Name: "c", PIs: fixed(30)}, // append
			{Name: "zz", Remove: true},  // removing an absent template: no-op
		},
		Memories: []MemorySpec{
			{Name: "m1", Remove: true}, // delete
		},
		Blocks:    map[string]float64{"io": 0, "pads": 50}, // delete io, add pads
		Resources: &ResourceSpec{TestPins: 44},             // only pins override
		BIST:      &BISTSpec{Algorithm: "March C-"},
	}
	got := merge(base, child)
	if got.Name != "m-child" {
		t.Fatalf("name = %q", got.Name)
	}
	wantCores := []CoreSpec{
		{Name: "a", PIs: fixed(10)},
		{Name: "b", PIs: fixed(21)},
		{Name: "c", PIs: fixed(30)},
	}
	if !reflect.DeepEqual(got.Cores, wantCores) {
		t.Fatalf("cores = %+v", got.Cores)
	}
	if len(got.Memories) != 1 || got.Memories[0].Name != "m2" {
		t.Fatalf("memories = %+v", got.Memories)
	}
	if !reflect.DeepEqual(got.Blocks, map[string]float64{"glue": 100, "pads": 50}) {
		t.Fatalf("blocks = %+v", got.Blocks)
	}
	r := got.Resources
	if r.TestPins != 44 || r.FuncPins != 111 || r.MaxPower != 9 {
		t.Fatalf("resources = %+v", r)
	}
	if got.BIST.Algorithm != "March C-" || got.BIST.Grouping != "per-memory" || got.BIST.Backgrounds != 2 {
		t.Fatalf("bist = %+v", got.BIST)
	}
	// Neither input mutated.
	if len(base.Cores) != 2 || len(base.Memories) != 2 || len(base.Blocks) != 2 {
		t.Fatal("merge mutated the base spec")
	}
}

// TestTypedErrors pins every failure class onto its sentinel.
func TestTypedErrors(t *testing.T) {
	// Base-chain cycle (registered once; the registry is process-global).
	Register(&Spec{Name: "t-cyc-a", Base: "t-cyc-b", Cores: []CoreSpec{{Name: "x"}}})
	Register(&Spec{Name: "t-cyc-b", Base: "t-cyc-a", Cores: []CoreSpec{{Name: "x"}}})

	cases := []struct {
		name string
		err  error
		want error
	}{
		{"unknown scenario", errOf(GenerateByName("no-such-chip", 1)), ErrUnknownScenario},
		{"base cycle", errOf(GenerateByName("t-cyc-a", 1)), ErrBaseCycle},
		{"unknown base of user spec", errOfSpec(LoadSpec([]byte(`{"name":"u","base":"nope","cores":[{"name":"x"}]}`))), ErrUnknownScenario},
		{"unknown JSON field", errOfSpec(LoadSpec([]byte(`{"name":"u","coresz":[]}`))), ErrBadSpec},
		{"trailing JSON", errOfSpec(LoadSpec([]byte(`{"name":"u","cores":[{"name":"x"}]} {}`))), ErrBadSpec},
		{"min > max", errOfSpec(LoadSpec([]byte(`{"name":"u","cores":[{"name":"x","pis":{"min":9,"max":3}}]}`))), ErrBadDistribution},
		{"choice out of range", errOfSpec(LoadSpec([]byte(`{"name":"u","cores":[{"name":"x","chains":{"choices":[99]}}]}`))), ErrBadDistribution},
		{"duplicate core template", errOfSpec(LoadSpec([]byte(`{"name":"u","cores":[{"name":"x"},{"name":"X"}]}`))), ErrDuplicateName},
		{"reserved block name", errOfSpec(LoadSpec([]byte(`{"name":"u","cores":[{"name":"x"}],"blocks":{"pll":10}}`))), ErrBadSpec},
		{"bad partitioner", errOfSpec(LoadSpec([]byte(`{"name":"u","cores":[{"name":"x"}],"resources":{"partitioner":"magic"}}`))), ErrBadSpec},
		{"bad march", errOfSpec(LoadSpec([]byte(`{"name":"u","cores":[{"name":"x"}],"bist":{"algorithm":"March ZZZ"}}`))), ErrBadSpec},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !errors.Is(tc.err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, tc.err, tc.want)
		}
	}

	// Instance-level duplicate: a count-2 template whose stamped names
	// collide with a sibling template.
	spec := &Spec{Name: "t-dup-inst", Cores: []CoreSpec{
		{Name: "pe0"},
		{Name: "pe", Count: fixed(2)}, // stamps pe0, pe1
	}}
	if _, err := Generate(spec, 1); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("instance collision: got %v, want ErrDuplicateName", err)
	}
	// Block-name collision with a core instance.
	spec = &Spec{Name: "t-dup-blk", Cores: []CoreSpec{{Name: "glue"}},
		Blocks: map[string]float64{"glue": 10}}
	if _, err := Generate(spec, 1); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("block collision: got %v, want ErrDuplicateName", err)
	}
}

func errOf(_ *Chip, err error) error     { return err }
func errOfSpec(_ *Spec, err error) error { return err }

// TestBuiltinsAllGenerate: every registered builtin must generate cleanly
// across a seed span, and the registry listing is stable and sorted.
func TestBuiltinsAllGenerate(t *testing.T) {
	names := Names()
	wantBuiltins := []string{"dsc", "hybrid-power", "manycore", "memory-heavy", "p1500-lbist"}
	for _, w := range wantBuiltins {
		if _, ok := Lookup(w); !ok {
			t.Fatalf("builtin %q not registered (have %v)", w, names)
		}
	}
	for _, name := range wantBuiltins {
		for seed := int64(0); seed < 10; seed++ {
			chip, err := GenerateByName(name, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if len(chip.Cores) == 0 {
				t.Fatalf("%s seed %d: no cores", name, seed)
			}
			if _, err := chip.BuildSOC(); err != nil {
				t.Fatalf("%s seed %d: socgen: %v", name, seed, err)
			}
		}
	}
}
