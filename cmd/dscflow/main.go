// Command dscflow is the one-shot reproduction driver: it rebuilds the
// paper's DSC controller chip, runs the full STEAC flow on it, and prints
// every table and figure of the evaluation — Table 1, the session-based vs
// non-session-based scheduling comparison, the test-IO analysis, the DFT
// hardware cost, the BIST plan, and the March-efficiency table.
//
// Usage:
//
//	dscflow                  run everything except ATE verification
//	dscflow -verify          also apply all ~4.4M tester cycles (≈5 s)
//	dscflow -table1 ...      print individual sections only
package main

import (
	"flag"
	"fmt"
	"os"

	"steac/internal/brains"
	"steac/internal/core"
	"steac/internal/dsc"
	"steac/internal/memory"
	"steac/internal/pattern"
	"steac/internal/report"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "print Table 1 only")
		schedOn = flag.Bool("schedule", false, "print the scheduling comparison only")
		ioOn    = flag.Bool("io", false, "print the test-IO analysis only")
		areaOn  = flag.Bool("area", false, "print the DFT hardware cost only")
		bistOn  = flag.Bool("bist", false, "print the BIST plan only")
		marchOn = flag.Bool("march", false, "print the March-efficiency table only")
		verify  = flag.Bool("verify", false, "apply the translated patterns on the tester model")
		verilog = flag.Bool("verilog", false, "emit the DFT-ready netlist to stdout")
		ateprog = flag.String("ateprog", "", "write the chip-level tester program (cycle-based ATE file) to this path — the full DSC program is ~4.4M vector lines")
		extest  = flag.Bool("extest", false, "append the EXTEST interconnect-test session (24 glue wires, 10 vectors)")
		workers = flag.Int("workers", 0, "worker goroutines for fault simulation and schedule search (0 = all CPUs)")
	)
	flag.Parse()
	all := !(*table1 || *schedOn || *ioOn || *areaOn || *bistOn || *marchOn || *verilog)

	soc, err := dsc.BuildSOC()
	fail(err)
	stils, err := core.EmitSTIL(dsc.Cores())
	fail(err)
	in := core.FlowInput{
		STIL:        stils,
		SOC:         soc,
		Resources:   dsc.Resources(),
		Memories:    dsc.Memories(),
		BISTOptions: brains.Options{Grouping: brains.GroupPerMemory, Workers: *workers},
		Verify:      *verify,
	}
	in.Resources.Workers = *workers
	if *extest {
		in.Interconnects = dsc.Interconnects()
	}
	res, err := core.RunFlow(in)
	fail(err)
	if *extest && (all || *schedOn) {
		fmt.Printf("EXTEST interconnect session: %d glue wires, %d vectors, %s cycles\n\n",
			len(res.Extest.Wires), res.Extest.Vectors, report.Comma(res.Extest.Cycles))
	}

	if all || *table1 {
		fmt.Print(core.Table1(res.Cores))
		fmt.Println()
	}
	if all || *schedOn {
		fmt.Print(core.ComparisonReport(res))
		fmt.Println()
		fmt.Print(core.ScheduleReport(res.Schedule))
		fmt.Println()
		fmt.Print(core.TimelineReport(res.Schedule, 72))
		fmt.Println()
	}
	if all || *ioOn {
		fmt.Print(core.IOReport(res.Cores))
		fmt.Println()
	}
	if all || *areaOn {
		fmt.Print(core.AreaReport(res))
		fmt.Println()
	}
	if all || *bistOn {
		fmt.Print(brains.Report(res.Brains))
		fmt.Println()
	}
	if all || *marchOn {
		rows, err := brains.EvaluateWorkers(memory.Config{Name: "eval", Words: 16, Bits: 4}, nil, *workers)
		fail(err)
		fmt.Print(brains.EvaluationTable(rows))
		fmt.Println()
	}
	if *verify && res.Verify != nil {
		fmt.Printf("ATE verification: PASS, %s cycles applied, 0 mismatches\n",
			report.Comma(res.Verify.Cycles))
	}
	if *verilog {
		fail(res.Insertion.Design.EmitVerilog(os.Stdout))
	}
	if *ateprog != "" {
		f, err := os.Create(*ateprog)
		fail(err)
		fail(pattern.WriteProgramFile(f, res.Program))
		fail(f.Close())
		fmt.Printf("tester program written to %s (%s cycles)\n",
			*ateprog, report.Comma(res.Program.TotalCycles()))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dscflow:", err)
		os.Exit(1)
	}
}
