package catalog

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden compare report files")

// checkGolden follows the dscflow golden-test pattern: byte-for-byte
// comparison against testdata/<name>.golden, rewritten with -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/catalog -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("%s differs from golden file (run `go test ./internal/catalog -update` if the change is intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// goldenRecords is a fixed population covering every column: feasible and
// infeasible sweep points, a flow run, and coverage campaigns.  Timestamps
// are deliberately set and must never surface in compare output.
func goldenRecords() []Record {
	return []Record{
		{
			Fingerprint: "1111aaaa2222bbbb3333cccc", Tenant: "anon", Kind: KindSched,
			Scenario: "manycore", Seed: 1,
			Config:        Config{TamWidth: 24, Partitioner: "lpt", Algorithm: "March C-", Grouping: "per-memory"},
			Features:      Features{Cores: 6, ScanChains: 12, ScanBits: 3200, ScanPatterns: 240, IOs: 180, Memories: 2, MemoryBits: 4096},
			Metrics:       Metrics{TestCycles: 41872, Sessions: 3, PeakPower: 11.5},
			CreatedUnixMS: 1754000000001,
		},
		{
			Fingerprint: "4444dddd5555eeee6666ffff", Tenant: "anon", Kind: KindSched,
			Scenario: "manycore", Seed: 1,
			Config:        Config{TamWidth: 12, Partitioner: "lpt", Algorithm: "March C-", Grouping: "per-memory"},
			Features:      Features{Cores: 6, ScanChains: 12, ScanBits: 3200, ScanPatterns: 240, IOs: 180, Memories: 2, MemoryBits: 4096},
			Metrics:       Metrics{Infeasible: true},
			CreatedUnixMS: 1754000000002,
		},
		{
			Fingerprint: "7777000088889999aaaabbbb", Tenant: "anon", Kind: KindFlow,
			Scenario: "hybrid-power", Seed: 2,
			Config:        Config{TamWidth: 40, Partitioner: "lpt", Algorithm: "March C-", Grouping: "per-memory", PowerBudget: 18},
			Features:      Features{Cores: 4, ScanChains: 9, ScanBits: 2100, ScanPatterns: 190, FuncPatterns: 1200, IOs: 260, Memories: 5, MemoryBits: 24576},
			Metrics:       Metrics{TestCycles: 96210, Sessions: 5, PeakPower: 17.25},
			CreatedUnixMS: 1754000000003,
		},
		{
			Fingerprint: "ccccdddd1111eeee2222ffff", Tenant: "anon", Kind: KindMemfault,
			Scenario: "memory-heavy", Seed: 3,
			Config:        Config{Algorithm: "March C-"},
			Features:      Features{Cores: 1, Memories: 8, MemoryBits: 16384},
			Metrics:       Metrics{Coverage: 98.4375, Faults: 640, Detected: 630},
			CreatedUnixMS: 1754000000004,
			Result:        json.RawMessage(`{"Algorithm":"March C-"}`),
		},
		{
			Fingerprint: "deadbeefdeadbeefdeadbeef", Tenant: "anon", Kind: KindXCheck,
			Scenario: "p1500-lbist", Seed: 1,
			Config:        Config{TamWidth: 2, Algorithm: "March C-", LogicBIST: true},
			Features:      Features{Cores: 5, ScanChains: 10, ScanBits: 2600, Memories: 6, MemoryBits: 12288},
			Metrics:       Metrics{Coverage: 100, Faults: 214, Detected: 214},
			CreatedUnixMS: 1754000000005,
		},
	}
}

func TestCompareCSVGolden(t *testing.T) {
	checkGolden(t, "compare_csv", CompareRecords(goldenRecords()).CSV())
}

func TestCompareHTMLGolden(t *testing.T) {
	checkGolden(t, "compare_html", CompareRecords(goldenRecords()).HTML())
}

// TestCompareOutputIsClockFree guards the golden determinism contract:
// no rendering of a compare table may contain ingest timestamps.
func TestCompareOutputIsClockFree(t *testing.T) {
	recs := goldenRecords()
	c := CompareRecords(recs)
	blob, err := c.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range []string{string(blob), c.CSV(), c.HTML()} {
		if strings.Contains(out, "1754000000") {
			t.Fatal("compare output leaked an ingest timestamp")
		}
	}
	// Input order must not matter.
	rev := make([]Record, len(recs))
	for i, r := range recs {
		rev[len(recs)-1-i] = r
	}
	if CompareRecords(rev).CSV() != c.CSV() {
		t.Fatal("compare table depends on record order")
	}
}
