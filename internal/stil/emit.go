package stil

import (
	"fmt"
	"strings"

	"steac/internal/testinfo"
)

// Emit serializes a core's test information to STIL, the hand-off format
// between the ATPG and STEAC.  Parse(Emit(c)) reconstructs c.
func Emit(c *testinfo.Core) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("STIL 1.0;\n")
	fmt.Fprintf(&sb, "{* core name=%s soft=%t *}\n", c.Name, c.Soft)

	sb.WriteString("Signals {\n")
	writeSig := func(role, name, dir string) {
		if role != "" {
			fmt.Fprintf(&sb, "  {* %s *} %s %s;\n", role, name, dir)
		} else {
			fmt.Fprintf(&sb, "  %s %s;\n", name, dir)
		}
	}
	for _, ck := range c.Clocks {
		writeSig("clock", ck, "In")
	}
	for _, r := range c.Resets {
		writeSig("reset", r, "In")
	}
	for _, se := range c.ScanEnables {
		writeSig("se", se, "In")
	}
	for _, te := range c.TestEnables {
		writeSig("te", te, "In")
	}
	for _, ch := range c.ScanChains {
		writeSig("si", ch.In, "In")
		if ch.SharedOut {
			writeSig("so-shared", ch.Out, "Out")
		} else {
			writeSig("so", ch.Out, "Out")
		}
	}
	if c.PIs > 0 {
		writeSig("", fmt.Sprintf("pi[0..%d]", c.PIs-1), "In")
	}
	if c.POs > 0 {
		writeSig("", fmt.Sprintf("po[0..%d]", c.POs-1), "Out")
	}
	sb.WriteString("}\n")

	if len(c.ScanChains) > 0 {
		sis := make([]string, len(c.ScanChains))
		sos := make([]string, len(c.ScanChains))
		for i, ch := range c.ScanChains {
			sis[i] = ch.In
			sos[i] = ch.Out
		}
		sb.WriteString("SignalGroups {\n")
		fmt.Fprintf(&sb, "  \"all_si\" = '%s';\n", strings.Join(sis, " + "))
		fmt.Fprintf(&sb, "  \"all_so\" = '%s';\n", strings.Join(sos, " + "))
		sb.WriteString("}\n")
		sb.WriteString("ScanStructures {\n")
		for _, ch := range c.ScanChains {
			fmt.Fprintf(&sb, "  ScanChain \"%s\" {\n", ch.Name)
			fmt.Fprintf(&sb, "    ScanLength %d;\n", ch.Length)
			fmt.Fprintf(&sb, "    ScanIn %s;\n", ch.In)
			fmt.Fprintf(&sb, "    ScanOut %s;\n", ch.Out)
			if ch.Clock != "" {
				fmt.Fprintf(&sb, "    ScanMasterClock %s;\n", ch.Clock)
			}
			if ch.SharedOut {
				sb.WriteString("    {* shared-out *}\n")
			}
			sb.WriteString("  }\n")
		}
		sb.WriteString("}\n")
	}

	sb.WriteString("Timing {\n  WaveformTable \"wft\" {\n    Period '40ns';\n  }\n}\n")

	if len(c.Patterns) > 0 {
		sb.WriteString("PatternBurst \"burst\" {\n  PatList {\n")
		for _, p := range c.Patterns {
			fmt.Fprintf(&sb, "    \"%s\";\n", p.Name)
		}
		sb.WriteString("  }\n}\n")
		sb.WriteString("PatternExec {\n  PatternBurst \"burst\";\n}\n")
		for _, p := range c.Patterns {
			typ := "Scan"
			if p.Type == testinfo.Functional {
				typ = "Functional"
			}
			fmt.Fprintf(&sb, "Pattern \"%s\" {\n  {* patterns type=%s count=%d seed=%d *}\n}\n",
				p.Name, typ, p.Count, p.Seed)
		}
	}
	return sb.String(), nil
}
