// Command benchdiff compares two BENCH JSON files produced by
// `dscflow -bench-json` and fails on performance regressions.
//
// Usage:
//
//	benchdiff [-threshold 15] [-json out.json] OLD.json NEW.json
//
// Exit status: 0 when no op regressed, 1 when any op slowed down past the
// threshold, went missing, or changed its functional result fingerprint,
// 2 on usage or file errors.  The threshold is a percentage of the old wall
// time; improvements are reported but never fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"steac/internal/obs/bench"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 15, "regression threshold in percent of the old wall time")
		jsonOut   = flag.String("json", "", "also write the comparison summary as JSON to this path")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-json out.json] OLD.json NEW.json")
		os.Exit(2)
	}
	old, err := bench.Load(flag.Arg(0))
	fail(err)
	new, err := bench.Load(flag.Arg(1))
	fail(err)

	sum := bench.Compare(old, new, *threshold)
	sum.Write(os.Stdout)
	if *jsonOut != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		fail(err)
		fail(os.WriteFile(*jsonOut, append(data, '\n'), 0o644))
	}
	if sum.Failed() {
		os.Exit(1)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
}
