package memory

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "m", Words: 16, Bits: 8, Kind: SinglePort}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{Name: "w0", Words: 0, Bits: 8},
		{Name: "b0", Words: 8, Bits: 0},
		{Name: "b65", Words: 8, Bits: 65},
		{Name: "k", Words: 8, Bits: 8, Kind: Kind(9)},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %v accepted", bad)
		}
	}
}

func TestConfigDerived(t *testing.T) {
	c := Config{Name: "m", Words: 2048, Bits: 16}
	if c.BitCount() != 32768 {
		t.Fatalf("bit count = %d", c.BitCount())
	}
	if c.AddrBits() != 11 {
		t.Fatalf("addr bits = %d", c.AddrBits())
	}
	if c.Mask() != 0xFFFF {
		t.Fatalf("mask = %x", c.Mask())
	}
	if (Config{Words: 1, Bits: 1}).AddrBits() != 1 {
		t.Fatal("1-word RAM needs 1 address bit")
	}
	if (Config{Words: 8, Bits: 64}).Mask() != ^uint64(0) {
		t.Fatal("64-bit mask wrong")
	}
	s := Config{Name: "ram", Words: 256, Bits: 8, Kind: TwoPort}.String()
	if !strings.Contains(s, "256x8") || !strings.Contains(s, "2-port") {
		t.Fatalf("string = %q", s)
	}
}

func TestReadWrite(t *testing.T) {
	m := MustNew(Config{Name: "m", Words: 8, Bits: 4})
	m.Write(3, 0xFF) // masked to 4 bits
	if got := m.Read(3); got != 0xF {
		t.Fatalf("read = %x, want f", got)
	}
	if got := m.Read(4); got != 0 {
		t.Fatalf("untouched word = %x", got)
	}
	// Address wrap.
	m.Write(11, 0x5)
	if got := m.Read(3); got != 0x5 {
		t.Fatalf("wrapped write: read(3) = %x, want 5", got)
	}
	if m.Reads != 3 || m.Writes != 2 {
		t.Fatalf("counters = %d reads, %d writes", m.Reads, m.Writes)
	}
}

func TestTwoPort(t *testing.T) {
	m := MustNew(Config{Name: "m", Words: 4, Bits: 8, Kind: TwoPort})
	m.Write(2, 0xAB)
	if got := m.ReadB(2); got != 0xAB {
		t.Fatalf("port B read = %x", got)
	}
	sp := MustNew(Config{Name: "sp", Words: 4, Bits: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("ReadB on single-port did not panic")
		}
	}()
	sp.ReadB(0)
}

func TestFill(t *testing.T) {
	m := MustNew(Config{Name: "m", Words: 16, Bits: 8})
	m.Fill(0x3C)
	for a := 0; a < 16; a++ {
		if m.Read(a) != 0x3C {
			t.Fatalf("fill missed addr %d", a)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Name: "bad", Words: -1, Bits: 8}); err == nil {
		t.Fatal("bad config accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(Config{Name: "bad", Words: 0, Bits: 0})
}

// Property: a write followed by a read of the same address returns the
// written value masked to the word width, for any geometry.
func TestWriteReadProperty(t *testing.T) {
	f := func(words uint16, bits uint8, addr uint16, data uint64) bool {
		w := int(words%4096) + 1
		b := int(bits%64) + 1
		m := MustNew(Config{Name: "p", Words: w, Bits: b})
		m.Write(int(addr), data)
		return m.Read(int(addr)) == data&m.Config().Mask()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: writes to one address never disturb another address (fault-free
// model has no coupling).
func TestNoDisturbProperty(t *testing.T) {
	f := func(a, b uint8, data uint64) bool {
		m := MustNew(Config{Name: "p", Words: 256, Bits: 16})
		ai, bi := int(a), int(b)
		if ai == bi {
			return true
		}
		m.Write(ai, 0x1234)
		m.Write(bi, data)
		return m.Read(ai) == 0x1234
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
