package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"steac/internal/obs"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, blob
}

func decodeEnvelope(t *testing.T, blob []byte) response {
	t.Helper()
	var env response
	if err := json.Unmarshal(blob, &env); err != nil {
		t.Fatalf("bad envelope %s: %v", blob, err)
	}
	return env
}

// blockWorker parks one compute worker on a job that waits for the
// returned release function, and does not return until the worker has
// picked the job up (so the queue slot it used is free again).
func blockWorker(t *testing.T, s *Server) (release func(), done chan jobResult) {
	t.Helper()
	started := make(chan struct{})
	gate := make(chan struct{})
	j, err := s.submit(context.Background(), nil, func(context.Context) (interface{}, error) {
		close(started)
		<-gate
		return nil, nil
	})
	if err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the blocking job")
	}
	var once bool
	return func() {
		if !once {
			once = true
			close(gate)
		}
	}, j.done
}

// TestCacheHitDeterminism is the memoization contract: the second identical
// request is a cache hit with byte-identical results, counted by obs, and
// non-semantic tuning fields (workers, timeout_ms) do not split the key.
func TestCacheHitDeterminism(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	t.Cleanup(func() { _ = s.Drain(context.Background()) })
	body := `{"words":16,"bits":2,"algorithms":["MATS+"]}`

	hits0 := obs.CounterValue("serve.cache_hits")
	miss0 := obs.CounterValue("serve.cache_misses")

	resp1, blob1 := post(t, ts.URL+"/v1/memfault", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d %s", resp1.StatusCode, blob1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("first POST X-Cache = %q, want MISS", got)
	}
	env1 := decodeEnvelope(t, blob1)
	if env1.Cached {
		t.Error("first POST reported cached:true")
	}

	resp2, blob2 := post(t, ts.URL+"/v1/memfault", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d %s", resp2.StatusCode, blob2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("second POST X-Cache = %q, want HIT", got)
	}
	env2 := decodeEnvelope(t, blob2)
	if !env2.Cached {
		t.Error("second POST reported cached:false")
	}
	if !bytes.Equal(env1.Result, env2.Result) {
		t.Errorf("cached result differs from computed result:\nfirst:  %s\nsecond: %s",
			env1.Result, env2.Result)
	}

	// Different tuning, same canonical request: still a hit.
	tuned := `{"words":16,"bits":2,"algorithms":["MATS+"],"workers":3,"timeout_ms":60000}`
	resp3, blob3 := post(t, ts.URL+"/v1/memfault", tuned)
	if resp3.StatusCode != http.StatusOK || !decodeEnvelope(t, blob3).Cached {
		t.Errorf("tuning-only variant missed the cache: %d %s", resp3.StatusCode, blob3)
	}

	if hits := obs.CounterValue("serve.cache_hits") - hits0; hits != 2 {
		t.Errorf("serve.cache_hits delta = %d, want 2", hits)
	}
	if miss := obs.CounterValue("serve.cache_misses") - miss0; miss != 1 {
		t.Errorf("serve.cache_misses delta = %d, want 1", miss)
	}
}

// TestFlowEndpoint drives the full DSC flow through the daemon and pins
// the paper-reproduction headline number.
func TestFlowEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	t.Cleanup(func() { _ = s.Drain(context.Background()) })
	resp, blob := post(t, ts.URL+"/v1/flow", `{"chip":"dsc"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flow: %d %s", resp.StatusCode, blob)
	}
	var out FlowResponse
	if err := json.Unmarshal(decodeEnvelope(t, blob).Result, &out); err != nil {
		t.Fatal(err)
	}
	if out.ScheduleCycles != 4376942 {
		t.Errorf("schedule_cycles = %d, want the headline 4376942", out.ScheduleCycles)
	}
	if len(out.Cores) != 3 || out.BISTGroups != 22 {
		t.Errorf("cores = %v, bist_groups = %d, want 3 cores / 22 groups", out.Cores, out.BISTGroups)
	}
}

// TestSchedEndpoint drives a real scheduling sweep end to end.
func TestSchedEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	t.Cleanup(func() { _ = s.Drain(context.Background()) })
	resp, blob := post(t, ts.URL+"/v1/sched", `{"test_pins":[26,30]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", resp.StatusCode, blob)
	}
	var out SchedResponse
	if err := json.Unmarshal(decodeEnvelope(t, blob).Result, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Points) != 2 {
		t.Fatalf("points = %+v, want 2 entries", out.Points)
	}
	for _, p := range out.Points {
		if !p.Infeasible && p.Cycles <= 0 {
			t.Errorf("feasible point with no cycles: %+v", p)
		}
	}
}

// TestQueueFullRejects is the admission-control contract: with the one
// worker parked and the one queue slot taken, the next request is answered
// 429 + Retry-After immediately instead of waiting.
func TestQueueFullRejects(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	t.Cleanup(func() { _ = s.Drain(context.Background()) })

	release, done1 := blockWorker(t, s) // worker busy, queue empty
	defer release()
	filler, err := s.submit(context.Background(), nil, func(context.Context) (interface{}, error) {
		return nil, nil
	})
	if err != nil {
		t.Fatalf("submit queue filler: %v", err) // takes the single queue slot
	}

	rejects0 := obs.CounterValue("serve.queue_rejects")
	resp, blob := post(t, ts.URL+"/v1/memfault", `{"words":16,"bits":4}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded POST: %d %s, want 429", resp.StatusCode, blob)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	if !strings.Contains(string(blob), "queue full") {
		t.Errorf("429 body %s does not mention the queue", blob)
	}
	if d := obs.CounterValue("serve.queue_rejects") - rejects0; d != 1 {
		t.Errorf("serve.queue_rejects delta = %d, want 1", d)
	}

	release()
	<-done1
	<-filler.done

	// Capacity restored: the same request now computes.
	resp, blob = post(t, ts.URL+"/v1/memfault", `{"words":16,"bits":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST after release: %d %s", resp.StatusCode, blob)
	}
}

// TestGracefulDrain is the shutdown contract: Drain waits for in-flight
// work, health flips to 503, and new submissions are refused.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	release, done := blockWorker(t, s)
	defer release()

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	resp, blob := post(t, ts.URL+"/v1/memfault", `{"words":16,"bits":2}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST while draining: %d %s, want 503", resp.StatusCode, blob)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(hbody), "draining") {
		t.Errorf("healthz while draining: %d %q, want 503 draining", hresp.StatusCode, hbody)
	}

	select {
	case err := <-drainErr:
		t.Fatalf("Drain returned %v before the in-flight job finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	release()
	<-done
	select {
	case err := <-drainErr:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after the in-flight job finished")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "serve.draining 1") {
		t.Errorf("metrics after drain missing serve.draining 1:\n%s", mbody)
	}
}

// TestDrainDeadline: a Drain whose context expires while work is stuck
// reports the deadline instead of hanging.
func TestDrainDeadline(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	release, done := blockWorker(t, s)
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with stuck job = %v, want DeadlineExceeded", err)
	}
	release()
	<-done
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("final Drain: %v", err)
	}
}

// TestRequestDeadline504: a request whose own deadline expires mid-compute
// is answered 504, and the engines stop promptly.
func TestRequestDeadline504(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4})
	t.Cleanup(func() { _ = s.Drain(context.Background()) })
	// The full catalog on 256x8 runs for minutes; a 30 ms deadline fires
	// long before it finishes.
	start := time.Now()
	resp, blob := post(t, ts.URL+"/v1/memfault", `{"words":256,"bits":8,"timeout_ms":30}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline POST: %d %s, want 504", resp.StatusCode, blob)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline answered after %v; engines did not stop promptly", elapsed)
	}
}

// TestBadRequests maps malformed inputs to 400s.
func TestBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	t.Cleanup(func() { _ = s.Drain(context.Background()) })
	for name, rq := range map[string]struct{ path, body string }{
		"unknown chip":        {"/v1/flow", `{"chip":"nope"}`},
		"unknown xcheck kind": {"/v1/xcheck", `{"kind":"bogus"}`},
		"unknown core":        {"/v1/xcheck", `{"kind":"wrapper","core":"NOPE"}`},
		"empty sweep":         {"/v1/sched", `{}`},
		"unknown field":       {"/v1/memfault", `{"wordz":16}`},
		"bad geometry":        {"/v1/memfault", `{"words":0,"bits":0}`},
		"unknown algorithm":   {"/v1/memfault", `{"words":16,"bits":2,"algorithms":["March ?"]}`},
	} {
		resp, blob := post(t, ts.URL+rq.path, rq.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d %s, want 400", name, resp.StatusCode, blob)
		}
	}
}
