package xcheck

import (
	"context"
	"fmt"
	"math/rand"

	"steac/internal/bist"
	"steac/internal/march"
	"steac/internal/memory"
	"steac/internal/netlist"
)

// equivPollCycles is the ctx poll interval inside gate-level equivalence
// loops (a simulated cycle is microseconds on the big frame buffers, so
// this bounds cancel latency to low milliseconds).
const equivPollCycles = 4096

// PadConfig rounds a memory geometry up to the generated TPG's natural
// power-of-two address space (what the memory compiler fabricates); the
// returned config is what verify benches and campaigns run on.
func PadConfig(cfg memory.Config) memory.Config {
	cfg.Words = 1 << uint(cfg.AddrBits())
	return cfg
}

// PadConfigs pads a whole group.
func PadConfigs(mems []memory.Config) []memory.Config {
	out := make([]memory.Config, len(mems))
	for i, cfg := range mems {
		out[i] = PadConfig(cfg)
	}
	return out
}

func busToInt(v []bool) int {
	n := 0
	for i, b := range v {
		if b {
			n |= 1 << uint(i)
		}
	}
	return n
}

// benchPins caches the compiled net ids of one verify bench.
type benchPins struct {
	cmdr, cmdd, dir, adv, elemdone, done, fail int
	addr, d, q, qb                             [][]int
	we, failI                                  []int
}

func newBenchPins(sim *netlist.CompiledSim, mems []memory.Config) benchPins {
	p := benchPins{
		cmdr: sim.NetID("cmdr"), cmdd: sim.NetID("cmdd"), dir: sim.NetID("dir"),
		adv: sim.NetID("adv"), elemdone: sim.NetID("elemdone"),
		done: sim.NetID("done"), fail: sim.NetID("fail"),
	}
	for i, cfg := range mems {
		p.addr = append(p.addr, sim.BusIDs(fmt.Sprintf("addr%d", i), cfg.AddrBits()))
		p.d = append(p.d, sim.BusIDs(fmt.Sprintf("d%d", i), cfg.Bits))
		p.q = append(p.q, sim.BusIDs(fmt.Sprintf("q%d", i), cfg.Bits))
		if cfg.Kind == memory.TwoPort {
			p.qb = append(p.qb, sim.BusIDs(fmt.Sprintf("qb%d", i), cfg.Bits))
		} else {
			p.qb = append(p.qb, nil)
		}
		p.we = append(p.we, sim.NetID(fmt.Sprintf("we%d", i)))
		p.failI = append(p.failI, sim.NetID(fmt.Sprintf("fail%d", i)))
	}
	return p
}

func getBusID(sim *netlist.CompiledSim, ids []int) int {
	v := 0
	for i, id := range ids {
		if sim.GetID(id) {
			v |= 1 << uint(i)
		}
	}
	return v
}

// VerifyBISTContext proves one sequencer group's generated netlist (sequencer +
// TPGs + enable gating, via bist.BuildVerifyBench) bit-identical to the
// March-semantics reference over complete sessions: every output pin, every
// cycle, for the solid and checkerboard backgrounds and (for two-port
// groups) both comparator port selections.  The RAM macros are emulated
// behaviourally and respond to the netlist's own address/data/write pins;
// the port not under comparison is fed complemented data so a port-select
// defect cannot hide.  Session lengths are additionally cross-checked
// against the behavioural bist.Engine and the analytic formula.
//
// The session loop polls ctx every equivPollCycles gate-level cycles and between sessions, and a
// canceled check returns ctx.Err() wrapped with the stage name.
func VerifyBISTContext(ctx context.Context, name string, alg march.Algorithm, mems []memory.Config, opts Options) (EquivResult, error) {
	tm := obsSpanVerify.Start()
	defer tm.Stop()
	res := EquivResult{Name: name}
	if err := alg.Validate(); err != nil {
		return res, err
	}
	padded := PadConfigs(mems)
	maxWords := 0
	anyTwoPort := false
	for _, cfg := range padded {
		if cfg.Words > maxWords {
			maxWords = cfg.Words
		}
		if cfg.Kind == memory.TwoPort {
			anyTwoPort = true
		}
	}
	analytic := alg.Complexity() * maxWords

	d, err := bist.BuildVerifyBench(alg, padded)
	if err != nil {
		return res, err
	}
	sim, err := netlist.NewCompiledSim(d, "bench")
	if err != nil {
		return res, err
	}
	res.Gates = sim.GateCount()
	pins := newBenchPins(sim, padded)
	mmCap := opts.maxMismatches()

	// Behavioural-engine cross-check: the padded group must pass fault-free
	// in exactly the analytic cycle count.
	ram := make([]bist.MemoryUnderTest, len(padded))
	for i, cfg := range padded {
		m, err := memory.New(cfg)
		if err != nil {
			return res, err
		}
		ram[i] = bist.MemoryUnderTest{RAM: m}
	}
	group := bist.Group{Name: name, Alg: alg, Mems: ram}
	if g := group.Cycles(); g != analytic {
		res.Notes = append(res.Notes,
			fmt.Sprintf("engine group formula %d cycles vs analytic %d", g, analytic))
	}
	eng, err := bist.NewEngine([]bist.Group{group}, bist.Serial)
	if err != nil {
		return res, err
	}
	er, err := eng.RunContext(ctx)
	if err != nil {
		return res, fmt.Errorf("xcheck: verify %s: %w", name, err)
	}
	if !er.Pass || er.Cycles != analytic {
		res.Notes = append(res.Notes,
			fmt.Sprintf("engine run pass=%v cycles=%d vs analytic %d", er.Pass, er.Cycles, analytic))
	}

	pbsels := []bool{false}
	if anyTwoPort {
		pbsels = append(pbsels, true)
	}
	for _, bgsel := range []bool{false, true} {
		for _, pbsel := range pbsels {
			if err := ctx.Err(); err != nil {
				return res, fmt.Errorf("xcheck: verify %s: %w", name, err)
			}
			res.Sessions++
			label := fmt.Sprintf("bg=%v pb=%v", bgsel, pbsel)
			cycles, ok := runBISTSession(ctx, sim, pins, alg, padded, bgsel, pbsel, analytic, &res, mmCap)
			if err := ctx.Err(); err != nil {
				return res, fmt.Errorf("xcheck: verify %s: %w", name, err)
			}
			if !ok {
				res.Notes = append(res.Notes, fmt.Sprintf("session %s aborted", label))
				res.finish()
				return res, nil
			}
			res.Cycles += cycles
			if cycles != analytic {
				res.Notes = append(res.Notes,
					fmt.Sprintf("session %s ran %d cycles, analytic %d", label, cycles, analytic))
			}
		}
	}
	res.finish()
	return res, nil
}

// runBISTSession drives one full March session on both machines.  It
// returns the gate-level cycle count and false if the session had to be
// abandoned (mismatch budget exhausted, DONE never seen, or ctx canceled —
// the caller distinguishes cancellation by checking ctx.Err() itself).
func runBISTSession(ctx context.Context, sim *netlist.CompiledSim, pins benchPins, alg march.Algorithm,
	mems []memory.Config, bgsel, pbsel bool, analytic int, res *EquivResult, mmCap int) (int, bool) {
	sim.Reset()
	ref := newRefBench(alg, mems)
	gmem := make([][]uint64, len(mems))
	for i, cfg := range mems {
		gmem[i] = make([]uint64, cfg.Words)
	}
	sim.Set("bgsel", bgsel)
	sim.Set("pbsel", pbsel)
	// Reset pulse on both machines.
	sim.Set("rst", true)
	sim.Set("en", false)
	sim.Tick("ck")
	ref.tick(false, true, bgsel)
	sim.Set("rst", false)
	sim.Set("en", true)

	maxCycles := analytic + 8
	pollIn := equivPollCycles
	for cycle := 0; cycle < maxCycles; cycle++ {
		if pollIn--; pollIn <= 0 {
			pollIn = equivPollCycles
			if ctx.Err() != nil {
				return cycle, false
			}
		}
		sim.Settle()
		p := ref.comb(true, bgsel)
		// Feed the emulated RAMs from the netlist's own address pins; the
		// port not selected by pbsel carries complemented data so the
		// comparator's port mux is genuinely exercised.
		for i, cfg := range mems {
			gateAddr := getBusID(sim, pins.addr[i])
			word := gmem[i][gateAddr]
			inv := ^word & cfg.Mask()
			qa, qb := word, inv
			if pbsel && cfg.Kind == memory.TwoPort {
				qa, qb = inv, word
			}
			for b, id := range pins.q[i] {
				sim.SetID(id, qa>>uint(b)&1 == 1)
			}
			for b, id := range pins.qb[i] {
				sim.SetID(id, qb>>uint(b)&1 == 1)
			}
		}
		sim.Settle()
		res.check(cycle, "done", sim.GetID(pins.done), p.done, mmCap)
		res.check(cycle, "cmdr", sim.GetID(pins.cmdr), p.cmdr, mmCap)
		res.check(cycle, "cmdd", sim.GetID(pins.cmdd), p.cmdd, mmCap)
		res.check(cycle, "dir", sim.GetID(pins.dir), p.dir, mmCap)
		res.check(cycle, "adv", sim.GetID(pins.adv), p.adv, mmCap)
		res.check(cycle, "elemdone", sim.GetID(pins.elemdone), p.elemdone, mmCap)
		res.check(cycle, "fail", sim.GetID(pins.fail), p.fail, mmCap)
		for i := range mems {
			for b, id := range pins.addr[i] {
				res.check(cycle, fmt.Sprintf("addr%d[%d]", i, b),
					sim.GetID(id), p.addr[i]>>uint(b)&1 == 1, mmCap)
			}
			for b, id := range pins.d[i] {
				res.check(cycle, fmt.Sprintf("d%d[%d]", i, b),
					sim.GetID(id), p.d[i]>>uint(b)&1 == 1, mmCap)
			}
			res.check(cycle, fmt.Sprintf("we%d", i), sim.GetID(pins.we[i]), p.we[i], mmCap)
			res.check(cycle, fmt.Sprintf("fail%d", i), sim.GetID(pins.failI[i]), p.failI[i], mmCap)
		}
		if len(res.Mismatches) >= mmCap {
			return cycle, false
		}
		if p.done && sim.GetID(pins.done) {
			// Session complete: the emulated RAM images must agree too.
			for i := range mems {
				for a := range gmem[i] {
					if gmem[i][a] != ref.tpgs[i].mem[a] {
						res.Notes = append(res.Notes, fmt.Sprintf(
							"mem %d addr %d: gate image %x vs ref %x", i, a, gmem[i][a], ref.tpgs[i].mem[a]))
						return cycle, false
					}
				}
			}
			return cycle, true
		}
		// Commit RAM writes from the gate-level pins, then clock both.
		for i := range mems {
			if sim.GetID(pins.we[i]) {
				gmem[i][getBusID(sim, pins.addr[i])] = uint64(getBusID(sim, pins.d[i]))
			}
		}
		sim.Tick("ck")
		ref.tick(true, false, bgsel)
	}
	res.Notes = append(res.Notes, fmt.Sprintf("DONE never asserted within %d cycles", maxCycles))
	return maxCycles, false
}

// VerifyControllerContext proves the generated shared controller bit-identical to
// the Fig. 2 handshake reference, first under seeded random stimulus on
// every input (GDONE/GFAIL patterns a real chip could never even produce),
// then in a scripted session where behavioural groups respond to the
// controller's own GO outputs and selected groups inject failures.
//
// The random stimulus loop polls ctx every equivPollCycles cycles, and a canceled
// check returns ctx.Err() wrapped with the stage name.
func VerifyControllerContext(ctx context.Context, name string, nGroups int, opts Options) (EquivResult, error) {
	tm := obsSpanVerify.Start()
	defer tm.Stop()
	res := EquivResult{Name: name}
	d := netlist.NewDesign("xctl", nil)
	if _, err := bist.GenerateController(d, "ctl", nGroups); err != nil {
		return res, err
	}
	sim, err := netlist.NewCompiledSim(d, "ctl")
	if err != nil {
		return res, err
	}
	res.Gates = sim.GateCount()
	mmCap := opts.maxMismatches()
	goIDs := sim.BusIDs("GO", nGroups)
	gdoneIDs := sim.BusIDs("GDONE", nGroups)
	gfailIDs := sim.BusIDs("GFAIL", nGroups)
	mbo, mrd, mso := sim.NetID(bist.PinMBO), sim.NetID(bist.PinMRD), sim.NetID(bist.PinMSO)

	compare := func(cycle int, ref *refController, msi bool) {
		p := ref.comb(msi)
		res.check(cycle, bist.PinMBO, sim.GetID(mbo), p.mbo, mmCap)
		res.check(cycle, bist.PinMRD, sim.GetID(mrd), p.mrd, mmCap)
		res.check(cycle, bist.PinMSO, sim.GetID(mso), p.mso, mmCap)
		for i, id := range goIDs {
			res.check(cycle, fmt.Sprintf("GO[%d]", i), sim.GetID(id), p.gos[i], mmCap)
		}
	}

	// Phase 1: random stimulus differential.
	sim.Reset()
	ref := newRefController(nGroups)
	rng := rand.New(rand.NewSource(int64(0x5eed + nGroups)))
	cycles := 200*nGroups + 500
	gdone := make([]bool, nGroups)
	gfail := make([]bool, nGroups)
	res.Sessions++
	pollIn := equivPollCycles
	for cycle := 0; cycle < cycles && len(res.Mismatches) < mmCap; cycle++ {
		if pollIn--; pollIn <= 0 {
			pollIn = equivPollCycles
			if ctx.Err() != nil {
				break
			}
		}
		mbs := rng.Intn(20) == 0
		mbr := rng.Intn(50) == 0
		msi := rng.Intn(2) == 0
		sim.Set(bist.PinMBS, mbs)
		sim.Set(bist.PinMBR, mbr)
		sim.Set(bist.PinMSI, msi)
		for i := 0; i < nGroups; i++ {
			gdone[i] = rng.Intn(5) == 0
			gfail[i] = rng.Intn(10) == 0
			sim.SetID(gdoneIDs[i], gdone[i])
			sim.SetID(gfailIDs[i], gfail[i])
		}
		sim.Settle()
		compare(cycle, ref, msi)
		sim.Tick(bist.PinMBC)
		ref.tick(mbs, mbr, msi, gdone, gfail)
		res.Cycles++
	}

	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("xcheck: verify %s: %w", name, err)
	}

	// Phase 2: scripted session — groups acknowledge GO after a compressed
	// per-group latency; one mid-list group reports a failure.
	if len(res.Mismatches) < mmCap {
		res.Sessions++
		cyc, notes := runControllerSession(sim, ref, nGroups, goIDs, gdoneIDs, gfailIDs,
			func(cycle int, msi bool) { compare(cycle, ref, msi) })
		res.Cycles += cyc
		res.Notes = append(res.Notes, notes...)
	}
	res.finish()
	return res, nil
}

// runControllerSession resets both machines and runs a full session with
// behavioural groups responding to the controller's GO outputs.  Group i
// asserts GDONE after 3+(i%4) active cycles; the middle group pulses GFAIL.
// It asserts the tester-visible outcome (MBO raised, MRD reporting the
// injected failure, MSO readout of the failed flag) and returns any
// violations as notes.
func runControllerSession(sim *netlist.CompiledSim, ref *refController, nGroups int,
	goIDs, gdoneIDs, gfailIDs []int, compare func(cycle int, msi bool)) (int, []string) {
	var notes []string
	failing := nGroups / 2
	sim.Reset()
	*ref = *newRefController(nGroups)

	zero := make([]bool, nGroups)
	drive := func(mbs, mbr bool, gdone, gfail []bool) {
		sim.Set(bist.PinMBS, mbs)
		sim.Set(bist.PinMBR, mbr)
		sim.Set(bist.PinMSI, true)
		for i := 0; i < nGroups; i++ {
			sim.SetID(gdoneIDs[i], gdone[i])
			sim.SetID(gfailIDs[i], gfail[i])
		}
	}
	step := func(mbs, mbr bool, gdone, gfail []bool) {
		drive(mbs, mbr, gdone, gfail)
		sim.Tick(bist.PinMBC)
		ref.tick(mbs, mbr, true, gdone, gfail)
	}
	step(false, true, zero, zero) // reset
	step(true, false, zero, zero) // start

	age := make([]int, nGroups)
	gdone := make([]bool, nGroups)
	gfail := make([]bool, nGroups)
	started := make([]bool, nGroups)
	cycle := 0
	maxCycles := 16 * nGroups
	for ; cycle < maxCycles; cycle++ {
		drive(false, false, gdone, gfail)
		sim.Settle()
		if sim.GetID(sim.NetID(bist.PinMBO)) {
			break
		}
		for i := 0; i < nGroups; i++ {
			gdone[i], gfail[i] = false, false
			if sim.GetID(goIDs[i]) {
				if !started[i] {
					started[i] = true
					// Groups must start in index order.
					for j := i + 1; j < nGroups; j++ {
						if started[j] {
							notes = append(notes, fmt.Sprintf("group %d started before %d", j, i))
						}
					}
				}
				age[i]++
				gdone[i] = age[i] >= 3+i%4
				gfail[i] = i == failing && age[i] == 2
			}
		}
		drive(false, false, gdone, gfail)
		sim.Settle()
		compare(cycle, true)
		sim.Tick(bist.PinMBC)
		ref.tick(false, false, true, gdone, gfail)
	}
	sim.Settle()
	if !sim.Get(bist.PinMBO) {
		notes = append(notes, fmt.Sprintf("MBO not raised within %d cycles", maxCycles))
	}
	if sim.Get(bist.PinMRD) {
		notes = append(notes, fmt.Sprintf("MRD reports pass despite group %d failure", failing))
	}
	for i, s := range started {
		if !s {
			notes = append(notes, fmt.Sprintf("group %d never granted GO", i))
		}
	}
	return cycle, notes
}
