// Package obs is the flow-wide observability layer: named counters and
// gauges, a hierarchical span tree with wall-clock timing and runtime/pprof
// label propagation, and a deterministic text report.  Every expensive
// engine in the repository (schedule search, March fault simulation, the
// BIST engine, the compiled gate-level simulator and its xcheck campaigns,
// pattern translation) publishes metrics here, so one `dscflow -obs` run
// answers "where does the wall clock go" and a CPU profile taken during any
// flow stage carries the stage name on its samples.
//
// Design rules, in priority order:
//
//   - Hot paths stay allocation-free.  Counters are plain atomic adds on
//     pre-registered cells; engines cache `*Counter`/`*Span` pointers in
//     package vars and batch per-item increments per worker chunk.  Span
//     Start/Stop handles are value types that do not escape.
//   - Counters are always live (an atomic add is cheaper than a branch plus
//     the coherence traffic of checking a flag), so metric totals are
//     meaningful whether or not a report is requested.  Span *timing* and
//     pprof labels are gated behind Enable, because reading the clock and
//     setting goroutine labels are not free.
//   - Everything is deterministic for a fixed worker count: reports sort by
//     name, and no metric depends on map iteration order.
//
// Spans form a static taxonomy addressed by dotted path
// ("flow.schedule", "memfault.coverage"): the tree shape is the
// instrumentation's choice, not the dynamic call stack, which keeps
// reports stable and lets concurrent engines accumulate into one node.
// A Span handle is explicit, so a worker goroutine can time itself into
// the same node as its parent (see Span.Start).
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled gates span timing and pprof labels; counters are always live.
var enabled atomic.Bool

// Enable turns on span timing and pprof label propagation.
func Enable() { enabled.Store(true) }

// Disable turns span timing and pprof label propagation back off.
// In-flight Timings started while enabled still record on Stop.
func Disable() { enabled.Store(false) }

// Enabled reports whether span timing is on.
func Enabled() bool { return enabled.Load() }

// Counter is a named monotonically increasing metric.  The zero Counter is
// unusable; obtain one with GetCounter (typically once, in a package var).
// All methods are safe for concurrent use, and Add is a single atomic add —
// no allocation, no lock, no enabled check.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter.  Nil-safe so optional instrumentation can
// pass around a nil *Counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is a named last-value metric (workers in flight, best bound so
// far).  Set stores; SetMax keeps the maximum.  Same concurrency and cost
// contract as Counter.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// SetMax raises the gauge to n if n is larger.
func (g *Gauge) SetMax(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the last stored value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// registry holds every named metric.  Registration is rare (package init);
// the hot path never touches the lock.
var registry = struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}{
	counters: make(map[string]*Counter),
	gauges:   make(map[string]*Gauge),
}

// GetCounter returns the counter registered under name, creating it on
// first use.  Call it once per call site (package var), not per operation.
func GetCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	c, ok := registry.counters[name]
	if !ok {
		c = &Counter{name: name}
		registry.counters[name] = c
	}
	return c
}

// GetGauge returns the gauge registered under name, creating it on first
// use.
func GetGauge(name string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	g, ok := registry.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		registry.gauges[name] = g
	}
	return g
}

// MetricValue is one named reading in a snapshot.
type MetricValue struct {
	Name  string
	Value int64
}

// Counters snapshots every registered counter, sorted by name.
func Counters() []MetricValue {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]MetricValue, 0, len(registry.counters))
	for _, c := range registry.counters {
		out = append(out, MetricValue{Name: c.name, Value: c.Value()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Gauges snapshots every registered gauge, sorted by name.
func Gauges() []MetricValue {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]MetricValue, 0, len(registry.gauges))
	for _, g := range registry.gauges {
		out = append(out, MetricValue{Name: g.name, Value: g.Value()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CountersPrefix snapshots the counters whose name starts with prefix,
// sorted by name — the slice a subsystem status report (e.g. the serve job
// API) embeds without dragging in every other engine's totals.
func CountersPrefix(prefix string) []MetricValue {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	var out []MetricValue
	for name, c := range registry.counters {
		if strings.HasPrefix(name, prefix) {
			out = append(out, MetricValue{Name: name, Value: c.Value()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CounterValue returns the current total of the named counter (0 when it
// was never registered).  Convenience for tests and the bench harness.
func CounterValue(name string) int64 {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return registry.counters[name].Value()
}

// Reset zeroes every counter and gauge and clears all span statistics
// (the span tree shape — registered nodes — survives, so cached *Span
// pointers stay valid).  For tests and the benchmark harness; not intended
// to race with in-flight engines.
func Reset() {
	registry.mu.Lock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	for _, g := range registry.gauges {
		g.v.Store(0)
	}
	registry.mu.Unlock()
	root.reset()
}
