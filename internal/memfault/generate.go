package memfault

import (
	"math/rand"

	"steac/internal/memory"
)

// Fault-list generators.  The exhaustive generators are meant for the small
// memories used in coverage experiments; for production-size macros use
// Sample to draw a deterministic subset.

// StuckAtFaults returns SA0 and SA1 on every cell (2·N·B faults).
func StuckAtFaults(cfg memory.Config) []Fault {
	faults := make([]Fault, 0, 2*cfg.BitCount())
	forEachCell(cfg, func(c Cell) {
		faults = append(faults,
			Fault{Kind: SA0, Victim: c},
			Fault{Kind: SA1, Victim: c})
	})
	return faults
}

// TransitionFaults returns up- and down-transition faults on every cell.
func TransitionFaults(cfg memory.Config) []Fault {
	faults := make([]Fault, 0, 2*cfg.BitCount())
	forEachCell(cfg, func(c Cell) {
		faults = append(faults,
			Fault{Kind: TFUp, Victim: c},
			Fault{Kind: TFDown, Victim: c})
	})
	return faults
}

// StuckOpenFaults returns an SOF on every cell.
func StuckOpenFaults(cfg memory.Config) []Fault {
	faults := make([]Fault, 0, cfg.BitCount())
	forEachCell(cfg, func(c Cell) {
		faults = append(faults, Fault{Kind: SOF, Victim: c})
	})
	return faults
}

// ReadDisturbFaults returns an RDF on every cell.
func ReadDisturbFaults(cfg memory.Config) []Fault {
	faults := make([]Fault, 0, cfg.BitCount())
	forEachCell(cfg, func(c Cell) {
		faults = append(faults, Fault{Kind: RDF, Victim: c})
	})
	return faults
}

// AddressFaults returns one AF per address, mapping it to the next address
// (the classical "two addresses select one cell" decoder defect).
func AddressFaults(cfg memory.Config) []Fault {
	if cfg.Words < 2 {
		return nil
	}
	faults := make([]Fault, 0, cfg.Words)
	for a := 0; a < cfg.Words; a++ {
		faults = append(faults, Fault{
			Kind:    AF,
			Victim:  Cell{Addr: a},
			MapAddr: (a + 1) % cfg.Words,
		})
	}
	return faults
}

// CouplingFaults returns inversion, idempotent and state coupling faults
// between each cell and its address-order neighbour (the dominant physical
// adjacency in a RAM column).  Per victim/aggressor pair it emits:
// CFin ×2 (rise/fall), CFid ×4 (rise/fall × forced 0/1) and CFst ×4
// (aggressor state 0/1 × forced 0/1), in both pair orientations.
func CouplingFaults(cfg memory.Config) []Fault {
	var faults []Fault
	if cfg.Words < 2 {
		return nil
	}
	forEachCell(cfg, func(v Cell) {
		a := Cell{Addr: (v.Addr + 1) % cfg.Words, Bit: v.Bit}
		for _, pair := range [][2]Cell{{a, v}, {v, a}} {
			aggr, vict := pair[0], pair[1]
			for _, rise := range []bool{true, false} {
				faults = append(faults, Fault{Kind: CFin, Victim: vict, Aggr: aggr, AggrRise: rise})
				for forced := 0; forced <= 1; forced++ {
					faults = append(faults, Fault{Kind: CFid, Victim: vict, Aggr: aggr, AggrRise: rise, Forced: forced})
				}
			}
			for state := 0; state <= 1; state++ {
				for forced := 0; forced <= 1; forced++ {
					faults = append(faults, Fault{Kind: CFst, Victim: vict, Aggr: aggr, AggrState: state, Forced: forced})
				}
			}
		}
	})
	return dedupe(faults)
}

// RetentionFaults returns data-retention faults (decay to 0 and to 1) on
// every cell; they are only observable under a March test with retention
// pauses (Options.PauseBefore / the BIST retention mode).
func RetentionFaults(cfg memory.Config) []Fault {
	faults := make([]Fault, 0, 2*cfg.BitCount())
	forEachCell(cfg, func(c Cell) {
		faults = append(faults,
			Fault{Kind: DRF, Victim: c, Forced: 0},
			Fault{Kind: DRF, Victim: c, Forced: 1})
	})
	return faults
}

// RetentionPauses returns the canonical pause points for an algorithm whose
// element 1 reads background data and element 2 reads complement data
// (true for MATS+, March X/Y/C-): pausing before each lets both decay
// directions manifest.
func RetentionPauses() []int { return []int{1, 2} }

// IntraWordCouplingFaults returns coupling faults whose aggressor is the
// adjacent bit of the same word.  Because a March write updates every bit
// of a word with the same background-relative value, some of these faults
// are invisible under a solid background (e.g. a rise-triggered CFid that
// forces the value the victim is being written anyway) and require a
// checkerboard background to sensitize — the reason BRAINS supports
// multiple data backgrounds.
func IntraWordCouplingFaults(cfg memory.Config) []Fault {
	if cfg.Bits < 2 {
		return nil
	}
	var faults []Fault
	forEachCell(cfg, func(v Cell) {
		a := Cell{Addr: v.Addr, Bit: (v.Bit + 1) % cfg.Bits}
		for _, rise := range []bool{true, false} {
			faults = append(faults, Fault{Kind: CFin, Victim: v, Aggr: a, AggrRise: rise})
			for forced := 0; forced <= 1; forced++ {
				faults = append(faults, Fault{Kind: CFid, Victim: v, Aggr: a, AggrRise: rise, Forced: forced})
			}
		}
		for state := 0; state <= 1; state++ {
			for forced := 0; forced <= 1; forced++ {
				faults = append(faults, Fault{Kind: CFst, Victim: v, Aggr: a, AggrState: state, Forced: forced})
			}
		}
	})
	return dedupe(faults)
}

// Checkerboard returns the alternating-bit background for a word width.
func Checkerboard(bits int) uint64 {
	var bg uint64
	for i := 0; i < bits; i += 2 {
		bg |= 1 << i
	}
	return bg
}

// AllFaults concatenates every generator (the full campaign list).
func AllFaults(cfg memory.Config) []Fault {
	var faults []Fault
	faults = append(faults, StuckAtFaults(cfg)...)
	faults = append(faults, TransitionFaults(cfg)...)
	faults = append(faults, StuckOpenFaults(cfg)...)
	faults = append(faults, ReadDisturbFaults(cfg)...)
	faults = append(faults, AddressFaults(cfg)...)
	faults = append(faults, CouplingFaults(cfg)...)
	return faults
}

// Sample draws up to n faults deterministically (seeded) from the list, for
// campaigns against production-size memories.
func Sample(faults []Fault, n int, seed int64) []Fault {
	if n >= len(faults) {
		out := make([]Fault, len(faults))
		copy(out, faults)
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(faults))
	out := make([]Fault, n)
	for i := 0; i < n; i++ {
		out[i] = faults[perm[i]]
	}
	return out
}

func forEachCell(cfg memory.Config, fn func(Cell)) {
	for a := 0; a < cfg.Words; a++ {
		for b := 0; b < cfg.Bits; b++ {
			fn(Cell{Addr: a, Bit: b})
		}
	}
}

func dedupe(faults []Fault) []Fault {
	seen := make(map[Fault]bool, len(faults))
	out := faults[:0]
	for _, f := range faults {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}
