package campaign

import (
	"context"
	"sync"
)

// shardResult is one simulated shard's outcome vector.
type shardResult struct {
	index int
	out   []int64
}

// deque is a mutex-protected double-ended work queue of shard indices.
// The owning worker pops from the tail (LIFO, keeps its contiguous block
// warm); thieves steal from the head (FIFO, taking the work the owner
// would reach last).  Campaign shards are milliseconds to seconds each,
// so a plain mutex is nowhere near contended enough to warrant a lock-free
// Chase-Lev deque.
type deque struct {
	mu    sync.Mutex
	items []int
}

func (d *deque) push(idx int) {
	d.mu.Lock()
	d.items = append(d.items, idx)
	d.mu.Unlock()
}

func (d *deque) popTail() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return 0, false
	}
	idx := d.items[n-1]
	d.items = d.items[:n-1]
	return idx, true
}

func (d *deque) popHead() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	idx := d.items[0]
	d.items = d.items[1:]
	return idx, true
}

// runPool simulates the pending shards on a work-stealing pool and feeds
// every completed shard, in completion order, to complete on the calling
// goroutine — complete is the single journaling/progress path and never
// runs concurrently with itself.
//
// Shards are dealt to per-worker deques in contiguous blocks (locality),
// owners pop LIFO, and a worker whose deque runs dry steals FIFO from
// victims starting at its right-hand neighbour.  The shard set is fixed up
// front — no backfill — so a worker that finds every deque empty is done.
//
// Cancellation is cooperative at shard granularity: workers stop claiming
// once ctx fires, an in-flight Run that returns the ctx error has its
// result discarded (never journaled), and a Run that completes despite the
// cancellation is journaled like any other — that is the graceful-drain
// contract.  Any non-cancellation error from a Worker or from complete
// stops the pool and is returned.
func runPool(ctx context.Context, exec Executor, workers int, pending []int,
	size, units int, complete func(shardResult) error) error {
	n := workers
	if n > len(pending) {
		n = len(pending)
	}
	if n < 1 {
		n = 1
	}
	deques := make([]*deque, n)
	for i := range deques {
		deques[i] = &deque{}
	}
	for i, idx := range pending {
		deques[i*n/len(pending)].push(idx)
	}

	ictx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}

	results := make(chan shardResult, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w, err := exec.NewWorker()
			if err != nil {
				fail(err)
				return
			}
			for {
				if ictx.Err() != nil {
					return
				}
				idx, ok := deques[id].popTail()
				if !ok {
					for v := 1; v < n && !ok; v++ {
						idx, ok = deques[(id+v)%n].popHead()
					}
					if !ok {
						return
					}
					obsSteals.Add(1)
				}
				lo, hi := shardBounds(units, size, idx)
				out := make([]int64, hi-lo)
				if err := w.Run(ictx, lo, hi, out); err != nil {
					if ictx.Err() == nil {
						fail(err)
					}
					return // aborted shard: discard, never journal
				}
				results <- shardResult{index: idx, out: out}
			}
		}(id)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Single consumer on the calling goroutine: journal + progress, in
	// completion order.  After a completion error the pool is stopped but
	// the channel still drains, so no worker blocks on send.
	for sr := range results {
		errMu.Lock()
		failed := firstErr != nil
		errMu.Unlock()
		if failed {
			continue
		}
		if err := complete(sr); err != nil {
			fail(err)
		}
	}
	errMu.Lock()
	defer errMu.Unlock()
	return firstErr
}
