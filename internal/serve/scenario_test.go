package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestFlowScenarioEndpoint drives a generated scenario chip through the
// daemon's flow endpoint with ATE verification on, and checks the scenario
// knobs are part of the cache key (a different seed is a different chip).
func TestFlowScenarioEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	t.Cleanup(func() { _ = s.Drain(context.Background()) })

	resp, blob := post(t, ts.URL+"/v1/flow", `{"chip":"memory-heavy","seed":1,"verify":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scenario flow POST: %d %s", resp.StatusCode, blob)
	}
	var out FlowResponse
	if err := json.Unmarshal(decodeEnvelope(t, blob).Result, &out); err != nil {
		t.Fatalf("bad flow response %s: %v", blob, err)
	}
	if out.ScheduleCycles <= 0 || out.Sessions <= 0 {
		t.Errorf("scenario flow produced no schedule: %+v", out)
	}
	if out.VerifyPass == nil || !*out.VerifyPass {
		t.Errorf("scenario chip failed ATE verification: %+v", out)
	}

	// Same scenario, different seed: must miss the cache (Seed is semantic).
	resp2, blob2 := post(t, ts.URL+"/v1/flow", `{"chip":"memory-heavy","seed":2,"verify":true}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second scenario flow POST: %d %s", resp2.StatusCode, blob2)
	}
	if decodeEnvelope(t, blob2).Cached {
		t.Error("different chip seed hit the cache; seed must be part of the key")
	}
}

// TestFlowScenarioBadRequests maps scenario misuse to 400s with actionable
// messages.
func TestFlowScenarioBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	t.Cleanup(func() { _ = s.Drain(context.Background()) })

	resp, blob := post(t, ts.URL+"/v1/flow", `{"chip":"no-such-scenario"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown scenario: %d %s, want 400", resp.StatusCode, blob)
	}
	// The error must name the registered scenarios so the client can recover.
	if !strings.Contains(string(blob), "dsc") {
		t.Errorf("unknown-scenario error does not list builtins: %s", blob)
	}

	resp, blob = post(t, ts.URL+"/v1/flow", `{"chip":"manycore","extest":true}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("extest on scenario chip: %d %s, want 400", resp.StatusCode, blob)
	}
}
