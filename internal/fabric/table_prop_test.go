package fabric

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// Model-based property test of the lease table: a map-based reference
// implementation replays the same seeded random event sequence — claims,
// heartbeats, clock advances past the TTL, completions — and every
// observable output (claim grants, heartbeat renew/lost splits, already
// flags, snapshot counts) must match exactly, because the table's
// scheduling order is documented deterministic (pending FIFO, expired
// leases re-queued at the front ordered by expiry then index).  On top of
// the replay the test asserts the safety invariants directly:
//
//   - a claim never hands out a live (unexpired) lease or a complete shard
//   - every shard is always in exactly one state; none is ever lost
//   - completions are monotonic, and a drain phase always converges to
//     all-complete
//
// against the reference's own bookkeeping, so a bug would have to appear
// identically in two independent implementations to slip through.

// refTable is the reference: one map entry per shard plus an explicit
// pending order list.
type refTable struct {
	ttl      time.Duration
	state    map[int]shardState
	owner    map[int]string
	expires  map[int]time.Time
	prev     map[int]string
	pending  []int
	complete int
}

func newRefTable(shards int, ttl time.Duration) *refTable {
	r := &refTable{
		ttl:     ttl,
		state:   map[int]shardState{},
		owner:   map[int]string{},
		expires: map[int]time.Time{},
		prev:    map[int]string{},
	}
	for i := 0; i < shards; i++ {
		r.state[i] = shardPending
		r.pending = append(r.pending, i)
	}
	return r
}

func (r *refTable) reclaim(now time.Time) {
	var dead []int
	for i, st := range r.state {
		if st == shardLeased && now.After(r.expires[i]) {
			dead = append(dead, i)
		}
	}
	sort.Slice(dead, func(a, b int) bool {
		ea, eb := r.expires[dead[a]], r.expires[dead[b]]
		if !ea.Equal(eb) {
			return ea.Before(eb)
		}
		return dead[a] < dead[b]
	})
	for _, i := range dead {
		r.state[i] = shardPending
		r.prev[i] = r.owner[i]
		delete(r.owner, i)
	}
	r.pending = append(append([]int{}, dead...), r.pending...)
}

func (r *refTable) claim(now time.Time, node string, max int) []int {
	r.reclaim(now)
	if max <= 0 {
		max = 1
	}
	var out []int
	for len(out) < max && len(r.pending) > 0 {
		i := r.pending[0]
		r.pending = r.pending[1:]
		if r.state[i] != shardPending {
			continue
		}
		r.state[i] = shardLeased
		r.owner[i] = node
		r.expires[i] = now.Add(r.ttl)
		out = append(out, i)
	}
	return out
}

func (r *refTable) heartbeat(now time.Time, node string, shards []int) (renewed, lost []int) {
	for _, i := range shards {
		if st, ok := r.state[i]; ok && st == shardLeased && r.owner[i] == node {
			r.expires[i] = now.Add(r.ttl)
			renewed = append(renewed, i)
		} else {
			lost = append(lost, i)
		}
	}
	return renewed, lost
}

func (r *refTable) completeShard(node string, idx int) (already bool) {
	if r.state[idx] == shardComplete {
		return true
	}
	if r.state[idx] == shardPending {
		for i, p := range r.pending {
			if p == idx {
				r.pending = append(r.pending[:i], r.pending[i+1:]...)
				break
			}
		}
	}
	r.state[idx] = shardComplete
	r.owner[idx] = node
	r.complete++
	return false
}

// checkInvariants asserts the state-partition invariant against the
// reference bookkeeping.
func (r *refTable) checkInvariants(t *testing.T, shards int) {
	t.Helper()
	counts := map[shardState]int{}
	for i := 0; i < shards; i++ {
		st, ok := r.state[i]
		if !ok {
			t.Fatalf("shard %d lost from the reference state map", i)
		}
		counts[st]++
	}
	if total := counts[shardPending] + counts[shardLeased] + counts[shardComplete]; total != shards {
		t.Fatalf("state partition broken: %d pending + %d leased + %d complete != %d",
			counts[shardPending], counts[shardLeased], counts[shardComplete], shards)
	}
	if counts[shardComplete] != r.complete {
		t.Fatalf("complete count drifted: map says %d, counter says %d",
			counts[shardComplete], r.complete)
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLeaseTablePropertyVsReference(t *testing.T) {
	const seeds = 30
	nodes := []string{"n0", "n1", "n2"}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			shards := 1 + rng.Intn(40)
			ttl := time.Second
			clock := time.Unix(1000, 0)
			now := func() time.Time { return clock }

			table := NewTable(shards, ttl, now)
			ref := newRefTable(shards, ttl)
			// held mirrors what each node believes it holds — the shard
			// sets heartbeats are issued over.
			held := map[string]map[int]bool{}
			for _, n := range nodes {
				held[n] = map[int]bool{}
			}

			for op := 0; op < 250; op++ {
				node := nodes[rng.Intn(len(nodes))]
				switch rng.Intn(5) {
				case 0: // claim
					max := 1 + rng.Intn(4)
					got := table.Claim(node, max)
					want := ref.claim(clock, node, max)
					if !sameInts(got, want) {
						t.Fatalf("op %d: Claim(%s,%d) = %v, reference %v", op, node, max, got, want)
					}
					for _, idx := range got {
						held[node][idx] = true
					}
				case 1: // heartbeat over the node's held set (plus noise)
					var hb []int
					for idx := range held[node] {
						hb = append(hb, idx)
					}
					sort.Ints(hb)
					if rng.Intn(4) == 0 {
						hb = append(hb, rng.Intn(shards)) // possibly not ours
					}
					gotR, gotL := table.Heartbeat(node, hb)
					wantR, wantL := ref.heartbeat(clock, node, hb)
					if !sameInts(gotR, wantR) || !sameInts(gotL, wantL) {
						t.Fatalf("op %d: Heartbeat(%s,%v) = (%v,%v), reference (%v,%v)",
							op, node, hb, gotR, gotL, wantR, wantL)
					}
					for _, idx := range gotL {
						delete(held[node], idx)
					}
				case 2: // advance the clock, sometimes past the TTL
					clock = clock.Add(time.Duration(rng.Int63n(int64(ttl) * 3 / 2)))
				case 3: // complete a held shard
					for idx := range held[node] {
						already, err := table.Complete(node, idx)
						if err != nil {
							t.Fatalf("op %d: Complete(%s,%d): %v", op, node, idx, err)
						}
						if want := ref.completeShard(node, idx); already != want {
							t.Fatalf("op %d: Complete(%s,%d) already=%v, reference %v",
								op, node, idx, already, want)
						}
						delete(held[node], idx)
						break
					}
				case 4: // complete a random shard (a thief finishing late)
					idx := rng.Intn(shards)
					already, err := table.Complete(node, idx)
					if err != nil {
						t.Fatalf("op %d: Complete(%s,%d): %v", op, node, idx, err)
					}
					if want := ref.completeShard(node, idx); already != want {
						t.Fatalf("op %d: stray Complete(%s,%d) already=%v, reference %v",
							op, node, idx, already, want)
					}
				}
				ref.checkInvariants(t, shards)
				snap := table.Snapshot()
				if snap.Complete != ref.complete {
					t.Fatalf("op %d: snapshot complete %d, reference %d", op, snap.Complete, ref.complete)
				}
				if snap.Pending+snap.Leased+snap.Complete != shards {
					t.Fatalf("op %d: snapshot partition %d+%d+%d != %d",
						op, snap.Pending, snap.Leased, snap.Complete, shards)
				}
				if table.Done() != (ref.complete == shards) {
					t.Fatalf("op %d: Done %v, reference complete %d/%d",
						op, table.Done(), ref.complete, shards)
				}
			}

			// Drain: expire everything and complete whatever is claimed;
			// the table must converge to all-complete, never losing a
			// shard.
			for round := 0; !table.Done(); round++ {
				if round > shards+10 {
					t.Fatalf("table failed to converge: %+v", table.Snapshot())
				}
				clock = clock.Add(ttl * 2)
				node := nodes[round%len(nodes)]
				got := table.Claim(node, shards)
				want := ref.claim(clock, node, shards)
				if !sameInts(got, want) {
					t.Fatalf("drain claim = %v, reference %v", got, want)
				}
				for _, idx := range got {
					if _, err := table.Complete(node, idx); err != nil {
						t.Fatalf("drain Complete(%d): %v", idx, err)
					}
					ref.completeShard(node, idx)
				}
			}
			if ref.complete != shards {
				t.Fatalf("reference disagrees at convergence: %d/%d", ref.complete, shards)
			}
			snap := table.Snapshot()
			if snap.Complete != shards || snap.Pending != 0 || snap.Leased != 0 {
				t.Fatalf("converged snapshot %+v, want all %d complete", snap, shards)
			}
		})
	}
}

// TestLeaseTableNeverDoubleAssignsLive drives two greedy claimants against
// a table with a long TTL: with no expiries, every shard must be granted
// exactly once across both nodes.
func TestLeaseTableNeverDoubleAssignsLive(t *testing.T) {
	const shards = 64
	clock := time.Unix(0, 0)
	table := NewTable(shards, time.Hour, func() time.Time { return clock })
	seen := map[int]string{}
	for i := 0; i < 100; i++ {
		node := fmt.Sprintf("n%d", i%2)
		for _, idx := range table.Claim(node, 3) {
			if prev, dup := seen[idx]; dup {
				t.Fatalf("shard %d leased to %s while live on %s", idx, node, prev)
			}
			seen[idx] = node
		}
	}
	if len(seen) != shards {
		t.Fatalf("granted %d distinct shards, want %d", len(seen), shards)
	}
}

// TestLeaseTableErrUnknownShard pins the typed sentinel for out-of-range
// completions.
func TestLeaseTableErrUnknownShard(t *testing.T) {
	table := NewTable(4, time.Second, nil)
	for _, idx := range []int{-1, 4, 99} {
		if _, err := table.Complete("n", idx); err == nil || !errorsIsUnknownShard(err) {
			t.Fatalf("Complete(%d) error = %v, want ErrUnknownShard", idx, err)
		}
	}
}

func errorsIsUnknownShard(err error) bool {
	s, code := statusFor(err)
	return code == "unknown_shard" && s == 400
}
