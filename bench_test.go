// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus ablations for the
// design choices the platform makes.  Key reproduced quantities are emitted
// as benchmark metrics (cycles, gates, percent) so `go test -bench` output
// doubles as the experiment log recorded in EXPERIMENTS.md.
package steac

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"steac/internal/ate"
	"steac/internal/bist"
	"steac/internal/brains"
	"steac/internal/core"
	"steac/internal/dsc"
	"steac/internal/march"
	"steac/internal/memfault"
	"steac/internal/memory"
	"steac/internal/netlist"
	"steac/internal/obs"
	"steac/internal/pattern"
	"steac/internal/sched"
	"steac/internal/stil"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

// --- shared fixtures -----------------------------------------------------

func parseSTIL(src string) (*testinfo.Core, error) { return stil.Parse(src) }

func dscTests(b *testing.B) ([]sched.Test, sched.Resources) {
	b.Helper()
	br, err := brains.CompileContext(context.Background(), dsc.Memories(), brains.Options{Grouping: brains.GroupPerMemory})
	if err != nil {
		b.Fatal(err)
	}
	tests, err := sched.BuildTests(dsc.Cores(), core.BISTGroups(br))
	if err != nil {
		b.Fatal(err)
	}
	return tests, dsc.Resources()
}

// --- Table 1: core test information through the STIL hand-off -------------

func BenchmarkTable1CoreTestInfo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stils, err := core.EmitSTIL(dsc.Cores())
		if err != nil {
			b.Fatal(err)
		}
		ti := 0
		for _, src := range stils {
			c, err := parseSTIL(src)
			if err != nil {
				b.Fatal(err)
			}
			ti += c.TestInputs()
		}
		if ti != 18+6+1 {
			b.Fatalf("TI sum = %d", ti)
		}
	}
}

// --- §3 scheduling: the 4,371,194 vs 4,713,935 comparison ------------------

func BenchmarkScheduleSessionBased(b *testing.B) {
	tests, res := dscTests(b)
	var cycles int
	for i := 0; i < b.N; i++ {
		s, err := sched.SessionBasedContext(context.Background(), tests, res)
		if err != nil {
			b.Fatal(err)
		}
		cycles = s.TotalCycles
	}
	b.ReportMetric(float64(cycles), "cycles")
	b.ReportMetric(4371194, "paper-cycles")
}

func BenchmarkScheduleNonSessionBased(b *testing.B) {
	tests, res := dscTests(b)
	var cycles int
	for i := 0; i < b.N; i++ {
		s, err := sched.NonSessionBased(tests, res)
		if err != nil {
			b.Fatal(err)
		}
		cycles = s.TotalCycles
	}
	b.ReportMetric(float64(cycles), "cycles")
	b.ReportMetric(4713935, "paper-cycles")
}

func BenchmarkScheduleAblationSerial(b *testing.B) {
	tests, res := dscTests(b)
	var cycles int
	for i := 0; i < b.N; i++ {
		s, err := sched.Serial(tests, res)
		if err != nil {
			b.Fatal(err)
		}
		cycles = s.TotalCycles
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// --- §3 test IOs: 19 dedicated control pins, reduced by sharing ------------

func BenchmarkTestIOReduction(b *testing.B) {
	cores := dsc.Cores()
	var s testinfo.SharedControlIOs
	for i := 0; i < b.N; i++ {
		s = testinfo.ShareControlIOs(cores)
	}
	b.ReportMetric(float64(s.Dedicated), "dedicated-pins")
	b.ReportMetric(float64(s.SharedTotal), "shared-pins")
}

// --- §3 area: WBR 26 gates, controller ~371, TAM mux ~132, ~0.3% overhead --

func BenchmarkAreaOverhead(b *testing.B) {
	soc, err := dsc.BuildSOC()
	if err != nil {
		b.Fatal(err)
	}
	stils, err := core.EmitSTIL(dsc.Cores())
	if err != nil {
		b.Fatal(err)
	}
	in := core.FlowInput{
		STIL: stils, SOC: soc, Resources: dsc.Resources(),
		Memories:    dsc.Memories(),
		BISTOptions: brains.Options{Grouping: brains.GroupPerMemory},
	}
	var ins = (*core.FlowResult)(nil)
	for i := 0; i < b.N; i++ {
		r, err := core.RunFlowContext(context.Background(), in)
		if err != nil {
			b.Fatal(err)
		}
		ins = r
	}
	b.ReportMetric(ins.Insertion.ControllerGates, "controller-gates")
	b.ReportMetric(ins.Insertion.TAMGates, "tammux-gates")
	b.ReportMetric(26, "wbr-gates")
	b.ReportMetric(ins.Insertion.OverheadPct, "overhead-pct")
}

// --- §3 runtime: "a DFT-ready SOC in 5 minutes" -----------------------------

func BenchmarkTestInsertionFlow(b *testing.B) {
	soc, err := dsc.BuildSOC()
	if err != nil {
		b.Fatal(err)
	}
	stils, err := core.EmitSTIL(dsc.Cores())
	if err != nil {
		b.Fatal(err)
	}
	in := core.FlowInput{
		STIL: stils, SOC: soc, Resources: dsc.Resources(),
		Memories:    dsc.Memories(),
		BISTOptions: brains.Options{Grouping: brains.GroupPerMemory},
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.RunFlowContext(context.Background(), in); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 1: the end-to-end flow with full ATE verification ----------------

func BenchmarkFig1FlowEndToEnd(b *testing.B) {
	soc, err := dsc.BuildSOC()
	if err != nil {
		b.Fatal(err)
	}
	stils, err := core.EmitSTIL(dsc.Cores())
	if err != nil {
		b.Fatal(err)
	}
	in := core.FlowInput{
		STIL: stils, SOC: soc, Resources: dsc.Resources(),
		Memories:    dsc.Memories(),
		BISTOptions: brains.Options{Grouping: brains.GroupPerMemory},
		Verify:      true,
	}
	var cycles int
	for i := 0; i < b.N; i++ {
		r, err := core.RunFlowContext(context.Background(), in)
		if err != nil {
			b.Fatal(err)
		}
		cycles = r.Verify.Cycles
	}
	b.ReportMetric(float64(cycles), "ate-cycles")
}

// --- Fig. 2: shared-controller BIST over the heterogeneous memory set ------

func BenchmarkFig2MultiMemoryBIST(b *testing.B) {
	cfgs := dsc.Memories()
	var cycles int
	for i := 0; i < b.N; i++ {
		groups := make([]bist.Group, 0, 2)
		var sp, tp []bist.MemoryUnderTest
		for _, cfg := range cfgs {
			m, err := memory.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if cfg.Kind == memory.TwoPort {
				tp = append(tp, bist.MemoryUnderTest{RAM: m})
			} else {
				sp = append(sp, bist.MemoryUnderTest{RAM: m})
			}
		}
		groups = append(groups,
			bist.Group{Name: "sp", Alg: march.MarchCMinus(), Mems: sp},
			bist.Group{Name: "tp", Alg: march.MarchCMinus(), Mems: tp})
		eng, err := bist.NewEngine(groups, bist.Serial)
		if err != nil {
			b.Fatal(err)
		}
		r := eng.Run()
		if !r.Pass {
			b.Fatal("BIST failed on healthy memories")
		}
		cycles = r.Cycles
	}
	b.ReportMetric(float64(cycles), "bist-cycles")
}

// --- Fig. 4: BRAINS integrated into STEAC -----------------------------------

func BenchmarkFig4BrainsIntegration(b *testing.B) {
	var cycles int
	for i := 0; i < b.N; i++ {
		br, err := brains.CompileContext(context.Background(), dsc.Memories(), brains.Options{Grouping: brains.GroupPerMemory})
		if err != nil {
			b.Fatal(err)
		}
		tests, err := sched.BuildTests(dsc.Cores(), core.BISTGroups(br))
		if err != nil {
			b.Fatal(err)
		}
		s, err := sched.SessionBasedContext(context.Background(), tests, dsc.Resources())
		if err != nil {
			b.Fatal(err)
		}
		cycles = s.TotalCycles
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// --- §2 BRAINS: March efficiency by fault simulation -----------------------

func BenchmarkMarchCoverage(b *testing.B) {
	cfg := memory.Config{Name: "proxy", Words: 16, Bits: 4}
	faults := memfault.AllFaults(cfg)
	var pct float64
	for i := 0; i < b.N; i++ {
		camp, err := memfault.CoverageContext(context.Background(), march.MarchCMinus(), cfg, faults, memfault.Options{})
		if err != nil {
			b.Fatal(err)
		}
		pct = camp.Percent()
	}
	b.ReportMetric(pct, "coverage-pct")
}

// Observability overhead: the identical campaign with span timing and
// pprof labels enabled (counters are always live, so the baseline above
// already pays for them).  EXPERIMENTS.md records the delta against
// BenchmarkMarchCoverage; the budget is <3% wall clock.
func BenchmarkMarchCoverageObs(b *testing.B) {
	obs.Enable()
	defer obs.Disable()
	cfg := memory.Config{Name: "proxy", Words: 16, Bits: 4}
	faults := memfault.AllFaults(cfg)
	var pct float64
	for i := 0; i < b.N; i++ {
		camp, err := memfault.CoverageContext(context.Background(), march.MarchCMinus(), cfg, faults, memfault.Options{})
		if err != nil {
			b.Fatal(err)
		}
		pct = camp.Percent()
	}
	b.ReportMetric(pct, "coverage-pct")
}

// Parallel fault-simulation campaign: worker scaling on a larger geometry
// (the 16x4 proxy finishes in microseconds and would only measure pool
// overhead).  Each sub-benchmark reports its speedup over the workers=1 run
// and cross-checks that the parallel campaign is bit-identical to serial.
func BenchmarkCoverageParallel(b *testing.B) {
	cfg := memory.Config{Name: "proxy", Words: 64, Bits: 8}
	faults := memfault.AllFaults(cfg)
	alg := march.MarchCMinus()

	serial, err := memfault.CoverageContext(context.Background(), alg, cfg, faults, memfault.Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	// Serial reference timing for the speedup metric (best of 3 runs;
	// testing.Benchmark cannot nest inside a running benchmark).
	serialNs := math.MaxFloat64
	for r := 0; r < 3; r++ {
		start := time.Now()
		if _, err := memfault.CoverageContext(context.Background(), alg, cfg, faults, memfault.Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
		if ns := float64(time.Since(start).Nanoseconds()); ns < serialNs {
			serialNs = ns
		}
	}

	workerCounts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workerCounts = append(workerCounts, n)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var camp memfault.Campaign
			for i := 0; i < b.N; i++ {
				c, err := memfault.CoverageContext(context.Background(), alg, cfg, faults, memfault.Options{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				camp = c
			}
			if !reflect.DeepEqual(camp, serial) {
				b.Fatal("parallel campaign differs from serial")
			}
			b.ReportMetric(serialNs/(float64(b.Elapsed().Nanoseconds())/float64(b.N)), "speedup")
			b.ReportMetric(camp.Percent(), "coverage-pct")
		})
	}
}

// --- Ablations ---------------------------------------------------------------

// Wrapper chain design heuristics (DESIGN.md ablation).
func BenchmarkWrapperChainDesignLPT(b *testing.B)      { benchPartition(b, wrapper.LPT) }
func BenchmarkWrapperChainDesignFirstFit(b *testing.B) { benchPartition(b, wrapper.FirstFit) }
func BenchmarkWrapperChainDesignOptimal(b *testing.B)  { benchPartition(b, wrapper.Optimal) }

func benchPartition(b *testing.B, p wrapper.Partitioner) {
	usb := dsc.USB()
	var maxLen int
	for i := 0; i < b.N; i++ {
		plan, err := wrapper.DesignChains(usb, 3, p)
		if err != nil {
			b.Fatal(err)
		}
		maxLen = plan.MaxLength()
	}
	b.ReportMetric(float64(maxLen), "max-chain")
}

// Serial vs parallel memory BIST inside the BIST subsystem.
func BenchmarkBISTSchedulingAblation(b *testing.B) {
	for _, schedKind := range []bist.Schedule{bist.Serial, bist.Parallel} {
		b.Run(schedKind.String(), func(b *testing.B) {
			var cycles int
			for i := 0; i < b.N; i++ {
				var groups []bist.Group
				for _, cfg := range dsc.Memories() {
					m, err := memory.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					groups = append(groups, bist.Group{
						Name: cfg.Name, Alg: march.MarchCMinus(),
						Mems: []bist.MemoryUnderTest{{RAM: m}},
					})
				}
				eng, err := bist.NewEngine(groups, schedKind)
				if err != nil {
					b.Fatal(err)
				}
				cycles = eng.Run().Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// Gate-level BIST generation cost (hardware side of Fig. 2).
func BenchmarkBISTNetlistGeneration(b *testing.B) {
	groups := []bist.GroupSpec{
		{Name: "sp", Alg: march.MarchCMinus(), Mems: dsc.Memories()[:4]},
	}
	var gates float64
	for i := 0; i < b.N; i++ {
		d := netlist.NewDesign("bench", nil)
		_, area, err := bist.GenerateBIST(d, "membist", groups)
		if err != nil {
			b.Fatal(err)
		}
		gates = area.Total()
	}
	b.ReportMetric(gates, "gates")
}

// Pattern translation throughput (the translator streams ~4.4M cycles in
// the full flow; here one scan core's stream is measured in isolation).
func BenchmarkPatternTranslation(b *testing.B) {
	tv := dsc.TV()
	tv.Patterns = tv.Patterns[:1] // scan set only
	src, err := pattern.NewATPG(tv)
	if err != nil {
		b.Fatal(err)
	}
	res := sched.Resources{TestPins: 12, FuncPins: 4, Partitioner: wrapper.LPT}
	tests, err := sched.BuildTests([]*testinfo.Core{tv}, nil)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.SessionBasedContext(context.Background(), tests, res)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := pattern.Translate(s, map[string]pattern.Source{"TV": src}, res)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := prog.Stream(prog.Sessions[0], func(c int, cyc *pattern.Cycle) bool {
			n++
			return true
		}); err != nil {
			b.Fatal(err)
		}
		if n != prog.Sessions[0].Cycles {
			b.Fatalf("streamed %d cycles", n)
		}
	}
}

// ATE application throughput on the miniature chip.
func BenchmarkATEApplication(b *testing.B) {
	tv := dsc.TV()
	tv.Patterns = []testinfo.PatternSet{{Name: "scan", Type: testinfo.Scan, Count: 20, Seed: 9}}
	src, err := pattern.NewATPG(tv)
	if err != nil {
		b.Fatal(err)
	}
	res := sched.Resources{TestPins: 12, FuncPins: 4, Partitioner: wrapper.LPT}
	tests, err := sched.BuildTests([]*testinfo.Core{tv}, nil)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.SessionBasedContext(context.Background(), tests, res)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := pattern.Translate(s, map[string]pattern.Source{"TV": src}, res)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip := ate.NewChip(prog, []*testinfo.Core{tv})
		r, err := ate.Run(prog, chip)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Pass {
			b.Fatal("healthy chip failed")
		}
	}
}

// Scheduler scaling on ITC'02-style synthetic SOCs: runtime of the
// session-based scheduler (exhaustive partitions up to 10 cores, greedy
// beyond) and the persistent session-vs-non-session gap.
func BenchmarkSyntheticSchedulers(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("cores=%d", n), func(b *testing.B) {
			cores := sched.SyntheticSOC(42, n)
			bist := sched.SyntheticBIST(42, n/2+1)
			tests, err := sched.BuildTests(cores, bist)
			if err != nil {
				b.Fatal(err)
			}
			res := sched.SyntheticResources(cores)
			res.Partitioner = wrapper.LPT
			var sb, nsb int
			for i := 0; i < b.N; i++ {
				s, err := sched.SessionBasedContext(context.Background(), tests, res)
				if err != nil {
					b.Fatal(err)
				}
				sb = s.TotalCycles
				ns, err := sched.NonSessionBased(tests, res)
				if err != nil {
					b.Fatal(err)
				}
				nsb = ns.TotalCycles
			}
			b.ReportMetric(float64(sb), "session-cycles")
			b.ReportMetric(float64(nsb), "nonsession-cycles")
		})
	}
}

// Parallel session-partition search: worker scaling of the exact
// branch-and-bound on a 9-core synthetic SOC (Bell(9) = 21,147 partitions).
// The schedule must be identical for every worker count.
func BenchmarkSessionSearchParallel(b *testing.B) {
	cores := sched.SyntheticSOC(42, 9)
	bist := sched.SyntheticBIST(42, 5)
	tests, err := sched.BuildTests(cores, bist)
	if err != nil {
		b.Fatal(err)
	}
	res := sched.SyntheticResources(cores)
	res.Partitioner = wrapper.LPT
	res.Workers = 1
	ref, err := sched.SessionBasedContext(context.Background(), tests, res)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			res := res
			res.Workers = w
			var total int
			for i := 0; i < b.N; i++ {
				s, err := sched.SessionBasedContext(context.Background(), tests, res)
				if err != nil {
					b.Fatal(err)
				}
				total = s.TotalCycles
			}
			if total != ref.TotalCycles {
				b.Fatalf("workers=%d total %d != serial %d", w, total, ref.TotalCycles)
			}
			b.ReportMetric(float64(total), "session-cycles")
		})
	}
}

// Tester-file emission throughput (the chip-level pattern hand-off).
func BenchmarkProgramFileWrite(b *testing.B) {
	tv := dsc.TV()
	tv.Patterns = []testinfo.PatternSet{{Name: "scan", Type: testinfo.Scan, Count: 50, Seed: 9}}
	src, err := pattern.NewATPG(tv)
	if err != nil {
		b.Fatal(err)
	}
	res := sched.Resources{TestPins: 12, FuncPins: 4, Partitioner: wrapper.LPT}
	tests, err := sched.BuildTests([]*testinfo.Core{tv}, nil)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sched.SessionBasedContext(context.Background(), tests, res)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := pattern.Translate(s, map[string]pattern.Source{"TV": src}, res)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int64
		cw := countWriter{&n}
		if err := pattern.WriteProgramFile(cw, prog); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(n)
	}
}

type countWriter struct{ n *int64 }

func (w countWriter) Write(p []byte) (int, error) {
	*w.n += int64(len(p))
	return len(p), nil
}

// EXTEST interconnect-test session cost on the DSC chip (24 glue wires).
func BenchmarkExtestInterconnect(b *testing.B) {
	cores := dsc.Cores()
	var cycles, vectors int
	for i := 0; i < b.N; i++ {
		lane, err := pattern.BuildExtest(cores, dsc.Interconnects(), nil, wrapper.LPT)
		if err != nil {
			b.Fatal(err)
		}
		cycles, vectors = lane.Cycles, lane.Vectors
	}
	b.ReportMetric(float64(cycles), "cycles")
	b.ReportMetric(float64(vectors), "vectors")
}

// Port-B verification cost across the DSC's two-port macros.
func BenchmarkPortBVerification(b *testing.B) {
	var twoPort []memory.Config
	for _, m := range dsc.Memories() {
		if m.Kind == memory.TwoPort {
			twoPort = append(twoPort, m)
		}
	}
	var cycles int
	for i := 0; i < b.N; i++ {
		res, err := brains.CompileContext(context.Background(), twoPort, brains.Options{PortBTest: true})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := brains.NewEngine(res, nil)
		if err != nil {
			b.Fatal(err)
		}
		r := eng.Run()
		if !r.Pass {
			b.Fatal("port-B self test failed")
		}
		cycles = r.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// Verilog netlist I/O throughput on the DFT-inserted DSC design.
func BenchmarkVerilogRoundTrip(b *testing.B) {
	soc, err := dsc.BuildSOC()
	if err != nil {
		b.Fatal(err)
	}
	v, err := soc.EmitVerilogString()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(v)))
	for i := 0; i < b.N; i++ {
		back, err := netlist.ParseVerilog(v, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := back.EmitVerilogString(); err != nil {
			b.Fatal(err)
		}
	}
}

// Wrapper-partitioner effect on the whole DSC schedule (ablation from
// DESIGN.md): LPT vs first-fit chain assignment.
func BenchmarkScheduleAblationPartitioner(b *testing.B) {
	for _, part := range []wrapper.Partitioner{wrapper.LPT, wrapper.FirstFit} {
		b.Run(part.String(), func(b *testing.B) {
			tests, res := dscTests(b)
			res.Partitioner = part
			var cycles int
			for i := 0; i < b.N; i++ {
				s, err := sched.SessionBasedContext(context.Background(), tests, res)
				if err != nil {
					b.Fatal(err)
				}
				cycles = s.TotalCycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// Soft-core rebalancing ablation (paper §2 feedback loop): USB as a hard
// vs soft core at TAM width 4.
func BenchmarkSoftCoreRebalancing(b *testing.B) {
	hard := dsc.USB()
	soft := dsc.USB()
	soft.Soft = true
	var hardCycles, softCycles int
	for i := 0; i < b.N; i++ {
		hp, err := wrapper.DesignChains(hard, 4, wrapper.LPT)
		if err != nil {
			b.Fatal(err)
		}
		hardCycles = hp.ScanTestCycles(716)
		_, sp, err := wrapper.Rebalance(soft, 4)
		if err != nil {
			b.Fatal(err)
		}
		softCycles = sp.ScanTestCycles(716)
	}
	b.ReportMetric(float64(hardCycles), "hard-cycles")
	b.ReportMetric(float64(softCycles), "soft-cycles")
}
