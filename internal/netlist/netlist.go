// Package netlist provides the structural-netlist substrate used by every
// hardware generator in this repository (test wrappers, TAM multiplexers,
// test controllers, and memory-BIST circuits).
//
// A Design is a set of Modules.  A Module has Ports, Nets and Instances; an
// Instance refers either to a primitive cell from the Library or to another
// Module in the same Design.  Area is accounted in two-input-NAND (NAND2)
// gate equivalents, the unit the paper reports (WBR cell = 26 NAND2 gates,
// Test Controller = 371 gates, TAM multiplexer = 132 gates).
//
// The package also provides Verilog-style emission (Emit*), structural lint
// (Module.Lint, Design.Lint) and a two-valued gate-level simulator
// (Simulator) that is used by the tests to verify generated circuitry
// cycle-by-cycle.
package netlist

import (
	"fmt"
	"sort"
)

// PortDir is the direction of a module or cell port.
type PortDir int

// Port directions.
const (
	In PortDir = iota
	Out
	InOut
)

// String returns the Verilog keyword for the direction.
func (d PortDir) String() string {
	switch d {
	case In:
		return "input"
	case Out:
		return "output"
	case InOut:
		return "inout"
	}
	return fmt.Sprintf("PortDir(%d)", int(d))
}

// Port is a named, directed connection point of a Module.
// Width > 1 describes a bus; bit i of a bus port is referenced from nets
// as "name[i]".
type Port struct {
	Name  string
	Dir   PortDir
	Width int
}

// BitName returns the flattened net name of bit i of a width-wide bus
// port: the bare name when the width is 1, otherwise "name[i]".
func BitName(name string, i, width int) string {
	if width <= 1 {
		return name
	}
	return fmt.Sprintf("%s[%d]", name, i)
}

// Bits returns the flattened single-bit net names of the port
// ("p" for width 1, otherwise "p[0]".."p[w-1]").
func (p Port) Bits() []string {
	if p.Width <= 1 {
		return []string{p.Name}
	}
	bits := make([]string, p.Width)
	for i := range bits {
		bits[i] = fmt.Sprintf("%s[%d]", p.Name, i)
	}
	return bits
}

// Net is a single-bit wire inside a module.  Bus ports are flattened to
// one Net per bit at construction time.
type Net struct {
	Name string
	// Attr carries free-form annotations (e.g. "tam", "scan") used by
	// reports; it does not affect simulation.
	Attr string
}

// Instance is the use of a primitive cell or of another module.
type Instance struct {
	Name string
	// Of is the primitive cell name or module name instantiated.
	Of string
	// Conns maps a formal port-bit name of the instantiated cell/module to
	// an actual net name in the parent module.
	Conns map[string]string
}

// Module is a hierarchical netlist node.
type Module struct {
	Name      string
	Ports     []Port
	Nets      map[string]*Net
	Instances []*Instance

	// Behavioral marks IP blocks whose internals we do not elaborate
	// (e.g. the JPEG codec of the DSC chip).  Their area is AreaOverride.
	Behavioral bool
	// AreaOverride is the NAND2-equivalent gate count of a Behavioral
	// module.
	AreaOverride float64
	// Attrs carries free-form annotations used by reports.
	Attrs map[string]string

	ports map[string]*Port
	insts map[string]*Instance
}

// NewModule creates an empty module with the given name.
func NewModule(name string) *Module {
	return &Module{
		Name:  name,
		Nets:  make(map[string]*Net),
		Attrs: make(map[string]string),
		ports: make(map[string]*Port),
		insts: make(map[string]*Instance),
	}
}

// AddPort declares a port and its backing nets.  It returns an error if the
// name is already used.
func (m *Module) AddPort(name string, dir PortDir, width int) error {
	if width < 1 {
		return fmt.Errorf("netlist: port %s.%s: width %d < 1", m.Name, name, width)
	}
	if _, ok := m.ports[name]; ok {
		return fmt.Errorf("netlist: duplicate port %s.%s", m.Name, name)
	}
	p := Port{Name: name, Dir: dir, Width: width}
	m.Ports = append(m.Ports, p)
	m.ports[name] = &m.Ports[len(m.Ports)-1]
	for _, b := range p.Bits() {
		if _, ok := m.Nets[b]; !ok {
			m.Nets[b] = &Net{Name: b}
		}
	}
	return nil
}

// MustPort is AddPort that panics on error; intended for generator code
// whose inputs are program-constructed and cannot legitimately collide.
func (m *Module) MustPort(name string, dir PortDir, width int) {
	if err := m.AddPort(name, dir, width); err != nil {
		panic(err)
	}
}

// Port returns the declared port with the given name, or nil.
func (m *Module) Port(name string) *Port { return m.ports[name] }

// AddNet declares an internal single-bit net.  Adding an existing net is a
// no-op, so generators can freely re-declare junction nets.
func (m *Module) AddNet(name string) *Net {
	if n, ok := m.Nets[name]; ok {
		return n
	}
	n := &Net{Name: name}
	m.Nets[name] = n
	return n
}

// AddInstance instantiates cell or module `of` under the given instance
// name, with conns mapping formal port bits to actual nets.  Actual nets are
// created on demand.
func (m *Module) AddInstance(name, of string, conns map[string]string) (*Instance, error) {
	if _, ok := m.insts[name]; ok {
		return nil, fmt.Errorf("netlist: duplicate instance %s in %s", name, m.Name)
	}
	cp := make(map[string]string, len(conns))
	for formal, actual := range conns {
		cp[formal] = actual
		m.AddNet(actual)
	}
	inst := &Instance{Name: name, Of: of, Conns: cp}
	m.Instances = append(m.Instances, inst)
	m.insts[name] = inst
	return inst, nil
}

// MustInstance is AddInstance that panics on error.
func (m *Module) MustInstance(name, of string, conns map[string]string) *Instance {
	inst, err := m.AddInstance(name, of, conns)
	if err != nil {
		panic(err)
	}
	return inst
}

// Instance returns the instance with the given name, or nil.
func (m *Module) Instance(name string) *Instance { return m.insts[name] }

// Design is a set of modules with a designated top.
type Design struct {
	Name    string
	Top     string
	Modules map[string]*Module
	Lib     *Library
}

// NewDesign creates an empty design using lib for primitive cells.
// A nil lib selects the DefaultLibrary.
func NewDesign(name string, lib *Library) *Design {
	if lib == nil {
		lib = DefaultLibrary()
	}
	return &Design{Name: name, Modules: make(map[string]*Module), Lib: lib}
}

// AddModule registers a module; the first module added becomes the top
// unless Top is set explicitly.
func (d *Design) AddModule(m *Module) error {
	if _, ok := d.Modules[m.Name]; ok {
		return fmt.Errorf("netlist: duplicate module %s in design %s", m.Name, d.Name)
	}
	d.Modules[m.Name] = m
	if d.Top == "" {
		d.Top = m.Name
	}
	return nil
}

// MustAddModule is AddModule that panics on error.
func (d *Design) MustAddModule(m *Module) {
	if err := d.AddModule(m); err != nil {
		panic(err)
	}
}

// Module returns the named module or nil.
func (d *Design) Module(name string) *Module { return d.Modules[name] }

// TopModule returns the top module or nil.
func (d *Design) TopModule() *Module { return d.Modules[d.Top] }

// ModuleNames returns the module names in sorted order (deterministic
// iteration for emission and reports).
func (d *Design) ModuleNames() []string {
	names := make([]string, 0, len(d.Modules))
	for n := range d.Modules {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Area returns the NAND2-equivalent area of one module, including the area
// of everything instantiated beneath it.
func (d *Design) Area(moduleName string) (float64, error) {
	memo := make(map[string]float64)
	return d.area(moduleName, memo, make(map[string]bool))
}

func (d *Design) area(name string, memo map[string]float64, onPath map[string]bool) (float64, error) {
	if a, ok := memo[name]; ok {
		return a, nil
	}
	if onPath[name] {
		return 0, fmt.Errorf("netlist: recursive instantiation of %s", name)
	}
	m, ok := d.Modules[name]
	if !ok {
		return 0, fmt.Errorf("netlist: unknown module %s", name)
	}
	if m.Behavioral {
		memo[name] = m.AreaOverride
		return m.AreaOverride, nil
	}
	onPath[name] = true
	defer delete(onPath, name)
	var total float64
	for _, inst := range m.Instances {
		if cell, ok := d.Lib.Cell(inst.Of); ok {
			total += cell.Area
			continue
		}
		sub, err := d.area(inst.Of, memo, onPath)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
		total += sub
	}
	memo[name] = total
	return total, nil
}

// CellHistogram returns how many instances of each primitive cell kind the
// module uses, recursively (behavioral modules contribute nothing).  The
// histogram backs the detailed area reports.
func (d *Design) CellHistogram(moduleName string) (map[string]int, error) {
	hist := make(map[string]int)
	var walk func(name string) error
	walk = func(name string) error {
		m, ok := d.Modules[name]
		if !ok {
			return fmt.Errorf("netlist: unknown module %s", name)
		}
		if m.Behavioral {
			return nil
		}
		for _, inst := range m.Instances {
			if _, ok := d.Lib.Cell(inst.Of); ok {
				hist[inst.Of]++
				continue
			}
			if err := walk(inst.Of); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(moduleName); err != nil {
		return nil, err
	}
	return hist, nil
}

// CellCount returns how many primitive cells (of any kind) a module
// instantiates, recursively.  Behavioral modules count as zero cells.
func (d *Design) CellCount(moduleName string) (int, error) {
	m, ok := d.Modules[moduleName]
	if !ok {
		return 0, fmt.Errorf("netlist: unknown module %s", moduleName)
	}
	if m.Behavioral {
		return 0, nil
	}
	total := 0
	for _, inst := range m.Instances {
		if _, ok := d.Lib.Cell(inst.Of); ok {
			total++
			continue
		}
		sub, err := d.CellCount(inst.Of)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}
