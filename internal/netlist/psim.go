package netlist

import (
	"fmt"

	"steac/internal/obs"
)

// Observability for the packed engine mirrors the compiled one: ticks are
// the finest grain counted, Settle stays uninstrumented.  Packed tick and
// sim counts are deterministic functions of the campaign fault lists, so
// they are worker-count-invariant like every other counter.
var (
	obsPackedSims  = obs.GetCounter("netlist.packed_sims")
	obsPackedTicks = obs.GetCounter("netlist.packed_ticks")
)

// Lanes is the number of independent circuit copies a PackedSim carries:
// one per bit of a machine word.
const Lanes = 64

// PackedSim is the word-packed parallel-fault variant of CompiledSim: the
// same compiled program (net interning, opcode switch, topological comb
// order), but every net holds a uint64 where bit i carries lane i's value,
// so one pass through the gate array simulates 64 circuit copies.  The
// boolean opcode switch becomes branch-free bitwise ops (NAND2 is
// ^(a & b)), sequential state is word-wide, and stuck-at injection is a
// per-pin AND/OR lane mask applied where the pin reads (input faults) or
// where the driver writes (output faults) — the packed equivalent of
// CompiledSim's rewiring to the reserved constant nets.
//
// Lane semantics are exactly CompiledSim's per lane: an unfaulted lane
// computes the same trajectory as a fault-free CompiledSim, and a lane with
// one injected fault computes the same trajectory as a CompiledSim clone
// with that Inject applied.  TestPackedSimMatchesScalar locks that in
// bit-for-bit.  By the xcheck campaign convention, lane Lanes-1 is reserved
// for the fault-free machine so detection is (word ^ golden) != 0.
type PackedSim struct {
	p     *csProg
	gates []cGate  // headers copied from the base; in/out arrays shared read-only
	vals  []uint64 // net lane-words, indexed by net id
	state []uint64 // per-gate stored lanes (sequential gates only)
	next  []uint64
	pre   []uint64 // scratch: pre-edge clock lanes in the generic Tick path

	// Force lookup is per gate: a 63-lane batch injects dozens of sites, and
	// every masked pin access during eval must find its (at most few) forces
	// without scanning the whole batch's list.
	gforces [][]laneForce // per gate: merged entries for its faulted pins
	fgates  []int32       // gates with at least one force, for clear/reset
	masked  []bool        // per gate: gforces[gi] non-empty

	scratch map[string]bool // per-lane input map for custom (non-library) cells
	clkIDs  map[string]int
	coutW   []uint64 // scratch: custom comb output lane-words
	coutM   []uint64 // scratch: lanes where Eval produced each output
}

// laneForce is the packed counterpart of cForce: instead of rewiring a pin,
// the affected lanes are masked wherever the pin's word is read (inputs) or
// driven (outputs).  mask holds every faulted lane on the pin, set the
// subset stuck at 1; the applied value is (word &^ mask) | set.  Entries
// live in the owning gate's gforces list.
type laneForce struct {
	slot int32
	out  bool
	mask uint64
	set  uint64
}

// NewPackedSim builds a packed simulator over base's compiled program with
// every lane at the all-zero reset state.  The base must be fault-free
// (campaigns inject per lane via InjectLane); its gate headers are copied
// so later Inject calls on the base cannot alias the packed machine.
func NewPackedSim(base *CompiledSim) (*PackedSim, error) {
	if len(base.forces) > 0 {
		return nil, fmt.Errorf("netlist: packed sim requires a fault-free base (has %d forces)", len(base.forces))
	}
	s := &PackedSim{
		p:       base.p,
		gates:   append([]cGate(nil), base.gates...),
		vals:    make([]uint64, len(base.vals)),
		state:   make([]uint64, len(base.state)),
		next:    make([]uint64, len(base.next)),
		pre:     make([]uint64, len(base.pre)),
		gforces: make([][]laneForce, len(base.gates)),
		masked:  make([]bool, len(base.gates)),
		scratch: make(map[string]bool, 8),
		clkIDs:  make(map[string]int, 2),
	}
	s.vals[s.p.const1] = ^uint64(0)
	s.Settle()
	obsPackedSims.Add(1)
	return s, nil
}

// GateCount reports the number of flattened primitive gates.
func (s *PackedSim) GateCount() int { return len(s.gates) }

// NetID resolves a net name to its dense id, or -1 when unknown.
func (s *PackedSim) NetID(name string) int {
	if id, ok := s.p.ids[name]; ok {
		return int(id)
	}
	return -1
}

// BusIDs resolves port bits name[0..width-1] per the BitName convention.
func (s *PackedSim) BusIDs(name string, width int) []int {
	ids := make([]int, width)
	for i := range ids {
		ids[i] = s.NetID(BitName(name, i, width))
	}
	return ids
}

// SetID broadcasts one value to every lane of a net.
func (s *PackedSim) SetID(id int, v bool) {
	if v {
		s.vals[id] = ^uint64(0)
	} else {
		s.vals[id] = 0
	}
}

// SetWordID drives a net with per-lane values.
func (s *PackedSim) SetWordID(id int, w uint64) { s.vals[id] = w }

// GetWordID reads a net's lane-word.
func (s *PackedSim) GetWordID(id int) uint64 { return s.vals[id] }

// GetLaneID reads one lane of a net.
func (s *PackedSim) GetLaneID(id, lane int) bool { return s.vals[id]>>uint(lane)&1 == 1 }

// Set broadcasts to a top-level net by name; unknown names are ignored.
func (s *PackedSim) Set(net string, v bool) {
	if id := s.NetID(net); id >= 0 {
		s.SetID(id, v)
	}
}

// inWord reads one input pin's lane-word, applying any input-force mask.
func (s *PackedSim) inWord(gi int32, slot int) uint64 {
	g := &s.gates[gi]
	n := g.in[slot]
	var w uint64
	if n >= 0 {
		w = s.vals[n]
	}
	if s.masked[gi] {
		for i := range s.gforces[gi] {
			f := &s.gforces[gi][i]
			if !f.out && int(f.slot) == slot {
				w = (w &^ f.mask) | f.set
				break
			}
		}
	}
	return w
}

// writeOut drives one output slot's net.  An output force is the packed
// equivalent of CompiledSim disconnecting the driver and pinning the net:
// forced lanes RETAIN the net's current value instead of taking the gate's
// — the forced value is asserted once at inject/Reset and persists because
// nothing else writes those lanes (and, exactly like the scalar
// disconnection, an external Set on the net sticks until Reset).
func (s *PackedSim) writeOut(gi int32, oi int, z uint64) {
	g := &s.gates[gi]
	n := g.out[oi]
	if n < 0 {
		return
	}
	if s.masked[gi] {
		for i := range s.gforces[gi] {
			f := &s.gforces[gi][i]
			if f.out && int(f.slot) == oi {
				z = (z &^ f.mask) | (s.vals[n] & f.mask)
				break
			}
		}
	}
	s.vals[n] = z
}

// Settle exposes sequential state and evaluates every combinational gate
// once in topological order, all 64 lanes per pass.
func (s *PackedSim) Settle() {
	for _, gi := range s.p.seqs {
		g := &s.gates[gi]
		st := s.state[gi]
		if g.qSlot >= 0 && g.out[g.qSlot] >= 0 {
			s.writeOut(gi, g.qSlot, st)
		}
		if g.qnSlot >= 0 && g.out[g.qnSlot] >= 0 {
			s.writeOut(gi, g.qnSlot, ^st)
		}
	}
	for _, gi := range s.p.comb {
		s.evalComb(gi)
	}
}

func (s *PackedSim) evalComb(gi int32) {
	g := &s.gates[gi]
	if g.op == opCustom || s.masked[gi] {
		s.evalCombSlow(gi)
		return
	}
	var a, b uint64
	if len(g.in) > 0 && g.in[0] >= 0 {
		a = s.vals[g.in[0]]
	}
	if len(g.in) > 1 && g.in[1] >= 0 {
		b = s.vals[g.in[1]]
	}
	var z uint64
	switch g.op {
	case opInv:
		z = ^a
	case opBuf:
		z = a
	case opNand2:
		z = ^(a & b)
	case opNor2:
		z = ^(a | b)
	case opAnd2:
		z = a & b
	case opOr2:
		z = a | b
	case opXor2:
		z = a ^ b
	case opXnor2:
		z = ^(a ^ b)
	case opMux2:
		var sel uint64
		if g.in[2] >= 0 {
			sel = s.vals[g.in[2]]
		}
		z = (b & sel) | (a &^ sel)
	case opTie0:
		z = 0
	case opTie1:
		z = ^uint64(0)
	}
	if len(g.out) > 0 && g.out[0] >= 0 {
		s.vals[g.out[0]] = z
	}
}

// evalCombSlow is the masked/custom path: library cells re-read inputs
// through the force masks; custom cells evaluate per lane through the
// scratch map (they are off the DSC hot path).
func (s *PackedSim) evalCombSlow(gi int32) {
	g := &s.gates[gi]
	if g.op == opCustom {
		s.evalCustomComb(gi)
		return
	}
	var z uint64
	switch g.op {
	case opInv:
		z = ^s.inWord(gi, 0)
	case opBuf:
		z = s.inWord(gi, 0)
	case opNand2:
		z = ^(s.inWord(gi, 0) & s.inWord(gi, 1))
	case opNor2:
		z = ^(s.inWord(gi, 0) | s.inWord(gi, 1))
	case opAnd2:
		z = s.inWord(gi, 0) & s.inWord(gi, 1)
	case opOr2:
		z = s.inWord(gi, 0) | s.inWord(gi, 1)
	case opXor2:
		z = s.inWord(gi, 0) ^ s.inWord(gi, 1)
	case opXnor2:
		z = ^(s.inWord(gi, 0) ^ s.inWord(gi, 1))
	case opMux2:
		sel := s.inWord(gi, 2)
		z = (s.inWord(gi, 1) & sel) | (s.inWord(gi, 0) &^ sel)
	case opTie0:
		z = 0
	case opTie1:
		z = ^uint64(0)
	}
	if len(g.out) > 0 {
		s.writeOut(gi, 0, z)
	}
}

// evalCustomComb evaluates a non-library combinational cell lane by lane.
// Like CompiledSim.evalCustom, an output key the Eval closure omits leaves
// that lane's net bit unchanged.
func (s *PackedSim) evalCustomComb(gi int32) {
	g := &s.gates[gi]
	nOut := len(g.cell.Outputs)
	if cap(s.coutW) < nOut {
		s.coutW = make([]uint64, nOut)
		s.coutM = make([]uint64, nOut)
	}
	w := s.coutW[:nOut]
	m := s.coutM[:nOut]
	for i := range w {
		w[i], m[i] = 0, 0
	}
	for lane := 0; lane < Lanes; lane++ {
		bit := uint64(1) << uint(lane)
		clear(s.scratch)
		for si, f := range g.cell.Inputs {
			s.scratch[f] = s.inWord(gi, si)&bit != 0
		}
		out := g.cell.Eval(s.scratch)
		for oi, f := range g.cell.Outputs {
			if v, ok := out[f]; ok {
				m[oi] |= bit
				if v {
					w[oi] |= bit
				}
			}
		}
	}
	for oi := range w {
		n := g.out[oi]
		if n < 0 || m[oi] == 0 {
			continue
		}
		s.writeOut(gi, oi, (s.vals[n]&^m[oi])|(w[oi]&m[oi]))
	}
}

// evalCustomSeqLane computes one lane of a custom sequential cell's next
// state, mirroring CompiledSim.evalCustom's sequential branch.
func (s *PackedSim) evalCustomSeqLane(gi int32, lane int, clockHigh bool) bool {
	g := &s.gates[gi]
	bit := uint64(1) << uint(lane)
	clear(s.scratch)
	for si, f := range g.cell.Inputs {
		s.scratch[f] = s.inWord(gi, si)&bit != 0
	}
	s.scratch["Q"] = s.state[gi]&bit != 0
	if clockHigh {
		s.scratch[g.cell.Clock] = true
	}
	return g.cell.Eval(s.scratch)["Q"]
}

// evalSeqNext computes the next stored lane-word of a sequential gate from
// the current settled net values — the word-wide twin of
// CompiledSim.evalSeqNext.
func (s *PackedSim) evalSeqNext(gi int32, clockHigh bool) uint64 {
	g := &s.gates[gi]
	switch g.op {
	case opDFF: // D, CK
		return s.inWord(gi, 0)
	case opSDFF: // D, SI, SE, CK
		se := s.inWord(gi, 2)
		return (s.inWord(gi, 1) & se) | (s.inWord(gi, 0) &^ se)
	case opDFFR: // D, CK, R — reset sampled on the edge
		return s.inWord(gi, 0) &^ s.inWord(gi, 2)
	case opLatch: // D, EN
		en := s.inWord(gi, 1)
		if clockHigh {
			en = ^uint64(0)
		}
		return (s.inWord(gi, 0) & en) | (s.state[gi] &^ en)
	}
	var w uint64
	for lane := 0; lane < Lanes; lane++ {
		if s.evalCustomSeqLane(gi, lane, clockHigh) {
			w |= 1 << uint(lane)
		}
	}
	return w
}

// clockWord reads a sequential gate's clock pin through the force masks.
func (s *PackedSim) clockWord(gi int32) uint64 {
	return s.inWord(gi, s.gates[gi].clkSlot)
}

// clkKeep returns the lanes whose clock pin is NOT forced — the packed
// equivalent of CompiledSim's clock-pure skip of flops whose clock pin was
// rewired to a constant: a lane with a stuck clock pin never sees an edge.
func (s *PackedSim) clkKeep(gi int32) uint64 {
	if !s.masked[gi] {
		return ^uint64(0)
	}
	g := &s.gates[gi]
	keep := ^uint64(0)
	for i := range s.gforces[gi] {
		f := &s.gforces[gi][i]
		if !f.out && int(f.slot) == g.clkSlot {
			keep &^= f.mask
			break
		}
	}
	return keep
}

// Tick pulses the named top-level clock net across all lanes.
func (s *PackedSim) Tick(clock string) {
	id, ok := s.clkIDs[clock]
	if !ok {
		id = s.NetID(clock)
		s.clkIDs[clock] = id
	}
	if id < 0 {
		return
	}
	s.TickID(id)
}

// TickID pulses a clock net by id with CompiledSim.TickID's semantics,
// per lane: settle low, capture every sequential cell on lanes whose clock
// pin sees a rising edge, commit, settle.  Capture is masked per lane, so a
// lane whose clock pin is stuck never captures — exactly like the scalar
// engine skipping a flop whose clock pin was rewired to a constant.
func (s *PackedSim) TickID(ck int) {
	obsPackedTicks.Add(1)
	s.vals[ck] = 0
	s.Settle()
	if s.p.clockPure[ck] {
		for _, gi := range s.p.seqs {
			g := &s.gates[gi]
			if g.in[g.clkSlot] == int32(ck) {
				capt := s.clkKeep(gi)
				s.state[gi] = (s.evalSeqNext(gi, true) & capt) | (s.state[gi] &^ capt)
			}
		}
		s.Settle()
		return
	}
	for _, gi := range s.p.seqs {
		s.pre[gi] = s.clockWord(gi)
	}
	s.vals[ck] = ^uint64(0)
	s.Settle()
	for _, gi := range s.p.seqs {
		edge := ^s.pre[gi] & s.clockWord(gi)
		if edge != 0 {
			s.next[gi] = (s.evalSeqNext(gi, false) & edge) | (s.state[gi] &^ edge)
		} else {
			s.next[gi] = s.state[gi]
		}
	}
	for _, gi := range s.p.seqs {
		s.state[gi] = s.next[gi]
	}
	s.Settle()
	s.vals[ck] = 0
	s.Settle()
}

// Faults enumerates every injectable stuck-at site, shared with the base.
func (s *PackedSim) Faults() []SAFault { return s.p.sites }

// InjectLane forces a stuck-at fault on one port of one flattened gate in
// one lane.  Resolution and error cases mirror CompiledSim.Inject exactly
// (so a fault the scalar engine rejects is rejected here too); the effect
// is a lane mask instead of a rewire.  Injecting both polarities on the
// same pin/lane keeps the last value, like re-injecting after ClearFaults.
func (s *PackedSim) InjectLane(lane int, gate, port string, value bool) error {
	if lane < 0 || lane >= Lanes {
		return fmt.Errorf("netlist: packed lane %d out of range", lane)
	}
	gi, ok := s.p.byName[gate]
	if !ok {
		return fmt.Errorf("netlist: no gate named %s", gate)
	}
	g := &s.gates[gi]
	bit := uint64(1) << uint(lane)
	for si, f := range g.cell.Inputs {
		if f != port {
			continue
		}
		if g.in[si] < 0 {
			return fmt.Errorf("netlist: gate %s port %s is unconnected", gate, port)
		}
		s.addForce(gi, si, false, bit, value)
		return nil
	}
	for oi, f := range g.cell.Outputs {
		if f != port {
			continue
		}
		n := g.out[oi]
		if n < 0 {
			return fmt.Errorf("netlist: gate %s port %s is unconnected", gate, port)
		}
		s.addForce(gi, oi, true, bit, value)
		// Assert immediately, like the scalar Inject pinning the net.
		if value {
			s.vals[n] |= bit
		} else {
			s.vals[n] &^= bit
		}
		return nil
	}
	return fmt.Errorf("netlist: gate %s (%s) has no port %s", gate, g.cell.Name, port)
}

func (s *PackedSim) addForce(gi int32, slot int, out bool, bit uint64, value bool) {
	for i := range s.gforces[gi] {
		f := &s.gforces[gi][i]
		if f.out == out && int(f.slot) == slot {
			f.mask |= bit
			if value {
				f.set |= bit
			} else {
				f.set &^= bit
			}
			return
		}
	}
	if !s.masked[gi] {
		s.fgates = append(s.fgates, gi)
		s.masked[gi] = true
	}
	var set uint64
	if value {
		set = bit
	}
	s.gforces[gi] = append(s.gforces[gi], laneForce{slot: int32(slot), out: out, mask: bit, set: set})
}

// ClearFaults removes every lane force.  Net values are stale until the
// next Settle (campaigns call Reset).
func (s *PackedSim) ClearFaults() {
	for _, gi := range s.fgates {
		s.gforces[gi] = s.gforces[gi][:0]
		s.masked[gi] = false
	}
	s.fgates = s.fgates[:0]
}

// Reset returns every lane of every net and sequential bit to 0 and
// settles.  Lane forces stay active; forced output nets are re-asserted on
// their lanes, like the scalar Reset.
func (s *PackedSim) Reset() {
	for i := range s.vals {
		s.vals[i] = 0
	}
	s.vals[s.p.const1] = ^uint64(0)
	for i := range s.state {
		s.state[i] = 0
	}
	for _, gi := range s.fgates {
		for i := range s.gforces[gi] {
			f := &s.gforces[gi][i]
			if f.out {
				if n := s.gates[gi].out[f.slot]; n >= 0 {
					s.vals[n] = f.set
				}
			}
		}
	}
	s.Settle()
}
