package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"steac/internal/brains"
	"steac/internal/catalog"
	"steac/internal/core"
	"steac/internal/dsc"
	"steac/internal/march"
	"steac/internal/memory"
	"steac/internal/scenario"
	"steac/internal/sched"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
	"steac/internal/xcheck"
)

// The request types below are the daemon's wire format.  Every request
// carries two non-semantic tuning fields — Workers and TimeoutMS — that
// never change the result (all engines are worker-count-invariant and a
// deadline either completes or fails the request), so the canonical cache
// key is computed with both zeroed; see requestKey.

func partitionerByName(name string) (wrapper.Partitioner, error) {
	switch name {
	case "", "lpt":
		return wrapper.LPT, nil
	case "firstfit":
		return wrapper.FirstFit, nil
	case "optimal":
		return wrapper.Optimal, nil
	}
	return wrapper.LPT, badRequestf("unknown partitioner %q (lpt, firstfit or optimal)", name)
}

func algorithmByName(name string) (march.Algorithm, error) {
	if name == "" {
		return march.MarchCMinus(), nil
	}
	alg, ok := march.ByName(name)
	if !ok {
		return march.Algorithm{}, badRequestf("unknown March algorithm %q", name)
	}
	return alg, nil
}

// chipByName regenerates a scenario chip for a request.  Spec-level
// failures (unknown scenario, bad distribution, ...) are the client's
// fault and map to 400.
func chipByName(name string, seed int64) (*scenario.Chip, error) {
	chip, err := scenario.GenerateByName(name, seed)
	if err != nil {
		if errors.Is(err, scenario.ErrUnknownScenario) {
			return nil, badRequestf("unknown chip %q (builtin scenarios: %s)",
				name, strings.Join(scenario.Names(), ", "))
		}
		return nil, errBadRequest{err}
	}
	return chip, nil
}

func memoryConfig(words, bits int, twoPort bool) memory.Config {
	kind := memory.SinglePort
	if twoPort {
		kind = memory.TwoPort
	}
	return memory.Config{Name: "req", Words: words, Bits: bits, Kind: kind}
}

// FlowRequest runs the complete STEAC integration flow.  Chip "dsc" loads
// the paper's chip model (Table 1 cores, the 22 embedded memories, the pin
// and power budgets); any other registered scenario name generates the
// chip from the scenario registry with Seed; alternatively supply explicit
// STIL sources and memory configs.
type FlowRequest struct {
	Chip string `json:"chip,omitempty"`
	// Seed samples the scenario chip (ignored for "dsc", which is pinned).
	Seed     int64           `json:"seed,omitempty"`
	STIL     []string        `json:"stil,omitempty"`
	Memories []memory.Config `json:"memories,omitempty"`
	// TestPins/FuncPins/MaxPower/PowerBudget override the chip budget when
	// non-zero.
	TestPins    int     `json:"test_pins,omitempty"`
	FuncPins    int     `json:"func_pins,omitempty"`
	MaxPower    float64 `json:"max_power,omitempty"`
	PowerBudget float64 `json:"power_budget,omitempty"`
	Partition   string  `json:"partition,omitempty"`
	// Algorithm selects the BIST March test by catalog name (default
	// March C-).
	Algorithm string `json:"algorithm,omitempty"`
	Verify    bool   `json:"verify,omitempty"`
	// Extest appends the EXTEST interconnect-test session (chip "dsc").
	Extest bool `json:"extest,omitempty"`

	Workers   int `json:"workers,omitempty"`    // non-semantic
	TimeoutMS int `json:"timeout_ms,omitempty"` // non-semantic
}

func (r FlowRequest) canonical() interface{} {
	r.Workers, r.TimeoutMS = 0, 0
	return r
}

// FlowResponse summarizes a flow run.  Wall-clock time is deliberately
// omitted: responses are content-addressed, so identical requests must
// serialize identically whether computed or replayed from cache.
type FlowResponse struct {
	Cores             []string `json:"cores"`
	Sessions          int      `json:"sessions"`
	ScheduleCycles    int      `json:"schedule_cycles"`
	NonSessionCycles  int      `json:"non_session_cycles"`
	SerialCycles      int      `json:"serial_cycles"`
	BISTCycles        int      `json:"bist_cycles,omitempty"`
	BISTGroups        int      `json:"bist_groups,omitempty"`
	VerifyPass        *bool    `json:"verify_pass,omitempty"`
	VerifyCycles      int      `json:"verify_cycles,omitempty"`
	TranslatedCycles  int      `json:"translated_cycles,omitempty"`
	InterconnectWires int      `json:"interconnect_wires,omitempty"`
	// PeakPower is the highest per-session summed power of the winning
	// schedule — one axis of the catalog's tradeoff tables.
	PeakPower float64 `json:"peak_power,omitempty"`
}

func (r FlowRequest) run(ctx context.Context) (interface{}, error) {
	in := core.FlowInput{Verify: r.Verify}
	switch r.Chip {
	case "dsc":
		stils, err := core.EmitSTIL(dsc.Cores())
		if err != nil {
			return nil, err
		}
		soc, err := dsc.BuildSOC()
		if err != nil {
			return nil, err
		}
		in.STIL = stils
		in.SOC = soc
		in.Memories = dsc.Memories()
		in.Resources = dsc.Resources()
		// Per-memory sequencers reproduce the paper's DSC flow (the
		// schedule is infeasible at 26 test pins under kind-grouping).
		in.BISTOptions.Grouping = brains.GroupPerMemory
		if r.Extest {
			in.Interconnects = dsc.Interconnects()
		}
	case "":
		if len(r.STIL) == 0 {
			return nil, badRequestf("request needs a chip scenario name or explicit stil sources")
		}
		in.STIL = r.STIL
		in.Memories = r.Memories
		in.Resources = sched.Resources{TestPins: 26, FuncPins: 300}
	default:
		chip, err := chipByName(r.Chip, r.Seed)
		if err != nil {
			return nil, err
		}
		if r.Extest {
			return nil, badRequestf("extest is only available for chip \"dsc\"")
		}
		ci, err := chip.FlowInput(r.Verify)
		if err != nil {
			return nil, err
		}
		in = ci
	}
	if r.TestPins > 0 {
		in.Resources.TestPins = r.TestPins
	}
	if r.FuncPins > 0 {
		in.Resources.FuncPins = r.FuncPins
	}
	if r.MaxPower > 0 {
		in.Resources.MaxPower = r.MaxPower
	}
	if r.PowerBudget > 0 {
		in.Resources.PowerBudget = r.PowerBudget
	}
	if r.Partition != "" {
		part, err := partitionerByName(r.Partition)
		if err != nil {
			return nil, err
		}
		in.Resources.Partitioner = part
	}
	// An explicit algorithm always wins; otherwise a scenario chip keeps
	// its own BIST plan and the legacy paths default to March C-.
	if r.Algorithm != "" || in.BISTOptions.Algorithm.Name == "" {
		alg, err := algorithmByName(r.Algorithm)
		if err != nil {
			return nil, err
		}
		in.BISTOptions.Algorithm = alg
	}
	in.BISTOptions.Workers = r.Workers
	in.Resources.Workers = r.Workers

	res, err := core.RunFlowContext(ctx, in)
	if err != nil {
		return nil, err
	}
	out := &FlowResponse{
		Sessions:         len(res.Schedule.Sessions),
		ScheduleCycles:   res.Schedule.TotalCycles,
		NonSessionCycles: res.NonSession.TotalCycles,
		SerialCycles:     res.Serial.TotalCycles,
	}
	for _, sess := range res.Schedule.Sessions {
		if sess.PeakPower > out.PeakPower {
			out.PeakPower = sess.PeakPower
		}
	}
	for _, c := range res.Cores {
		out.Cores = append(out.Cores, c.Name)
	}
	if res.Brains != nil {
		out.BISTCycles = res.Brains.Cycles
		out.BISTGroups = len(res.Brains.Groups)
	}
	if res.Program != nil {
		for _, s := range res.Program.Sessions {
			out.TranslatedCycles += s.Cycles
		}
	}
	out.InterconnectWires = len(in.Interconnects)
	if res.Verify != nil {
		pass := res.Verify.Pass
		out.VerifyPass = &pass
		out.VerifyCycles = res.Verify.Cycles
	}
	return out, nil
}

// SchedRequest sweeps the session-based scheduler over a list of test-pin
// budgets (the paper's Fig. 6 trade-off curve) on the chip's test set.
// Chip may be any registered scenario name (default "dsc").
type SchedRequest struct {
	Chip        string  `json:"chip,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	TestPins    []int   `json:"test_pins"`
	FuncPins    int     `json:"func_pins,omitempty"`
	MaxPower    float64 `json:"max_power,omitempty"`
	PowerBudget float64 `json:"power_budget,omitempty"`
	Partition   string  `json:"partition,omitempty"`

	Workers   int `json:"workers,omitempty"`    // non-semantic
	TimeoutMS int `json:"timeout_ms,omitempty"` // non-semantic
}

func (r SchedRequest) canonical() interface{} {
	r.Workers, r.TimeoutMS = 0, 0
	return r
}

// SchedPoint is one sweep sample.
type SchedPoint struct {
	TestPins   int     `json:"test_pins"`
	Cycles     int     `json:"cycles,omitempty"`
	Sessions   int     `json:"sessions,omitempty"`
	PeakPower  float64 `json:"peak_power,omitempty"`
	Infeasible bool    `json:"infeasible,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// SchedResponse is the full sweep.
type SchedResponse struct {
	Points []SchedPoint `json:"points"`
}

func (r SchedRequest) run(ctx context.Context) (interface{}, error) {
	if len(r.TestPins) == 0 {
		return nil, badRequestf("test_pins sweep list is empty")
	}
	cores, extraBIST, base := dsc.Cores(), []sched.BISTGroup(nil), dsc.Resources()
	if r.Chip != "" && r.Chip != "dsc" {
		chip, err := chipByName(r.Chip, r.Seed)
		if err != nil {
			return nil, err
		}
		cores, extraBIST, base = chip.Cores, chip.ExtraBIST, chip.Resources
	}
	tests, err := sched.BuildTests(cores, extraBIST)
	if err != nil {
		return nil, err
	}
	if r.FuncPins > 0 {
		base.FuncPins = r.FuncPins
	}
	if r.MaxPower > 0 {
		base.MaxPower = r.MaxPower
	}
	if r.PowerBudget > 0 {
		base.PowerBudget = r.PowerBudget
	}
	if r.Partition != "" {
		part, err := partitionerByName(r.Partition)
		if err != nil {
			return nil, err
		}
		base.Partitioner = part
	}
	base.Workers = r.Workers

	out := &SchedResponse{}
	for _, pins := range r.TestPins {
		res := base
		res.TestPins = pins
		s, err := sched.SessionBasedContext(ctx, tests, res)
		switch {
		case err == nil:
			peak := 0.0
			for _, sess := range s.Sessions {
				if sess.PeakPower > peak {
					peak = sess.PeakPower
				}
			}
			out.Points = append(out.Points, SchedPoint{TestPins: pins,
				Cycles: s.TotalCycles, Sessions: len(s.Sessions), PeakPower: peak})
		case isInfeasible(err):
			out.Points = append(out.Points, SchedPoint{TestPins: pins,
				Infeasible: true, Error: err.Error()})
		default:
			return nil, err
		}
	}
	return out, nil
}

// MemfaultRequest grades March algorithms by fault simulation on one
// memory geometry (the BRAINS efficiency evaluation).
type MemfaultRequest struct {
	// Algorithms lists catalog names; empty means the full catalog.
	Algorithms []string `json:"algorithms,omitempty"`
	Words      int      `json:"words"`
	Bits       int      `json:"bits"`
	TwoPort    bool     `json:"two_port,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
	// MaxUndetected follows the shared Options convention (0 = cap 32,
	// negative = keep all).
	MaxUndetected int `json:"max_undetected,omitempty"`

	Workers   int `json:"workers,omitempty"`    // non-semantic
	TimeoutMS int `json:"timeout_ms,omitempty"` // non-semantic
}

func (r MemfaultRequest) canonical() interface{} {
	r.Workers, r.TimeoutMS = 0, 0
	return r
}

// MemfaultRow is one algorithm's grade.
type MemfaultRow struct {
	Algorithm  string  `json:"algorithm"`
	Complexity int     `json:"complexity"`
	Cycles     int     `json:"cycles"`
	Total      int     `json:"total_faults"`
	Detected   int     `json:"detected"`
	Coverage   float64 `json:"coverage_percent"`
}

// MemfaultResponse is the evaluation table.
type MemfaultResponse struct {
	Rows []MemfaultRow `json:"rows"`
}

func (r MemfaultRequest) run(ctx context.Context) (interface{}, error) {
	cfg := memoryConfig(r.Words, r.Bits, r.TwoPort)
	if err := cfg.Validate(); err != nil {
		return nil, errBadRequest{err}
	}
	var algs []march.Algorithm
	for _, name := range r.Algorithms {
		alg, err := algorithmByName(name)
		if err != nil {
			return nil, err
		}
		algs = append(algs, alg)
	}
	rows, err := brains.EvaluateContext(ctx, cfg, algs, brains.Options{
		Workers: r.Workers, Seed: r.Seed, MaxUndetected: r.MaxUndetected,
	})
	if err != nil {
		return nil, err
	}
	out := &MemfaultResponse{}
	for _, row := range rows {
		out.Rows = append(out.Rows, MemfaultRow{
			Algorithm: row.Alg.Name, Complexity: row.Complexity, Cycles: row.Cycles,
			Total: row.Coverage.Total, Detected: row.Coverage.Detected,
			Coverage: row.Coverage.Percent(),
		})
	}
	return out, nil
}

// XCheckRequest runs one gate-level differential campaign: "tpg" injects
// faults into a sequencer + TPG bench, "controller" into the shared BIST
// controller, "wrapper" into a Table-1 core's wrapper stack.
type XCheckRequest struct {
	Kind      string `json:"kind"`
	Algorithm string `json:"algorithm,omitempty"`
	Words     int    `json:"words,omitempty"`
	Bits      int    `json:"bits,omitempty"`
	TwoPort   bool   `json:"two_port,omitempty"`
	NGroups   int    `json:"n_groups,omitempty"`
	// Scenario/ChipSeed regenerate a scenario chip as the design source:
	// Memory then names a "tpg" macro on it and Core resolves against its
	// cores instead of the Table-1 inventory.
	Scenario string `json:"scenario,omitempty"`
	ChipSeed int64  `json:"chip_seed,omitempty"`
	Memory   string `json:"memory,omitempty"`
	// Core names a Table-1 core (USB, TV, JPEG) — or, with Scenario, one of
	// the generated chip's cores — for wrapper campaigns.
	Core      string `json:"core,omitempty"`
	TamWidth  int    `json:"tam_width,omitempty"`
	MaxFaults int    `json:"max_faults,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	// MaxUndetected follows the shared Options convention.
	MaxUndetected int `json:"max_undetected,omitempty"`
	MaxPatterns   int `json:"max_patterns,omitempty"`

	Workers   int `json:"workers,omitempty"`    // non-semantic
	TimeoutMS int `json:"timeout_ms,omitempty"` // non-semantic
}

func (r XCheckRequest) canonical() interface{} {
	r.Workers, r.TimeoutMS = 0, 0
	return r
}

// XCheckResponse summarizes one campaign.
type XCheckResponse struct {
	Name       string  `json:"name"`
	Sites      int     `json:"sites"`
	Total      int     `json:"total_faults"`
	Detected   int     `json:"detected"`
	Undetected int     `json:"undetected"`
	Coverage   float64 `json:"coverage_percent"`
	Sampled    bool    `json:"sampled,omitempty"`
}

func (r XCheckRequest) run(ctx context.Context) (interface{}, error) {
	opts := xcheck.Options{Workers: r.Workers, Seed: r.Seed,
		MaxUndetected: r.MaxUndetected, MaxFaults: r.MaxFaults, MaxPatterns: r.MaxPatterns}
	var chip *scenario.Chip
	if r.Scenario != "" {
		var err error
		if chip, err = chipByName(r.Scenario, r.ChipSeed); err != nil {
			return nil, err
		}
	}
	var (
		res xcheck.CampaignResult
		err error
	)
	switch r.Kind {
	case "tpg":
		alg, aerr := algorithmByName(r.Algorithm)
		if aerr != nil {
			return nil, aerr
		}
		var cfg memory.Config
		if chip != nil && r.Memory != "" {
			found := false
			for _, m := range chip.Memories {
				if m.Name == r.Memory {
					cfg, found = m, true
					break
				}
			}
			if !found {
				return nil, badRequestf("scenario %q chip has no memory %q", r.Scenario, r.Memory)
			}
		} else {
			cfg = memoryConfig(r.Words, r.Bits, r.TwoPort)
		}
		if verr := cfg.Validate(); verr != nil {
			return nil, errBadRequest{verr}
		}
		res, err = xcheck.TPGCampaignContext(ctx, "tpg", alg, []memory.Config{cfg}, opts)
	case "controller":
		n := r.NGroups
		if n <= 0 {
			n = 2
		}
		res, err = xcheck.ControllerCampaignContext(ctx, "controller", n, opts)
	case "wrapper":
		width := r.TamWidth
		if width <= 0 {
			width = 2
		}
		if chip != nil {
			var wc *testinfo.Core
			for _, c := range chip.Cores {
				if c.Name == r.Core {
					wc = c
					break
				}
			}
			if wc == nil {
				return nil, badRequestf("scenario %q chip has no core %q", r.Scenario, r.Core)
			}
			res, err = xcheck.WrapperCampaignContext(ctx, "wrapper", wc, width, opts)
			break
		}
		var c int
		switch r.Core {
		case "USB", "":
			c = 0
		case "TV":
			c = 1
		case "JPEG":
			c = 2
		default:
			return nil, badRequestf("unknown core %q (USB, TV or JPEG)", r.Core)
		}
		res, err = xcheck.WrapperCampaignContext(ctx, "wrapper", dsc.Cores()[c], width, opts)
	default:
		return nil, badRequestf("unknown campaign kind %q (tpg, controller or wrapper)", r.Kind)
	}
	if err != nil {
		return nil, err
	}
	return &XCheckResponse{
		Name: res.Name, Sites: res.Sites, Total: res.Total, Detected: res.Detected,
		Undetected: res.UndetectedCount(), Coverage: res.Coverage(), Sampled: res.Sampled(),
	}, nil
}

// catalogRecords implements catalogSource for flow runs: one record per
// run, keyed by the memo-cache content address.  Explicit-STIL submissions
// are skipped — without scenario provenance the chip cannot be regenerated
// for the feature profile, and an unprofiled record cannot anchor a
// recommendation.
func (r FlowRequest) catalogRecords(fingerprint, tenant string, result interface{}) []catalog.Record {
	res, ok := result.(*FlowResponse)
	if !ok {
		return nil
	}
	feat, cfg, ok := chipProfile(r.Chip, r.Seed)
	if !ok {
		return nil
	}
	// Request overrides win over the chip's own defaults — the record must
	// describe the configuration that actually ran.
	if r.TestPins > 0 {
		cfg.TamWidth = r.TestPins
	}
	if r.Partition != "" {
		cfg.Partitioner = r.Partition
	}
	if r.Algorithm != "" {
		cfg.Algorithm = r.Algorithm
	}
	if r.PowerBudget > 0 {
		cfg.PowerBudget = r.PowerBudget
	}
	blob, err := json.Marshal(res)
	if err != nil {
		return nil
	}
	return []catalog.Record{{
		Fingerprint: fingerprint, Tenant: tenant, Kind: catalog.KindFlow,
		Scenario: r.Chip, Seed: r.Seed,
		Config: cfg, Features: feat,
		Metrics: catalog.Metrics{
			TestCycles: res.ScheduleCycles, Sessions: res.Sessions, PeakPower: res.PeakPower,
		},
		Result: blob,
	}}
}

// catalogRecords implements catalogSource for scheduling sweeps: one
// record per sweep point (including infeasible ones — negative results are
// results), each addressed by a deterministic sub-fingerprint of the sweep
// key so re-running the sweep converges on the same records.
func (r SchedRequest) catalogRecords(fingerprint, tenant string, result interface{}) []catalog.Record {
	res, ok := result.(*SchedResponse)
	if !ok {
		return nil
	}
	chipName := r.Chip
	if chipName == "" {
		chipName = "dsc"
	}
	feat, cfg, ok := chipProfile(chipName, r.Seed)
	if !ok {
		return nil
	}
	if r.Partition != "" {
		cfg.Partitioner = r.Partition
	}
	if r.PowerBudget > 0 {
		cfg.PowerBudget = r.PowerBudget
	}
	recs := make([]catalog.Record, 0, len(res.Points))
	for _, p := range res.Points {
		pcfg := cfg
		pcfg.TamWidth = p.TestPins
		blob, err := json.Marshal(p)
		if err != nil {
			continue
		}
		recs = append(recs, catalog.Record{
			Fingerprint: catalog.SubFingerprint(fingerprint, fmt.Sprintf("pins=%d", p.TestPins)),
			Tenant:      tenant, Kind: catalog.KindSched,
			Scenario: chipName, Seed: r.Seed,
			Config: pcfg, Features: feat,
			Metrics: catalog.Metrics{
				TestCycles: p.Cycles, Sessions: p.Sessions,
				PeakPower: p.PeakPower, Infeasible: p.Infeasible,
			},
			Result: blob,
		})
	}
	return recs
}
