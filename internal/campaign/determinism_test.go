package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"steac/internal/march"
	"steac/internal/memfault"
	"steac/internal/xcheck"
)

// TestDeterminismMatrixMemfault is the cross-configuration invariance
// matrix for the March coverage engine: the campaign report must be
// byte-identical across every worker count and shard size, and identical
// to the in-process engine (memfault.CoverageContext) — the sharded runner
// must be unobservable in the result.
func TestDeterminismMatrixMemfault(t *testing.T) {
	spec := testSpec()

	alg, ok := march.ByName(spec.Algorithm)
	if !ok {
		t.Fatalf("unknown algorithm %q", spec.Algorithm)
	}
	faults := memfault.AllFaults(spec.Config)
	engine, err := memfault.CoverageContext(context.Background(), alg, spec.Config, faults, memfault.Options{})
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	golden, err := json.Marshal(engine)
	if err != nil {
		t.Fatal(err)
	}

	ncpu := runtime.NumCPU()
	workerCounts := []int{1, 2, ncpu, 2 * ncpu}
	shardSizes := []int{16, 64, 256, 4096}
	for _, workers := range workerCounts {
		for _, size := range shardSizes {
			workers, size := workers, size
			t.Run(fmt.Sprintf("workers=%d/shard=%d", workers, size), func(t *testing.T) {
				res, err := Run(context.Background(), spec, Options{Workers: workers, ShardSize: size})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if got := reportJSON(t, res); !bytes.Equal(got, golden) {
					t.Fatalf("campaign report diverges from engine:\n got  %s\n want %s", got, golden)
				}
			})
		}
	}
}

// TestDeterminismMatrixXCheck is the same invariance matrix for the
// gate-level engine, on the small shared-controller design (compile once
// per run, per-fault netlist clones).  The reference is the in-process
// xcheck campaign with identical options.
func TestDeterminismMatrixXCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("gate-level matrix skipped in -short")
	}
	spec := &XCheckSpec{
		Campaign:  XCheckController,
		Name:      "det-ctl",
		NGroups:   3,
		MaxFaults: 160,
	}

	engine, err := xcheck.ControllerCampaignContext(context.Background(),
		spec.Name, spec.NGroups, spec.options())
	if err != nil {
		t.Fatalf("engine run: %v", err)
	}
	golden, err := json.Marshal(engine)
	if err != nil {
		t.Fatal(err)
	}

	ncpu := runtime.NumCPU()
	for _, workers := range []int{1, 2, ncpu, 2 * ncpu} {
		for _, size := range []int{8, 64} {
			workers, size := workers, size
			t.Run(fmt.Sprintf("workers=%d/shard=%d", workers, size), func(t *testing.T) {
				res, err := Run(context.Background(), spec, Options{Workers: workers, ShardSize: size})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if got := reportJSON(t, res); !bytes.Equal(got, golden) {
					t.Fatalf("campaign report diverges from engine:\n got  %s\n want %s", got, golden)
				}
			})
		}
	}
}

// TestShardBatchAlignment checks the BatchSizer plumbing around the packed
// kernels: Run rounds a requested shard size down to a whole number of
// 64-lane batches (never below one batch), and — because batch geometry
// must not be semantic — a worker simulating arbitrary odd unit ranges
// (sub-word, word-straddling, tail remainders) reproduces the outcomes of
// one aligned full-range pass exactly.
func TestShardBatchAlignment(t *testing.T) {
	spec := testSpec()
	exec, err := spec.Prepare(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	units := exec.Units()
	if _, ok := exec.(BatchSizer); !ok {
		t.Fatal("coverage executor does not advertise a batch size")
	}
	for _, tc := range []struct{ req, effective int }{{1, 64}, {100, 64}, {300, 256}} {
		res, err := Run(context.Background(), spec, Options{ShardSize: tc.req})
		if err != nil {
			t.Fatal(err)
		}
		if want := shardCount(units, tc.effective); res.Shards != want {
			t.Errorf("ShardSize %d: got %d shards, want %d (size rounded to %d)",
				tc.req, res.Shards, want, tc.effective)
		}
	}

	checkRanges := func(t *testing.T, exec Executor, units int) {
		t.Helper()
		w, err := exec.NewWorker()
		if err != nil {
			t.Fatal(err)
		}
		full := make([]int64, units)
		if err := w.Run(context.Background(), 0, units, full); err != nil {
			t.Fatal(err)
		}
		ranges := [][2]int{{0, 1}, {1, 64}, {63, 65}, {64, 128}, {65, units - 1}, {units - 3, units}}
		for _, r := range ranges {
			out := make([]int64, r[1]-r[0])
			if err := w.Run(context.Background(), r[0], r[1], out); err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				if v != full[r[0]+i] {
					t.Fatalf("range [%d,%d): unit %d = %d, full pass says %d",
						r[0], r[1], r[0]+i, v, full[r[0]+i])
				}
			}
		}
	}
	t.Run("memfault", func(t *testing.T) { checkRanges(t, exec, units) })
	t.Run("xcheck", func(t *testing.T) {
		xspec := &XCheckSpec{Campaign: XCheckController, NGroups: 3, MaxFaults: 160}
		xexec, err := xspec.Prepare(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if bs, ok := xexec.(BatchSizer); !ok || bs.BatchSize() != xcheck.PackedBatch {
			t.Fatalf("xcheck executor batch size: got %v, want %d", ok, xcheck.PackedBatch)
		}
		checkRanges(t, xexec, xexec.Units())
	})
}

// TestDeterminismCheckpointedMatchesInMemory closes the loop between the
// two execution modes: a checkpointed run (journal round-trip included)
// must equal the in-memory run byte for byte.
func TestDeterminismCheckpointedMatchesInMemory(t *testing.T) {
	spec := testSpec()
	golden := goldenRun(t, spec)
	res, err := Run(context.Background(), spec, Options{ShardSize: 64, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, res); !bytes.Equal(got, golden) {
		t.Fatal("checkpointed report differs from in-memory report")
	}
}
