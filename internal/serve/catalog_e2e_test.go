package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"steac/internal/catalog"
	"steac/internal/recommend"
	"steac/internal/scenario"
)

// The seeded end-to-end battery for the results catalog and the DFT
// recommender.  One test walks the whole lifecycle:
//
//  1. Seed: an in-process daemon sweeps four builtin scenarios across
//     seeds and pin budgets and completes one memory-fault campaign job,
//     auto-ingesting every result.
//  2. Pin: the compare tables are deterministic goldens (CSV and HTML,
//     -update to regenerate), and the raw catalog listing is byte-stable
//     across a real subprocess daemon being SIGKILLed and restarted on
//     the same directories.
//  3. Cross-validate: leave-one-chip-out over every (scenario, seed)
//     fold, the recommender — trained only on the other chips — must
//     recover the fold's known-best TAM width on a strict majority.
//
// Everything is seeded, so the goldens, the fingerprints and the
// recovery count are exact, not statistical.

var update = flag.Bool("update", false, "rewrite golden files")

// The seeding grid.  Pins [16,24,32] stay clear of the narrow-pin
// feasibility boundary, so the per-scenario best config is consistent
// across seeds — which is what makes known-best recovery meaningful.
var (
	e2eScenarios = []string{"hybrid-power", "p1500-lbist", "memory-heavy", "manycore"}
	e2eSeeds     = []int64{1, 2, 3, 4}
	e2ePins      = []int{16, 24, 32}
)

const e2eJobSpec = `{"algorithm":"March C-","config":{"Name":"e2e","Words":64,"Bits":4},"all_faults":true}`

func TestCatalogRecommendEndToEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	catDir, jobDir := t.TempDir(), t.TempDir()

	// --- Phase 1: seed the catalog through the serving pipeline. ---
	s, ts := newTestServer(t, Config{Workers: 4, CatalogDir: catDir, JobDir: jobDir})
	c := &Client{Base: ts.URL}
	for _, sc := range e2eScenarios {
		for _, seed := range e2eSeeds {
			if _, _, err := c.Sched(ctx, schedReq(sc, seed, e2ePins...)); err != nil {
				t.Fatalf("sched %s seed %d: %v", sc, seed, err)
			}
		}
	}
	st, err := c.SubmitJob(ctx, JobRequest{Kind: "memfault", Spec: json.RawMessage(e2eJobSpec)})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.WaitJob(ctx, st.ID, 0, nil); err != nil || st.State != jobDone {
		t.Fatalf("campaign job = %+v, %v, want done", st, err)
	}

	wantTotal := len(e2eScenarios)*len(e2eSeeds)*len(e2ePins) + 1
	cl, err := c.Catalog(ctx, catalog.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Total != wantTotal {
		t.Fatalf("catalog total = %d, want %d", cl.Total, wantTotal)
	}
	for _, sc := range e2eScenarios {
		sl, err := c.Catalog(ctx, catalog.Query{Scenario: sc})
		if err != nil {
			t.Fatal(err)
		}
		if sl.Total != len(e2eSeeds)*len(e2ePins) {
			t.Fatalf("scenario %s: %d records, want %d", sc, sl.Total, len(e2eSeeds)*len(e2ePins))
		}
	}

	// Compare tables are goldens: every visible column derives from
	// seeded computation and content-addressed fingerprints.
	for _, format := range []string{"csv", "html"} {
		blob, err := c.CatalogCompare(ctx, format, catalog.Query{})
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, "catalog_compare_"+format+".golden", blob)
	}

	// A recommendation over HTTP must come back with auditable evidence:
	// every basis fingerprint resolves to a fetchable catalog record.
	sug, err := c.Recommend(ctx, RecommendRequest{Scenario: "memory-heavy", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if sug.TamWidth <= 0 || len(sug.Basis) == 0 || sug.Distance == "" {
		t.Fatalf("suggestion = %+v, want tam, basis and distance metric", sug)
	}
	for _, ev := range sug.Basis {
		rec, err := c.CatalogRecord(ctx, ev.Fingerprint)
		if err != nil {
			t.Fatalf("basis fingerprint %s not fetchable: %v", ev.Fingerprint, err)
		}
		if rec.Fingerprint != ev.Fingerprint {
			t.Fatalf("basis fetch returned %s, want %s", rec.Fingerprint, ev.Fingerprint)
		}
	}

	snap1 := rawGet(t, ts.URL+"/v1/catalog")
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// --- Phase 2: a real daemon process on the same directories. ---
	// The listing must be byte-identical to what the seeding server
	// answered, then survive SIGKILL + restart with a record added.
	cmd, base := spawnCatalogDaemon(t, catDir, jobDir)
	if got := rawGet(t, base+"/v1/catalog"); !bytes.Equal(got, snap1) {
		t.Fatalf("subprocess catalog differs from seeding snapshot:\n got %d bytes: %.200s\nwant %d bytes: %.200s",
			len(got), got, len(snap1), snap1)
	}
	resp, blob := post(t, base+"/v1/sched", `{"chip":"dsc","test_pins":[26]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subprocess sched = %d: %s", resp.StatusCode, blob)
	}
	snap2 := rawGet(t, base+"/v1/catalog")
	compare2 := rawGet(t, base+"/v1/catalog/compare?format=csv")
	if bytes.Equal(snap2, snap1) {
		t.Fatal("catalog unchanged after subprocess sched — ingest not wired?")
	}

	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	cmd2, base2 := spawnCatalogDaemon(t, catDir, jobDir)
	if got := rawGet(t, base2+"/v1/catalog"); !bytes.Equal(got, snap2) {
		t.Fatalf("catalog after SIGKILL+restart differs:\n got %d bytes\nwant %d bytes", len(got), len(snap2))
	}
	if got := rawGet(t, base2+"/v1/catalog/compare?format=csv"); !bytes.Equal(got, compare2) {
		t.Fatalf("compare CSV after SIGKILL+restart differs:\n got %s\nwant %s", got, compare2)
	}
	if err := cmd2.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd2.Wait()

	// --- Phase 3: leave-one-out cross-validation off the same disk. ---
	store, err := catalog.Open(catDir)
	if err != nil {
		t.Fatal(err)
	}
	recs := store.List(catalog.Query{})
	store.Close()

	recovered, folds := 0, 0
	for _, sc := range e2eScenarios {
		for _, seed := range e2eSeeds {
			best, rest := splitFold(recs, sc, seed)
			if best.Fingerprint == "" {
				t.Fatalf("fold %s seed %d: no feasible sched record", sc, seed)
			}
			folds++
			chip, err := scenario.GenerateByName(sc, seed)
			if err != nil {
				t.Fatal(err)
			}
			sug, err := recommend.Recommend(rest, recommend.Request{
				Cores: chip.Cores, Memories: chip.Memories,
			})
			if err != nil {
				t.Fatalf("fold %s seed %d: %v", sc, seed, err)
			}
			if sug.TamWidth == best.Config.TamWidth {
				recovered++
			} else {
				t.Logf("fold %s seed %d: best tam %d, recommended %d (nearest %s seed %d, d=%.3f)",
					sc, seed, best.Config.TamWidth, sug.TamWidth,
					sug.Basis[0].Scenario, sug.Basis[0].Seed, sug.Basis[0].Distance)
			}
		}
	}
	t.Logf("leave-one-out: recovered known-best config on %d/%d folds", recovered, folds)
	if recovered*2 <= folds {
		t.Fatalf("recommender recovered %d/%d folds, want strict majority", recovered, folds)
	}
}

// splitFold returns the held-out chip's known-best feasible sched record
// (fewest cycles, ties to the narrower TAM — the recommender's own
// preference order) and the training population with that chip removed.
func splitFold(recs []catalog.Record, sc string, seed int64) (best catalog.Record, rest []catalog.Record) {
	for _, r := range recs {
		if r.Scenario != sc || r.Seed != seed {
			rest = append(rest, r)
			continue
		}
		if r.Kind != catalog.KindSched || r.Metrics.Infeasible || r.Metrics.TestCycles <= 0 {
			continue
		}
		if best.Fingerprint == "" ||
			r.Metrics.TestCycles < best.Metrics.TestCycles ||
			(r.Metrics.TestCycles == best.Metrics.TestCycles && r.Config.TamWidth < best.Config.TamWidth) {
			best = r
		}
	}
	return best, rest
}

// rawGet fetches one URL and returns the body verbatim — byte-stability
// assertions must not run through a JSON round-trip.
func rawGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, blob)
	}
	return blob
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s mismatch (run with -update to rebless):\n got: %.400s\nwant: %.400s", name, got, want)
	}
}

// spawnCatalogDaemon re-executes the test binary as a real daemon process
// (TestCatalogDaemonHelper) serving the v1 API on a loopback port, so the
// parent can SIGKILL it mid-flight like a crashed deployment.
func spawnCatalogDaemon(t *testing.T, catDir, jobDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestCatalogDaemonHelper$")
	cmd.Env = append(os.Environ(),
		"STEAC_CATALOG_HELPER=1",
		"STEAC_CATALOG_DIR="+catDir,
		"STEAC_JOB_DIR="+jobDir,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "ADDR="); ok {
			go func() { _, _ = io.Copy(io.Discard, stdout) }()
			return cmd, "http://" + addr
		}
	}
	t.Fatalf("daemon helper exited without an address (scan err %v)", sc.Err())
	return nil, ""
}

// TestCatalogDaemonHelper is the subprocess body for the SIGKILL phases:
// a plain daemon on the directories named by the environment.  It never
// runs as part of the normal test suite.
func TestCatalogDaemonHelper(t *testing.T) {
	if os.Getenv("STEAC_CATALOG_HELPER") != "1" {
		t.Skip("subprocess helper")
	}
	s := New(Config{
		Workers:    2,
		CatalogDir: os.Getenv("STEAC_CATALOG_DIR"),
		JobDir:     os.Getenv("STEAC_JOB_DIR"),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("ADDR=%s\n", ln.Addr())
	// Serve until the parent kills the process; there is no graceful exit
	// on purpose — the whole point is dying mid-flight.
	_ = http.Serve(ln, s.Handler())
}
