package brains

import (
	"context"
	"strings"
	"testing"

	"steac/internal/march"
	"steac/internal/memfault"
	"steac/internal/memory"
)

func testMems() []memory.Config {
	return []memory.Config{
		{Name: "m0", Words: 1024, Bits: 8},
		{Name: "m1", Words: 2048, Bits: 16},
		{Name: "m2", Words: 256, Bits: 32, Kind: memory.TwoPort},
		{Name: "m3", Words: 512, Bits: 8},
	}
}

func TestCompileByKind(t *testing.T) {
	res, err := CompileContext(context.Background(), testMems(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 (1-port + 2-port)", len(res.Groups))
	}
	// Default March C- on the largest 1-port macro (2048 words) paces the
	// sp group.
	spCycles := GroupCycles(res.Groups[0])
	if spCycles != 10*2048 {
		t.Fatalf("sp group cycles = %d, want %d", spCycles, 10*2048)
	}
	// No power bound: one session, time = max group.
	if len(res.Sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(res.Sessions))
	}
	if res.Cycles != spCycles {
		t.Fatalf("total cycles = %d, want %d", res.Cycles, spCycles)
	}
	if res.Area.Total() <= 0 {
		t.Fatal("empty area report")
	}
	if res.TestTimeMS() <= 0 {
		t.Fatal("no test time")
	}
}

func TestCompilePowerBoundSplitsSessions(t *testing.T) {
	// A budget below the total power must split the groups into several
	// sessions, each within the bound (every individual group fits in 8).
	res, err := CompileContext(context.Background(), testMems(), Options{Grouping: GroupPerMemory, MaxPower: 8.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) < 2 {
		t.Fatalf("power bound did not split sessions: %d", len(res.Sessions))
	}
	for _, s := range res.Sessions {
		if s.Power > 8.0 {
			t.Fatalf("session power %.2f exceeds bound", s.Power)
		}
	}
	// Serial sessions cost the sum; must exceed the fully parallel time.
	par, err := CompileContext(context.Background(), testMems(), Options{Grouping: GroupPerMemory})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= par.Cycles {
		t.Fatalf("power-bounded %d cycles not slower than parallel %d", res.Cycles, par.Cycles)
	}
}

func TestCompileGroupings(t *testing.T) {
	single, err := CompileContext(context.Background(), testMems(), Options{Grouping: GroupSingle})
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Groups) != 1 {
		t.Fatalf("single grouping: %d groups", len(single.Groups))
	}
	per, err := CompileContext(context.Background(), testMems(), Options{Grouping: GroupPerMemory})
	if err != nil {
		t.Fatal(err)
	}
	if len(per.Groups) != 4 {
		t.Fatalf("per-memory grouping: %d groups", len(per.Groups))
	}
	// More sequencers cost more hardware.
	if per.Area.Sequencers <= single.Area.Sequencers {
		t.Fatalf("per-memory sequencer area %.0f <= single %.0f",
			per.Area.Sequencers, single.Area.Sequencers)
	}
}

func TestCompileValidation(t *testing.T) {
	if _, err := CompileContext(context.Background(), nil, Options{}); err == nil {
		t.Fatal("empty memory list accepted")
	}
	dup := []memory.Config{
		{Name: "m", Words: 16, Bits: 4},
		{Name: "m", Words: 32, Bits: 4},
	}
	if _, err := CompileContext(context.Background(), dup, Options{}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	bad := []memory.Config{{Name: "m", Words: 0, Bits: 4}}
	if _, err := CompileContext(context.Background(), bad, Options{}); err == nil {
		t.Fatal("invalid geometry accepted")
	}
	if _, err := CompileContext(context.Background(), testMems(), Options{Grouping: Grouping(7)}); err == nil {
		t.Fatal("bad grouping accepted")
	}
}

func TestNewEngineSelfTest(t *testing.T) {
	res, err := CompileContext(context.Background(), testMems(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Fault-free self-test passes.
	eng, err := NewEngine(res, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r := eng.Run(); !r.Pass {
		t.Fatalf("fault-free self test failed: %+v", r.Mems)
	}
	// Inject a defect into one macro: self-test must fail.
	faulty, err := memfault.NewFaulty(testMems()[1], []memfault.Fault{
		{Kind: memfault.SA0, Victim: memfault.Cell{Addr: 77, Bit: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := NewEngine(res, map[string]memory.RAM{"m1": faulty})
	if err != nil {
		t.Fatal(err)
	}
	r := eng2.Run()
	if r.Pass {
		t.Fatal("self test missed injected SA0")
	}
	found := false
	for _, m := range r.Mems {
		if m.Name == "m1" && !m.Pass {
			found = true
		}
	}
	if !found {
		t.Fatal("failure not attributed to m1")
	}
}

func TestPowerModel(t *testing.T) {
	small := Power(memory.Config{Name: "s", Words: 256, Bits: 8})
	big := Power(memory.Config{Name: "b", Words: 65536, Bits: 16})
	if big <= small {
		t.Fatalf("power not monotone: %v vs %v", small, big)
	}
	sp := Power(memory.Config{Name: "x", Words: 1024, Bits: 8})
	tp := Power(memory.Config{Name: "x", Words: 1024, Bits: 8, Kind: memory.TwoPort})
	if tp <= sp {
		t.Fatal("two-port not costlier than single-port")
	}
}

func TestEvaluate(t *testing.T) {
	rows, err := EvaluateContext(context.Background(), memory.Config{Name: "e", Words: 8, Bits: 2}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(march.Catalog()) {
		t.Fatalf("rows = %d", len(rows))
	}
	// March C- must beat MSCAN on coverage and cost more cycles.
	var mscan, cminus EvalRow
	for _, r := range rows {
		switch r.Alg.Name {
		case "MSCAN":
			mscan = r
		case "March C-":
			cminus = r
		}
	}
	if cminus.Coverage.Percent() <= mscan.Coverage.Percent() {
		t.Fatalf("March C- %.1f%% not above MSCAN %.1f%%",
			cminus.Coverage.Percent(), mscan.Coverage.Percent())
	}
	if cminus.Cycles <= mscan.Cycles {
		t.Fatal("March C- not longer than MSCAN")
	}
	table := EvaluationTable(rows)
	if !strings.Contains(table, "March C-") || !strings.Contains(table, "MSCAN") {
		t.Fatalf("evaluation table missing algorithms:\n%s", table)
	}
}

func TestReportRendering(t *testing.T) {
	res, err := CompileContext(context.Background(), testMems(), Options{MaxPower: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := Report(res)
	for _, want := range []string{"BIST plan", "BIST sessions", "Controller", "total BIST time"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestBackgroundsDoubleTestTime(t *testing.T) {
	one, err := CompileContext(context.Background(), testMems(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	two, err := CompileContext(context.Background(), testMems(), Options{Backgrounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if two.Cycles != 2*one.Cycles {
		t.Fatalf("two backgrounds = %d cycles, want 2x%d", two.Cycles, one.Cycles)
	}
	// The self-test still passes on fault-free memories with both passes.
	eng, err := NewEngine(two, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r := eng.Run(); !r.Pass {
		t.Fatalf("dual-background self test failed: %+v", r.Mems)
	}
}

func TestBackgroundsCatchIntraWordFault(t *testing.T) {
	cfg := memory.Config{Name: "m0", Words: 64, Bits: 8}
	mkFaulty := func() memory.RAM {
		f, err := memfault.NewFaulty(cfg, []memfault.Fault{{
			Kind:   memfault.CFid,
			Victim: memfault.Cell{Addr: 5, Bit: 2}, Aggr: memfault.Cell{Addr: 5, Bit: 3},
			AggrRise: true, Forced: 1,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	run := func(backgrounds int) bool {
		res, err := CompileContext(context.Background(), []memory.Config{cfg}, Options{Backgrounds: backgrounds})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(res, map[string]memory.RAM{"m0": mkFaulty()})
		if err != nil {
			t.Fatal(err)
		}
		return eng.Run().Pass
	}
	if !run(1) {
		t.Fatal("solid background unexpectedly caught the matched-polarity intra-word CFid")
	}
	if run(2) {
		t.Fatal("checkerboard pass missed the intra-word CFid")
	}
}

func TestPortBTestOption(t *testing.T) {
	mems := []memory.Config{
		{Name: "sp", Words: 1024, Bits: 8},
		{Name: "tp", Words: 256, Bits: 16, Kind: memory.TwoPort},
	}
	plain, err := CompileContext(context.Background(), mems, Options{})
	if err != nil {
		t.Fatal(err)
	}
	withB, err := CompileContext(context.Background(), mems, Options{PortBTest: true})
	if err != nil {
		t.Fatal(err)
	}
	// GroupByKind: the tp group gains 4*256 cycles; parallel sessions ->
	// total is the max, still paced by the sp group (10*1024).
	if withB.Cycles < plain.Cycles {
		t.Fatalf("port-B test shortened the plan: %d vs %d", withB.Cycles, plain.Cycles)
	}
	var tpGroup = -1
	for i, g := range withB.Groups {
		if g.Name == "tp" {
			tpGroup = i
		}
	}
	if tpGroup < 0 || !withB.Groups[tpGroup].TestPortB {
		t.Fatal("tp group lost the port-B flag")
	}
	if got := GroupCycles(withB.Groups[tpGroup]); got != 10*256+4*256 {
		t.Fatalf("tp group cycles = %d", got)
	}
	// Self-test with a port-B defect: only the port-B plan catches it.
	faulty, err := memfault.NewFaulty(mems[1], []memfault.Fault{
		{Kind: memfault.SAB0, Victim: memfault.Cell{Addr: 7, Bit: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng1, err := NewEngine(plain, map[string]memory.RAM{"tp": faulty})
	if err != nil {
		t.Fatal(err)
	}
	if !eng1.Run().Pass {
		t.Fatal("plain plan saw the port-B fault")
	}
	faulty2, err := memfault.NewFaulty(mems[1], []memfault.Fault{
		{Kind: memfault.SAB0, Victim: memfault.Cell{Addr: 7, Bit: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := NewEngine(withB, map[string]memory.RAM{"tp": faulty2})
	if err != nil {
		t.Fatal(err)
	}
	if eng2.Run().Pass {
		t.Fatal("port-B plan missed the fault")
	}
}
