package stil

import (
	"strings"
	"testing"

	"steac/internal/testinfo"
)

func vecCore() *testinfo.Core {
	return &testinfo.Core{
		Name:        "V",
		Clocks:      []string{"ck"},
		ScanEnables: []string{"se"},
		PIs:         2, POs: 2,
		ScanChains: []testinfo.ScanChain{
			{Name: "c0", Length: 3, In: "si", Out: "so", Clock: "ck"},
		},
		Patterns: []testinfo.PatternSet{
			{Name: "scan", Type: testinfo.Scan, Count: 1, Seed: 0},
			{Name: "func", Type: testinfo.Functional, Count: 1, Seed: 0},
		},
	}
}

func sampleVectors() *Vectors {
	return &Vectors{
		Scan: []ScanVector{{
			Load:   map[string]string{"c0": "010"},
			Unload: map[string]string{"c0": "101"},
			PI:     "01", PO: "HL",
		}},
		Func: []FuncVector{{PI: "10", PO: "LH"}},
	}
}

func TestEmitParseVectors(t *testing.T) {
	src, err := EmitWithVectors(vecCore(), sampleVectors())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Scan {", "Load c0 010;", "Apply pi 01 po HL;", "Unload c0 101;", "V pi 10 po LH;"} {
		if !strings.Contains(src, want) {
			t.Fatalf("emitted STIL missing %q:\n%s", want, src)
		}
	}
	core, v, err := ParseWithVectors(src)
	if err != nil {
		t.Fatal(err)
	}
	if core.Name != "V" {
		t.Fatal("core lost")
	}
	if len(v.Scan) != 1 || len(v.Func) != 1 {
		t.Fatalf("vectors = %d/%d", len(v.Scan), len(v.Func))
	}
	sv := v.Scan[0]
	if sv.Load["c0"] != "010" || sv.Unload["c0"] != "101" || sv.PI != "01" || sv.PO != "HL" {
		t.Fatalf("scan vector = %+v", sv)
	}
	if v.Func[0].PI != "10" || v.Func[0].PO != "LH" {
		t.Fatalf("func vector = %+v", v.Func[0])
	}
	// Plain Parse ignores vector statements.
	if _, err := Parse(src); err != nil {
		t.Fatalf("plain parse choked on vectors: %v", err)
	}
}

func TestEmitVectorsNoData(t *testing.T) {
	src, err := EmitWithVectors(vecCore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(src, "Scan {") {
		t.Fatal("empty vectors emitted pattern data")
	}
	// Vectors without a matching pattern set must be rejected.
	noscan := vecCore()
	noscan.Patterns = noscan.Patterns[1:] // drop scan set
	noscan.ScanChains = nil
	noscan.ScanEnables = nil
	if _, err := EmitWithVectors(noscan, sampleVectors()); err == nil {
		t.Fatal("scan vectors without a scan set accepted")
	}
	nofunc := vecCore()
	nofunc.Patterns = nofunc.Patterns[:1]
	if _, err := EmitWithVectors(nofunc, &Vectors{Func: []FuncVector{{PI: "10", PO: "LH"}}}); err == nil {
		t.Fatal("func vectors without a functional set accepted")
	}
}

func TestParseVectorErrors(t *testing.T) {
	header := `STIL 1.0; {* core name=X soft=false *}
Signals { {* clock *} ck In; }
`
	for name, body := range map[string]string{
		"bad load bits":   `Pattern "p" { Scan { Load c0 012; } }`,
		"bad po chars":    `Pattern "p" { Scan { Apply po 01; } }`,
		"load arity":      `Pattern "p" { Scan { Load c0; } }`,
		"unknown field":   `Pattern "p" { Scan { Bogus c0 01; } }`,
		"pi without bits": `Pattern "p" { V pi; }`,
		"stray token":     `Pattern "p" { V what 01; }`,
		"unknown stmt":    `Pattern "p" { Jump x; }`,
	} {
		if _, _, err := ParseWithVectors(header + body); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Recognized-but-uninterpreted statements pass through.
	ok := header + `Pattern "p" { {* patterns type=Functional count=1 seed=0 *} W wft; Loop 5 { }; V pi 1 po H; }`
	_, v, err := ParseWithVectors(ok)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Func) != 1 {
		t.Fatalf("func vectors = %d", len(v.Func))
	}
}
