// Package memfault implements the classical RAM functional fault models
// (stuck-at, transition, coupling, stuck-open, address-decoder and
// read-disturb faults), a fault-injected SRAM model, and a March-test fault
// simulator.  BRAINS uses it to "evaluate the memory test efficiency among
// different designs": the coverage tables produced by cmd/brains and the
// benchmarks come from running March algorithms from package march against
// single-fault machines built here.
package memfault

import (
	"fmt"

	"steac/internal/memory"
)

// Kind enumerates the supported fault models.
type Kind int

// Fault model kinds.
const (
	// SA0 and SA1 are stuck-at faults: the cell permanently holds 0 or 1.
	SA0 Kind = iota
	SA1
	// TFUp and TFDown are transition faults: the cell cannot make a 0→1
	// (respectively 1→0) transition when written.
	TFUp
	TFDown
	// CFin is an inversion coupling fault: a matching transition of the
	// aggressor cell inverts the victim cell.
	CFin
	// CFid is an idempotent coupling fault: a matching transition of the
	// aggressor forces the victim to Forced.
	CFid
	// CFst is a state coupling fault: while the aggressor holds AggrState,
	// the victim is forced to Forced.
	CFst
	// SOF is a stuck-open fault: the cell cannot be accessed; a read
	// returns the previous value held by the sense amplifier of that bit
	// position, and writes are lost.
	SOF
	// AF is an address-decoder fault: accesses to the victim's address
	// reach MapAddr instead.
	AF
	// RDF is a read-disturb fault: reading the cell returns the inverted
	// value and flips the stored bit.
	RDF
	// DRF is a data-retention fault: the cell decays to Forced during a
	// test pause (the delay element of a retention March test).
	DRF
	// SAB0 and SAB1 are port-B stuck-at faults of a two-port SRAM: the
	// read-only port returns 0/1 for the cell regardless of its content,
	// while port A reads correctly.  Only a read-through-port-B pass can
	// catch them.
	SAB0
	SAB1
)

// String returns the conventional abbreviation.
func (k Kind) String() string {
	switch k {
	case SA0:
		return "SA0"
	case SA1:
		return "SA1"
	case TFUp:
		return "TF<0->1>"
	case TFDown:
		return "TF<1->0>"
	case CFin:
		return "CFin"
	case CFid:
		return "CFid"
	case CFst:
		return "CFst"
	case SOF:
		return "SOF"
	case AF:
		return "AF"
	case RDF:
		return "RDF"
	case DRF:
		return "DRF"
	case SAB0:
		return "SAB0"
	case SAB1:
		return "SAB1"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindClass groups kinds for coverage reporting ("SAF", "TF", "CF", ...).
func (k Kind) Class() string {
	switch k {
	case SA0, SA1:
		return "SAF"
	case TFUp, TFDown:
		return "TF"
	case CFin:
		return "CFin"
	case CFid:
		return "CFid"
	case CFst:
		return "CFst"
	case SOF:
		return "SOF"
	case AF:
		return "AF"
	case RDF:
		return "RDF"
	case DRF:
		return "DRF"
	case SAB0, SAB1:
		return "SAB"
	}
	return "?"
}

// Cell identifies one storage bit: word address plus bit position.
type Cell struct {
	Addr int
	Bit  int
}

// Fault is a single functional fault instance.
type Fault struct {
	Kind   Kind
	Victim Cell

	// Aggr is the aggressor cell of coupling faults.
	Aggr Cell
	// AggrRise selects the triggering transition for CFin/CFid: true for
	// 0→1, false for 1→0.
	AggrRise bool
	// Forced is the value CFid forces on a trigger and the value CFst
	// forces while the aggressor is in AggrState.
	Forced int
	// AggrState is the aggressor state that activates a CFst.
	AggrState int
	// MapAddr is the address actually accessed for an AF on Victim.Addr.
	MapAddr int
}

// String renders a compact description for diagnostics.
func (f Fault) String() string {
	switch f.Kind {
	case CFin:
		return fmt.Sprintf("%s a=(%d.%d,rise=%t) v=(%d.%d)",
			f.Kind, f.Aggr.Addr, f.Aggr.Bit, f.AggrRise, f.Victim.Addr, f.Victim.Bit)
	case CFid:
		return fmt.Sprintf("%s a=(%d.%d,rise=%t) v=(%d.%d):=%d",
			f.Kind, f.Aggr.Addr, f.Aggr.Bit, f.AggrRise, f.Victim.Addr, f.Victim.Bit, f.Forced)
	case CFst:
		return fmt.Sprintf("%s a=(%d.%d)=%d v=(%d.%d):=%d",
			f.Kind, f.Aggr.Addr, f.Aggr.Bit, f.AggrState, f.Victim.Addr, f.Victim.Bit, f.Forced)
	case AF:
		return fmt.Sprintf("AF %d->%d", f.Victim.Addr, f.MapAddr)
	default:
		return fmt.Sprintf("%s (%d.%d)", f.Kind, f.Victim.Addr, f.Victim.Bit)
	}
}

// Validate checks that the fault is well-formed for the given memory.
func (f Fault) Validate(cfg memory.Config) error {
	inRange := func(c Cell) bool {
		return c.Addr >= 0 && c.Addr < cfg.Words && c.Bit >= 0 && c.Bit < cfg.Bits
	}
	if !inRange(f.Victim) {
		return fmt.Errorf("memfault: victim %v out of range for %s", f.Victim, cfg)
	}
	switch f.Kind {
	case CFin, CFid, CFst:
		if !inRange(f.Aggr) {
			return fmt.Errorf("memfault: aggressor %v out of range for %s", f.Aggr, cfg)
		}
		if f.Aggr == f.Victim {
			return fmt.Errorf("memfault: coupling fault with aggressor == victim %v", f.Victim)
		}
		if f.Kind != CFin && f.Forced != 0 && f.Forced != 1 {
			return fmt.Errorf("memfault: forced value %d", f.Forced)
		}
		if f.Kind == CFst && f.AggrState != 0 && f.AggrState != 1 {
			return fmt.Errorf("memfault: aggressor state %d", f.AggrState)
		}
	case AF:
		if f.MapAddr < 0 || f.MapAddr >= cfg.Words {
			return fmt.Errorf("memfault: AF map address %d out of range", f.MapAddr)
		}
		if f.MapAddr == f.Victim.Addr {
			return fmt.Errorf("memfault: AF maps address %d to itself", f.MapAddr)
		}
	case DRF:
		if f.Forced != 0 && f.Forced != 1 {
			return fmt.Errorf("memfault: DRF decay value %d", f.Forced)
		}
	case SAB0, SAB1:
		if cfg.Kind != memory.TwoPort {
			return fmt.Errorf("memfault: port-B fault on single-port %s", cfg.Name)
		}
	case SA0, SA1, TFUp, TFDown, SOF, RDF:
		// Victim-only faults: nothing more to check.
	default:
		return fmt.Errorf("memfault: unknown kind %d", int(f.Kind))
	}
	return nil
}
