package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Cores", "Core", "TI", "Patterns")
	tb.Row("USB", 18, 716)
	tb.Row("TV", 6, 202673)
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "Cores") {
		t.Fatalf("title missing: %q", lines[0])
	}
	// Column starts align between header and rows.
	hIdx := strings.Index(lines[1], "TI")
	rIdx := strings.Index(lines[3], "18")
	if hIdx != rIdx {
		t.Fatalf("columns misaligned: %d vs %d\n%s", hIdx, rIdx, s)
	}
	if tb.Len() != 2 {
		t.Fatalf("len = %d", tb.Len())
	}
}

func TestTableFloatTrim(t *testing.T) {
	tb := NewTable("", "v")
	tb.Row(1.50)
	tb.Row(2.0)
	tb.Row(0.25)
	s := tb.String()
	for _, want := range []string{"1.5\n", "2\n", "0.25\n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Row("x")
	tb.Row("y", "z", "extra")
	if s := tb.String(); !strings.Contains(s, "extra") {
		t.Fatalf("ragged row dropped:\n%s", s)
	}
}

func TestComma(t *testing.T) {
	for n, want := range map[int]string{
		0:        "0",
		999:      "999",
		1000:     "1,000",
		4371194:  "4,371,194",
		4713935:  "4,713,935",
		-1234567: "-1,234,567",
	} {
		if got := Comma(n); got != want {
			t.Errorf("Comma(%d) = %q, want %q", n, got, want)
		}
	}
}
