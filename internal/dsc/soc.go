package dsc

import (
	"steac/internal/netlist"
	"steac/internal/socgen"
)

// BuildSOC constructs the original (pre-DFT) DSC netlist of Fig. 3: the
// three IP cores as behavioural modules with full port lists, the
// processor, external memory interface and glue logic blocks, and an
// internal PLL generating the six core clocks (USB's four domains, the TV
// encoder's and the JPEG codec's).  The embedded memories are not
// instantiated here: they arrive as BRAINS-delivered BISTed memory cores
// during test insertion, exactly as the paper describes the memory
// compiler integration.
func BuildSOC() (*netlist.Design, error) {
	return socgen.Build(Cores(), socgen.Options{
		Name:   "dsc",
		Blocks: ChipAreas(),
	})
}
