package pattern

import (
	"fmt"

	"steac/internal/netlist"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

// BuildStructuralCore emits a gate-level implementation of the core's
// synthetic logic into d, under the module name wrapper.Generate expects
// (wrapper skips its behavioural stand-in when the module already exists).
// The module is bit-exact to CoreModel.Capture: every scan cell is an SDFF
// (scanned with the core's first scan enable, clocked by its first clock),
// chain cci's cell k holds state bit chainOffset(cci)+k — the same
// concatenation order the ATPG and the chip model use — and the capture
// logic realizes the TapSpec XOR/AND structure per bit.  Port convention
// matches GenerateCoreModule: pi/po buses, si<i>/so<i> per chain, then the
// core's clock, reset, scan-enable and test-enable pins.
//
// With this module substituted, a flattened wrapper becomes a true
// gate-level reference for the translated patterns: zero mismatches against
// the ATPG expectations proves the netlist, and stuck-at faults injected
// into it grade the pattern set.
func BuildStructuralCore(d *netlist.Design, core *testinfo.Core) (*netlist.Module, error) {
	if err := core.Validate(); err != nil {
		return nil, err
	}
	if core.TotalScanBits() == 0 {
		return nil, fmt.Errorf("pattern: structural core %s has no scan state", core.Name)
	}
	if len(core.ScanEnables) == 0 {
		return nil, fmt.Errorf("pattern: structural core %s has no scan enable", core.Name)
	}
	name := wrapper.CoreModuleName(core.Name)
	if d.Module(name) != nil {
		return nil, fmt.Errorf("pattern: design already has module %s", name)
	}
	model := NewCoreModel(core)
	ck, se := core.Clocks[0], core.ScanEnables[0]

	m := netlist.NewModule(name)
	m.Attrs["ip"] = core.Name
	if core.PIs > 0 {
		m.MustPort("pi", netlist.In, core.PIs)
	}
	if core.POs > 0 {
		m.MustPort("po", netlist.Out, core.POs)
	}
	for i := range core.ScanChains {
		m.MustPort(fmt.Sprintf("si%d", i), netlist.In, 1)
		m.MustPort(fmt.Sprintf("so%d", i), netlist.Out, 1)
	}
	for _, group := range [][]string{core.Clocks, core.Resets, core.ScanEnables, core.TestEnables} {
		for _, p := range group {
			m.MustPort(p, netlist.In, 1)
		}
	}

	// Q net of every scan cell, in state-vector order.  The last cell of a
	// chain drives the chain's scan-out port directly.
	n := model.StateBits()
	qNet := make([]string, n)
	idx := 0
	for ci, ch := range core.ScanChains {
		for k := 0; k < ch.Length; k++ {
			if k == ch.Length-1 {
				qNet[idx] = fmt.Sprintf("so%d", ci)
			} else {
				qNet[idx] = fmt.Sprintf("sq%d", idx)
			}
			idx++
		}
	}
	piNet := func(i int) string { return netlist.BitName("pi", i, core.PIs) }

	// Scan cells with their next-state capture logic.
	idx = 0
	for ci, ch := range core.ScanChains {
		prev := fmt.Sprintf("si%d", ci)
		for k := 0; k < ch.Length; k++ {
			i := idx
			idx++
			sp := model.NextSpec(i)
			s := qNet[sp.StateTap]
			var dNet string
			switch {
			case sp.PITap >= 0:
				dNet = fmt.Sprintf("nd%d", i)
				cell := netlist.CellXor2
				if sp.Invert {
					cell = netlist.CellXnor2
				}
				m.MustInstance(fmt.Sprintf("u_nx%d", i), cell,
					map[string]string{"A": s, "B": piNet(sp.PITap), "Z": dNet})
			case sp.Invert:
				dNet = fmt.Sprintf("nd%d", i)
				m.MustInstance(fmt.Sprintf("u_nx%d", i), netlist.CellInv,
					map[string]string{"A": s, "Z": dNet})
			default:
				dNet = s
			}
			m.MustInstance(fmt.Sprintf("u_sc%d", i), netlist.CellSDFF, map[string]string{
				"D": dNet, "SI": prev, "SE": se, "CK": ck, "Q": qNet[i]})
			prev = qNet[i]
		}
	}

	// Primary-output cones.
	for j := 0; j < core.POs; j++ {
		sp := model.POSpec(j)
		poN := netlist.BitName("po", j, core.POs)
		s := qNet[sp.StateTap]
		if sp.PITap < 0 {
			cell := netlist.CellBuf
			if sp.Invert {
				cell = netlist.CellInv
			}
			m.MustInstance(fmt.Sprintf("u_po%d", j), cell, map[string]string{"A": s, "Z": poN})
			continue
		}
		p := piNet(sp.PITap)
		aNet := fmt.Sprintf("pa%d", j)
		m.MustInstance(fmt.Sprintf("u_pa%d", j), netlist.CellAnd2,
			map[string]string{"A": s, "B": p, "Z": aNet})
		cell := netlist.CellXor2
		if sp.Invert {
			cell = netlist.CellXnor2
		}
		if sp.PIXor {
			tNet := fmt.Sprintf("pt%d", j)
			m.MustInstance(fmt.Sprintf("u_px%d", j), cell,
				map[string]string{"A": s, "B": aNet, "Z": tNet})
			m.MustInstance(fmt.Sprintf("u_po%d", j), netlist.CellXor2,
				map[string]string{"A": tNet, "B": p, "Z": poN})
		} else {
			m.MustInstance(fmt.Sprintf("u_po%d", j), cell,
				map[string]string{"A": s, "B": aNet, "Z": poN})
		}
	}

	if err := d.AddModule(m); err != nil {
		return nil, err
	}
	return m, nil
}
