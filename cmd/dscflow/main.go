// Command dscflow is the one-shot reproduction driver: it rebuilds the
// paper's DSC controller chip, runs the full STEAC flow on it, and prints
// every table and figure of the evaluation — Table 1, the session-based vs
// non-session-based scheduling comparison, the test-IO analysis, the DFT
// hardware cost, the BIST plan, and the March-efficiency table.
//
// Usage:
//
//	dscflow                  run everything except ATE verification
//	dscflow -verify          also apply all ~4.4M tester cycles (≈5 s)
//	dscflow -table1 ...      print individual sections only
//	dscflow -scenario NAME   run the flow on a registry scenario (or a JSON spec file)
//	dscflow -scenarios       list the registered chip scenarios and exit
//	dscflow -obs             append the observability report (span tree + counters)
//	dscflow -bench-json F    run the benchmark suite and write BENCH JSON to F
//	dscflow -campaign F      run a checkpointable fault campaign from a JSON spec file
//	dscflow -resume DIR      resume a checkpointed campaign from its directory
//	dscflow -campaign F -fabric URL   submit the campaign to a fabric coordinator daemon instead
//	dscflow -campaign F -submit URL   submit the campaign as an async job on a steacd daemon
//	dscflow -api-key KEY     authenticate -fabric/-submit calls against a multi-tenant daemon
//	dscflow -report-json F   also write the raw campaign report JSON to F
//	dscflow -catalog DIR -compare csv          render a steacd results catalog as a tradeoff table
//	dscflow -catalog DIR -recommend -scenario NAME   suggest a DFT config from prior results
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"steac/internal/brains"
	"steac/internal/core"
	"steac/internal/dsc"
	"steac/internal/memory"
	"steac/internal/obs"
	"steac/internal/obs/bench"
	"steac/internal/pattern"
	"steac/internal/report"
	"steac/internal/scenario"
	"steac/internal/testinfo"
	"steac/internal/xcheck"
)

func main() {
	var (
		table1   = flag.Bool("table1", false, "print Table 1 only")
		schedOn  = flag.Bool("schedule", false, "print the scheduling comparison only")
		ioOn     = flag.Bool("io", false, "print the test-IO analysis only")
		areaOn   = flag.Bool("area", false, "print the DFT hardware cost only")
		bistOn   = flag.Bool("bist", false, "print the BIST plan only")
		marchOn  = flag.Bool("march", false, "print the March-efficiency table only")
		verify   = flag.Bool("verify", false, "apply the translated patterns on the tester model")
		verilog  = flag.Bool("verilog", false, "emit the DFT-ready netlist to stdout")
		ateprog  = flag.String("ateprog", "", "write the chip-level tester program (cycle-based ATE file) to this path — the full DSC program is ~4.4M vector lines")
		extest   = flag.Bool("extest", false, "append the EXTEST interconnect-test session (24 glue wires, 10 vectors)")
		xcheckOn = flag.Bool("xcheck", false, "gate-level differential verification: cross-check every generated DFT netlist against its behavioural model and run stuck-at fault campaigns")
		workers  = flag.Int("workers", 0, "worker goroutines for fault simulation and schedule search (0 = all CPUs)")

		scenarioF = flag.String("scenario", "dsc", "chip scenario: a registered name (see -scenarios) or the path of a JSON spec file")
		chipSeed  = flag.Int64("seed", 0, "generator seed for randomized scenarios (the dsc scenario is fully pinned and seed-invariant)")
		listScen  = flag.Bool("scenarios", false, "list the registered chip scenarios and exit")

		campaignF = flag.String("campaign", "", "run a checkpointable fault campaign described by this JSON spec file (see cmd/dscflow/campaign.go)")
		resumeDir = flag.String("resume", "", "resume a checkpointed campaign from this directory (kind and spec come from its manifest)")
		checkDir  = flag.String("checkpoint", "", "checkpoint directory for -campaign (empty = in-memory, nothing survives the process)")
		shardSize = flag.Int("shard-size", 0, "campaign checkpoint shard granularity in faults (0 = default)")
		fabricURL = flag.String("fabric", "", "submit -campaign to the steacd coordinator daemon at this URL (shards run on fabric nodes) and poll it to completion")
		submitURL = flag.String("submit", "", "submit -campaign as an async job on the steacd daemon at this URL (runs on its local pool) and poll it to completion")
		apiKey    = flag.String("api-key", "", "API key for -fabric/-submit against a multi-tenant daemon (also honors STEAC_API_KEY)")
		reportOut = flag.String("report-json", "", "write the raw campaign report JSON to this path (local and remote modes)")

		catalogDir  = flag.String("catalog", "", "local results-catalog directory (a steacd -catalog-dir) for -recommend and -compare")
		recommendOn = flag.Bool("recommend", false, "suggest a DFT config for the -scenario chip from the -catalog prior results")
		compareFmt  = flag.String("compare", "", "render the -catalog tradeoff table to stdout in this format (json, csv, html or table)")
		maxTam      = flag.Int("max-tam", 0, "cap on recommended TAM width (-recommend; 0 = no cap)")

		obsOn      = flag.Bool("obs", false, "enable observability and append the span/counter report")
		benchJSON  = flag.String("bench-json", "", "run the benchmark suite (instead of the flow) and write BENCH JSON to this path")
		benchShort = flag.Bool("bench-short", false, "single-iteration benchmark runs (CI smoke; workloads unchanged)")
	)
	flag.Parse()
	all := !(*table1 || *schedOn || *ioOn || *areaOn || *bistOn || *marchOn || *verilog || *xcheckOn)

	if *listScen {
		fmt.Print(scenarioList())
		return
	}
	if *benchJSON != "" {
		runBench(*benchJSON, *benchShort)
		return
	}
	if *recommendOn || *compareFmt != "" {
		if *catalogDir == "" {
			fail(fmt.Errorf("-recommend and -compare need -catalog DIR"))
		}
		if *compareFmt != "" {
			fail(runCompareCLI(*catalogDir, *compareFmt))
			return
		}
		fail(runRecommendCLI(*catalogDir, *scenarioF, *chipSeed, *maxTam))
		return
	}
	if *fabricURL != "" || *submitURL != "" {
		if *fabricURL != "" && *submitURL != "" {
			fail(fmt.Errorf("-fabric and -submit are mutually exclusive"))
		}
		base, useFabric := *submitURL, false
		if *fabricURL != "" {
			base, useFabric = *fabricURL, true
		}
		key := *apiKey
		if key == "" {
			key = os.Getenv("STEAC_API_KEY")
		}
		fail(runRemoteCLI(*campaignF, base, key, *shardSize, *workers, useFabric, *reportOut))
		return
	}
	if *campaignF != "" || *resumeDir != "" {
		fail(runCampaignCLI(*campaignF, *resumeDir, *checkDir, *shardSize, *workers, *reportOut))
		return
	}
	if *obsOn {
		obs.Enable()
	}

	chip, err := loadChip(*scenarioF, *chipSeed)
	fail(err)
	in, err := chip.FlowInput(*verify)
	fail(err)
	in.BISTOptions.Workers = *workers
	in.Resources.Workers = *workers
	if *extest {
		if chip.Scenario != "dsc" {
			fail(fmt.Errorf("-extest models the DSC glue interconnects and is only available for -scenario dsc"))
		}
		in.Interconnects = dsc.Interconnects()
	}
	res, err := core.RunFlowContext(context.Background(), in)
	fail(err)
	if *extest && (all || *schedOn) {
		fmt.Printf("EXTEST interconnect session: %d glue wires, %d vectors, %s cycles\n\n",
			len(res.Extest.Wires), res.Extest.Vectors, report.Comma(res.Extest.Cycles))
	}

	if all || *table1 {
		fmt.Print(core.Table1(res.Cores))
		fmt.Println()
	}
	if all || *schedOn {
		fmt.Print(core.ComparisonReport(res))
		fmt.Println()
		fmt.Print(core.ScheduleReport(res.Schedule))
		fmt.Println()
		fmt.Print(core.TimelineReport(res.Schedule, 72))
		fmt.Println()
	}
	if all || *ioOn {
		fmt.Print(core.IOReport(res.Cores))
		fmt.Println()
	}
	if all || *areaOn {
		fmt.Print(core.AreaReport(res))
		fmt.Println()
	}
	if all || *bistOn {
		fmt.Print(brains.Report(res.Brains))
		fmt.Println()
	}
	if all || *marchOn {
		rows, err := brains.EvaluateContext(context.Background(),
			memory.Config{Name: "eval", Words: 16, Bits: 4}, nil, brains.Options{Workers: *workers})
		fail(err)
		fmt.Print(brains.EvaluationTable(rows))
		fmt.Println()
	}
	if *xcheckOn {
		fail(runXCheck(res, chip, *workers))
	}
	if *verify && res.Verify != nil {
		fmt.Printf("ATE verification: PASS, %s cycles applied, 0 mismatches\n",
			report.Comma(res.Verify.Cycles))
	}
	if *verilog {
		fail(res.Insertion.Design.EmitVerilog(os.Stdout))
	}
	if *ateprog != "" {
		f, err := os.Create(*ateprog)
		fail(err)
		fail(pattern.WriteProgramFile(f, res.Program))
		fail(f.Close())
		fmt.Printf("tester program written to %s (%s cycles)\n",
			*ateprog, report.Comma(res.Program.TotalCycles()))
	}
	if *obsOn {
		obs.WriteReport(os.Stdout)
	}
}

// runBench is the -bench-json mode: it executes the paper-table benchmark
// suite and writes the schema-versioned BENCH file `benchdiff` consumes.
// Short mode runs one measured iteration per op instead of three; the
// workloads are identical, so a CI short run is comparable against the
// committed full baseline.
func runBench(path string, short bool) {
	f, err := bench.RunSuite(short, func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", a...)
	})
	fail(err)
	data, err := f.Canonical()
	fail(err)
	fail(os.WriteFile(path, data, 0o644))
	fmt.Printf("benchmark trajectory written to %s (%d ops, git %s)\n",
		path, len(f.Ops), f.GitRev)
}

// loadChip resolves the -scenario argument: the path of a JSON spec file
// when one exists there, otherwise a registered scenario name.
func loadChip(arg string, seed int64) (*scenario.Chip, error) {
	if data, err := os.ReadFile(arg); err == nil {
		spec, err := scenario.LoadSpec(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", arg, err)
		}
		return scenario.Generate(spec, seed)
	}
	return scenario.GenerateByName(arg, seed)
}

// scenarioList renders the -scenarios listing: every registered scenario
// with its resolved description and the knobs that shape its chips.
func scenarioList() string {
	var b strings.Builder
	b.WriteString("registered chip scenarios (run one with -scenario NAME [-seed N]):\n\n")
	for _, name := range scenario.Names() {
		spec, err := scenario.Resolve(name)
		if err != nil {
			fmt.Fprintf(&b, "  %-14s unresolvable: %v\n", name, err)
			continue
		}
		raw, _ := scenario.Lookup(name)
		fmt.Fprintf(&b, "  %-14s %s\n", name, spec.Description)
		var traits []string
		if raw != nil && raw.Base != "" {
			traits = append(traits, "base "+raw.Base)
		}
		traits = append(traits,
			fmt.Sprintf("%d core template(s)", len(spec.Cores)),
			fmt.Sprintf("%d memory template(s)", len(spec.Memories)))
		if spec.Resources != nil {
			traits = append(traits, fmt.Sprintf("%d test pins", spec.Resources.TestPins))
			if spec.Resources.PowerBudget > 0 {
				traits = append(traits, fmt.Sprintf("power budget %g", spec.Resources.PowerBudget))
			}
		}
		if spec.LogicBIST != nil && spec.LogicBIST.Fraction > 0 {
			traits = append(traits, "hybrid logic BIST")
		}
		fmt.Fprintf(&b, "  %-14s %s\n\n", "", strings.Join(traits, ", "))
	}
	return b.String()
}

// runXCheck is the -xcheck section: differential equivalence of every
// generated sequencer+TPG bench (each planned BIST group, plus one
// multi-memory lockstep pair when the chip has two same-geometry macros),
// the shared controller, and the cheapest scanned core's full wrapper
// stack — then stuck-at campaigns on the small real macros, the
// controller, and that wrapper.  On the dsc scenario this reproduces the
// paper driver exactly: pair-scr1+scr2, wrap_TV w=2, and exhaustive
// campaigns on extfifo and scr2.
func runXCheck(res *core.FlowResult, chip *scenario.Chip, workers int) error {
	ctx := context.Background()
	opts := xcheck.Options{Workers: workers}
	rep := &xcheck.Report{}

	cases := make([]xcheck.GroupCase, len(res.Brains.Groups))
	alg := res.Brains.Opts.Algorithm
	for i, g := range res.Brains.Groups {
		cases[i] = xcheck.GroupCase{Name: g.Name, Alg: g.Alg, Mems: g.Mems}
	}
	// One multi-memory group: two small macros in lockstep on one sequencer.
	if pair, ok := chip.PairMemories(); ok {
		cases = append(cases, xcheck.GroupCase{
			Name: fmt.Sprintf("pair-%s+%s", pair[0].Name, pair[1].Name), Alg: alg,
			Mems: pair[:],
		})
	}
	eq, err := xcheck.VerifyGroupsContext(ctx, cases, opts)
	if err != nil {
		return err
	}
	rep.Equiv = eq
	ctl, err := xcheck.VerifyControllerContext(ctx, "controller", len(res.Brains.Groups), opts)
	if err != nil {
		return err
	}
	rep.Equiv = append(rep.Equiv, ctl)
	wcore := chip.WrapperCore()
	wname := ""
	if wcore != nil {
		wname = fmt.Sprintf("wrap_%s w=2", wcore.Name)
		wres, _, err := xcheck.VerifyWrapperContext(ctx, wname, wcore, 2, opts)
		if err != nil {
			return err
		}
		rep.Equiv = append(rep.Equiv, wres)
	}

	// Campaigns: exhaustive on the two smallest real macros, the shared
	// controller, and (sampled, 8-pattern program) the wrapper stack.
	for _, m := range chip.SmallestMemories(2) {
		camp, err := xcheck.TPGCampaignContext(ctx, m.Name, alg, []memory.Config{m}, opts)
		if err != nil {
			return err
		}
		rep.Campaigns = append(rep.Campaigns, camp)
	}
	ctlCamp, err := xcheck.ControllerCampaignContext(ctx, "controller", len(res.Brains.Groups), opts)
	if err != nil {
		return err
	}
	rep.Campaigns = append(rep.Campaigns, ctlCamp)
	if wcore != nil {
		wopts := opts
		wopts.MaxFaults = 128
		wopts.MaxPatterns = 8
		wcamp, err := xcheck.WrapperCampaignContext(ctx, wname, wcore, 2, wopts)
		if err != nil {
			return err
		}
		rep.Campaigns = append(rep.Campaigns, wcamp)
	}

	xcheck.WriteReport(os.Stdout, rep)
	if !rep.Pass() {
		return fmt.Errorf("gate-level cross-check FAILED")
	}
	return runPackedDifferential(cases, res, wcore, wname)
}

// runPackedDifferential replays a sampled stuck-at campaign on every
// generated design — each BIST-group bench (for the DSC chip: the 22
// per-memory benches), the lockstep pair, the shared controller and the
// wrapper stack — through both the word-packed kernel and the scalar
// reference, and fails on the first fault whose detection cycle differs.
// MaxFaults scales inversely with the padded memory size so the scalar
// replays stay affordable on the frame buffers while small macros still
// cover a full 63-lane word plus the remainder path.
func runPackedDifferential(cases []xcheck.GroupCase, res *core.FlowResult, wcore *testinfo.Core, wname string) error {
	ctx := context.Background()
	fmt.Println("packed-vs-scalar differential (sampled stuck-at campaigns)")
	designs, faults := 0, 0
	check := func(sim *xcheck.CampaignSim, err error) error {
		if err != nil {
			return err
		}
		n, err := sim.VerifyPackedScalar(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("  %-16s %4d/%d faults bit-identical\n", sim.Name(), n, sim.Sites())
		designs++
		faults += n
		return nil
	}
	for _, c := range cases {
		mf := 64
		for _, m := range xcheck.PadConfigs(c.Mems) {
			if budget := 64 * 4096 / m.Words; budget < mf {
				mf = max(budget, 8)
			}
		}
		if err := check(xcheck.NewTPGCampaignSim(c.Name, c.Alg, c.Mems, xcheck.Options{MaxFaults: mf})); err != nil {
			return err
		}
	}
	if err := check(xcheck.NewControllerCampaignSim("controller", len(res.Brains.Groups), xcheck.Options{MaxFaults: 128})); err != nil {
		return err
	}
	if wcore != nil {
		if err := check(xcheck.NewWrapperCampaignSim(wname, wcore, 2, xcheck.Options{MaxFaults: 48, MaxPatterns: 8})); err != nil {
			return err
		}
	}
	fmt.Printf("  %d designs, %d faults: packed kernels match the scalar reference\n", designs, faults)
	return nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dscflow:", err)
		os.Exit(1)
	}
}
