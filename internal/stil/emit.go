package stil

import (
	"fmt"
	"strings"

	"steac/internal/testinfo"
)

// Emit serializes a core's test information to STIL, the hand-off format
// between the ATPG and STEAC.  Parse(Emit(c)) reconstructs c.
func Emit(c *testinfo.Core) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	if err := emittableNames(c); err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("STIL 1.0;\n")
	fmt.Fprintf(&sb, "{* core name=%s soft=%t *}\n", c.Name, c.Soft)

	sb.WriteString("Signals {\n")
	writeSig := func(role, name, dir string) {
		if role != "" {
			fmt.Fprintf(&sb, "  {* %s *} %s %s;\n", role, name, dir)
		} else {
			fmt.Fprintf(&sb, "  %s %s;\n", name, dir)
		}
	}
	for _, ck := range c.Clocks {
		writeSig("clock", ck, "In")
	}
	for _, r := range c.Resets {
		writeSig("reset", r, "In")
	}
	for _, se := range c.ScanEnables {
		writeSig("se", se, "In")
	}
	for _, te := range c.TestEnables {
		writeSig("te", te, "In")
	}
	for _, ch := range c.ScanChains {
		writeSig("si", ch.In, "In")
		if ch.SharedOut {
			writeSig("so-shared", ch.Out, "Out")
		} else {
			writeSig("so", ch.Out, "Out")
		}
	}
	if c.PIs > 0 {
		writeSig("", fmt.Sprintf("pi[0..%d]", c.PIs-1), "In")
	}
	if c.POs > 0 {
		writeSig("", fmt.Sprintf("po[0..%d]", c.POs-1), "Out")
	}
	sb.WriteString("}\n")

	if len(c.ScanChains) > 0 {
		sis := make([]string, len(c.ScanChains))
		sos := make([]string, len(c.ScanChains))
		for i, ch := range c.ScanChains {
			sis[i] = ch.In
			sos[i] = ch.Out
		}
		sb.WriteString("SignalGroups {\n")
		fmt.Fprintf(&sb, "  \"all_si\" = '%s';\n", strings.Join(sis, " + "))
		fmt.Fprintf(&sb, "  \"all_so\" = '%s';\n", strings.Join(sos, " + "))
		sb.WriteString("}\n")
		sb.WriteString("ScanStructures {\n")
		for _, ch := range c.ScanChains {
			fmt.Fprintf(&sb, "  ScanChain \"%s\" {\n", ch.Name)
			fmt.Fprintf(&sb, "    ScanLength %d;\n", ch.Length)
			fmt.Fprintf(&sb, "    ScanIn %s;\n", ch.In)
			fmt.Fprintf(&sb, "    ScanOut %s;\n", ch.Out)
			if ch.Clock != "" {
				fmt.Fprintf(&sb, "    ScanMasterClock %s;\n", ch.Clock)
			}
			if ch.SharedOut {
				sb.WriteString("    {* shared-out *}\n")
			}
			sb.WriteString("  }\n")
		}
		sb.WriteString("}\n")
	}

	sb.WriteString("Timing {\n  WaveformTable \"wft\" {\n    Period '40ns';\n  }\n}\n")

	if len(c.Patterns) > 0 {
		sb.WriteString("PatternBurst \"burst\" {\n  PatList {\n")
		for _, p := range c.Patterns {
			fmt.Fprintf(&sb, "    \"%s\";\n", p.Name)
		}
		sb.WriteString("  }\n}\n")
		sb.WriteString("PatternExec {\n  PatternBurst \"burst\";\n}\n")
		for _, p := range c.Patterns {
			typ := "Scan"
			if p.Type == testinfo.Functional {
				typ = "Functional"
			}
			fmt.Fprintf(&sb, "Pattern \"%s\" {\n  {* patterns type=%s count=%d seed=%d *}\n}\n",
				p.Name, typ, p.Count, p.Seed)
		}
	}
	return sb.String(), nil
}

// emittableNames rejects cores whose names cannot survive the emitted
// syntax: signal names print as bare identifiers and must lex back as one
// token, and quoted names (chains, pattern sets, the core name inside its
// annotation) must not contain the quote or annotation terminators.  Parse
// is deliberately liberal (it reads quoted names too), so without this
// check Emit could produce text Parse rejects and break the round trip.
func emittableNames(c *testinfo.Core) error {
	ident := func(kind, name string) error {
		if name == "" || !isIdentStart(name[0]) {
			return fmt.Errorf("stil: %s name %q is not an emittable identifier", kind, name)
		}
		for i := 1; i < len(name); i++ {
			if !isIdentPart(name[i]) {
				return fmt.Errorf("stil: %s name %q is not an emittable identifier", kind, name)
			}
		}
		return nil
	}
	quoted := func(kind, name string) error {
		if strings.ContainsAny(name, "\"'\n") || strings.Contains(name, "*}") {
			return fmt.Errorf("stil: %s name %q cannot be quoted in STIL", kind, name)
		}
		return nil
	}
	if err := quoted("core", c.Name); err != nil {
		return err
	}
	if strings.ContainsAny(c.Name, " \t") {
		return fmt.Errorf("stil: core name %q contains whitespace", c.Name)
	}
	for _, n := range c.Clocks {
		if err := ident("clock", n); err != nil {
			return err
		}
	}
	for _, n := range c.Resets {
		if err := ident("reset", n); err != nil {
			return err
		}
	}
	for _, n := range c.ScanEnables {
		if err := ident("scan-enable", n); err != nil {
			return err
		}
	}
	for _, n := range c.TestEnables {
		if err := ident("test-enable", n); err != nil {
			return err
		}
	}
	for _, ch := range c.ScanChains {
		if err := quoted("chain", ch.Name); err != nil {
			return err
		}
		if err := ident("scan-in", ch.In); err != nil {
			return err
		}
		if err := ident("scan-out", ch.Out); err != nil {
			return err
		}
		if ch.Clock != "" {
			if err := ident("scan-clock", ch.Clock); err != nil {
				return err
			}
		}
	}
	for _, p := range c.Patterns {
		if err := quoted("pattern-set", p.Name); err != nil {
			return err
		}
	}
	return nil
}
