package bench

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func sample() *File {
	return &File{
		Schema: SchemaVersion, GitRev: "test", GoVersion: "go0", MaxProcs: 1,
		Ops: []Op{
			{Op: "b.second", Iters: 3, Workers: 1, WallNs: 2000, Work: 10, WorkUnit: "cycles", Check: "x=1"},
			{Op: "a.first", Iters: 3, Workers: 2, WallNs: 1000, Work: 20, WorkUnit: "faults", Check: "y=2"},
		},
	}
}

func TestCanonicalSortsAndRoundTrips(t *testing.T) {
	f := sample()
	data, err := f.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(data, []byte("\n")) {
		t.Fatal("canonical form lacks trailing newline")
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ops[0].Op != "a.first" || back.Ops[1].Op != "b.second" {
		t.Fatalf("ops not sorted: %q, %q", back.Ops[0].Op, back.Ops[1].Op)
	}
	again, err := back.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("canonical form not a fixed point")
	}
}

func TestParseRejectsWrongSchema(t *testing.T) {
	if _, err := Parse([]byte(`{"schema":"steac-bench/v0","ops":[]}`)); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCompareSelfPasses(t *testing.T) {
	f := sample()
	s := Compare(f, f, 15)
	if s.Failed() {
		t.Fatalf("self-comparison failed: %+v", s)
	}
	for _, d := range s.Ops {
		if d.Status != StatusOK {
			t.Fatalf("op %s status %s on self-comparison", d.Op, d.Status)
		}
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	old, new := sample(), sample()
	new.Ops[0].WallNs *= 2 // b.second: +100% > 15%
	s := Compare(old, new, 15)
	if !s.Failed() || s.Regressions != 1 {
		t.Fatalf("2x slowdown not flagged: %+v", s)
	}
	var found bool
	for _, d := range s.Ops {
		if d.Op == "b.second" {
			found = true
			if d.Status != StatusRegressed || d.DeltaPct < 99 {
				t.Fatalf("b.second diff %+v", d)
			}
		}
	}
	if !found {
		t.Fatal("regressed op missing from summary")
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	old, new := sample(), sample()
	new.Ops[0].WallNs /= 4
	s := Compare(old, new, 15)
	if s.Failed() {
		t.Fatalf("improvement failed the comparison: %+v", s)
	}
	if s.Improved != 1 {
		t.Fatalf("improved count = %d, want 1", s.Improved)
	}
	for _, d := range s.Ops {
		if d.Op == "b.second" {
			if d.Status != StatusImproved {
				t.Fatalf("b.second status %s, want improved", d.Status)
			}
			if d.Speedup < 3.9 || d.Speedup > 4.1 {
				t.Fatalf("b.second speedup %.2f, want ~4", d.Speedup)
			}
		} else if d.Speedup != 0 {
			t.Fatalf("%s: speedup %.2f on non-improved op", d.Op, d.Speedup)
		}
	}
}

// TestCompareWithPerOpThreshold checks the override plumbing: the same delta
// regresses under the default threshold but passes for an op granted more
// headroom, and a tightened override flags a drift the default would let
// through.
func TestCompareWithPerOpThreshold(t *testing.T) {
	old, new := sample(), sample()
	new.Ops[0].WallNs = new.Ops[0].WallNs * 13 / 10 // b.second: +30%
	s := CompareWith(old, new, CompareOptions{
		ThresholdPct: 15,
		OpThresholds: map[string]float64{"b.second": 50},
	})
	if s.Failed() || s.Regressions != 0 {
		t.Fatalf("+30%% regressed despite a 50%% per-op threshold: %+v", s)
	}
	for _, d := range s.Ops {
		if d.Op == "b.second" && d.ThresholdPct != 50 {
			t.Fatalf("b.second judged against %.0f%%, want the 50%% override", d.ThresholdPct)
		}
	}

	old, new = sample(), sample()
	new.Ops[1].WallNs = new.Ops[1].WallNs * 11 / 10 // a.first: +10%
	s = CompareWith(old, new, CompareOptions{
		ThresholdPct: 15,
		OpThresholds: map[string]float64{"a.first": 5},
	})
	if !s.Failed() || s.Regressions != 1 {
		t.Fatalf("+10%% passed despite a 5%% per-op threshold: %+v", s)
	}
}

func TestCompareMissingOpFails(t *testing.T) {
	old, new := sample(), sample()
	new.Ops = new.Ops[:1]
	s := Compare(old, new, 15)
	if !s.Failed() || s.Missing != 1 {
		t.Fatalf("lost op not flagged: %+v", s)
	}
}

func TestCompareNewOpInformational(t *testing.T) {
	old, new := sample(), sample()
	new.Ops = append(new.Ops, Op{Op: "c.extra", WallNs: 10})
	s := Compare(old, new, 15)
	if s.Failed() {
		t.Fatalf("new op failed the comparison: %+v", s)
	}
}

func TestCompareCheckMismatchFails(t *testing.T) {
	old, new := sample(), sample()
	new.Ops[1].Check = "y=3"
	s := Compare(old, new, 15)
	if !s.Failed() || s.CheckMismatches != 1 {
		t.Fatalf("functional drift not flagged: %+v", s)
	}
}

func TestSummaryWrite(t *testing.T) {
	old, new := sample(), sample()
	new.Ops[0].WallNs *= 2
	var buf bytes.Buffer
	Compare(old, new, 15).Write(&buf)
	out := buf.String()
	for _, want := range []string{"b.second", StatusRegressed, "1 regressed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// suiteOnce runs the real suite (short mode) once for the tests below.
var suiteOnce = sync.OnceValues(func() (*File, error) {
	return RunSuite(true, nil)
})

func TestSuiteCoversRequiredOps(t *testing.T) {
	f, err := suiteOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Ops) < 8 {
		t.Fatalf("suite ran %d ops, want >= 8", len(f.Ops))
	}
	have := map[string]bool{}
	for _, op := range f.Ops {
		have[op.Op] = true
		if op.WallNs <= 0 {
			t.Errorf("%s: wall_ns %d", op.Op, op.WallNs)
		}
		if op.Check == "" {
			t.Errorf("%s: empty check fingerprint", op.Op)
		}
	}
	for _, want := range []string{
		"sched.session_search", "march.coverage", "bist.engine",
		"xcheck.campaign", "pattern.translate",
	} {
		if !have[want] {
			t.Errorf("suite missing required op %s", want)
		}
	}
}

// TestSuiteDeterminism is the -bench-json determinism satellite: two runs
// of the suite must be byte-identical after Scrub (which zeroes exactly the
// timing fields).
func TestSuiteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite twice")
	}
	shared, err := suiteOnce()
	if err != nil {
		t.Fatal(err)
	}
	// Deep-copy the shared run before scrubbing it (other tests still need
	// its timing fields).
	data, err := shared.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	f1, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := RunSuite(true, nil)
	if err != nil {
		t.Fatal(err)
	}
	f1.Scrub()
	f2.Scrub()
	b1, err := f1.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := f2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("two suite runs differ after scrubbing timing fields:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", b1, b2)
	}
}

// TestSuiteRoundTripsThroughDiff is the benchdiff acceptance pair: a run
// compared against itself passes; the same run with one op slowed 2x fails.
func TestSuiteRoundTripsThroughDiff(t *testing.T) {
	f, err := suiteOnce()
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	same, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if s := Compare(f, same, 15); s.Failed() {
		t.Fatalf("suite self-comparison failed: %+v", s)
	}
	slow, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	slow.Ops[0].WallNs *= 2
	if s := Compare(f, slow, 15); !s.Failed() {
		t.Fatal("synthetic 2x regression passed the diff")
	}
}
