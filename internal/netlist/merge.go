package netlist

import "fmt"

// Clone returns a deep copy of the module.
func (m *Module) Clone(newName string) *Module {
	c := NewModule(newName)
	c.Behavioral = m.Behavioral
	c.AreaOverride = m.AreaOverride
	for k, v := range m.Attrs {
		c.Attrs[k] = v
	}
	for _, p := range m.Ports {
		c.MustPort(p.Name, p.Dir, p.Width)
	}
	for n := range m.Nets {
		c.AddNet(n)
	}
	for _, inst := range m.Instances {
		c.MustInstance(inst.Name, inst.Of, inst.Conns)
	}
	return c
}

// Merge imports every module of src into d.  Identical-name modules are an
// error unless both are the same generated library cell (same name and both
// already present is tolerated only for identical WBR-style shared cells,
// which callers dedupe themselves), so collisions are simply rejected.
func (d *Design) Merge(src *Design) error {
	for _, name := range src.ModuleNames() {
		if _, ok := d.Modules[name]; ok {
			return fmt.Errorf("netlist: merge collision on module %s", name)
		}
	}
	for _, name := range src.ModuleNames() {
		d.Modules[name] = src.Modules[name].Clone(name)
	}
	return nil
}
