package core

import "errors"

// ErrBudgetExceeded marks a flow that failed because the chip's test
// resource budget (pin counts, power ceiling) admits no feasible schedule.
// It wraps the scheduler's own sched.ErrInfeasible, so callers can match
// either sentinel with errors.Is; serve maps it to a client error (the
// request was well-formed, the budget just doesn't work) rather than a
// server fault.
var ErrBudgetExceeded = errors.New("steac: test resource budget exceeded")
