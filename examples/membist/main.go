// Memory BIST with BRAINS: compile the BIST subsystem for a heterogeneous
// memory set, compare March algorithms by fault simulation, and run a
// go/no-go self test with an injected manufacturing defect.
package main

import (
	"context"
	"fmt"
	"log"

	"steac/internal/brains"
	"steac/internal/march"
	"steac/internal/memfault"
	"steac/internal/memory"
)

func main() {
	mems := []memory.Config{
		{Name: "framebuf", Words: 16384, Bits: 16},
		{Name: "linebuf0", Words: 990, Bits: 16},
		{Name: "linebuf1", Words: 990, Bits: 16},
		{Name: "scratch", Words: 2048, Bits: 8},
		{Name: "fifo", Words: 512, Bits: 32, Kind: memory.TwoPort},
	}

	// 1. Compile: group by port kind, bound the test power.
	res, err := brains.CompileContext(context.Background(), mems, brains.Options{
		Algorithm: march.MarchCMinus(),
		Grouping:  brains.GroupByKind,
		MaxPower:  20,
		ClockMHz:  100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(brains.Report(res))
	fmt.Println()

	// 2. Evaluate March efficiency by exhaustive fault simulation on a
	// small proxy geometry (the trade-off BRAINS shows its users).
	rows, err := brains.EvaluateContext(context.Background(), memory.Config{Name: "proxy", Words: 16, Bits: 4}, nil, brains.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(brains.EvaluationTable(rows))
	fmt.Println()

	// 3. Self-test: healthy chip passes, a defective macro is caught and
	// diagnosed down to the failing address.
	eng, err := brains.NewEngine(res, nil)
	if err != nil {
		log.Fatal(err)
	}
	healthy := eng.Run()
	fmt.Printf("healthy self-test: pass=%t in %d cycles\n", healthy.Pass, healthy.Cycles)

	faulty, err := memfault.NewFaulty(mems[0], []memfault.Fault{
		{Kind: memfault.CFin,
			Victim:   memfault.Cell{Addr: 1234, Bit: 7},
			Aggr:     memfault.Cell{Addr: 1235, Bit: 7},
			AggrRise: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	eng2, err := brains.NewEngine(res, map[string]memory.RAM{"framebuf": faulty})
	if err != nil {
		log.Fatal(err)
	}
	eng2.EnableDiagnosis(0)
	r := eng2.Run()
	for _, m := range r.Mems {
		if !m.Pass {
			fmt.Printf("defective self-test: %s FAILED at address %d (cycle %d) — coupling fault caught\n",
				m.Name, m.FirstFail.Addr, m.FirstFail.Cycle)
		}
	}
	for _, d := range eng2.Diagnoses() {
		fmt.Printf("diagnosis bitmap: %s\n", d)
	}

	// 4. A column defect (bit line short) classifies differently: the
	// bitmap signature drives repair/redundancy decisions.
	colCfg := mems[3] // scratch, 2048x8
	var colFaults []memfault.Fault
	for a := 0; a < colCfg.Words; a++ {
		colFaults = append(colFaults, memfault.Fault{
			Kind: memfault.SA0, Victim: memfault.Cell{Addr: a, Bit: 6}})
	}
	colRAM, err := memfault.NewFaulty(colCfg, colFaults)
	if err != nil {
		log.Fatal(err)
	}
	eng3, err := brains.NewEngine(res, map[string]memory.RAM{"scratch": colRAM})
	if err != nil {
		log.Fatal(err)
	}
	eng3.EnableDiagnosis(0)
	eng3.Run()
	for _, d := range eng3.Diagnoses() {
		fmt.Printf("diagnosis bitmap: %s\n", d)
	}
}
