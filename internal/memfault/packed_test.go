package memfault

import (
	"context"
	"fmt"
	"testing"

	"steac/internal/march"
	"steac/internal/memory"
)

// packedFaultList is the differential-test fault universe for a geometry:
// every generator (including the retention and intra-word coupling lists the
// campaign generator omits), plus port-B stuck-ats on two-port macros so the
// scalar fallback path is exercised too.
func packedFaultList(cfg memory.Config) []Fault {
	faults := AllFaults(cfg)
	faults = append(faults, RetentionFaults(cfg)...)
	faults = append(faults, IntraWordCouplingFaults(cfg)...)
	if cfg.Kind == memory.TwoPort {
		forEachCell(cfg, func(c Cell) {
			faults = append(faults,
				Fault{Kind: SAB0, Victim: c},
				Fault{Kind: SAB1, Victim: c})
		})
	}
	return faults
}

// scalarVerdicts is the ground truth: one scalar single-fault machine per
// fault, exactly what the pre-packed campaign ran.
func scalarVerdicts(t *testing.T, sim *CoverageSim, faults []Fault) []bool {
	t.Helper()
	w, err := sim.NewWorker()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]bool, len(faults))
	for i, f := range faults {
		d, err := w.Detect(f)
		if err != nil {
			t.Fatalf("scalar Detect(%s): %v", f, err)
		}
		out[i] = d
	}
	return out
}

// TestPackedWorkerMatchesScalar is the packed engine's differential
// contract: for every fault kind, geometry, algorithm and option set the
// bit-plane verdicts must be byte-identical to per-fault scalar simulation.
func TestPackedWorkerMatchesScalar(t *testing.T) {
	type fixture struct {
		cfg  memory.Config
		algs []march.Algorithm
		opts []Options
	}
	fixtures := []fixture{
		{
			cfg:  cfg16x4,
			algs: []march.Algorithm{march.MSCAN(), march.MATSPlus(), march.MarchCMinus(), march.MarchLR()},
			opts: []Options{
				{},
				{Backgrounds: []uint64{0x0, 0x5}},
				{PauseBefore: RetentionPauses()},
			},
		},
		{
			cfg:  memory.Config{Name: "w32x8", Words: 32, Bits: 8},
			algs: []march.Algorithm{march.MarchCMinus()},
			opts: []Options{{}, {Backgrounds: []uint64{0x0, Checkerboard(8)}}},
		},
		{
			cfg:  memory.Config{Name: "tp16x4", Words: 16, Bits: 4, Kind: memory.TwoPort},
			algs: []march.Algorithm{march.MarchY()},
			opts: []Options{{}},
		},
	}
	for _, fx := range fixtures {
		faults := packedFaultList(fx.cfg)
		for _, alg := range fx.algs {
			for oi, opt := range fx.opts {
				t.Run(fmt.Sprintf("%s/%s/opts%d", fx.cfg.Name, alg.Name, oi), func(t *testing.T) {
					sim, err := NewCoverageSim(alg, fx.cfg, opt)
					if err != nil {
						t.Fatal(err)
					}
					want := scalarVerdicts(t, sim, faults)
					pw, err := sim.NewPackedWorker()
					if err != nil {
						t.Fatal(err)
					}
					got := make([]bool, len(faults))
					errs := make([]error, len(faults))
					pw.DetectBatch(faults, got, errs)
					for i := range faults {
						if errs[i] != nil {
							t.Fatalf("fault %d (%s): unexpected error %v", i, faults[i], errs[i])
						}
						if got[i] != want[i] {
							t.Errorf("fault %d (%s): packed=%t scalar=%t", i, faults[i], got[i], want[i])
						}
					}
				})
			}
		}
	}
}

// TestPackedBatchSizes checks that batch geometry is not semantic: the same
// worker, reused across batches of 1, 63, 64 and 65 faults (full word,
// word±1 and the single-fault remainder path), must reproduce the one-shot
// verdicts.
func TestPackedBatchSizes(t *testing.T) {
	cfg := cfg16x4
	faults := packedFaultList(cfg)
	sim, err := NewCoverageSim(march.MarchCMinus(), cfg, Options{PauseBefore: RetentionPauses()})
	if err != nil {
		t.Fatal(err)
	}
	pw, err := sim.NewPackedWorker()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]bool, len(faults))
	pw.DetectBatch(faults, want, nil)
	for _, size := range []int{1, 63, 64, 65} {
		got := make([]bool, len(faults))
		for start := 0; start < len(faults); start += size {
			end := start + size
			if end > len(faults) {
				end = len(faults)
			}
			pw.DetectBatch(faults[start:end], got[start:end], nil)
		}
		for i := range faults {
			if got[i] != want[i] {
				t.Fatalf("batch size %d: fault %d (%s): got %t want %t",
					size, i, faults[i], got[i], want[i])
			}
		}
	}
}

// TestPackedWorkerErrorParity checks that ill-formed faults surface through
// DetectBatch with exactly the error (and non-detection) the scalar worker
// reports, without disturbing the valid lanes packed alongside them.
func TestPackedWorkerErrorParity(t *testing.T) {
	sim, err := NewCoverageSim(march.MarchCMinus(), cfg16x4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	faults := []Fault{
		{Kind: SA0, Victim: Cell{Addr: 3, Bit: 1}},
		{Kind: SA1, Victim: Cell{Addr: 99, Bit: 0}},   // out of range
		{Kind: SAB0, Victim: Cell{Addr: 1, Bit: 1}},   // port-B fault on single-port
		{Kind: DRF, Victim: Cell{Addr: 2}, Forced: 7}, // bad decay value
		{Kind: RDF, Victim: Cell{Addr: 5, Bit: 2}},
	}
	sw, err := sim.NewWorker()
	if err != nil {
		t.Fatal(err)
	}
	pw, err := sim.NewPackedWorker()
	if err != nil {
		t.Fatal(err)
	}
	det := make([]bool, len(faults))
	errs := make([]error, len(faults))
	pw.DetectBatch(faults, det, errs)
	for i, f := range faults {
		wantDet, wantErr := sw.Detect(f)
		if det[i] != wantDet {
			t.Errorf("fault %d (%s): packed=%t scalar=%t", i, f, det[i], wantDet)
		}
		switch {
		case wantErr == nil && errs[i] != nil:
			t.Errorf("fault %d (%s): unexpected error %v", i, f, errs[i])
		case wantErr != nil && (errs[i] == nil || errs[i].Error() != wantErr.Error()):
			t.Errorf("fault %d (%s): error %v, want %v", i, f, errs[i], wantErr)
		}
	}
}

// TestPackedCoverageCampaignEquality ties the end-to-end campaign to scalar
// ground truth: Coverage (which now runs on the packed engine) must assemble
// the same report a per-fault scalar sweep produces.
func TestPackedCoverageCampaignEquality(t *testing.T) {
	cfg := memory.Config{Name: "tp16x4", Words: 16, Bits: 4, Kind: memory.TwoPort}
	faults := packedFaultList(cfg)
	alg := march.MarchLR()
	opt := Options{Backgrounds: []uint64{0x0, 0x5}, MaxUndetected: -1}
	sim, err := NewCoverageSim(alg, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := Assemble(alg.Name, faults, scalarVerdicts(t, sim, faults), opt)
	for _, workers := range []int{1, 4} {
		o := opt
		o.Workers = workers
		got, err := CoverageContext(context.Background(), alg, cfg, faults, o)
		if err != nil {
			t.Fatal(err)
		}
		if got.Total != want.Total || got.Detected != want.Detected ||
			len(got.Undetected) != len(want.Undetected) {
			t.Fatalf("workers=%d: campaign %+v, want %+v", workers, got, want)
		}
		for i := range want.Undetected {
			if got.Undetected[i] != want.Undetected[i] {
				t.Fatalf("workers=%d: undetected[%d] = %v, want %v",
					workers, i, got.Undetected[i], want.Undetected[i])
			}
		}
	}
}
