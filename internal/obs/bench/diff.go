package bench

import (
	"fmt"
	"io"
	"time"
)

// Op comparison statuses.
const (
	StatusOK            = "ok"
	StatusRegressed     = "regressed"
	StatusImproved      = "improved"
	StatusMissing       = "missing" // op in old file absent from new: a lost benchmark is a failure
	StatusNew           = "new"     // op only in the new file: informational
	StatusCheckMismatch = "check-mismatch"
)

// OpDiff compares one op between two runs.
type OpDiff struct {
	Op       string  `json:"op"`
	Status   string  `json:"status"`
	OldNs    int64   `json:"old_ns,omitempty"`
	NewNs    int64   `json:"new_ns,omitempty"`
	DeltaPct float64 `json:"delta_pct"`
	// Checks carried along so a check-mismatch is explainable.
	OldCheck string `json:"old_check,omitempty"`
	NewCheck string `json:"new_check,omitempty"`
}

// Summary is a full two-file comparison.
type Summary struct {
	ThresholdPct    float64  `json:"threshold_pct"`
	Ops             []OpDiff `json:"ops"`
	Regressions     int      `json:"regressions"`
	Missing         int      `json:"missing"`
	CheckMismatches int      `json:"check_mismatches"`
}

// Failed reports whether the comparison should fail the build: any
// regression past the threshold, any lost op, any functional-result
// mismatch.
func (s *Summary) Failed() bool {
	return s.Regressions > 0 || s.Missing > 0 || s.CheckMismatches > 0
}

// Compare diffs two runs op by op.  An op regresses when its new wall time
// exceeds the old by more than thresholdPct percent; improvements are
// labelled but never fail.  Old and new files must share a schema (Load
// already enforces the version).
func Compare(old, new *File, thresholdPct float64) *Summary {
	s := &Summary{ThresholdPct: thresholdPct}
	newOps := make(map[string]Op, len(new.Ops))
	for _, op := range new.Ops {
		newOps[op.Op] = op
	}
	seen := make(map[string]bool, len(old.Ops))
	for _, o := range old.Ops {
		seen[o.Op] = true
		n, ok := newOps[o.Op]
		if !ok {
			s.Ops = append(s.Ops, OpDiff{Op: o.Op, Status: StatusMissing, OldNs: o.WallNs})
			s.Missing++
			continue
		}
		d := OpDiff{Op: o.Op, OldNs: o.WallNs, NewNs: n.WallNs,
			OldCheck: o.Check, NewCheck: n.Check}
		if o.WallNs > 0 {
			d.DeltaPct = 100 * (float64(n.WallNs) - float64(o.WallNs)) / float64(o.WallNs)
		}
		switch {
		case o.Check != n.Check:
			d.Status = StatusCheckMismatch
			s.CheckMismatches++
		case d.DeltaPct > thresholdPct:
			d.Status = StatusRegressed
			s.Regressions++
		case d.DeltaPct < -thresholdPct:
			d.Status = StatusImproved
		default:
			d.Status = StatusOK
		}
		s.Ops = append(s.Ops, d)
	}
	for _, n := range new.Ops {
		if !seen[n.Op] {
			s.Ops = append(s.Ops, OpDiff{Op: n.Op, Status: StatusNew, NewNs: n.WallNs})
		}
	}
	return s
}

// Write renders the summary as the human table benchdiff prints.
func (s *Summary) Write(w io.Writer) {
	fmt.Fprintf(w, "%-28s %14s %14s %9s  %s\n", "op", "old", "new", "delta", "status")
	for _, d := range s.Ops {
		old, new, delta := "-", "-", "-"
		if d.OldNs > 0 {
			old = time.Duration(d.OldNs).Round(time.Microsecond).String()
		}
		if d.NewNs > 0 {
			new = time.Duration(d.NewNs).Round(time.Microsecond).String()
		}
		if d.Status != StatusMissing && d.Status != StatusNew {
			delta = fmt.Sprintf("%+.1f%%", d.DeltaPct)
		}
		fmt.Fprintf(w, "%-28s %14s %14s %9s  %s\n", d.Op, old, new, delta, d.Status)
	}
	fmt.Fprintf(w, "threshold ±%.0f%%: %d regressed, %d missing, %d check mismatches\n",
		s.ThresholdPct, s.Regressions, s.Missing, s.CheckMismatches)
}
