package memfault

import (
	"context"
	"testing"

	"steac/internal/march"
	"steac/internal/memory"
)

// coverage runs a single-fault campaign and returns it, failing the test on
// simulator errors.
func coverage(t *testing.T, alg march.Algorithm, faults []Fault) Campaign {
	t.Helper()
	camp, err := CoverageContext(context.Background(), alg, cfg16x4, faults, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return camp
}

// The assertions below are the classical March coverage results; getting
// them from an empirical fault simulation is the point of the experiment
// ("evaluate the memory test efficiency", paper §2).

func TestStuckAtCoverage(t *testing.T) {
	faults := StuckAtFaults(cfg16x4)
	for _, alg := range march.Catalog() {
		camp := coverage(t, alg, faults)
		if camp.Percent() != 100 {
			t.Errorf("%s SAF coverage = %.1f%%, want 100%%", alg.Name, camp.Percent())
		}
	}
}

func TestTransitionCoverage(t *testing.T) {
	faults := TransitionFaults(cfg16x4)
	// MSCAN and MATS+ miss down-transitions; everything from March X up
	// detects all TFs.
	for _, tc := range []struct {
		alg  march.Algorithm
		want float64
	}{
		{march.MSCAN(), 50},
		{march.MATSPlus(), 50},
		{march.MarchX(), 100},
		{march.MarchY(), 100},
		{march.MarchCMinus(), 100},
		{march.MarchA(), 100},
		{march.MarchB(), 100},
		{march.MarchLR(), 100},
	} {
		camp := coverage(t, tc.alg, faults)
		if camp.Percent() != tc.want {
			t.Errorf("%s TF coverage = %.1f%%, want %.0f%%", tc.alg.Name, camp.Percent(), tc.want)
		}
	}
}

func TestAddressFaultCoverage(t *testing.T) {
	faults := AddressFaults(cfg16x4)
	if camp := coverage(t, march.MSCAN(), faults); camp.Percent() != 0 {
		t.Errorf("MSCAN AF coverage = %.1f%%, want 0%% (element-uniform sweeps cannot see decoder faults)", camp.Percent())
	}
	for _, alg := range []march.Algorithm{march.MATSPlus(), march.MarchCMinus(), march.MarchB()} {
		if camp := coverage(t, alg, faults); camp.Percent() != 100 {
			t.Errorf("%s AF coverage = %.1f%%, want 100%%", alg.Name, camp.Percent())
		}
	}
}

func TestCouplingCoverage(t *testing.T) {
	faults := CouplingFaults(cfg16x4)
	// March C- detects all unlinked CFin/CFid/CFst.
	camp := coverage(t, march.MarchCMinus(), faults)
	if camp.Percent() != 100 {
		t.Errorf("March C- coupling coverage = %.1f%% (undetected: %v)", camp.Percent(), camp.Undetected)
	}
	// MATS+ cannot detect all coupling faults.
	if camp := coverage(t, march.MATSPlus(), faults); camp.Percent() >= 100 {
		t.Errorf("MATS+ coupling coverage = %.1f%%, expected < 100%%", camp.Percent())
	}
}

func TestStuckOpenCoverage(t *testing.T) {
	faults := StuckOpenFaults(cfg16x4)
	// SOF needs a (..., wx, rx) element; March Y and March B have one,
	// March C- does not (it only catches the address-boundary cells where
	// the expected value flips between elements).
	for _, alg := range []march.Algorithm{march.MarchY(), march.MarchB()} {
		if camp := coverage(t, alg, faults); camp.Percent() != 100 {
			t.Errorf("%s SOF coverage = %.1f%%, want 100%%", alg.Name, camp.Percent())
		}
	}
	camp := coverage(t, march.MarchCMinus(), faults)
	if camp.Percent() >= 100 || camp.Percent() <= 0 {
		t.Errorf("March C- SOF coverage = %.1f%%, expected partial", camp.Percent())
	}
}

func TestReadDisturbCoverage(t *testing.T) {
	faults := ReadDisturbFaults(cfg16x4)
	for _, alg := range march.Catalog() {
		if camp := coverage(t, alg, faults); camp.Percent() != 100 {
			t.Errorf("%s RDF coverage = %.1f%%, want 100%%", alg.Name, camp.Percent())
		}
	}
}

func TestCoverageMonotoneInStrength(t *testing.T) {
	// Over the full fault list, the thorough algorithms must never do
	// worse than the cheap ones: MSCAN <= MATS+ <= March C-.
	faults := AllFaults(cfg16x4)
	var last float64 = -1
	for _, alg := range []march.Algorithm{march.MSCAN(), march.MATSPlus(), march.MarchCMinus()} {
		camp := coverage(t, alg, faults)
		if camp.Percent() < last {
			t.Fatalf("%s coverage %.2f%% dropped below weaker algorithm's %.2f%%",
				alg.Name, camp.Percent(), last)
		}
		last = camp.Percent()
	}
}

func TestDetectionDiagnostics(t *testing.T) {
	f := Fault{Kind: SA1, Victim: Cell{Addr: 4, Bit: 2}}
	det, err := Simulate(march.MSCAN(), cfg16x4, []Fault{f}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !det.Detected {
		t.Fatal("SA1 not detected by MSCAN")
	}
	if !det.Access.Op.Read || det.Access.Addr != 4 {
		t.Fatalf("detecting access = %+v, want read of addr 4", det.Access)
	}
	if det.Expected == det.Got {
		t.Fatal("detection with equal words")
	}
}

func TestFaultFreeNoDetection(t *testing.T) {
	for _, alg := range march.Catalog() {
		det, err := Simulate(alg, cfg16x4, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if det.Detected {
			t.Fatalf("%s flagged a fault-free memory: %+v", alg.Name, det)
		}
	}
}

func TestBackgroundOption(t *testing.T) {
	// With a checkerboard background the simulation still flags SAFs and
	// stays silent on a fault-free memory.
	opt := Options{Background: 0x5}
	det, err := Simulate(march.MarchCMinus(), cfg16x4, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if det.Detected {
		t.Fatal("background run flagged fault-free memory")
	}
	det, err = Simulate(march.MarchCMinus(), cfg16x4,
		[]Fault{{Kind: SA0, Victim: Cell{Addr: 0, Bit: 0}}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Detected {
		t.Fatal("background run missed SA0")
	}
}

func TestSimulateRejectsBadInput(t *testing.T) {
	if _, err := Simulate(march.Algorithm{Name: "empty"}, cfg16x4, nil, Options{}); err == nil {
		t.Fatal("empty algorithm accepted")
	}
	bad := []Fault{{Kind: SA0, Victim: Cell{Addr: 999}}}
	if _, err := Simulate(march.MSCAN(), cfg16x4, bad, Options{}); err == nil {
		t.Fatal("bad fault accepted")
	}
	if _, err := CoverageContext(context.Background(), march.MSCAN(), cfg16x4, bad, Options{}); err == nil {
		t.Fatal("Coverage accepted bad fault")
	}
}

func TestCampaignClassBreakdown(t *testing.T) {
	faults := append(StuckAtFaults(cfg16x4), AddressFaults(cfg16x4)...)
	camp := coverage(t, march.MSCAN(), faults)
	if got := camp.ClassPercent("SAF"); got != 100 {
		t.Fatalf("SAF class = %.1f%%", got)
	}
	if got := camp.ClassPercent("AF"); got != 0 {
		t.Fatalf("AF class = %.1f%%", got)
	}
	if got := camp.ClassPercent("nope"); got != -1 {
		t.Fatalf("unknown class = %v", got)
	}
	if len(camp.Undetected) == 0 {
		t.Fatal("undetected faults not recorded")
	}
}

func TestSampleDeterministic(t *testing.T) {
	faults := AllFaults(cfg16x4)
	a := Sample(faults, 10, 42)
	b := Sample(faults, 10, 42)
	if len(a) != 10 {
		t.Fatalf("sample size = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic")
		}
	}
	all := Sample(faults, len(faults)+5, 1)
	if len(all) != len(faults) {
		t.Fatalf("oversized sample = %d", len(all))
	}
}

func TestGeneratorCounts(t *testing.T) {
	n := cfg16x4.BitCount()
	if got := len(StuckAtFaults(cfg16x4)); got != 2*n {
		t.Fatalf("SAF count = %d", got)
	}
	if got := len(TransitionFaults(cfg16x4)); got != 2*n {
		t.Fatalf("TF count = %d", got)
	}
	if got := len(StuckOpenFaults(cfg16x4)); got != n {
		t.Fatalf("SOF count = %d", got)
	}
	if got := len(AddressFaults(cfg16x4)); got != cfg16x4.Words {
		t.Fatalf("AF count = %d", got)
	}
	if len(CouplingFaults(cfg16x4)) == 0 {
		t.Fatal("no coupling faults generated")
	}
	one := memory.Config{Name: "one", Words: 1, Bits: 1}
	if len(AddressFaults(one)) != 0 || len(CouplingFaults(one)) != 0 {
		t.Fatal("1-word memory should have no AF/CF faults")
	}
}
