package ate

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"steac/internal/pattern"
	"steac/internal/sched"
	"steac/internal/stil"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

// Miniature DSC: the same structure as the paper's chip (a multi-chain scan
// core, a scan+functional core with a shared scan-out, a functional-only
// core) at simulation-friendly pattern counts.
func miniCores() []*testinfo.Core {
	return []*testinfo.Core{
		{
			Name:        "USB",
			Clocks:      []string{"ck0", "ck1"},
			Resets:      []string{"rst"},
			ScanEnables: []string{"se"},
			TestEnables: []string{"t0", "t1"},
			PIs:         11, POs: 7,
			ScanChains: []testinfo.ScanChain{
				{Name: "c0", Length: 23, In: "si0", Out: "so0", Clock: "ck0"},
				{Name: "c1", Length: 9, In: "si1", Out: "so1", Clock: "ck1"},
				{Name: "c2", Length: 5, In: "si2", Out: "so2", Clock: "ck0"},
			},
			Patterns: []testinfo.PatternSet{{Name: "scan", Type: testinfo.Scan, Count: 7, Seed: 31}},
		},
		{
			Name:        "TV",
			Clocks:      []string{"ck"},
			Resets:      []string{"rst"},
			ScanEnables: []string{"se"},
			TestEnables: []string{"te"},
			PIs:         6, POs: 8,
			ScanChains: []testinfo.ScanChain{
				{Name: "c0", Length: 12, In: "si0", Out: "so0", Clock: "ck"},
				{Name: "c1", Length: 11, In: "si1", Out: "po", Clock: "ck", SharedOut: true},
			},
			Patterns: []testinfo.PatternSet{
				{Name: "scan", Type: testinfo.Scan, Count: 5, Seed: 32},
				{Name: "func", Type: testinfo.Functional, Count: 30, Seed: 33},
			},
		},
		{
			Name:   "JPEG",
			Clocks: []string{"ck"},
			PIs:    14, POs: 9,
			Patterns: []testinfo.PatternSet{{Name: "func", Type: testinfo.Functional, Count: 25, Seed: 34}},
		},
	}
}

func buildProgram(t *testing.T, res sched.Resources, schedule func([]sched.Test, sched.Resources) (*sched.Schedule, error)) (*pattern.Program, *sched.Schedule, map[string]pattern.Source) {
	t.Helper()
	cores := miniCores()
	tests, err := sched.BuildTests(cores, []sched.BISTGroup{{Name: "g0", Cycles: 64, Power: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := schedule(tests, res)
	if err != nil {
		t.Fatal(err)
	}
	sources := make(map[string]pattern.Source)
	for _, c := range cores {
		a, err := pattern.NewATPG(c)
		if err != nil {
			t.Fatal(err)
		}
		sources[c.Name] = a
	}
	prog, err := pattern.Translate(s, sources, res)
	if err != nil {
		t.Fatal(err)
	}
	return prog, s, sources
}

func miniRes() sched.Resources {
	return sched.Resources{TestPins: 24, FuncPins: 16, Partitioner: wrapper.LPT}
}

// TestEndToEndFlowPasses is the Fig. 1 verification: schedule -> wrapper
// design -> pattern translation -> ATE application against the chip model,
// with zero mismatches and a cycle count equal to the scheduler's estimate.
func TestEndToEndFlowPasses(t *testing.T) {
	prog, s, _ := buildProgram(t, miniRes(), sessionBased)
	chip := NewChip(prog, miniCores())
	res, err := Run(prog, chip)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("healthy chip failed: %d mismatches, first %+v", res.Mismatches, res.First)
	}
	if res.Cycles != s.TotalCycles {
		t.Fatalf("ATE measured %d cycles, scheduler predicted %d", res.Cycles, s.TotalCycles)
	}
	if prog.TotalCycles() != s.TotalCycles {
		t.Fatalf("program total %d != schedule %d", prog.TotalCycles(), s.TotalCycles)
	}
}

func TestEndToEndDetectsCoreDefect(t *testing.T) {
	prog, _, _ := buildProgram(t, miniRes(), sessionBased)
	for _, core := range []string{"USB", "TV", "JPEG"} {
		chip := NewChip(prog, miniCores(), WithCoreDefect(core))
		res, err := Run(prog, chip)
		if err != nil {
			t.Fatal(err)
		}
		if res.Pass {
			t.Fatalf("defect in %s went undetected", core)
		}
		if res.First == nil {
			t.Fatal("no first-mismatch diagnostics")
		}
	}
}

func TestEndToEndDetectsStuckTamWire(t *testing.T) {
	prog, _, _ := buildProgram(t, miniRes(), sessionBased)
	chip := NewChip(prog, miniCores(), WithStuckTamWire(0))
	res, err := Run(prog, chip)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatal("stuck TAM wire went undetected")
	}
}

// The translated program must also verify when built from the baseline
// schedulers (the translator is scheduler-agnostic).
func TestEndToEndSerialSchedule(t *testing.T) {
	prog, s, _ := buildProgram(t, miniRes(), sched.Serial)
	chip := NewChip(prog, miniCores())
	res, err := Run(prog, chip)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass || res.Cycles != s.TotalCycles {
		t.Fatalf("serial run: pass=%t cycles=%d want %d", res.Pass, res.Cycles, s.TotalCycles)
	}
}

func TestEndToEndNonSessionSchedule(t *testing.T) {
	prog, s, _ := buildProgram(t, miniRes(), sched.NonSessionBased)
	chip := NewChip(prog, miniCores())
	res, err := Run(prog, chip)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass || res.Cycles != s.TotalCycles {
		t.Fatalf("non-session run: pass=%t cycles=%d want %d", res.Pass, res.Cycles, s.TotalCycles)
	}
}

func TestChipSessionBounds(t *testing.T) {
	prog, _, _ := buildProgram(t, miniRes(), sessionBased)
	chip := NewChip(prog, miniCores())
	if err := chip.StartSession(len(prog.Sessions)); err == nil {
		t.Fatal("out-of-range session accepted")
	}
}

// The explicit-vector path: export the ATPG's patterns into a STIL file
// with literal vectors, parse them back as an ExplicitSource, translate,
// and verify on the chip model.  Because the vectors are bit-identical to
// the generator's, the tester observes zero mismatches — the vector
// hand-off itself is proven lossless end to end.
func TestEndToEndExplicitSTILVectors(t *testing.T) {
	cores := miniCores()
	res := miniRes()
	tests, err := sched.BuildTests(cores, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.SessionBasedContext(context.Background(), tests, res)
	if err != nil {
		t.Fatal(err)
	}
	sources := make(map[string]pattern.Source)
	for _, c := range cores {
		a, err := pattern.NewATPG(c)
		if err != nil {
			t.Fatal(err)
		}
		scan, fn, err := pattern.Export(a, -1, -1)
		if err != nil {
			t.Fatal(err)
		}
		src, err := stil.EmitWithVectors(c, pattern.ToSTIL(c, scan, fn))
		if err != nil {
			t.Fatal(err)
		}
		backCore, vecs, err := stil.ParseWithVectors(src)
		if err != nil {
			t.Fatal(err)
		}
		exp, err := pattern.FromSTIL(backCore, vecs)
		if err != nil {
			t.Fatal(err)
		}
		sources[c.Name] = exp
	}
	prog, err := pattern.Translate(s, sources, res)
	if err != nil {
		t.Fatal(err)
	}
	chip := NewChip(prog, cores)
	r, err := Run(prog, chip)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("explicit-vector program failed: %d mismatches, first %+v", r.Mismatches, r.First)
	}
	if r.Cycles != s.TotalCycles {
		t.Fatalf("cycles %d != %d", r.Cycles, s.TotalCycles)
	}
}

// Writing the translated program to a tester file and replaying the file
// must be equivalent to streaming it directly: same cycle count, zero
// mismatches on a healthy chip, and detection on a defective one.
func TestProgramFileRoundTrip(t *testing.T) {
	prog, s, _ := buildProgram(t, miniRes(), sessionBased)
	var buf bytes.Buffer
	if err := pattern.WriteProgramFile(&buf, prog); err != nil {
		t.Fatal(err)
	}
	rec, err := pattern.ReadProgramFile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rec.TotalCycles() != s.TotalCycles {
		t.Fatalf("recorded %d cycles, want %d", rec.TotalCycles(), s.TotalCycles)
	}
	chip := NewChip(prog, miniCores())
	r, err := RunRecorded(prog, rec, chip)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass || r.Cycles != s.TotalCycles {
		t.Fatalf("replay: pass=%t cycles=%d want %d (first %+v)", r.Pass, r.Cycles, s.TotalCycles, r.First)
	}
	bad := NewChip(prog, miniCores(), WithCoreDefect("TV"))
	rb, err := RunRecorded(prog, rec, bad)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Pass {
		t.Fatal("replay missed the defect")
	}
}

func TestProgramFileErrors(t *testing.T) {
	for name, src := range map[string]string{
		"empty":        "",
		"bad magic":    "NOTPROG tam=1 func=1 sessions=0\n",
		"bad tam":      "STEACPROG tam=x func=1 sessions=0\n",
		"loose vector": "STEACPROG tam=1 func=1 sessions=0\nV 0 X 0 X -\n",
		"bad session":  "STEACPROG tam=1 func=1 sessions=1\nSESSION a cycles=1\n",
		"short bus":    "STEACPROG tam=2 func=1 sessions=1\nSESSION 0 cycles=1\nV 0 X 0 X -\n",
		"bad char":     "STEACPROG tam=1 func=1 sessions=1\nSESSION 0 cycles=1\nV q X 0 X -\n",
		"bad action":   "STEACPROG tam=1 func=1 sessions=1\nSESSION 0 cycles=1\nV 0 X 0 X USB:Q\n",
		"count lie":    "STEACPROG tam=1 func=1 sessions=2\nSESSION 0 cycles=0\n",
		"junk line":    "STEACPROG tam=1 func=1 sessions=1\nSESSION 0 cycles=0\nwhat\n",
	} {
		if _, err := pattern.ReadProgramFile(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFailingTestAttribution(t *testing.T) {
	prog, _, _ := buildProgram(t, miniRes(), sessionBased)
	chip := NewChip(prog, miniCores(), WithCoreDefect("TV"))
	r, err := Run(prog, chip)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass {
		t.Fatal("defect undetected")
	}
	foundTV := false
	for _, id := range r.FailingTests {
		if strings.HasPrefix(id, "TV.") {
			foundTV = true
		}
		if strings.HasPrefix(id, "JPEG.") {
			t.Fatalf("healthy JPEG blamed: %v", r.FailingTests)
		}
	}
	if !foundTV {
		t.Fatalf("TV not attributed: %v", r.FailingTests)
	}
	// Healthy chip attributes nothing.
	ok, err := Run(prog, NewChip(prog, miniCores()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ok.FailingTests) != 0 {
		t.Fatalf("healthy chip blamed %v", ok.FailingTests)
	}
}

// sessionBased adapts SessionBasedContext to buildProgram's scheduler shape
// for tests that never cancel.
func sessionBased(tests []sched.Test, res sched.Resources) (*sched.Schedule, error) {
	return sched.SessionBasedContext(context.Background(), tests, res)
}
