package campaign

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"steac/internal/obs"
)

// fakeExec is a pool-only executor: unit i's outcome is the fixed function
// 3i+1, with optional per-unit simulated cost and run accounting.
type fakeExec struct {
	units int
	cost  func(unit int) time.Duration

	mu   sync.Mutex
	runs map[int]int
}

func newFakeExec(units int, cost func(int) time.Duration) *fakeExec {
	return &fakeExec{units: units, cost: cost, runs: map[int]int{}}
}

func (e *fakeExec) Units() int { return e.units }

func (e *fakeExec) NewWorker() (Worker, error) { return &fakeWorker{exec: e}, nil }

func (e *fakeExec) Assemble(out []int64) (interface{}, error) {
	var sum int64
	for _, v := range out {
		sum += v
	}
	return sum, nil
}

func (e *fakeExec) ran(unit int) {
	e.mu.Lock()
	e.runs[unit]++
	e.mu.Unlock()
}

type fakeWorker struct{ exec *fakeExec }

func (w *fakeWorker) Run(ctx context.Context, lo, hi int, out []int64) error {
	for i := lo; i < hi; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if w.exec.cost != nil {
			time.Sleep(w.exec.cost(i))
		}
		w.exec.ran(i)
		out[i-lo] = int64(3*i + 1)
	}
	return nil
}

// TestPoolCompletesEveryShardOnce drives runPool directly with a skewed
// cost profile: all the expensive units sit in the first workers' blocks,
// so idle workers must steal to finish — and every shard must still
// complete exactly once with the right outcomes.
func TestPoolCompletesEveryShardOnce(t *testing.T) {
	const units, size = 256, 8
	shards := shardCount(units, size)
	exec := newFakeExec(units, func(unit int) time.Duration {
		if unit < units/4 {
			return time.Millisecond
		}
		return 0
	})
	pending := make([]int, shards)
	for i := range pending {
		pending[i] = i
	}

	stealsBefore := obs.CounterValue("campaign.steals")
	var mu sync.Mutex
	seen := map[int]int{}
	err := runPool(context.Background(), exec, 4, pending, size, units, func(sr shardResult) error {
		mu.Lock()
		seen[sr.index]++
		mu.Unlock()
		for j, v := range sr.out {
			if want := int64(3*(sr.index*size+j) + 1); v != want {
				t.Errorf("shard %d unit %d: outcome %d, want %d", sr.index, j, v, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("runPool: %v", err)
	}
	if len(seen) != shards {
		t.Fatalf("completed %d shards, want %d", len(seen), shards)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("shard %d completed %d times", idx, n)
		}
	}
	for unit, n := range exec.runs {
		if n != 1 {
			t.Fatalf("unit %d simulated %d times", unit, n)
		}
	}
	if got := obs.CounterValue("campaign.steals"); got <= stealsBefore {
		t.Error("skewed load produced no steals")
	}
}

// TestPoolCancellationNeverCompletesAbortedShards checks the graceful-
// drain contract at the pool level: after cancellation, no shard whose
// Run was aborted reaches the completion callback.
func TestPoolCancellationNeverCompletesAbortedShards(t *testing.T) {
	const units, size = 640, 8
	exec := newFakeExec(units, func(int) time.Duration { return 200 * time.Microsecond })
	shards := shardCount(units, size)
	pending := make([]int, shards)
	for i := range pending {
		pending[i] = i
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	completed := 0
	err := runPool(ctx, exec, 4, pending, size, units, func(sr shardResult) error {
		completed++
		if completed == 3 {
			cancel()
		}
		for j, v := range sr.out {
			if want := int64(3*(sr.index*size+j) + 1); v != want {
				t.Fatalf("completed shard %d carries aborted data at unit %d", sr.index, j)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("runPool returned %v; cancellation is reported by the caller's ctx check", err)
	}
	if completed >= shards {
		t.Fatal("cancellation completed every shard")
	}
}

// TestPoolCompletionErrorStopsRun checks that an error from the
// completion callback (journal write failure) stops the pool and
// surfaces as the run error.
func TestPoolCompletionErrorStopsRun(t *testing.T) {
	const units, size = 256, 8
	exec := newFakeExec(units, nil)
	shards := shardCount(units, size)
	pending := make([]int, shards)
	for i := range pending {
		pending[i] = i
	}
	boom := errors.New("journal full")
	err := runPool(context.Background(), exec, 4, pending, size, units, func(shardResult) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("runPool: got %v, want the completion error", err)
	}
}

// TestDequeOrdering pins the deque discipline: owner LIFO from the tail,
// thief FIFO from the head.
func TestDequeOrdering(t *testing.T) {
	d := &deque{}
	for i := 1; i <= 4; i++ {
		d.push(i)
	}
	if idx, ok := d.popTail(); !ok || idx != 4 {
		t.Fatalf("popTail = %d,%v, want 4", idx, ok)
	}
	if idx, ok := d.popHead(); !ok || idx != 1 {
		t.Fatalf("popHead = %d,%v, want 1", idx, ok)
	}
	if idx, ok := d.popTail(); !ok || idx != 3 {
		t.Fatalf("popTail = %d,%v, want 3", idx, ok)
	}
	if idx, ok := d.popHead(); !ok || idx != 2 {
		t.Fatalf("popHead = %d,%v, want 2", idx, ok)
	}
	if _, ok := d.popTail(); ok {
		t.Fatal("empty deque popped")
	}
	if _, ok := d.popHead(); ok {
		t.Fatal("empty deque popped")
	}
}
