package serve

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"steac/internal/obs"
)

// Tenant identity.  The daemon is a shared integration service — many
// design teams hand it their cores — so every request is attributed to a
// tenant before any resource decision is made.  Identity is an API key
// presented as `Authorization: Bearer <key>` or `X-API-Key: <key>`;
// lookup compares SHA-256 digests with subtle.ConstantTimeCompare against
// every registered tenant, so neither the match position nor the key
// length leaks through timing.
//
// Two modes:
//
//   - Anonymous (no tenant set configured): every caller maps to the
//     single "anon" tenant with unbounded rate and quota — the dev-mode
//     behaviour the daemon always had.
//   - Tenant set (steacd -tenants file.json): a request without a valid
//     key is 401 ErrUnauthorized; a valid key selects that tenant's rate
//     limit, job quota, and fair-queue lane.

// AnonTenant is the implicit tenant of a daemon running without a tenant
// set.
const AnonTenant = "anon"

// Tenant is one row of the tenants file.
type Tenant struct {
	// ID names the tenant in job ownership records, metrics
	// (serve.tenant.<id>.*) and fabric campaign metadata.
	ID string `json:"id"`
	// Key is the API key.  Constant-time compared; never logged.
	Key string `json:"key"`
	// RatePerSec refills the tenant's admission token bucket (0 =
	// unlimited).  Every compute-submitting POST spends one token.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity (0 = max(1, ceil(RatePerSec))).
	Burst int `json:"burst,omitempty"`
	// MaxJobs bounds the tenant's concurrently queued+running campaign
	// jobs (0 = unlimited).
	MaxJobs int `json:"max_jobs,omitempty"`
	// Weight is the tenant's deficit-round-robin quantum: per queue
	// round, a tenant with weight w dequeues up to w requests (0 = 1).
	Weight int `json:"weight,omitempty"`
}

// tenantState is one tenant's live admission state: its static config,
// the token bucket, and its pre-registered obs handles.
type tenantState struct {
	Tenant
	keyHash [sha256.Size]byte

	mu     sync.Mutex
	tokens float64
	last   time.Time

	reqs       *obs.Counter
	rejects    *obs.Counter
	queueDepth *obs.Gauge
}

func newTenantState(t Tenant) *tenantState {
	if t.Weight <= 0 {
		t.Weight = 1
	}
	if t.Burst <= 0 {
		t.Burst = int(t.RatePerSec)
		if float64(t.Burst) < t.RatePerSec {
			t.Burst++
		}
		if t.Burst < 1 {
			t.Burst = 1
		}
	}
	return &tenantState{
		Tenant:     t,
		keyHash:    sha256.Sum256([]byte(t.Key)),
		tokens:     float64(t.Burst),
		last:       time.Now(),
		reqs:       obs.GetCounter("serve.tenant." + t.ID + ".requests"),
		rejects:    obs.GetCounter("serve.tenant." + t.ID + ".rejects"),
		queueDepth: obs.GetGauge("serve.tenant." + t.ID + ".queue_depth"),
	}
}

// allow spends one admission token if the bucket holds one, refilling at
// RatePerSec up to Burst.  A zero rate never limits.
func (t *tenantState) allow() bool {
	if t.RatePerSec <= 0 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	t.tokens += now.Sub(t.last).Seconds() * t.RatePerSec
	t.last = now
	if max := float64(t.Burst); t.tokens > max {
		t.tokens = max
	}
	if t.tokens < 1 {
		return false
	}
	t.tokens--
	return true
}

// TenantSet is the daemon's identity registry.  Immutable after
// construction; safe for concurrent use.
type TenantSet struct {
	tenants []*tenantState
	anon    *tenantState // non-nil only in anonymous mode
}

// NewTenantSet builds a registry from explicit tenant rows.  IDs must be
// unique, non-empty, and metric-safe; keys must be non-empty and unique.
func NewTenantSet(tenants []Tenant) (*TenantSet, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("serve: tenant set is empty")
	}
	ts := &TenantSet{}
	seenID := map[string]bool{}
	seenKey := map[[sha256.Size]byte]bool{}
	for _, t := range tenants {
		if t.ID == "" || strings.ContainsAny(t.ID, " \t\n/") {
			return nil, fmt.Errorf("serve: bad tenant id %q", t.ID)
		}
		if t.ID == AnonTenant {
			return nil, fmt.Errorf("serve: tenant id %q is reserved", AnonTenant)
		}
		if t.Key == "" {
			return nil, fmt.Errorf("serve: tenant %q has no key", t.ID)
		}
		if seenID[t.ID] {
			return nil, fmt.Errorf("serve: duplicate tenant id %q", t.ID)
		}
		seenID[t.ID] = true
		st := newTenantState(t)
		if seenKey[st.keyHash] {
			return nil, fmt.Errorf("serve: tenant %q reuses another tenant's key", t.ID)
		}
		seenKey[st.keyHash] = true
		ts.tenants = append(ts.tenants, st)
	}
	return ts, nil
}

// LoadTenants reads a tenants file: a JSON array of Tenant rows.
func LoadTenants(path string) (*TenantSet, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tenants []Tenant
	if err := json.Unmarshal(raw, &tenants); err != nil {
		return nil, fmt.Errorf("serve: parse tenants file %s: %w", path, err)
	}
	ts, err := NewTenantSet(tenants)
	if err != nil {
		return nil, fmt.Errorf("serve: tenants file %s: %w", path, err)
	}
	return ts, nil
}

// anonymousTenants is the registry of a daemon with no -tenants file: one
// unlimited tenant that every request maps to.
func anonymousTenants() *TenantSet {
	return &TenantSet{anon: newTenantState(Tenant{ID: AnonTenant, Key: ""})}
}

// apiKey extracts the presented key: Authorization: Bearer wins, then
// X-API-Key.
func apiKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if key, ok := strings.CutPrefix(h, "Bearer "); ok {
			return key
		}
	}
	return r.Header.Get("X-API-Key")
}

// authenticate resolves a request to its tenant.  Anonymous mode accepts
// everything; otherwise the key is digest-compared against every tenant in
// constant time per candidate, and a miss is ErrUnauthorized.
func (ts *TenantSet) authenticate(r *http.Request) (*tenantState, error) {
	if ts.anon != nil {
		return ts.anon, nil
	}
	key := apiKey(r)
	if key == "" {
		return nil, fmt.Errorf("%w: missing API key (Authorization: Bearer or X-API-Key)", ErrUnauthorized)
	}
	digest := sha256.Sum256([]byte(key))
	var found *tenantState
	for _, t := range ts.tenants {
		// Scan the whole set unconditionally so the match position does
		// not shape the response time.
		if subtle.ConstantTimeCompare(digest[:], t.keyHash[:]) == 1 && found == nil {
			found = t
		}
	}
	if found == nil {
		return nil, fmt.Errorf("%w: unknown API key", ErrUnauthorized)
	}
	return found, nil
}

// lookup returns the tenant state registered under id, or nil.
func (ts *TenantSet) lookup(id string) *tenantState {
	if ts.anon != nil && id == ts.anon.ID {
		return ts.anon
	}
	for _, t := range ts.tenants {
		if t.ID == id {
			return t
		}
	}
	return nil
}
