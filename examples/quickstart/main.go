// Quickstart: wrap a single scan core, schedule its test, translate the
// patterns to chip level and verify them on the tester model — the whole
// Fig. 1 flow in one page of code.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"strings"

	"steac/internal/ate"
	"steac/internal/core"
	"steac/internal/pattern"
	"steac/internal/sched"
	"steac/internal/stil"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

func main() {
	// 1. Describe the core's test information (normally parsed from the
	// ATPG's STIL file; we round-trip through STIL to show the hand-off).
	myCore := &testinfo.Core{
		Name:        "DSP",
		Clocks:      []string{"clk"},
		Resets:      []string{"rst"},
		ScanEnables: []string{"se"},
		TestEnables: []string{"te"},
		PIs:         16, POs: 12,
		ScanChains: []testinfo.ScanChain{
			{Name: "c0", Length: 40, In: "si0", Out: "so0", Clock: "clk"},
			{Name: "c1", Length: 24, In: "si1", Out: "so1", Clock: "clk"},
		},
		Patterns: []testinfo.PatternSet{
			{Name: "scan", Type: testinfo.Scan, Count: 25, Seed: 7},
		},
	}
	src, err := stil.Emit(myCore)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- STIL hand-off (%d bytes) ---\n", len(src))

	// 2. Run the STEAC flow: parse, schedule, translate, verify.
	res, err := core.RunFlowContext(context.Background(), core.FlowInput{
		STIL: []string{src},
		Resources: sched.Resources{
			TestPins: 14, FuncPins: 8, Partitioner: wrapper.LPT,
		},
		Verify: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(core.Table1(res.Cores))
	fmt.Println()
	fmt.Print(core.ScheduleReport(res.Schedule))
	fmt.Printf("\nATE verification: pass=%t, %d cycles, %d mismatches\n",
		res.Verify.Pass, res.Verify.Cycles, res.Verify.Mismatches)

	// 3. Show that the flow catches defects: a chip with a damaged core.
	chip := ate.NewChip(res.Program, res.Cores, ate.WithCoreDefect("DSP"))
	bad, err := ate.Run(res.Program, chip)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("defective chip:   pass=%t, %d mismatches (first at session %d cycle %d on %s)\n",
		bad.Pass, bad.Mismatches, bad.First.Session, bad.First.Cycle, bad.First.Pin)

	// 4. The wrapper the insertion step would generate for this schedule.
	_, pl, _ := res.Schedule.PlacementFor("DSP.scan")
	plan, err := wrapper.DesignChains(myCore, pl.Width, wrapper.LPT)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrapper: %d chains, longest %d cells, scan test %d cycles\n",
		len(plan.Chains), plan.MaxLength(), plan.ScanTestCycles(25))

	// 5. Export the chip-level program as a cycle-based ATE file and
	// replay it — the hand-off a real tester would consume.
	var buf bytes.Buffer
	if err := pattern.WriteProgramFile(&buf, res.Program); err != nil {
		log.Fatal(err)
	}
	rec, err := pattern.ReadProgramFile(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	replay, err := ate.RunRecorded(res.Program, rec, ate.NewChip(res.Program, res.Cores))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ATE file: %d bytes, replay pass=%t over %d cycles\n",
		buf.Len(), replay.Pass, replay.Cycles)
	lines := strings.SplitN(buf.String(), "\n", 4)
	fmt.Printf("file head:\n  %s\n  %s\n  %s\n", lines[0], lines[1], lines[2])
}
