package memfault

import (
	"context"
	"testing"

	"steac/internal/march"
	"steac/internal/memory"
)

func TestCheckerboard(t *testing.T) {
	if Checkerboard(4) != 0x5 {
		t.Fatalf("cb(4) = %x", Checkerboard(4))
	}
	if Checkerboard(8) != 0x55 {
		t.Fatalf("cb(8) = %x", Checkerboard(8))
	}
	if Checkerboard(1) != 0x1 {
		t.Fatalf("cb(1) = %x", Checkerboard(1))
	}
}

func TestIntraWordGenerator(t *testing.T) {
	cfg := memory.Config{Name: "iw", Words: 4, Bits: 4}
	faults := IntraWordCouplingFaults(cfg)
	if len(faults) == 0 {
		t.Fatal("no intra-word faults generated")
	}
	for _, f := range faults {
		if f.Victim.Addr != f.Aggr.Addr {
			t.Fatalf("fault %v crosses words", f)
		}
		if f.Victim.Bit == f.Aggr.Bit {
			t.Fatalf("fault %v aggresses itself", f)
		}
		if err := f.Validate(cfg); err != nil {
			t.Fatal(err)
		}
	}
	if got := IntraWordCouplingFaults(memory.Config{Name: "w1", Words: 4, Bits: 1}); got != nil {
		t.Fatal("1-bit words cannot have intra-word coupling")
	}
}

// The motivating case for multiple data backgrounds: a rise-triggered CFid
// forcing the value the victim is written anyway is invisible under a solid
// background (victim and aggressor always receive identical data) but is
// sensitized by a checkerboard pass.
func TestIntraWordCFidNeedsCheckerboard(t *testing.T) {
	cfg := memory.Config{Name: "iw", Words: 8, Bits: 4}
	f := Fault{Kind: CFid,
		Victim: Cell{Addr: 3, Bit: 0}, Aggr: Cell{Addr: 3, Bit: 1},
		AggrRise: true, Forced: 1}
	solid, err := Simulate(march.MarchCMinus(), cfg, []Fault{f}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if solid.Detected {
		t.Fatal("solid background unexpectedly detected the matched-polarity CFid")
	}
	both, err := Simulate(march.MarchCMinus(), cfg, []Fault{f},
		Options{Backgrounds: []uint64{0, Checkerboard(cfg.Bits)}})
	if err != nil {
		t.Fatal(err)
	}
	if !both.Detected {
		t.Fatal("checkerboard pass missed the intra-word CFid")
	}
}

// Coverage over the whole intra-word list must strictly improve with the
// checkerboard pass, and adjacent-bit CFins stay covered either way.
func TestIntraWordCoverageImproves(t *testing.T) {
	cfg := memory.Config{Name: "iw", Words: 8, Bits: 4}
	faults := IntraWordCouplingFaults(cfg)
	solid, err := CoverageContext(context.Background(), march.MarchCMinus(), cfg, faults, Options{})
	if err != nil {
		t.Fatal(err)
	}
	both, err := CoverageContext(context.Background(), march.MarchCMinus(), cfg, faults,
		Options{Backgrounds: []uint64{0, Checkerboard(cfg.Bits)}})
	if err != nil {
		t.Fatal(err)
	}
	if both.Percent() <= solid.Percent() {
		t.Fatalf("checkerboard did not improve: %.1f%% vs %.1f%%",
			both.Percent(), solid.Percent())
	}
	if both.Percent() != 100 {
		t.Fatalf("two backgrounds should cover all intra-word CFs, got %.1f%% (undetected: %v)",
			both.Percent(), both.Undetected)
	}
}
