package report

import (
	"encoding/csv"
	"strings"
)

// CSV renders the compare table as RFC-4180 CSV prefixed with a comment
// line naming the schema version.  Spreadsheet importers skip the comment;
// tools that care can assert it before trusting the column layout.
func (c *Compare) CSV() string {
	var sb strings.Builder
	sb.WriteString("# schema: ")
	sb.WriteString(c.Schema)
	sb.WriteByte('\n')
	w := csv.NewWriter(&sb)
	_ = w.Write(c.Columns)
	for _, row := range c.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	return sb.String()
}
