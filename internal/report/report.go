// Package report renders fixed-width text tables for the experiment
// drivers (cmd/steac, cmd/brains, cmd/dscflow) and for EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		// Trim trailing spaces.
		s := sb.String()
		trimmed := strings.TrimRight(s, " ")
		sb.Reset()
		sb.WriteString(trimmed)
		sb.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		total := 0
		for _, w := range widths {
			total += w
		}
		sb.WriteString(strings.Repeat("-", total+2*(cols-1)))
		sb.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// Comma formats an integer with thousands separators, the way the paper
// prints cycle counts (e.g. 4,371,194).
func Comma(n int) string {
	neg := n < 0
	if neg {
		n = -n
	}
	s := fmt.Sprintf("%d", n)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}
