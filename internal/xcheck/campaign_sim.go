package xcheck

import (
	"context"
	"strings"

	"steac/internal/bist"
	"steac/internal/march"
	"steac/internal/memory"
	"steac/internal/netlist"
	"steac/internal/pattern"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

// CampaignSim is the prepared, immutable state of one stuck-at fault
// campaign: the compiled fault-free base netlist, its recorded golden
// trace, and the (possibly sampled) fault list.  DetectAt clones the base
// per fault, so a single CampaignSim is safe to share across any number of
// concurrent workers — it is the unit the sharded campaign runner
// (internal/campaign) executes, and runCampaign fans the same code path
// across its own workers, with Assemble as the single aggregation path;
// that shared path is what makes a sharded, checkpointed campaign
// bit-identical to an in-process one.
type CampaignSim struct {
	name   string
	base   *netlist.CompiledSim
	sites  int
	faults []netlist.SAFault
	golden int
	run    func(ctx context.Context, sim *netlist.CompiledSim) int
}

// Name returns the campaign label.
func (s *CampaignSim) Name() string { return s.name }

// Faults returns how many faults the campaign simulates (after MaxFaults
// sampling).
func (s *CampaignSim) Faults() int { return len(s.faults) }

// Sites returns the full fault universe of the design.
func (s *CampaignSim) Sites() int { return s.sites }

// GoldenCycles returns the fault-free trace length faults are compared
// against.
func (s *CampaignSim) GoldenCycles() int { return s.golden }

// DetectAt simulates fault i on its own clone of the base netlist and
// returns the first tester-visible divergent cycle, or -1 if the fault
// stayed silent.  The outcome depends only on the fault index and the
// prepared golden trace.  A ctx cancellation can abort the underlying
// simulation early; callers must discard the result when ctx has fired.
func (s *CampaignSim) DetectAt(ctx context.Context, i int) int {
	fs := s.base.Clone()
	f := s.faults[i]
	if err := fs.Inject(f.Gate, f.Port, f.Value); err != nil {
		return -1
	}
	return s.run(ctx, fs)
}

// Assemble builds the CampaignResult from per-fault detection cycles in
// fault-list order (detectedAt[i] < 0 means fault i stayed silent).  It is
// shared by runCampaign and the sharded campaign runner.  Obs totals are
// published here, once per campaign.
func (s *CampaignSim) Assemble(detectedAt []int, opts Options) CampaignResult {
	res := CampaignResult{Name: s.name, Sites: s.sites, Total: len(s.faults), GoldenCycles: s.golden}
	keep := opts.undetectedCap()
	for i, at := range detectedAt {
		if at >= 0 {
			res.Detected++
			res.Detections = append(res.Detections, FaultDetection{Fault: s.faults[i], Cycle: at})
		} else if keep < 0 || len(res.Undetected) < keep {
			res.Undetected = append(res.Undetected, s.faults[i])
		}
	}
	obsCampFaults.Add(int64(res.Total))
	obsCampDetected.Add(int64(res.Detected))
	return res
}

// NewTPGCampaignSim prepares the sequencer + TPG bench stuck-at campaign:
// it builds and compiles the verify bench for alg over mems, records the
// fault-free DONE/FAIL session trace, and samples the fault universe under
// opts.MaxFaults/Seed.
func NewTPGCampaignSim(name string, alg march.Algorithm, mems []memory.Config, opts Options) (*CampaignSim, error) {
	padded := PadConfigs(mems)
	d, err := bist.BuildVerifyBench(alg, padded)
	if err != nil {
		return nil, err
	}
	base, err := netlist.NewCompiledSim(d, "bench")
	if err != nil {
		return nil, err
	}
	pins := newBenchPins(base, padded)
	golden, _ := runBISTTraced(base, pins, padded, nil)
	all := base.Faults()
	return &CampaignSim{
		name:   name,
		base:   base,
		sites:  len(all),
		faults: sampleFaults(all, opts.MaxFaults, opts.Seed),
		golden: len(golden),
		run: func(_ context.Context, sim *netlist.CompiledSim) int {
			_, at := runBISTTraced(sim, pins, padded, golden)
			return at
		},
	}, nil
}

// NewControllerCampaignSim prepares the shared-controller stuck-at
// campaign: compile the generated controller, record the fault-free
// scripted two-scenario session, sample the fault universe.
func NewControllerCampaignSim(name string, nGroups int, opts Options) (*CampaignSim, error) {
	d := netlist.NewDesign("xctl", nil)
	if _, err := bist.GenerateController(d, "ctl", nGroups); err != nil {
		return nil, err
	}
	base, err := netlist.NewCompiledSim(d, "ctl")
	if err != nil {
		return nil, err
	}
	goIDs := base.BusIDs("GO", nGroups)
	gdoneIDs := base.BusIDs("GDONE", nGroups)
	gfailIDs := base.BusIDs("GFAIL", nGroups)
	outIDs := []int{base.NetID(bist.PinMBO), base.NetID(bist.PinMRD), base.NetID(bist.PinMSO)}
	golden, _ := runControllerTraced(base, nGroups, goIDs, gdoneIDs, gfailIDs, outIDs, nil)
	all := base.Faults()
	return &CampaignSim{
		name:   name,
		base:   base,
		sites:  len(all),
		faults: sampleFaults(all, opts.MaxFaults, opts.Seed),
		golden: len(golden),
		run: func(_ context.Context, sim *netlist.CompiledSim) int {
			_, at := runControllerTraced(sim, nGroups, goIDs, gdoneIDs, gfailIDs, outIDs, golden)
			return at
		},
	}, nil
}

// NewWrapperCampaignSim prepares the wrapper-stack stuck-at campaign:
// build the wrapped structural core, set up the translated scan program,
// and restrict the fault universe to the wrapper logic (core-internal
// faults are the scan patterns' own job).
func NewWrapperCampaignSim(name string, core *testinfo.Core, width int, opts Options) (*CampaignSim, error) {
	d, plan, err := BuildWrapperDesign(core, width, wrapper.LPT)
	if err != nil {
		return nil, err
	}
	base, err := netlist.NewCompiledSim(d, "xtop")
	if err != nil {
		return nil, err
	}
	atpg, err := pattern.NewATPG(core)
	if err != nil {
		return nil, err
	}
	var src pattern.Source = atpg
	if opts.MaxPatterns > 0 && opts.MaxPatterns < atpg.ScanCount() {
		src = &cappedSource{Source: atpg, n: opts.MaxPatterns}
	}
	pins := newWrapPins(base, plan.Width)
	lane := pattern.ScanLane{
		Core: core, Source: src, Plan: plan,
		Cycles: plan.ScanTestCycles(src.ScanCount()),
	}
	layout := pattern.SessionLayout{Cycles: lane.Cycles, Scan: []pattern.ScanLane{lane}}
	prog := &pattern.Program{TamWidth: plan.Width}

	run := func(ctx context.Context, sim *netlist.CompiledSim) int {
		sim.Reset()
		wrapDefaults(sim, core)
		detected := -1
		wirCycles := wirBypassScript(sim, pins, func(cycle int, pin string, got, want bool) bool {
			if got != want && detected < 0 {
				detected = cycle
			}
			return detected < 0
		})
		if detected >= 0 {
			return detected
		}
		_ = streamScan(ctx, sim, prog, layout, core, pins, func(cycle int, pin string, got, want bool) bool {
			if got != want && detected < 0 {
				detected = wirCycles + cycle
			}
			return detected < 0
		})
		return detected
	}

	var faults []netlist.SAFault
	for _, f := range base.Faults() {
		if strings.Contains(f.Gate, "/u_core/") {
			continue
		}
		faults = append(faults, f)
	}
	sites := len(faults)
	return &CampaignSim{
		name:   name,
		base:   base,
		sites:  sites,
		faults: sampleFaults(faults, opts.MaxFaults, opts.Seed),
		golden: wirCyclesFor() + layout.Cycles,
		run:    run,
	}, nil
}
