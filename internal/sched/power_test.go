package sched

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
)

// sessionPowerSums computes, for every session of a schedule, the summed
// power of all its placements — the quantity Resources.PowerBudget bounds.
func sessionPowerSums(s *Schedule) []float64 {
	sums := make([]float64, len(s.Sessions))
	for i, sess := range s.Sessions {
		for _, p := range sess.Placements {
			sums[i] += p.Test.Power
		}
	}
	return sums
}

// maxTestPower is the largest single test power — no budget below it can be
// feasible, and any budget at or above the full sum is never binding.
func maxTestPower(tests []Test) float64 {
	m := 0.0
	for _, t := range tests {
		if t.Power > m {
			m = t.Power
		}
	}
	return m
}

func totalTestPower(tests []Test) float64 {
	s := 0.0
	for _, t := range tests {
		s += t.Power
	}
	return s
}

// A budget of zero (unbounded) and a budget far above the total demand must
// both reproduce the unconstrained schedule bit-identically: the budget
// check sits on the infeasibility path only and must not perturb search
// order, tie-breaks or BIST fill decisions.
func TestPowerBudgetUnboundedBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		cores := SyntheticSOC(seed, 6)
		bist := SyntheticBIST(seed, 4)
		tests, err := BuildTests(cores, bist)
		if err != nil {
			t.Fatal(err)
		}
		res := SyntheticResources(cores)
		res.MaxPower = 0
		res.Workers = 1

		base, err := SessionBasedContext(context.Background(), tests, res)
		if err != nil {
			t.Fatalf("seed %d: unconstrained schedule: %v", seed, err)
		}
		for _, budget := range []float64{math.MaxFloat64 / 4, 1e12, totalTestPower(tests) + 1} {
			res2 := res
			res2.PowerBudget = budget
			got, err := SessionBasedContext(context.Background(), tests, res2)
			if err != nil {
				t.Fatalf("seed %d budget %g: %v", seed, budget, err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("seed %d: budget %g changed the schedule: %d sessions / %d cycles vs %d / %d",
					seed, budget, len(got.Sessions), got.TotalCycles, len(base.Sessions), base.TotalCycles)
			}
		}
	}
}

// Any schedule returned under a finite budget must respect it in every
// session, and a budget the scheduler cannot meet must surface as the typed
// ErrInfeasible — never as a silently over-budget schedule.
func TestPowerBudgetNeverExceeded(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		cores := SyntheticSOC(seed, 5)
		bist := SyntheticBIST(seed, 3)
		tests, err := BuildTests(cores, bist)
		if err != nil {
			t.Fatal(err)
		}
		res := SyntheticResources(cores)
		res.MaxPower = 0
		lo := maxTestPower(tests)
		hi := totalTestPower(tests)
		for i := 0; i <= 8; i++ {
			budget := lo + (hi-lo)*float64(i)/8
			res2 := res
			res2.PowerBudget = budget
			sched, err := SessionBasedContext(context.Background(), tests, res2)
			if err != nil {
				if !errors.Is(err, ErrInfeasible) {
					t.Fatalf("seed %d budget %.2f: non-infeasibility error: %v", seed, budget, err)
				}
				continue
			}
			for si, sum := range sessionPowerSums(sched) {
				if sum > budget+1e-9 {
					t.Errorf("seed %d budget %.2f: session %d sums to %.2f power",
						seed, budget, si, sum)
				}
			}
		}
	}
}

// A budget below the single largest test power is structurally infeasible:
// that test can never be placed anywhere.
func TestPowerBudgetBelowSingleTestInfeasible(t *testing.T) {
	cores := SyntheticSOC(7, 4)
	bist := SyntheticBIST(7, 2)
	tests, err := BuildTests(cores, bist)
	if err != nil {
		t.Fatal(err)
	}
	res := SyntheticResources(cores)
	res.MaxPower = 0
	res.PowerBudget = maxTestPower(tests) * 0.99
	if _, err := SessionBasedContext(context.Background(), tests, res); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

// A binding budget must actually bind: a budget just under the unconstrained
// schedule's fattest session forces a repartition into more (or equal)
// sessions, all of which respect the tighter envelope.
func TestPowerBudgetForcesRepartition(t *testing.T) {
	cores := SyntheticSOC(3, 6)
	bist := SyntheticBIST(3, 4)
	tests, err := BuildTests(cores, bist)
	if err != nil {
		t.Fatal(err)
	}
	res := SyntheticResources(cores)
	res.MaxPower = 0
	base, err := SessionBasedContext(context.Background(), tests, res)
	if err != nil {
		t.Fatal(err)
	}
	fattest := 0.0
	for _, sum := range sessionPowerSums(base) {
		if sum > fattest {
			fattest = sum
		}
	}
	res.PowerBudget = fattest - 1e-6
	sched, err := SessionBasedContext(context.Background(), tests, res)
	if errors.Is(err, ErrInfeasible) {
		return // legitimately unsplittable under the tighter envelope
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Sessions) < len(base.Sessions) {
		t.Errorf("tighter budget produced fewer sessions: %d vs %d",
			len(sched.Sessions), len(base.Sessions))
	}
	for si, sum := range sessionPowerSums(sched) {
		if sum > res.PowerBudget+1e-9 {
			t.Errorf("session %d sums to %.2f > budget %.2f", si, sum, res.PowerBudget)
		}
	}
	if sched.TotalCycles < base.TotalCycles {
		t.Errorf("constrained schedule is shorter than unconstrained: %d < %d",
			sched.TotalCycles, base.TotalCycles)
	}
}
