// Package bist implements the memory built-in self-test architecture of the
// paper's Fig. 2: a single shared BIST Controller that the external tester
// reaches through a narrow pin interface, one or more Sequencers that
// generate March-based test algorithms, and one Test Pattern Generator (TPG)
// per memory that translates the March commands into the RAM's own signals.
//
// The package provides a cycle-accurate behavioural engine (Engine) used to
// run BIST sessions against fault-free or fault-injected memories, analytic
// test-time formulas that the engine is verified against, and structural
// netlist generation for the controller/sequencer/TPG blocks so that the
// BRAINS compiler can report hardware cost in NAND2-equivalent gates.
package bist

import (
	"context"
	"fmt"

	"steac/internal/march"
	"steac/internal/memory"
	"steac/internal/obs"
)

// Observability: one span per session run, cycle/memory totals added once
// per run (never inside the per-op TPG loop, which stays metric-free).
var (
	obsSpanRun    = obs.GetSpan("bist.run")
	obsRuns       = obs.GetCounter("bist.runs")
	obsCycles     = obs.GetCounter("bist.cycles")
	obsMemsTested = obs.GetCounter("bist.memories_tested")
)

// Tester-interface pin names of the shared BIST controller (Fig. 2).
const (
	PinMBS = "MBS" // BIST start
	PinMBR = "MBR" // BIST reset
	PinMBC = "MBC" // BIST clock
	PinMSI = "MSI" // serial command in
	PinMSO = "MSO" // serial data out
	PinMBO = "MBO" // BIST over
	PinMRD = "MRD" // result / go-nogo
)

// MemoryUnderTest couples one RAM instance to its TPG settings.
type MemoryUnderTest struct {
	RAM memory.RAM
	// Background is the data word the TPG writes for March value 0; value
	// 1 writes the complement.  All-zeros is the classical solid
	// background.
	Background uint64
}

// Group is one sequencer's worth of memories: they run the same March
// algorithm in lockstep (parallel within the group).
type Group struct {
	Name string
	Alg  march.Algorithm
	Mems []MemoryUnderTest
	// Backgrounds, when non-empty, runs the algorithm once per data
	// background (overriding each memory's own Background); intra-word
	// coupling faults need a checkerboard pass on top of the solid one.
	Backgrounds []uint64
	// PauseBefore lists element indices preceded by a retention pause of
	// PauseCycles tester cycles; data-retention faults decay during the
	// pause (retention test mode).
	PauseBefore []int
	PauseCycles int
	// TestPortB appends a port-B verification pass for the two-port
	// memories in the group: write through port A, read back through port
	// B (w0, rB0, w1, rB1), catching read-port defects invisible to the
	// port-A March.
	TestPortB bool
}

// Pauser is implemented by fault-injectable memories whose retention
// victims decay during a test pause.
type Pauser interface{ Pause() }

// PortBReader is implemented by two-port memories: ReadB reads through the
// read-only port.
type PortBReader interface{ ReadB(addr int) uint64 }

// backgroundsOrDefault returns the background list (nil means one run with
// each memory's own background).
func (g Group) backgroundsOrDefault() []uint64 {
	if len(g.Backgrounds) == 0 {
		return nil
	}
	return g.Backgrounds
}

// cyclesForElement returns the cycles the group spends on one element: the
// largest memory paces the group.
func (g Group) cyclesForElement(e march.Element) int {
	maxWords := 0
	for _, m := range g.Mems {
		if w := m.RAM.Config().Words; w > maxWords {
			maxWords = w
		}
	}
	return maxWords * len(e.Ops)
}

// Cycles returns the analytic cycle count for the whole group: one March
// run per data background (at least one), plus the retention pauses.
func (g Group) Cycles() int {
	total := 0
	for _, e := range g.Alg.Elements {
		total += g.cyclesForElement(e)
	}
	total += len(g.PauseBefore) * g.PauseCycles
	if n := len(g.Backgrounds); n > 1 {
		total *= n
	}
	total += g.portBCycles()
	return total
}

// portBCycles returns the port-B pass length: 4 sweeps over the largest
// two-port memory (single-port memories idle).
func (g Group) portBCycles() int {
	if !g.TestPortB {
		return 0
	}
	maxW := 0
	for _, m := range g.Mems {
		if m.RAM.Config().Kind == memory.TwoPort {
			if w := m.RAM.Config().Words; w > maxW {
				maxW = w
			}
		}
	}
	return 4 * maxW
}

// Schedule selects how the controller runs multiple sequencer groups.
type Schedule int

// Schedules.
const (
	// Serial runs the groups one after another (lowest power).
	Serial Schedule = iota
	// Parallel runs all groups simultaneously (lowest time).
	Parallel
)

// String names the schedule.
func (s Schedule) String() string {
	if s == Parallel {
		return "parallel"
	}
	return "serial"
}

// FailInfo records the first mismatch observed on a memory.
type FailInfo struct {
	Cycle int
	Addr  int
	Elem  int
	Got   uint64
	Want  uint64
}

// MemResult is the per-memory outcome of a BIST run.
type MemResult struct {
	Name      string
	Pass      bool
	FirstFail *FailInfo
}

// Result is the outcome of a full BIST session.
type Result struct {
	Pass        bool
	Cycles      int
	GroupCycles []int
	Mems        []MemResult
}

// Engine runs BIST sessions.  A zero Engine is not usable; construct with
// NewEngine.
type Engine struct {
	groups   []Group
	schedule Schedule

	// diagnosis mode state (see diagnosis.go).
	diagMax int
	diag    map[string]*Diagnosis
}

// NewEngine validates the plan and builds an engine.
func NewEngine(groups []Group, schedule Schedule) (*Engine, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("bist: no groups")
	}
	for _, g := range groups {
		if err := g.Alg.Validate(); err != nil {
			return nil, fmt.Errorf("bist: group %s: %w", g.Name, err)
		}
		if len(g.Mems) == 0 {
			return nil, fmt.Errorf("bist: group %s has no memories", g.Name)
		}
		for _, m := range g.Mems {
			if err := m.RAM.Config().Validate(); err != nil {
				return nil, fmt.Errorf("bist: group %s: %w", g.Name, err)
			}
		}
	}
	if schedule != Serial && schedule != Parallel {
		return nil, fmt.Errorf("bist: unknown schedule %d", int(schedule))
	}
	return &Engine{groups: groups, schedule: schedule}, nil
}

// tpgState is the per-memory TPG: its own address counter and op pointer so
// that differently sized memories in one group each sweep their own address
// space and idle once done with the current element.
type tpgState struct {
	mem      MemoryUnderTest
	addr     int
	opIdx    int
	elemDone bool
	result   MemResult
}

func (t *tpgState) resetElement(e march.Element) {
	t.opIdx = 0
	t.elemDone = false
	if e.Order == march.Down {
		t.addr = t.mem.RAM.Config().Words - 1
	} else {
		t.addr = 0
	}
}

// step applies one op of element e, advancing address/op pointers.  It
// returns true while the TPG is still active in this element.  onFail,
// when non-nil, receives every read mismatch (diagnosis mode).
func (t *tpgState) step(e march.Element, elemIdx, cycle int, onFail failFn) bool {
	if t.elemDone {
		return false
	}
	cfg := t.mem.RAM.Config()
	op := e.Ops[t.opIdx]
	data := t.mem.Background & cfg.Mask()
	if op.Value == 1 {
		data = ^t.mem.Background & cfg.Mask()
	}
	if op.Read {
		got := t.mem.RAM.Read(t.addr)
		if got != data {
			if t.result.FirstFail == nil {
				t.result.Pass = false
				t.result.FirstFail = &FailInfo{Cycle: cycle, Addr: t.addr, Elem: elemIdx, Got: got, Want: data}
			}
			if onFail != nil {
				onFail(cfg.Name, t.addr, got, data, cfg.Bits)
			}
		}
	} else {
		t.mem.RAM.Write(t.addr, data)
	}
	t.opIdx++
	if t.opIdx == len(e.Ops) {
		t.opIdx = 0
		if e.Order == march.Down {
			t.addr--
			if t.addr < 0 {
				t.elemDone = true
			}
		} else {
			t.addr++
			if t.addr >= cfg.Words {
				t.elemDone = true
			}
		}
	}
	return true
}

// failFn receives every read mismatch (diagnosis mode).
type failFn func(name string, addr int, got, want uint64, bits int)

// cancelPollCycles is how many lockstep TPG cycles a group run simulates
// between ctx polls: a cycle is nanoseconds, so the poll granularity is a
// few microseconds — far inside the promptness budget — while the poll
// itself stays invisible on the profile.
const cancelPollCycles = 8192

// runGroup runs one group to completion (or until ctx fires; canceled runs
// report ok=false and their partial results are discarded by the caller).
func runGroup(ctx context.Context, g Group, startCycle int, onFail failFn) (int, []MemResult, bool) {
	tpgs := make([]*tpgState, len(g.Mems))
	for i, m := range g.Mems {
		tpgs[i] = &tpgState{mem: m, result: MemResult{Name: m.RAM.Config().Name, Pass: true}}
	}
	cycles := 0
	pollIn := cancelPollCycles
	runs := g.backgroundsOrDefault()
	passes := len(runs)
	if passes == 0 {
		passes = 1
	}
	for pass := 0; pass < passes; pass++ {
		if runs != nil {
			for _, t := range tpgs {
				t.mem.Background = runs[pass]
			}
		}
		for ei, e := range g.Alg.Elements {
			if ctx.Err() != nil {
				return cycles, nil, false
			}
			for _, pb := range g.PauseBefore {
				if pb != ei {
					continue
				}
				// Retention pause: the sequencer idles, retention
				// victims decay.
				for _, t := range tpgs {
					if p, ok := t.mem.RAM.(Pauser); ok {
						p.Pause()
					}
				}
				cycles += g.PauseCycles
			}
			for _, t := range tpgs {
				t.resetElement(e)
			}
			for {
				active := false
				for _, t := range tpgs {
					if t.step(e, ei, startCycle+cycles, onFail) {
						active = true
					}
				}
				if !active {
					break
				}
				cycles++
				if pollIn--; pollIn <= 0 {
					pollIn = cancelPollCycles
					if ctx.Err() != nil {
						return cycles, nil, false
					}
				}
			}
		}
	}
	if g.TestPortB {
		cycles += portBPass(tpgs, startCycle+cycles)
	}
	results := make([]MemResult, len(tpgs))
	for i, t := range tpgs {
		results[i] = t.result
	}
	return cycles, results, true
}

// portBPass writes through port A and reads back through port B of every
// two-port memory, in four lockstep sweeps (w0, rB0, w1, rB1).
func portBPass(tpgs []*tpgState, startCycle int) int {
	maxW := 0
	var twoPort []*tpgState
	for _, t := range tpgs {
		cfg := t.mem.RAM.Config()
		if cfg.Kind != memory.TwoPort {
			continue
		}
		if _, ok := t.mem.RAM.(PortBReader); !ok {
			continue
		}
		twoPort = append(twoPort, t)
		if cfg.Words > maxW {
			maxW = cfg.Words
		}
	}
	if len(twoPort) == 0 {
		return 0
	}
	cycles := 0
	for sweep := 0; sweep < 4; sweep++ {
		read := sweep%2 == 1
		value := sweep >= 2
		for addr := 0; addr < maxW; addr++ {
			for _, t := range twoPort {
				cfg := t.mem.RAM.Config()
				if addr >= cfg.Words {
					continue
				}
				data := t.mem.Background & cfg.Mask()
				if value {
					data = ^t.mem.Background & cfg.Mask()
				}
				if read {
					got := t.mem.RAM.(PortBReader).ReadB(addr)
					if got != data && t.result.FirstFail == nil {
						t.result.Pass = false
						t.result.FirstFail = &FailInfo{
							Cycle: startCycle + cycles, Addr: addr,
							Elem: -1, Got: got, Want: data,
						}
					}
				} else {
					t.mem.RAM.Write(addr, data)
				}
			}
			cycles++
		}
	}
	return cycles
}

// Run executes the whole session and returns the result.  It is the
// convenience form of RunContext for callers that never cancel — sessions
// here are short, and the Result-only signature keeps table-driven tests
// and examples readable.
func (e *Engine) Run() Result {
	res, _ := e.RunContext(context.Background())
	return res
}

// RunContext executes the whole session under a context.  The cycle loop
// polls ctx every cancelPollCycles simulated cycles and at every element
// boundary; a canceled run returns ctx.Err() wrapped with the stage name
// and no partial Result.
func (e *Engine) RunContext(ctx context.Context) (Result, error) {
	tm := obsSpanRun.Start()
	defer tm.Stop()
	res := Result{Pass: true}
	var onFail failFn
	if e.diagMax > 0 {
		e.diag = make(map[string]*Diagnosis)
		onFail = e.recordFail
	}
	switch e.schedule {
	case Parallel:
		for _, g := range e.groups {
			cyc, mems, ok := runGroup(ctx, g, 0, onFail)
			if !ok {
				return Result{}, fmt.Errorf("bist: run: %w", ctx.Err())
			}
			res.GroupCycles = append(res.GroupCycles, cyc)
			if cyc > res.Cycles {
				res.Cycles = cyc
			}
			res.Mems = append(res.Mems, mems...)
		}
	default: // Serial
		at := 0
		for _, g := range e.groups {
			cyc, mems, ok := runGroup(ctx, g, at, onFail)
			if !ok {
				return Result{}, fmt.Errorf("bist: run: %w", ctx.Err())
			}
			res.GroupCycles = append(res.GroupCycles, cyc)
			at += cyc
			res.Mems = append(res.Mems, mems...)
		}
		res.Cycles = at
	}
	for _, m := range res.Mems {
		if !m.Pass {
			res.Pass = false
		}
	}
	obsRuns.Add(1)
	obsCycles.Add(int64(res.Cycles))
	obsMemsTested.Add(int64(len(res.Mems)))
	return res, nil
}

// PredictedCycles returns the analytic session length, which Run is
// verified to match exactly.
func (e *Engine) PredictedCycles() int {
	total := 0
	for _, g := range e.groups {
		c := g.Cycles()
		if e.schedule == Parallel {
			if c > total {
				total = c
			}
		} else {
			total += c
		}
	}
	return total
}
