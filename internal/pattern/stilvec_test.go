package pattern

import (
	"reflect"
	"testing"

	"steac/internal/stil"
	"steac/internal/testinfo"
)

func vecCore() *testinfo.Core {
	return &testinfo.Core{
		Name:        "VEC",
		Clocks:      []string{"ck"},
		ScanEnables: []string{"se"},
		PIs:         5, POs: 3,
		ScanChains: []testinfo.ScanChain{
			{Name: "ca", Length: 6, In: "si0", Out: "so0", Clock: "ck"},
			{Name: "cb", Length: 4, In: "si1", Out: "so1", Clock: "ck"},
		},
		Patterns: []testinfo.PatternSet{
			{Name: "scan", Type: testinfo.Scan, Count: 3, Seed: 41},
			{Name: "func", Type: testinfo.Functional, Count: 4, Seed: 42},
		},
	}
}

// Export ATPG patterns, serialize as explicit STIL vectors, parse back,
// and compare bit for bit: the vector hand-off is lossless.
func TestSTILVectorRoundTrip(t *testing.T) {
	core := vecCore()
	a, err := NewATPG(core)
	if err != nil {
		t.Fatal(err)
	}
	scan, fn, err := Export(a, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan) != 3 || len(fn) != 4 {
		t.Fatalf("exported %d scan, %d func", len(scan), len(fn))
	}
	vecs := ToSTIL(core, scan, fn)
	src, err := stil.EmitWithVectors(core, vecs)
	if err != nil {
		t.Fatal(err)
	}
	backCore, backVecs, err := stil.ParseWithVectors(src)
	if err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	if backCore.Name != "VEC" || backCore.TotalScanBits() != 10 {
		t.Fatal("core info lost")
	}
	exp, err := FromSTIL(backCore, backVecs)
	if err != nil {
		t.Fatal(err)
	}
	if exp.ScanCount() != 3 || exp.FuncCount() != 4 {
		t.Fatalf("explicit source has %d/%d patterns", exp.ScanCount(), exp.FuncCount())
	}
	for i := 0; i < 3; i++ {
		want, err := a.ScanPattern(i)
		if err != nil {
			t.Fatal(err)
		}
		got, err := exp.ScanPattern(i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalize(want), normalize(got)) {
			t.Fatalf("scan pattern %d differs:\nwant %+v\ngot  %+v", i, want, got)
		}
	}
	wantNext := a.FuncStream()
	gotNext := exp.FuncStream()
	for i := 0; i < 4; i++ {
		w, _ := wantNext()
		g, ok := gotNext()
		if !ok || !reflect.DeepEqual(w, g) {
			t.Fatalf("func pattern %d differs", i)
		}
	}
}

// normalize maps empty slices to nil for DeepEqual.
func normalize(p ScanPattern) ScanPattern {
	if len(p.PI) == 0 {
		p.PI = nil
	}
	if len(p.ExpectPO) == 0 {
		p.ExpectPO = nil
	}
	return p
}

func TestExplicitSourceValidation(t *testing.T) {
	core := vecCore()
	if _, err := NewExplicitSource(core, []ScanPattern{{}}, nil); err == nil {
		t.Fatal("empty scan vector accepted")
	}
	bad := ScanPattern{
		Load:         [][]bool{make([]bool, 6), make([]bool, 3)}, // cb too short
		ExpectUnload: [][]bool{make([]bool, 6), make([]bool, 4)},
		PI:           make([]bool, 5), ExpectPO: make([]bool, 3),
	}
	if _, err := NewExplicitSource(core, []ScanPattern{bad}, nil); err == nil {
		t.Fatal("short chain accepted")
	}
	if _, err := NewExplicitSource(core, nil, []FuncPattern{{PI: make([]bool, 2)}}); err == nil {
		t.Fatal("short functional PI accepted")
	}
	es, err := NewExplicitSource(core, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := es.ScanPattern(0); err == nil {
		t.Fatal("out-of-range scan vector accepted")
	}
}

func TestFromSTILMissingChain(t *testing.T) {
	core := vecCore()
	v := &stil.Vectors{Scan: []stil.ScanVector{{
		Load:   map[string]string{"ca": "010101"},
		Unload: map[string]string{"ca": "101010", "cb": "0101"},
		PI:     "00000", PO: "HHH",
	}}}
	if _, err := FromSTIL(core, v); err == nil {
		t.Fatal("missing cb load accepted")
	}
}

func TestExportBounds(t *testing.T) {
	a, err := NewATPG(vecCore())
	if err != nil {
		t.Fatal(err)
	}
	scan, fn, err := Export(a, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan) != 2 || len(fn) != 1 {
		t.Fatalf("bounded export = %d/%d", len(scan), len(fn))
	}
}
