package wrapper

import "testing"

func TestRebalanceSoftCore(t *testing.T) {
	soft := usbCore()
	soft.Soft = true
	re, plan, err := Rebalance(soft, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.ScanChains) != 4 {
		t.Fatalf("rebalanced chains = %d, want 4", len(re.ScanChains))
	}
	if re.TotalScanBits() != 2045 {
		t.Fatalf("scan bits = %d", re.TotalScanBits())
	}
	// Balanced within one bit: 2045/4 = 511.25 -> 512/511/511/511.
	ls := re.ChainLengths()
	if ls[0]-ls[len(ls)-1] > 1 {
		t.Fatalf("unbalanced reconfiguration: %v", ls)
	}
	// The hard plan of the reconfigured core matches the soft estimate.
	softPlan, err := DesignChains(soft, 4, LPT)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MaxLength() != softPlan.MaxLength() {
		t.Fatalf("hard plan %d vs soft estimate %d", plan.MaxLength(), softPlan.MaxLength())
	}
	// Paper-motivating win: the 716-pattern scan test drops from 1,168,709
	// cycles (hard, 1629-dominated) to the balanced figure.
	hard, err := DesignChains(usbCore(), 4, LPT)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ScanTestCycles(716) >= hard.ScanTestCycles(716) {
		t.Fatalf("rebalancing did not shorten the scan test: %d vs %d",
			plan.ScanTestCycles(716), hard.ScanTestCycles(716))
	}
	if got := plan.ScanTestCycles(716); got != 594*716+593 {
		t.Fatalf("rebalanced scan cycles = %d", got)
	}
}

func TestRebalanceRequiresSoft(t *testing.T) {
	if _, _, err := Rebalance(usbCore(), 4); err == nil {
		t.Fatal("hard core rebalanced")
	}
}

func TestRebalanceWidthOne(t *testing.T) {
	soft := usbCore()
	soft.Soft = true
	re, _, err := Rebalance(soft, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.ScanChains) != 1 || re.ScanChains[0].Length != 2045 {
		t.Fatalf("width-1 rebalance = %+v", re.ScanChains)
	}
}
