package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"steac/internal/fabric"
)

// The fabric-job tests exercise the distributed submission path: a job
// POSTed with "fabric": true is registered with the daemon's coordinator,
// executed by fabric nodes leasing over the same HTTP mux, and reported
// through the job API with the coordinator's fabric-wide progress view
// instead of the local single-pool extrapolation.

// newFabricServer builds a coordinating daemon plus n in-process fabric
// nodes leasing from its own mux, all sharing one checkpoint root.
func newFabricServer(t *testing.T, n int) (string, *fabric.Coordinator) {
	t.Helper()
	dir := t.TempDir()
	coord, err := fabric.New(fabric.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2, Fabric: coord})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := 0; i < n; i++ {
		node := &fabric.Node{
			ID:      "serve-node-" + string(rune('a'+i)),
			Client:  &fabric.Client{Base: ts.URL},
			Dir:     dir,
			Workers: 2,
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = node.Run(ctx)
		}()
		t.Cleanup(func() { cancel(); <-done }) // stop the agent before the server closes
	}
	return ts.URL, coord
}

// TestFabricJobLifecycle is the distributed happy path: submit with
// "fabric": true, nodes lease and complete the shards, the job reaches
// done with the golden report and a fabric-wide progress block naming
// the nodes that did the work.
func TestFabricJobLifecycle(t *testing.T) {
	base, _ := newFabricServer(t, 2)
	golden := goldenJobReport(t)

	body := `{"kind":"memfault","spec":` + jobSpecJSON + `,"shard_size":64,"fabric":true}`
	st := jobPost(t, base, body, http.StatusAccepted)
	if st.State != jobRunning {
		t.Fatalf("fabric job admitted in state %q, want %q", st.State, jobRunning)
	}

	final := pollJob(t, base, st.ID, func(s JobStatus) bool { return terminalJobState(s.State) })
	if final.State != jobDone {
		t.Fatalf("fabric job finished %q (%s), want done", final.State, final.Error)
	}
	if !bytes.Equal(final.Result, golden) {
		t.Fatalf("fabric job result differs from golden:\n got  %s\n want %s", final.Result, golden)
	}
	if final.Fabric == nil {
		t.Fatal("finished fabric job status carries no fabric progress block")
	}
	if final.Fabric.State != "done" || final.Fabric.ShardsComplete != final.Fabric.ShardsTotal {
		t.Fatalf("fabric progress not converged: %+v", final.Fabric)
	}
	completed := 0
	for _, node := range final.Fabric.Nodes {
		if !strings.HasPrefix(node.Node, "serve-node-") {
			t.Fatalf("unexpected node %q in fabric progress", node.Node)
		}
		completed += node.Completed
	}
	if completed != final.Fabric.ShardsTotal {
		t.Fatalf("per-node completions sum to %d, want %d shards", completed, final.Fabric.ShardsTotal)
	}

	// Resubmission joins the finished job — same id, no recompute.
	again := jobPost(t, base, body, http.StatusAccepted)
	if again.ID != st.ID {
		t.Fatalf("fabric resubmission minted new job %s, had %s", again.ID, st.ID)
	}
}

// TestFabricJobConvergesWithLocalID checks the identity contract: the same
// spec submitted as a fabric job and described locally shares the campaign
// fingerprint-derived job id, so clients can switch modes without losing
// the handle.
func TestFabricJobConvergesWithLocalID(t *testing.T) {
	base, coord := newFabricServer(t, 1)
	st := jobPost(t, base, `{"kind":"memfault","spec":`+jobSpecJSON+`,"shard_size":64,"fabric":true}`,
		http.StatusAccepted)
	infos := coord.Campaigns()
	if len(infos) != 1 {
		t.Fatalf("coordinator tracks %d campaigns, want 1", len(infos))
	}
	if want := infos[0].Fingerprint[:16]; st.ID != want {
		t.Fatalf("fabric job id %s, want fingerprint-derived %s", st.ID, want)
	}
	pollJob(t, base, st.ID, func(s JobStatus) bool { return terminalJobState(s.State) })
}

// TestFabricJobWithoutCoordinator pins the refusal: "fabric": true against
// a daemon that is not a coordinator is a 400, not a silent local run.
func TestFabricJobWithoutCoordinator(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, blob := post(t, ts.URL+"/v1/jobs", `{"kind":"memfault","spec":`+jobSpecJSON+`,"fabric":true}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("fabric job without coordinator = %d, want 400: %s", resp.StatusCode, blob)
	}
	if !strings.Contains(string(blob), "coordinator") {
		t.Fatalf("refusal does not name the missing coordinator: %s", blob)
	}
}

// TestFabricJobStatusJSONShape pins the exact wire shape of a fabric job
// status.  Dashboards key on these field names; renaming or reordering any
// of them is a breaking API change and must show up here.
func TestFabricJobStatusJSONShape(t *testing.T) {
	st := JobStatus{
		ID:          "deadbeefdeadbeef",
		Kind:        "memfault",
		Fingerprint: "deadbeefdeadbeefdeadbeefdeadbeef",
		State:       "running",
		ShardsDone:  12,
		ShardsTotal: 27,
		UnitsDone:   12288,
		UnitsTotal:  26752,
		ElapsedMS:   4200,
		EtaMS:       5250,
		Fabric: &fabric.Progress{
			Fingerprint:    "deadbeefdeadbeefdeadbeefdeadbeef",
			Kind:           "memfault",
			State:          "running",
			ShardsTotal:    27,
			ShardsComplete: 12,
			ShardsLeased:   4,
			ShardsPending:  11,
			UnitsTotal:     26752,
			UnitsDone:      12288,
			ElapsedMS:      4200,
			EtaMS:          5250,
			Nodes: []fabric.NodeProgress{
				{Node: "a", Leased: 2, Completed: 7, Stolen: 0, IdleMS: 0},
				{Node: "b", Leased: 2, Completed: 5, Stolen: 1, IdleMS: 150},
			},
		},
	}
	got, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"id":"deadbeefdeadbeef","kind":"memfault","fingerprint":"deadbeefdeadbeefdeadbeefdeadbeef",` +
		`"state":"running","shards_done":12,"shards_total":27,"units_done":12288,"units_total":26752,` +
		`"elapsed_ms":4200,"eta_ms":5250,` +
		`"fabric":{"fingerprint":"deadbeefdeadbeefdeadbeefdeadbeef","kind":"memfault","state":"running",` +
		`"shards_total":27,"shards_complete":12,"shards_leased":4,"shards_pending":11,` +
		`"units_total":26752,"units_done":12288,"elapsed_ms":4200,"eta_ms":5250,` +
		`"nodes":[{"node":"a","leased":2,"completed":7,"stolen":0,"idle_ms":0},` +
		`{"node":"b","leased":2,"completed":5,"stolen":1,"idle_ms":150}]}}`
	if string(got) != want {
		t.Fatalf("fabric job status JSON shape changed:\n got  %s\n want %s", got, want)
	}
}
