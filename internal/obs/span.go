package obs

import (
	"context"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one node of the static span taxonomy.  It accumulates wall time
// and a call count from every Start/Stop pair, concurrently and
// reentrantly: two goroutines timing into the same node simply both add.
// Obtain spans once with GetSpan (package var) and keep the pointer.
type Span struct {
	name   string // last path segment
	path   string // full dotted path
	parent *Span

	mu       sync.Mutex
	children map[string]*Span

	calls  atomic.Int64
	ns     atomic.Int64
	active atomic.Int64 // Starts not yet Stopped
}

// root anchors the taxonomy; it is never reported itself.
var root = &Span{}

// Root returns the taxonomy root, whose direct children are the top-level
// stages.
func Root() *Span { return root }

// GetSpan resolves a dotted path ("flow.schedule") from the root, creating
// missing nodes.  Call once per call site and cache the pointer: resolution
// takes the registration lock and allocates on first use.
func GetSpan(path string) *Span {
	s := root
	for _, seg := range strings.Split(path, ".") {
		if seg == "" {
			continue
		}
		s = s.Child(seg)
	}
	return s
}

// Child returns the named child node, creating it on first use.
func (s *Span) Child(name string) *Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.children[name]; ok {
		return c
	}
	if s.children == nil {
		s.children = make(map[string]*Span)
	}
	path := name
	if s.path != "" {
		path = s.path + "." + name
	}
	c := &Span{name: name, path: path, parent: s}
	s.children[name] = c
	return c
}

// Path returns the full dotted path of the node.
func (s *Span) Path() string { return s.path }

// Calls returns how many Start/Stop pairs have completed.
func (s *Span) Calls() int64 { return s.calls.Load() }

// Nanos returns the accumulated wall time in nanoseconds.  Concurrent
// Start/Stop pairs both count, so a node timed from N workers can
// accumulate more than elapsed wall time — like CPU seconds.
func (s *Span) Nanos() int64 { return s.ns.Load() }

// reset clears statistics recursively, keeping the tree shape.
func (s *Span) reset() {
	s.calls.Store(0)
	s.ns.Store(0)
	s.active.Store(0)
	s.mu.Lock()
	kids := make([]*Span, 0, len(s.children))
	for _, c := range s.children {
		kids = append(kids, c)
	}
	s.mu.Unlock()
	for _, c := range kids {
		c.reset()
	}
}

// sortedChildren returns the children ordered by name (deterministic
// report order regardless of registration interleaving).
func (s *Span) sortedChildren() []*Span {
	s.mu.Lock()
	kids := make([]*Span, 0, len(s.children))
	for _, c := range s.children {
		kids = append(kids, c)
	}
	s.mu.Unlock()
	for i := 1; i < len(kids); i++ {
		for j := i; j > 0 && kids[j-1].name > kids[j].name; j-- {
			kids[j-1], kids[j] = kids[j], kids[j-1]
		}
	}
	return kids
}

// Timing is an in-flight Start; Stop records the elapsed wall time into the
// span.  It is a value type — keep it on the stack (`t := span.Start();
// defer t.Stop()`), or hand it to another goroutine to stop there: the pair
// is attributed to the span, not to any goroutine.  The zero Timing is
// inert, and Stop is idempotent, so an unbalanced extra Stop is a no-op
// rather than a corruption.
type Timing struct {
	span *Span
	t0   int64 // UnixNano at Start; 0 marks inert/stopped
}

// Start begins timing into the span and, when observability is enabled,
// labels the current goroutine's pprof samples with the span path (label
// key "span") until Stop.  When disabled it returns an inert Timing and
// costs one atomic load.
func (s *Span) Start() Timing {
	if s == nil || !enabled.Load() {
		return Timing{}
	}
	s.active.Add(1)
	setSpanLabel(s.path)
	return Timing{span: s, t0: time.Now().UnixNano()}
}

// Stop records the elapsed time.  Safe to call twice (second is a no-op)
// and safe on the zero Timing; safe from a different goroutine than Start,
// in which case the pprof label of the starting goroutine is simply left
// for its next Start to overwrite.
func (t *Timing) Stop() {
	if t.span == nil || t.t0 == 0 {
		return
	}
	t.span.ns.Add(time.Now().UnixNano() - t.t0)
	t.span.calls.Add(1)
	t.span.active.Add(-1)
	// Hand the goroutine's label back to the parent stage.  This assumes
	// stages nest (the taxonomy mirrors runtime nesting), which holds for
	// every engine here; a same-goroutine overlap would only mislabel
	// profile samples, never corrupt timings.
	if t.span.parent != nil && t.span.parent.path != "" {
		setSpanLabel(t.span.parent.path)
	} else {
		pprof.SetGoroutineLabels(context.Background())
	}
	t.t0 = 0
	t.span = nil
}

// Running reports whether the Timing is live (started and not stopped).
func (t *Timing) Running() bool { return t.span != nil && t.t0 != 0 }

// setSpanLabel points the goroutine's pprof samples at the given span path.
func setSpanLabel(path string) {
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("span", path)))
}
