package sched

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"steac/internal/obs"
	"steac/internal/testinfo"
)

// Observability.  schedules_built / jobs_scheduled and the best-cycles
// gauge are worker-count-invariant (asserted by the obs stress tests);
// sessions_designed and partitions_evaluated measure search effort, which
// legitimately varies with worker count because branch-and-bound pruning
// depends on how fast the shared bound tightens.
var (
	obsSpanSearch = obs.GetSpan("sched.session_based")
	obsSchedules  = obs.GetCounter("sched.schedules_built")
	obsJobs       = obs.GetCounter("sched.jobs_scheduled")
	obsDesigns    = obs.GetCounter("sched.sessions_designed")
	obsLeaves     = obs.GetCounter("sched.partitions_evaluated")
	obsBestGauge  = obs.GetGauge("sched.best_total_cycles")
)

// coreJob groups a core's tests: scan first, then functional, chained
// back-to-back inside one session.
type coreJob struct {
	core *testinfo.Core
	scan *Test
	fn   *Test
}

func buildJobs(tests []Test) ([]coreJob, []Test) {
	byCore := make(map[string]*coreJob)
	var order []string
	var bist []Test
	for i := range tests {
		t := tests[i]
		if t.Kind == BISTKind {
			bist = append(bist, t)
			continue
		}
		j, ok := byCore[t.Core.Name]
		if !ok {
			j = &coreJob{core: t.Core}
			byCore[t.Core.Name] = j
			order = append(order, t.Core.Name)
		}
		if t.Kind == ScanKind {
			j.scan = &tests[i]
		} else {
			j.fn = &tests[i]
		}
	}
	jobs := make([]coreJob, 0, len(order))
	for _, n := range order {
		jobs = append(jobs, *byCore[n])
	}
	return jobs, bist
}

// jobPeakPower is the job's worst-case instantaneous power (its tests are
// chained, never concurrent).
func (j coreJob) peakPower() float64 {
	p := 0.0
	if j.scan != nil && j.scan.Power > p {
		p = j.scan.Power
	}
	if j.fn != nil && j.fn.Power > p {
		p = j.fn.Power
	}
	return p
}

// sessionDesign is the evaluated layout of one session of core jobs.
type sessionDesign struct {
	jobs        []coreJob
	placements  []Placement
	cycles      int
	controlPins int
	dataPins    int
	corePower   float64
	// powerSum is Σ placement powers (scan + functional), the session's
	// committed power against Resources.PowerBudget.
	powerSum float64
	// bist occupancy added by the fill phase.
	bistCycles int
	bistPower  float64
	// bistPowerSum is Σ BIST group powers filled into this session, the
	// groups' contribution to the PowerBudget accounting.
	bistPowerSum float64
	bistPl       []Placement
}

func (s *sessionDesign) length() int {
	if s.bistCycles > s.cycles {
		return s.bistCycles
	}
	return s.cycles
}

// designSession assigns TAM widths and functional pins to the jobs of one
// session and computes its length.  Control pins are shared (that is what
// the session barrier buys); four pins stay reserved for the BIST tester
// interface so BIST groups can be filled into any session.
func designSession(jobs []coreJob, res Resources) (*sessionDesign, error) {
	return designSessionCached(jobs, res, newTimeCache(res.Partitioner))
}

func designSessionCached(jobs []coreJob, res Resources, tc *timeCache) (*sessionDesign, error) {
	obsDesigns.Add(1)
	cores := make([]*testinfo.Core, len(jobs))
	for i, j := range jobs {
		cores[i] = j.core
	}
	control := ControlPins(cores, true, true)
	data := res.TestPins - control
	if data < 0 {
		return nil, errInfeasible
	}

	// Scan widths: start everyone at 1 wire, then spend remaining pins on
	// the largest marginal gain.
	type scanState struct {
		job   int
		width int
		cyc   int
		max   int
	}
	var scans []*scanState
	pinsLeft := data
	for ji, j := range jobs {
		if j.scan == nil {
			continue
		}
		if pinsLeft < 2 {
			return nil, errInfeasible
		}
		cyc, err := tc.scanCycles(j.core, 1)
		if err != nil {
			return nil, err
		}
		scans = append(scans, &scanState{job: ji, width: 1, cyc: cyc,
			max: maxUsefulWidth(j.core, data)})
		pinsLeft -= 2
	}
	for pinsLeft >= 2 {
		var best *scanState
		bestGain := 0
		var bestCyc int
		for _, s := range scans {
			if s.width >= s.max {
				continue
			}
			c, err := tc.scanCycles(jobs[s.job].core, s.width+1)
			if err != nil {
				return nil, err
			}
			if gain := s.cyc - c; gain > bestGain {
				bestGain, best, bestCyc = gain, s, c
			}
		}
		if best == nil {
			break
		}
		best.width++
		best.cyc = bestCyc
		pinsLeft -= 2
	}

	// Functional pins: waterfill FuncPins across the session's functional
	// tests (they overlap across cores).
	type funcState struct {
		job     int
		granted int
		cyc     int
	}
	var funcs []*funcState
	var needs []int
	for ji, j := range jobs {
		if j.fn == nil {
			continue
		}
		funcs = append(funcs, &funcState{job: ji})
		needs = append(needs, j.fn.NeedFuncPins)
	}
	if len(funcs) > 0 {
		grants, err := waterfill(needs, res.FuncPins)
		if err != nil {
			return nil, err
		}
		for i, f := range funcs {
			f.granted = grants[i]
			cyc, err := FuncCycles(jobs[f.job].fn.Patterns, jobs[f.job].fn.NeedFuncPins, f.granted)
			if err != nil {
				return nil, errInfeasible
			}
			f.cyc = cyc
		}
	}

	// Assemble placements; a job's functional test starts after its scan.
	des := &sessionDesign{jobs: jobs, controlPins: control, dataPins: data - pinsLeft}
	jobEnd := make([]int, len(jobs))
	for _, s := range scans {
		des.placements = append(des.placements, Placement{
			Test: *jobs[s.job].scan, Width: s.width, Cycles: s.cyc,
		})
		jobEnd[s.job] = s.cyc
	}
	for _, f := range funcs {
		des.placements = append(des.placements, Placement{
			Test: *jobs[f.job].fn, FuncPins: f.granted, Cycles: f.cyc,
			Start: jobEnd[f.job],
		})
		jobEnd[f.job] += f.cyc
	}
	for _, e := range jobEnd {
		if e > des.cycles {
			des.cycles = e
		}
	}
	for _, j := range jobs {
		des.corePower += j.peakPower()
	}
	if res.MaxPower > 0 && !almostLE(des.corePower, res.MaxPower) {
		return nil, errInfeasible
	}
	for _, p := range des.placements {
		des.powerSum += p.Test.Power
	}
	// The per-session budget is monotone in membership (adding a job only
	// adds power), so the branch-and-bound's infeasibility pruning stays
	// valid with it enforced here.
	if res.PowerBudget > 0 && !almostLE(des.powerSum, res.PowerBudget) {
		return nil, errInfeasible
	}
	return des, nil
}

// waterfill grants pins to demands from a shared budget: everyone capped at
// their need, surplus redistributed.
func waterfill(needs []int, budget int) ([]int, error) {
	grants := make([]int, len(needs))
	if len(needs) == 0 {
		return grants, nil
	}
	if budget < len(needs) {
		return nil, errInfeasible
	}
	type item struct{ idx, need int }
	items := make([]item, len(needs))
	for i, n := range needs {
		items[i] = item{i, n}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].need < items[b].need })
	remaining := budget
	left := len(items)
	for _, it := range items {
		share := remaining / left
		g := it.need
		if g > share {
			g = share
		}
		if g < 1 {
			g = 1
		}
		grants[it.idx] = g
		remaining -= g
		left--
	}
	return grants, nil
}

// SessionBasedContext builds the session-based schedule: it enumerates partitions
// of the core jobs into sessions (exhaustively up to 10 cores, greedily
// beyond), designs each session, fills BIST groups into session slack
// (serial within a session: one shared BIST controller), and returns the
// partition with the lowest total test time.
//
// The exhaustive search runs as a parallel branch-and-bound across
// Resources.Workers goroutines (sessions are designed incrementally as jobs
// are placed; subtrees whose partial cycle sum already exceeds the best
// known total are pruned).  The result is identical to the serial
// exhaustive enumeration for every worker count: the same optimum, with
// ties broken by enumeration order.
//
// The partition search polls ctx at batch boundaries (task claims and every cancelPollInterval
// search nodes) and returns ctx.Err() wrapped with the stage name as soon
// as the workers drain.  A canceled search never returns a partial
// schedule.
func SessionBasedContext(ctx context.Context, tests []Test, res Resources) (*Schedule, error) {
	tm := obsSpanSearch.Start()
	defer tm.Stop()
	jobs, bist := buildJobs(tests)
	if len(jobs) == 0 && len(bist) == 0 {
		return nil, fmt.Errorf("sched: nothing to schedule")
	}
	workers := res.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tc := newTimeCache(res.Partitioner)

	var best searchResult
	switch {
	case len(jobs) == 0:
		best = evalPartition(nil, bist, res, tc)
	case len(jobs) <= exhaustiveJobLimit:
		best = searchPartitions(ctx, jobs, bist, res, tc, workers)
	default:
		var err error
		best, err = greedySearch(ctx, jobs, bist, res, tc, workers)
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sched: session search: %w", err)
	}
	if !best.ok {
		return nil, fmt.Errorf("sched: no feasible session partition under %d test pins / %d func pins: %w",
			res.TestPins, res.FuncPins, ErrInfeasible)
	}
	bestSessions := best.sessions

	// Longest sessions first: the controller runs them in a fixed order
	// and this mirrors the DSC flow (big scan session first).
	sort.SliceStable(bestSessions, func(a, b int) bool {
		return bestSessions[a].length() > bestSessions[b].length()
	})
	sched := &Schedule{Kind: "session-based"}
	for si, d := range bestSessions {
		s := Session{
			Index:       si,
			Cycles:      d.length(),
			ControlPins: d.controlPins,
			DataPins:    d.dataPins,
			PeakPower:   d.corePower + d.bistPower,
		}
		s.Placements = append(s.Placements, d.placements...)
		s.Placements = append(s.Placements, d.bistPl...)
		sched.Sessions = append(sched.Sessions, s)
		sched.TotalCycles += s.Cycles
		if s.ControlPins > sched.ControlPinsMax {
			sched.ControlPinsMax = s.ControlPins
		}
	}
	obsSchedules.Add(1)
	obsJobs.Add(int64(len(jobs)))
	obsBestGauge.Set(int64(sched.TotalCycles))
	return sched, nil
}

// fillBIST packs BIST groups into session slack (best-fit decreasing); a
// group that fits nowhere without growth goes where it grows the total
// least, including possibly a BIST-only overflow session.  Groups in one
// session run serially behind the shared controller.
func fillBIST(sessions []*sessionDesign, bist []Test, res Resources) ([]*sessionDesign, bool) {
	out := make([]*sessionDesign, len(sessions))
	for i, s := range sessions {
		cp := *s
		cp.bistPl = nil
		cp.bistCycles = 0
		cp.bistPower = 0
		cp.bistPowerSum = 0
		out[i] = &cp
	}
	groups := make([]Test, len(bist))
	copy(groups, bist)
	sort.SliceStable(groups, func(a, b int) bool { return groups[a].FixedCycles > groups[b].FixedCycles })

	powerOK := func(s *sessionDesign, g Test) bool {
		if res.MaxPower > 0 {
			p := g.Power
			if s.bistPower > p {
				p = s.bistPower
			}
			if !almostLE(s.corePower+p, res.MaxPower) {
				return false
			}
		}
		if res.PowerBudget > 0 &&
			!almostLE(s.powerSum+s.bistPowerSum+g.Power, res.PowerBudget) {
			return false
		}
		return true
	}
	for _, g := range groups {
		bestIdx, bestGrowth, bestSlack := -1, -1, -1
		for i, s := range out {
			if !powerOK(s, g) {
				continue
			}
			newBist := s.bistCycles + g.FixedCycles
			growth := 0
			if newBist > s.cycles && newBist > s.length() {
				growth = newBist - s.length()
			}
			slack := s.length() - newBist
			if bestIdx < 0 || growth < bestGrowth ||
				(growth == bestGrowth && growth == 0 && slack < bestSlack) {
				bestIdx, bestGrowth, bestSlack = i, growth, slack
			}
		}
		// Open a fresh BIST-only session only when no existing session is
		// power-feasible (growth can never exceed the group length, so an
		// existing session is otherwise always at least as good and keeps
		// the session count low).
		if bestIdx < 0 {
			ns := &sessionDesign{controlPins: ControlPins(nil, true, true)}
			if res.MaxPower > 0 && !almostLE(g.Power, res.MaxPower) {
				return nil, false
			}
			if res.PowerBudget > 0 && !almostLE(g.Power, res.PowerBudget) {
				return nil, false
			}
			ns.bistPl = append(ns.bistPl, Placement{Test: g, Cycles: g.FixedCycles})
			ns.bistCycles = g.FixedCycles
			ns.bistPower = g.Power
			ns.bistPowerSum = g.Power
			out = append(out, ns)
			continue
		}
		s := out[bestIdx]
		s.bistPl = append(s.bistPl, Placement{Test: g, Cycles: g.FixedCycles, Start: s.bistCycles})
		s.bistCycles += g.FixedCycles
		s.bistPowerSum += g.Power
		if g.Power > s.bistPower {
			s.bistPower = g.Power
		}
	}
	return out, true
}

// exhaustiveJobLimit is the largest job count searched exhaustively
// (Bell(10) = 115,975 partitions); beyond it the LPT greedy takes over.
const exhaustiveJobLimit = 10

// searchResult is one feasible schedule candidate: the BIST-filled session
// designs and their total length.
type searchResult struct {
	ok       bool
	total    int
	sessions []*sessionDesign
}

// evalPartition designs every session of a complete partition, fills BIST
// into the slack and totals the schedule; !ok if any session is infeasible.
func evalPartition(part [][]coreJob, bist []Test, res Resources, tc *timeCache) searchResult {
	obsLeaves.Add(1)
	designs := make([]*sessionDesign, 0, len(part))
	for _, group := range part {
		d, err := designSessionCached(group, res, tc)
		if err != nil {
			return searchResult{}
		}
		designs = append(designs, d)
	}
	designs, ok := fillBIST(designs, bist, res)
	if !ok {
		return searchResult{}
	}
	total := 0
	for _, d := range designs {
		total += d.length()
	}
	return searchResult{ok: true, total: total, sessions: designs}
}

// partitionSearcher is the per-task state of the exact branch-and-bound
// session search.  It walks the set-partition tree in the same order as
// forEachPartition, designing the one modified session at each step, and
// prunes a subtree when the partial cycle sum already exceeds the best
// total seen anywhere (session length and infeasibility are both monotone
// in session membership: adding a core only raises control-pin, data-pin
// and power demand).
type partitionSearcher struct {
	ctx    context.Context
	jobs   []coreJob
	bist   []Test
	res    Resources
	tc     *timeCache
	shared *atomic.Int64 // best total across all tasks, for pruning only

	groups  [][]coreJob
	designs []*sessionDesign
	sum     int // Σ designs[i].cycles, a lower bound on any completion
	best    searchResult

	// Cancellation: ctx is polled every cancelPollInterval recursion steps
	// (a step designs at most one session, so the poll granularity is
	// microseconds × the interval); once it fires, the whole subtree
	// unwinds without visiting further nodes.
	pollIn  int
	stopped bool
}

// cancelPollInterval is how many search nodes a task visits between ctx
// polls: rare enough to stay off the profile, frequent enough that a cancel
// unwinds in well under the 250 ms promptness budget the tests assert.
const cancelPollInterval = 512

// cancelled polls the task's context on a countdown and latches the result.
func (ps *partitionSearcher) cancelled() bool {
	if ps.stopped {
		return true
	}
	ps.pollIn--
	if ps.pollIn > 0 {
		return false
	}
	ps.pollIn = cancelPollInterval
	if ps.ctx.Err() != nil {
		ps.stopped = true
	}
	return ps.stopped
}

// bound is the total a candidate must strictly beat to matter.
func (ps *partitionSearcher) bound() int {
	b := int(ps.shared.Load())
	if ps.best.ok && ps.best.total < b {
		b = ps.best.total
	}
	return b
}

func (ps *partitionSearcher) rec(i int) {
	if ps.cancelled() {
		return
	}
	if i == len(ps.jobs) {
		ps.leaf()
		return
	}
	job := ps.jobs[i]
	for k := range ps.groups {
		ps.groups[k] = append(ps.groups[k], job)
		if d, err := designSessionCached(ps.groups[k], ps.res, ps.tc); err == nil {
			if newSum := ps.sum - ps.designs[k].cycles + d.cycles; newSum <= ps.bound() {
				old, oldSum := ps.designs[k], ps.sum
				ps.designs[k], ps.sum = d, newSum
				ps.rec(i + 1)
				ps.designs[k], ps.sum = old, oldSum
			}
		}
		ps.groups[k] = ps.groups[k][:len(ps.groups[k])-1]
	}
	if d, err := designSessionCached([]coreJob{job}, ps.res, ps.tc); err == nil && ps.sum+d.cycles <= ps.bound() {
		ps.groups = append(ps.groups, []coreJob{job})
		ps.designs = append(ps.designs, d)
		ps.sum += d.cycles
		ps.rec(i + 1)
		ps.sum -= d.cycles
		ps.groups = ps.groups[:len(ps.groups)-1]
		ps.designs = ps.designs[:len(ps.designs)-1]
	}
}

// leaf evaluates a complete partition.  Only a strict improvement replaces
// the task-local best, so the first partition (in enumeration order)
// achieving the optimum wins — the serial tie-break.
func (ps *partitionSearcher) leaf() {
	obsLeaves.Add(1)
	designs, ok := fillBIST(ps.designs, ps.bist, ps.res)
	if !ok {
		return
	}
	total := 0
	for _, d := range designs {
		total += d.length()
	}
	if ps.best.ok && total >= ps.best.total {
		return
	}
	// Detach the winning designs from the mutable recursion buffers.
	for _, d := range designs {
		d.jobs = append([]coreJob(nil), d.jobs...)
	}
	ps.best = searchResult{ok: true, total: total, sessions: designs}
	for {
		cur := ps.shared.Load()
		if int64(total) >= cur || ps.shared.CompareAndSwap(cur, int64(total)) {
			return
		}
	}
}

// runTask explores every completion of a prefix partition (a partition of
// jobs[:depth]) and returns its best candidate.
func (ps *partitionSearcher) runTask(prefix [][]coreJob, depth int) searchResult {
	for _, g := range prefix {
		g = append([]coreJob(nil), g...) // private, mutable copy
		d, err := designSessionCached(g, ps.res, ps.tc)
		if err != nil {
			// Infeasibility is monotone: no completion of this prefix
			// can design this session either.
			return searchResult{}
		}
		ps.groups = append(ps.groups, g)
		ps.designs = append(ps.designs, d)
		ps.sum += d.cycles
	}
	ps.rec(depth)
	return ps.best
}

// bellNumbers[d] is the number of set partitions of d elements, used to
// size the task split of the parallel search.
var bellNumbers = []int{1, 1, 2, 5, 15, 52, 203}

// searchPartitions runs the exact session search over all set partitions
// of jobs, fanned across a bounded worker pool.  Tasks are the partitions
// of a short job prefix, in enumeration order; merging by task order
// restores the exact serial tie-break.
func searchPartitions(ctx context.Context, jobs []coreJob, bist []Test, res Resources, tc *timeCache, workers int) searchResult {
	var shared atomic.Int64
	shared.Store(int64(math.MaxInt64))
	newSearcher := func() *partitionSearcher {
		return &partitionSearcher{ctx: ctx, jobs: jobs, bist: bist, res: res, tc: tc,
			shared: &shared, pollIn: cancelPollInterval}
	}
	n := len(jobs)
	if workers <= 1 || n < 3 {
		return newSearcher().runTask(nil, 0)
	}

	// Split depth: enough tasks to keep the pool busy, small enough that
	// prefix re-design stays negligible.
	depth := 1
	for depth < n-1 && depth < len(bellNumbers)-1 && bellNumbers[depth] < 4*workers {
		depth++
	}
	var tasks [][][]coreJob
	forEachPartition(jobs[:depth], func(p [][]coreJob) { tasks = append(tasks, p) })
	if workers > len(tasks) {
		workers = len(tasks)
	}

	results := make([]searchResult, len(tasks))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= len(tasks) || ctx.Err() != nil {
					return
				}
				results[t] = newSearcher().runTask(tasks[t], depth)
			}
		}()
	}
	wg.Wait()

	var best searchResult
	for _, r := range results {
		if r.ok && (!best.ok || r.total < best.total) {
			best = r
		}
	}
	return best
}

// greedySearch is the fallback for many cores: LPT packings into k = 1..n
// sessions, evaluated concurrently, merged in k order.
func greedySearch(ctx context.Context, jobs []coreJob, bist []Test, res Resources, tc *timeCache, workers int) (searchResult, error) {
	durs, err := greedyDurations(jobs, res, tc)
	if err != nil {
		return searchResult{}, err
	}
	n := len(jobs)
	if workers > n {
		workers = n
	}
	results := make([]searchResult, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1))
				if k > n || ctx.Err() != nil {
					return
				}
				results[k-1] = evalPartition(greedyPartition(jobs, durs, k), bist, res, tc)
			}
		}()
	}
	wg.Wait()
	var best searchResult
	for _, r := range results {
		if r.ok && (!best.ok || r.total < best.total) {
			best = r
		}
	}
	return best, nil
}

// forEachPartition enumerates all set partitions of jobs.
func forEachPartition(jobs []coreJob, fn func([][]coreJob)) {
	var rec func(i int, part [][]coreJob)
	rec = func(i int, part [][]coreJob) {
		if i == len(jobs) {
			cp := make([][]coreJob, len(part))
			for k := range part {
				cp[k] = append([]coreJob(nil), part[k]...)
			}
			fn(cp)
			return
		}
		for k := range part {
			part[k] = append(part[k], jobs[i])
			rec(i+1, part)
			part[k] = part[k][:len(part[k])-1]
		}
		part = append(part, []coreJob{jobs[i]})
		rec(i+1, part)
	}
	rec(0, nil)
}

// greedyDurations estimates each job's standalone duration (scan at one
// TAM wire plus functional at the full pin budget) for LPT packing.  An
// estimation failure is propagated rather than silently weighting the job
// at zero cycles, which would mis-sort the packing.
func greedyDurations(jobs []coreJob, res Resources, tc *timeCache) ([]int, error) {
	durs := make([]int, len(jobs))
	for i, j := range jobs {
		d := 0
		if j.scan != nil {
			c, err := tc.scanCycles(j.core, 1)
			if err != nil {
				return nil, fmt.Errorf("sched: scan time of %s: %w", j.core.Name, err)
			}
			d += c
		}
		if j.fn != nil {
			c, err := FuncCycles(j.fn.Patterns, j.fn.NeedFuncPins, res.FuncPins)
			if err != nil {
				return nil, fmt.Errorf("sched: functional time of %s: %w", j.core.Name, err)
			}
			d += c
		}
		durs[i] = d
	}
	return durs, nil
}

// greedyPartition packs jobs with the given durations into k sessions,
// longest-processing-time first.
func greedyPartition(jobs []coreJob, durs []int, k int) [][]coreJob {
	type jt struct {
		job coreJob
		dur int
	}
	items := make([]jt, len(jobs))
	for i, j := range jobs {
		items[i] = jt{j, durs[i]}
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].dur > items[b].dur })
	part := make([][]coreJob, k)
	loads := make([]int, k)
	for _, it := range items {
		best := 0
		for s := 1; s < k; s++ {
			if loads[s] < loads[best] {
				best = s
			}
		}
		part[best] = append(part[best], it.job)
		loads[best] += it.dur
	}
	var nonEmpty [][]coreJob
	for _, p := range part {
		if len(p) > 0 {
			nonEmpty = append(nonEmpty, p)
		}
	}
	return nonEmpty
}
