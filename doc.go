// Package steac is a from-scratch reproduction of "SOC Testing Methodology
// and Practice" (Cheng-Wen Wu, DATE 2005): the STEAC SOC test-integration
// platform, the BRAINS memory-BIST compiler, and the DSC controller test
// chip they were validated on.
//
// The library lives under internal/; the entry points are:
//
//   - internal/core: the STEAC flow (RunFlow) — STIL parsing, BRAINS
//     compilation, session-based test scheduling, test insertion, pattern
//     translation, and tester-model verification.
//   - cmd/dscflow: regenerates every table and figure of the paper.
//   - cmd/steac and cmd/brains: the platform and compiler as CLI tools.
//
// See README.md for the architecture, DESIGN.md for the system inventory
// and substitution rationale, and EXPERIMENTS.md for the paper-vs-measured
// record.  The benchmarks in bench_test.go emit the reproduced quantities
// as benchmark metrics.
package steac
