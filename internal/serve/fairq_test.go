package serve

import (
	"errors"
	"testing"
	"time"
)

// The fair-queue unit tests pin the deficit-round-robin contract the
// admission pipeline is built on: weighted interleaving across lanes,
// per-lane depth bounds (one tenant's burst can never reject another's
// push), FIFO degeneration for a single tenant, and drain-then-stop close
// semantics.

func qtenant(id string, weight int) *tenantState {
	return newTenantState(Tenant{ID: id, Key: id + "-key", Weight: weight})
}

// pushTagged pushes a fresh job tagged with name into t's lane.
func pushTagged(t *testing.T, q *fairQueue, tn *tenantState, tags map[*job]string, name string) {
	t.Helper()
	j := &job{done: make(chan jobResult, 1)}
	if err := q.push(tn, j); err != nil {
		t.Fatalf("push %s: %v", name, err)
	}
	tags[j] = name
}

func popTag(t *testing.T, q *fairQueue, tags map[*job]string) string {
	t.Helper()
	j, ok := q.pop()
	if !ok {
		t.Fatal("pop: queue closed early")
	}
	return tags[j]
}

func TestFairQueueDRROrder(t *testing.T) {
	q := newFairQueue(8)
	a, b := qtenant("drr-a", 2), qtenant("drr-b", 1)
	tags := map[*job]string{}
	for _, n := range []string{"a1", "a2", "a3", "a4"} {
		pushTagged(t, q, a, tags, n)
	}
	for _, n := range []string{"b1", "b2", "b3", "b4"} {
		pushTagged(t, q, b, tags, n)
	}
	// Weight 2 lane a is served two per visit, weight 1 lane b one; when a
	// empties it leaves the ring and b drains alone.
	want := []string{"a1", "a2", "b1", "a3", "a4", "b2", "b3", "b4"}
	for i, w := range want {
		if got := popTag(t, q, tags); got != w {
			t.Fatalf("pop %d = %s, want %s (DRR order)", i, got, w)
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty after drain: %d", q.len())
	}
}

func TestFairQueuePerLaneBounds(t *testing.T) {
	q := newFairQueue(2)
	a, b := qtenant("bound-a", 1), qtenant("bound-b", 1)
	tags := map[*job]string{}
	pushTagged(t, q, a, tags, "a1")
	pushTagged(t, q, a, tags, "a2")
	if err := q.push(a, &job{done: make(chan jobResult, 1)}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push to full lane = %v, want ErrQueueFull", err)
	}
	// The greedy tenant exhausted only its own lane: b still has room.
	pushTagged(t, q, b, tags, "b1")
	if q.len() != 3 {
		t.Fatalf("queued = %d, want 3", q.len())
	}
}

func TestFairQueueSingleLaneFIFO(t *testing.T) {
	q := newFairQueue(8)
	a := qtenant("fifo-a", 3)
	tags := map[*job]string{}
	want := []string{"a1", "a2", "a3", "a4", "a5"}
	for _, n := range want {
		pushTagged(t, q, a, tags, n)
	}
	for i, w := range want {
		if got := popTag(t, q, tags); got != w {
			t.Fatalf("pop %d = %s, want %s (FIFO)", i, got, w)
		}
	}
}

func TestFairQueueClose(t *testing.T) {
	q := newFairQueue(8)
	a := qtenant("close-a", 1)
	tags := map[*job]string{}
	pushTagged(t, q, a, tags, "a1")
	pushTagged(t, q, a, tags, "a2")
	q.close()
	if err := q.push(a, &job{done: make(chan jobResult, 1)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("push after close = %v, want ErrDraining", err)
	}
	// Queued work still drains, then pops report closed.
	for _, w := range []string{"a1", "a2"} {
		if got := popTag(t, q, tags); got != w {
			t.Fatalf("drain pop = %s, want %s", got, w)
		}
	}
	if j, ok := q.pop(); ok {
		t.Fatalf("pop on closed empty queue returned job %v", j)
	}
}

func TestFairQueueCloseWakesBlockedPop(t *testing.T) {
	q := newFairQueue(8)
	done := make(chan bool, 1)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond) // let the pop block
	q.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("blocked pop returned a job after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not wake the blocked pop")
	}
}
