package pattern

import (
	"fmt"
	"strings"

	"steac/internal/stil"
	"steac/internal/testinfo"
)

// FromSTIL builds a Source from explicit STIL vector data, the path taken
// when the ATPG hand-off carries literal test vectors rather than a
// generator annotation.
func FromSTIL(core *testinfo.Core, v *stil.Vectors) (*ExplicitSource, error) {
	var scan []ScanPattern
	for i, sv := range v.Scan {
		p := ScanPattern{}
		for _, ch := range core.ScanChains {
			load, ok := sv.Load[ch.Name]
			if !ok {
				return nil, fmt.Errorf("pattern: scan vector %d missing load for chain %s", i, ch.Name)
			}
			unload, ok := sv.Unload[ch.Name]
			if !ok {
				return nil, fmt.Errorf("pattern: scan vector %d missing unload for chain %s", i, ch.Name)
			}
			p.Load = append(p.Load, bitsOf(load, "1"))
			p.ExpectUnload = append(p.ExpectUnload, bitsOf(unload, "1"))
		}
		p.PI = bitsOf(sv.PI, "1")
		p.ExpectPO = bitsOf(sv.PO, "H")
		scan = append(scan, p)
	}
	var fn []FuncPattern
	for _, fv := range v.Func {
		fn = append(fn, FuncPattern{PI: bitsOf(fv.PI, "1"), ExpectPO: bitsOf(fv.PO, "H")})
	}
	return NewExplicitSource(core, scan, fn)
}

// ToSTIL renders pattern data as STIL vector statements; together with
// stil.EmitWithVectors it writes a fully explicit hand-off file.
func ToSTIL(core *testinfo.Core, scan []ScanPattern, fn []FuncPattern) *stil.Vectors {
	v := &stil.Vectors{}
	for _, p := range scan {
		sv := stil.ScanVector{Load: make(map[string]string), Unload: make(map[string]string)}
		for ci, ch := range core.ScanChains {
			sv.Load[ch.Name] = stringOf(p.Load[ci], "0", "1")
			sv.Unload[ch.Name] = stringOf(p.ExpectUnload[ci], "0", "1")
		}
		sv.PI = stringOf(p.PI, "0", "1")
		sv.PO = stringOf(p.ExpectPO, "L", "H")
		v.Scan = append(v.Scan, sv)
	}
	for _, p := range fn {
		v.Func = append(v.Func, stil.FuncVector{
			PI: stringOf(p.PI, "0", "1"),
			PO: stringOf(p.ExpectPO, "L", "H"),
		})
	}
	return v
}

func bitsOf(s, high string) []bool {
	if s == "" {
		return nil
	}
	out := make([]bool, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = strings.HasPrefix(high, string(s[i]))
	}
	return out
}

func stringOf(bits []bool, lo, hi string) string {
	var sb strings.Builder
	for _, b := range bits {
		if b {
			sb.WriteString(hi)
		} else {
			sb.WriteString(lo)
		}
	}
	return sb.String()
}
