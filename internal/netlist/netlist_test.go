package netlist

import (
	"strings"
	"testing"
)

func TestPortBits(t *testing.T) {
	p := Port{Name: "d", Width: 1}
	if got := p.Bits(); len(got) != 1 || got[0] != "d" {
		t.Fatalf("scalar port bits = %v", got)
	}
	p = Port{Name: "bus", Width: 3}
	got := p.Bits()
	want := []string{"bus[0]", "bus[1]", "bus[2]"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bus bits = %v, want %v", got, want)
		}
	}
}

func TestAddPortDuplicate(t *testing.T) {
	m := NewModule("m")
	if err := m.AddPort("a", In, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.AddPort("a", Out, 1); err == nil {
		t.Fatal("duplicate port accepted")
	}
	if err := m.AddPort("w", In, 0); err == nil {
		t.Fatal("zero-width port accepted")
	}
}

func TestAddInstanceDuplicate(t *testing.T) {
	m := NewModule("m")
	if _, err := m.AddInstance("u1", CellInv, map[string]string{"A": "a", "Z": "z"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddInstance("u1", CellInv, nil); err == nil {
		t.Fatal("duplicate instance accepted")
	}
	if m.Instance("u1") == nil {
		t.Fatal("instance lookup failed")
	}
}

func TestDesignAreaHierarchy(t *testing.T) {
	d := NewDesign("d", nil)
	leaf := NewModule("leaf")
	leaf.MustPort("a", In, 1)
	leaf.MustPort("z", Out, 1)
	leaf.MustInstance("i0", CellInv, map[string]string{"A": "a", "Z": "z"})
	leaf.MustInstance("i1", CellNand2, map[string]string{"A": "a", "B": "a", "Z": "n"})
	d.MustAddModule(leaf)

	top := NewModule("top")
	top.MustPort("a", In, 1)
	top.MustPort("z", Out, 1)
	top.MustInstance("l0", "leaf", map[string]string{"a": "a", "z": "m"})
	top.MustInstance("l1", "leaf", map[string]string{"a": "m", "z": "z"})
	d.MustAddModule(top)
	d.Top = "top"

	a, err := d.Area("top")
	if err != nil {
		t.Fatal(err)
	}
	if a != 4 { // 2 leaves x (INV 1 + NAND2 1)
		t.Fatalf("area = %v, want 4", a)
	}
	n, err := d.CellCount("top")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("cell count = %d, want 4", n)
	}
}

func TestAreaBehavioralAndErrors(t *testing.T) {
	d := NewDesign("d", nil)
	ip := NewModule("ip")
	ip.Behavioral = true
	ip.AreaOverride = 1234.5
	d.MustAddModule(ip)
	a, err := d.Area("ip")
	if err != nil {
		t.Fatal(err)
	}
	if a != 1234.5 {
		t.Fatalf("behavioral area = %v", a)
	}
	if _, err := d.Area("nope"); err == nil {
		t.Fatal("unknown module accepted")
	}
	// Recursive instantiation must be detected.
	rec := NewModule("rec")
	rec.MustInstance("self", "rec", nil)
	d.MustAddModule(rec)
	if _, err := d.Area("rec"); err == nil {
		t.Fatal("recursive design accepted")
	}
}

func TestSimCombinational(t *testing.T) {
	d := NewDesign("d", nil)
	m := NewModule("xorgate")
	m.MustPort("a", In, 1)
	m.MustPort("b", In, 1)
	m.MustPort("z", Out, 1)
	// z = a XOR b out of NAND gates.
	m.MustInstance("n1", CellNand2, map[string]string{"A": "a", "B": "b", "Z": "t1"})
	m.MustInstance("n2", CellNand2, map[string]string{"A": "a", "B": "t1", "Z": "t2"})
	m.MustInstance("n3", CellNand2, map[string]string{"A": "t1", "B": "b", "Z": "t3"})
	m.MustInstance("n4", CellNand2, map[string]string{"A": "t2", "B": "t3", "Z": "z"})
	d.MustAddModule(m)

	sim, err := NewSimulator(d, "xorgate")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ a, b, z bool }{
		{false, false, false}, {false, true, true}, {true, false, true}, {true, true, false},
	} {
		sim.Set("a", tc.a)
		sim.Set("b", tc.b)
		if err := sim.Settle(); err != nil {
			t.Fatal(err)
		}
		if got := sim.Get("z"); got != tc.z {
			t.Fatalf("xor(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.z)
		}
	}
}

func TestSimShiftRegister(t *testing.T) {
	d := NewDesign("d", nil)
	m := NewModule("sr")
	m.MustPort("si", In, 1)
	m.MustPort("ck", In, 1)
	m.MustPort("so", Out, 1)
	m.MustInstance("f0", CellDFF, map[string]string{"D": "si", "CK": "ck", "Q": "q0"})
	m.MustInstance("f1", CellDFF, map[string]string{"D": "q0", "CK": "ck", "Q": "q1"})
	m.MustInstance("f2", CellDFF, map[string]string{"D": "q1", "CK": "ck", "Q": "so"})
	d.MustAddModule(m)
	sim, err := NewSimulator(d, "sr")
	if err != nil {
		t.Fatal(err)
	}
	// Shift in 1,0,1 and observe it appear at so after 3 more clocks.
	pattern := []bool{true, false, true}
	var got []bool
	for i := 0; i < 6; i++ {
		v := false
		if i < len(pattern) {
			v = pattern[i]
		}
		sim.Set("si", v)
		if err := sim.Tick("ck"); err != nil {
			t.Fatal(err)
		}
		got = append(got, sim.Get("so"))
	}
	want := []bool{false, false, true, false, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shift out = %v, want %v", got, want)
		}
	}
}

func TestSimScanDFFAndReset(t *testing.T) {
	d := NewDesign("d", nil)
	m := NewModule("m")
	for _, p := range []string{"d", "si", "se", "ck", "r"} {
		m.MustPort(p, In, 1)
	}
	m.MustPort("q", Out, 1)
	m.MustPort("qr", Out, 1)
	m.MustInstance("sf", CellSDFF, map[string]string{"D": "d", "SI": "si", "SE": "se", "CK": "ck", "Q": "q"})
	m.MustInstance("rf", CellDFFR, map[string]string{"D": "d", "CK": "ck", "R": "r", "Q": "qr"})
	d.MustAddModule(m)
	sim, err := NewSimulator(d, "m")
	if err != nil {
		t.Fatal(err)
	}
	sim.Set("d", true)
	sim.Set("se", false)
	if err := sim.Tick("ck"); err != nil {
		t.Fatal(err)
	}
	if !sim.Get("q") || !sim.Get("qr") {
		t.Fatal("functional capture failed")
	}
	sim.Set("se", true)
	sim.Set("si", false)
	if err := sim.Tick("ck"); err != nil {
		t.Fatal(err)
	}
	if sim.Get("q") {
		t.Fatal("scan shift did not override D")
	}
	sim.Set("r", true)
	if err := sim.Tick("ck"); err != nil {
		t.Fatal(err)
	}
	if sim.Get("qr") {
		t.Fatal("reset did not clear DFFR")
	}
}

func TestSimGatedClock(t *testing.T) {
	// A flop behind an AND clock gate must only capture when enabled.
	d := NewDesign("d", nil)
	m := NewModule("m")
	for _, p := range []string{"d", "en", "ck"} {
		m.MustPort(p, In, 1)
	}
	m.MustPort("q", Out, 1)
	m.MustInstance("cg", CellAnd2, map[string]string{"A": "ck", "B": "en", "Z": "gck"})
	m.MustInstance("ff", CellDFF, map[string]string{"D": "d", "CK": "gck", "Q": "q"})
	d.MustAddModule(m)
	sim, err := NewSimulator(d, "m")
	if err != nil {
		t.Fatal(err)
	}
	sim.Set("d", true)
	sim.Set("en", false)
	if err := sim.Tick("ck"); err != nil {
		t.Fatal(err)
	}
	if sim.Get("q") {
		t.Fatal("gated flop captured while disabled")
	}
	sim.Set("en", true)
	if err := sim.Tick("ck"); err != nil {
		t.Fatal(err)
	}
	if !sim.Get("q") {
		t.Fatal("gated flop did not capture while enabled")
	}
}

func TestSimCombinationalLoopDetected(t *testing.T) {
	d := NewDesign("d", nil)
	m := NewModule("loop")
	m.MustPort("z", Out, 1)
	m.MustInstance("i", CellInv, map[string]string{"A": "z", "Z": "z"})
	d.MustAddModule(m)
	if _, err := NewSimulator(d, "loop"); err == nil {
		t.Fatal("ring oscillator settled")
	}
}

func TestSimBehavioralRejected(t *testing.T) {
	d := NewDesign("d", nil)
	ip := NewModule("ip")
	ip.Behavioral = true
	d.MustAddModule(ip)
	if _, err := NewSimulator(d, "ip"); err == nil {
		t.Fatal("behavioral module simulated")
	}
}

func TestLintCleanAndDirty(t *testing.T) {
	d := NewDesign("d", nil)
	m := NewModule("m")
	m.MustPort("a", In, 1)
	m.MustPort("z", Out, 1)
	m.MustInstance("u", CellInv, map[string]string{"A": "a", "Z": "z"})
	d.MustAddModule(m)
	if issues := d.Lint(); len(issues) != 0 {
		t.Fatalf("clean design flagged: %v", issues)
	}

	bad := NewModule("bad")
	bad.MustPort("z", Out, 1)
	bad.MustInstance("u0", CellInv, map[string]string{"A": "floating", "Z": "z"})
	bad.MustInstance("u1", CellInv, map[string]string{"A": "floating", "Z": "z"}) // double driver
	bad.MustInstance("u2", "ghost", nil)                                          // unknown module
	bad.MustInstance("u3", CellInv, map[string]string{"X": "z"})                  // bad port
	d.MustAddModule(bad)
	issues := d.Lint()
	kinds := make(map[string]int)
	for _, i := range issues {
		kinds[i.Kind]++
	}
	for _, k := range []string{"undriven", "multidriven", "unknown-ref", "bad-port"} {
		if kinds[k] == 0 {
			t.Fatalf("lint missed %q; issues: %v", k, issues)
		}
	}
}

func TestEmitVerilog(t *testing.T) {
	d := NewDesign("d", nil)
	m := NewModule("m")
	m.MustPort("a", In, 2)
	m.MustPort("z", Out, 1)
	m.MustInstance("u", CellAnd2, map[string]string{"A": "a[0]", "B": "a[1]", "Z": "z"})
	d.MustAddModule(m)
	s, err := d.EmitVerilogString()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"module m(a, z);", "input [1:0] a;", "output z;", "AND2 u", "endmodule"} {
		if !strings.Contains(s, want) {
			t.Fatalf("emitted verilog missing %q:\n%s", want, s)
		}
	}
}

func TestMuxTree(t *testing.T) {
	d := NewDesign("d", nil)
	m := NewModule("mux8")
	m.MustPort("in", In, 8)
	m.MustPort("sel", In, 3)
	m.MustPort("z", Out, 1)
	inputs := Port{Name: "in", Width: 8}.Bits()
	sel := Port{Name: "sel", Width: 3}.Bits()
	n, err := AddMuxTree(m, "t", inputs, sel, "z")
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("8:1 mux tree used %d MUX2 cells, want 7", n)
	}
	d.MustAddModule(m)
	if issues := d.Lint(); len(issues) != 0 {
		t.Fatalf("mux tree lint: %v", issues)
	}
	sim, err := NewSimulator(d, "mux8")
	if err != nil {
		t.Fatal(err)
	}
	for code := 0; code < 8; code++ {
		in := make([]bool, 8)
		in[code] = true
		sim.SetBus("in", in)
		selBits := []bool{code&1 != 0, code&2 != 0, code&4 != 0}
		sim.SetBus("sel", selBits)
		if err := sim.Settle(); err != nil {
			t.Fatal(err)
		}
		if !sim.Get("z") {
			t.Fatalf("mux select %d did not route one-hot input", code)
		}
	}
}

func TestDecoder(t *testing.T) {
	d := NewDesign("d", nil)
	m := NewModule("dec")
	m.MustPort("sel", In, 2)
	m.MustPort("en", In, 1)
	m.MustPort("y", Out, 4)
	if _, err := AddDecoder(m, "dc", Port{Name: "sel", Width: 2}.Bits(), "en",
		Port{Name: "y", Width: 4}.Bits()); err != nil {
		t.Fatal(err)
	}
	d.MustAddModule(m)
	sim, err := NewSimulator(d, "dec")
	if err != nil {
		t.Fatal(err)
	}
	sim.Set("en", true)
	for code := 0; code < 4; code++ {
		sim.SetBus("sel", []bool{code&1 != 0, code&2 != 0})
		if err := sim.Settle(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			want := i == code
			if got := sim.GetBus("y", 4)[i]; got != want {
				t.Fatalf("decoder(%d) y[%d] = %v", code, i, got)
			}
		}
	}
	sim.Set("en", false)
	if err := sim.Settle(); err != nil {
		t.Fatal(err)
	}
	for i, v := range sim.GetBus("y", 4) {
		if v {
			t.Fatalf("decoder disabled but y[%d] high", i)
		}
	}
}

func TestAndOrTrees(t *testing.T) {
	d := NewDesign("d", nil)
	m := NewModule("trees")
	m.MustPort("in", In, 5)
	m.MustPort("all", Out, 1)
	m.MustPort("any", Out, 1)
	in := Port{Name: "in", Width: 5}.Bits()
	if _, err := AddAndTree(m, "a", in, "all"); err != nil {
		t.Fatal(err)
	}
	if _, err := AddOrTree(m, "o", in, "any"); err != nil {
		t.Fatal(err)
	}
	d.MustAddModule(m)
	sim, err := NewSimulator(d, "trees")
	if err != nil {
		t.Fatal(err)
	}
	sim.SetBus("in", []bool{true, true, true, true, true})
	if err := sim.Settle(); err != nil {
		t.Fatal(err)
	}
	if !sim.Get("all") || !sim.Get("any") {
		t.Fatal("all-ones: want all=1 any=1")
	}
	sim.SetBus("in", []bool{false, false, true, false, false})
	if err := sim.Settle(); err != nil {
		t.Fatal(err)
	}
	if sim.Get("all") || !sim.Get("any") {
		t.Fatal("one-hot: want all=0 any=1")
	}
	sim.SetBus("in", make([]bool, 5))
	if err := sim.Settle(); err != nil {
		t.Fatal(err)
	}
	if sim.Get("all") || sim.Get("any") {
		t.Fatal("all-zero: want all=0 any=0")
	}
}

func TestLoadState(t *testing.T) {
	d := NewDesign("d", nil)
	m := NewModule("m")
	m.MustPort("ck", In, 1)
	m.MustPort("q", Out, 1)
	m.MustInstance("ff", CellDFF, map[string]string{"D": "q", "CK": "ck", "Q": "q"})
	d.MustAddModule(m)
	sim, err := NewSimulator(d, "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.LoadState("ff", true); err != nil {
		t.Fatal(err)
	}
	if !sim.Get("q") {
		t.Fatal("LoadState did not expose state")
	}
	if err := sim.LoadState("nope", true); err == nil {
		t.Fatal("LoadState accepted unknown cell")
	}
}

func TestCellHistogram(t *testing.T) {
	d := NewDesign("d", nil)
	leaf := NewModule("leaf")
	leaf.MustInstance("i", CellInv, map[string]string{"A": "a", "Z": "b"})
	leaf.MustInstance("n", CellNand2, map[string]string{"A": "a", "B": "b", "Z": "c"})
	d.MustAddModule(leaf)
	top := NewModule("top")
	top.MustInstance("l0", "leaf", nil)
	top.MustInstance("l1", "leaf", nil)
	top.MustInstance("ff", CellDFF, map[string]string{"D": "c", "CK": "ck", "Q": "q"})
	d.MustAddModule(top)
	h, err := d.CellHistogram("top")
	if err != nil {
		t.Fatal(err)
	}
	if h[CellInv] != 2 || h[CellNand2] != 2 || h[CellDFF] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	if _, err := d.CellHistogram("ghost"); err == nil {
		t.Fatal("unknown module accepted")
	}
	ip := NewModule("ip")
	ip.Behavioral = true
	d.MustAddModule(ip)
	h2, err := d.CellHistogram("ip")
	if err != nil || len(h2) != 0 {
		t.Fatalf("behavioral histogram = %v, %v", h2, err)
	}
}

func TestMergeAndClone(t *testing.T) {
	a := NewDesign("a", nil)
	m := NewModule("m")
	m.Attrs["k"] = "v"
	m.MustPort("x", In, 2)
	m.MustInstance("u", CellBuf, map[string]string{"A": "x[0]", "Z": "y"})
	a.MustAddModule(m)

	b := NewDesign("b", nil)
	if err := b.Merge(a); err != nil {
		t.Fatal(err)
	}
	got := b.Module("m")
	if got == nil || got.Attrs["k"] != "v" || got.Instance("u") == nil {
		t.Fatalf("merge lost content: %+v", got)
	}
	// Mutating the clone must not touch the original.
	got.Attrs["k"] = "changed"
	if a.Module("m").Attrs["k"] != "v" {
		t.Fatal("merge aliased the original module")
	}
	if err := b.Merge(a); err == nil {
		t.Fatal("collision accepted")
	}
}

func TestEmitBehavioralModule(t *testing.T) {
	d := NewDesign("d", nil)
	ip := NewModule("blackbox")
	ip.Behavioral = true
	ip.AreaOverride = 321
	ip.MustPort("clk", In, 1)
	d.MustAddModule(ip)
	s, err := d.EmitVerilogString()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "behavioral IP block, 321") {
		t.Fatalf("behavioral banner missing:\n%s", s)
	}
}

func TestBuilderErrors(t *testing.T) {
	m := NewModule("m")
	if _, err := AddMuxTree(m, "t", nil, []string{"s"}, "z"); err == nil {
		t.Fatal("empty mux inputs accepted")
	}
	if _, err := AddMuxTree(m, "t", []string{"a", "b", "c"}, []string{"s"}, "z"); err == nil {
		t.Fatal("too many mux inputs accepted")
	}
	if _, err := AddAndTree(m, "t", nil, "z"); err == nil {
		t.Fatal("empty and-tree accepted")
	}
	if _, err := AddDecoder(m, "d", []string{"s"}, "", []string{"a", "b", "c"}); err == nil {
		t.Fatal("oversubscribed decoder accepted")
	}
	if _, err := AddRegister(m, "r", "ck", []string{"d0"}, []string{"q0", "q1"}); err == nil {
		t.Fatal("mismatched register accepted")
	}
}

func TestAddRegister(t *testing.T) {
	d := NewDesign("d", nil)
	m := NewModule("m")
	m.MustPort("ck", In, 1)
	m.MustPort("d", In, 2)
	m.MustPort("q", Out, 2)
	if _, err := AddRegister(m, "r", "ck", []string{"d[0]", "d[1]"}, []string{"q[0]", "q[1]"}); err != nil {
		t.Fatal(err)
	}
	d.MustAddModule(m)
	sim, err := NewSimulator(d, "m")
	if err != nil {
		t.Fatal(err)
	}
	sim.SetBus("d", []bool{true, false})
	if err := sim.Tick("ck"); err != nil {
		t.Fatal(err)
	}
	q := sim.GetBus("q", 2)
	if !q[0] || q[1] {
		t.Fatalf("register captured %v", q)
	}
}

func TestSingleInputTrees(t *testing.T) {
	d := NewDesign("d", nil)
	m := NewModule("m")
	m.MustPort("a", In, 1)
	m.MustPort("x", Out, 1)
	m.MustPort("y", Out, 1)
	if _, err := AddAndTree(m, "t1", []string{"a"}, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := AddOrTree(m, "t2", []string{"a"}, "y"); err != nil {
		t.Fatal(err)
	}
	d.MustAddModule(m)
	sim, err := NewSimulator(d, "m")
	if err != nil {
		t.Fatal(err)
	}
	sim.Set("a", true)
	if err := sim.Settle(); err != nil {
		t.Fatal(err)
	}
	if !sim.Get("x") || !sim.Get("y") {
		t.Fatal("single-input trees should buffer")
	}
}

func TestSimulatorNetsAndBitName(t *testing.T) {
	d := NewDesign("d", nil)
	m := NewModule("m")
	m.MustPort("a", In, 1)
	m.MustPort("z", Out, 1)
	m.MustInstance("u", CellInv, map[string]string{"A": "a", "Z": "z"})
	d.MustAddModule(m)
	sim, err := NewSimulator(d, "m")
	if err != nil {
		t.Fatal(err)
	}
	nets := sim.Nets()
	if len(nets) < 2 {
		t.Fatalf("nets = %v", nets)
	}
	if sim.GateCount() != 1 {
		t.Fatalf("gate count = %d", sim.GateCount())
	}
	if BitName("x", 0, 1) != "x" || BitName("x", 2, 4) != "x[2]" {
		t.Fatal("BitName")
	}
	if In.String() != "input" || Out.String() != "output" || InOut.String() != "inout" {
		t.Fatal("direction names")
	}
}

func TestFlattenUnknownAndUnconnected(t *testing.T) {
	d := NewDesign("d", nil)
	sub := NewModule("sub")
	sub.MustPort("a", In, 1)
	sub.MustPort("z", Out, 1)
	sub.MustInstance("u", CellInv, map[string]string{"A": "a", "Z": "z"})
	d.MustAddModule(sub)
	top := NewModule("top")
	top.MustPort("z", Out, 1)
	// Input "a" left unconnected: floats to 0, so z = 1.
	top.MustInstance("s", "sub", map[string]string{"z": "z"})
	d.MustAddModule(top)
	d.Top = "top"
	sim, err := NewSimulator(d, "top")
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Get("z") {
		t.Fatal("unconnected input should float low")
	}
	ghost := NewModule("ghost")
	ghost.MustInstance("g", "missing", nil)
	d.MustAddModule(ghost)
	if _, err := NewSimulator(d, "ghost"); err == nil {
		t.Fatal("unknown module simulated")
	}
	if _, err := NewSimulator(d, "nothere"); err == nil {
		t.Fatal("unknown top simulated")
	}
}
