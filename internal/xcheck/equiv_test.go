package xcheck

import (
	"context"
	"strings"
	"testing"

	"steac/internal/bist"
	"steac/internal/march"
	"steac/internal/memory"
	"steac/internal/netlist"
)

func mustAlg(t *testing.T, name string) march.Algorithm {
	t.Helper()
	alg, ok := march.ByName(name)
	if !ok {
		t.Fatalf("catalog has no %s", name)
	}
	return alg
}

func TestVerifyBISTCatalogEquivalence(t *testing.T) {
	cases := []struct {
		name string
		alg  string
		mems []memory.Config
	}{
		{"marchx-1p", "MATS+", []memory.Config{
			{Name: "m0", Words: 16, Bits: 4, Kind: memory.SinglePort}}},
		{"marchc-mixed", "March C-", []memory.Config{
			{Name: "m0", Words: 16, Bits: 4, Kind: memory.SinglePort},
			{Name: "m1", Words: 8, Bits: 6, Kind: memory.SinglePort}}},
		{"marchx-2p", "March X", []memory.Config{
			{Name: "m0", Words: 16, Bits: 5, Kind: memory.TwoPort}}},
		{"marchy-mixed-2p", "March Y", []memory.Config{
			{Name: "m0", Words: 12, Bits: 4, Kind: memory.TwoPort},
			{Name: "m1", Words: 16, Bits: 3, Kind: memory.SinglePort}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := VerifyBISTContext(context.Background(), tc.name, mustAlg(t, tc.alg), tc.mems, Options{})
			if err != nil {
				t.Fatalf("VerifyBIST: %v", err)
			}
			for _, m := range res.Mismatches {
				t.Errorf("mismatch: %s", m)
			}
			for _, n := range res.Notes {
				t.Errorf("note: %s", n)
			}
			if !res.Pass {
				t.Fatalf("not equivalent: %s", res.String())
			}
			if res.Checks == 0 || res.Cycles == 0 {
				t.Fatalf("no work done: %s", res.String())
			}
			// Padded session length must match the analytic formula per
			// session (sessions = backgrounds x port selects).
			alg := mustAlg(t, tc.alg)
			maxW := 0
			anyTP := false
			for _, cfg := range PadConfigs(tc.mems) {
				if cfg.Words > maxW {
					maxW = cfg.Words
				}
				anyTP = anyTP || cfg.Kind == memory.TwoPort
			}
			sessions := 2
			if anyTP {
				sessions = 4
			}
			if res.Sessions != sessions {
				t.Errorf("sessions = %d, want %d", res.Sessions, sessions)
			}
			if want := sessions * alg.Complexity() * maxW; res.Cycles != want {
				t.Errorf("cycles = %d, want %d", res.Cycles, want)
			}
		})
	}
}

// The comparator must actually bite: inject a stuck-at fault into the
// flattened bench and drive the same differential session — the run must
// record pin mismatches against the March reference.
func TestBISTSessionDetectsInjectedFault(t *testing.T) {
	alg := mustAlg(t, "March X")
	mems := PadConfigs([]memory.Config{{Name: "m0", Words: 8, Bits: 2, Kind: memory.SinglePort}})
	d, err := bist.BuildVerifyBench(alg, mems)
	if err != nil {
		t.Fatalf("bench: %v", err)
	}
	sim, err := netlist.NewCompiledSim(d, "bench")
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	faults := sim.Faults()
	if len(faults) == 0 {
		t.Fatal("no fault sites")
	}
	detected := 0
	for _, f := range []netlist.SAFault{faults[0], faults[len(faults)/2], faults[len(faults)-1]} {
		fs := sim.Clone()
		if err := fs.Inject(f.Gate, f.Port, f.Value); err != nil {
			t.Fatalf("inject %v: %v", f, err)
		}
		res := EquivResult{Name: "faulty"}
		pins := newBenchPins(fs, mems)
		runBISTSession(context.Background(), fs, pins, alg, mems, false, false, alg.Complexity()*mems[0].Words, &res, 10)
		if len(res.Mismatches) > 0 || len(res.Notes) > 0 {
			detected++
		}
	}
	if detected == 0 {
		t.Error("no injected fault produced a differential mismatch")
	}
}

func TestVerifyControllerEquivalence(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		res, err := VerifyControllerContext(context.Background(), "ctl", n, Options{})
		if err != nil {
			t.Fatalf("VerifyControllerContext(context.Background(), %d): %v", n, err)
		}
		for _, m := range res.Mismatches {
			t.Errorf("n=%d mismatch: %s", n, m)
		}
		for _, note := range res.Notes {
			t.Errorf("n=%d note: %s", n, note)
		}
		if !res.Pass {
			t.Fatalf("n=%d not equivalent: %s", n, res.String())
		}
		if res.Sessions != 2 {
			t.Errorf("n=%d sessions = %d, want 2", n, res.Sessions)
		}
	}
}

func TestEquivResultString(t *testing.T) {
	r := EquivResult{Name: "x", Pass: true, Sessions: 2, Cycles: 10, Checks: 100}
	if !strings.Contains(r.String(), "EQUIVALENT") {
		t.Errorf("String() = %q", r.String())
	}
	r.Pass = false
	if !strings.Contains(r.String(), "MISMATCH") {
		t.Errorf("String() = %q", r.String())
	}
}
