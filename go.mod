module steac

go 1.22
