// Package bench defines the machine-readable benchmark trajectory of the
// STEAC platform: a fixed suite of paper-table operations (schedule search,
// March fault simulation, the BIST engine, gate-level cross-check
// campaigns, pattern translation, the insertion flow), a schema-versioned
// JSON encoding of one run, and the comparison logic `cmd/benchdiff` uses
// to flag regressions between two runs.
//
// The JSON file is deterministic modulo the timing fields (wall_ns,
// work_per_sec, allocs_per_op, bytes_per_op): every other field — the op
// list, iteration counts, worker counts, work totals and the per-op result
// fingerprint in `check` — is byte-identical across runs of the same tree.
// Scrub zeroes exactly the timing fields, which is what the determinism
// tests compare.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
)

// SchemaVersion identifies the file layout; bump it when fields change
// meaning so benchdiff can refuse cross-schema comparisons.
const SchemaVersion = "steac-bench/v1"

// File is one benchmark run: provenance plus the per-op results.
type File struct {
	Schema    string `json:"schema"`
	GitRev    string `json:"git_rev"`
	GoVersion string `json:"go_version"`
	// MaxProcs is GOMAXPROCS at run time (per-op worker counts are on the
	// ops themselves).
	MaxProcs int  `json:"max_procs"`
	Short    bool `json:"short"`
	Ops      []Op `json:"ops"`
}

// Op is the result of one suite operation.
type Op struct {
	// Op is the stable operation name (e.g. "march.coverage"); benchdiff
	// matches ops between files by this name.
	Op string `json:"op"`
	// Iters is how many measured runs contributed; WallNs is the fastest.
	Iters   int `json:"iters"`
	Workers int `json:"workers"`
	// WallNs is the best per-iteration wall time in nanoseconds.
	WallNs int64 `json:"wall_ns"`
	// AllocsPerOp / BytesPerOp are heap allocation deltas of the best run.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Work is the op's principal quantity (cycles simulated, faults
	// injected, ...) in WorkUnit; WorkPerSec is Work over WallNs.
	Work       int64   `json:"work"`
	WorkUnit   string  `json:"work_unit"`
	WorkPerSec float64 `json:"work_per_sec"`
	// Check fingerprints the op's functional result (total cycles, fault
	// coverage, ...); a mismatch between two runs means the code under
	// benchmark changed behaviour, not just speed.
	Check string `json:"check"`
}

// Canonical renders the file in its canonical byte form: ops sorted by
// name, two-space indented JSON, trailing newline.  Determinism tests and
// the committed BENCH files both use this form.
func (f *File) Canonical() ([]byte, error) {
	sort.Slice(f.Ops, func(i, j int) bool { return f.Ops[i].Op < f.Ops[j].Op })
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Scrub zeroes the timing fields in place, leaving only the deterministic
// ones; two Scrubbed runs of the same tree must be byte-identical.
func (f *File) Scrub() {
	for i := range f.Ops {
		f.Ops[i].WallNs = 0
		f.Ops[i].AllocsPerOp = 0
		f.Ops[i].BytesPerOp = 0
		f.Ops[i].WorkPerSec = 0
	}
}

// Parse decodes a BENCH JSON file and validates its schema tag.
func Parse(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	if f.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: schema %q, want %q", f.Schema, SchemaVersion)
	}
	return &f, nil
}

// Load reads and parses a BENCH JSON file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// NewFile returns an empty run with provenance filled in.
func NewFile(short bool) *File {
	return &File{
		Schema:    SchemaVersion,
		GitRev:    gitRev(),
		GoVersion: runtime.Version(),
		MaxProcs:  runtime.GOMAXPROCS(0),
		Short:     short,
	}
}

// gitRev reads the VCS revision the binary was built from (stamped by the
// go tool for main packages built inside the repository); "unknown" when
// absent, e.g. in test binaries.
func gitRev() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, modified := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if modified {
		rev += "+dirty"
	}
	return rev
}
