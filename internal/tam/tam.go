// Package tam models the test access mechanism of STEAC (Fig. 1 "TAM
// Generator"): the multiplexed TAM bus that routes chip-level test data
// pins to the wrapped cores session by session, and the structural
// generation of the TAM multiplexer whose hardware cost the paper reports
// (about 132 NAND2-equivalent gates on the DSC chip).
package tam

import (
	"fmt"
	"sort"

	"steac/internal/netlist"
)

// Route assigns a contiguous slice of the chip's TAM pins to one core
// during one session.
type Route struct {
	Session int
	Core    string
	// Width is the number of TAM wires (each wire = one wsi pin + one wso
	// pin at chip level).
	Width int
	// PinLo is the first TAM wire index used.
	PinLo int
}

// Spec is the complete TAM configuration for a chip.
type Spec struct {
	// Width is the chip-level TAM width in wires.
	Width    int
	Sessions int
	Routes   []Route
}

// Validate checks that routes stay inside the bus and never overlap within
// a session.
func (s Spec) Validate() error {
	if s.Width < 1 {
		return fmt.Errorf("tam: width %d < 1", s.Width)
	}
	if s.Sessions < 1 {
		return fmt.Errorf("tam: %d sessions", s.Sessions)
	}
	used := make(map[int][]bool) // session -> wire usage
	for _, r := range s.Routes {
		if r.Session < 0 || r.Session >= s.Sessions {
			return fmt.Errorf("tam: route for %s names session %d of %d", r.Core, r.Session, s.Sessions)
		}
		if r.Width < 1 || r.PinLo < 0 || r.PinLo+r.Width > s.Width {
			return fmt.Errorf("tam: route for %s (%d+%d) exceeds bus width %d",
				r.Core, r.PinLo, r.Width, s.Width)
		}
		u := used[r.Session]
		if u == nil {
			u = make([]bool, s.Width)
			used[r.Session] = u
		}
		for w := r.PinLo; w < r.PinLo+r.Width; w++ {
			if u[w] {
				return fmt.Errorf("tam: session %d wire %d double-booked", r.Session, w)
			}
			u[w] = true
		}
	}
	return nil
}

// CoresOf returns the distinct core names routed, sorted.
func (s Spec) CoresOf() []string {
	set := make(map[string]bool)
	for _, r := range s.Routes {
		set[r.Core] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RouteFor returns the route of a core in a session, if any.
func (s Spec) RouteFor(session int, core string) (Route, bool) {
	for _, r := range s.Routes {
		if r.Session == session && r.Core == core {
			return r, true
		}
	}
	return Route{}, false
}

// sessionBits returns the width of the session-select input.
func (s Spec) sessionBits() int {
	b := 0
	for v := s.Sessions - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// Generate builds the TAM multiplexer module: chip TAM-in pins fan out to
// the cores' wsi terminals (gated per session so inactive cores see 0), and
// each chip TAM-out pin muxes among the wso terminals of the cores that own
// that wire in some session.
//
// Ports: TIN[width] (chip TAM in), SESS[sessionBits] (session select from
// the test controller), per-core buses <core>_WSI[w] (out) and
// <core>_WSO[w] (in), and TOUT[width] (chip TAM out).
func Generate(d *netlist.Design, name string, spec Spec) (*netlist.Module, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := netlist.NewModule(name)
	m.MustPort("TIN", netlist.In, spec.Width)
	m.MustPort("SESS", netlist.In, spec.sessionBits())
	m.MustPort("TOUT", netlist.Out, spec.Width)

	// Per-core route bookkeeping: width of the core-side bus is the
	// maximum width it is ever granted.
	coreWidth := make(map[string]int)
	for _, r := range spec.Routes {
		if r.Width > coreWidth[r.Core] {
			coreWidth[r.Core] = r.Width
		}
	}
	cores := spec.CoresOf()
	for _, c := range cores {
		m.MustPort(c+"_WSI", netlist.Out, coreWidth[c])
		m.MustPort(c+"_WSO", netlist.In, coreWidth[c])
	}

	// Session one-hot decode, shared.
	hot := make([]string, spec.Sessions)
	for i := range hot {
		hot[i] = fmt.Sprintf("sess%d", i)
		m.AddNet(hot[i])
	}
	sessSel := netlist.Port{Name: "SESS", Width: spec.sessionBits()}.Bits()
	if _, err := netlist.AddDecoder(m, "sdec", sessSel, "", hot); err != nil {
		return nil, err
	}

	// Core-side WSI: for each core wire, OR over sessions of
	// (session-hot AND chip TIN pin routed to it).
	for _, c := range cores {
		for w := 0; w < coreWidth[c]; w++ {
			var terms []string
			for _, r := range spec.Routes {
				if r.Core != c || w >= r.Width {
					continue
				}
				t := fmt.Sprintf("%s_i%d_s%d", c, w, r.Session)
				m.AddNet(t)
				m.MustInstance("g_"+t, netlist.CellAnd2, map[string]string{
					"A": hot[r.Session],
					"B": netlist.BitName("TIN", r.PinLo+w, spec.Width),
					"Z": t,
				})
				terms = append(terms, t)
			}
			out := netlist.BitName(c+"_WSI", w, coreWidth[c])
			if len(terms) == 0 {
				m.MustInstance("tie_"+c+fmt.Sprint(w), netlist.CellTie0,
					map[string]string{"Z": out})
				continue
			}
			if _, err := netlist.AddOrTree(m, "o_"+c+fmt.Sprint(w), terms, out); err != nil {
				return nil, err
			}
		}
	}

	// Chip-side TOUT: per chip wire, OR over sessions of (hot AND owning
	// core's wso).
	for w := 0; w < spec.Width; w++ {
		var terms []string
		for _, r := range spec.Routes {
			if w < r.PinLo || w >= r.PinLo+r.Width {
				continue
			}
			t := fmt.Sprintf("t%d_s%d", w, r.Session)
			m.AddNet(t)
			m.MustInstance("g_"+t, netlist.CellAnd2, map[string]string{
				"A": hot[r.Session],
				"B": netlist.BitName(r.Core+"_WSO", w-r.PinLo, coreWidth[r.Core]),
				"Z": t,
			})
			terms = append(terms, t)
		}
		out := netlist.BitName("TOUT", w, spec.Width)
		if len(terms) == 0 {
			m.MustInstance(fmt.Sprintf("tieo%d", w), netlist.CellTie0,
				map[string]string{"Z": out})
			continue
		}
		if _, err := netlist.AddOrTree(m, fmt.Sprintf("ot%d", w), terms, out); err != nil {
			return nil, err
		}
	}
	if err := d.AddModule(m); err != nil {
		return nil, err
	}
	return m, nil
}
