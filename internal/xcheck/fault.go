package xcheck

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"steac/internal/bist"
	"steac/internal/march"
	"steac/internal/memory"
	"steac/internal/netlist"
	"steac/internal/pattern"
	"steac/internal/testinfo"
)

// sampleFaults applies the MaxFaults cap by uniform stride over the site
// list (never silently: CampaignResult reports Sites vs Total).  A non-zero
// seed rotates the stride's starting point through the universe, so repeated
// sampled campaigns with different seeds cover different sites while each
// remains fully deterministic.
func sampleFaults(faults []netlist.SAFault, max int, seed int64) []netlist.SAFault {
	if max <= 0 || len(faults) <= max {
		return faults
	}
	offset := 0
	if seed != 0 {
		offset = int(uint64(seed) % uint64(len(faults)))
	}
	out := make([]netlist.SAFault, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, faults[(i*len(faults)/max+offset)%len(faults)])
	}
	return out
}

// runCampaign simulates every fault of sim via word-packed batches, fanned
// out over opts.Workers goroutines.  Faults are claimed in packed-word
// chunks off an atomic counter and results merged in fault-list order, so
// the outcome is identical for any worker count — batch boundaries are
// fixed multiples of PackedBatch regardless of which worker claims them.
// Workers poll ctx between batches (and the packed BIST runner polls
// mid-session); a canceled campaign returns ctx.Err() wrapped with the
// stage name and no partial result.
func runCampaign(ctx context.Context, sim *CampaignSim, opts Options) (CampaignResult, error) {
	tm := obsSpanCampaign.Start()
	defer tm.Stop()
	n := sim.Faults()
	detectedAt := make([]int, n)
	var next int64
	const chunk = PackedBatch
	var wg sync.WaitGroup
	for w := 0; w < opts.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, chunk)) - chunk
				if lo >= n || ctx.Err() != nil {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				copy(detectedAt[lo:hi], sim.DetectBatch(ctx, lo, hi-lo))
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return CampaignResult{}, fmt.Errorf("xcheck: campaign %s: %w", sim.Name(), err)
	}
	return sim.Assemble(detectedAt, opts), nil
}

// bistTrace is one cycle of the BIST bench's tester-visible pins.
type bistTrace struct{ done, fail bool }

// runBISTTraced runs one solid-background March session on a bench sim with
// emulated RAMs responding to the netlist's own pins, recording (or
// comparing against) the DONE/FAIL trace.  With golden == nil it records
// and returns the trace; otherwise it returns the first divergent cycle or
// -1.  A few extra observation cycles past DONE let late sticky-fail
// effects surface, exactly like a controller polling MBO/MRD would see them.
func runBISTTraced(sim *netlist.CompiledSim, pins benchPins, mems []memory.Config,
	golden []bistTrace) ([]bistTrace, int) {
	sim.Reset()
	gmem := make([][]uint64, len(mems))
	for i, cfg := range mems {
		gmem[i] = make([]uint64, cfg.Words)
	}
	sim.Set("bgsel", false)
	sim.Set("pbsel", false)
	sim.Set("rst", true)
	sim.Set("en", false)
	sim.Tick("ck")
	sim.Set("rst", false)
	sim.Set("en", true)
	// One settle propagates the enable; after that the state is settled at
	// the top of every iteration (Tick ends with a Settle), so each cycle
	// needs only the post-RAM-read settle.
	sim.Settle()

	var trace []bistTrace
	cycle := 0
	for {
		for i := range mems {
			word := gmem[i][getBusID(sim, pins.addr[i])]
			for b, id := range pins.q[i] {
				sim.SetID(id, word>>uint(b)&1 == 1)
			}
			for b, id := range pins.qb[i] {
				sim.SetID(id, word>>uint(b)&1 == 1)
			}
		}
		sim.Settle()
		cur := bistTrace{done: sim.GetID(pins.done), fail: sim.GetID(pins.fail)}
		if golden != nil {
			if cur != golden[cycle] {
				return nil, cycle
			}
			if cycle == len(golden)-1 {
				return nil, -1
			}
		} else {
			trace = append(trace, cur)
			if cur.done && cycle >= len(trace)-1 && countTrailingDone(trace) > 4 {
				return trace, -1
			}
		}
		for i := range mems {
			if sim.GetID(pins.we[i]) {
				gmem[i][getBusID(sim, pins.addr[i])] = uint64(getBusID(sim, pins.d[i]))
			}
		}
		sim.Tick("ck")
		cycle++
		if golden == nil && cycle > 1<<22 {
			return trace, -1 // safety net; fault-free benches always finish
		}
	}
}

func countTrailingDone(trace []bistTrace) int {
	n := 0
	for i := len(trace) - 1; i >= 0 && trace[i].done; i-- {
		n++
	}
	return n
}

// TPGCampaignContext injects every stuck-at fault into the flattened sequencer +
// TPG bench and asks whether the BIST's own tester-visible outcome pins
// (DONE and the sticky FAIL) ever diverge from the fault-free session.
//
// Workers poll ctx between per-fault simulations.
func TPGCampaignContext(ctx context.Context, name string, alg march.Algorithm, mems []memory.Config, opts Options) (CampaignResult, error) {
	sim, err := NewTPGCampaignSim(name, alg, mems, opts)
	if err != nil {
		return CampaignResult{}, err
	}
	return runCampaign(ctx, sim, opts)
}

// ctlTrace is one cycle of the controller's tester pins.
type ctlTrace struct{ mbo, mrd, mso bool }

// runControllerTraced drives the scripted two-scenario session (all groups
// pass, then the middle group fails) with behavioural groups answering the
// controller's own GO outputs.  Trace/compare semantics mirror
// runBISTTraced.
func runControllerTraced(sim *netlist.CompiledSim, nGroups int,
	goIDs, gdoneIDs, gfailIDs, outIDs []int, golden []ctlTrace) ([]ctlTrace, int) {
	var trace []ctlTrace
	cycle := 0
	sim.Reset()
	for scenario := 0; scenario < 2; scenario++ {
		failing := -1
		if scenario == 1 {
			failing = nGroups / 2
		}
		// Reset pulse, then start.
		for _, step := range []struct{ mbs, mbr bool }{{false, true}, {true, false}} {
			sim.Set(bist.PinMBS, step.mbs)
			sim.Set(bist.PinMBR, step.mbr)
			sim.Set(bist.PinMSI, true)
			for i := 0; i < nGroups; i++ {
				sim.SetID(gdoneIDs[i], false)
				sim.SetID(gfailIDs[i], false)
			}
			sim.Tick(bist.PinMBC)
		}
		sim.Set(bist.PinMBS, false)
		age := make([]int, nGroups)
		for local := 0; local < 12*nGroups+12; local++ {
			sim.Settle()
			cur := ctlTrace{sim.GetID(outIDs[0]), sim.GetID(outIDs[1]), sim.GetID(outIDs[2])}
			if golden != nil {
				if cur != golden[cycle] {
					return nil, cycle
				}
				if cycle == len(golden)-1 {
					return nil, -1
				}
			} else {
				trace = append(trace, cur)
			}
			for i := 0; i < nGroups; i++ {
				gdone, gfail := false, false
				if sim.GetID(goIDs[i]) {
					age[i]++
					gdone = age[i] >= 3+i%4
					gfail = i == failing && age[i] == 2
				}
				sim.SetID(gdoneIDs[i], gdone)
				sim.SetID(gfailIDs[i], gfail)
			}
			sim.Tick(bist.PinMBC)
			cycle++
		}
	}
	return trace, -1
}

// ControllerCampaignContext injects every stuck-at fault into the flattened shared
// controller and checks whether the MBO/MRD/MSO tester pins ever diverge
// from the fault-free scripted session.
//
// Workers poll ctx between per-fault simulations.
func ControllerCampaignContext(ctx context.Context, name string, nGroups int, opts Options) (CampaignResult, error) {
	sim, err := NewControllerCampaignSim(name, nGroups, opts)
	if err != nil {
		return CampaignResult{}, err
	}
	return runCampaign(ctx, sim, opts)
}

// WrapperCampaignContext injects stuck-at faults into the wrapper logic (boundary
// cells, WIR, WBY, glue — core-internal faults are the scan patterns' own
// job and are excluded) and checks whether the translated scan program's
// wso expectations catch them.  The detection criterion is exactly the
// tester's: a miscompare against a non-X expected bit.
//
// Workers poll ctx between per-fault simulations.
func WrapperCampaignContext(ctx context.Context, name string, core *testinfo.Core, width int, opts Options) (CampaignResult, error) {
	sim, err := NewWrapperCampaignSim(name, core, width, opts)
	if err != nil {
		return CampaignResult{}, err
	}
	return runCampaign(ctx, sim, opts)
}

// wirCyclesFor is the fixed length of the WIR excursion script.
func wirCyclesFor() int { return 3 + 5 + 3 }

// cappedSource serves only the first n scan patterns of its base source.
type cappedSource struct {
	pattern.Source
	n int
}

func (c *cappedSource) ScanCount() int { return c.n }
