// Package insertion is STEAC's Test Insertion Tool (Fig. 1): it takes the
// original SOC netlist, the scheduling result, and the generated test
// blocks — wrappers, TAM multiplexer, test controller, memory BIST — and
// produces the DFT-ready netlist automatically.  The paper reports that on
// the DSC chip this step delivered a new testable SOC design "in minutes";
// here it is benchmarked by BenchmarkTestInsertionFlow.
package insertion

import (
	"fmt"
	"time"

	"steac/internal/controller"
	"steac/internal/netlist"
	"steac/internal/sched"
	"steac/internal/tam"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

// Result is the outcome of test insertion.
type Result struct {
	Design *netlist.Design
	Top    *netlist.Module

	WBRCells        int
	WrapperGates    float64
	ControllerGates float64
	TAMGates        float64
	BISTGates       float64
	ChipLogicGates  float64
	// OverheadPct is (controller + TAM mux) area over the chip logic, the
	// paper's 0.3% accounting.
	OverheadPct float64
	Elapsed     time.Duration

	TAMSpec tam.Spec
	CtlSpec controller.Spec
	Plans   map[string]wrapper.Plan
}

// Insert builds the DFT-ready design.  The original design's top module
// must instantiate each wrapped core as instance "u_<core>" of module
// "core_<core>" (the convention the DSC model follows); those instances are
// replaced by their wrapped versions and the test infrastructure is added
// around them.  bistDesign, when non-nil, is merged in and its top module
// instantiated (the BRAINS integration of Fig. 4).
func Insert(orig *netlist.Design, cores []*testinfo.Core, s *sched.Schedule,
	res sched.Resources, bistDesign *netlist.Design, bistTop string) (*Result, error) {
	start := time.Now()
	if orig == nil || orig.TopModule() == nil {
		return nil, fmt.Errorf("insertion: original design has no top module")
	}

	d := netlist.NewDesign(orig.Name+"_dft", orig.Lib)
	if err := d.Merge(orig); err != nil {
		return nil, err
	}
	d.Top = ""

	result := &Result{Design: d, Plans: make(map[string]wrapper.Plan)}

	// Wrapper generation per core, at the TAM width the scheduler chose
	// (functional-only cores get a width-1 boundary wrapper).
	byName := make(map[string]*testinfo.Core)
	for _, c := range cores {
		byName[c.Name] = c
	}
	widths := make(map[string]int)
	ctlSpec := controller.Spec{Sessions: len(s.Sessions)}
	tamSpec := tam.Spec{Sessions: len(s.Sessions), Width: 1}
	active := make(map[string][]int)
	for si, sess := range s.Sessions {
		pinLo := 0
		routed := make(map[string]bool)
		for _, pl := range sess.Placements {
			if pl.Test.Core == nil {
				continue
			}
			name := pl.Test.Core.Name
			if !containsInt(active[name], si) {
				active[name] = append(active[name], si)
			}
			if pl.Test.Kind == sched.ScanKind {
				widths[name] = pl.Width
				tamSpec.Routes = append(tamSpec.Routes, tam.Route{
					Session: si, Core: name, Width: pl.Width, PinLo: pinLo,
				})
				routed[name] = true
				pinLo += pl.Width
			}
		}
		// An EXTEST session routes every wrapped core on one wire each.
		for _, pl := range sess.Placements {
			if pl.Test.Kind != sched.ExtestKind {
				continue
			}
			for _, c := range cores {
				if routed[c.Name] {
					continue
				}
				if !containsInt(active[c.Name], si) {
					active[c.Name] = append(active[c.Name], si)
				}
				w := widths[c.Name]
				if w < 1 {
					w = 1
				}
				tamSpec.Routes = append(tamSpec.Routes, tam.Route{
					Session: si, Core: c.Name, Width: w, PinLo: pinLo,
				})
				routed[c.Name] = true
				pinLo += w
			}
		}
		// Functional-only cores still get a width-1 TAM route so their
		// wrapper serial path is reachable (WIR programming, boundary
		// debug); it rides a free wire of their session.
		for _, pl := range sess.Placements {
			if pl.Test.Core == nil || pl.Test.Kind != sched.FuncKind {
				continue
			}
			name := pl.Test.Core.Name
			if routed[name] || pl.Test.Core.HasScan() {
				continue
			}
			tamSpec.Routes = append(tamSpec.Routes, tam.Route{
				Session: si, Core: name, Width: 1, PinLo: pinLo,
			})
			routed[name] = true
			pinLo++
		}
		if pinLo > tamSpec.Width {
			tamSpec.Width = pinLo
		}
	}

	for _, core := range cores {
		w := widths[core.Name]
		if w == 0 {
			w = 1
		}
		plan, err := wrapper.DesignChains(core, w, res.Partitioner)
		if err != nil {
			return nil, err
		}
		gen, err := wrapper.Generate(d, core, plan)
		if err != nil {
			return nil, err
		}
		result.Plans[core.Name] = plan
		result.WBRCells += gen.WBRCells
		result.WrapperGates += gen.WrapperGates
		ctlSpec.Cores = append(ctlSpec.Cores, controller.CoreCtl{
			Name:           core.Name,
			TestEnables:    len(core.TestEnables),
			ScanEnables:    len(core.ScanEnables),
			ActiveSessions: active[core.Name],
		})
	}

	// Test controller and TAM multiplexer.
	ctlName := "tacs"
	if _, err := controller.Generate(d, ctlName, ctlSpec); err != nil {
		return nil, err
	}
	tamName := "tammux"
	if _, err := tam.Generate(d, tamName, tamSpec); err != nil {
		return nil, err
	}
	result.CtlSpec, result.TAMSpec = ctlSpec, tamSpec

	// BIST subsystem (BRAINS output, Fig. 4).
	if bistDesign != nil {
		if err := d.Merge(bistDesign); err != nil {
			return nil, err
		}
		if d.Module(bistTop) == nil {
			return nil, fmt.Errorf("insertion: BIST top %q missing after merge", bistTop)
		}
	}

	top, err := buildTop(d, orig, byName, result, ctlName, tamName, bistTop, tamSpec)
	if err != nil {
		return nil, err
	}
	result.Top = top
	d.Top = top.Name

	if issues := d.Lint(); len(issues) != 0 {
		return nil, fmt.Errorf("insertion: DFT netlist fails lint: %v (of %d)", issues[0], len(issues))
	}

	// Area accounting.
	if result.ControllerGates, err = d.Area(ctlName); err != nil {
		return nil, err
	}
	if result.TAMGates, err = d.Area(tamName); err != nil {
		return nil, err
	}
	if bistDesign != nil {
		// BIST logic only: the behavioural SRAM macros carry a bitcell
		// bookkeeping area that is not DFT logic.
		total, err := d.Area(bistTop)
		if err != nil {
			return nil, err
		}
		for _, name := range bistDesign.ModuleNames() {
			m := bistDesign.Modules[name]
			if m.Behavioral && m.Attrs["macro"] == "sram" {
				total -= m.AreaOverride
			}
		}
		result.BISTGates = total
	}
	// Chip logic area: the original design's behavioural blocks (cores,
	// glue, processor) excluding SRAM macros, which the paper's overhead
	// percentage also excludes.
	chip := 0.0
	for _, name := range orig.ModuleNames() {
		m := orig.Modules[name]
		if m.Behavioral && m.Attrs["macro"] != "sram" {
			chip += m.AreaOverride
		}
	}
	result.ChipLogicGates = chip
	if chip > 0 {
		result.OverheadPct = 100 * (result.ControllerGates + result.TAMGates) / chip
	}
	result.Elapsed = time.Since(start)
	return result, nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// buildTop clones the original top, swaps core instances for wrapped ones,
// and stitches controller, TAM mux and BIST.
func buildTop(d *netlist.Design, orig *netlist.Design, cores map[string]*testinfo.Core,
	result *Result, ctlName, tamName, bistTop string, tamSpec tam.Spec) (*netlist.Module, error) {
	ot := orig.TopModule()
	top := netlist.NewModule(ot.Name + "_dft")
	for _, p := range ot.Ports {
		top.MustPort(p.Name, p.Dir, p.Width)
	}
	// Chip-level test pins.
	for _, p := range []string{"tck", "trst", "tnext", "se_pin", "mbs", "mbr", "msi"} {
		top.MustPort(p, netlist.In, 1)
	}
	for _, p := range []string{"mso", "mbo", "mrd", "tso"} {
		top.MustPort(p, netlist.Out, 1)
	}
	top.MustPort("tin", netlist.In, tamSpec.Width)
	top.MustPort("tout", netlist.Out, tamSpec.Width)

	top.MustInstance("u_tie0", netlist.CellTie0, map[string]string{"Z": "safe0"})

	// Clone original instances, replacing cores with wrapped versions.
	for _, inst := range ot.Instances {
		coreName, isCore := coreOf(inst.Of)
		if !isCore {
			top.MustInstance(inst.Name, inst.Of, inst.Conns)
			continue
		}
		core, ok := cores[coreName]
		if !ok {
			// A core module we were not asked to wrap: keep as is.
			top.MustInstance(inst.Name, inst.Of, inst.Conns)
			continue
		}
		plan := result.Plans[coreName]
		conns := make(map[string]string, len(inst.Conns)+16)
		for f, a := range inst.Conns {
			conns[f] = a
		}
		// Test-side wiring.
		conns["wrck"] = "tck"
		conns["shift"] = coreName + "_shift"
		conns["update"] = "glb_update"
		conns["mode"] = coreName + "_mode"
		conns["safe"] = "safe0"
		conns["shiftwir"] = "glb_shiftwir"
		conns["updatewir"] = "glb_updatewir"
		conns["wirso"] = coreName + "_wirso"
		for w := 0; w < plan.Width; w++ {
			conns[netlist.BitName("wsi", w, plan.Width)] = fmt.Sprintf("%s_wsi%d", coreName, w)
			conns[netlist.BitName("wso", w, plan.Width)] = fmt.Sprintf("%s_wso%d", coreName, w)
		}
		for i, se := range core.ScanEnables {
			conns[se] = fmt.Sprintf("%s_se%d", coreName, i)
		}
		for i, te := range core.TestEnables {
			conns[te] = fmt.Sprintf("%s_te%d", coreName, i)
		}
		top.MustInstance(inst.Name, "wrap_"+coreName, conns)
	}

	// Controller.
	ctlConns := map[string]string{
		"TCK": "tck", "TRST": "trst", "TNEXT": "tnext", "SE": "se_pin",
		"SHIFTWIR": "glb_shiftwir", "UPDATEWIR": "glb_updatewir",
		"UPDATE": "glb_update", "TSO": "tso",
	}
	ctl := d.Module(ctlName)
	sb := 0
	for _, p := range ctl.Ports {
		if p.Name == "SESS" {
			sb = p.Width
		}
	}
	for b := 0; b < sb; b++ {
		ctlConns[netlist.BitName("SESS", b, sb)] = fmt.Sprintf("sess%d", b)
	}
	for _, cc := range result.CtlSpec.Cores {
		ctlConns[cc.Name+"_MODE"] = cc.Name + "_mode"
		ctlConns[cc.Name+"_SHIFT"] = cc.Name + "_shift"
		for i := 0; i < cc.TestEnables; i++ {
			ctlConns[netlist.BitName(cc.Name+"_TE", i, cc.TestEnables)] = fmt.Sprintf("%s_te%d", cc.Name, i)
		}
		for i := 0; i < cc.ScanEnables; i++ {
			ctlConns[netlist.BitName(cc.Name+"_SE", i, cc.ScanEnables)] = fmt.Sprintf("%s_se%d", cc.Name, i)
		}
	}
	top.MustInstance("u_tacs", ctlName, ctlConns)

	// TAM multiplexer.
	tm := d.Module(tamName)
	tamConns := make(map[string]string)
	for _, p := range tm.Ports {
		switch {
		case p.Name == "TIN":
			for b := 0; b < p.Width; b++ {
				tamConns[netlist.BitName("TIN", b, p.Width)] = netlist.BitName("tin", b, tamSpec.Width)
			}
		case p.Name == "TOUT":
			for b := 0; b < p.Width; b++ {
				tamConns[netlist.BitName("TOUT", b, p.Width)] = netlist.BitName("tout", b, tamSpec.Width)
			}
		case p.Name == "SESS":
			for b := 0; b < p.Width; b++ {
				tamConns[netlist.BitName("SESS", b, p.Width)] = fmt.Sprintf("sess%d", b)
			}
		default:
			// <core>_WSI / <core>_WSO buses.
			for _, suffix := range []string{"_WSI", "_WSO"} {
				if len(p.Name) > len(suffix) && p.Name[len(p.Name)-len(suffix):] == suffix {
					coreName := p.Name[:len(p.Name)-len(suffix)]
					lower := "_wsi"
					if suffix == "_WSO" {
						lower = "_wso"
					}
					for b := 0; b < p.Width; b++ {
						tamConns[netlist.BitName(p.Name, b, p.Width)] = fmt.Sprintf("%s%s%d", coreName, lower, b)
					}
				}
			}
		}
	}
	top.MustInstance("u_tammux", tamName, tamConns)

	// BIST.
	if bistTop != "" && d.Module(bistTop) != nil {
		top.MustInstance("u_membist", bistTop, map[string]string{
			"MBS": "mbs", "MBR": "mbr", "MBC": "tck", "MSI": "msi",
			"MSO": "mso", "MBO": "mbo", "MRD": "mrd",
		})
	} else {
		// No BIST: tie the tester outputs quiet.
		top.MustInstance("u_tmso", netlist.CellTie0, map[string]string{"Z": "mso"})
		top.MustInstance("u_tmbo", netlist.CellTie0, map[string]string{"Z": "mbo"})
		top.MustInstance("u_tmrd", netlist.CellTie1, map[string]string{"Z": "mrd"})
	}
	if err := d.AddModule(top); err != nil {
		return nil, err
	}
	return top, nil
}

func coreOf(module string) (string, bool) {
	const pfx = "core_"
	if len(module) > len(pfx) && module[:len(pfx)] == pfx {
		return module[len(pfx):], true
	}
	return "", false
}
