package netlist

import "fmt"

// Builder helpers shared by the hardware generators (wrapper, TAM,
// controller, BIST).  All helpers create instances inside an existing
// module; net names passed in must already exist or are created on demand.

// AddMuxTree builds a 2^k-to-1 multiplexer tree from MUX2 cells selecting
// among inputs with select nets sel (sel[0] = least significant).  The tree
// output is wired to out.  Missing inputs (len(inputs) not a power of two)
// are padded with the last input.  It returns the number of MUX2 cells
// created.
func AddMuxTree(m *Module, name string, inputs []string, sel []string, out string) (int, error) {
	if len(inputs) == 0 {
		return 0, fmt.Errorf("netlist: mux tree %s has no inputs", name)
	}
	need := 1 << len(sel)
	if len(inputs) > need {
		return 0, fmt.Errorf("netlist: mux tree %s: %d inputs need %d select bits",
			name, len(inputs), len(sel))
	}
	level := make([]string, need)
	copy(level, inputs)
	for i := len(inputs); i < need; i++ {
		level[i] = inputs[len(inputs)-1]
	}
	count := 0
	for li, s := range sel {
		next := make([]string, len(level)/2)
		for j := range next {
			var o string
			if len(next) == 1 && li == len(sel)-1 {
				o = out
			} else {
				o = fmt.Sprintf("%s_l%d_%d", name, li, j)
			}
			m.AddNet(o)
			if _, err := m.AddInstance(fmt.Sprintf("%s_m%d_%d", name, li, j), CellMux2,
				map[string]string{"A": level[2*j], "B": level[2*j+1], "S": s, "Z": o}); err != nil {
				return count, err
			}
			count++
			next[j] = o
		}
		level = next
	}
	return count, nil
}

// AddDecoder builds a k-to-2^k one-hot decoder with an enable: outs[i] goes
// high when the sel nets encode i and en is high.  It returns the number of
// cells created.  Implementation: per output, an AND tree over the (possibly
// inverted) select bits and the enable.
func AddDecoder(m *Module, name string, sel []string, en string, outs []string) (int, error) {
	if len(outs) > 1<<len(sel) {
		return 0, fmt.Errorf("netlist: decoder %s: %d outputs exceed 2^%d", name, len(outs), len(sel))
	}
	count := 0
	// Shared inverted select lines.
	inv := make([]string, len(sel))
	for i, s := range sel {
		inv[i] = fmt.Sprintf("%s_n%d", name, i)
		m.AddNet(inv[i])
		if _, err := m.AddInstance(fmt.Sprintf("%s_inv%d", name, i), CellInv,
			map[string]string{"A": s, "Z": inv[i]}); err != nil {
			return count, err
		}
		count++
	}
	for code, out := range outs {
		terms := make([]string, 0, len(sel)+1)
		if en != "" {
			terms = append(terms, en)
		}
		for b, s := range sel {
			if code&(1<<b) != 0 {
				terms = append(terms, s)
			} else {
				terms = append(terms, inv[b])
			}
		}
		n, err := AddAndTree(m, fmt.Sprintf("%s_o%d", name, code), terms, out)
		if err != nil {
			return count, err
		}
		count += n
	}
	return count, nil
}

// AddAndTree ANDs all input nets onto out using AND2 cells (BUF for a single
// input).  It returns the number of cells created.
func AddAndTree(m *Module, name string, inputs []string, out string) (int, error) {
	return addTree(m, name, CellAnd2, CellBuf, inputs, out)
}

// AddOrTree ORs all input nets onto out using OR2 cells (BUF for a single
// input).  It returns the number of cells created.
func AddOrTree(m *Module, name string, inputs []string, out string) (int, error) {
	return addTree(m, name, CellOr2, CellBuf, inputs, out)
}

func addTree(m *Module, name, cell2, cell1 string, inputs []string, out string) (int, error) {
	if len(inputs) == 0 {
		return 0, fmt.Errorf("netlist: tree %s has no inputs", name)
	}
	count := 0
	level := inputs
	round := 0
	for len(level) > 1 {
		next := make([]string, 0, (len(level)+1)/2)
		for j := 0; j+1 < len(level); j += 2 {
			var o string
			if len(level) == 2 {
				o = out
			} else {
				o = fmt.Sprintf("%s_t%d_%d", name, round, j/2)
			}
			m.AddNet(o)
			if _, err := m.AddInstance(fmt.Sprintf("%s_g%d_%d", name, round, j/2), cell2,
				map[string]string{"A": level[j], "B": level[j+1], "Z": o}); err != nil {
				return count, err
			}
			count++
			next = append(next, o)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		round++
	}
	if len(inputs) == 1 {
		m.AddNet(out)
		if _, err := m.AddInstance(name+"_buf", cell1,
			map[string]string{"A": inputs[0], "Z": out}); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}

// AddRegister builds an n-bit DFF register named name, clocked by ck, with
// input nets d and output nets q (all length n).  It returns the number of
// cells created.
func AddRegister(m *Module, name, ck string, d, q []string) (int, error) {
	if len(d) != len(q) {
		return 0, fmt.Errorf("netlist: register %s: %d inputs vs %d outputs", name, len(d), len(q))
	}
	for i := range d {
		m.AddNet(d[i])
		m.AddNet(q[i])
		if _, err := m.AddInstance(fmt.Sprintf("%s_ff%d", name, i), CellDFF,
			map[string]string{"D": d[i], "CK": ck, "Q": q[i]}); err != nil {
			return i, err
		}
	}
	return len(d), nil
}
