// Package core is the STEAC platform itself — the SOC Test Aid Console of
// Fig. 1.  RunFlow executes the complete integration flow the paper
// describes: parse the cores' STIL test information, compile the memory
// BIST with BRAINS (Fig. 4), schedule the core tests into sessions under
// the chip's IO and power constraints, generate and insert the test
// wrappers, TAM and test controller into the SOC netlist, and translate the
// core-level patterns to chip level.  The optional verification step
// applies the translated patterns to the behavioural chip model on the
// tester model, which must pass with zero mismatches.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"steac/internal/ate"
	"steac/internal/brains"
	"steac/internal/insertion"
	"steac/internal/memory"
	"steac/internal/netlist"
	"steac/internal/obs"
	"steac/internal/pattern"
	"steac/internal/sched"
	"steac/internal/stil"
	"steac/internal/testinfo"
)

// FlowInput is everything the SOC integrator hands to STEAC.
type FlowInput struct {
	// STIL holds each core's test information as STIL source, keyed by an
	// arbitrary label (file name); this is the ATPG hand-off of Fig. 1.
	STIL []string
	// SOC is the original netlist (nil skips insertion).
	SOC *netlist.Design
	// Resources is the chip test-resource budget.
	Resources sched.Resources
	// Memories is the embedded SRAM inventory for BRAINS (empty skips
	// memory BIST).
	Memories []memory.Config
	// Interconnects lists the core-to-core glue wires to cover with an
	// EXTEST interconnect-test session (empty skips it).
	Interconnects []pattern.Interconnect
	// BISTOptions tunes the BRAINS compilation.
	BISTOptions brains.Options
	// ExtraBIST appends pre-planned fixed-length self-test groups — e.g. a
	// scenario's P1500 logic-core BIST sessions — to the schedulable BIST
	// set.  They co-schedule exactly like BRAINS sequencer groups (serial
	// behind the shared controller, filled into session slack) but carry no
	// generated netlist and need no pattern source.
	ExtraBIST []sched.BISTGroup
	// Verify applies the translated patterns on the tester model.
	Verify bool
}

// FlowResult is the full output of one STEAC run.
type FlowResult struct {
	Cores []*testinfo.Core

	Brains *brains.Result

	// Schedule is the session-based result STEAC uses; NonSession and
	// Serial are the baselines the paper compares against.
	Schedule   *sched.Schedule
	NonSession *sched.Schedule
	Serial     *sched.Schedule

	Insertion *insertion.Result
	Extest    *pattern.ExtestLane
	Program   *pattern.Program
	Sources   map[string]pattern.Source
	Verify    *ate.Result

	Elapsed time.Duration
}

// BISTGroups converts a BRAINS compilation into schedulable BIST tests: one
// per sequencer group, costing the March run plus the controller's
// group-advance cycle.
func BISTGroups(r *brains.Result) []sched.BISTGroup {
	if r == nil {
		return nil
	}
	groups := make([]sched.BISTGroup, len(r.Groups))
	for i, g := range r.Groups {
		groups[i] = sched.BISTGroup{
			Name:   g.Name,
			Cycles: brains.GroupCycles(g) + 1,
			Power:  brains.GroupPower(g),
		}
	}
	return groups
}

// Observability: the flow stages of Fig. 1 form the top-level span tree a
// `dscflow -obs` report (and a pprof profile's "span" label) is organized
// by.  Engine-internal spans (sched.session_based, memfault.coverage, ...)
// nest in time under these but live under their own package roots.
var (
	obsSpanFlow      = obs.GetSpan("flow")
	obsSpanParse     = obs.GetSpan("flow.parse")
	obsSpanBrains    = obs.GetSpan("flow.brains")
	obsSpanSchedule  = obs.GetSpan("flow.schedule")
	obsSpanExtest    = obs.GetSpan("flow.extest")
	obsSpanInsert    = obs.GetSpan("flow.insert")
	obsSpanTranslate = obs.GetSpan("flow.translate")
	obsSpanVerify    = obs.GetSpan("flow.verify")
	obsFlows         = obs.GetCounter("flow.runs")
	obsFlowCores     = obs.GetCounter("flow.cores_parsed")
)

// stage times one flow stage into its span; the closure form guarantees
// the span stops on every path, including error returns.  A context that
// is already done short-circuits the stage entirely, so a canceled flow
// stops at the next stage boundary even when the stage's engine predates
// context support.
func stage(ctx context.Context, s *obs.Span, f func() error) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("steac: %s: %w", s.Path(), err)
	}
	tm := s.Start()
	defer tm.Stop()
	return f()
}

// RunFlowContext executes the STEAC flow of Fig. 1.  Each
// stage checks ctx before starting, and the long-running engines (the
// session-partition search, BRAINS memory-fault grading) poll it at their
// batch boundaries, so a canceled flow returns promptly with ctx.Err()
// wrapped in the name of the stage it interrupted.  A canceled flow never
// returns a partial result.
func RunFlowContext(ctx context.Context, in FlowInput) (*FlowResult, error) {
	start := time.Now()
	tmFlow := obsSpanFlow.Start()
	defer tmFlow.Stop()
	res := &FlowResult{Sources: make(map[string]pattern.Source)}

	// 1. STIL Parser.
	if len(in.STIL) == 0 {
		return nil, fmt.Errorf("steac: no STIL inputs")
	}
	if err := stage(ctx, obsSpanParse, func() error {
		seen := make(map[string]bool)
		for i, src := range in.STIL {
			c, vecs, err := stil.ParseWithVectors(src)
			if err != nil {
				return fmt.Errorf("steac: STIL input %d: %w", i, err)
			}
			if seen[c.Name] {
				return fmt.Errorf("steac: duplicate core %q in STIL inputs", c.Name)
			}
			seen[c.Name] = true
			res.Cores = append(res.Cores, c)
			// A file carrying explicit vectors supplies them directly; a file
			// carrying only generator annotations uses the ATPG substitute.
			if len(vecs.Scan) > 0 || len(vecs.Func) > 0 {
				if len(vecs.Scan) != c.ScanPatternCount() || len(vecs.Func) != c.FunctionalPatternCount() {
					return fmt.Errorf("steac: %s: %d/%d explicit vectors but pattern sets declare %d/%d",
						c.Name, len(vecs.Scan), len(vecs.Func),
						c.ScanPatternCount(), c.FunctionalPatternCount())
				}
				exp, err := pattern.FromSTIL(c, vecs)
				if err != nil {
					return fmt.Errorf("steac: %s: %w", c.Name, err)
				}
				res.Sources[c.Name] = exp
				continue
			}
			a, err := pattern.NewATPG(c)
			if err != nil {
				return err
			}
			res.Sources[c.Name] = a
		}
		obsFlowCores.Add(int64(len(res.Cores)))
		return nil
	}); err != nil {
		return nil, err
	}

	// 2. BRAINS memory BIST compilation (Fig. 4 integration).
	var bistGroups []sched.BISTGroup
	var bistDesign *netlist.Design
	bistTop := ""
	if len(in.Memories) > 0 {
		if err := stage(ctx, obsSpanBrains, func() error {
			b, err := brains.CompileContext(ctx, in.Memories, in.BISTOptions)
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return err
				}
				return fmt.Errorf("steac: BRAINS: %w", err)
			}
			res.Brains = b
			bistGroups = BISTGroups(b)
			bistDesign = b.Design
			bistTop = b.Top.Name
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// 3. Core Test Scheduler (+ the two baselines for comparison).
	if err := stage(ctx, obsSpanSchedule, func() error {
		tests, err := sched.BuildTests(res.Cores, append(bistGroups, in.ExtraBIST...))
		if err != nil {
			return err
		}
		if res.Schedule, err = sched.SessionBasedContext(ctx, tests, in.Resources); err != nil {
			if errors.Is(err, sched.ErrInfeasible) {
				return fmt.Errorf("steac: schedule: %w: %w", ErrBudgetExceeded, err)
			}
			return err
		}
		if res.NonSession, err = sched.NonSessionBased(tests, in.Resources); err != nil {
			return fmt.Errorf("steac: non-session baseline: %w", err)
		}
		if res.Serial, err = sched.Serial(tests, in.Resources); err != nil {
			return fmt.Errorf("steac: serial baseline: %w", err)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// 3b. Interconnect (EXTEST) session, appended after the core sessions.
	if len(in.Interconnects) > 0 {
		if err := stage(ctx, obsSpanExtest, func() error {
			widths := make(map[string]int)
			for _, sess := range res.Schedule.Sessions {
				for _, pl := range sess.Placements {
					if pl.Test.Kind == sched.ScanKind {
						widths[pl.Test.Core.Name] = pl.Width
					}
				}
			}
			lane, err := pattern.BuildExtest(res.Cores, in.Interconnects, widths, in.Resources.Partitioner)
			if err != nil {
				return fmt.Errorf("steac: extest: %w", err)
			}
			res.Extest = lane
			res.Schedule.Sessions = append(res.Schedule.Sessions, sched.Session{
				Index:       len(res.Schedule.Sessions),
				Cycles:      lane.Cycles,
				ControlPins: sched.ControlPins(res.Cores, true, true),
				Placements: []sched.Placement{{
					Test:   sched.Test{ID: "chip.extest", Kind: sched.ExtestKind},
					Cycles: lane.Cycles,
				}},
			})
			res.Schedule.TotalCycles += lane.Cycles
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// 4. Test insertion: wrappers, TAM, controller, BIST into the SOC.
	if in.SOC != nil {
		if err := stage(ctx, obsSpanInsert, func() error {
			ins, err := insertion.Insert(in.SOC, res.Cores, res.Schedule, in.Resources, bistDesign, bistTop)
			if err != nil {
				return err
			}
			res.Insertion = ins
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// 5. Pattern translation to chip level.
	if err := stage(ctx, obsSpanTranslate, func() error {
		var err error
		if res.Program, err = pattern.Translate(res.Schedule, res.Sources, in.Resources); err != nil {
			return err
		}
		if res.Extest != nil {
			if err := res.Program.AttachExtest(len(res.Program.Sessions)-1, res.Extest); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// 6. Optional ATE verification on the behavioural chip model.
	if in.Verify {
		if err := stage(ctx, obsSpanVerify, func() error {
			chip := ate.NewChip(res.Program, res.Cores)
			r, err := ate.Run(res.Program, chip)
			if err != nil {
				return err
			}
			res.Verify = &r
			if !r.Pass {
				return fmt.Errorf("steac: translated patterns fail on the chip model: %d mismatches (first %+v)",
					r.Mismatches, r.First)
			}
			if r.Cycles != res.Schedule.TotalCycles {
				return fmt.Errorf("steac: ATE measured %d cycles, schedule says %d",
					r.Cycles, res.Schedule.TotalCycles)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	obsFlows.Add(1)
	res.Elapsed = time.Since(start)
	return res, nil
}

// EmitSTIL is the convenience used by the flow drivers to produce the ATPG
// hand-off files from core test information.
func EmitSTIL(cores []*testinfo.Core) ([]string, error) {
	out := make([]string, len(cores))
	for i, c := range cores {
		s, err := stil.Emit(c)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}
