// Package pattern implements the test-pattern side of STEAC (Fig. 1): core
// models standing in for the cores' logic, a synthetic ATPG that generates
// cycle-based core-level patterns exactly as a commercial tool hands them to
// STEAC, and the pattern translators that lift core-level patterns to the
// wrapper level and then to the chip level, where an external ATE (package
// ate) can apply them.
//
// The substitution at work (paper used real cores + commercial ATPG): every
// property the translation flow depends on — chain structure, pattern
// counts, load/unload ordering, capture semantics — is preserved; only the
// logic function inside each core is synthetic (a seeded mixing function).
// Because the ATPG substitute and the chip model share the same core model,
// a correct translator yields zero mismatches on the tester, and any
// injected defect or translation bug yields nonzero mismatches.
package pattern

import (
	"steac/internal/testinfo"
)

// Bit is a three-valued test bit: 0, 1, or X (don't care / don't compare).
type Bit byte

// Bit values.
const (
	B0 Bit = 0
	B1 Bit = 1
	BX Bit = 2
)

// FromBool converts a logic level to a Bit.
func FromBool(v bool) Bit {
	if v {
		return B1
	}
	return B0
}

// Bool returns the logic level of a non-X bit (X reads as 0).
func (b Bit) Bool() bool { return b == B1 }

// Matches reports whether an observed level satisfies the expectation
// (X matches anything).
func (b Bit) Matches(observed bool) bool {
	if b == BX {
		return true
	}
	return b.Bool() == observed
}

// splitmix64 is the keyed mixing primitive behind every synthetic model:
// deterministic, seedable, well distributed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// CoreModel is the synthetic logic function of one core.  For scan cores it
// defines the capture behaviour (next scan state and PO values from the
// current scan state and PI values); for functional cores it defines a
// seeded Mealy machine stepped once per functional pattern.
type CoreModel struct {
	Core *testinfo.Core
	Seed uint64

	stateBits int
}

// NewCoreModel builds the model; the seed comes from the core's pattern-set
// seeds so the ATPG substitute and the chip model always agree.
func NewCoreModel(core *testinfo.Core) *CoreModel {
	var seed uint64 = 0x5eed
	for _, p := range core.Patterns {
		seed = splitmix64(seed ^ uint64(p.Seed))
	}
	return &CoreModel{Core: core, Seed: seed, stateBits: core.TotalScanBits()}
}

// StateBits returns the scan state width (concatenation of the core's scan
// chains in declaration order).
func (m *CoreModel) StateBits() int { return m.stateBits }

func (m *CoreModel) bit(class uint64, i int, a, b bool) bool {
	h := splitmix64(m.Seed ^ class<<48 ^ uint64(i))
	v := h&1 == 1
	if a {
		v = !v
	}
	if h&2 == 2 && b {
		v = !v
	}
	return v
}

// Capture computes one scan capture: given the scan state (concatenated
// chains) and the PI values, it returns the next state and the PO values.
// Each next-state bit mixes one state tap, one PI tap and a keyed constant;
// each PO bit likewise, so every load bit influences observable outputs.
func (m *CoreModel) Capture(state, pi []bool) (next, po []bool) {
	n := len(state)
	next = make([]bool, n)
	for i := 0; i < n; i++ {
		var sTap, pTap bool
		if n > 0 {
			sTap = state[int(splitmix64(m.Seed^0xA0000+uint64(i))%uint64(n))]
		}
		if len(pi) > 0 {
			pTap = pi[int(splitmix64(m.Seed^0xA1000+uint64(i))%uint64(len(pi)))]
		}
		next[i] = m.bit(1, i, sTap, true) != pTap
	}
	po = make([]bool, m.Core.POs)
	for j := range po {
		var sTap, pTap bool
		if n > 0 {
			sTap = state[int(splitmix64(m.Seed^0xA2000+uint64(j))%uint64(n))]
		}
		if len(pi) > 0 {
			pTap = pi[int(splitmix64(m.Seed^0xA3000+uint64(j))%uint64(len(pi)))]
		}
		po[j] = m.bit(2, j, sTap, pTap) != (sTap && pTap)
	}
	return next, po
}

// FuncReset returns the functional machine's initial internal state.
func (m *CoreModel) FuncReset() uint64 { return splitmix64(m.Seed ^ 0xF0F0) }

// FuncStep advances the functional Mealy machine one pattern: it mixes the
// PI vector into the internal state and produces the PO vector.
func (m *CoreModel) FuncStep(state uint64, pi []bool) (uint64, []bool) {
	h := state
	for i, v := range pi {
		if v {
			h ^= splitmix64(m.Seed ^ 0xB0000 ^ uint64(i))
		}
	}
	h = splitmix64(h)
	po := make([]bool, m.Core.POs)
	for j := range po {
		po[j] = (h>>(uint(j)%64))&1 == 1
		if j >= 64 {
			po[j] = po[j] != (splitmix64(h^uint64(j))&1 == 1)
		}
	}
	return h, po
}
