package stil

import (
	"fmt"
	"strings"

	"steac/internal/testinfo"
)

// Explicit vector data.  The paper notes that the STIL hand-off carries
// "the IO ports, scan structure, and test vectors"; for moderate pattern
// sets the vectors travel in the file itself (for the DSC's 200K+ pattern
// functional sets, the annotation form with a generator seed is used
// instead).  The vector statements are a compact STEAC dialect of STIL
// pattern data:
//
//	Pattern "scan" {
//	  {* patterns type=Scan count=2 seed=0 *}
//	  Scan {
//	    Load "c0" 0110;
//	    Apply pi 01 po HL;
//	    Unload "c0" 1001;
//	  }
//	}
//	Pattern "func" {
//	  {* patterns type=Functional count=1 seed=0 *}
//	  V pi 0101 po HLLH;
//	}
//
// Stimulus bits are 0/1; expected values are H/L.

// ScanVector is one explicit scan pattern: per-chain load and expected
// unload strings (keyed by chain name), capture stimulus and expected
// response.
type ScanVector struct {
	Load   map[string]string
	Unload map[string]string
	PI     string
	PO     string
}

// FuncVector is one explicit functional pattern.
type FuncVector struct {
	PI string
	PO string
}

// Vectors is the explicit pattern data of one core's STIL file.
type Vectors struct {
	Scan []ScanVector
	Func []FuncVector
}

// ParseWithVectors parses a STIL file and additionally extracts any
// explicit vector statements.  Plain Parse ignores them.
func ParseWithVectors(src string) (*testinfo.Core, *Vectors, error) {
	core, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	stmts, err := ParseAST(src)
	if err != nil {
		return nil, nil, err
	}
	v := &Vectors{}
	for _, s := range stmts {
		if len(s.Words) == 0 || s.Words[0] != "Pattern" {
			continue
		}
		for _, st := range s.Body {
			if st.Ann != "" || len(st.Words) == 0 {
				continue
			}
			switch st.Words[0] {
			case "Scan":
				sv, err := parseScanVector(st)
				if err != nil {
					return nil, nil, err
				}
				v.Scan = append(v.Scan, sv)
			case "V":
				fv, err := parseFuncVector(st.Words)
				if err != nil {
					return nil, nil, err
				}
				v.Func = append(v.Func, fv)
			case "W", "Call", "Macro", "Loop":
				// Recognized STIL statements we don't interpret.
			default:
				return nil, nil, fmt.Errorf("stil: unknown pattern statement %q", st.Words[0])
			}
		}
	}
	return core, v, nil
}

func parseScanVector(st *Stmt) (ScanVector, error) {
	sv := ScanVector{Load: make(map[string]string), Unload: make(map[string]string)}
	for _, f := range st.Body {
		if len(f.Words) == 0 {
			continue
		}
		switch f.Words[0] {
		case "Load", "Unload":
			if len(f.Words) != 3 {
				return sv, fmt.Errorf("stil: %s wants: %s <chain> <bits>", f.Words[0], f.Words[0])
			}
			if err := checkBits(f.Words[2], "01"); err != nil {
				return sv, err
			}
			if f.Words[0] == "Load" {
				sv.Load[f.Words[1]] = f.Words[2]
			} else {
				sv.Unload[f.Words[1]] = f.Words[2]
			}
		case "Apply":
			pi, po, err := parsePIPO(f.Words)
			if err != nil {
				return sv, err
			}
			sv.PI, sv.PO = pi, po
		default:
			return sv, fmt.Errorf("stil: unknown Scan field %q", f.Words[0])
		}
	}
	return sv, nil
}

func parseFuncVector(words []string) (FuncVector, error) {
	pi, po, err := parsePIPO(words)
	if err != nil {
		return FuncVector{}, err
	}
	return FuncVector{PI: pi, PO: po}, nil
}

// parsePIPO handles "<kw> pi <bits> po <HLbits>" with either part optional.
func parsePIPO(words []string) (pi, po string, err error) {
	i := 1
	for i < len(words) {
		switch words[i] {
		case "pi":
			if i+1 >= len(words) {
				return "", "", fmt.Errorf("stil: pi without bits")
			}
			if err := checkBits(words[i+1], "01"); err != nil {
				return "", "", err
			}
			pi = words[i+1]
			i += 2
		case "po":
			if i+1 >= len(words) {
				return "", "", fmt.Errorf("stil: po without values")
			}
			if err := checkBits(words[i+1], "HL"); err != nil {
				return "", "", err
			}
			po = words[i+1]
			i += 2
		default:
			return "", "", fmt.Errorf("stil: unexpected token %q in vector", words[i])
		}
	}
	return pi, po, nil
}

func checkBits(s, alphabet string) error {
	for _, c := range s {
		if !strings.ContainsRune(alphabet, c) {
			return fmt.Errorf("stil: invalid character %q in vector data %q (alphabet %s)",
				string(c), s, alphabet)
		}
	}
	return nil
}

// EmitWithVectors serializes a core like Emit and appends explicit vector
// statements to the matching Pattern blocks (scan vectors into the first
// Scan pattern set, functional vectors into the first Functional set).
// ParseWithVectors(EmitWithVectors(c, v)) reconstructs both.
func EmitWithVectors(c *testinfo.Core, v *Vectors) (string, error) {
	base, err := Emit(c)
	if err != nil {
		return "", err
	}
	if v == nil || (len(v.Scan) == 0 && len(v.Func) == 0) {
		return base, nil
	}
	scanSet, funcSet := "", ""
	for _, p := range c.Patterns {
		if p.Type == testinfo.Scan && scanSet == "" {
			scanSet = p.Name
		}
		if p.Type == testinfo.Functional && funcSet == "" {
			funcSet = p.Name
		}
	}
	if len(v.Scan) > 0 && scanSet == "" {
		return "", fmt.Errorf("stil: scan vectors but no scan pattern set on %s", c.Name)
	}
	if len(v.Func) > 0 && funcSet == "" {
		return "", fmt.Errorf("stil: functional vectors but no functional pattern set on %s", c.Name)
	}

	var sb strings.Builder
	lines := strings.Split(base, "\n")
	for _, line := range lines {
		sb.WriteString(line)
		sb.WriteByte('\n')
		if scanSet != "" && strings.HasPrefix(line, fmt.Sprintf("Pattern %q {", scanSet)) {
			for _, sv := range v.Scan {
				sb.WriteString("  Scan {\n")
				for _, ch := range c.ScanChains {
					if bits, ok := sv.Load[ch.Name]; ok {
						fmt.Fprintf(&sb, "    Load %s %s;\n", ch.Name, bits)
					}
				}
				if sv.PI != "" || sv.PO != "" {
					sb.WriteString("    Apply")
					if sv.PI != "" {
						fmt.Fprintf(&sb, " pi %s", sv.PI)
					}
					if sv.PO != "" {
						fmt.Fprintf(&sb, " po %s", sv.PO)
					}
					sb.WriteString(";\n")
				}
				for _, ch := range c.ScanChains {
					if bits, ok := sv.Unload[ch.Name]; ok {
						fmt.Fprintf(&sb, "    Unload %s %s;\n", ch.Name, bits)
					}
				}
				sb.WriteString("  }\n")
			}
		}
		if funcSet != "" && strings.HasPrefix(line, fmt.Sprintf("Pattern %q {", funcSet)) {
			for _, fv := range v.Func {
				sb.WriteString("  V")
				if fv.PI != "" {
					fmt.Fprintf(&sb, " pi %s", fv.PI)
				}
				if fv.PO != "" {
					fmt.Fprintf(&sb, " po %s", fv.PO)
				}
				sb.WriteString(";\n")
			}
		}
	}
	return strings.TrimSuffix(sb.String(), "\n") + "\n", nil
}
