package brains

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"steac/internal/march"
	"steac/internal/memory"
	"steac/internal/report"
	"steac/internal/xcheck"
)

// Shell is the BRAINS command shell (the paper's non-GUI entry point).
// Commands:
//
//	mem <name> <words> <bits> [1|2]   add a memory macro (1- or 2-port)
//	alg <march name>                  select the March algorithm
//	algdef <name> <notation>          define a custom algorithm
//	group kind|single|permem          sequencer grouping strategy
//	power <max>                       power bound for parallel sessions
//	clock <mhz>                       BIST clock for time reports
//	compile                           plan + generate the BIST design
//	report                            print plan, area and test time
//	evaluate <words> <bits>           March efficiency table
//	workers <n>                       fault-simulation worker count (0=auto)
//	verilog                           emit the generated netlist
//	xcheck [faults [max]]             gate-level differential verification
//	help                              list commands
type Shell struct {
	out  io.Writer
	mems []memory.Config
	opts Options
	res  *Result
}

// NewShell creates a shell writing command output to out.
func NewShell(out io.Writer) *Shell {
	return &Shell{out: out, opts: Options{}.withDefaults()}
}

// Result returns the last successful compilation, or nil.
func (s *Shell) Result() *Result { return s.res }

// Exec runs one command line.  Empty lines and #-comments are ignored.
func (s *Shell) Exec(line string) error {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil
	}
	fields := strings.Fields(line)
	cmd, args := fields[0], fields[1:]
	switch cmd {
	case "mem":
		return s.cmdMem(args)
	case "alg":
		name := strings.Join(args, " ")
		a, ok := march.ByName(name)
		if !ok {
			return fmt.Errorf("brains: unknown algorithm %q (try 'March C-')", name)
		}
		s.opts.Algorithm = a
		fmt.Fprintf(s.out, "algorithm %s (%dN)\n", a.Name, a.Complexity())
		return nil
	case "algdef":
		if len(args) < 2 {
			return fmt.Errorf("brains: usage: algdef <name> <notation>")
		}
		a, err := march.Parse(args[0], strings.Join(args[1:], " "))
		if err != nil {
			return err
		}
		s.opts.Algorithm = a
		fmt.Fprintf(s.out, "algorithm %s (%dN) defined\n", a.Name, a.Complexity())
		return nil
	case "group":
		if len(args) != 1 {
			return fmt.Errorf("brains: usage: group kind|single|permem")
		}
		switch args[0] {
		case "kind":
			s.opts.Grouping = GroupByKind
		case "single":
			s.opts.Grouping = GroupSingle
		case "permem":
			s.opts.Grouping = GroupPerMemory
		default:
			return fmt.Errorf("brains: unknown grouping %q", args[0])
		}
		fmt.Fprintf(s.out, "grouping %s\n", s.opts.Grouping)
		return nil
	case "power":
		if len(args) != 1 {
			return fmt.Errorf("brains: usage: power <max>")
		}
		v, err := strconv.ParseFloat(args[0], 64)
		if err != nil || v < 0 {
			return fmt.Errorf("brains: bad power bound %q", args[0])
		}
		s.opts.MaxPower = v
		return nil
	case "clock":
		if len(args) != 1 {
			return fmt.Errorf("brains: usage: clock <mhz>")
		}
		v, err := strconv.ParseFloat(args[0], 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("brains: bad clock %q", args[0])
		}
		s.opts.ClockMHz = v
		return nil
	case "workers":
		if len(args) != 1 {
			return fmt.Errorf("brains: usage: workers <n>")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 0 {
			return fmt.Errorf("brains: bad worker count %q", args[0])
		}
		s.opts.Workers = n
		fmt.Fprintf(s.out, "simulation workers: %d (0=auto)\n", n)
		return nil
	case "backgrounds":
		if len(args) != 1 {
			return fmt.Errorf("brains: usage: backgrounds 1|2")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 || n > 2 {
			return fmt.Errorf("brains: backgrounds must be 1 or 2, got %q", args[0])
		}
		s.opts.Backgrounds = n
		fmt.Fprintf(s.out, "data backgrounds: %d\n", n)
		return nil
	case "portb":
		if len(args) != 1 || (args[0] != "on" && args[0] != "off") {
			return fmt.Errorf("brains: usage: portb on|off")
		}
		s.opts.PortBTest = args[0] == "on"
		fmt.Fprintf(s.out, "port-B verification: %t\n", s.opts.PortBTest)
		return nil
	case "retention":
		switch {
		case len(args) == 1 && args[0] == "off":
			s.opts.Retention = false
			s.opts.RetentionPauseCycles = 0
		case len(args) >= 1 && args[0] == "on":
			s.opts.Retention = true
			if len(args) == 2 {
				n, err := strconv.Atoi(args[1])
				if err != nil || n <= 0 {
					return fmt.Errorf("brains: bad pause cycles %q", args[1])
				}
				s.opts.RetentionPauseCycles = n
			}
		default:
			return fmt.Errorf("brains: usage: retention on [cycles] | off")
		}
		fmt.Fprintf(s.out, "retention test: %t\n", s.opts.Retention)
		return nil
	case "compile":
		res, err := CompileContext(context.Background(), s.mems, s.opts)
		if err != nil {
			return err
		}
		s.res = res
		fmt.Fprintf(s.out, "compiled: %d memories, %d sequencers, %d sessions, %s cycles\n",
			len(s.mems), len(res.Groups), len(res.Sessions), report.Comma(res.Cycles))
		return nil
	case "report":
		if s.res == nil {
			return fmt.Errorf("brains: nothing compiled yet")
		}
		fmt.Fprint(s.out, Report(s.res))
		return nil
	case "evaluate":
		if len(args) != 2 {
			return fmt.Errorf("brains: usage: evaluate <words> <bits>")
		}
		words, err1 := strconv.Atoi(args[0])
		bits, err2 := strconv.Atoi(args[1])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("brains: bad geometry %q %q", args[0], args[1])
		}
		rows, err := EvaluateContext(context.Background(), memory.Config{Name: "eval", Words: words, Bits: bits}, nil, Options{Workers: s.opts.Workers})
		if err != nil {
			return err
		}
		fmt.Fprint(s.out, EvaluationTable(rows))
		return nil
	case "xcheck":
		return s.cmdXCheck(args)
	case "verilog":
		if s.res == nil {
			return fmt.Errorf("brains: nothing compiled yet")
		}
		return s.res.Design.EmitVerilog(s.out)
	case "help":
		fmt.Fprint(s.out, helpText)
		return nil
	default:
		return fmt.Errorf("brains: unknown command %q (try 'help')", cmd)
	}
}

func (s *Shell) cmdMem(args []string) error {
	if len(args) < 3 || len(args) > 4 {
		return fmt.Errorf("brains: usage: mem <name> <words> <bits> [1|2]")
	}
	words, err1 := strconv.Atoi(args[1])
	bits, err2 := strconv.Atoi(args[2])
	if err1 != nil || err2 != nil {
		return fmt.Errorf("brains: bad geometry %q %q", args[1], args[2])
	}
	kind := memory.SinglePort
	if len(args) == 4 {
		switch args[3] {
		case "1":
		case "2":
			kind = memory.TwoPort
		default:
			return fmt.Errorf("brains: ports must be 1 or 2, got %q", args[3])
		}
	}
	cfg := memory.Config{Name: args[0], Words: words, Bits: bits, Kind: kind}
	if err := cfg.Validate(); err != nil {
		return err
	}
	for _, m := range s.mems {
		if m.Name == cfg.Name {
			return fmt.Errorf("brains: memory %q already defined", cfg.Name)
		}
	}
	s.mems = append(s.mems, cfg)
	fmt.Fprintf(s.out, "added %s\n", cfg)
	return nil
}

// cmdXCheck cross-checks the compiled BIST design at the gate level: every
// sequencer group's netlist is differentially verified against the March
// reference over complete sessions, plus the shared controller.  With
// "faults [max]" it also runs stuck-at injection campaigns (max caps the
// fault sites per design by stride sampling; default 256).
func (s *Shell) cmdXCheck(args []string) error {
	if s.res == nil {
		return fmt.Errorf("brains: nothing compiled yet")
	}
	withFaults := false
	maxFaults := 256
	if len(args) > 0 {
		if args[0] != "faults" || len(args) > 2 {
			return fmt.Errorf("brains: usage: xcheck [faults [max]]")
		}
		withFaults = true
		if len(args) == 2 {
			n, err := strconv.Atoi(args[1])
			if err != nil || n < 1 {
				return fmt.Errorf("brains: bad fault cap %q", args[1])
			}
			maxFaults = n
		}
	}
	opts := xcheck.Options{Workers: s.opts.Workers}
	cases := make([]xcheck.GroupCase, len(s.res.Groups))
	for i, g := range s.res.Groups {
		cases[i] = xcheck.GroupCase{Name: g.Name, Alg: g.Alg, Mems: g.Mems}
	}
	rep := &xcheck.Report{}
	eq, err := xcheck.VerifyGroupsContext(context.Background(), cases, opts)
	if err != nil {
		return err
	}
	rep.Equiv = eq
	ctl, err := xcheck.VerifyControllerContext(context.Background(), "controller", len(s.res.Groups), opts)
	if err != nil {
		return err
	}
	rep.Equiv = append(rep.Equiv, ctl)
	if withFaults {
		copts := opts
		copts.MaxFaults = maxFaults
		for _, c := range cases {
			camp, err := xcheck.TPGCampaignContext(context.Background(), c.Name, c.Alg, c.Mems, copts)
			if err != nil {
				return err
			}
			rep.Campaigns = append(rep.Campaigns, camp)
		}
		camp, err := xcheck.ControllerCampaignContext(context.Background(), "controller", len(cases), copts)
		if err != nil {
			return err
		}
		rep.Campaigns = append(rep.Campaigns, camp)
	}
	xcheck.WriteReport(s.out, rep)
	if !rep.Pass() {
		return fmt.Errorf("brains: gate-level cross-check FAILED")
	}
	return nil
}

const helpText = `BRAINS memory BIST compiler
  mem <name> <words> <bits> [1|2]
  alg <march name> | algdef <name> <notation>
  group kind|single|permem
  power <max> | clock <mhz> | workers <n>
  backgrounds 1|2 | retention on [cycles] | retention off | portb on|off
  compile | report | evaluate <words> <bits> | verilog
  xcheck [faults [max]]   gate-level differential verification of the
                          compiled design (+ stuck-at campaigns)
`

// Report renders the compilation result: groups, sessions, hardware cost
// and test time.
func Report(res *Result) string {
	var sb strings.Builder
	tg := report.NewTable("BIST plan ("+res.Opts.Algorithm.Name+", grouping "+res.Opts.Grouping.String()+")",
		"Group", "Memories", "Largest", "Cycles", "Power")
	for _, g := range res.Groups {
		largest := 0
		for _, m := range g.Mems {
			if m.Words > largest {
				largest = m.Words
			}
		}
		tg.Row(g.Name, len(g.Mems), largest, report.Comma(GroupCycles(g)), GroupPower(g))
	}
	sb.WriteString(tg.String())
	sb.WriteByte('\n')

	ts := report.NewTable("BIST sessions", "Session", "Groups", "Cycles", "Power")
	for i, s := range res.Sessions {
		names := make([]string, len(s.Groups))
		for j, gi := range s.Groups {
			names[j] = res.Groups[gi].Name
		}
		ts.Row(i+1, strings.Join(names, "+"), report.Comma(s.Cycles), s.Power)
	}
	sb.WriteString(ts.String())
	sb.WriteByte('\n')

	ta := report.NewTable("BIST hardware (NAND2-equivalent gates)", "Block", "Gates")
	ta.Row("Controller", res.Area.Controller)
	ta.Row("Sequencers", res.Area.Sequencers)
	ta.Row("TPGs", res.Area.TPGs)
	ta.Row("Total", res.Area.Total())
	sb.WriteString(ta.String())
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "total BIST time: %s cycles (%.3f ms @ %.0f MHz)\n",
		report.Comma(res.Cycles), res.TestTimeMS(), res.Opts.ClockMHz)
	return sb.String()
}

// EvaluationTable renders the March efficiency comparison.
func EvaluationTable(rows []EvalRow) string {
	t := report.NewTable("March test efficiency",
		"Algorithm", "Ops/word", "Cycles", "Coverage%", "SAF%", "TF%", "CF%", "AF%", "SOF%")
	for _, r := range rows {
		cf := avg(r.Coverage.ClassPercent("CFin"), r.Coverage.ClassPercent("CFid"),
			r.Coverage.ClassPercent("CFst"))
		t.Row(r.Alg.Name, r.Complexity, report.Comma(r.Cycles),
			fmt.Sprintf("%.1f", r.Coverage.Percent()),
			fmt.Sprintf("%.0f", r.Coverage.ClassPercent("SAF")),
			fmt.Sprintf("%.0f", r.Coverage.ClassPercent("TF")),
			fmt.Sprintf("%.1f", cf),
			fmt.Sprintf("%.0f", r.Coverage.ClassPercent("AF")),
			fmt.Sprintf("%.1f", r.Coverage.ClassPercent("SOF")))
	}
	return t.String()
}

func avg(vals ...float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v >= 0 {
			sum += v
			n++
		}
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}
