package march_test

import (
	"fmt"

	"steac/internal/march"
)

func ExampleMarchCMinus() {
	alg := march.MarchCMinus()
	fmt.Println(alg.Name, alg.String())
	fmt.Printf("complexity %dN, %d ops for a 1K-word RAM\n",
		alg.Complexity(), alg.Length(1024))
	// Output:
	// March C- { b(w0); u(r0,w1); u(r1,w0); d(r0,w1); d(r1,w0); b(r0) }
	// complexity 10N, 10240 ops for a 1K-word RAM
}

func ExampleParse() {
	alg, err := march.Parse("mini", "{ b(w0); u(r0,w1); b(r1) }")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(alg.Complexity(), "ops per word")
	alg.Walk(2, func(a march.Access) bool {
		fmt.Printf("%d:%s ", a.Addr, a.Op)
		return true
	})
	fmt.Println()
	// Output:
	// 4 ops per word
	// 0:w0 1:w0 0:r0 0:w1 1:r0 1:w1 0:r1 1:r1
}
