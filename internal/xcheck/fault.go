package xcheck

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"steac/internal/bist"
	"steac/internal/march"
	"steac/internal/memory"
	"steac/internal/netlist"
	"steac/internal/pattern"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

// runFn simulates one (possibly faulty) copy of a design against its golden
// stimulus and returns the first cycle a tester-visible pin disagreed with
// the fault-free trace, or -1 if the fault stayed silent.  Every runFn
// starts by resetting the sim it is handed.
type runFn func(sim *netlist.CompiledSim) int

// sampleFaults applies the MaxFaults cap by uniform stride over the site
// list (never silently: CampaignResult reports Sites vs Total).  A non-zero
// seed rotates the stride's starting point through the universe, so repeated
// sampled campaigns with different seeds cover different sites while each
// remains fully deterministic.
func sampleFaults(faults []netlist.SAFault, max int, seed int64) []netlist.SAFault {
	if max <= 0 || len(faults) <= max {
		return faults
	}
	offset := 0
	if seed != 0 {
		offset = int(uint64(seed) % uint64(len(faults)))
	}
	out := make([]netlist.SAFault, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, faults[(i*len(faults)/max+offset)%len(faults)])
	}
	return out
}

// runCampaign simulates every fault on its own clone of base, fanned out
// over opts.Workers goroutines.  Faults are claimed in fixed-size chunks
// off an atomic counter and results merged in fault-list order, so the
// outcome is identical for any worker count.  Workers poll ctx between
// faults (each fault is one full golden-stimulus simulation, the natural
// batch unit); a canceled campaign returns ctx.Err() wrapped with the
// stage name and no partial result.
func runCampaign(ctx context.Context, name string, base *netlist.CompiledSim, sites int,
	faults []netlist.SAFault, golden int, opts Options, run runFn) (CampaignResult, error) {
	tm := obsSpanCampaign.Start()
	defer tm.Stop()
	res := CampaignResult{Name: name, Sites: sites, Total: len(faults), GoldenCycles: golden}
	detectedAt := make([]int, len(faults))
	var next int64
	const chunk = 16
	var wg sync.WaitGroup
	for w := 0; w < opts.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, chunk)) - chunk
				if lo >= len(faults) || ctx.Err() != nil {
					return
				}
				hi := lo + chunk
				if hi > len(faults) {
					hi = len(faults)
				}
				for i := lo; i < hi; i++ {
					if ctx.Err() != nil {
						return
					}
					fs := base.Clone()
					if err := fs.Inject(faults[i].Gate, faults[i].Port, faults[i].Value); err != nil {
						detectedAt[i] = -1
						continue
					}
					detectedAt[i] = run(fs)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return CampaignResult{}, fmt.Errorf("xcheck: campaign %s: %w", name, err)
	}
	keep := opts.undetectedCap()
	for i, at := range detectedAt {
		if at >= 0 {
			res.Detected++
			res.Detections = append(res.Detections, FaultDetection{Fault: faults[i], Cycle: at})
		} else if keep < 0 || len(res.Undetected) < keep {
			res.Undetected = append(res.Undetected, faults[i])
		}
	}
	obsCampFaults.Add(int64(res.Total))
	obsCampDetected.Add(int64(res.Detected))
	return res, nil
}

// bistTrace is one cycle of the BIST bench's tester-visible pins.
type bistTrace struct{ done, fail bool }

// runBISTTraced runs one solid-background March session on a bench sim with
// emulated RAMs responding to the netlist's own pins, recording (or
// comparing against) the DONE/FAIL trace.  With golden == nil it records
// and returns the trace; otherwise it returns the first divergent cycle or
// -1.  A few extra observation cycles past DONE let late sticky-fail
// effects surface, exactly like a controller polling MBO/MRD would see them.
func runBISTTraced(sim *netlist.CompiledSim, pins benchPins, mems []memory.Config,
	golden []bistTrace) ([]bistTrace, int) {
	sim.Reset()
	gmem := make([][]uint64, len(mems))
	for i, cfg := range mems {
		gmem[i] = make([]uint64, cfg.Words)
	}
	sim.Set("bgsel", false)
	sim.Set("pbsel", false)
	sim.Set("rst", true)
	sim.Set("en", false)
	sim.Tick("ck")
	sim.Set("rst", false)
	sim.Set("en", true)

	var trace []bistTrace
	cycle := 0
	for {
		sim.Settle()
		for i := range mems {
			word := gmem[i][getBusID(sim, pins.addr[i])]
			for b, id := range pins.q[i] {
				sim.SetID(id, word>>uint(b)&1 == 1)
			}
			for b, id := range pins.qb[i] {
				sim.SetID(id, word>>uint(b)&1 == 1)
			}
		}
		sim.Settle()
		cur := bistTrace{done: sim.GetID(pins.done), fail: sim.GetID(pins.fail)}
		if golden != nil {
			if cur != golden[cycle] {
				return nil, cycle
			}
			if cycle == len(golden)-1 {
				return nil, -1
			}
		} else {
			trace = append(trace, cur)
			if cur.done && cycle >= len(trace)-1 && countTrailingDone(trace) > 4 {
				return trace, -1
			}
		}
		for i := range mems {
			if sim.GetID(pins.we[i]) {
				gmem[i][getBusID(sim, pins.addr[i])] = uint64(getBusID(sim, pins.d[i]))
			}
		}
		sim.Tick("ck")
		cycle++
		if golden == nil && cycle > 1<<22 {
			return trace, -1 // safety net; fault-free benches always finish
		}
	}
}

func countTrailingDone(trace []bistTrace) int {
	n := 0
	for i := len(trace) - 1; i >= 0 && trace[i].done; i-- {
		n++
	}
	return n
}

// TPGCampaign injects every stuck-at fault into the flattened sequencer +
// TPG bench and asks whether the BIST's own tester-visible outcome pins
// (DONE and the sticky FAIL) ever diverge from the fault-free session.
//
// Deprecated: use TPGCampaignContext, which can be canceled.
func TPGCampaign(name string, alg march.Algorithm, mems []memory.Config, opts Options) (CampaignResult, error) {
	return TPGCampaignContext(context.Background(), name, alg, mems, opts)
}

// TPGCampaignContext is TPGCampaign under a context (workers poll ctx
// between per-fault simulations).
func TPGCampaignContext(ctx context.Context, name string, alg march.Algorithm, mems []memory.Config, opts Options) (CampaignResult, error) {
	padded := PadConfigs(mems)
	d, err := bist.BuildVerifyBench(alg, padded)
	if err != nil {
		return CampaignResult{}, err
	}
	base, err := netlist.NewCompiledSim(d, "bench")
	if err != nil {
		return CampaignResult{}, err
	}
	pins := newBenchPins(base, padded)
	golden, _ := runBISTTraced(base, pins, padded, nil)
	all := base.Faults()
	faults := sampleFaults(all, opts.MaxFaults, opts.Seed)
	return runCampaign(ctx, name, base, len(all), faults, len(golden), opts, func(sim *netlist.CompiledSim) int {
		_, at := runBISTTraced(sim, pins, padded, golden)
		return at
	})
}

// ctlTrace is one cycle of the controller's tester pins.
type ctlTrace struct{ mbo, mrd, mso bool }

// runControllerTraced drives the scripted two-scenario session (all groups
// pass, then the middle group fails) with behavioural groups answering the
// controller's own GO outputs.  Trace/compare semantics mirror
// runBISTTraced.
func runControllerTraced(sim *netlist.CompiledSim, nGroups int,
	goIDs, gdoneIDs, gfailIDs, outIDs []int, golden []ctlTrace) ([]ctlTrace, int) {
	var trace []ctlTrace
	cycle := 0
	sim.Reset()
	for scenario := 0; scenario < 2; scenario++ {
		failing := -1
		if scenario == 1 {
			failing = nGroups / 2
		}
		// Reset pulse, then start.
		for _, step := range []struct{ mbs, mbr bool }{{false, true}, {true, false}} {
			sim.Set(bist.PinMBS, step.mbs)
			sim.Set(bist.PinMBR, step.mbr)
			sim.Set(bist.PinMSI, true)
			for i := 0; i < nGroups; i++ {
				sim.SetID(gdoneIDs[i], false)
				sim.SetID(gfailIDs[i], false)
			}
			sim.Tick(bist.PinMBC)
		}
		sim.Set(bist.PinMBS, false)
		age := make([]int, nGroups)
		for local := 0; local < 12*nGroups+12; local++ {
			sim.Settle()
			cur := ctlTrace{sim.GetID(outIDs[0]), sim.GetID(outIDs[1]), sim.GetID(outIDs[2])}
			if golden != nil {
				if cur != golden[cycle] {
					return nil, cycle
				}
				if cycle == len(golden)-1 {
					return nil, -1
				}
			} else {
				trace = append(trace, cur)
			}
			for i := 0; i < nGroups; i++ {
				gdone, gfail := false, false
				if sim.GetID(goIDs[i]) {
					age[i]++
					gdone = age[i] >= 3+i%4
					gfail = i == failing && age[i] == 2
				}
				sim.SetID(gdoneIDs[i], gdone)
				sim.SetID(gfailIDs[i], gfail)
			}
			sim.Tick(bist.PinMBC)
			cycle++
		}
	}
	return trace, -1
}

// ControllerCampaign injects every stuck-at fault into the flattened shared
// controller and checks whether the MBO/MRD/MSO tester pins ever diverge
// from the fault-free scripted session.
//
// Deprecated: use ControllerCampaignContext, which can be canceled.
func ControllerCampaign(name string, nGroups int, opts Options) (CampaignResult, error) {
	return ControllerCampaignContext(context.Background(), name, nGroups, opts)
}

// ControllerCampaignContext is ControllerCampaign under a context (workers
// poll ctx between per-fault simulations).
func ControllerCampaignContext(ctx context.Context, name string, nGroups int, opts Options) (CampaignResult, error) {
	d := netlist.NewDesign("xctl", nil)
	if _, err := bist.GenerateController(d, "ctl", nGroups); err != nil {
		return CampaignResult{}, err
	}
	base, err := netlist.NewCompiledSim(d, "ctl")
	if err != nil {
		return CampaignResult{}, err
	}
	goIDs := base.BusIDs("GO", nGroups)
	gdoneIDs := base.BusIDs("GDONE", nGroups)
	gfailIDs := base.BusIDs("GFAIL", nGroups)
	outIDs := []int{base.NetID(bist.PinMBO), base.NetID(bist.PinMRD), base.NetID(bist.PinMSO)}
	golden, _ := runControllerTraced(base, nGroups, goIDs, gdoneIDs, gfailIDs, outIDs, nil)
	all := base.Faults()
	faults := sampleFaults(all, opts.MaxFaults, opts.Seed)
	return runCampaign(ctx, name, base, len(all), faults, len(golden), opts, func(sim *netlist.CompiledSim) int {
		_, at := runControllerTraced(sim, nGroups, goIDs, gdoneIDs, gfailIDs, outIDs, golden)
		return at
	})
}

// WrapperCampaign injects stuck-at faults into the wrapper logic (boundary
// cells, WIR, WBY, glue — core-internal faults are the scan patterns' own
// job and are excluded) and checks whether the translated scan program's
// wso expectations catch them.  The detection criterion is exactly the
// tester's: a miscompare against a non-X expected bit.
//
// Deprecated: use WrapperCampaignContext, which can be canceled.
func WrapperCampaign(name string, core *testinfo.Core, width int, opts Options) (CampaignResult, error) {
	return WrapperCampaignContext(context.Background(), name, core, width, opts)
}

// WrapperCampaignContext is WrapperCampaign under a context (workers poll
// ctx between per-fault simulations).
func WrapperCampaignContext(ctx context.Context, name string, core *testinfo.Core, width int, opts Options) (CampaignResult, error) {
	d, plan, err := BuildWrapperDesign(core, width, wrapper.LPT)
	if err != nil {
		return CampaignResult{}, err
	}
	base, err := netlist.NewCompiledSim(d, "xtop")
	if err != nil {
		return CampaignResult{}, err
	}
	atpg, err := pattern.NewATPG(core)
	if err != nil {
		return CampaignResult{}, err
	}
	var src pattern.Source = atpg
	if opts.MaxPatterns > 0 && opts.MaxPatterns < atpg.ScanCount() {
		src = &cappedSource{Source: atpg, n: opts.MaxPatterns}
	}
	pins := newWrapPins(base, plan.Width)
	lane := pattern.ScanLane{
		Core: core, Source: src, Plan: plan,
		Cycles: plan.ScanTestCycles(src.ScanCount()),
	}
	layout := pattern.SessionLayout{Cycles: lane.Cycles, Scan: []pattern.ScanLane{lane}}
	prog := &pattern.Program{TamWidth: plan.Width}

	run := func(sim *netlist.CompiledSim) int {
		sim.Reset()
		wrapDefaults(sim, core)
		detected := -1
		wirCycles := wirBypassScript(sim, pins, func(cycle int, pin string, got, want bool) bool {
			if got != want && detected < 0 {
				detected = cycle
			}
			return detected < 0
		})
		if detected >= 0 {
			return detected
		}
		_ = streamScan(ctx, sim, prog, layout, core, pins, func(cycle int, pin string, got, want bool) bool {
			if got != want && detected < 0 {
				detected = wirCycles + cycle
			}
			return detected < 0
		})
		return detected
	}

	var faults []netlist.SAFault
	for _, f := range base.Faults() {
		if strings.Contains(f.Gate, "/u_core/") {
			continue
		}
		faults = append(faults, f)
	}
	sites := len(faults)
	faults = sampleFaults(faults, opts.MaxFaults, opts.Seed)
	return runCampaign(ctx, name, base, sites, faults, wirCyclesFor()+layout.Cycles, opts, run)
}

// wirCyclesFor is the fixed length of the WIR excursion script.
func wirCyclesFor() int { return 3 + 5 + 3 }

// cappedSource serves only the first n scan patterns of its base source.
type cappedSource struct {
	pattern.Source
	n int
}

func (c *cappedSource) ScanCount() int { return c.n }
