// Package controller generates the chip-level test controller (the "TACS
// Generator" of Fig. 1): a session sequencer that decodes the active test
// session, re-multiplexes the shared test-control signals onto the active
// cores (one chip SE pin fans out to every core's scan enables, the cores'
// test-enable lines are driven from the decoded session state), and feeds
// the session select to the TAM multiplexer.  On the DSC chip the paper
// reports the controller at about 371 NAND2-equivalent gates.
package controller

import (
	"fmt"

	"steac/internal/netlist"
)

// CoreCtl describes one core's control needs.
type CoreCtl struct {
	Name string
	// TestEnables and ScanEnables are the core-side control pin counts
	// (Table 1: USB has 6 TEs and 1 SE, the TV encoder 1 and 1).
	TestEnables int
	ScanEnables int
	// ActiveSessions lists the sessions in which the core is tested.
	ActiveSessions []int
}

// Spec is the controller configuration derived from the scheduling result.
type Spec struct {
	Sessions int
	Cores    []CoreCtl
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Sessions < 1 {
		return fmt.Errorf("controller: %d sessions", s.Sessions)
	}
	seen := make(map[string]bool)
	for _, c := range s.Cores {
		if seen[c.Name] {
			return fmt.Errorf("controller: duplicate core %s", c.Name)
		}
		seen[c.Name] = true
		for _, a := range c.ActiveSessions {
			if a < 0 || a >= s.Sessions {
				return fmt.Errorf("controller: core %s active in session %d of %d",
					c.Name, a, s.Sessions)
			}
		}
	}
	return nil
}

func sessBits(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// Generate builds the controller module.
//
// Ports: TCK (test clock), TRST (reset), TNEXT (session advance strobe from
// the tester), SE (chip-level scan enable); outputs SESS[bits] to the TAM
// multiplexer, the global wrapper-instruction strobes SHIFTWIR/UPDATEWIR
// (pulsed by the WIR-load sequencer on every session entry), UPDATE (the
// boundary-register update strobe derived from the falling edge of SE), TSO
// (serial status out: per-session done flags selected by the session
// counter) and, per core, <core>_TE[i], <core>_SE[j], <core>_SHIFT and
// <core>_MODE.  Each core's control outputs are registered so session
// transitions are glitch-free.
func Generate(d *netlist.Design, name string, spec Spec) (*netlist.Module, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := netlist.NewModule(name)
	for _, p := range []string{"TCK", "TRST", "TNEXT", "SE"} {
		m.MustPort(p, netlist.In, 1)
	}
	sb := sessBits(spec.Sessions)
	m.MustPort("SESS", netlist.Out, sb)
	for _, p := range []string{"SHIFTWIR", "UPDATEWIR", "UPDATE", "TSO"} {
		m.MustPort(p, netlist.Out, 1)
	}

	// Session counter.
	cnt := make([]string, sb)
	for i := range cnt {
		cnt[i] = netlist.BitName("SESS", i, sb)
	}
	if err := addCounter(m, "sc", "TCK", "TRST", "TNEXT", cnt); err != nil {
		return nil, err
	}
	hot := make([]string, spec.Sessions)
	for i := range hot {
		hot[i] = fmt.Sprintf("hot%d", i)
		m.AddNet(hot[i])
	}
	if _, err := netlist.AddDecoder(m, "sdec", cnt, "", hot); err != nil {
		return nil, err
	}

	// Boundary update strobe: pulses right after SE falls (shift phase
	// over), which is when the wrapper update latches take the stimulus.
	m.MustInstance("seq", netlist.CellDFF, map[string]string{"D": "SE", "CK": "TCK", "Q": "se_q"})
	m.MustInstance("sei", netlist.CellInv, map[string]string{"A": "SE", "Z": "se_n"})
	m.MustInstance("upd", netlist.CellAnd2, map[string]string{"A": "se_q", "B": "se_n", "Z": "UPDATE"})

	// WIR-load sequencer: a session entry (registered TNEXT) raises a busy
	// flag for four TCKs during which SHIFTWIR streams the instruction,
	// closing with an UPDATEWIR pulse.
	m.MustInstance("tnq", netlist.CellDFF, map[string]string{"D": "TNEXT", "CK": "TCK", "Q": "tn_q"})
	wcnt := []string{"wb0", "wb1"}
	for _, n := range wcnt {
		m.AddNet(n)
	}
	m.MustInstance("wdone0", netlist.CellAnd2, map[string]string{"A": "wb0", "B": "wb1", "Z": "wir_last"})
	m.MustInstance("wbor", netlist.CellOr2, map[string]string{"A": "tn_q", "B": "wir_busyq", "Z": "wb_set"})
	m.MustInstance("wlinv", netlist.CellInv, map[string]string{"A": "wir_last", "Z": "wir_nlast"})
	m.MustInstance("wband", netlist.CellAnd2, map[string]string{"A": "wb_set", "B": "wir_nlast", "Z": "wb_d0"})
	m.MustInstance("wbrst", netlist.CellInv, map[string]string{"A": "TRST", "Z": "wb_nrst"})
	m.MustInstance("wband2", netlist.CellAnd2, map[string]string{"A": "wb_d0", "B": "wb_nrst", "Z": "wb_d"})
	m.MustInstance("wbff", netlist.CellDFF, map[string]string{"D": "wb_d", "CK": "TCK", "Q": "wir_busyq"})
	if err := addCounter(m, "wc", "TCK", "TRST", "wir_busyq", wcnt); err != nil {
		return nil, err
	}
	m.MustInstance("swbuf", netlist.CellBuf, map[string]string{"A": "wir_busyq", "Z": "SHIFTWIR"})
	m.MustInstance("uwand", netlist.CellAnd2, map[string]string{"A": "wir_busyq", "B": "wir_last", "Z": "UPDATEWIR"})

	// Per-session done flags, serially observable on TSO.
	doneFlags := make([]string, spec.Sessions)
	for s := 0; s < spec.Sessions; s++ {
		fl := fmt.Sprintf("done%d", s)
		doneFlags[s] = fl
		m.AddNet(fl)
		cap := fmt.Sprintf("dcap%d", s)
		m.MustInstance(fmt.Sprintf("dc%d", s), netlist.CellAnd2,
			map[string]string{"A": "TNEXT", "B": hot[s], "Z": cap})
		m.MustInstance(fmt.Sprintf("do%d", s), netlist.CellOr2,
			map[string]string{"A": cap, "B": fl, "Z": fmt.Sprintf("dn%d", s)})
		m.MustInstance(fmt.Sprintf("dr%d", s), netlist.CellAnd2,
			map[string]string{"A": fmt.Sprintf("dn%d", s), "B": "wb_nrst", "Z": fmt.Sprintf("dd%d", s)})
		m.MustInstance(fmt.Sprintf("df%d", s), netlist.CellDFF,
			map[string]string{"D": fmt.Sprintf("dd%d", s), "CK": "TCK", "Q": fl})
	}
	if _, err := netlist.AddMuxTree(m, "tso", doneFlags, cnt[:sessBits(spec.Sessions)], "TSO"); err != nil {
		return nil, err
	}

	for _, core := range spec.Cores {
		m.MustPort(core.Name+"_MODE", netlist.Out, 1)
		m.MustPort(core.Name+"_SHIFT", netlist.Out, 1)
		if core.TestEnables > 0 {
			m.MustPort(core.Name+"_TE", netlist.Out, core.TestEnables)
		}
		if core.ScanEnables > 0 {
			m.MustPort(core.Name+"_SE", netlist.Out, core.ScanEnables)
		}
		// active = OR of the core's sessions, registered on TCK.
		act := core.Name + "_actd"
		m.AddNet(act)
		if len(core.ActiveSessions) == 0 {
			m.MustInstance(core.Name+"_tie", netlist.CellTie0, map[string]string{"Z": act})
		} else {
			terms := make([]string, len(core.ActiveSessions))
			for i, s := range core.ActiveSessions {
				terms[i] = hot[s]
			}
			if _, err := netlist.AddOrTree(m, core.Name+"_act", terms, act); err != nil {
				return nil, err
			}
		}
		reg := core.Name + "_actq"
		m.AddNet(reg)
		m.MustInstance(core.Name+"_aff", netlist.CellDFF,
			map[string]string{"D": act, "CK": "TCK", "Q": reg})
		m.MustInstance(core.Name+"_mbuf", netlist.CellBuf,
			map[string]string{"A": reg, "Z": core.Name + "_MODE"})
		m.MustInstance(core.Name+"_shg", netlist.CellAnd2,
			map[string]string{"A": "SE", "B": reg, "Z": core.Name + "_SHIFT"})
		for i := 0; i < core.TestEnables; i++ {
			m.MustInstance(fmt.Sprintf("%s_teb%d", core.Name, i), netlist.CellBuf,
				map[string]string{"A": reg, "Z": netlist.BitName(core.Name+"_TE", i, core.TestEnables)})
		}
		for i := 0; i < core.ScanEnables; i++ {
			m.MustInstance(fmt.Sprintf("%s_seg%d", core.Name, i), netlist.CellAnd2,
				map[string]string{"A": "SE", "B": reg,
					"Z": netlist.BitName(core.Name+"_SE", i, core.ScanEnables)})
		}
	}
	if err := d.AddModule(m); err != nil {
		return nil, err
	}
	return m, nil
}

// addCounter is a synchronous up counter (enable TNEXT, reset TRST); it
// mirrors the BIST controller's counter but lives here to keep the packages
// independent.
func addCounter(m *netlist.Module, name, ck, rst, en string, q []string) error {
	carry := en
	nrst := name + "_nrst"
	m.AddNet(nrst)
	if _, err := m.AddInstance(name+"_rinv", netlist.CellInv,
		map[string]string{"A": rst, "Z": nrst}); err != nil {
		return err
	}
	for i := range q {
		sum := fmt.Sprintf("%s_s%d", name, i)
		dnet := fmt.Sprintf("%s_d%d", name, i)
		if _, err := m.AddInstance(fmt.Sprintf("%s_x%d", name, i), netlist.CellXor2,
			map[string]string{"A": q[i], "B": carry, "Z": sum}); err != nil {
			return err
		}
		if _, err := m.AddInstance(fmt.Sprintf("%s_a%d", name, i), netlist.CellAnd2,
			map[string]string{"A": sum, "B": nrst, "Z": dnet}); err != nil {
			return err
		}
		if _, err := m.AddInstance(fmt.Sprintf("%s_f%d", name, i), netlist.CellDFF,
			map[string]string{"D": dnet, "CK": ck, "Q": q[i]}); err != nil {
			return err
		}
		if i < len(q)-1 {
			nc := fmt.Sprintf("%s_c%d", name, i+1)
			if _, err := m.AddInstance(fmt.Sprintf("%s_cg%d", name, i), netlist.CellAnd2,
				map[string]string{"A": carry, "B": q[i], "Z": nc}); err != nil {
				return err
			}
			carry = nc
		}
	}
	return nil
}
