// Package wrapper implements the IEEE 1500-style core test wrapper used by
// STEAC (Fig. 1 "Wrapper Generator"): the wrapper boundary register (WBR)
// cell whose area matches the paper's 26 NAND2-equivalent gates, wrapper
// chain design (partitioning internal scan chains and boundary cells onto
// the TAM wires assigned by the scheduler, with perfect rebalancing for
// soft cores), scan test-time models, and structural wrapper generation.
package wrapper

import (
	"fmt"
	"sort"

	"steac/internal/testinfo"
)

// Partitioner selects the heuristic used to assign core scan chains to
// wrapper chains on hard cores.
type Partitioner int

// Partitioners (compared by the BenchmarkWrapperChainDesign ablation).
const (
	// LPT is longest-processing-time-first: sort chains by descending
	// length, always assign to the currently shortest wrapper chain.
	LPT Partitioner = iota
	// FirstFit assigns chains in the given order to the first wrapper
	// chain below the running average.
	FirstFit
	// Optimal exhaustively minimizes the maximum wrapper-chain length;
	// exponential, only usable for the small chain counts of real cores.
	Optimal
)

// String names the partitioner.
func (p Partitioner) String() string {
	switch p {
	case LPT:
		return "LPT"
	case FirstFit:
		return "first-fit"
	case Optimal:
		return "optimal"
	}
	return fmt.Sprintf("Partitioner(%d)", int(p))
}

// Chain is one designed wrapper chain: input boundary cells, then core
// scan-chain segments, then output boundary cells.
type Chain struct {
	// CoreChains holds indices into the core's ScanChains slice (empty
	// for a pure boundary chain).  For soft cores the segments are
	// synthetic and SegmentBits holds their lengths instead.
	CoreChains  []int
	SegmentBits []int
	InCells     int
	OutCells    int
}

// ScanBits returns the internal scan bits on this wrapper chain.
func (c Chain) ScanBits() int {
	total := 0
	for _, b := range c.SegmentBits {
		total += b
	}
	return total
}

// Length returns the total shift length of the wrapper chain.
func (c Chain) Length() int { return c.InCells + c.ScanBits() + c.OutCells }

// Plan is a complete wrapper-chain design for one core at one TAM width.
type Plan struct {
	Core   string
	Width  int
	Chains []Chain
	// Soft records whether the core's chains were rebalanced.
	Soft bool
}

// MaxLength returns the longest wrapper chain, which paces scan shifting.
func (p Plan) MaxLength() int {
	m := 0
	for _, c := range p.Chains {
		if l := c.Length(); l > m {
			m = l
		}
	}
	return m
}

// ScanTestCycles returns the scan test time for the plan: with p patterns
// and maximum wrapper chain length L, the classical cycle count
// (1+L)·p + L (load/shift overlapped across patterns, one capture per
// pattern, plus the final unload).
func (p Plan) ScanTestCycles(patterns int) int {
	if patterns <= 0 {
		return 0
	}
	l := p.MaxLength()
	return (1+l)*patterns + l
}

// DesignChains partitions the core's scan chains and boundary cells over
// width wrapper chains.  Soft cores are perfectly rebalanced (the scheduler
// feeds the balanced lengths back to the SOC integrator, paper §2); hard
// cores use the given partitioner on the fixed chains and then pad with
// boundary cells greedily.
func DesignChains(core *testinfo.Core, width int, part Partitioner) (Plan, error) {
	if width < 1 {
		return Plan{}, fmt.Errorf("wrapper: width %d < 1", width)
	}
	if err := core.Validate(); err != nil {
		return Plan{}, err
	}
	if len(core.ScanChains) == 0 {
		// Pure-functional core: boundary cells only.
		plan := Plan{Core: core.Name, Width: width, Chains: make([]Chain, width)}
		distributeBoundary(plan.Chains, core.PIs, core.POs)
		return plan, nil
	}
	if core.Soft {
		return designSoft(core, width), nil
	}
	return designHard(core, width, part)
}

// designSoft rebalances a soft core: all scan bits plus boundary cells are
// spread as evenly as possible.
func designSoft(core *testinfo.Core, width int) Plan {
	plan := Plan{Core: core.Name, Width: width, Soft: true, Chains: make([]Chain, width)}
	total := core.TotalScanBits()
	base, extra := total/width, total%width
	for i := range plan.Chains {
		bits := base
		if i < extra {
			bits++
		}
		if bits > 0 {
			plan.Chains[i].SegmentBits = []int{bits}
		}
	}
	distributeBoundary(plan.Chains, core.PIs, core.POs)
	return plan
}

func designHard(core *testinfo.Core, width int, part Partitioner) (Plan, error) {
	lengths := make([]int, len(core.ScanChains))
	for i, ch := range core.ScanChains {
		lengths[i] = ch.Length
	}
	var assign []int
	switch part {
	case LPT:
		assign = partitionLPT(lengths, width)
	case FirstFit:
		assign = partitionFirstFit(lengths, width)
	case Optimal:
		if len(lengths) > 16 {
			return Plan{}, fmt.Errorf("wrapper: optimal partitioner limited to 16 chains, got %d", len(lengths))
		}
		assign = partitionOptimal(lengths, width)
	default:
		return Plan{}, fmt.Errorf("wrapper: unknown partitioner %d", int(part))
	}
	plan := Plan{Core: core.Name, Width: width, Chains: make([]Chain, width)}
	for ci, wi := range assign {
		plan.Chains[wi].CoreChains = append(plan.Chains[wi].CoreChains, ci)
		plan.Chains[wi].SegmentBits = append(plan.Chains[wi].SegmentBits, lengths[ci])
	}
	distributeBoundary(plan.Chains, core.PIs, core.POs)
	return plan, nil
}

// distributeBoundary adds input and output boundary cells to the wrapper
// chains, always padding the currently shortest chain (greedy balancing).
func distributeBoundary(chains []Chain, inCells, outCells int) {
	addOne := func(isIn bool) {
		best := 0
		for i := 1; i < len(chains); i++ {
			if chains[i].Length() < chains[best].Length() {
				best = i
			}
		}
		if isIn {
			chains[best].InCells++
		} else {
			chains[best].OutCells++
		}
	}
	for i := 0; i < inCells; i++ {
		addOne(true)
	}
	for i := 0; i < outCells; i++ {
		addOne(false)
	}
}

func partitionLPT(lengths []int, width int) []int {
	order := make([]int, len(lengths))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return lengths[order[a]] > lengths[order[b]] })
	loads := make([]int, width)
	assign := make([]int, len(lengths))
	for _, ci := range order {
		best := 0
		for w := 1; w < width; w++ {
			if loads[w] < loads[best] {
				best = w
			}
		}
		assign[ci] = best
		loads[best] += lengths[ci]
	}
	return assign
}

func partitionFirstFit(lengths []int, width int) []int {
	total := 0
	for _, l := range lengths {
		total += l
	}
	avg := (total + width - 1) / width
	loads := make([]int, width)
	assign := make([]int, len(lengths))
	for ci, l := range lengths {
		placed := false
		for w := 0; w < width; w++ {
			if loads[w]+l <= avg {
				assign[ci] = w
				loads[w] += l
				placed = true
				break
			}
		}
		if !placed {
			best := 0
			for w := 1; w < width; w++ {
				if loads[w] < loads[best] {
					best = w
				}
			}
			assign[ci] = best
			loads[best] += l
		}
	}
	return assign
}

// partitionOptimal does branch-and-bound over all assignments.
func partitionOptimal(lengths []int, width int) []int {
	order := make([]int, len(lengths))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return lengths[order[a]] > lengths[order[b]] })

	best := make([]int, len(lengths))
	copy(best, partitionLPT(lengths, width))
	bestMax := maxLoad(lengths, best, width)

	cur := make([]int, len(lengths))
	loads := make([]int, width)
	var rec func(k int)
	rec = func(k int) {
		if k == len(order) {
			m := 0
			for _, l := range loads {
				if l > m {
					m = l
				}
			}
			if m < bestMax {
				bestMax = m
				copy(best, cur)
			}
			return
		}
		ci := order[k]
		seen := make(map[int]bool)
		for w := 0; w < width; w++ {
			if seen[loads[w]] {
				continue // symmetric branch
			}
			seen[loads[w]] = true
			if loads[w]+lengths[ci] >= bestMax {
				continue
			}
			loads[w] += lengths[ci]
			cur[ci] = w
			rec(k + 1)
			loads[w] -= lengths[ci]
		}
	}
	rec(0)
	return best
}

func maxLoad(lengths, assign []int, width int) int {
	loads := make([]int, width)
	for ci, w := range assign {
		loads[w] += lengths[ci]
	}
	m := 0
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}
