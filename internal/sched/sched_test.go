package sched

import (
	"context"
	"fmt"
	"testing"

	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

func usbCore() *testinfo.Core {
	return &testinfo.Core{
		Name:        "USB",
		Clocks:      []string{"ck0", "ck1", "ck2", "ck3"},
		Resets:      []string{"rst0", "rst1", "rst2"},
		ScanEnables: []string{"se"},
		TestEnables: []string{"t0", "t1", "t2", "t3", "t4", "t5"},
		PIs:         221, POs: 104,
		ScanChains: []testinfo.ScanChain{
			{Name: "c0", Length: 1629, In: "si0", Out: "so0", Clock: "ck0"},
			{Name: "c1", Length: 78, In: "si1", Out: "so1", Clock: "ck1"},
			{Name: "c2", Length: 293, In: "si2", Out: "so2", Clock: "ck2"},
			{Name: "c3", Length: 45, In: "si3", Out: "so3", Clock: "ck3"},
		},
		Patterns: []testinfo.PatternSet{{Name: "scan", Type: testinfo.Scan, Count: 716, Seed: 1}},
	}
}

func tvCore() *testinfo.Core {
	return &testinfo.Core{
		Name:        "TV",
		Clocks:      []string{"ck"},
		Resets:      []string{"rst"},
		ScanEnables: []string{"se"},
		TestEnables: []string{"te"},
		PIs:         25, POs: 40,
		ScanChains: []testinfo.ScanChain{
			{Name: "c0", Length: 577, In: "si0", Out: "so0", Clock: "ck"},
			{Name: "c1", Length: 576, In: "si1", Out: "shared", Clock: "ck", SharedOut: true},
		},
		Patterns: []testinfo.PatternSet{
			{Name: "scan", Type: testinfo.Scan, Count: 229, Seed: 2},
			{Name: "func", Type: testinfo.Functional, Count: 202673, Seed: 3},
		},
	}
}

func jpegCore() *testinfo.Core {
	return &testinfo.Core{
		Name:   "JPEG",
		Clocks: []string{"ck"},
		PIs:    165, POs: 104,
		Patterns: []testinfo.PatternSet{{Name: "func", Type: testinfo.Functional, Count: 235696, Seed: 4}},
	}
}

func dscCores() []*testinfo.Core {
	return []*testinfo.Core{usbCore(), tvCore(), jpegCore()}
}

func dscBist() []BISTGroup {
	return []BISTGroup{
		{Name: "g0", Cycles: 250000, Power: 3},
		{Name: "g1", Cycles: 150000, Power: 2},
		{Name: "g2", Cycles: 200000, Power: 2},
	}
}

func dscResources() Resources {
	return Resources{TestPins: 28, FuncPins: 96, MaxPower: 0, Partitioner: wrapper.LPT}
}

func TestBuildTests(t *testing.T) {
	tests, err := BuildTests(dscCores(), dscBist())
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]Kind)
	for _, x := range tests {
		ids[x.ID] = x.Kind
	}
	for id, k := range map[string]Kind{
		"USB.scan": ScanKind, "TV.scan": ScanKind, "TV.func": FuncKind,
		"JPEG.func": FuncKind, "bist.g0": BISTKind,
	} {
		if got, ok := ids[id]; !ok || got != k {
			t.Fatalf("test %s missing or wrong kind (%v)", id, got)
		}
	}
	if len(tests) != 7 {
		t.Fatalf("tests = %d, want 7", len(tests))
	}
	if _, err := BuildTests(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := BuildTests(nil, []BISTGroup{{Name: "z", Cycles: 0}}); err == nil {
		t.Fatal("zero-cycle BIST group accepted")
	}
}

func TestFuncCycles(t *testing.T) {
	for _, tc := range []struct {
		patterns, need, granted, want int
	}{
		{100, 65, 65, 100},
		{100, 65, 33, 200},
		{100, 269, 96, 300},
		{0, 10, 1, 0},
		{7, 0, 0, 7},
	} {
		got, err := FuncCycles(tc.patterns, tc.need, tc.granted)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("FuncCycles(%d,%d,%d) = %d, want %d",
				tc.patterns, tc.need, tc.granted, got, tc.want)
		}
	}
	if _, err := FuncCycles(5, 10, 0); err == nil {
		t.Fatal("zero grant accepted")
	}
}

func TestScanCyclesAndSaturation(t *testing.T) {
	usb := usbCore()
	c4, err := ScanCycles(usb, 4, wrapper.LPT)
	if err != nil {
		t.Fatal(err)
	}
	if c4 != 1168709 {
		t.Fatalf("USB scan at w=4 = %d, want 1168709", c4)
	}
	sat, err := SaturationWidth(usb, 8, wrapper.LPT)
	if err != nil {
		t.Fatal(err)
	}
	// The 1629-bit chain dominates from width 2 on.
	if sat != 2 {
		t.Fatalf("saturation width = %d, want 2", sat)
	}
	c2, err := ScanCycles(usb, 2, wrapper.LPT)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c4 {
		t.Fatalf("width 2 vs 4: %d vs %d", c2, c4)
	}
}

func TestControlPins(t *testing.T) {
	cores := dscCores()
	if got := ControlPins(cores, false, false); got != 19 {
		t.Fatalf("dedicated control = %d, want the paper's 19", got)
	}
	if got := ControlPins(cores, false, true); got != 14 {
		t.Fatalf("shared control = %d, want 14", got)
	}
	if got := ControlPins(cores, true, true); got != 18 {
		t.Fatalf("shared control + BIST = %d, want 18", got)
	}
}

func TestSessionBasedDSC(t *testing.T) {
	tests, err := BuildTests(dscCores(), dscBist())
	if err != nil {
		t.Fatal(err)
	}
	s, err := SessionBasedContext(context.Background(), tests, dscResources())
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != "session-based" {
		t.Fatal("kind")
	}
	sum := 0
	placed := make(map[string]bool)
	for _, sess := range s.Sessions {
		sum += sess.Cycles
		if sess.ControlPins+2*widthSum(sess) > dscResources().TestPins {
			t.Fatalf("session %d exceeds pin budget: ctrl %d, data %d",
				sess.Index, sess.ControlPins, 2*widthSum(sess))
		}
		for _, p := range sess.Placements {
			placed[p.Test.ID] = true
			if p.Cycles <= 0 {
				t.Fatalf("placement %s has %d cycles", p.Test.ID, p.Cycles)
			}
		}
	}
	if sum != s.TotalCycles {
		t.Fatalf("total %d != session sum %d", s.TotalCycles, sum)
	}
	if len(placed) != len(tests) {
		t.Fatalf("placed %d of %d tests", len(placed), len(tests))
	}
}

func widthSum(s Session) int {
	w := 0
	for _, p := range s.Placements {
		w += p.Width
	}
	return w
}

// The paper's central claim: under a tight test-IO budget, session-based
// scheduling (shared control IOs) beats the non-session baseline (dedicated
// control IOs -> starved TAM).
func TestSessionBeatsNonSessionUnderTightPins(t *testing.T) {
	tests, err := BuildTests(dscCores(), dscBist())
	if err != nil {
		t.Fatal(err)
	}
	res := Resources{TestPins: 25, FuncPins: 96, Partitioner: wrapper.LPT}
	sb, err := SessionBasedContext(context.Background(), tests, res)
	if err != nil {
		t.Fatal(err)
	}
	nsb, err := NonSessionBased(tests, res)
	if err != nil {
		t.Fatal(err)
	}
	if sb.TotalCycles >= nsb.TotalCycles {
		t.Fatalf("session-based %d not better than non-session %d",
			sb.TotalCycles, nsb.TotalCycles)
	}
	// Control-pin accounting: 19 core pins + 4 BIST dedicated vs shared.
	if nsb.ControlPinsMax != 23 {
		t.Fatalf("non-session control pins = %d, want 23", nsb.ControlPinsMax)
	}
	if sb.ControlPinsMax >= nsb.ControlPinsMax {
		t.Fatalf("sharing did not reduce control pins: %d vs %d",
			sb.ControlPinsMax, nsb.ControlPinsMax)
	}
}

// With generous pins, the non-session packer may win (full overlap), which
// is the paper's other observation: "there are also cases when parallel
// testing leads to shorter test time than serial testing".
func TestNonSessionWinsWithGenerousPins(t *testing.T) {
	tests, err := BuildTests(dscCores(), dscBist())
	if err != nil {
		t.Fatal(err)
	}
	res := Resources{TestPins: 60, FuncPins: 512, Partitioner: wrapper.LPT}
	sb, err := SessionBasedContext(context.Background(), tests, res)
	if err != nil {
		t.Fatal(err)
	}
	nsb, err := NonSessionBased(tests, res)
	if err != nil {
		t.Fatal(err)
	}
	if nsb.TotalCycles > sb.TotalCycles {
		t.Fatalf("with generous pins non-session (%d) should not lose to session-based (%d)",
			nsb.TotalCycles, sb.TotalCycles)
	}
}

func TestSessionNeverWorseThanSerial(t *testing.T) {
	tests, err := BuildTests(dscCores(), dscBist())
	if err != nil {
		t.Fatal(err)
	}
	for _, pins := range []int{26, 28, 40, 60} {
		res := Resources{TestPins: pins, FuncPins: 128, Partitioner: wrapper.LPT}
		sb, err := SessionBasedContext(context.Background(), tests, res)
		if err != nil {
			t.Fatal(err)
		}
		ser, err := Serial(tests, res)
		if err != nil {
			t.Fatal(err)
		}
		if sb.TotalCycles > ser.TotalCycles {
			t.Fatalf("pins=%d: session-based %d worse than serial %d",
				pins, sb.TotalCycles, ser.TotalCycles)
		}
	}
}

func TestPowerConstraintSerializes(t *testing.T) {
	bist := []BISTGroup{
		{Name: "hot1", Cycles: 500000, Power: 10},
		{Name: "hot2", Cycles: 500000, Power: 10},
	}
	tests, err := BuildTests([]*testinfo.Core{usbCore()}, bist)
	if err != nil {
		t.Fatal(err)
	}
	free := Resources{TestPins: 40, FuncPins: 64, Partitioner: wrapper.LPT}
	bound := free
	bound.MaxPower = 12 // USB scan (~3) + one hot group, never both groups with a core
	sFree, err := SessionBasedContext(context.Background(), tests, free)
	if err != nil {
		t.Fatal(err)
	}
	sBound, err := SessionBasedContext(context.Background(), tests, bound)
	if err != nil {
		t.Fatal(err)
	}
	if sBound.TotalCycles < sFree.TotalCycles {
		t.Fatalf("power bound produced a faster schedule: %d vs %d",
			sBound.TotalCycles, sFree.TotalCycles)
	}
	for _, sess := range sBound.Sessions {
		if !almostLE(sess.PeakPower, 12) {
			t.Fatalf("session peak power %.1f exceeds bound", sess.PeakPower)
		}
	}
}

func TestInfeasiblePins(t *testing.T) {
	tests, err := BuildTests(dscCores(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res := Resources{TestPins: 5, FuncPins: 64, Partitioner: wrapper.LPT}
	if _, err := SessionBasedContext(context.Background(), tests, res); err == nil {
		t.Fatal("5-pin budget accepted by session scheduler")
	}
	if _, err := NonSessionBased(tests, res); err == nil {
		t.Fatal("5-pin budget accepted by non-session scheduler")
	}
}

func TestSerialStructure(t *testing.T) {
	tests, err := BuildTests(dscCores(), dscBist())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Serial(tests, dscResources())
	if err != nil {
		t.Fatal(err)
	}
	// 3 core sessions + 3 BIST sessions.
	if len(s.Sessions) != 6 {
		t.Fatalf("serial sessions = %d, want 6", len(s.Sessions))
	}
	if _, _, ok := s.PlacementFor("USB.scan"); !ok {
		t.Fatal("USB.scan missing from serial schedule")
	}
}

func TestNonSessionRespectsPrecedence(t *testing.T) {
	tests, err := BuildTests([]*testinfo.Core{tvCore()}, dscBist())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NonSessionBased(tests, dscResources())
	if err != nil {
		t.Fatal(err)
	}
	var scanEnd, funcStart int
	bistSpans := map[string][2]int{}
	for _, p := range s.Sessions[0].Placements {
		switch p.Test.ID {
		case "TV.scan":
			scanEnd = p.End()
		case "TV.func":
			funcStart = p.Start
		default:
			bistSpans[p.Test.ID] = [2]int{p.Start, p.End()}
		}
	}
	if funcStart < scanEnd {
		t.Fatalf("TV.func started at %d before scan ended at %d", funcStart, scanEnd)
	}
	// BIST groups form a serial chain.
	var spans [][2]int
	for _, sp := range bistSpans {
		spans = append(spans, sp)
	}
	for i := range spans {
		for j := range spans {
			if i != j && spans[i][0] < spans[j][1] && spans[j][0] < spans[i][1] {
				t.Fatalf("BIST groups overlap: %v vs %v", spans[i], spans[j])
			}
		}
	}
}

func TestGreedyPartitionFallback(t *testing.T) {
	// 12 small cores exercise the >10-job greedy path.
	var cores []*testinfo.Core
	for i := 0; i < 12; i++ {
		cores = append(cores, &testinfo.Core{
			Name:        fmt.Sprintf("C%d", i),
			Clocks:      []string{"ck"},
			ScanEnables: []string{"se"},
			PIs:         4, POs: 4,
			ScanChains: []testinfo.ScanChain{{Name: "c", Length: 50 + i*10, In: "si", Out: "so", Clock: "ck"}},
			Patterns:   []testinfo.PatternSet{{Name: "s", Type: testinfo.Scan, Count: 10, Seed: 1}},
		})
	}
	tests, err := BuildTests(cores, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SessionBasedContext(context.Background(), tests, Resources{TestPins: 30, FuncPins: 32, Partitioner: wrapper.LPT})
	if err != nil {
		t.Fatal(err)
	}
	placed := 0
	for _, sess := range s.Sessions {
		placed += len(sess.Placements)
	}
	if placed != 12 {
		t.Fatalf("placed %d of 12", placed)
	}
}

func TestWaterfill(t *testing.T) {
	g, err := waterfill([]int{65, 269}, 96)
	if err != nil {
		t.Fatal(err)
	}
	if g[0]+g[1] > 96 || g[0] < 1 || g[1] < 1 {
		t.Fatalf("grants = %v", g)
	}
	if g[0] != 48 || g[1] != 48 {
		t.Fatalf("grants = %v, want even split 48/48", g)
	}
	g, err = waterfill([]int{10, 200}, 96)
	if err != nil {
		t.Fatal(err)
	}
	if g[0] != 10 || g[1] != 86 {
		t.Fatalf("grants = %v, want 10/86", g)
	}
	if _, err := waterfill([]int{5, 5, 5}, 2); err == nil {
		t.Fatal("starved waterfill accepted")
	}
}

func TestTimeMS(t *testing.T) {
	s := &Schedule{TotalCycles: 5_000_000}
	if got := s.TimeMS(50); got != 100 {
		t.Fatalf("TimeMS(50) = %v, want 100", got)
	}
	if got := s.TimeMS(0); got != 100 { // default 50 MHz
		t.Fatalf("TimeMS(0) = %v", got)
	}
}

func TestUtilization(t *testing.T) {
	tests, err := BuildTests(dscCores(), dscBist())
	if err != nil {
		t.Fatal(err)
	}
	sb, err := SessionBasedContext(context.Background(), tests, dscResources())
	if err != nil {
		t.Fatal(err)
	}
	ser, err := Serial(tests, dscResources())
	if err != nil {
		t.Fatal(err)
	}
	if u := sb.Utilization(); u <= 0 {
		t.Fatalf("utilization = %v", u)
	}
	// Parallel sessions pack more test activity per cycle than serial.
	if sb.Utilization() < ser.Utilization() {
		t.Fatalf("session-based utilization %.2f below serial %.2f",
			sb.Utilization(), ser.Utilization())
	}
	if (&Schedule{}).Utilization() != 0 {
		t.Fatal("empty schedule utilization")
	}
}
