package march

import "testing"

// FuzzParse exercises the ASCII March-notation reader with arbitrary input.
// Bad notation must be rejected with an error, never a panic, and every
// accepted algorithm must round-trip through String — Parse(a.String())
// yields an algorithm with the same String form and the same complexity.
func FuzzParse(f *testing.F) {
	for _, a := range Catalog() {
		f.Add(a.String())
	}
	f.Add("{ b(w0); u(r0,w1); b(r1) }")
	f.Add("b(w0); ^(R0, W1); v(r1,w0)")
	f.Add("u(r0:w1)")
	f.Add("b()")
	f.Add("{{}}")
	f.Add("x(r0)")
	f.Fuzz(func(t *testing.T, s string) {
		a, err := Parse("fuzz", s)
		if err != nil {
			return
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid algorithm: %v (input %q)", err, s)
		}
		canon := a.String()
		b, err := Parse("fuzz", canon)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v (input %q)", canon, err, s)
		}
		if got := b.String(); got != canon {
			t.Fatalf("String not a fixed point: %q -> %q (input %q)", canon, got, s)
		}
		if a.Complexity() != b.Complexity() {
			t.Fatalf("complexity changed across round trip: %d vs %d (input %q)",
				a.Complexity(), b.Complexity(), s)
		}
	})
}
