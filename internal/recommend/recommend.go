// Package recommend answers the paper's "DFT-ready SOC in minutes" pitch
// from the results catalog: given a testinfo-shaped description of a chip
// that has never run, find the most similar chips that have, and suggest
// the TAM width, wrapper partitioner, grouping, and BIST architecture
// that worked best for them — with the evidence attached.
//
// The method is deliberately simple and fully stated (a recommendation
// without a stated basis is a guess with extra steps):
//
//  1. Candidate records are the catalog's feasible schedule results
//     (flow/sched kinds with a cycle count and a TAM width).
//  2. Records are grouped into chips by their (scenario, seed)
//     provenance; each chip's feature vector is the record's Features —
//     core/chain/pattern/IO/memory counts.
//  3. Chip distance is normalized Euclidean: every feature dimension is
//     scaled by the maximum over the candidate population plus the query,
//     so kilobit memory counts do not drown out core counts.  This is the
//     distance named in every Evidence row.
//  4. The K nearest chips vote on TAM width, weighted by 1/(distance+ε);
//     each chip votes with its own best config — fewest test cycles,
//     ties to the narrower TAM.  Remaining knobs (partitioner, grouping,
//     algorithm, logic BIST) come from the nearest chip that voted for
//     the winning width.
//
// Everything is deterministic: ties break lexically, never by map order.
package recommend

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"steac/internal/catalog"
	"steac/internal/memory"
	"steac/internal/testinfo"
)

// ErrNoData is returned when the catalog holds no usable prior results
// for the query (empty catalog, or every record filtered out).
var ErrNoData = errors.New("recommend: no prior results in catalog")

// DefaultK is how many neighbor chips vote when the request does not say.
const DefaultK = 3

// Request describes the chip seeking a DFT plan.
type Request struct {
	// Cores/Memories describe the chip (catalog.CoreFeatures profiles
	// them).  Required.
	Cores    []*testinfo.Core `json:"cores,omitempty"`
	Memories []memory.Config  `json:"memories,omitempty"`
	// K is the neighbor count (0 = DefaultK).
	K int `json:"k,omitempty"`
	// MaxTamWidth drops prior results wider than the package can afford
	// (0 = no cap).
	MaxTamWidth int `json:"max_tam_width,omitempty"`
}

// Suggestion is the recommended DFT configuration plus its evidence.
type Suggestion struct {
	TamWidth    int     `json:"tam_width"`
	Partitioner string  `json:"partitioner,omitempty"`
	Algorithm   string  `json:"algorithm,omitempty"`
	Grouping    string  `json:"grouping,omitempty"`
	LogicBIST   bool    `json:"logic_bist,omitempty"`
	PowerBudget float64 `json:"power_budget,omitempty"`
	// ExpectedCycles is the test time the winning neighbor achieved with
	// this config — an analogy, not a simulation.
	ExpectedCycles int `json:"expected_cycles,omitempty"`
	// Distance names the metric every Evidence.Distance was computed
	// with, so the basis is auditable.
	Distance string `json:"distance"`
	// Basis lists the neighbor chips that voted, nearest first.
	Basis []Evidence `json:"basis"`
}

// Evidence is one neighbor chip's contribution: which record, how far,
// and what it voted for.
type Evidence struct {
	Fingerprint string  `json:"fingerprint"`
	Scenario    string  `json:"scenario,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	Distance    float64 `json:"distance"`
	TamWidth    int     `json:"tam_width"`
	TestCycles  int     `json:"test_cycles"`
}

// DistanceMetric is the value of Suggestion.Distance.
const DistanceMetric = "normalized-euclidean/v1"

// chip is one prior chip: its feature vector and its best record.
type chip struct {
	key  string
	best catalog.Record
	feat [8]float64
	dist float64
}

func featureVector(f catalog.Features) [8]float64 {
	return [8]float64{
		float64(f.Cores), float64(f.ScanChains), float64(f.ScanBits),
		float64(f.ScanPatterns), float64(f.FuncPatterns), float64(f.IOs),
		float64(f.Memories), float64(f.MemoryBits),
	}
}

// betterRecord reports whether a is a strictly better config result than
// b: fewer test cycles, ties to the narrower TAM, then lexical
// fingerprint so the choice never depends on iteration order.
func betterRecord(a, b catalog.Record) bool {
	if a.Metrics.TestCycles != b.Metrics.TestCycles {
		return a.Metrics.TestCycles < b.Metrics.TestCycles
	}
	if a.Config.TamWidth != b.Config.TamWidth {
		return a.Config.TamWidth < b.Config.TamWidth
	}
	return a.Fingerprint < b.Fingerprint
}

// usable reports whether a record can anchor a recommendation.
func usable(rec catalog.Record, maxTam int) bool {
	if rec.Kind != catalog.KindFlow && rec.Kind != catalog.KindSched {
		return false
	}
	if rec.Metrics.Infeasible || rec.Metrics.TestCycles <= 0 || rec.Config.TamWidth <= 0 {
		return false
	}
	if maxTam > 0 && rec.Config.TamWidth > maxTam {
		return false
	}
	return true
}

// Recommend ranks records against the request and synthesizes the
// suggestion.  records is typically Store.List(Query{Tenant: ...}) — the
// caller owns tenant scoping.
func Recommend(records []catalog.Record, req Request) (*Suggestion, error) {
	if len(req.Cores) == 0 {
		return nil, errors.New("recommend: request needs at least one core description")
	}
	queryFeat := featureVector(catalog.CoreFeatures(req.Cores, req.Memories))

	// Group usable records into chips, keeping each chip's best config.
	chips := map[string]*chip{}
	for _, rec := range records {
		if !usable(rec, req.MaxTamWidth) {
			continue
		}
		key := fmt.Sprintf("%s\x00%d", rec.Scenario, rec.Seed)
		if rec.Scenario == "" {
			// Explicit submissions have no generator provenance: each
			// record is its own chip.
			key = "\x00" + rec.Fingerprint
		}
		c, ok := chips[key]
		if !ok {
			chips[key] = &chip{key: key, best: rec, feat: featureVector(rec.Features)}
			continue
		}
		if betterRecord(rec, c.best) {
			c.best = rec
		}
	}
	if len(chips) == 0 {
		return nil, fmt.Errorf("%w: %d records, none a feasible schedule result", ErrNoData, len(records))
	}

	// Per-dimension normalization over the population plus the query.
	var scale [8]float64
	for d := 0; d < 8; d++ {
		scale[d] = queryFeat[d]
	}
	for _, c := range chips {
		for d := 0; d < 8; d++ {
			scale[d] = math.Max(scale[d], c.feat[d])
		}
	}

	pop := make([]*chip, 0, len(chips))
	for _, c := range chips {
		sum := 0.0
		for d := 0; d < 8; d++ {
			if scale[d] == 0 {
				continue
			}
			diff := (c.feat[d] - queryFeat[d]) / scale[d]
			sum += diff * diff
		}
		c.dist = math.Sqrt(sum)
		pop = append(pop, c)
	}
	sort.Slice(pop, func(i, j int) bool {
		if pop[i].dist != pop[j].dist {
			return pop[i].dist < pop[j].dist
		}
		return pop[i].key < pop[j].key
	})

	k := req.K
	if k <= 0 {
		k = DefaultK
	}
	if k > len(pop) {
		k = len(pop)
	}
	neighbors := pop[:k]

	// Distance-weighted vote on TAM width; ties to the narrower width.
	votes := map[int]float64{}
	for _, c := range neighbors {
		votes[c.best.Config.TamWidth] += 1 / (c.dist + 1e-6)
	}
	widths := make([]int, 0, len(votes))
	for w := range votes {
		widths = append(widths, w)
	}
	sort.Ints(widths)
	bestWidth, bestVote := 0, -1.0
	for _, w := range widths {
		if votes[w] > bestVote {
			bestWidth, bestVote = w, votes[w]
		}
	}

	sug := &Suggestion{TamWidth: bestWidth, Distance: DistanceMetric}
	for _, c := range neighbors {
		sug.Basis = append(sug.Basis, Evidence{
			Fingerprint: c.best.Fingerprint,
			Scenario:    c.best.Scenario,
			Seed:        c.best.Seed,
			Distance:    c.dist,
			TamWidth:    c.best.Config.TamWidth,
			TestCycles:  c.best.Metrics.TestCycles,
		})
		// Remaining knobs from the nearest chip that voted for the
		// winning width (neighbors are sorted nearest first).
		if sug.ExpectedCycles == 0 && c.best.Config.TamWidth == bestWidth {
			sug.Partitioner = c.best.Config.Partitioner
			sug.Algorithm = c.best.Config.Algorithm
			sug.Grouping = c.best.Config.Grouping
			sug.LogicBIST = c.best.Config.LogicBIST
			sug.PowerBudget = c.best.Config.PowerBudget
			sug.ExpectedCycles = c.best.Metrics.TestCycles
		}
	}
	return sug, nil
}
