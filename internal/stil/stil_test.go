package stil

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"steac/internal/testinfo"
)

func usbCore() *testinfo.Core {
	return &testinfo.Core{
		Name:        "USB",
		Clocks:      []string{"ck0", "ck1", "ck2", "ck3"},
		Resets:      []string{"rst0", "rst1", "rst2"},
		ScanEnables: []string{"se"},
		TestEnables: []string{"t0", "t1", "t2", "t3", "t4", "t5"},
		PIs:         221, POs: 104,
		ScanChains: []testinfo.ScanChain{
			{Name: "c0", Length: 1629, In: "si0", Out: "so0", Clock: "ck0"},
			{Name: "c1", Length: 78, In: "si1", Out: "so1", Clock: "ck1"},
			{Name: "c2", Length: 293, In: "si2", Out: "so2", Clock: "ck2"},
			{Name: "c3", Length: 45, In: "si3", Out: "so3", Clock: "ck3"},
		},
		Patterns: []testinfo.PatternSet{{Name: "scan", Type: testinfo.Scan, Count: 716, Seed: 1}},
	}
}

func tvCore() *testinfo.Core {
	return &testinfo.Core{
		Name:        "TV",
		Clocks:      []string{"ck"},
		Resets:      []string{"rst"},
		ScanEnables: []string{"se"},
		TestEnables: []string{"te"},
		PIs:         25, POs: 40,
		ScanChains: []testinfo.ScanChain{
			{Name: "c0", Length: 577, In: "si0", Out: "so0", Clock: "ck"},
			{Name: "c1", Length: 576, In: "si1", Out: "shared_po", Clock: "ck", SharedOut: true},
		},
		Patterns: []testinfo.PatternSet{
			{Name: "scan", Type: testinfo.Scan, Count: 229, Seed: 2},
			{Name: "func", Type: testinfo.Functional, Count: 202673, Seed: 3},
		},
	}
}

func jpegCore() *testinfo.Core {
	return &testinfo.Core{
		Name:   "JPEG",
		Clocks: []string{"ck"},
		PIs:    165, POs: 104,
		Patterns: []testinfo.PatternSet{{Name: "func", Type: testinfo.Functional, Count: 235696, Seed: 4}},
	}
}

func TestRoundTripTable1Cores(t *testing.T) {
	for _, c := range []*testinfo.Core{usbCore(), tvCore(), jpegCore()} {
		src, err := Emit(c)
		if err != nil {
			t.Fatalf("%s: emit: %v", c.Name, err)
		}
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", c.Name, err, src)
		}
		if !reflect.DeepEqual(c, back) {
			t.Fatalf("%s: round trip mismatch:\nwant %+v\ngot  %+v", c.Name, c, back)
		}
	}
}

func TestEmitLooksLikeSTIL(t *testing.T) {
	src, err := Emit(usbCore())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"STIL 1.0;",
		"Signals {",
		"ScanStructures {",
		`ScanChain "c0"`,
		"ScanLength 1629;",
		"ScanMasterClock ck0;",
		"pi[0..220] In;",
		`Pattern "scan"`,
		"count=716",
	} {
		if !strings.Contains(src, want) {
			t.Fatalf("emitted STIL missing %q:\n%s", want, src)
		}
	}
}

func TestParseHandwrittenSTIL(t *testing.T) {
	src := `
STIL 1.0;
// A hand-written core description with comments.
{* core name=MINI soft=true *}
Signals {
  {* clock *} clk In;
  {* se *} se In;
  {* si *} si In;
  {* so *} so Out;
  d[0..7] In;
  q[0..3] Out;
  valid Out;
}
ScanStructures {
  ScanChain "chain" {
    ScanLength 42;
    ScanIn si;
    ScanOut so;
    ScanMasterClock clk;
  }
}
Timing { WaveformTable "w" { Period '10ns'; } }
Pattern "p" { {* patterns type=Scan count=7 seed=9 *} }
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "MINI" || !c.Soft {
		t.Fatalf("core header = %q soft=%t", c.Name, c.Soft)
	}
	if c.PIs != 8 || c.POs != 5 {
		t.Fatalf("PIs/POs = %d/%d, want 8/5", c.PIs, c.POs)
	}
	if len(c.ScanChains) != 1 || c.ScanChains[0].Length != 42 {
		t.Fatalf("chains = %+v", c.ScanChains)
	}
	if len(c.Patterns) != 1 || c.Patterns[0].Count != 7 || c.Patterns[0].Seed != 9 {
		t.Fatalf("patterns = %+v", c.Patterns)
	}
}

func TestParseErrors(t *testing.T) {
	for name, src := range map[string]string{
		"no header":       `Signals { {* clock *} ck In; }`,
		"unmatched brace": "STIL 1.0; Signals {",
		"stray brace":     "STIL 1.0; }",
		"bad block":       "STIL 1.0; Bogus { }",
		"bad direction":   "STIL 1.0; Signals { x Sideways; }",
		"bad role":        "STIL 1.0; Signals { {* alien *} x In; }",
		"bad chain field": `STIL 1.0; Signals { {* clock *} ck In; } ScanStructures { ScanChain "c" { Bogus 1; } }`,
		"bad length":      `STIL 1.0; Signals { {* clock *} ck In; } ScanStructures { ScanChain "c" { ScanLength zz; } }`,
		"bad bus":         "STIL 1.0; Signals { «",
		"bad range":       "STIL 1.0; Signals { x[5..2] In; }",
		"unterminated":    `STIL 1.0; {* never closed`,
		"bad ptype":       `STIL 1.0; Signals { {* clock *} ck In; } Pattern "p" { {* patterns type=Weird count=1 seed=0 *} }`,
		"bad pcount":      `STIL 1.0; Signals { {* clock *} ck In; } Pattern "p" { {* patterns type=Scan count=x seed=0 *} }`,
		"unnamed pattern": `STIL 1.0; Signals { {* clock *} ck In; } Pattern { }`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted:\n%s", name, src)
		}
	}
}

func TestEmitRejectsInvalidCore(t *testing.T) {
	if _, err := Emit(&testinfo.Core{Name: "x"}); err == nil {
		t.Fatal("invalid core emitted")
	}
}

// Property: Emit→Parse is the identity for arbitrary well-formed cores.
func TestRoundTripProperty(t *testing.T) {
	f := func(nClocks, nResets, nTE uint8, pis, pos uint16, chainLens []uint16, scanCount, funcCount uint32) bool {
		c := &testinfo.Core{Name: "P", PIs: int(pis % 512), POs: int(pos % 512)}
		for i := 0; i <= int(nClocks%4); i++ {
			c.Clocks = append(c.Clocks, nameN("ck", i))
		}
		for i := 0; i < int(nResets%3); i++ {
			c.Resets = append(c.Resets, nameN("rst", i))
		}
		for i := 0; i < int(nTE%5); i++ {
			c.TestEnables = append(c.TestEnables, nameN("te", i))
		}
		if len(chainLens) > 4 {
			chainLens = chainLens[:4]
		}
		for i, l := range chainLens {
			c.ScanChains = append(c.ScanChains, testinfo.ScanChain{
				Name: nameN("c", i), Length: int(l%4096) + 1,
				In: nameN("si", i), Out: nameN("so", i), Clock: c.Clocks[0],
			})
		}
		if len(c.ScanChains) > 0 {
			c.ScanEnables = []string{"se"}
			c.Patterns = append(c.Patterns, testinfo.PatternSet{
				Name: "scan", Type: testinfo.Scan, Count: int(scanCount % 100000), Seed: 11})
		}
		c.Patterns = append(c.Patterns, testinfo.PatternSet{
			Name: "func", Type: testinfo.Functional, Count: int(funcCount % 1000000), Seed: 12})
		src, err := Emit(c)
		if err != nil {
			return false
		}
		back, err := Parse(src)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(c, back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func nameN(p string, i int) string {
	return p + string(rune('a'+i))
}
