package recommend

import (
	"errors"
	"fmt"
	"testing"

	"steac/internal/catalog"
	"steac/internal/memory"
	"steac/internal/testinfo"
)

// synthCores builds a chip description whose feature vector scales with
// size: size cores, each with one chain of 100*size bits.
func synthCores(size int) []*testinfo.Core {
	cores := make([]*testinfo.Core, size)
	for i := range cores {
		cores[i] = &testinfo.Core{
			Name:   fmt.Sprintf("c%d", i),
			Clocks: []string{"ck"},
			PIs:    8 * size, POs: 8 * size,
			ScanChains: []testinfo.ScanChain{{Name: "c0", Length: 100 * size}},
			Patterns:   []testinfo.PatternSet{{Name: "scan", Type: testinfo.Scan, Count: 10 * size}},
		}
	}
	return cores
}

// synthRecord is one prior result for a chip of the given size class.
func synthRecord(scenario string, seed int64, size, tam, cycles int) catalog.Record {
	return catalog.Record{
		Fingerprint: fmt.Sprintf("%s-%d-tam%d", scenario, seed, tam),
		Tenant:      "anon", Kind: catalog.KindSched,
		Scenario: scenario, Seed: seed,
		Config:   catalog.Config{TamWidth: tam, Partitioner: "lpt", Algorithm: "March C-", Grouping: "per-memory"},
		Features: catalog.CoreFeatures(synthCores(size), nil),
		Metrics:  catalog.Metrics{TestCycles: cycles, Sessions: 2},
	}
}

// population: small chips (size 2) do best at TAM 16, big chips (size 8)
// at TAM 40.  Each chip also has worse configs on file, so the
// recommender must pick per-chip bests before voting.
func population() []catalog.Record {
	var recs []catalog.Record
	for seed := int64(1); seed <= 3; seed++ {
		recs = append(recs,
			synthRecord("small", seed, 2, 16, 1000),
			synthRecord("small", seed, 2, 24, 1400),
			synthRecord("big", seed, 8, 40, 9000),
			synthRecord("big", seed, 8, 16, 15000),
		)
	}
	return recs
}

func TestRecommendPicksNearestCluster(t *testing.T) {
	sug, err := Recommend(population(), Request{Cores: synthCores(2)})
	if err != nil {
		t.Fatal(err)
	}
	if sug.TamWidth != 16 {
		t.Fatalf("small query: TamWidth = %d, want 16 (basis %+v)", sug.TamWidth, sug.Basis)
	}
	if sug.Partitioner != "lpt" || sug.Algorithm != "March C-" || sug.Grouping != "per-memory" {
		t.Fatalf("config not copied from winning neighbor: %+v", sug)
	}
	if sug.ExpectedCycles != 1000 {
		t.Fatalf("ExpectedCycles = %d, want the neighbor best 1000", sug.ExpectedCycles)
	}
	if sug.Distance != DistanceMetric {
		t.Fatalf("Distance = %q", sug.Distance)
	}
	if len(sug.Basis) != DefaultK {
		t.Fatalf("basis size = %d, want %d", len(sug.Basis), DefaultK)
	}
	for _, ev := range sug.Basis {
		if ev.Scenario != "small" {
			t.Fatalf("small query drew a big-chip neighbor: %+v", ev)
		}
	}

	sug, err = Recommend(population(), Request{Cores: synthCores(8)})
	if err != nil {
		t.Fatal(err)
	}
	if sug.TamWidth != 40 {
		t.Fatalf("big query: TamWidth = %d, want 40 (basis %+v)", sug.TamWidth, sug.Basis)
	}
}

func TestRecommendMaxTamWidth(t *testing.T) {
	sug, err := Recommend(population(), Request{Cores: synthCores(8), MaxTamWidth: 20})
	if err != nil {
		t.Fatal(err)
	}
	if sug.TamWidth != 16 {
		t.Fatalf("capped query: TamWidth = %d, want 16", sug.TamWidth)
	}
	for _, ev := range sug.Basis {
		if ev.TamWidth > 20 {
			t.Fatalf("basis cites a record wider than the cap: %+v", ev)
		}
	}
}

func TestRecommendDeterministic(t *testing.T) {
	recs := population()
	a, err := Recommend(recs, Request{Cores: synthCores(5), Memories: []memory.Config{{Name: "m", Words: 64, Bits: 8}}})
	if err != nil {
		t.Fatal(err)
	}
	// Reversed input order must not change anything, including basis order.
	rev := make([]catalog.Record, len(recs))
	for i, r := range recs {
		rev[len(recs)-1-i] = r
	}
	b, err := Recommend(rev, Request{Cores: synthCores(5), Memories: []memory.Config{{Name: "m", Words: 64, Bits: 8}}})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("recommendation depends on record order:\n%+v\n%+v", a, b)
	}
}

func TestRecommendNoData(t *testing.T) {
	if _, err := Recommend(nil, Request{Cores: synthCores(2)}); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty catalog = %v, want ErrNoData", err)
	}
	// Campaign-only records cannot anchor a schedule recommendation.
	camp := catalog.Record{
		Fingerprint: "c1", Tenant: "anon", Kind: catalog.KindMemfault,
		Scenario: "x", Metrics: catalog.Metrics{Coverage: 99},
	}
	if _, err := Recommend([]catalog.Record{camp}, Request{Cores: synthCores(2)}); !errors.Is(err, ErrNoData) {
		t.Fatalf("campaign-only catalog = %v, want ErrNoData", err)
	}
	if _, err := Recommend(population(), Request{}); err == nil {
		t.Fatal("request without cores must fail")
	}
}

func TestRecommendIgnoresInfeasible(t *testing.T) {
	recs := population()
	bad := synthRecord("small", 9, 2, 8, 0)
	bad.Metrics = catalog.Metrics{Infeasible: true}
	recs = append(recs, bad)
	sug, err := Recommend(recs, Request{Cores: synthCores(2)})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range sug.Basis {
		if ev.TamWidth == 8 {
			t.Fatalf("infeasible record voted: %+v", ev)
		}
	}
}
