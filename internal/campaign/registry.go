package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// The kind registry maps the stable kind tags stored in checkpoint
// manifests and job requests back to spec decoders, so a checkpoint
// directory (or a serve job payload) is self-describing: LoadSpec can turn
// a bare directory back into a runnable campaign.
var (
	registryMu sync.RWMutex
	registry   = map[string]func(json.RawMessage) (Spec, error){}
)

// RegisterKind installs a decoder for one spec kind.  Engine adapters call
// it from init; registering a kind twice panics (it means two adapters
// claim the same manifest tag).
func RegisterKind(kind string, decode func(json.RawMessage) (Spec, error)) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("campaign: kind %q registered twice", kind))
	}
	registry[kind] = decode
}

// Kinds lists the registered spec kinds, sorted.
func Kinds() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	kinds := make([]string, 0, len(registry))
	for k := range registry {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// Decode turns a (kind, payload) pair — from a job request or a checkpoint
// manifest — back into a Spec.
func Decode(kind string, payload json.RawMessage) (Spec, error) {
	registryMu.RLock()
	decode := registry[kind]
	registryMu.RUnlock()
	if decode == nil {
		return nil, fmt.Errorf("campaign: unknown kind %q (have %v)", kind, Kinds())
	}
	spec, err := decode(payload)
	if err != nil {
		return nil, fmt.Errorf("campaign: decode %s spec: %w", kind, err)
	}
	return spec, nil
}

// LoadSpec reconstructs the campaign spec stored in a checkpoint
// directory's manifest, so `dscflow -resume <dir>` needs nothing but the
// directory.
func LoadSpec(dir string) (Spec, error) {
	info, err := Inspect(dir)
	if err != nil {
		return nil, err
	}
	return Decode(info.Kind, info.Spec)
}
