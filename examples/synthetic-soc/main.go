// Beyond the DSC case study: run the full STEAC flow — STIL hand-off,
// BRAINS, session scheduling, test insertion, pattern translation and full
// ATE verification — on a randomly generated eight-core SOC, showing the
// platform is not specific to the paper's chip.
package main

import (
	"context"
	"fmt"
	"log"

	"steac/internal/brains"
	"steac/internal/core"
	"steac/internal/memory"
	"steac/internal/report"
	"steac/internal/sched"
	"steac/internal/socgen"
	"steac/internal/wrapper"
)

func main() {
	// 1. A synthetic ITC'02-style SOC: 8 cores, reproducible from a seed.
	cores := sched.SyntheticSOC(2026, 8)
	// Trim the functional sets so the end-to-end verification stays quick.
	for _, c := range cores {
		for i := range c.Patterns {
			if c.Patterns[i].Count > 2000 {
				c.Patterns[i].Count = 2000
			}
		}
	}
	soc, err := socgen.Build(cores, socgen.Options{
		Name:   "synth8",
		Blocks: map[string]float64{"cpu": 45000, "glue": 12000},
	})
	if err != nil {
		log.Fatal(err)
	}
	stils, err := core.EmitSTIL(cores)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A synthetic embedded memory set.
	mems := []memory.Config{
		{Name: "ram0", Words: 8192, Bits: 16},
		{Name: "ram1", Words: 4096, Bits: 32},
		{Name: "ram2", Words: 2048, Bits: 8},
		{Name: "fifo", Words: 1024, Bits: 16, Kind: memory.TwoPort},
	}

	res := sched.SyntheticResources(cores)
	res.Partitioner = wrapper.LPT
	out, err := core.RunFlowContext(context.Background(), core.FlowInput{
		STIL:        stils,
		SOC:         soc,
		Resources:   res,
		Memories:    mems,
		BISTOptions: brains.Options{Grouping: brains.GroupByKind, Backgrounds: 2},
		Verify:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(core.Table1(out.Cores))
	fmt.Println()
	fmt.Print(core.ComparisonReport(out))
	fmt.Println()
	fmt.Printf("DFT inserted: %d WBR cells, controller %.0f gates, TAM mux %.0f gates, lint clean\n",
		out.Insertion.WBRCells, out.Insertion.ControllerGates, out.Insertion.TAMGates)
	fmt.Printf("ATE verification: PASS over %s cycles (dual-background BIST included)\n",
		report.Comma(out.Verify.Cycles))
}
