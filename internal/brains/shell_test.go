package brains

import (
	"strings"
	"testing"
)

func execAll(t *testing.T, s *Shell, lines ...string) {
	t.Helper()
	for _, l := range lines {
		if err := s.Exec(l); err != nil {
			t.Fatalf("exec %q: %v", l, err)
		}
	}
}

func TestShellFullSession(t *testing.T) {
	var out strings.Builder
	s := NewShell(&out)
	execAll(t, s,
		"# DSC-style memory set",
		"",
		"mem lbuf 2048 16",
		"mem jq 512 8 1",
		"mem fifo 256 32 2",
		"alg March C-",
		"group kind",
		"power 6",
		"clock 50",
		"compile",
		"report",
	)
	if s.Result() == nil {
		t.Fatal("no result after compile")
	}
	text := out.String()
	for _, want := range []string{"added lbuf", "algorithm March C- (10N)", "compiled", "BIST plan"} {
		if !strings.Contains(text, want) {
			t.Fatalf("shell output missing %q:\n%s", want, text)
		}
	}
}

func TestShellEvaluateAndVerilog(t *testing.T) {
	var out strings.Builder
	s := NewShell(&out)
	execAll(t, s,
		"mem a 16 2",
		"compile",
		"evaluate 8 2",
		"verilog",
		"help",
	)
	text := out.String()
	if !strings.Contains(text, "March test efficiency") {
		t.Fatal("evaluate output missing")
	}
	if !strings.Contains(text, "module membist") {
		t.Fatal("verilog output missing")
	}
	if !strings.Contains(text, "BRAINS memory BIST compiler") {
		t.Fatal("help output missing")
	}
}

func TestShellCustomAlgorithm(t *testing.T) {
	var out strings.Builder
	s := NewShell(&out)
	execAll(t, s, "algdef mymarch { b(w0); u(r0,w1); d(r1,w0); b(r0) }")
	if !strings.Contains(out.String(), "mymarch (6N)") {
		t.Fatalf("custom algorithm: %s", out.String())
	}
}

func TestShellErrors(t *testing.T) {
	var out strings.Builder
	s := NewShell(&out)
	for _, bad := range []string{
		"bogus",
		"mem onlyname",
		"mem x nan 8",
		"mem x 8 8 3",
		"alg NotAMarch",
		"algdef broken u r0",
		"group sideways",
		"group",
		"power -1",
		"power",
		"clock zero",
		"compile", // no memories
		"report",  // nothing compiled
		"verilog",
		"evaluate 1",
		"evaluate a b",
	} {
		if err := s.Exec(bad); err == nil {
			t.Errorf("command %q accepted", bad)
		}
	}
	// Duplicate memory.
	execAll(t, s, "mem m 16 4")
	if err := s.Exec("mem m 16 4"); err == nil {
		t.Error("duplicate memory accepted")
	}
}

func TestShellBackgroundsAndRetention(t *testing.T) {
	var out strings.Builder
	s := NewShell(&out)
	execAll(t, s,
		"mem m 1024 8",
		"backgrounds 2",
		"retention on 5000",
		"compile",
	)
	res := s.Result()
	if res == nil || res.Opts.Backgrounds != 2 || !res.Opts.Retention {
		t.Fatalf("options not applied: %+v", res.Opts)
	}
	// 10N x 2 backgrounds + 2 pauses x 5000 x 2 backgrounds.
	if want := (10*1024 + 2*5000) * 2; res.Cycles != want {
		t.Fatalf("cycles = %d, want %d", res.Cycles, want)
	}
	execAll(t, s, "retention off")
	for _, bad := range []string{"backgrounds 3", "backgrounds x", "backgrounds",
		"retention", "retention maybe", "retention on zero"} {
		if err := s.Exec(bad); err == nil {
			t.Errorf("command %q accepted", bad)
		}
	}
}

func TestShellPortB(t *testing.T) {
	var out strings.Builder
	s := NewShell(&out)
	execAll(t, s, "mem tp 256 16 2", "portb on", "compile")
	if res := s.Result(); res == nil || !res.Opts.PortBTest {
		t.Fatal("portb option not applied")
	}
	if res := s.Result(); res.Cycles != 10*256+4*256 {
		t.Fatalf("cycles = %d", res.Cycles)
	}
	if err := s.Exec("portb sideways"); err == nil {
		t.Fatal("bad portb arg accepted")
	}
}

func TestShellXCheck(t *testing.T) {
	var out strings.Builder
	s := NewShell(&out)
	if err := s.Exec("xcheck"); err == nil {
		t.Fatal("xcheck before compile should fail")
	}
	execAll(t, s,
		"mem jq 64 8 1",
		"mem fifo 32 4 2",
		"alg March X",
		"group kind",
		"workers 2",
		"compile",
		"xcheck faults 40",
	)
	text := out.String()
	for _, want := range []string{"EQUIVALENT", "all equivalent", "controller", "coverage"} {
		if !strings.Contains(text, want) {
			t.Fatalf("xcheck output missing %q:\n%s", want, text)
		}
	}
	if err := s.Exec("xcheck bogus"); err == nil {
		t.Fatal("bad xcheck usage should fail")
	}
}
