package sched

import (
	"fmt"
	"math/rand"

	"steac/internal/testinfo"
)

// SyntheticSOC generates a reproducible random SOC in the spirit of the
// ITC'02 SOC test benchmarks: cores with varied scan-chain structures,
// pattern counts and IO footprints.  It exists so the scheduler can be
// evaluated beyond the single DSC case study — scaling behaviour, and
// whether the session-based advantage persists across SOCs (see
// BenchmarkSyntheticSchedulers and TestSyntheticSOCProperty).
func SyntheticSOC(seed int64, nCores int) []*testinfo.Core {
	rng := rand.New(rand.NewSource(seed))
	cores := make([]*testinfo.Core, 0, nCores)
	for i := 0; i < nCores; i++ {
		c := &testinfo.Core{
			Name: fmt.Sprintf("ip%d", i),
			PIs:  10 + rng.Intn(190),
			POs:  10 + rng.Intn(120),
		}
		nClk := 1 + rng.Intn(3)
		for k := 0; k < nClk; k++ {
			c.Clocks = append(c.Clocks, fmt.Sprintf("ip%d_ck%d", i, k))
		}
		for k := 0; k < rng.Intn(3); k++ {
			c.Resets = append(c.Resets, fmt.Sprintf("ip%d_rst%d", i, k))
		}
		for k := 0; k < rng.Intn(4); k++ {
			c.TestEnables = append(c.TestEnables, fmt.Sprintf("ip%d_te%d", i, k))
		}
		nChains := rng.Intn(7)
		if nChains > 0 {
			c.ScanEnables = []string{fmt.Sprintf("ip%d_se", i)}
			for k := 0; k < nChains; k++ {
				c.ScanChains = append(c.ScanChains, testinfo.ScanChain{
					Name:   fmt.Sprintf("c%d", k),
					Length: 50 + rng.Intn(1950),
					In:     fmt.Sprintf("ip%d_si%d", i, k),
					Out:    fmt.Sprintf("ip%d_so%d", i, k),
					Clock:  c.Clocks[rng.Intn(nClk)],
				})
			}
			c.Patterns = append(c.Patterns, testinfo.PatternSet{
				Name: "scan", Type: testinfo.Scan,
				Count: 50 + rng.Intn(950), Seed: seed*1000 + int64(i),
			})
		}
		if nChains == 0 || rng.Intn(3) == 0 {
			c.Patterns = append(c.Patterns, testinfo.PatternSet{
				Name: "func", Type: testinfo.Functional,
				Count: 1000 + rng.Intn(200000), Seed: seed*2000 + int64(i),
			})
		}
		cores = append(cores, c)
	}
	return cores
}

// SyntheticBIST generates a reproducible random embedded-memory BIST plan
// to accompany SyntheticSOC.
func SyntheticBIST(seed int64, nGroups int) []BISTGroup {
	rng := rand.New(rand.NewSource(seed ^ 0xB157))
	groups := make([]BISTGroup, 0, nGroups)
	for i := 0; i < nGroups; i++ {
		words := 1 << (8 + rng.Intn(9)) // 256 .. 64K
		groups = append(groups, BISTGroup{
			Name:   fmt.Sprintf("m%d", i),
			Cycles: 10*words + 1,
			Power:  1 + float64(rng.Intn(30)),
		})
	}
	return groups
}

// SyntheticResources derives a plausibly tight resource budget for a
// synthetic SOC: the non-session baseline gets exactly one TAM wire after
// dedicating every control pin, so IO pressure matters, while the
// session-based scheduler recovers pins through sharing.
func SyntheticResources(cores []*testinfo.Core) Resources {
	total := ControlPins(cores, true, false)
	return Resources{
		TestPins: total + 2,
		FuncPins: 256,
		MaxPower: 40,
	}
}
