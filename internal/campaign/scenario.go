package campaign

import (
	"fmt"

	"steac/internal/memory"
	"steac/internal/scenario"
	"steac/internal/testinfo"
)

// Scenario-parameterized campaigns: a spec may name a registered scenario
// plus a chip seed instead of embedding concrete memory configs or core
// test information.  The pair regenerates the exact chip (scenario
// generation is deterministic), so a checkpoint directory stays resumable
// from nothing but its manifest — the fingerprint covers (scenario, seed,
// macro names), never multi-kilobyte inlined structures.

// chipMemory resolves one named macro on a generated scenario chip.
func chipMemory(chip *scenario.Chip, name string) (memory.Config, error) {
	for _, m := range chip.Memories {
		if m.Name == name {
			return m, nil
		}
	}
	return memory.Config{}, fmt.Errorf("campaign: scenario %q chip has no memory %q", chip.Scenario, name)
}

// chipCore resolves one named core on a generated scenario chip.
func chipCore(chip *scenario.Chip, name string) (*testinfo.Core, error) {
	for _, c := range chip.Cores {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("campaign: scenario %q chip has no core %q", chip.Scenario, name)
}

// chipAlgorithm is the March algorithm a scenario chip's BIST plan uses
// (the BRAINS default when the spec leaves it open).
func chipAlgorithm(chip *scenario.Chip) string {
	if chip.BIST.Algorithm.Name != "" {
		return chip.BIST.Algorithm.Name
	}
	return "March C-"
}
