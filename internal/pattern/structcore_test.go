package pattern

import (
	"fmt"
	"math/rand"
	"testing"

	"steac/internal/netlist"
	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

// structTestCore fabricates a scan core with the given geometry.
func structTestCore(name string, pis, pos int, chains []int, seed int64) *testinfo.Core {
	c := &testinfo.Core{
		Name:        name,
		Clocks:      []string{"clk"},
		Resets:      []string{"rstn"},
		ScanEnables: []string{"se"},
		PIs:         pis,
		POs:         pos,
		Patterns: []testinfo.PatternSet{
			{Name: "stuck", Type: testinfo.Scan, Count: 4, Seed: seed},
		},
	}
	for i, l := range chains {
		c.ScanChains = append(c.ScanChains, testinfo.ScanChain{
			Name: fmt.Sprintf("c%d", i), Length: l,
			In: fmt.Sprintf("si%d", i), Out: fmt.Sprintf("so%d", i), Clock: "clk",
		})
	}
	return c
}

// TestStructuralCoreMatchesModel shifts ATPG patterns through the generated
// gate-level core with the real scan protocol (serial load, capture tick,
// serial unload) and demands bit-identical responses to the behavioural
// model's expectations — the property that makes the structural core a
// drop-in substitute for the wrapper's behavioural stand-in.
func TestStructuralCoreMatchesModel(t *testing.T) {
	cases := []*testinfo.Core{
		structTestCore("mix", 7, 9, []int{13, 8, 21}, 101),
		structTestCore("onechain", 1, 1, []int{17}, 202),
		structTestCore("nopi", 0, 6, []int{9, 5}, 303),
		structTestCore("nopo", 5, 0, []int{11}, 404),
		structTestCore("deep", 16, 12, []int{40, 40, 7, 3}, 505),
	}
	for _, core := range cases {
		t.Run(core.Name, func(t *testing.T) {
			d := netlist.NewDesign("tb", netlist.DefaultLibrary())
			mod, err := BuildStructuralCore(d, core)
			if err != nil {
				t.Fatal(err)
			}
			if issues := d.Lint(); len(issues) > 0 {
				t.Fatalf("lint: %v", issues[0])
			}
			if mod.Name != wrapper.CoreModuleName(core.Name) {
				t.Fatalf("module named %s", mod.Name)
			}
			sim, err := netlist.NewCompiledSim(d, mod.Name)
			if err != nil {
				t.Fatal(err)
			}
			atpg, err := NewATPG(core)
			if err != nil {
				t.Fatal(err)
			}
			sim.Set("se", true)
			maxLen := 0
			for _, ch := range core.ScanChains {
				if ch.Length > maxLen {
					maxLen = ch.Length
				}
			}
			for pt := 0; pt < atpg.ScanCount(); pt++ {
				sp, err := atpg.ScanPattern(pt)
				if err != nil {
					t.Fatal(err)
				}
				// Serial load: after maxLen shifts, chain ci cell j holds the
				// input driven at cycle maxLen-1-j.
				sim.Set("se", true)
				for c := 0; c < maxLen; c++ {
					for ci, ch := range core.ScanChains {
						v := false
						if j := maxLen - 1 - c; j < ch.Length {
							v = sp.Load[ci][j]
						}
						sim.Set(fmt.Sprintf("si%d", ci), v)
					}
					sim.Tick("clk")
				}
				// Capture: POs are combinational in state+PI; check before
				// the capture edge, then tick with SE low.
				if core.PIs > 0 {
					sim.SetBus("pi", sp.PI)
				}
				sim.Set("se", false)
				sim.Settle()
				if core.POs > 0 {
					got := sim.GetBus("po", core.POs)
					for j, want := range sp.ExpectPO {
						if got[j] != want {
							t.Fatalf("pattern %d: po[%d] = %v, model expects %v", pt, j, got[j], want)
						}
					}
				}
				sim.Tick("clk")
				// Serial unload: chain ci drains cell Length-1 first.
				sim.Set("se", true)
				for ci := range core.ScanChains {
					sim.Set(fmt.Sprintf("si%d", ci), false)
				}
				for c := 0; c < maxLen; c++ {
					sim.Settle()
					for ci, ch := range core.ScanChains {
						if c >= ch.Length {
							continue
						}
						got := sim.Get(fmt.Sprintf("so%d", ci))
						if want := sp.ExpectUnload[ci][ch.Length-1-c]; got != want {
							t.Fatalf("pattern %d chain %d unload cycle %d: got %v, model expects %v",
								pt, ci, c, got, want)
						}
					}
					sim.Tick("clk")
				}
			}
		})
	}
}

// TestStructuralCoreSpecAgreesWithCapture cross-checks the exported tap
// specs against Capture on random vectors, so the two public views of the
// model cannot drift apart.
func TestStructuralCoreSpecAgreesWithCapture(t *testing.T) {
	core := structTestCore("spec", 11, 13, []int{19, 6}, 777)
	m := NewCoreModel(core)
	rng := rand.New(rand.NewSource(42))
	n := m.StateBits()
	for trial := 0; trial < 50; trial++ {
		state := make([]bool, n)
		pi := make([]bool, core.PIs)
		for i := range state {
			state[i] = rng.Intn(2) == 1
		}
		for i := range pi {
			pi[i] = rng.Intn(2) == 1
		}
		next, po := m.Capture(state, pi)
		for i := 0; i < n; i++ {
			sp := m.NextSpec(i)
			want := sp.Invert != state[sp.StateTap] != pi[sp.PITap]
			if next[i] != want {
				t.Fatalf("next[%d]: Capture=%v spec=%v", i, next[i], want)
			}
		}
		for j := 0; j < core.POs; j++ {
			sp := m.POSpec(j)
			s, p := state[sp.StateTap], pi[sp.PITap]
			want := sp.Invert != s != (sp.PIXor && p) != (s && p)
			if po[j] != want {
				t.Fatalf("po[%d]: Capture=%v spec=%v", j, po[j], want)
			}
		}
	}
}
