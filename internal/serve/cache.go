package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"
)

// lruCache is the content-addressed response memo: canonical request hash →
// marshaled result bytes, bounded by entry count with least-recently-used
// eviction.  Values are immutable once stored (the server hands out the
// same byte slice to every hit), so the cache is safe to share.
type lruCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []byte
}

func newLRU(max int) *lruCache {
	if max <= 0 {
		max = 128
	}
	return &lruCache{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *lruCache) put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// requestKey derives the content address of one request: SHA-256 over the
// endpoint name and the canonical JSON of the request with its
// non-semantic fields (worker counts, deadlines) zeroed.  Two requests
// that must produce identical results — every engine is documented
// worker-count-invariant — therefore share a key even when their tuning
// differs.
func requestKey(endpoint string, canonical interface{}) (string, error) {
	blob, err := json.Marshal(canonical)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(endpoint))
	h.Write([]byte{0})
	h.Write(blob)
	return hex.EncodeToString(h.Sum(nil)), nil
}
