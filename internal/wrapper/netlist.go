package wrapper

import (
	"fmt"

	"steac/internal/netlist"
	"steac/internal/testinfo"
)

// WBRCellName is the shared wrapper-boundary-register cell module.
const WBRCellName = "wbr_cell"

// WBRCellGates is the NAND2-equivalent area of one WBR cell; the paper
// reports 26 gates and the generated module reproduces it exactly
// (capture mux 4 + shift flop 8 + update latch 6 + safe mux 4 + mode mux 4).
const WBRCellGates = 26

// GenerateWBRCell emits the shared WBR cell module into d (idempotent).
//
// Ports: CFI (functional input), CTI (serial test input), WRCK, SHIFT,
// UPDATE, MODE, SAFE; outputs CFO (functional output) and CTO (serial test
// output).  Behaviour: on WRCK, the shift flop captures CTI when SHIFT=1
// and CFI otherwise; the update latch loads the shift flop on UPDATE; in
// MODE=1 the cell drives CFO from the update latch (or the safe value when
// SAFE=1), otherwise CFO follows CFI transparently.
func GenerateWBRCell(d *netlist.Design) (*netlist.Module, error) {
	if m := d.Module(WBRCellName); m != nil {
		return m, nil
	}
	m := netlist.NewModule(WBRCellName)
	for _, p := range []string{"CFI", "CTI", "WRCK", "SHIFT", "UPDATE", "MODE", "SAFE"} {
		m.MustPort(p, netlist.In, 1)
	}
	m.MustPort("CFO", netlist.Out, 1)
	m.MustPort("CTO", netlist.Out, 1)

	m.MustInstance("capmux", netlist.CellMux2,
		map[string]string{"A": "CFI", "B": "CTI", "S": "SHIFT", "Z": "shd"})
	m.MustInstance("shft", netlist.CellDFF,
		map[string]string{"D": "shd", "CK": "WRCK", "Q": "CTO"})
	m.MustInstance("updl", netlist.CellLatchL,
		map[string]string{"D": "CTO", "EN": "UPDATE", "Q": "updq"})
	m.MustInstance("safe0", netlist.CellTie0, map[string]string{"Z": "sv"})
	m.MustInstance("safemux", netlist.CellMux2,
		map[string]string{"A": "updq", "B": "sv", "S": "SAFE", "Z": "sq"})
	m.MustInstance("modemux", netlist.CellMux2,
		map[string]string{"A": "CFI", "B": "sq", "S": "MODE", "Z": "CFO"})
	if err := d.AddModule(m); err != nil {
		return nil, err
	}
	return m, nil
}

// WIRBits is the width of the wrapper instruction register.
const WIRBits = 3

// Wrapper instructions (WIR decode values).  The reset state of the WIR is
// all-zeros, so code 0 is the serial INTEST used by the scan sessions;
// BYPASS switches the serial path to the one-bit WBY register.
const (
	InstrIntestScan = iota
	InstrExtest
	InstrIntestFunc
	InstrBypass
)

// GenerateWIR emits the wrapper instruction register module: a 3-bit shift
// register (WSI side) with an update stage and a one-hot instruction decode.
func GenerateWIR(d *netlist.Design, name string) (*netlist.Module, error) {
	m := netlist.NewModule(name)
	for _, p := range []string{"WSI", "WRCK", "SHIFTWIR", "UPDATEWIR"} {
		m.MustPort(p, netlist.In, 1)
	}
	m.MustPort("WSO", netlist.Out, 1)
	m.MustPort("BYPASS", netlist.Out, 1)
	m.MustPort("EXTEST", netlist.Out, 1)
	m.MustPort("INTESTSCAN", netlist.Out, 1)
	m.MustPort("INTESTFUNC", netlist.Out, 1)

	prev := "WSI"
	var q []string
	for i := 0; i < WIRBits; i++ {
		sq := fmt.Sprintf("sq%d", i)
		en := fmt.Sprintf("sd%d", i)
		m.AddNet(sq)
		m.MustInstance(fmt.Sprintf("smux%d", i), netlist.CellMux2,
			map[string]string{"A": sq, "B": prev, "S": "SHIFTWIR", "Z": en})
		m.MustInstance(fmt.Sprintf("sff%d", i), netlist.CellDFF,
			map[string]string{"D": en, "CK": "WRCK", "Q": sq})
		uq := fmt.Sprintf("uq%d", i)
		m.AddNet(uq)
		m.MustInstance(fmt.Sprintf("ul%d", i), netlist.CellLatchL,
			map[string]string{"D": sq, "EN": "UPDATEWIR", "Q": uq})
		q = append(q, uq)
		prev = sq
	}
	m.MustInstance("wsobuf", netlist.CellBuf, map[string]string{"A": prev, "Z": "WSO"})
	if _, err := netlist.AddDecoder(m, "idec", q[:2], "",
		[]string{"INTESTSCAN", "EXTEST", "INTESTFUNC", "BYPASS"}); err != nil {
		return nil, err
	}
	if err := d.AddModule(m); err != nil {
		return nil, err
	}
	return m, nil
}

// CoreModuleName returns the conventional module name for a wrapped core.
func CoreModuleName(core string) string { return "core_" + core }

// CoreAreaGates estimates the logic area of a core from its test
// information (a synthesis-free stand-in: scanned state costs a scan flop,
// IO costs drivers, plus combinational logic proportional to state).  The
// DSC glue/processor sizes in package dsc are calibrated so the whole chip
// lands near the paper's 0.3% controller+TAM overhead.
func CoreAreaGates(core *testinfo.Core) float64 {
	scan := float64(core.TotalScanBits())
	io := float64(core.PIs + core.POs)
	return scan*10 + scan*14 + io*3 + 200
}

// GenerateCoreModule declares the behavioural core module with the port
// convention the wrapper expects: pi/po buses, si<i>/so<i> per chain, and
// the core's control pins.  Skipped if the design already has the module
// (tests substitute a structural core).
func GenerateCoreModule(d *netlist.Design, core *testinfo.Core) (*netlist.Module, error) {
	name := CoreModuleName(core.Name)
	if m := d.Module(name); m != nil {
		return m, nil
	}
	m := netlist.NewModule(name)
	m.Behavioral = true
	m.AreaOverride = CoreAreaGates(core)
	m.Attrs["ip"] = core.Name
	if core.PIs > 0 {
		m.MustPort("pi", netlist.In, core.PIs)
	}
	if core.POs > 0 {
		m.MustPort("po", netlist.Out, core.POs)
	}
	for i := range core.ScanChains {
		m.MustPort(fmt.Sprintf("si%d", i), netlist.In, 1)
		m.MustPort(fmt.Sprintf("so%d", i), netlist.Out, 1)
	}
	for _, p := range core.Clocks {
		m.MustPort(p, netlist.In, 1)
	}
	for _, p := range core.Resets {
		m.MustPort(p, netlist.In, 1)
	}
	for _, p := range core.ScanEnables {
		m.MustPort(p, netlist.In, 1)
	}
	for _, p := range core.TestEnables {
		m.MustPort(p, netlist.In, 1)
	}
	if err := d.AddModule(m); err != nil {
		return nil, err
	}
	return m, nil
}

// Generated summarizes a generated wrapper.
type Generated struct {
	Module *netlist.Module
	// WBRCells is the number of boundary cells instantiated.
	WBRCells int
	// WrapperGates is the wrapper-only area (boundary cells + WIR + WBY +
	// glue), excluding the core itself.
	WrapperGates float64
}

// Generate builds the wrapper module "wrap_<core>" around the core
// according to the chain plan.  Wrapper ports:
//
//	pi[PIs], po[POs]          chip-side functional pins
//	wrck, shift, update, mode, safe, shiftwir, updatewir
//	wsi[width], wso[width]    TAM terminals
//	plus the core's control pins, passed through.
//
// Wrapper chain i runs wsi[i] → input cells → core chain segments → output
// cells → wso[i].  The WIR rides on wsi[0]'s wire (selected by shiftwir).
func Generate(d *netlist.Design, core *testinfo.Core, plan Plan) (*Generated, error) {
	if plan.Core != core.Name {
		return nil, fmt.Errorf("wrapper: plan for %q used on core %q", plan.Core, core.Name)
	}
	if plan.Soft {
		return nil, fmt.Errorf("wrapper: structural generation needs the physical chains; design with a hard-core plan (soft plans are a scheduling view)")
	}
	if _, err := GenerateWBRCell(d); err != nil {
		return nil, err
	}
	wirName := "wir_" + core.Name
	if _, err := GenerateWIR(d, wirName); err != nil {
		return nil, err
	}
	if _, err := GenerateCoreModule(d, core); err != nil {
		return nil, err
	}

	w := netlist.NewModule("wrap_" + core.Name)
	if core.PIs > 0 {
		w.MustPort("pi", netlist.In, core.PIs)
	}
	if core.POs > 0 {
		w.MustPort("po", netlist.Out, core.POs)
	}
	for _, p := range []string{"wrck", "shift", "update", "mode", "safe", "shiftwir", "updatewir"} {
		w.MustPort(p, netlist.In, 1)
	}
	w.MustPort("wsi", netlist.In, plan.Width)
	w.MustPort("wso", netlist.Out, plan.Width)
	w.MustPort("wirso", netlist.Out, 1)
	passthrough := make(map[string]string)
	for _, pins := range [][]string{core.Clocks, core.Resets, core.ScanEnables, core.TestEnables} {
		for _, p := range pins {
			w.MustPort(p, netlist.In, 1)
			passthrough[p] = p
		}
	}

	// WIR on its own serial path.
	w.MustInstance("u_wir", wirName, map[string]string{
		"WSI": netlist.BitName("wsi", 0, plan.Width), "WRCK": "wrck",
		"SHIFTWIR": "shiftwir", "UPDATEWIR": "updatewir", "WSO": "wirso",
		"BYPASS": "i_byp", "EXTEST": "i_ext", "INTESTSCAN": "i_ints", "INTESTFUNC": "i_intf",
	})

	// Core instance connections accumulate as we wire boundary cells.
	coreConns := make(map[string]string)
	for k, v := range passthrough {
		coreConns[k] = v
	}

	cellCount := 0
	newCell := func(kind string, idx int, cfi, cfo, cti string) string {
		cto := fmt.Sprintf("%s%d_cto", kind, idx)
		w.AddNet(cto)
		w.MustInstance(fmt.Sprintf("u_%s%d", kind, idx), WBRCellName, map[string]string{
			"CFI": cfi, "CFO": cfo, "CTI": cti, "CTO": cto,
			"WRCK": "wrck", "SHIFT": "shift", "UPDATE": "update",
			"MODE": "mode", "SAFE": "safe",
		})
		cellCount++
		return cto
	}

	nextIn, nextOut := 0, 0
	for ci, chain := range plan.Chains {
		cur := netlist.BitName("wsi", ci, plan.Width)
		for k := 0; k < chain.InCells; k++ {
			i := nextIn
			nextIn++
			cfi := netlist.BitName("pi", i, core.PIs)
			cfo := fmt.Sprintf("cpi%d", i)
			w.AddNet(cfo)
			coreConns[netlist.BitName("pi", i, core.PIs)] = cfo
			cur = newCell("ib", i, cfi, cfo, cur)
		}
		for _, si := range chain.CoreChains {
			sin := fmt.Sprintf("csi%d", si)
			sout := fmt.Sprintf("cso%d", si)
			w.AddNet(sin)
			w.AddNet(sout)
			// The serial path enters the core chain directly.
			w.MustInstance(fmt.Sprintf("u_sib%d", si), netlist.CellBuf,
				map[string]string{"A": cur, "Z": sin})
			coreConns[fmt.Sprintf("si%d", si)] = sin
			coreConns[fmt.Sprintf("so%d", si)] = sout
			cur = sout
		}
		for k := 0; k < chain.OutCells; k++ {
			o := nextOut
			nextOut++
			cfi := fmt.Sprintf("cpo%d", o)
			w.AddNet(cfi)
			coreConns[netlist.BitName("po", o, core.POs)] = cfi
			cur = newCell("ob", o, cfi, netlist.BitName("po", o, core.POs), cur)
		}
		if ci == 0 {
			// WBY: the mandatory one-bit bypass register rides wrapper
			// chain 0 and takes over when the WIR holds BYPASS.
			w.MustInstance("u_wby", netlist.CellDFF, map[string]string{
				"D": netlist.BitName("wsi", 0, plan.Width), "CK": "wrck", "Q": "wby_q"})
			w.MustInstance("u_bymux", netlist.CellMux2, map[string]string{
				"A": cur, "B": "wby_q", "S": "i_byp",
				"Z": netlist.BitName("wso", 0, plan.Width)})
			continue
		}
		w.MustInstance(fmt.Sprintf("u_wsob%d", ci), netlist.CellBuf,
			map[string]string{"A": cur, "Z": netlist.BitName("wso", ci, plan.Width)})
	}
	if nextIn != core.PIs || nextOut != core.POs {
		return nil, fmt.Errorf("wrapper: plan covers %d/%d inputs and %d/%d outputs",
			nextIn, core.PIs, nextOut, core.POs)
	}
	w.MustInstance("u_core", CoreModuleName(core.Name), coreConns)
	if err := d.AddModule(w); err != nil {
		return nil, err
	}

	total, err := d.Area(w.Name)
	if err != nil {
		return nil, err
	}
	coreArea, err := d.Area(CoreModuleName(core.Name))
	if err != nil {
		return nil, err
	}
	return &Generated{Module: w, WBRCells: cellCount, WrapperGates: total - coreArea}, nil
}
