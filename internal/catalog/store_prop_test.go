package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestStoreDurabilityProperty is the catalog mirror of the campaign
// journal-corruption battery: random interleavings of ingest, compact,
// clean reopen, torn-tail truncation, and bitflip corruption.  The
// invariant under test is "never silent loss": after any corrupt-reopen,
// either
//
//   - the open fails with a typed error (ErrCatalogCorrupt or
//     ErrCatalogSchema — interior damage is loud), or
//   - the open succeeds and every surviving record is byte-identical to
//     the bytes acknowledged at Put time, with at most the final
//     (torn-tail) record missing — and any loss shows up in Dropped().
//
// Fingerprints are unique per trial, so "byte-identical survivor" is
// well-defined without overwrite history.
func TestStoreDurabilityProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			path := filepath.Join(dir, storeFile)
			st, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { st.Close() }()

			// acked maps fingerprint -> the exact record bytes whose Put
			// (append+fsync) was acknowledged.
			acked := map[string][]byte{}
			next := 0

			checkSurvivors := func(s *Store, allowTail bool) {
				t.Helper()
				survivors := s.List(Query{})
				for _, rec := range survivors {
					want, ok := acked[rec.Fingerprint]
					if !ok {
						t.Fatalf("store invented record %s", rec.Fingerprint)
					}
					got, err := json.Marshal(rec)
					if err != nil {
						t.Fatal(err)
					}
					if string(got) != string(want) {
						t.Fatalf("record %s mutated:\n got %s\nwant %s", rec.Fingerprint, got, want)
					}
				}
				lost := len(acked) - len(survivors)
				switch {
				case lost < 0:
					t.Fatalf("more survivors (%d) than acked (%d)", len(survivors), len(acked))
				case lost == 0:
				case lost == 1 && allowTail:
					if s.Dropped() == 0 {
						t.Fatalf("lost a record with Dropped()=0 — silent loss")
					}
					// Reconcile: the torn record is gone for good.
					still := map[string]bool{}
					for _, rec := range survivors {
						still[rec.Fingerprint] = true
					}
					for fp := range acked {
						if !still[fp] {
							delete(acked, fp)
						}
					}
				default:
					t.Fatalf("lost %d records (allowTail=%v) — silent loss", lost, allowTail)
				}
			}

			for op := 0; op < 60; op++ {
				switch k := rng.Intn(10); {
				case k < 5: // ingest
					fp := fmt.Sprintf("%04d%s", next, "fedcba9876543210")
					next++
					rec := Record{
						Fingerprint: fp,
						Tenant:      []string{"anon", "acme", "bolt"}[rng.Intn(3)],
						Kind:        []string{KindSched, KindFlow, KindMemfault}[rng.Intn(3)],
						Scenario:    []string{"manycore", "memory-heavy", ""}[rng.Intn(3)],
						Seed:        int64(rng.Intn(4)),
						Config:      Config{TamWidth: 8 + rng.Intn(40), Algorithm: "March C-"},
						Features:    Features{Cores: 1 + rng.Intn(8), ScanBits: rng.Intn(5000)},
						Metrics: Metrics{TestCycles: rng.Intn(100000),
							Coverage: float64(rng.Intn(10000)) / 100},
						CreatedUnixMS: 1700000000000 + int64(op),
						Result:        json.RawMessage(fmt.Sprintf(`{"n":%d}`, rng.Intn(1000))),
					}
					if err := st.Put(rec); err != nil {
						t.Fatal(err)
					}
					stamped := rec
					stamped.Schema = SchemaVersion
					blob, err := json.Marshal(stamped)
					if err != nil {
						t.Fatal(err)
					}
					acked[fp] = blob

				case k < 6: // compact
					if err := st.Compact(); err != nil {
						t.Fatal(err)
					}

				case k < 8: // clean reopen
					if err := st.Close(); err != nil {
						t.Fatal(err)
					}
					if st, err = Open(dir); err != nil {
						t.Fatal(err)
					}
					checkSurvivors(st, false)

				default: // corrupt, then reopen
					if err := st.Close(); err != nil {
						t.Fatal(err)
					}
					raw, err := os.ReadFile(path)
					if err != nil || len(raw) == 0 {
						if st, err = Open(dir); err != nil {
							t.Fatal(err)
						}
						continue
					}
					backup := append([]byte(nil), raw...)
					damaged := append([]byte(nil), raw...)
					tornTail := false
					if rng.Intn(2) == 0 {
						// Torn tail: truncate inside the final line, the
						// way a crash mid-append tears it.  Never cut a
						// whole line — that would be history rewriting,
						// which fsync-before-ack rules out.
						lineStart := len(damaged) - 1
						for lineStart > 0 && damaged[lineStart-1] != '\n' {
							lineStart--
						}
						// Keep at least one byte of the line: removing it
						// entirely (content and newline) is indistinguishable
						// from the append never happening, which
						// fsync-before-ack makes impossible.
						lineLen := len(damaged) - lineStart
						cut := 1 + rng.Intn(lineLen-1)
						damaged = damaged[:len(damaged)-cut]
						tornTail = true
					} else {
						// Bitflip anywhere in the file.
						pos := rng.Intn(len(damaged))
						damaged[pos] ^= byte(1 << rng.Intn(8))
					}
					if err := os.WriteFile(path, damaged, 0o644); err != nil {
						t.Fatal(err)
					}
					st, err = Open(dir)
					if err != nil {
						if !errors.Is(err, ErrCatalogCorrupt) && !errors.Is(err, ErrCatalogSchema) {
							t.Fatalf("corrupt open failed untyped: %v", err)
						}
						if tornTail {
							t.Fatalf("pure tail damage must repair, got %v", err)
						}
						// Loud refusal: restore the pre-damage file and
						// carry on (the operator's restore-from-backup).
						if err := os.WriteFile(path, backup, 0o644); err != nil {
							t.Fatal(err)
						}
						if st, err = Open(dir); err != nil {
							t.Fatal(err)
						}
						checkSurvivors(st, false)
						continue
					}
					checkSurvivors(st, true)
				}
			}
		})
	}
}
