package sched

import (
	"fmt"
	"sort"

	"steac/internal/testinfo"
)

// NonSessionBased is the baseline the paper compares against: tests start
// and stop at arbitrary times (no session barriers), so the test control
// IOs of every core must stay dedicated for the whole test — the controller
// cannot re-multiplex them between phases — leaving fewer chip pins for TAM
// data.  Tests are packed greedily (longest first) under the remaining pin,
// functional-pin and power constraints.
func NonSessionBased(tests []Test, res Resources) (*Schedule, error) {
	jobs, bist := buildJobs(tests)
	cores := make([]*testinfo.Core, len(jobs))
	for i, j := range jobs {
		cores[i] = j.core
	}
	control := ControlPins(cores, len(bist) > 0, false)
	dataPins := res.TestPins - control
	if dataPins < 0 {
		return nil, fmt.Errorf("sched: non-session control IOs (%d) exceed the %d-pin budget",
			control, res.TestPins)
	}
	for _, j := range jobs {
		if j.scan != nil && dataPins < 2 {
			return nil, fmt.Errorf("sched: non-session: %s needs a TAM wire but only %d data pins remain after %d dedicated control IOs",
				j.core.Name, dataPins, control)
		}
	}

	// Work items with precedence: a core's func follows its scan; BIST
	// groups form a serial chain behind the shared controller.
	type item struct {
		test  Test
		after int // index of predecessor, -1 if none
		dur   int // estimate for ordering
	}
	var items []item
	idxOf := make(map[string]int)
	for _, j := range jobs {
		prev := -1
		if j.scan != nil {
			d, err := ScanCycles(j.core, 1, res.Partitioner)
			if err != nil {
				return nil, err
			}
			items = append(items, item{test: *j.scan, after: -1, dur: d})
			prev = len(items) - 1
			idxOf[j.scan.ID] = prev
		}
		if j.fn != nil {
			d, err := FuncCycles(j.fn.Patterns, j.fn.NeedFuncPins, res.FuncPins)
			if err != nil {
				return nil, err
			}
			items = append(items, item{test: *j.fn, after: prev, dur: d})
			idxOf[j.fn.ID] = len(items) - 1
		}
	}
	// BIST groups are independent work items, but the single shared BIST
	// controller runs at most one group at a time (mutual exclusion,
	// enforced below).
	for _, g := range bist {
		items = append(items, item{test: g, after: -1, dur: g.FixedCycles})
		idxOf[g.ID] = len(items) - 1
	}

	// Greedy list scheduling over event times.
	done := make([]bool, len(items))
	endAt := make([]int, len(items))
	started := make([]bool, len(items))
	var active []running
	var placed []Placement

	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return items[order[a]].dur > items[order[b]].dur })

	t := 0
	availWires := dataPins / 2
	availF := res.FuncPins
	power := 0.0
	bistActive := false
	remaining := len(items)

	for remaining > 0 {
		progressed := false
		for _, i := range order {
			if started[i] || (items[i].after >= 0 && !done[items[i].after]) {
				continue
			}
			it := items[i]
			if res.MaxPower > 0 && !almostLE(power+it.test.Power, res.MaxPower) {
				continue
			}
			pl := Placement{Test: it.test, Start: t}
			wires, fpins := 0, 0
			switch it.test.Kind {
			case ScanKind:
				if availWires < 1 {
					continue
				}
				sat, err := SaturationWidth(it.test.Core, maxUsefulWidth(it.test.Core, dataPins), res.Partitioner)
				if err != nil {
					return nil, err
				}
				wires = sat
				if wires > availWires {
					wires = availWires
				}
				cyc, err := ScanCycles(it.test.Core, wires, res.Partitioner)
				if err != nil {
					return nil, err
				}
				pl.Width, pl.Cycles = wires, cyc
			case FuncKind:
				if availF < 1 {
					continue
				}
				fpins = it.test.NeedFuncPins
				if fpins > availF {
					fpins = availF
				}
				cyc, err := FuncCycles(it.test.Patterns, it.test.NeedFuncPins, fpins)
				if err != nil {
					return nil, err
				}
				pl.FuncPins, pl.Cycles = fpins, cyc
			case BISTKind:
				if bistActive {
					continue
				}
				pl.Cycles = it.test.FixedCycles
				bistActive = true
			}
			availWires -= wires
			availF -= fpins
			power += it.test.Power
			started[i] = true
			endAt[i] = pl.End()
			active = append(active, running{idx: i, pl: pl, wires: wires, fpins: fpins})
			placed = append(placed, pl)
			progressed = true
		}
		// Advance to the earliest completion.
		next := -1
		for _, r := range active {
			if next < 0 || endAt[r.idx] < next {
				next = endAt[r.idx]
			}
		}
		if next < 0 {
			if !progressed {
				return nil, fmt.Errorf("sched: non-session schedule deadlocked at t=%d", t)
			}
			continue
		}
		t = next
		keep := active[:0]
		for _, r := range active {
			if endAt[r.idx] <= t {
				done[r.idx] = true
				remaining--
				availWires += r.wires
				availF += r.fpins
				power -= r.test().Power
				if r.test().Kind == BISTKind {
					bistActive = false
				}
			} else {
				keep = append(keep, r)
			}
		}
		active = keep
	}

	makespan := 0
	for _, pl := range placed {
		if pl.End() > makespan {
			makespan = pl.End()
		}
	}
	return &Schedule{
		Kind: "non-session-based",
		Sessions: []Session{{
			Placements:  placed,
			Cycles:      makespan,
			ControlPins: control,
			DataPins:    dataPins,
		}},
		TotalCycles:    makespan,
		ControlPinsMax: control,
	}, nil
}

// running tracks an in-flight test in the non-session packer.
type running struct {
	idx   int
	pl    Placement
	wires int
	fpins int
}

func (r running) test() Test { return r.pl.Test }

// Serial is the trivial baseline: every test runs alone with the full
// resources (equivalent to singleton sessions with shared control).
func Serial(tests []Test, res Resources) (*Schedule, error) {
	jobs, bist := buildJobs(tests)
	sched := &Schedule{Kind: "serial"}
	at := 0
	addSession := func(pls []Placement, control, data int, power float64) {
		cyc := 0
		for _, p := range pls {
			if p.End() > cyc {
				cyc = p.End()
			}
		}
		sched.Sessions = append(sched.Sessions, Session{
			Index: len(sched.Sessions), Placements: pls, Cycles: cyc,
			ControlPins: control, DataPins: data, PeakPower: power,
		})
		sched.TotalCycles += cyc
		if control > sched.ControlPinsMax {
			sched.ControlPinsMax = control
		}
		at += cyc
	}
	for _, j := range jobs {
		d, err := designSession([]coreJob{j}, res)
		if err != nil {
			return nil, fmt.Errorf("sched: serial: core %s does not fit alone: %w", j.core.Name, err)
		}
		addSession(d.placements, d.controlPins, d.dataPins, d.corePower)
	}
	for _, g := range bist {
		addSession([]Placement{{Test: g, Cycles: g.FixedCycles}},
			ControlPins(nil, true, true), 0, g.Power)
	}
	if len(sched.Sessions) == 0 {
		return nil, fmt.Errorf("sched: nothing to schedule")
	}
	return sched, nil
}
