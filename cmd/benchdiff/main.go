// Command benchdiff compares two BENCH JSON files produced by
// `dscflow -bench-json` and fails on performance regressions.
//
// Usage:
//
//	benchdiff [-threshold 15] [-op-threshold op=pct ...] [-json out.json] OLD.json NEW.json
//
// Exit status: 0 when no op regressed, 1 when any op slowed down past its
// threshold, went missing, or changed its functional result fingerprint,
// 2 on usage or file errors.  Thresholds are percentages of the old wall
// time; -op-threshold (repeatable) overrides the default for one op, e.g.
// a sub-millisecond op whose scheduler jitter needs extra headroom or a
// hardened kernel held to a tighter bound.  Improvements are reported with
// their speedup factor and never fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"steac/internal/obs/bench"
)

// opThresholds collects repeated -op-threshold name=pct flags.
type opThresholds map[string]float64

func (o opThresholds) String() string {
	parts := make([]string, 0, len(o))
	for op, pct := range o {
		parts = append(parts, fmt.Sprintf("%s=%g", op, pct))
	}
	return strings.Join(parts, ",")
}

func (o opThresholds) Set(v string) error {
	op, pctStr, ok := strings.Cut(v, "=")
	if !ok || op == "" {
		return fmt.Errorf("want op=pct, got %q", v)
	}
	pct, err := strconv.ParseFloat(pctStr, 64)
	if err != nil {
		return fmt.Errorf("threshold %q: %w", pctStr, err)
	}
	if pct < 0 {
		return fmt.Errorf("threshold %g is negative", pct)
	}
	o[op] = pct
	return nil
}

func main() {
	perOp := opThresholds{}
	var (
		threshold = flag.Float64("threshold", 15, "regression threshold in percent of the old wall time")
		jsonOut   = flag.String("json", "", "also write the comparison summary as JSON to this path")
	)
	flag.Var(perOp, "op-threshold", "per-op threshold override as op=pct (repeatable)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-op-threshold op=pct ...] [-json out.json] OLD.json NEW.json")
		os.Exit(2)
	}
	old, err := bench.Load(flag.Arg(0))
	fail(err)
	new, err := bench.Load(flag.Arg(1))
	fail(err)

	opt := bench.CompareOptions{ThresholdPct: *threshold}
	if len(perOp) > 0 {
		opt.OpThresholds = perOp
	}
	sum := bench.CompareWith(old, new, opt)
	sum.Write(os.Stdout)
	if *jsonOut != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		fail(err)
		fail(os.WriteFile(*jsonOut, append(data, '\n'), 0o644))
	}
	if sum.Failed() {
		os.Exit(1)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
}
