package testinfo

import "testing"

// usbLike reproduces the USB core of Table 1: TI=18, TO=4, PI=221, PO=104,
// 4 chains (1629, 78, 293, 45), 716 scan patterns.
func usbLike() *Core {
	return &Core{
		Name:        "USB",
		Clocks:      []string{"ck0", "ck1", "ck2", "ck3"},
		Resets:      []string{"rst0", "rst1", "rst2"},
		ScanEnables: []string{"se"},
		TestEnables: []string{"t0", "t1", "t2", "t3", "t4", "t5"},
		PIs:         221, POs: 104,
		ScanChains: []ScanChain{
			{Name: "c0", Length: 1629, In: "si0", Out: "so0", Clock: "ck0"},
			{Name: "c1", Length: 78, In: "si1", Out: "so1", Clock: "ck1"},
			{Name: "c2", Length: 293, In: "si2", Out: "so2", Clock: "ck2"},
			{Name: "c3", Length: 45, In: "si3", Out: "so3", Clock: "ck3"},
		},
		Patterns: []PatternSet{{Name: "scan", Type: Scan, Count: 716, Seed: 1}},
	}
}

// tvLike reproduces the TV encoder: TI=6, TO=1, 2 chains (577, 576) with one
// shared scan-out, 229 scan + 202673 functional patterns.
func tvLike() *Core {
	return &Core{
		Name:        "TV",
		Clocks:      []string{"ck"},
		Resets:      []string{"rst"},
		ScanEnables: []string{"se"},
		TestEnables: []string{"te"},
		PIs:         25, POs: 40,
		ScanChains: []ScanChain{
			{Name: "c0", Length: 577, In: "si0", Out: "so0", Clock: "ck"},
			{Name: "c1", Length: 576, In: "si1", Out: "po_shared", Clock: "ck", SharedOut: true},
		},
		Patterns: []PatternSet{
			{Name: "scan", Type: Scan, Count: 229, Seed: 2},
			{Name: "func", Type: Functional, Count: 202673, Seed: 3},
		},
	}
}

func jpegLike() *Core {
	return &Core{
		Name:   "JPEG",
		Clocks: []string{"ck"},
		PIs:    165, POs: 104,
		Patterns: []PatternSet{{Name: "func", Type: Functional, Count: 235696, Seed: 4}},
	}
}

func TestTable1Counts(t *testing.T) {
	usb, tv, jpeg := usbLike(), tvLike(), jpegLike()
	for _, c := range []*Core{usb, tv, jpeg} {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
	for _, tc := range []struct {
		core   *Core
		ti, to int
	}{
		{usb, 18, 4},
		{tv, 6, 1},
		{jpeg, 1, 0},
	} {
		if got := tc.core.TestInputs(); got != tc.ti {
			t.Errorf("%s TI = %d, want %d", tc.core.Name, got, tc.ti)
		}
		if got := tc.core.TestOutputs(); got != tc.to {
			t.Errorf("%s TO = %d, want %d", tc.core.Name, got, tc.to)
		}
	}
	if usb.ScanPatternCount() != 716 || tv.ScanPatternCount() != 229 {
		t.Error("scan pattern counts wrong")
	}
	if tv.FunctionalPatternCount() != 202673 || jpeg.FunctionalPatternCount() != 235696 {
		t.Error("functional pattern counts wrong")
	}
	if jpeg.HasScan() || !usb.HasScan() {
		t.Error("HasScan wrong")
	}
}

func TestChainDerived(t *testing.T) {
	usb := usbLike()
	ls := usb.ChainLengths()
	want := []int{1629, 293, 78, 45}
	for i := range want {
		if ls[i] != want[i] {
			t.Fatalf("chain lengths = %v", ls)
		}
	}
	if usb.TotalScanBits() != 1629+293+78+45 {
		t.Fatalf("total scan bits = %d", usb.TotalScanBits())
	}
}

// The paper: total test IOs of the three cores are 19 (6 clocks, 4 resets,
// 7 TE, 2 SE); with sharing the control count drops.
func TestSharedControlIOs(t *testing.T) {
	cores := []*Core{usbLike(), tvLike(), jpegLike()}
	s := ShareControlIOs(cores)
	if s.Clocks != 6 || s.Resets != 4 || s.TestEnables != 7 || s.ScanEnables != 2 {
		t.Fatalf("control mix = %+v, want 6/4/7/2", s)
	}
	if s.Dedicated != 19 {
		t.Fatalf("dedicated control IOs = %d, want 19", s.Dedicated)
	}
	if s.SharedTotal >= s.Dedicated {
		t.Fatalf("sharing did not reduce: %d vs %d", s.SharedTotal, s.Dedicated)
	}
	// 6 clocks + 4 resets + 1 SE + ceil(log2(7+1))=3 encoded TE = 14.
	if s.SharedTotal != 14 {
		t.Fatalf("shared total = %d, want 14", s.SharedTotal)
	}
}

func TestValidateErrors(t *testing.T) {
	for _, bad := range []*Core{
		{Name: "", Clocks: []string{"ck"}},
		{Name: "noclk"},
		{Name: "negio", Clocks: []string{"ck"}, PIs: -1},
		{Name: "chain0", Clocks: []string{"ck"}, ScanEnables: []string{"se"},
			ScanChains: []ScanChain{{Name: "c", Length: 0}}},
		{Name: "dupchain", Clocks: []string{"ck"}, ScanEnables: []string{"se"},
			ScanChains: []ScanChain{{Name: "c", Length: 1}, {Name: "c", Length: 2}}},
		{Name: "badclk", Clocks: []string{"ck"}, ScanEnables: []string{"se"},
			ScanChains: []ScanChain{{Name: "c", Length: 1, Clock: "nope"}}},
		{Name: "nose", Clocks: []string{"ck"},
			ScanChains: []ScanChain{{Name: "c", Length: 1}}},
		{Name: "negpat", Clocks: []string{"ck"},
			Patterns: []PatternSet{{Name: "p", Count: -1}}},
		{Name: "scannochain", Clocks: []string{"ck"},
			Patterns: []PatternSet{{Name: "p", Type: Scan, Count: 1}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("core %q accepted", bad.Name)
		}
	}
}

func TestTestTypeString(t *testing.T) {
	if Scan.String() != "Scan" || Functional.String() != "Func." {
		t.Fatal("type names")
	}
}
