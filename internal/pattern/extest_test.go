package pattern

import (
	"bytes"
	"testing"

	"steac/internal/testinfo"
	"steac/internal/wrapper"
)

func extestCores() []*testinfo.Core {
	return []*testinfo.Core{
		{
			Name:        "A",
			Clocks:      []string{"ck"},
			ScanEnables: []string{"se"},
			PIs:         4, POs: 6,
			ScanChains: []testinfo.ScanChain{{Name: "c0", Length: 5, In: "si", Out: "so", Clock: "ck"}},
			Patterns:   []testinfo.PatternSet{{Name: "s", Type: testinfo.Scan, Count: 2, Seed: 1}},
		},
		{
			Name:   "B",
			Clocks: []string{"ck"},
			PIs:    6, POs: 3,
			Patterns: []testinfo.PatternSet{{Name: "f", Type: testinfo.Functional, Count: 2, Seed: 2}},
		},
	}
}

func extestWires() []Interconnect {
	return []Interconnect{
		{FromCore: "A", FromPO: 1, ToCore: "B", ToPI: 0},
		{FromCore: "A", FromPO: 4, ToCore: "B", ToPI: 5},
		{FromCore: "B", FromPO: 2, ToCore: "A", ToPI: 3},
	}
}

func TestBuildExtestGeometry(t *testing.T) {
	lane, err := BuildExtest(extestCores(), extestWires(), map[string]int{"A": 2}, wrapper.LPT)
	if err != nil {
		t.Fatal(err)
	}
	// A at width 2 (2 chains), B at default width 1: wires 0..1 for A,
	// wire 2 for B.
	if lane.Wires2 != 3 {
		t.Fatalf("total wires = %d, want 3", lane.Wires2)
	}
	if lane.Cores[0].WireLo != 0 || lane.Cores[1].WireLo != 2 {
		t.Fatalf("wire ranges: %d, %d", lane.Cores[0].WireLo, lane.Cores[1].WireLo)
	}
	// 3 wires -> 2*ceil(log2(5)) = 6 vectors.
	if lane.Vectors != 6 {
		t.Fatalf("vectors = %d", lane.Vectors)
	}
	if lane.Cycles != (lane.MaxLen+1)*lane.Vectors+lane.MaxLen {
		t.Fatalf("cycle formula broken: %d", lane.Cycles)
	}
}

func TestExtestImagesShape(t *testing.T) {
	lane, err := BuildExtest(extestCores(), extestWires(), nil, wrapper.LPT)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < lane.Vectors; v++ {
		load, expect := lane.extestImages(v)
		for _, cl := range lane.Cores {
			for ci, ch := range cl.Plan.Chains {
				if len(load[cl.Core.Name][ci]) != ch.Length() ||
					len(expect[cl.Core.Name][ci]) != ch.Length() {
					t.Fatalf("vector %d: image length mismatch on %s", v, cl.Core.Name)
				}
			}
		}
		// Every wire's drive appears in exactly one source load position
		// and one sink expect position.
		for wi := range lane.Wires {
			b := FromBool(lane.ExtestDrive(wi, v))
			w := lane.Wires[wi]
			foundDrive, foundExpect := false, false
			for _, cl := range lane.Cores {
				if cl.Core.Name == w.FromCore {
					for _, img := range load[cl.Core.Name] {
						for _, bit := range img {
							if bit == b {
								foundDrive = true
							}
						}
					}
				}
				if cl.Core.Name == w.ToCore {
					for _, img := range expect[cl.Core.Name] {
						for _, bit := range img {
							if bit == b {
								foundExpect = true
							}
						}
					}
				}
			}
			if !foundDrive || !foundExpect {
				t.Fatalf("vector %d wire %d: drive/expect not placed", v, wi)
			}
		}
	}
}

func TestStreamExtestCycleCount(t *testing.T) {
	lane, err := BuildExtest(extestCores(), extestWires(), nil, wrapper.LPT)
	if err != nil {
		t.Fatal(err)
	}
	prog := &Program{TamWidth: lane.Wires2, FuncBus: 1}
	prog.Sessions = append(prog.Sessions, SessionLayout{Index: 0, Cycles: lane.Cycles})
	if err := prog.AttachExtest(0, lane); err != nil {
		t.Fatal(err)
	}
	n, captures := 0, 0
	err = prog.Stream(prog.Sessions[0], func(c int, cyc *Cycle) bool {
		n++
		if cyc.Actions["A"] == ActCapture {
			captures++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != lane.Cycles {
		t.Fatalf("streamed %d cycles, want %d", n, lane.Cycles)
	}
	if captures != lane.Vectors {
		t.Fatalf("captures = %d, want %d", captures, lane.Vectors)
	}
}

func TestAttachExtestErrors(t *testing.T) {
	lane, err := BuildExtest(extestCores(), extestWires(), nil, wrapper.LPT)
	if err != nil {
		t.Fatal(err)
	}
	prog := &Program{TamWidth: 1, FuncBus: 1}
	if err := prog.AttachExtest(0, lane); err == nil {
		t.Fatal("out-of-range session accepted")
	}
	prog.Sessions = append(prog.Sessions, SessionLayout{Index: 0, Cycles: lane.Cycles + 1})
	if err := prog.AttachExtest(0, lane); err == nil {
		t.Fatal("cycle mismatch accepted")
	}
}

func TestProgramFileInPackage(t *testing.T) {
	core := extestCores()[0]
	src, err := NewATPG(core)
	if err != nil {
		t.Fatal(err)
	}
	// Minimal single-scan-lane program built by hand.
	plan, err := wrapper.DesignChains(core, 1, wrapper.LPT)
	if err != nil {
		t.Fatal(err)
	}
	lane := ScanLane{Core: core, Source: src, Plan: plan,
		Cycles: plan.ScanTestCycles(src.ScanCount())}
	prog := &Program{TamWidth: 1, FuncBus: 2, Sessions: []SessionLayout{
		{Index: 0, Cycles: lane.Cycles, Scan: []ScanLane{lane}},
	}}
	var buf bytes.Buffer
	if err := WriteProgramFile(&buf, prog); err != nil {
		t.Fatal(err)
	}
	rec, err := ReadProgramFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TotalCycles() != lane.Cycles || rec.TamWidth != 1 || rec.FuncBus != 2 {
		t.Fatalf("recorded program = %+v", rec)
	}
}
