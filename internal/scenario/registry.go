package scenario

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps scenario names to raw (unresolved) specs.  Builtins
// register at init; tests and embedders may add more.  Resolution — base
// chain walking plus merging — happens per lookup, so a derived builtin
// always sees its base's current definition.
var (
	regMu sync.RWMutex
	reg   = map[string]*Spec{}
)

// Register adds a spec to the registry.  Registering a duplicate name or a
// nameless spec is a programming error and panics, mirroring
// campaign.RegisterKind.
func Register(s *Spec) {
	if s == nil || s.Name == "" {
		panic("scenario: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", s.Name))
	}
	reg[s.Name] = s
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the raw registered spec (no base resolution).
func Lookup(name string) (*Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := reg[name]
	return s, ok
}

// Resolve returns the fully-merged, validated spec for a registered name:
// the base chain is walked to its root (cycles and unknown names are typed
// errors) and each derived spec is merged over its base.
func Resolve(name string) (*Spec, error) {
	chain, err := baseChain(name)
	if err != nil {
		return nil, err
	}
	merged := chain[len(chain)-1]
	for i := len(chain) - 2; i >= 0; i-- {
		merged = merge(merged, chain[i])
	}
	if err := merged.Validate(); err != nil {
		return nil, err
	}
	return merged, nil
}

// ResolveSpec resolves a spec that is not (necessarily) registered — e.g. a
// user JSON file — against the registry: its Base, when set, must name a
// registered scenario.
func ResolveSpec(s *Spec) (*Spec, error) {
	if s.Base == "" {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		return s, nil
	}
	base, err := Resolve(s.Base)
	if err != nil {
		return nil, err
	}
	merged := merge(base, s)
	if err := merged.Validate(); err != nil {
		return nil, err
	}
	return merged, nil
}

// LoadSpec parses a user JSON spec and resolves it against the registry.
func LoadSpec(data []byte) (*Spec, error) {
	s, err := ParseSpec(data)
	if err != nil {
		return nil, err
	}
	return ResolveSpec(s)
}

// baseChain returns [name, name's base, ..., root], all from the registry.
func baseChain(name string) ([]*Spec, error) {
	var chain []*Spec
	visited := map[string]bool{}
	for cur := name; ; {
		if visited[cur] {
			return nil, fmt.Errorf("%w: %q reached twice from %q", ErrBaseCycle, cur, name)
		}
		visited[cur] = true
		s, ok := Lookup(cur)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownScenario, cur)
		}
		chain = append(chain, s)
		if s.Base == "" {
			return chain, nil
		}
		cur = s.Base
	}
}

// merge overlays child on base and returns a fresh spec (neither input is
// mutated).  Cores and memories merge by template name: a child entry with
// a base-matching name replaces it in place (Remove deletes it), new names
// append in child order.  Blocks merge by key, a zero area deleting the
// block.  Resources and BIST merge field-wise (zero keeps base); LogicBIST
// replaces wholesale.
func merge(base, child *Spec) *Spec {
	out := &Spec{
		Name:        child.Name,
		Description: child.Description,
		LogicBIST:   child.LogicBIST,
	}
	if out.Description == "" {
		out.Description = base.Description
	}
	if out.LogicBIST == nil {
		out.LogicBIST = base.LogicBIST
	}

	out.Cores = append([]CoreSpec(nil), base.Cores...)
	for _, c := range child.Cores {
		idx := -1
		for i := range out.Cores {
			if out.Cores[i].Name == c.Name {
				idx = i
				break
			}
		}
		switch {
		case c.Remove && idx >= 0:
			out.Cores = append(out.Cores[:idx], out.Cores[idx+1:]...)
		case c.Remove:
			// Removing a non-existent template is a no-op, so a derived
			// spec stays valid when its base drops the template first.
		case idx >= 0:
			out.Cores[idx] = c
		default:
			out.Cores = append(out.Cores, c)
		}
	}
	out.Memories = append([]MemorySpec(nil), base.Memories...)
	for _, m := range child.Memories {
		idx := -1
		for i := range out.Memories {
			if out.Memories[i].Name == m.Name {
				idx = i
				break
			}
		}
		switch {
		case m.Remove && idx >= 0:
			out.Memories = append(out.Memories[:idx], out.Memories[idx+1:]...)
		case m.Remove:
		case idx >= 0:
			out.Memories[idx] = m
		default:
			out.Memories = append(out.Memories, m)
		}
	}

	if len(base.Blocks)+len(child.Blocks) > 0 {
		out.Blocks = map[string]float64{}
		for k, v := range base.Blocks {
			out.Blocks[k] = v
		}
		for k, v := range child.Blocks {
			if v == 0 {
				delete(out.Blocks, k)
				continue
			}
			out.Blocks[k] = v
		}
	}

	if base.Resources != nil || child.Resources != nil {
		r := ResourceSpec{}
		if base.Resources != nil {
			r = *base.Resources
		}
		if c := child.Resources; c != nil {
			if c.TestPins != 0 {
				r.TestPins = c.TestPins
			}
			if c.FuncPins != 0 {
				r.FuncPins = c.FuncPins
			}
			if c.MaxPower != 0 {
				r.MaxPower = c.MaxPower
			}
			if c.PowerBudget != 0 {
				r.PowerBudget = c.PowerBudget
			}
			if c.Partitioner != "" {
				r.Partitioner = c.Partitioner
			}
		}
		out.Resources = &r
	}
	if base.BIST != nil || child.BIST != nil {
		b := BISTSpec{}
		if base.BIST != nil {
			b = *base.BIST
		}
		if c := child.BIST; c != nil {
			if c.Algorithm != "" {
				b.Algorithm = c.Algorithm
			}
			if c.Grouping != "" {
				b.Grouping = c.Grouping
			}
			if c.Backgrounds != 0 {
				b.Backgrounds = c.Backgrounds
			}
		}
		out.BIST = &b
	}
	return out
}
