package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// jobDB is the durable job database: one fsync'd JSONL file under the
// checkpoint root (JobDir/jobs.jsonl) holding the latest state of every
// job the daemon ever accepted, keyed by the content-addressed job id.
// It replaces the old "scan the checkpoint directory and hope" recovery
// path: a daemon restart knows every job's kind, spec, tenant owner, and
// terminal result without touching per-job checkpoint internals, so jobs
// reattach to their tenants and finished results survive the process.
//
// Write model: every state transition appends one full record and fsyncs
// before the transition is acknowledged — the same "trust the store"
// discipline as the campaign journal.  Load replays the file (last record
// per id wins, torn tails are dropped) and compacts it back to one line
// per job via an atomic tmp+rename, so the file stays proportional to
// the number of jobs rather than the number of transitions.
type jobDB struct {
	mu   sync.Mutex
	path string
	f    *os.File
	recs map[string]jobRecord
}

// jobRecord is one durable job row.  Spec is the verbatim submission
// payload, kept so a restarted operator (or a future auto-resume) can
// re-run the job without the client re-POSTing it.
type jobRecord struct {
	ID          string          `json:"id"`
	Tenant      string          `json:"tenant"`
	Kind        string          `json:"kind"`
	Fingerprint string          `json:"fingerprint"`
	Spec        json.RawMessage `json:"spec,omitempty"`
	State       string          `json:"state"`
	ShardsDone  int             `json:"shards_done,omitempty"`
	ShardsTotal int             `json:"shards_total,omitempty"`
	UnitsDone   int             `json:"units_done,omitempty"`
	UnitsTotal  int             `json:"units_total,omitempty"`
	Submitted   int64           `json:"submitted_unix_ms"`
	Finished    int64           `json:"finished_unix_ms,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	Error       string          `json:"error,omitempty"`
}

const jobDBFile = "jobs.jsonl"

// openJobDB loads (and compacts) the database under dir, creating it on
// first use.  A nil receiver is valid everywhere — an in-memory-only
// daemon (no JobDir) simply has no durable jobs.
func openJobDB(dir string) (*jobDB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: job db: %w", err)
	}
	db := &jobDB{path: filepath.Join(dir, jobDBFile), recs: map[string]jobRecord{}}
	raw, err := os.ReadFile(db.path)
	switch {
	case os.IsNotExist(err):
	case err != nil:
		return nil, fmt.Errorf("serve: job db: %w", err)
	default:
		sc := bufio.NewScanner(bytes.NewReader(raw))
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			var rec jobRecord
			// A torn tail (crash mid-append) fails to parse; every
			// record before it is intact, so drop the tail and move on.
			if json.Unmarshal(sc.Bytes(), &rec) != nil || rec.ID == "" {
				continue
			}
			db.recs[rec.ID] = rec
		}
	}
	if err := db.compact(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(db.path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: job db: %w", err)
	}
	db.f = f
	return db, nil
}

// compact rewrites the file to one line per job, submission order, via
// tmp + fsync + atomic rename.
func (db *jobDB) compact() error {
	recs := make([]jobRecord, 0, len(db.recs))
	for _, rec := range db.recs {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Submitted != recs[j].Submitted {
			return recs[i].Submitted < recs[j].Submitted
		}
		return recs[i].ID < recs[j].ID
	})
	tmp := db.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("serve: job db compact: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, rec := range recs {
		blob, err := json.Marshal(rec)
		if err != nil {
			f.Close()
			return fmt.Errorf("serve: job db compact: %w", err)
		}
		w.Write(blob)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("serve: job db compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("serve: job db compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("serve: job db compact: %w", err)
	}
	if err := os.Rename(tmp, db.path); err != nil {
		return fmt.Errorf("serve: job db compact: %w", err)
	}
	return nil
}

// put records a state transition: append one line, fsync, remember.
func (db *jobDB) put(rec jobRecord) error {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	blob, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: job db: %w", err)
	}
	if _, err := db.f.Write(append(blob, '\n')); err != nil {
		return fmt.Errorf("serve: job db: %w", err)
	}
	if err := db.f.Sync(); err != nil {
		return fmt.Errorf("serve: job db: %w", err)
	}
	db.recs[rec.ID] = rec
	return nil
}

// get returns the latest record for id.
func (db *jobDB) get(id string) (jobRecord, bool) {
	if db == nil {
		return jobRecord{}, false
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.recs[id]
	return rec, ok
}

// all snapshots every record, submission order.
func (db *jobDB) all() []jobRecord {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	out := make([]jobRecord, 0, len(db.recs))
	for _, rec := range db.recs {
		out = append(out, rec)
	}
	db.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Submitted != out[j].Submitted {
			return out[i].Submitted < out[j].Submitted
		}
		return out[i].ID < out[j].ID
	})
	return out
}
